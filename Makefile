# QRIO build entry points. CI (.github/workflows/ci.yml) invokes exactly
# these targets so local runs and CI never diverge.

GO ?= go

# Packages the concurrent scheduling pipeline and the /v1 gateway touch;
# they get the -race treatment on every CI run.
RACE_PKGS := ./internal/sched/... ./internal/cluster/... ./internal/core/... ./internal/meta/... ./internal/gateway/... ./internal/obs/... ./internal/replica/... ./client/...

# Benchmarks the CI regression guard re-runs with -count=$(BENCH_COUNT)
# for median comparison (the full suite takes minutes; the guard only
# needs the scheduling/store/fairness benches). The cheap benches run
# $(BENCH_FAST_TIME) iterations per measurement so a single cold op can't
# dominate (at 1x, StoreContention/create measures one ~20µs op — pure
# start-up noise); SubmitThroughput drives whole orchestrator bursts and
# stays at 1x. The committed baseline MUST be produced with the same
# settings (make bench-json does) so medians compare apples-to-apples.
GUARDED_FAST := BenchmarkSchedulePassWithHistory|BenchmarkStoreContention|BenchmarkFairShare|BenchmarkWatchResume|BenchmarkWALAppend$$|BenchmarkReplayBoot
GUARDED_SLOW := BenchmarkSubmitThroughput
# The gateway's rate-limiter fast path is guarded from its own package
# (the limiter is internal); benchcompare keys on benchmark name, so its
# results concatenate into the same JSON stream.
GUARDED_GATEWAY := BenchmarkRateLimit
# The metrics hot path (counter inc, labeled lookup, histogram observe,
# full scrape) is guarded from internal/obs: instrumentation that shows
# up in the scheduler or gateway profiles defeats its own purpose.
GUARDED_OBS := BenchmarkMetricsHotPath
# The multi-replica scale-out bench runs with its own methodology: a
# handful of full wave drains per measurement (each op is already a
# 32-job wave) across -cpu $(BENCH_REPL_CPU), so the curve shows both
# the replica axis and the core axis.
GUARDED_REPL := BenchmarkReplicatedBind
BENCH_COUNT ?= 3
BENCH_FAST_TIME ?= 20x
BENCH_REPL_TIME ?= 5x
BENCH_REPL_CPU ?= 1,4,8

# Total-coverage floor: the coverage job fails when the current total
# drops below the committed baseline (COVERAGE_baseline.txt) minus this
# many points.
COVERAGE_SLACK ?= 2

.PHONY: all build vet fmt lint lint-rand lint-http lint-metrics test race bench bench-json bench-store bench-compare chaos-crash chaos-faults chaos-replicas coverage sim sim-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails when any file needs reformatting (CI), and prints the offenders.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs staticcheck when it is installed (CI installs it; local runs
# without it skip with a note instead of failing).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

# lint-http enforces the shared-client rule: every *http.Client is built
# by internal/httpx (NewClient/NewStreamClient), so explicit timeouts,
# bounded transports and the httpx.roundtrip fault point hold everywhere
# at once. Tests are exempt (they build throwaway clients around
# httptest servers).
lint-http:
	@out="$$(grep -rn '&http\.Client{' --include='*.go' --exclude='*_test.go' internal cmd client | grep -v '^internal/httpx/' || true)"; \
	if [ -n "$$out" ]; then echo "lint-http: construct HTTP clients via internal/httpx, not ad hoc:"; echo "$$out"; exit 1; fi

# lint-rand is the simulator's determinism audit: package-global math/rand
# calls (rand.Intn, rand.Float64, ...) draw from shared process-wide state
# and would make seeded sim runs irreproducible. Every draw must go
# through an explicitly seeded *rand.Rand. rand.New/rand.NewSource remain
# allowed — they are how those seeded generators are built.
lint-rand:
	@out="$$(grep -rnE '\brand\.(Intn|Int63n?|Int31n?|Float64|Float32|Perm|Shuffle|ExpFloat64|NormFloat64|Uint32|Uint64|Seed)\(' --include='*.go' internal cmd client 2>/dev/null || true)"; \
	if [ -n "$$out" ]; then echo "lint-rand: package-global math/rand use breaks sim determinism:"; echo "$$out"; exit 1; fi

# lint-metrics enforces the metric naming contract: every family literal
# ("qrio_..." strings in non-test code) must read
# qrio_<layer>_<name>_<unit> with a known layer prefix and unit suffix,
# so dashboards and alert rules can rely on the grammar. The audit also
# fails when it finds zero names — that means the grep is miswired, not
# that the code is clean.
lint-metrics:
	@names="$$(grep -rhoE '"qrio_[a-z0-9_]+"' --include='*.go' --exclude='*_test.go' internal cmd client | sort -u | tr -d '"')"; \
	if [ -z "$$names" ]; then echo "lint-metrics: found no metric family names — audit miswired"; exit 1; fi; \
	bad="$$(echo "$$names" | grep -vE '^qrio_(sched|state|meta|gateway|watch|durability|archive|faults)_([a-z0-9]+_)*(total|seconds|bytes|jobs|entries|events|records|requests|streams|errors|generation)$$' || true)"; \
	if [ -n "$$bad" ]; then echo "lint-metrics: family names must read qrio_<layer>_<name>_<unit>:"; echo "$$bad"; exit 1; fi; \
	echo "lint-metrics: $$(echo "$$names" | wc -l) family names conform"

# sim runs the full capacity-planning grid (sim/experiments.json) and
# refreshes the committed artifacts under sim/results/. Deterministic:
# re-running on any machine reproduces the committed files byte for byte.
sim:
	$(GO) run ./cmd/qrio-sim -experiments sim/experiments.json -out sim/results

# sim-smoke is the CI determinism gate: the small seeded "smoke" scenario
# runs twice into scratch dirs and the artifacts must be byte-identical.
sim-smoke:
	@tmp1="$$(mktemp -d)"; tmp2="$$(mktemp -d)"; \
	trap 'rm -rf "$$tmp1" "$$tmp2"' EXIT; \
	$(GO) run ./cmd/qrio-sim -experiments sim/experiments.json -only smoke -out "$$tmp1" && \
	$(GO) run ./cmd/qrio-sim -experiments sim/experiments.json -only smoke -out "$$tmp2" && \
	diff -r "$$tmp1" "$$tmp2" && echo "sim-smoke: double run byte-identical"

race:
	$(GO) test -race $(RACE_PKGS)

# chaos-crash runs the kill -9 crash-recovery harness under the race
# detector: a child process running a durable cluster under lifecycle
# churn is SIGKILLed mid-flight and the recovered state is audited (no
# job lost or duplicated across tiers, indexes match a rebuild, resume
# tokens replay or 410). -count=1 defeats the test cache: the harness's
# value is in a fresh kill each run.
chaos-crash:
	$(GO) test -race -count=1 -run 'TestCrashRecovery' ./internal/cluster/chaostest

# chaos-faults runs the dependency-failure storm under the race detector:
# a full orchestrator is flooded while the Meta scorer dies (breaker →
# degraded scoring → recovery on virtual time), the network flaps under
# the retry policy, WAL/spill writes fail (latched, surfaced in stats), a
# flooding tenant hits its token bucket, and the run ends in a
# SIGTERM-style drain that must lose no acked job. -count=1 defeats the
# test cache: the storm's value is in fresh interleavings each run.
chaos-faults:
	$(GO) test -race -count=1 -run 'TestFaultStorm' ./internal/cluster/chaostest

# chaos-replicas runs the concurrent-bind storm under the race detector:
# K scheduler replicas race one pending queue with optimistic
# version-conditional binds while executors drain the fleet and a
# retention sweeper archives terminal jobs mid-release. Asserts
# exactly-once binds, coherent per-replica win/conflict counters, and
# node accounting draining to zero. -count=1 defeats the test cache: the
# storm's value is in fresh interleavings each run.
chaos-replicas:
	$(GO) test -race -count=1 -run 'TestConcurrentBindStorm' ./internal/cluster/chaostest

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# bench-json refreshes the committed benchmark baseline with exactly the
# methodology bench-compare measures against — run it on a quiet machine
# and commit BENCH_results.json to move the perf trajectory.
bench-json:
	$(GO) test -run xxx -bench '$(GUARDED_SLOW)' -benchtime 1x -count $(BENCH_COUNT) -json . > BENCH_results.json
	$(GO) test -run xxx -bench '$(GUARDED_FAST)' -benchtime $(BENCH_FAST_TIME) -count $(BENCH_COUNT) -json . >> BENCH_results.json
	$(GO) test -run xxx -bench '$(GUARDED_GATEWAY)' -benchtime $(BENCH_FAST_TIME) -count $(BENCH_COUNT) -json ./internal/gateway >> BENCH_results.json
	$(GO) test -run xxx -bench '$(GUARDED_OBS)' -benchtime $(BENCH_FAST_TIME) -count $(BENCH_COUNT) -json ./internal/obs >> BENCH_results.json
	$(GO) test -run xxx -bench '$(GUARDED_REPL)' -benchtime $(BENCH_REPL_TIME) -count $(BENCH_COUNT) -cpu $(BENCH_REPL_CPU) -json . >> BENCH_results.json

# bench-store exercises the sharded store's lock scaling across core counts.
bench-store:
	$(GO) test -run xxx -bench BenchmarkStoreContention -benchtime 1x -cpu 1,4,8 .

# bench-compare runs the guarded benchmarks $(BENCH_COUNT) times into
# BENCH_current.json and diffs their MEDIANS against the committed
# BENCH_results.json baseline, failing on >25% throughput regression (the
# CI guard; single noisy runs don't flake the job). Inside GitHub Actions
# the delta table also lands on the workflow step summary.
bench-compare:
	$(GO) test -run xxx -bench '$(GUARDED_SLOW)' -benchtime 1x -count $(BENCH_COUNT) -json . > BENCH_current.json
	$(GO) test -run xxx -bench '$(GUARDED_FAST)' -benchtime $(BENCH_FAST_TIME) -count $(BENCH_COUNT) -json . >> BENCH_current.json
	$(GO) test -run xxx -bench '$(GUARDED_GATEWAY)' -benchtime $(BENCH_FAST_TIME) -count $(BENCH_COUNT) -json ./internal/gateway >> BENCH_current.json
	$(GO) test -run xxx -bench '$(GUARDED_OBS)' -benchtime $(BENCH_FAST_TIME) -count $(BENCH_COUNT) -json ./internal/obs >> BENCH_current.json
	$(GO) test -run xxx -bench '$(GUARDED_REPL)' -benchtime $(BENCH_REPL_TIME) -count $(BENCH_COUNT) -cpu $(BENCH_REPL_CPU) -json . >> BENCH_current.json
	$(GO) run ./cmd/benchcompare -baseline BENCH_results.json -current BENCH_current.json -threshold 25

# coverage runs the full suite with a coverage profile and enforces the
# soft floor: committed baseline minus $(COVERAGE_SLACK) points. Refresh
# the baseline by copying the reported total into COVERAGE_baseline.txt.
coverage:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{gsub("%","",$$3); print $$3}'); \
	baseline=$$(cat COVERAGE_baseline.txt); \
	awk -v t="$$total" -v b="$$baseline" -v s="$(COVERAGE_SLACK)" 'BEGIN { \
		floor = b - s; \
		if (t + 0 < floor) { printf "coverage: total %.1f%% fell below floor %.1f%% (baseline %.1f%% - %d)\n", t, floor, b, s; exit 1 } \
		printf "coverage: total %.1f%% (floor %.1f%%, baseline %.1f%%)\n", t, floor, b }'

ci: build vet fmt lint lint-rand lint-http lint-metrics test race sim-smoke
