# QRIO build entry points. CI (.github/workflows/ci.yml) invokes exactly
# these targets so local runs and CI never diverge.

GO ?= go

# Packages the concurrent scheduling pipeline and the /v1 gateway touch;
# they get the -race treatment on every CI run.
RACE_PKGS := ./internal/sched/... ./internal/cluster/... ./internal/core/... ./internal/meta/... ./internal/gateway/... ./client/...

.PHONY: all build vet fmt test race bench bench-json ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails when any file needs reformatting (CI), and prints the offenders.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# bench-json emits the same benchmark pass as a test2json stream — the
# BENCH_results.json artifact CI uploads to track the perf trajectory.
bench-json:
	$(GO) test -run xxx -bench . -benchtime 1x -json . > BENCH_results.json

ci: build vet fmt test race
