# QRIO build entry points. CI (.github/workflows/ci.yml) invokes exactly
# these targets so local runs and CI never diverge.

GO ?= go

# Packages the concurrent scheduling pipeline and the /v1 gateway touch;
# they get the -race treatment on every CI run.
RACE_PKGS := ./internal/sched/... ./internal/cluster/... ./internal/core/... ./internal/meta/... ./internal/gateway/... ./client/...

.PHONY: all build vet fmt test race bench bench-json bench-store bench-compare ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails when any file needs reformatting (CI), and prints the offenders.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# bench-json refreshes the committed benchmark baseline — run it on a
# quiet machine and commit BENCH_results.json to move the perf trajectory.
bench-json:
	$(GO) test -run xxx -bench . -benchtime 1x -json . > BENCH_results.json

# bench-store exercises the sharded store's lock scaling across core counts.
bench-store:
	$(GO) test -run xxx -bench BenchmarkStoreContention -benchtime 1x -cpu 1,4,8 .

# bench-compare runs a fresh pass into BENCH_current.json and diffs it
# against the committed BENCH_results.json baseline, failing on >25%
# throughput regression on the scheduling/store benchmarks (the CI guard).
bench-compare:
	$(GO) test -run xxx -bench . -benchtime 1x -json . > BENCH_current.json
	$(GO) run ./cmd/benchcompare -baseline BENCH_results.json -current BENCH_current.json -threshold 25

ci: build vet fmt test race
