package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"qrio/internal/cluster/state"
	"qrio/internal/httpx"
)

// Watch event types, mirroring the store's watch semantics plus the
// gateway's connect-time snapshot marker.
const (
	EventAdded    = "ADDED"
	EventModified = "MODIFIED"
	EventDeleted  = "DELETED"
	// EventSync marks the snapshot of current state a watch delivers on
	// connect, before live transitions start.
	EventSync = "SYNC"
)

// WatchEvent is one streamed cluster change: Kind is "job" or "node" and
// exactly one of Job/Node is set.
type WatchEvent = state.Notification

// WatchOptions narrow a watch stream. Zero values watch everything.
type WatchOptions struct {
	// Kind restricts to "job" or "node" notifications.
	Kind string
	// Name restricts to one object.
	Name string
	// Resume starts the stream from a previous stream's position token
	// (WatchEvent.Resume) instead of a fresh SYNC snapshot: every
	// transition after that position is replayed exactly once. A token
	// whose position the server has compacted is rejected with a compacted
	// error (IsCompacted) — reconnect without a token.
	Resume string
	// Reconnect makes Watch heal broken streams transparently: when the
	// SSE connection drops (without the context ending), Watch reconnects
	// with the last seen token, so consumers observe every transition
	// exactly once across the break. If the token has been compacted
	// meanwhile, Watch falls back to a fresh snapshot stream — consumers
	// then see SYNC events again and must treat them level-triggered. The
	// channel closes only when the context ends.
	Reconnect bool
}

// Watch opens a server-sent-events stream of cluster changes. On connect
// the gateway first delivers the current (filtered) objects as SYNC
// events, then live transitions as they happen — so callers need no
// list-then-watch dance; each event's Resume field carries the stream
// position token for reconnection. Without Reconnect the channel closes
// when the context ends or the stream breaks; consumers that must not
// miss state should then resume from the last token (or re-Get). With
// Reconnect the stream heals itself and closes only on context end.
func (c *Client) Watch(ctx context.Context, opts WatchOptions) (<-chan WatchEvent, error) {
	events, err := c.watchOnce(ctx, opts)
	if err != nil && opts.Reconnect && opts.Resume != "" && IsCompacted(err) {
		// The starting token is already unreplayable: fall back to a fresh
		// snapshot stream rather than failing the healing watch.
		opts.Resume = ""
		events, err = c.watchOnce(ctx, opts)
	}
	if err != nil || !opts.Reconnect {
		return events, err
	}
	out := make(chan WatchEvent, 64)
	go func() {
		defer close(out)
		last := opts.Resume
		for {
			for ev := range events {
				if ev.Resume != "" {
					last = ev.Resume
				}
				select {
				case out <- ev:
				case <-ctx.Done():
					return
				}
			}
			// Stream broke. Reconnect from the last token; on compaction the
			// position is gone, so fall back to a fresh snapshot stream.
			for {
				if ctx.Err() != nil {
					return
				}
				retry := opts
				retry.Resume = last
				next, err := c.watchOnce(ctx, retry)
				if err == nil {
					events = next
					break
				}
				if IsCompacted(err) {
					last = ""
					continue
				}
				select {
				case <-time.After(500 * time.Millisecond):
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out, nil
}

// watchOnce opens one SSE connection (no healing).
func (c *Client) watchOnce(ctx context.Context, opts WatchOptions) (<-chan WatchEvent, error) {
	q := url.Values{}
	if opts.Kind != "" {
		q.Set("kind", opts.Kind)
	}
	if opts.Name != "" {
		q.Set("name", opts.Name)
	}
	if opts.Resume != "" {
		q.Set("resume", opts.Resume)
	}
	path := "/v1/watch"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	// A dedicated stream client: the regular one's blanket timeout would
	// sever long-lived streams, but response headers still must arrive
	// promptly (httpx.NewStreamClient bounds them).
	streamer := httpx.NewStreamClient(nil)
	resp, err := streamer.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, httpx.MaxBodyBytes))
		code, msg, ok := httpx.DecodeErrorBody(raw)
		if !ok {
			msg = "watch stream rejected"
		}
		if code == "" {
			code = httpx.CodeInternal
		}
		return nil, &APIError{Status: resp.StatusCode, Code: code, Message: msg}
	}
	out := make(chan WatchEvent, 64)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), httpx.MaxBodyBytes)
		var data []string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if len(data) > 0 {
					var ev WatchEvent
					// Per the SSE spec, multiple data: lines join with a
					// newline before dispatch.
					if json.Unmarshal([]byte(strings.Join(data, "\n")), &ev) == nil {
						select {
						case out <- ev:
						case <-ctx.Done():
							return
						}
					}
					data = data[:0]
				}
			case strings.HasPrefix(line, "data:"):
				data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
			default:
				// event: lines are redundant (kind travels in the JSON);
				// ":" keep-alive comments are ignored.
			}
		}
	}()
	return out, nil
}

// Wait blocks until the job reaches a terminal phase
// (Succeeded/Failed/Cancelled) or the context ends, returning the final
// job. It is driven by the watch stream — no polling loop — reconnecting
// transparently from its resume token if the stream drops, with a coarse
// re-Get only as a guard against anything the stream machinery misses.
func (c *Client) Wait(ctx context.Context, name string) (Job, error) {
	// Existence check up front so waiting on a ghost fails immediately.
	job, err := c.Get(ctx, name)
	if err != nil {
		return Job{}, err
	}
	if job.Status.Phase.Terminal() {
		return job, nil
	}
	watchCtx, stop := context.WithCancel(ctx)
	defer stop()
	events, err := c.Watch(watchCtx, WatchOptions{Kind: "job", Name: name, Reconnect: true})
	if err != nil {
		return job, err
	}
	recheck := time.NewTicker(500 * time.Millisecond)
	defer recheck.Stop()
	for {
		select {
		case <-ctx.Done():
			if j, err := c.Get(context.WithoutCancel(ctx), name); err == nil {
				job = j
			}
			return job, ctx.Err()
		case ev, ok := <-events:
			if !ok {
				// Stream broke; the final Get decides.
				j, err := c.Get(ctx, name)
				if err != nil {
					return job, err
				}
				if j.Status.Phase.Terminal() {
					return j, nil
				}
				return j, fmt.Errorf("qrio: watch stream closed while waiting for %s", name)
			}
			if ev.Job == nil || ev.Job.Name != name {
				continue
			}
			if ev.Type == EventDeleted {
				// A terminal job deleted from the hot store is the retention
				// sweep archiving it — the lifecycle ended normally.
				if ev.Job.Status.Phase.Terminal() {
					return *ev.Job, nil
				}
				return *ev.Job, &APIError{Status: http.StatusNotFound, Code: httpx.CodeNotFound,
					Message: fmt.Sprintf("job %s deleted while waiting", name)}
			}
			job = *ev.Job
			if job.Status.Phase.Terminal() {
				return job, nil
			}
		case <-recheck.C:
			j, err := c.Get(ctx, name)
			if err != nil {
				// The job vanishing is terminal; anything else (a network
				// blip, a transient 5xx) is tolerated — the recheck is only
				// a guard, the healthy stream remains authoritative.
				if IsNotFound(err) {
					return job, err
				}
				continue
			}
			job = j
			if job.Status.Phase.Terminal() {
				return job, nil
			}
		}
	}
}
