package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"qrio/internal/cluster/state"
	"qrio/internal/httpx"
)

// Watch event types, mirroring the store's watch semantics plus the
// gateway's connect-time snapshot marker.
const (
	EventAdded    = "ADDED"
	EventModified = "MODIFIED"
	EventDeleted  = "DELETED"
	// EventSync marks the snapshot of current state a watch delivers on
	// connect, before live transitions start.
	EventSync = "SYNC"
)

// WatchEvent is one streamed cluster change: Kind is "job" or "node" and
// exactly one of Job/Node is set.
type WatchEvent = state.Notification

// WatchOptions narrow a watch stream. Zero values watch everything.
type WatchOptions struct {
	// Kind restricts to "job" or "node" notifications.
	Kind string
	// Name restricts to one object.
	Name string
}

// Watch opens a server-sent-events stream of cluster changes. On connect
// the gateway first delivers the current (filtered) objects as SYNC
// events, then live transitions as they happen — so callers need no
// list-then-watch dance. The channel closes when the context ends or the
// stream breaks; consumers that must not miss state should re-Get after
// the channel closes (delivery is at-most-once under extreme backlog,
// matching the hub's semantics).
func (c *Client) Watch(ctx context.Context, opts WatchOptions) (<-chan WatchEvent, error) {
	q := url.Values{}
	if opts.Kind != "" {
		q.Set("kind", opts.Kind)
	}
	if opts.Name != "" {
		q.Set("name", opts.Name)
	}
	path := "/v1/watch"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	// A dedicated transport-only client: the regular one's blanket
	// timeout would sever long-lived streams.
	streamer := &http.Client{}
	if c.HTTP != nil {
		streamer.Transport = c.HTTP.Transport
	}
	resp, err := streamer.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, httpx.MaxBodyBytes))
		code, msg, ok := httpx.DecodeErrorBody(raw)
		if !ok {
			msg = "watch stream rejected"
		}
		if code == "" {
			code = httpx.CodeInternal
		}
		return nil, &APIError{Status: resp.StatusCode, Code: code, Message: msg}
	}
	out := make(chan WatchEvent, 64)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), httpx.MaxBodyBytes)
		var data []string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if len(data) > 0 {
					var ev WatchEvent
					// Per the SSE spec, multiple data: lines join with a
					// newline before dispatch.
					if json.Unmarshal([]byte(strings.Join(data, "\n")), &ev) == nil {
						select {
						case out <- ev:
						case <-ctx.Done():
							return
						}
					}
					data = data[:0]
				}
			case strings.HasPrefix(line, "data:"):
				data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
			default:
				// event: lines are redundant (kind travels in the JSON);
				// ":" keep-alive comments are ignored.
			}
		}
	}()
	return out, nil
}

// Wait blocks until the job reaches a terminal phase
// (Succeeded/Failed/Cancelled) or the context ends, returning the final
// job. It is driven by the watch stream — no polling loop — with a
// coarse re-Get only as a guard against dropped events on a backlogged
// hub.
func (c *Client) Wait(ctx context.Context, name string) (Job, error) {
	// Existence check up front so waiting on a ghost fails immediately.
	job, err := c.Get(ctx, name)
	if err != nil {
		return Job{}, err
	}
	if job.Status.Phase.Terminal() {
		return job, nil
	}
	watchCtx, stop := context.WithCancel(ctx)
	defer stop()
	events, err := c.Watch(watchCtx, WatchOptions{Kind: "job", Name: name})
	if err != nil {
		return job, err
	}
	recheck := time.NewTicker(500 * time.Millisecond)
	defer recheck.Stop()
	for {
		select {
		case <-ctx.Done():
			if j, err := c.Get(context.WithoutCancel(ctx), name); err == nil {
				job = j
			}
			return job, ctx.Err()
		case ev, ok := <-events:
			if !ok {
				// Stream broke; the final Get decides.
				j, err := c.Get(ctx, name)
				if err != nil {
					return job, err
				}
				if j.Status.Phase.Terminal() {
					return j, nil
				}
				return j, fmt.Errorf("qrio: watch stream closed while waiting for %s", name)
			}
			if ev.Job == nil || ev.Job.Name != name {
				continue
			}
			if ev.Type == EventDeleted {
				return *ev.Job, &APIError{Status: http.StatusNotFound, Code: httpx.CodeNotFound,
					Message: fmt.Sprintf("job %s deleted while waiting", name)}
			}
			job = *ev.Job
			if job.Status.Phase.Terminal() {
				return job, nil
			}
		case <-recheck.C:
			j, err := c.Get(ctx, name)
			if err != nil {
				// The job vanishing is terminal; anything else (a network
				// blip, a transient 5xx) is tolerated — the recheck is only
				// a guard, the healthy stream remains authoritative.
				if IsNotFound(err) {
					return job, err
				}
				continue
			}
			job = j
			if job.Status.Phase.Terminal() {
				return job, nil
			}
		}
	}
}
