// Package client is the official Go client for QRIO's unified /v1
// gateway. It exposes the full job lifecycle over HTTP: Submit (single
// and batch), Get, List (field filters and pagination), Cancel, Logs,
// Events, Watch (server-sent events) and Wait (watch-driven, no polling),
// plus node registry and Meta-Server scoring access.
//
// Every method takes a context for per-request deadlines and
// cancellation. Errors returned by the gateway are *APIError values
// carrying the envelope's machine-readable code; branch with the
// IsNotFound / IsConflict / IsInvalid / IsUnschedulable helpers instead
// of matching message strings:
//
//	c := client.New("http://localhost:8080")
//	job, err := c.Submit(ctx, client.SubmitRequest{...})
//	if client.IsConflict(err) { /* name already taken */ }
//	job, err = c.Wait(ctx, job.Name)  // event-driven, not a poll loop
package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/durability"
	"qrio/internal/device"
	"qrio/internal/gateway"
	"qrio/internal/httpx"
	"qrio/internal/master"
	"qrio/internal/meta"
	"qrio/internal/obs"
)

// Re-exported wire types, so downstream code never names an internal
// package.
type (
	// SubmitRequest is a complete user job submission.
	SubmitRequest = master.SubmitRequest
	// Job is a quantum job with its spec and live status.
	Job = api.QuantumJob
	// JobPhase is a job lifecycle phase.
	JobPhase = api.JobPhase
	// Node is a cluster node.
	Node = api.Node
	// Result is a finished job's execution record.
	Result = api.Result
	// Event is one observability event.
	Event = api.Event
	// Backend is a vendor device calibration.
	Backend = device.Backend
	// JobList is a page of jobs plus the continuation token.
	JobList = gateway.JobList
	// BatchSubmitItem is one per-job outcome of a batch submission.
	BatchSubmitItem = gateway.BatchSubmitItem
	// BindRequest is the POST /v1/bind body (see Client.Bind).
	BindRequest = gateway.BindRequest
	// ScoreResult is one backend's score in a batch scoring response.
	ScoreResult = meta.BatchResult
	// TenantStatus is one tenant's usage, fair-share weight and quota as
	// reported by GET /v1/tenants.
	TenantStatus = gateway.TenantStatus
	// TenantConfig is a tenant's live weight + quota override, as returned
	// by SetTenant.
	TenantConfig = api.TenantConfig
	// TenantQuota bounds a tenant's admitted-but-unfinished work.
	TenantQuota = api.TenantQuota
	// SetTenantRequest is the body of PUT /v1/tenants/{name}.
	SetTenantRequest = gateway.SetTenantRequest
	// DurabilityStats is the GET /v1/admin/durability response: WAL lag,
	// snapshot age, boot replay statistics and latched errors.
	DurabilityStats = durability.Stats
	// SnapshotResponse is the POST /v1/admin/snapshot response.
	SnapshotResponse = gateway.SnapshotResponse
	// HealthResponse is the GET /v1/health payload: typed per-component
	// statuses (store, scheduler, durability, archive, breaker) plus the
	// overall roll-up.
	HealthResponse = gateway.HealthResponse
	// MetricFamily is one parsed metric family from GET /v1/metrics.
	MetricFamily = obs.Family
	// MetricSample is one sample within a parsed metric family.
	MetricSample = obs.Sample
)

// APIError is a structured gateway error: the HTTP status plus the
// envelope's machine-readable code and message. Throttled responses
// (429 rate_limited / quota_exceeded, 503 overloaded) also carry the
// server's Retry-After delay.
type APIError struct {
	Status  int
	Code    string
	Message string
	// RetryAfter is the server's Retry-After header as a duration (0 when
	// the response carried none): how long to wait before the request
	// could succeed.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("qrio: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// code extracts the envelope code from an error chain ("" when the error
// is not an APIError).
func code(err error) string {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Code
	}
	return ""
}

// IsNotFound reports whether err is the gateway's not_found error.
func IsNotFound(err error) bool { return code(err) == httpx.CodeNotFound }

// IsConflict reports whether err is the gateway's conflict error
// (duplicate submission, cancel of an already-terminal job).
func IsConflict(err error) bool { return code(err) == httpx.CodeConflict }

// IsInvalid reports whether err is the gateway's invalid error
// (malformed or rejected request).
func IsInvalid(err error) bool { return code(err) == httpx.CodeInvalid }

// IsUnschedulable reports whether err is the gateway's unschedulable
// error (no node in the fleet can ever satisfy the job's requirements).
func IsUnschedulable(err error) bool { return code(err) == httpx.CodeUnschedulable }

// IsQuotaExceeded reports whether err is the gateway's quota_exceeded
// error (the tenant is over its pending/active/qubit-second admission
// quota; retry after in-flight work drains).
func IsQuotaExceeded(err error) bool { return code(err) == httpx.CodeQuotaExceeded }

// IsCompacted reports whether err is the gateway's compacted error (410):
// the watch resume token's position has aged out of the server's version
// journal, so an exact replay is impossible — reconnect without a token
// to get a fresh SYNC snapshot instead.
func IsCompacted(err error) bool { return code(err) == httpx.CodeCompacted }

// IsRateLimited reports whether err is a gateway throttle (HTTP 429 —
// either the token-bucket rate_limited rejection or the admission
// quota_exceeded rejection). Pair with RetryAfter(err) to pace the
// retry.
func IsRateLimited(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests
}

// IsOverloaded reports whether err is the gateway's overloaded error
// (503): the global in-flight bound shed the request — back off and
// retry.
func IsOverloaded(err error) bool { return code(err) == httpx.CodeOverloaded }

// IsDraining reports whether err is the gateway's draining error (503):
// the server is shutting down gracefully and refusing new intake.
func IsDraining(err error) bool { return code(err) == httpx.CodeDraining }

// RetryAfter extracts the server's Retry-After delay from a gateway
// error (0 when err is not an APIError or carried no header).
func RetryAfter(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}

// Client talks to a /v1 gateway.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Retry is the client's retry policy (New installs
	// httpx.DefaultRetry): idempotent calls (GET/PUT/DELETE) are retried
	// on transport errors and transient statuses (429/502/503/504) with
	// full-jitter backoff, honouring the server's Retry-After. Job
	// submission is POST and NOT retried by default; QRIO submissions are
	// name-deduplicated server-side, so opting in with
	// Retry.RetryNonIdempotent = true is safe (a replayed accepted submit
	// returns a conflict, which callers can treat as success).
	Retry httpx.RetryPolicy
}

// New builds a client for a gateway base URL (the daemon address; the /v1
// prefix is implied). The embedded timeout is a backstop for regular
// calls — use contexts for per-request deadlines. Watch streams use a
// separate, timeout-free connection.
func New(baseURL string) *Client {
	return &Client{
		BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP:    httpx.NewClient(0, nil),
		Retry:   httpx.DefaultRetry,
	}
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return httpx.DoJSONRetry(ctx, c.HTTP, c.Retry, method, c.BaseURL+path, in, out,
		func(status int, code, msg string, retryAfter time.Duration) error {
			if msg == "" {
				msg = fmt.Sprintf("%s %s failed", method, path)
			}
			if code == "" {
				code = httpx.CodeInternal
			}
			return &APIError{Status: status, Code: code, Message: msg, RetryAfter: retryAfter}
		})
}

// Healthy pings the gateway. It is the boolean form of Health — any 200
// answer counts, degraded or not.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/health", nil, nil)
}

// Health fetches the typed health payload: per-component statuses
// (store, scheduler, durability, archive, scoring breaker), the drain
// flag and the overall roll-up.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.do(ctx, http.MethodGet, "/v1/health", nil, &out)
	return out, err
}

// Metrics fetches the raw Prometheus text exposition from GET
// /v1/metrics. On a deployment without a metrics registry the gateway
// answers 404 and this returns a not_found *APIError (IsNotFound).
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		code, msg, ok := httpx.DecodeErrorBody(body)
		if !ok {
			code = httpx.CodeInternal
			msg = fmt.Sprintf("GET /v1/metrics failed with HTTP %d", resp.StatusCode)
		}
		return "", &APIError{Status: resp.StatusCode, Code: code, Message: msg}
	}
	return string(body), nil
}

// MetricFamilies fetches GET /v1/metrics and parses it into typed
// families (name order preserved from the exposition, which the server
// sorts). Use obs.FindFamily-style lookups via the returned slice.
func (c *Client) MetricFamilies(ctx context.Context) ([]MetricFamily, error) {
	text, err := c.Metrics(ctx)
	if err != nil {
		return nil, err
	}
	return obs.ParseText(text)
}

// Submit sends one job through the gateway (metadata upload,
// containerisation and cluster admission happen server-side).
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &job)
	return job, err
}

// SubmitBatch sends many jobs in one round trip. The response is aligned
// with the request order; each item carries either the accepted job or
// the structured error that rejected it, so one bad job never fails the
// batch.
func (c *Client) SubmitBatch(ctx context.Context, reqs []SubmitRequest) ([]BatchSubmitItem, error) {
	var items []BatchSubmitItem
	err := c.do(ctx, http.MethodPost, "/v1/jobs/batch", reqs, &items)
	return items, err
}

// ListOptions are the GET /v1/jobs field filters and pagination knobs.
// Zero values mean "no constraint".
type ListOptions struct {
	// Phase filters on the job lifecycle phase (e.g. "Running").
	Phase JobPhase
	// Node filters on the bound node name.
	Node string
	// Strategy filters on the scheduling strategy ("fidelity"/"topology").
	Strategy string
	// Tenant filters on the owning tenant ("default" matches pre-tenancy
	// jobs too).
	Tenant string
	// Archived merges the archive tier into the results: terminal jobs the
	// server's retention policy has moved out of the hot store. Continue
	// tokens paginate seamlessly across the hot/archive boundary.
	Archived bool
	// Limit caps the page size (0 = everything).
	Limit int
	// Continue resumes listing after a previous page's token.
	Continue string
}

// List fetches jobs matching the options, name-ordered. When the
// response's Continue token is non-empty, pass it back to fetch the next
// page.
func (c *Client) List(ctx context.Context, opts ListOptions) (JobList, error) {
	q := url.Values{}
	if opts.Phase != "" {
		q.Set("phase", string(opts.Phase))
	}
	if opts.Node != "" {
		q.Set("node", opts.Node)
	}
	if opts.Strategy != "" {
		q.Set("strategy", opts.Strategy)
	}
	if opts.Tenant != "" {
		q.Set("tenant", opts.Tenant)
	}
	if opts.Archived {
		q.Set("archived", "true")
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.Continue != "" {
		q.Set("continue", opts.Continue)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out JobList
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Get fetches one job.
func (c *Client) Get(ctx context.Context, name string) (Job, error) {
	var out Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(name), nil, &out)
	return out, err
}

// Cancel requests cancellation of a job through the full lifecycle:
// pending jobs leave the queue, scheduled jobs give their slot back, and
// running jobs have their container aborted on the node. It returns the
// job as of the request; Wait observes the final JobCancelled phase.
// Cancelling an already-terminal job returns a conflict error.
func (c *Client) Cancel(ctx context.Context, name string) (Job, error) {
	var out Job
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(name), nil, &out)
	return out, err
}

// Bind places a pending job on a node through POST /v1/bind — the
// scheduler-replica verb. version > 0 makes the bind version-conditional
// (optimistic concurrency): it commits only if the job's resource
// version, as observed in this replica's watch feed, is unchanged, and
// returns a conflict error (IsConflict) when another replica won the job
// first — skip the job and move on. Bind is deliberately NOT retried by
// the client's retry policy: a replayed bind either conflicts (harmless)
// or masks a lost race.
func (c *Client) Bind(ctx context.Context, job, node string, score float64, version int64) (Job, error) {
	var out Job
	err := c.do(ctx, http.MethodPost, "/v1/bind",
		gateway.BindRequest{Job: job, Node: node, Score: score, Version: version}, &out)
	return out, err
}

// Logs fetches a finished job's execution result.
func (c *Client) Logs(ctx context.Context, name string) (Result, error) {
	var out Result
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(name)+"/logs", nil, &out)
	return out, err
}

// Events lists a job's event trail, oldest first.
func (c *Client) Events(ctx context.Context, name string) ([]Event, error) {
	var out []Event
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(name)+"/events", nil, &out)
	return out, err
}

// Tenants lists every tenant's live usage (pending/active jobs,
// qubit-seconds in flight), fair-share weight and governing quota.
func (c *Client) Tenants(ctx context.Context) ([]TenantStatus, error) {
	var out []TenantStatus
	err := c.do(ctx, http.MethodGet, "/v1/tenants", nil, &out)
	return out, err
}

// SetTenant hot-reloads a tenant's fair-share weight and quota in one
// atomic update — no restart, effective from the next scheduling pass and
// admission check. The override fully replaces the server's static
// configuration for that tenant (weight 0 = default weight 1; zero quota
// fields = unlimited) and is durable when the server runs with -data-dir.
// A rejected configuration returns an invalid (422) error.
func (c *Client) SetTenant(ctx context.Context, name string, req SetTenantRequest) (TenantConfig, error) {
	var out TenantConfig
	err := c.do(ctx, http.MethodPut, "/v1/tenants/"+url.PathEscape(name), req, &out)
	return out, err
}

// Durability fetches the admin durability status: whether durable state is
// enabled, WAL records/bytes accumulated since the last snapshot (the
// replay debt of a crash right now), snapshot age, the boot's replay
// statistics and any latched WAL/spill errors.
func (c *Client) Durability(ctx context.Context) (DurabilityStats, error) {
	var out DurabilityStats
	err := c.do(ctx, http.MethodGet, "/v1/admin/durability", nil, &out)
	return out, err
}

// Snapshot asks the server to take a compacted snapshot immediately —
// useful before a planned restart to make the next boot's replay instant.
// Returns the new WAL generation. On an in-memory deployment it returns
// an invalid (422) error.
func (c *Client) Snapshot(ctx context.Context) (SnapshotResponse, error) {
	var out SnapshotResponse
	err := c.do(ctx, http.MethodPost, "/v1/admin/snapshot", nil, &out)
	return out, err
}

// Nodes lists the cluster's nodes.
func (c *Client) Nodes(ctx context.Context) ([]Node, error) {
	var out []Node
	err := c.do(ctx, http.MethodGet, "/v1/nodes", nil, &out)
	return out, err
}

// Node fetches one node.
func (c *Client) Node(ctx context.Context, name string) (Node, error) {
	var out Node
	err := c.do(ctx, http.MethodGet, "/v1/nodes/"+url.PathEscape(name), nil, &out)
	return out, err
}

// RegisterNode adds a vendor backend to the cluster (node, Meta-Server
// copy and kubelet).
func (c *Client) RegisterNode(ctx context.Context, b *Backend) (Node, error) {
	var out Node
	err := c.do(ctx, http.MethodPost, "/v1/nodes", b, &out)
	return out, err
}

// DeleteNode removes a node.
func (c *Client) DeleteNode(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/nodes/"+url.PathEscape(name), nil, nil)
}

// Score asks the Meta Server to score a job against one backend.
func (c *Client) Score(ctx context.Context, jobName, backendName string) (float64, error) {
	q := url.Values{"job": {jobName}, "backend": {backendName}}
	var out map[string]float64
	if err := c.do(ctx, http.MethodGet, "/v1/score?"+q.Encode(), nil, &out); err != nil {
		return 0, err
	}
	score, ok := out["score"]
	if !ok {
		return 0, fmt.Errorf("qrio: malformed score response %v", out)
	}
	return score, nil
}

// ScoreBatch scores a job against many backends in one round trip (all
// registered backends when backendNames is empty).
func (c *Client) ScoreBatch(ctx context.Context, jobName string, backendNames []string) ([]ScoreResult, error) {
	q := url.Values{"job": {jobName}}
	for _, b := range backendNames {
		q.Add("backend", b)
	}
	var out []ScoreResult
	err := c.do(ctx, http.MethodGet, "/v1/score/batch?"+q.Encode(), nil, &out)
	return out, err
}
