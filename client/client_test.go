package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qrio/internal/cluster/api"
)

func TestErrorHelpers(t *testing.T) {
	cases := []struct {
		code string
		pred func(error) bool
	}{
		{"not_found", IsNotFound},
		{"conflict", IsConflict},
		{"invalid", IsInvalid},
		{"unschedulable", IsUnschedulable},
	}
	for _, c := range cases {
		err := error(&APIError{Status: 400, Code: c.code, Message: "x"})
		for _, other := range cases {
			if got := other.pred(err); got != (other.code == c.code) {
				t.Errorf("Is%s(%s error) = %v", other.code, c.code, got)
			}
		}
		// Helpers survive wrapping.
		if !c.pred(fmt.Errorf("outer: %w", err)) {
			t.Errorf("Is%s lost through wrapping", c.code)
		}
		if c.pred(errors.New("plain")) {
			t.Errorf("Is%s matched a plain error", c.code)
		}
	}
}

// TestWatchParsesSSEStream feeds the client a hand-written SSE stream —
// including keep-alive comments and an event preceding data — and checks
// the decoded notifications come out in order.
func TestWatchParsesSSEStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/watch" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, ": ping\n\n")
		fmt.Fprint(w, "event: job\ndata: {\"kind\":\"job\",\"type\":\"SYNC\",\"job\":{\"name\":\"a\",\"spec\":{\"qasm\":\"x\",\"strategy\":\"fidelity\"},\"status\":{\"phase\":\"Running\"}},\"version\":1}\n\n")
		fmt.Fprint(w, "event: job\ndata: {\"kind\":\"job\",\"type\":\"MODIFIED\",\"job\":{\"name\":\"a\",\"spec\":{\"qasm\":\"x\",\"strategy\":\"fidelity\"},\"status\":{\"phase\":\"Succeeded\"}},\"version\":2}\n\n")
	}))
	defer srv.Close()

	c := New(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events, err := c.Watch(ctx, WatchOptions{Kind: "job", Name: "a"})
	if err != nil {
		t.Fatal(err)
	}
	var got []WatchEvent
	for ev := range events {
		got = append(got, ev)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d events, want 2: %+v", len(got), got)
	}
	if got[0].Type != EventSync || got[0].Job == nil || got[0].Job.Status.Phase != api.JobRunning {
		t.Fatalf("first event wrong: %+v", got[0])
	}
	if got[1].Type != EventModified || got[1].Job.Status.Phase != api.JobSucceeded || got[1].Version != 2 {
		t.Fatalf("second event wrong: %+v", got[1])
	}
}

// TestWatchRejectedSurfacesEnvelope: a non-200 watch response becomes a
// structured APIError, not a silent dead channel.
func TestWatchRejectedSurfacesEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":{"code":"invalid","message":"bad kind"}}`)
	}))
	defer srv.Close()
	_, err := New(srv.URL).Watch(context.Background(), WatchOptions{Kind: "nope"})
	if !IsInvalid(err) {
		t.Fatalf("want invalid APIError, got %v", err)
	}
}
