package qrio_test

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qrio"
)

// TestPublicAPIEndToEnd drives the entire system exclusively through the
// public facade — the path a downstream user takes.
func TestPublicAPIEndToEnd(t *testing.T) {
	spec := qrio.DefaultFleetSpec()
	spec.QubitCounts = []int{15, 20}
	fleet, err := qrio.GenerateFleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 20 {
		t.Fatalf("fleet = %d devices", len(fleet))
	}
	q, err := qrio.New(qrio.Config{Backends: fleet})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Stop()

	// Build a circuit with the public builders, round-trip through QASM.
	c := qrio.NewCircuit(4)
	c.H(0)
	c.CX(0, 1)
	c.CX(1, 2)
	c.CX(2, 3)
	c.MeasureAll()
	src, err := qrio.DumpQASM(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := qrio.ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumQubits != 4 {
		t.Fatalf("round trip lost qubits: %d", back.NumQubits)
	}

	job, res, err := q.SubmitAndWait(qrio.SubmitRequest{
		JobName:        "public-ghz",
		QASM:           src,
		Shots:          256,
		Strategy:       qrio.StrategyFidelity,
		TargetFidelity: 1.0,
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if job.Status.Phase != qrio.JobSucceeded {
		t.Fatalf("phase = %s", job.Status.Phase)
	}
	if res.Fidelity <= 0 || len(res.Counts) == 0 {
		t.Fatalf("result empty: %+v", res)
	}
}

func TestPublicTopologyHelpers(t *testing.T) {
	g, err := qrio.NamedTopology("ring", 5)
	if err != nil {
		t.Fatal(err)
	}
	topoQASM, err := qrio.TopologyQASM(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(topoQASM, "cx") {
		t.Fatalf("topology circuit has no cx gates:\n%s", topoQASM)
	}
	parsed, err := qrio.ParseQASM(topoQASM)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.TwoQubitGateCount() != 5 {
		t.Fatalf("ring-5 topology circuit has %d cx", parsed.TwoQubitGateCount())
	}
	if _, err := qrio.NamedTopology("klein-bottle", 5); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestPublicWorkloads(t *testing.T) {
	for name, c := range map[string]*qrio.Circuit{
		"bv":     qrio.BernsteinVazirani(6, 0b10101),
		"ghz":    qrio.GHZ(5),
		"qft":    qrio.QFT(4),
		"grover": qrio.Grover(),
		"qaoa":   qrio.QAOARing(6, 1, 3),
	} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPublicServers(t *testing.T) {
	g, err := qrio.NamedTopology("line", 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := qrio.UniformBackend("pub", g, 0.05, 0.01, 0.02, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qrio.New(qrio.Config{Backends: []*qrio.Backend{b}})
	if err != nil {
		t.Fatal(err)
	}
	// API server + client round trip.
	srv := httptest.NewServer(qrio.NewAPIServer(q).Handler())
	defer srv.Close()
	client := qrio.NewAPIClient(srv.URL)
	nodes, err := client.Nodes(t.Context())
	if err != nil || len(nodes) != 1 || nodes[0].Name != "pub" {
		t.Fatalf("nodes over public API = %v, %v", nodes, err)
	}
	// Visualizer handler serves the dashboard.
	viz := httptest.NewServer(qrio.NewVisualizer(q).Handler())
	defer viz.Close()
	resp, err := viz.Client().Get(viz.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("visualizer /cluster = %d", resp.StatusCode)
	}
}
