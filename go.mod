module qrio

go 1.24
