// Command qrio-experiments regenerates the paper's evaluation tables and
// figures (§4) on the simulated testbed.
//
// Usage:
//
//	qrio-experiments [-run table2|fig5|fig6|fig7|fig9|fig10|capacity|all] [-trials N]
//	                 [-shots N] [-seed N] [-workers N] [-small]
//
// -small shrinks the fleet (3 qubit counts x 10 edge probs) for quick runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/core"
	"qrio/internal/device"
	"qrio/internal/experiments"
	"qrio/internal/master"
	"qrio/internal/quantum/qasm"
	"qrio/internal/workload"
)

func main() {
	run := flag.String("run", "all", "experiment to run: table2|fig5|fig6|fig7|fig9|fig10|capacity|all")
	trials := flag.Int("trials", 0, "repetitions (0 = paper defaults)")
	shots := flag.Int("shots", 0, "shots per fidelity evaluation (0 = default)")
	seed := flag.Int64("seed", 1, "RNG seed for random-scheduler draws")
	workers := flag.Int("workers", 0, "parallel device evaluations (0 = NumCPU)")
	small := flag.Bool("small", false, "use a reduced 30-device fleet for quick runs")
	flag.Parse()

	cfg := experiments.Config{
		Seed:    *seed,
		Trials:  *trials,
		Shots:   *shots,
		Workers: *workers,
	}
	if *small {
		spec := device.DefaultFleetSpec()
		spec.QubitCounts = []int{15, 20, 27}
		cfg.Fleet = spec
	}

	want := func(name string) bool { return *run == "all" || *run == name }
	ran := 0
	start := time.Now()

	if want("table2") {
		rows, fleet, err := experiments.Table2(cfg)
		if err != nil {
			log.Fatalf("table2: %v", err)
		}
		fmt.Print(experiments.RenderTable2(rows))
		fmt.Printf("  (fleet: %d devices, %d..%d qubits)\n\n",
			len(fleet), fleet[0].NumQubits, fleet[len(fleet)-1].NumQubits)
		ran++
	}
	if want("fig5") {
		if err := runFig5(); err != nil {
			log.Fatalf("fig5: %v", err)
		}
		ran++
	}
	if want("fig6") {
		rows, err := experiments.Fig6(cfg)
		if err != nil {
			log.Fatalf("fig6: %v", err)
		}
		fmt.Println(experiments.RenderFig6(rows))
		ran++
	}
	if want("fig7") {
		rows, err := experiments.Fig7(cfg)
		if err != nil {
			log.Fatalf("fig7: %v", err)
		}
		fmt.Println(experiments.RenderFig7(rows))
		ran++
	}
	if want("fig9") {
		res, err := experiments.Fig9(cfg)
		if err != nil {
			log.Fatalf("fig9: %v", err)
		}
		fmt.Println(experiments.RenderFig9(res))
		ran++
	}
	if want("fig10") {
		rows, err := experiments.Fig10(cfg)
		if err != nil {
			log.Fatalf("fig10: %v", err)
		}
		fmt.Println(experiments.RenderFig10(rows))
		viaSched, err := experiments.Fig10ViaScheduler(cfg)
		if err != nil {
			log.Fatalf("fig10 (scheduler path): %v", err)
		}
		agree := true
		for i := range rows {
			if rows[i].Devices != viaSched[i].Devices {
				agree = false
			}
		}
		fmt.Printf("  scheduler filter chain agrees with analytical count: %v\n\n", agree)
		ran++
	}
	if want("capacity") {
		rows, err := experiments.Capacity(cfg)
		if err != nil {
			log.Fatalf("capacity: %v", err)
		}
		fmt.Println(experiments.RenderCapacity(rows))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
}

// runFig5 reproduces the Fig. 5 log view: a 10-qubit Bernstein–Vazirani
// job scheduled end-to-end through a small QRIO cluster.
func runFig5() error {
	spec := device.DefaultFleetSpec()
	spec.QubitCounts = []int{15, 20, 27}
	spec.EdgeProbs = []float64{0.3, 0.7}
	fleet, err := device.GenerateFleet(spec)
	if err != nil {
		return err
	}
	q, err := core.New(core.Config{Backends: fleet, KubeletSeed: 5})
	if err != nil {
		return err
	}
	q.Start()
	defer q.Stop()

	src, err := qasm.Dump(workload.BernsteinVazirani(10, 0b101101101))
	if err != nil {
		return err
	}
	job, res, err := q.SubmitAndWait(master.SubmitRequest{
		JobName:        "bv10",
		QASM:           src,
		Shots:          1024,
		Strategy:       api.StrategyFidelity,
		TargetFidelity: 1.0,
	}, 2*time.Minute)
	if err != nil {
		return err
	}
	fmt.Println("Fig. 5: QRIO logs for the 10-qubit Bernstein-Vazirani circuit")
	fmt.Printf("  job %s -> %s on node %s (score %.4f)\n",
		job.Name, job.Status.Phase, job.Status.Node, job.Status.Score)
	fmt.Println("  " + strings.Join(res.LogLines, "\n  "))
	fmt.Println()
	return nil
}
