// Command qrio-sched runs an out-of-process scheduler replica against a
// remote QRIO gateway. It holds no cluster state of its own: the pending
// queue and fleet are watch-fed over GET /v1/watch (self-healing resume),
// candidates are ranked through the gateway's batch scoring route, and
// every placement is a version-conditional POST /v1/bind — so any number
// of qrio-sched processes can race over one queue with exactly-once
// binds. Run the gateway with scheduling disabled (or let replicas race
// the in-process loop; optimistic concurrency keeps both safe).
//
// Usage:
//
//	qrio-sched -gateway http://host:8080 [-replicas N -index I]
//	           [-assume I,J] [-interval D] [-concurrency N] [-stats D]
//
// -replicas/-index shard the pending queue hash(job) mod N so steady-state
// replicas stay off each other's jobs; -assume takes over the listed
// peers' shards at startup (manual takeover after a replica loss).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"qrio/client"
	"qrio/internal/replica"
	"qrio/internal/sched"
)

func main() {
	gatewayURL := flag.String("gateway", "http://localhost:8080", "base URL of the QRIO /v1 gateway")
	replicas := flag.Int("replicas", 1, "total scheduler replicas sharding the pending queue")
	index := flag.Int("index", 0, "this replica's shard index (0-based, < -replicas)")
	assume := flag.String("assume", "", "comma-separated peer shard indexes to take over at startup")
	interval := flag.Duration("interval", 50*time.Millisecond, "scheduling pass cadence")
	concurrency := flag.Int("concurrency", 16, "max binds per pass")
	statsEvery := flag.Duration("stats", 30*time.Second, "log bind/conflict counters at this cadence (0 = never)")
	flag.Parse()

	part, err := sched.NewPartition(*replicas, *index)
	if err != nil {
		log.Fatalf("qrio-sched: %v", err)
	}
	rep := &replica.Replica{
		Client:      client.New(*gatewayURL),
		Partition:   part,
		Interval:    *interval,
		Concurrency: *concurrency,
	}
	if *assume != "" {
		for _, f := range strings.Split(*assume, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				log.Fatalf("qrio-sched: bad -assume index %q: %v", f, err)
			}
			rep.Assume(idx)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					s := rep.Stats()
					log.Printf("qrio-sched: shard %d/%d binds=%d conflicts=%d errors=%d passes=%d",
						*index, *replicas, s.Binds, s.Conflicts, s.Errors, s.Passes)
				}
			}
		}()
	}

	log.Printf("qrio-sched: shard %d/%d scheduling against %s", *index, *replicas, *gatewayURL)
	if err := rep.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "qrio-sched: %v\n", err)
		os.Exit(1)
	}
	s := rep.Stats()
	log.Printf("qrio-sched: shutdown — binds=%d conflicts=%d errors=%d", s.Binds, s.Conflicts, s.Errors)
}
