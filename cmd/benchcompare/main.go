// Command benchcompare diffs a fresh benchmark run against the committed
// baseline (BENCH_results.json) and fails on throughput regressions — the
// guard that keeps the scheduling hot path from quietly decaying as the
// codebase grows. Both inputs are `go test -json` streams as produced by
// `make bench-json` / `make bench-compare`.
//
// For every benchmark matching -match (comma-separated name prefixes), the
// throughput is the benchmark's own */s metric when it reports one
// (jobs/s, bound-jobs/s, ...) and 1e9/ns-op otherwise. When a stream holds
// several runs of one benchmark (`-count=N`), the MEDIAN throughput is
// compared — single noisy runs stop failing CI. A benchmark regresses
// when the median drops more than -threshold percent below the baseline.
// Benchmarks present on only one side are reported but never fail the
// run, so adding or retiring benches doesn't break CI.
//
// When $GITHUB_STEP_SUMMARY is set (or -summary names a file), the delta
// table is additionally appended there as GitHub-flavoured markdown, so
// every CI run shows its per-benchmark deltas on the workflow summary
// page.
//
// Refresh the baseline with `make bench-json` on a quiet machine and
// commit the resulting BENCH_results.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the test2json stream we care about.
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// result is one parsed benchmark line.
type result struct {
	nsPerOp float64
	metrics map[string]float64 // unit → value, e.g. "bound-jobs/s" → 19870
}

// throughput returns ops-per-second-like figures: a reported */s metric
// when present (preferring it: the bench chose it as the headline), else
// the inverse of ns/op.
func (r result) throughput() (float64, string) {
	var units []string
	for unit := range r.metrics {
		if strings.HasSuffix(unit, "/s") {
			units = append(units, unit)
		}
	}
	if len(units) > 0 {
		sort.Strings(units) // deterministic pick if a bench reports several
		return r.metrics[units[0]], units[0]
	}
	if r.nsPerOp > 0 {
		return 1e9 / r.nsPerOp, "op/s"
	}
	return 0, ""
}

// parseFile extracts benchmark results from a test2json stream. A stream
// produced with -count=N yields N entries per benchmark.
func parseFile(path string) (map[string][]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	// last tracks the benchmark the stream is currently inside: with
	// -count=N only the first run's events carry the Test field — the
	// repeats arrive as bare package-level numeric lines and attribute to
	// the most recently named benchmark (runs are sequential).
	last := ""
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate stray non-JSON lines
		}
		if ev.Test != "" {
			last = ev.Test
		}
		if ev.Action != "output" {
			continue
		}
		if trimmed := strings.TrimSpace(ev.Output); strings.HasPrefix(trimmed, "Benchmark") &&
			!strings.Contains(trimmed, " ns/op") {
			// A name-only flush ("BenchmarkFoo    \t") opens a run whose
			// numbers follow in a later event.
			if f := strings.Fields(trimmed); len(f) > 0 {
				last = stripProcSuffix(f[0])
			}
			continue
		}
		fallback := ev.Test
		if fallback == "" {
			fallback = last
		}
		name, res, ok := parseBenchLine(fallback, ev.Output)
		if ok {
			out[name] = append(out[name], res)
			last = name
		}
	}
	return out, sc.Err()
}

// medianThroughput reduces a benchmark's runs to the median throughput
// (the de-flaking step: with -count=3 one outlier run cannot swing the
// comparison). The unit comes from the first run reporting one.
func medianThroughput(runs []result) (float64, string) {
	vals := make([]float64, 0, len(runs))
	unit := ""
	for _, r := range runs {
		v, u := r.throughput()
		if v <= 0 {
			continue
		}
		vals = append(vals, v)
		if unit == "" {
			unit = u
		}
	}
	if len(vals) == 0 {
		return 0, ""
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid], unit
	}
	return (vals[mid-1] + vals[mid]) / 2, unit
}

// parseBenchLine parses one benchmark result. test2json puts the name in
// the event's Test field; for slow benchmarks the Output carries only
// `       1	  123 ns/op	 456 x/s` (the name was flushed in an earlier
// event), while fast ones repeat `BenchmarkFoo-8` at the start.
func parseBenchLine(test, line string) (string, result, bool) {
	line = strings.TrimSpace(line)
	if !strings.Contains(line, " ns/op") {
		return "", result{}, false
	}
	fields := strings.Fields(line)
	name := test
	if strings.HasPrefix(line, "Benchmark") {
		name = stripProcSuffix(fields[0])
		fields = fields[1:]
	}
	if name == "" || !strings.HasPrefix(name, "Benchmark") || len(fields) < 3 {
		return "", result{}, false
	}
	res := result{metrics: make(map[string]float64)}
	// fields[0] is the iteration count; after that, (value, unit) pairs.
	for i := 1; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.nsPerOp = v
		} else {
			res.metrics[unit] = v
		}
	}
	return name, res, true
}

// stripProcSuffix removes the -GOMAXPROCS suffix so runs on machines with
// different core counts align on one benchmark name.
func stripProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func matchesAny(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if p != "" && strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// row is one rendered comparison line, shared by the console table and
// the markdown step summary.
type row struct {
	name, baseline, current, delta string
	regressed                      bool
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_results.json", "committed baseline (test2json stream)")
	currentPath := flag.String("current", "BENCH_current.json", "fresh run (test2json stream)")
	threshold := flag.Float64("threshold", 25, "max tolerated throughput drop, percent")
	match := flag.String("match",
		"BenchmarkSchedulePassWithHistory,BenchmarkSubmitThroughput,BenchmarkStoreContention,BenchmarkFairShare,BenchmarkWatchResume,BenchmarkWALAppend,BenchmarkReplayBoot,BenchmarkReplicatedBind",
		"comma-separated benchmark name prefixes to guard")
	summaryPath := flag.String("summary", os.Getenv("GITHUB_STEP_SUMMARY"),
		"append the delta table as markdown to this file (default: $GITHUB_STEP_SUMMARY when set)")
	flag.Parse()

	baseline, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: reading baseline: %v\n", err)
		os.Exit(2)
	}
	current, err := parseFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: reading current run: %v\n", err)
		os.Exit(2)
	}
	prefixes := strings.Split(*match, ",")

	names := make(map[string]bool)
	for n := range baseline {
		names[n] = true
	}
	for n := range current {
		names[n] = true
	}
	var ordered []string
	for n := range names {
		if matchesAny(n, prefixes) {
			ordered = append(ordered, n)
		}
	}
	sort.Strings(ordered)
	if len(ordered) == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no guarded benchmarks found in either file")
		os.Exit(2)
	}

	regressions := 0
	var rows []row
	for _, name := range ordered {
		b, inBase := baseline[name]
		c, inCur := current[name]
		switch {
		case !inBase:
			tp, unit := medianThroughput(c)
			rows = append(rows, row{name: name, baseline: "(new)",
				current: fmt.Sprintf("%.1f %s", tp, unit), delta: "-"})
		case !inCur:
			rows = append(rows, row{name: name, baseline: "-", current: "(missing)", delta: "-"})
		default:
			bt, unit := medianThroughput(b)
			ct, _ := medianThroughput(c)
			if bt <= 0 {
				continue
			}
			delta := (ct - bt) / bt * 100
			r := row{
				name:     name,
				baseline: fmt.Sprintf("%.1f %s", bt, unit),
				current:  fmt.Sprintf("%.1f %s (median of %d)", ct, unit, len(c)),
				delta:    fmt.Sprintf("%+.1f%%", delta),
			}
			if delta < -*threshold {
				r.regressed = true
				regressions++
			}
			rows = append(rows, r)
		}
	}

	fmt.Printf("%-55s %24s %34s %10s\n", "benchmark", "baseline", "current", "delta")
	for _, r := range rows {
		flag := ""
		if r.regressed {
			flag = "  REGRESSION"
		}
		fmt.Printf("%-55s %24s %34s %10s%s\n", r.name, r.baseline, r.current, r.delta, flag)
	}
	verdict := fmt.Sprintf("benchcompare: all guarded benchmarks within %.0f%% of the baseline", *threshold)
	if regressions > 0 {
		verdict = fmt.Sprintf("benchcompare: %d benchmark(s) regressed more than %.0f%% below the baseline",
			regressions, *threshold)
	}
	if err := writeSummary(*summaryPath, rows, verdict); err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: writing step summary: %v\n", err)
	}
	if regressions > 0 {
		fmt.Fprintln(os.Stderr, verdict)
		os.Exit(1)
	}
	fmt.Println(verdict)
}

// writeSummary appends the delta table as a markdown section (the GitHub
// step summary format). A missing path is a no-op.
func writeSummary(path string, rows []row, verdict string) error {
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var sb strings.Builder
	sb.WriteString("### Benchmark comparison\n\n")
	sb.WriteString("| benchmark | baseline | current | delta |\n")
	sb.WriteString("|---|---|---|---|\n")
	for _, r := range rows {
		delta := r.delta
		if r.regressed {
			delta = "**" + delta + " REGRESSION**"
		}
		fmt.Fprintf(&sb, "| `%s` | %s | %s | %s |\n", r.name, r.baseline, r.current, delta)
	}
	sb.WriteString("\n" + verdict + "\n\n")
	_, err = f.WriteString(sb.String())
	return err
}
