// Command benchcompare diffs a fresh benchmark run against the committed
// baseline (BENCH_results.json) and fails on throughput regressions — the
// guard that keeps the scheduling hot path from quietly decaying as the
// codebase grows. Both inputs are `go test -json` streams as produced by
// `make bench-json`.
//
// For every benchmark matching -match (comma-separated name prefixes), the
// throughput is the benchmark's own */s metric when it reports one
// (jobs/s, bound-jobs/s, ...) and 1e9/ns-op otherwise. A benchmark
// regresses when current throughput drops more than -threshold percent
// below the baseline. Benchmarks present on only one side are reported
// but never fail the run, so adding or retiring benches doesn't break CI.
//
// Refresh the baseline with `make bench-json` on a quiet machine and
// commit the resulting BENCH_results.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the test2json stream we care about.
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// result is one parsed benchmark line.
type result struct {
	nsPerOp float64
	metrics map[string]float64 // unit → value, e.g. "bound-jobs/s" → 19870
}

// throughput returns ops-per-second-like figures: a reported */s metric
// when present (preferring it: the bench chose it as the headline), else
// the inverse of ns/op.
func (r result) throughput() (float64, string) {
	var units []string
	for unit := range r.metrics {
		if strings.HasSuffix(unit, "/s") {
			units = append(units, unit)
		}
	}
	if len(units) > 0 {
		sort.Strings(units) // deterministic pick if a bench reports several
		return r.metrics[units[0]], units[0]
	}
	if r.nsPerOp > 0 {
		return 1e9 / r.nsPerOp, "op/s"
	}
	return 0, ""
}

// parseFile extracts benchmark results from a test2json stream.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate stray non-JSON lines
		}
		if ev.Action != "output" {
			continue
		}
		name, res, ok := parseBenchLine(ev.Test, ev.Output)
		if ok {
			out[name] = res
		}
	}
	return out, sc.Err()
}

// parseBenchLine parses one benchmark result. test2json puts the name in
// the event's Test field; for slow benchmarks the Output carries only
// `       1	  123 ns/op	 456 x/s` (the name was flushed in an earlier
// event), while fast ones repeat `BenchmarkFoo-8` at the start.
func parseBenchLine(test, line string) (string, result, bool) {
	line = strings.TrimSpace(line)
	if !strings.Contains(line, " ns/op") {
		return "", result{}, false
	}
	fields := strings.Fields(line)
	name := test
	if strings.HasPrefix(line, "Benchmark") {
		name = stripProcSuffix(fields[0])
		fields = fields[1:]
	}
	if name == "" || !strings.HasPrefix(name, "Benchmark") || len(fields) < 3 {
		return "", result{}, false
	}
	res := result{metrics: make(map[string]float64)}
	// fields[0] is the iteration count; after that, (value, unit) pairs.
	for i := 1; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.nsPerOp = v
		} else {
			res.metrics[unit] = v
		}
	}
	return name, res, true
}

// stripProcSuffix removes the -GOMAXPROCS suffix so runs on machines with
// different core counts align on one benchmark name.
func stripProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func matchesAny(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if p != "" && strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_results.json", "committed baseline (test2json stream)")
	currentPath := flag.String("current", "BENCH_current.json", "fresh run (test2json stream)")
	threshold := flag.Float64("threshold", 25, "max tolerated throughput drop, percent")
	match := flag.String("match",
		"BenchmarkSchedulePassWithHistory,BenchmarkSubmitThroughput,BenchmarkStoreContention",
		"comma-separated benchmark name prefixes to guard")
	flag.Parse()

	baseline, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: reading baseline: %v\n", err)
		os.Exit(2)
	}
	current, err := parseFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: reading current run: %v\n", err)
		os.Exit(2)
	}
	prefixes := strings.Split(*match, ",")

	names := make(map[string]bool)
	for n := range baseline {
		names[n] = true
	}
	for n := range current {
		names[n] = true
	}
	var ordered []string
	for n := range names {
		if matchesAny(n, prefixes) {
			ordered = append(ordered, n)
		}
	}
	sort.Strings(ordered)
	if len(ordered) == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no guarded benchmarks found in either file")
		os.Exit(2)
	}

	regressions := 0
	fmt.Printf("%-55s %14s %14s %8s\n", "benchmark", "baseline", "current", "delta")
	for _, name := range ordered {
		b, inBase := baseline[name]
		c, inCur := current[name]
		switch {
		case !inBase:
			tp, unit := c.throughput()
			fmt.Printf("%-55s %14s %11.1f %s %8s\n", name, "(new)", tp, unit, "-")
		case !inCur:
			fmt.Printf("%-55s %14s %14s %8s  (missing from current run)\n", name, "-", "-", "-")
		default:
			bt, unit := b.throughput()
			ct, _ := c.throughput()
			if bt <= 0 {
				continue
			}
			delta := (ct - bt) / bt * 100
			flag := ""
			if delta < -*threshold {
				flag = "  REGRESSION"
				regressions++
			}
			fmt.Printf("%-55s %11.1f %s %11.1f %s %+7.1f%%%s\n", name, bt, unit, ct, unit, delta, flag)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %d benchmark(s) regressed more than %.0f%% below the baseline\n",
			regressions, *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchcompare: all guarded benchmarks within %.0f%% of the baseline\n", *threshold)
}
