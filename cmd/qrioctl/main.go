// Command qrioctl is the CLI client for a running qrio daemon, speaking
// the unified /v1 gateway: submit jobs (single or from multiple files),
// list and filter them, cancel them at any lifecycle stage, stream
// cluster changes live, and fetch execution logs.
//
// Usage:
//
//	qrioctl -server http://localhost:8080 nodes
//	qrioctl -server http://localhost:8080 list [-phase Running] [-node N] [-strategy fidelity] [-limit K]
//	qrioctl -server http://localhost:8080 submit -name bv -qasm circuit.qasm \
//	        -fidelity 1.0 [-max2q 0.2] [-shots 1024]
//	qrioctl -server http://localhost:8080 submit -name opt -qasm c.qasm \
//	        -topology ring -topology-qubits 6
//	qrioctl -server http://localhost:8080 cancel bv
//	qrioctl -server http://localhost:8080 watch [JOB]
//	qrioctl -server http://localhost:8080 logs bv
//	qrioctl -server http://localhost:8080 events bv
//	qrioctl -server http://localhost:8080 tenants set -weight 3 -max-active 5 alice
//	qrioctl -server http://localhost:8080 health
//	qrioctl -server http://localhost:8080 metrics [-family qrio_gateway_requests_total]
//	qrioctl -server http://localhost:8080 admin durability
//	qrioctl -server http://localhost:8080 admin snapshot
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"qrio"
	"qrio/client"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "qrio daemon base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := client.New(*server)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch args[0] {
	case "tenants":
		if len(args) > 1 && args[1] == "set" {
			tenantsSet(ctx, c, args[2:])
			return
		}
		tenants, err := c.Tenants(ctx)
		check(err)
		fmt.Printf("%-16s %6s %8s %8s %12s %s\n", "TENANT", "WEIGHT", "PENDING", "ACTIVE", "QUBIT-SEC", "QUOTA")
		for _, t := range tenants {
			quota := "unlimited"
			if !t.Quota.Unlimited() {
				quota = fmt.Sprintf("pending=%d active=%d qubit-sec=%g",
					t.Quota.MaxPending, t.Quota.MaxActive, t.Quota.MaxQubitSeconds)
			}
			fmt.Printf("%-16s %6d %8d %8d %12.3f %s\n",
				t.Tenant, t.Weight, t.Pending, t.Active, t.QubitSeconds, quota)
		}
	case "health":
		health(ctx, c)
	case "metrics":
		metrics(ctx, c, args[1:])
	case "admin":
		admin(ctx, c, args[1:])
	case "nodes":
		nodes, err := c.Nodes(ctx)
		check(err)
		fmt.Printf("%-18s %-9s %7s %10s %10s %s\n", "NAME", "PHASE", "QUBITS", "AVG2QERR", "READOUT", "RUNNING")
		for _, n := range nodes {
			fmt.Printf("%-18s %-9s %7s %10.10s %10.10s %s\n",
				n.Name, n.Status.Phase, n.Labels["qrio.io/qubits"],
				n.Labels["qrio.io/avg-2q-error"], n.Labels["qrio.io/avg-readout-error"],
				strings.Join(n.Status.RunningJobs, ","))
		}
	case "jobs", "list":
		list(ctx, c, args[1:])
	case "logs":
		if len(args) < 2 {
			usage()
		}
		res, err := c.Logs(ctx, args[1])
		check(err)
		for _, line := range res.LogLines {
			fmt.Println(line)
		}
		fmt.Printf("fidelity=%.4f node=%s elapsed=%dms\n", res.Fidelity, res.Node, res.ElapsedMS)
	case "events":
		if len(args) < 2 {
			usage()
		}
		events, err := c.Events(ctx, args[1])
		check(err)
		for _, e := range events {
			fmt.Printf("%s  %-14s %s\n", e.Time.Format("15:04:05.000"), e.Reason, e.Message)
		}
	case "submit":
		submit(ctx, c, args[1:])
	case "cancel":
		if len(args) < 2 {
			usage()
		}
		job, err := c.Cancel(ctx, args[1])
		check(err)
		if job.Status.Phase == qrio.JobCancelled {
			fmt.Printf("job %s cancelled (%s)\n", job.Name, job.Status.Message)
			return
		}
		fmt.Printf("job %s: cancellation requested, aborting container on %s\n", job.Name, job.Status.Node)
		final, err := c.Wait(ctx, job.Name)
		check(err)
		fmt.Printf("job %s now %s (%s)\n", final.Name, final.Status.Phase, final.Status.Message)
	case "watch":
		watch(ctx, c, args[1:])
	default:
		usage()
	}
}

func list(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	phase := fs.String("phase", "", "filter by phase (Pending|Scheduled|Running|Succeeded|Failed|Cancelled)")
	node := fs.String("node", "", "filter by bound node")
	strategy := fs.String("strategy", "", "filter by strategy (fidelity|topology)")
	tenant := fs.String("tenant", "", "filter by owning tenant")
	archived := fs.Bool("archived", false, "include terminal jobs retired to the archive tier")
	limit := fs.Int("limit", 0, "page size (0 = everything; pages are fetched until exhausted)")
	check(fs.Parse(args))
	opts := client.ListOptions{
		Phase:    client.JobPhase(*phase),
		Node:     *node,
		Strategy: *strategy,
		Tenant:   *tenant,
		Archived: *archived,
		Limit:    *limit,
	}
	fmt.Printf("%-20s %-12s %-10s %-9s %-18s %8s\n", "NAME", "TENANT", "PHASE", "STRATEGY", "NODE", "SCORE")
	for {
		page, err := c.List(ctx, opts)
		check(err)
		for _, j := range page.Items {
			fmt.Printf("%-20s %-12s %-10s %-9s %-18s %8.4f\n",
				j.Name, j.Spec.Tenant, j.Status.Phase, j.Spec.Strategy, j.Status.Node, j.Status.Score)
		}
		if page.Continue == "" {
			return
		}
		opts.Continue = page.Continue
	}
}

// watch streams cluster changes. With a job name it follows that job and
// exits when it reaches a terminal phase; without one it streams all job
// and node transitions until interrupted.
func watch(ctx context.Context, c *client.Client, args []string) {
	// Reconnect: a dropped SSE connection resumes from its last token, so
	// a long-running terminal session never misses a transition.
	opts := client.WatchOptions{Reconnect: true}
	follow := ""
	if len(args) > 0 {
		follow = args[0]
		opts = client.WatchOptions{Kind: "job", Name: follow, Reconnect: true}
		// Fail fast on a typo'd name instead of streaming silence.
		if j, err := c.Get(ctx, follow); err != nil {
			check(err)
		} else if j.Status.Phase.Terminal() {
			fmt.Printf("job %s already %s (%s)\n", j.Name, j.Status.Phase, j.Status.Message)
			return
		}
	}
	events, err := c.Watch(ctx, opts)
	check(err)
	for ev := range events {
		switch {
		case ev.Job != nil:
			j := ev.Job
			fmt.Printf("%-9s job  %-20s %-10s node=%-18s %s\n",
				ev.Type, j.Name, j.Status.Phase, j.Status.Node, j.Status.Message)
			if follow != "" && j.Name == follow && j.Status.Phase.Terminal() {
				return
			}
		case ev.Node != nil:
			n := ev.Node
			fmt.Printf("%-9s node %-20s %-10s running=%s\n",
				ev.Type, n.Name, n.Status.Phase, strings.Join(n.Status.RunningJobs, ","))
		}
	}
}

func submit(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	name := fs.String("name", "", "job name (required)")
	tenant := fs.String("tenant", "", "tenant to charge the job to (default: the default tenant)")
	qasmPath := fs.String("qasm", "", "path to the OpenQASM 2.0 circuit (required)")
	shots := fs.Int("shots", 1024, "shots")
	fidelityTarget := fs.Float64("fidelity", 0, "fidelity target (fidelity strategy)")
	topology := fs.String("topology", "", "topology name (topology strategy): line|ring|grid|full|heavy-square|star|tree")
	topoQubits := fs.Int("topology-qubits", 0, "topology qubit count")
	max2q := fs.Float64("max2q", 0, "max average 2-qubit error")
	maxReadout := fs.Float64("max-readout", 0, "max readout error")
	minQubits := fs.Int("min-qubits", 0, "minimum device qubits")
	cpu := fs.Int64("cpu", 0, "CPU request (millicores)")
	mem := fs.Int64("memory", 0, "memory request (MB)")
	wait := fs.Bool("wait", false, "wait for the job to finish and print its logs")
	check(fs.Parse(args))
	if *name == "" || *qasmPath == "" {
		log.Fatal("submit needs -name and -qasm")
	}
	src, err := os.ReadFile(*qasmPath)
	check(err)

	req := client.SubmitRequest{
		JobName:   *name,
		Tenant:    *tenant,
		QASM:      string(src),
		Shots:     *shots,
		CPUMillis: *cpu,
		MemoryMB:  *mem,
		Requirements: qrio.DeviceRequirements{
			MinQubits:     *minQubits,
			MaxAvg2QError: *max2q,
			MaxReadoutErr: *maxReadout,
		},
	}
	switch {
	case *fidelityTarget > 0:
		req.Strategy = qrio.StrategyFidelity
		req.TargetFidelity = *fidelityTarget
	case *topology != "":
		if *topoQubits <= 0 {
			log.Fatal("topology strategy needs -topology-qubits")
		}
		g, err := qrio.NamedTopology(*topology, *topoQubits)
		check(err)
		topoQASM, err := qrio.TopologyQASM(g)
		check(err)
		req.Strategy = qrio.StrategyTopology
		req.TopologyQASM = topoQASM
	default:
		log.Fatal("choose a strategy: -fidelity F or -topology NAME")
	}
	// One call: the gateway uploads the Meta-Server metadata and routes
	// through the Master Server on the user's behalf.
	job, err := c.Submit(ctx, req)
	check(err)
	fmt.Printf("job %s submitted (phase %s, image %s)\n", job.Name, job.Status.Phase, job.Spec.Image)
	if !*wait {
		return
	}
	final, err := c.Wait(ctx, job.Name)
	check(err)
	fmt.Printf("job %s: %s on node %s\n", final.Name, final.Status.Phase, final.Status.Node)
	if res, err := c.Logs(ctx, final.Name); err == nil {
		for _, line := range res.LogLines {
			fmt.Println(line)
		}
	}
}

// tenantsSet hot-reloads one tenant's fair-share weight and quota — an
// atomic server-side update, durable when the daemon runs with -data-dir.
func tenantsSet(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("tenants set", flag.ExitOnError)
	weight := fs.Int("weight", 0, "fair-share weight (0 = default weight 1)")
	maxPending := fs.Int("max-pending", 0, "cap on pending jobs (0 = unlimited)")
	maxActive := fs.Int("max-active", 0, "cap on jobs holding node resources (0 = unlimited)")
	maxQubitSec := fs.Float64("max-qubit-seconds", 0, "cap on estimated qubit-seconds in flight (0 = unlimited)")
	check(fs.Parse(args))
	if fs.NArg() != 1 {
		log.Fatal("tenants set needs exactly one TENANT argument, e.g.: qrioctl tenants set -weight 3 alice")
	}
	cfg, err := c.SetTenant(ctx, fs.Arg(0), client.SetTenantRequest{
		Weight: *weight,
		Quota: client.TenantQuota{
			MaxPending:      *maxPending,
			MaxActive:       *maxActive,
			MaxQubitSeconds: *maxQubitSec,
		},
	})
	check(err)
	quota := "unlimited"
	if !cfg.Quota.Unlimited() {
		quota = fmt.Sprintf("pending=%d active=%d qubit-sec=%g",
			cfg.Quota.MaxPending, cfg.Quota.MaxActive, cfg.Quota.MaxQubitSeconds)
	}
	weightStr := "1 (default)"
	if cfg.Weight > 0 {
		weightStr = fmt.Sprintf("%d", cfg.Weight)
	}
	fmt.Printf("tenant %s updated: weight=%s quota=%s\n", cfg.Name, weightStr, quota)
}

// health prints the typed GET /v1/health payload, one component per line.
func health(ctx context.Context, c *client.Client) {
	h, err := c.Health(ctx)
	check(err)
	fmt.Printf("status: %s\n", h.Status)
	fmt.Printf("store:      %-9s jobs=%d nodes=%d\n", h.Store.Status, h.Store.Jobs, h.Store.Nodes)
	fmt.Printf("scheduler:  %-9s pending=%d active=%d\n", h.Scheduler.Status, h.Scheduler.Pending, h.Scheduler.Active)
	fmt.Printf("durability: %-9s", h.Durability.Status)
	if h.Durability.Enabled {
		fmt.Printf(" generation=%d wal-records=%d", h.Durability.Generation, h.Durability.WALRecords)
		if h.Durability.WALError != "" {
			fmt.Printf(" wal-error=%q", h.Durability.WALError)
		}
		if h.Durability.WALErrorClears > 0 {
			fmt.Printf(" wal-error-clears=%d", h.Durability.WALErrorClears)
		}
	}
	fmt.Println()
	fmt.Printf("archive:    %-9s resident=%d dropped=%d", h.Archive.Status, h.Archive.Resident, h.Archive.Dropped)
	if h.Archive.SpillError != "" {
		fmt.Printf(" spill-error=%q", h.Archive.SpillError)
	}
	fmt.Println()
	fmt.Printf("breaker:    %-9s state=%s opens=%d\n", h.Breaker.Status, h.Breaker.State, h.Breaker.Opens)
	if h.Draining {
		fmt.Println("draining: submissions are rejected while in-flight work finishes")
	}
}

// metrics dumps GET /v1/metrics — the raw exposition, or one family.
func metrics(ctx context.Context, c *client.Client, args []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	family := fs.String("family", "", "print only this metric family (parsed samples)")
	check(fs.Parse(args))
	if *family == "" {
		text, err := c.Metrics(ctx)
		check(err)
		fmt.Print(text)
		return
	}
	fams, err := c.MetricFamilies(ctx)
	check(err)
	for _, f := range fams {
		if f.Name != *family {
			continue
		}
		for _, s := range f.Samples {
			fmt.Printf("%s", s.Name)
			if len(s.Labels) > 0 {
				parts := make([]string, len(s.Labels))
				for i, l := range s.Labels {
					parts[i] = fmt.Sprintf("%s=%q", l.Name, l.Value)
				}
				fmt.Printf("{%s}", strings.Join(parts, ","))
			}
			fmt.Printf(" %g\n", s.Value)
		}
		return
	}
	log.Fatalf("no metric family %q (run qrioctl metrics to list them)", *family)
}

// admin drives the /v1/admin ops surface.
func admin(ctx context.Context, c *client.Client, args []string) {
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "durability":
		st, err := c.Durability(ctx)
		check(err)
		if !st.Enabled {
			fmt.Println("durability: disabled (in-memory deployment; start the daemon with -data-dir)")
			return
		}
		fmt.Printf("durability: enabled dir=%s fsync=%v\n", st.Dir, st.Fsync)
		fmt.Printf("generation: %d  snapshots: %d", st.Generation, st.Snapshots)
		if st.LastSnapshotAge != "" {
			fmt.Printf("  last-snapshot-age: %s", st.LastSnapshotAge)
		}
		fmt.Println()
		fmt.Printf("wal lag: %d records / %d bytes since last snapshot\n", st.WALRecords, st.WALBytes)
		r := st.Replay
		fmt.Printf("last boot: restored=%d replayed=%d skipped=%d torn-tails=%d archived=%d requeued=%d (%dms)\n",
			r.RestoredObjects, r.ReplayedRecords, r.SkippedRecords, r.TruncatedTails,
			r.ArchivedEntries, r.RequeuedJobs, r.DurationMillis)
		if st.WALError != "" {
			fmt.Printf("WAL ERROR (latched): %s\n", st.WALError)
		}
		if st.SpillError != "" {
			fmt.Printf("SPILL ERROR (latched): %s\n", st.SpillError)
		}
		if st.WALErrorClears > 0 {
			fmt.Printf("wal errors cleared by snapshots: %d (last at %s)\n",
				st.WALErrorClears, st.LastWALErrorClearedAt.Format("15:04:05"))
		}
	case "snapshot":
		resp, err := c.Snapshot(ctx)
		check(err)
		fmt.Printf("snapshot taken: generation %d\n", resp.Generation)
	default:
		usage()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: qrioctl [-server URL] <command>
commands:
  nodes                 list cluster nodes
  health                typed per-component health (GET /v1/health)
  metrics [-family F]   dump the Prometheus exposition (GET /v1/metrics), or one family
  tenants               list per-tenant usage, fair-share weights and quotas
  tenants set [flags] TENANT
                        hot-reload a tenant's weight/quota (-weight W,
                        -max-pending N, -max-active N, -max-qubit-seconds F)
  admin durability      show WAL lag, snapshot age and last boot's replay stats
  admin snapshot        force a compacted snapshot now
  list [flags]          list jobs (-phase P, -node N, -strategy S, -tenant T, -archived, -limit K); "jobs" is an alias
  submit -name N -qasm FILE (-fidelity F | -topology NAME -topology-qubits Q) [-tenant T] [-wait] [flags]
  cancel JOB            cancel a job (any lifecycle stage; aborts running containers)
  watch [JOB]           stream live job/node transitions (follow one job to its end)
  logs JOB              fetch a finished job's execution log
  events JOB            list a job's events`)
	os.Exit(2)
}
