// Command qrioctl is the CLI client for a running qrio daemon: submit
// jobs, inspect nodes and jobs, and fetch execution logs over the REST API.
//
// Usage:
//
//	qrioctl -server http://localhost:8080 nodes
//	qrioctl -server http://localhost:8080 jobs
//	qrioctl -server http://localhost:8080 submit -name bv -qasm circuit.qasm \
//	        -fidelity 1.0 [-max2q 0.2] [-shots 1024]
//	qrioctl -server http://localhost:8080 submit -name opt -qasm c.qasm \
//	        -topology ring -topology-qubits 6
//	qrioctl -server http://localhost:8080 logs bv
//	qrioctl -server http://localhost:8080 events bv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"qrio"

	"qrio/internal/master"
	"qrio/internal/meta"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "qrio daemon base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	apiClient := qrio.NewAPIClient(*server + "/apiserver")
	masterClient := master.NewClient(*server + "/master")
	metaClient := meta.NewClient(*server + "/meta")

	switch args[0] {
	case "nodes":
		nodes, err := apiClient.Nodes()
		check(err)
		fmt.Printf("%-18s %-9s %7s %10s %10s %s\n", "NAME", "PHASE", "QUBITS", "AVG2QERR", "READOUT", "RUNNING")
		for _, n := range nodes {
			fmt.Printf("%-18s %-9s %7s %10.10s %10.10s %s\n",
				n.Name, n.Status.Phase, n.Labels["qrio.io/qubits"],
				n.Labels["qrio.io/avg-2q-error"], n.Labels["qrio.io/avg-readout-error"],
				strings.Join(n.Status.RunningJobs, ","))
		}
	case "jobs":
		jobs, err := apiClient.Jobs()
		check(err)
		fmt.Printf("%-20s %-10s %-9s %-18s %8s\n", "NAME", "PHASE", "STRATEGY", "NODE", "SCORE")
		for _, j := range jobs {
			fmt.Printf("%-20s %-10s %-9s %-18s %8.4f\n",
				j.Name, j.Status.Phase, j.Spec.Strategy, j.Status.Node, j.Status.Score)
		}
	case "logs":
		if len(args) < 2 {
			usage()
		}
		res, err := apiClient.Logs(args[1])
		check(err)
		for _, line := range res.LogLines {
			fmt.Println(line)
		}
		fmt.Printf("fidelity=%.4f node=%s elapsed=%dms\n", res.Fidelity, res.Node, res.ElapsedMS)
	case "events":
		if len(args) < 2 {
			usage()
		}
		events, err := apiClient.Events(args[1])
		check(err)
		for _, e := range events {
			fmt.Printf("%s  %-14s %s\n", e.Time.Format("15:04:05.000"), e.Reason, e.Message)
		}
	case "submit":
		submit(masterClient, metaClient, args[1:])
	default:
		usage()
	}
}

func submit(masterClient *master.Client, metaClient *meta.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	name := fs.String("name", "", "job name (required)")
	qasmPath := fs.String("qasm", "", "path to the OpenQASM 2.0 circuit (required)")
	shots := fs.Int("shots", 1024, "shots")
	fidelityTarget := fs.Float64("fidelity", 0, "fidelity target (fidelity strategy)")
	topology := fs.String("topology", "", "topology name (topology strategy): line|ring|grid|full|heavy-square|star|tree")
	topoQubits := fs.Int("topology-qubits", 0, "topology qubit count")
	max2q := fs.Float64("max2q", 0, "max average 2-qubit error")
	maxReadout := fs.Float64("max-readout", 0, "max readout error")
	minQubits := fs.Int("min-qubits", 0, "minimum device qubits")
	cpu := fs.Int64("cpu", 0, "CPU request (millicores)")
	mem := fs.Int64("memory", 0, "memory request (MB)")
	check(fs.Parse(args))
	if *name == "" || *qasmPath == "" {
		log.Fatal("submit needs -name and -qasm")
	}
	src, err := os.ReadFile(*qasmPath)
	check(err)

	req := master.SubmitRequest{
		JobName:   *name,
		QASM:      string(src),
		Shots:     *shots,
		CPUMillis: *cpu,
		MemoryMB:  *mem,
		Requirements: qrio.DeviceRequirements{
			MinQubits:     *minQubits,
			MaxAvg2QError: *max2q,
			MaxReadoutErr: *maxReadout,
		},
	}
	jm := meta.JobMeta{JobName: *name}
	switch {
	case *fidelityTarget > 0:
		req.Strategy = qrio.StrategyFidelity
		req.TargetFidelity = *fidelityTarget
		jm.Strategy = qrio.StrategyFidelity
		jm.TargetFidelity = *fidelityTarget
		jm.CircuitQASM = string(src)
	case *topology != "":
		if *topoQubits <= 0 {
			log.Fatal("topology strategy needs -topology-qubits")
		}
		g, err := qrio.NamedTopology(*topology, *topoQubits)
		check(err)
		topoQASM, err := qrio.TopologyQASM(g)
		check(err)
		req.Strategy = qrio.StrategyTopology
		req.TopologyQASM = topoQASM
		jm.Strategy = qrio.StrategyTopology
		jm.TopologyQASM = topoQASM
	default:
		log.Fatal("choose a strategy: -fidelity F or -topology NAME")
	}
	// The visualizer flow: metadata to the Meta Server first (Table 1),
	// then the full request to the Master Server.
	check(metaClient.PutJobMeta(jm))
	job, err := masterClient.Submit(req)
	check(err)
	fmt.Printf("job %s submitted (phase %s, image %s)\n", job.Name, job.Status.Phase, job.Spec.Image)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: qrioctl [-server URL] <command>
commands:
  nodes                 list cluster nodes
  jobs                  list jobs
  submit -name N -qasm FILE (-fidelity F | -topology NAME -topology-qubits Q) [flags]
  logs JOB              fetch a finished job's execution log
  events JOB            list a job's events`)
	os.Exit(2)
}
