// Command qrio-genfleet generates the simulated device testbed (paper
// Table 2) and writes it as JSON — the vendor "backend.py" files a qrio
// daemon can load with -fleet.
//
// Usage:
//
//	qrio-genfleet [-o fleet.json] [-seed 42] [-qubits 15,20,...] [-pretty]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"qrio/internal/device"
)

func main() {
	out := flag.String("o", "fleet.json", "output path ('-' for stdout)")
	seed := flag.Int64("seed", 42, "fleet RNG seed")
	qubits := flag.String("qubits", "", "comma-separated qubit counts (default Table 2)")
	pretty := flag.Bool("pretty", false, "indent the JSON output")
	flag.Parse()

	spec := device.DefaultFleetSpec()
	spec.Seed = *seed
	if *qubits != "" {
		var counts []int
		for _, part := range strings.Split(*qubits, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				log.Fatalf("bad qubit count %q", part)
			}
			counts = append(counts, n)
		}
		spec.QubitCounts = counts
	}
	fleet, err := device.GenerateFleet(spec)
	if err != nil {
		log.Fatalf("generating fleet: %v", err)
	}
	var raw []byte
	if *pretty {
		raw, err = json.MarshalIndent(fleet, "", "  ")
	} else {
		raw, err = json.Marshal(fleet)
	}
	if err != nil {
		log.Fatalf("encoding fleet: %v", err)
	}
	if *out == "-" {
		fmt.Println(string(raw))
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		log.Fatalf("writing %s: %v", *out, err)
	}
	fmt.Printf("wrote %d devices to %s (%d bytes)\n", len(fleet), *out, len(raw))
}
