// Command qrio runs an all-in-one QRIO deployment: cluster control plane,
// scheduler, kubelets, Meta Server, Master Server and the web Visualizer,
// over a generated (or user-supplied) device fleet.
//
// Endpoints (all on one listener, path-prefixed):
//
//	/                — Visualizer dashboard (submit jobs, view cluster/logs)
//	/v1/             — unified gateway: jobs (submit/batch/list/cancel),
//	                   nodes, scores, events, SSE watch — what qrioctl and
//	                   the qrio/client package speak
//	/apiserver/      — cluster REST API   (nodes, jobs, logs, events)
//	/meta/           — Meta Server REST   (backends, job metadata, scoring)
//	/master/         — Master Server REST (job submission, logs)
//
// Usage:
//
//	qrio [-addr :8080] [-fleet fleet.json] [-small] [-concurrency N]
//	     [-node-concurrency N] [-score-workers N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"qrio"

	"qrio/internal/daemon"
	"qrio/internal/device"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	fleetPath := flag.String("fleet", "", "JSON fleet file (default: generate the Table 2 fleet)")
	small := flag.Bool("small", false, "generate a reduced 30-device fleet")
	concurrency := flag.Int("concurrency", 1, "scheduler jobs per pass (1 = paper behaviour, >1 = batched dispatch)")
	nodeConcurrency := flag.Int("node-concurrency", 1, "containers per node (1 = paper behaviour; >1 bounded by node CPU capacity)")
	scoreWorkers := flag.Int("score-workers", 0, "total concurrent Meta-Server scoring calls across the ranked batch (0 = GOMAXPROCS)")
	flag.Parse()

	fleet, err := loadFleet(*fleetPath, *small)
	if err != nil {
		log.Fatalf("loading fleet: %v", err)
	}
	q, err := qrio.New(qrio.Config{
		Backends:        fleet,
		Concurrency:     *concurrency,
		NodeConcurrency: *nodeConcurrency,
		ScoreWorkers:    *scoreWorkers,
	})
	if err != nil {
		log.Fatalf("assembling QRIO: %v", err)
	}
	q.Start()
	defer q.Stop()

	log.Printf("QRIO up: %d nodes, visualizer at http://localhost%s/", len(fleet), *addr)
	srv := &http.Server{Addr: *addr, Handler: daemon.Handler(q)}
	go func() {
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("serving: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	srv.Close()
}

func loadFleet(path string, small bool) ([]*device.Backend, error) {
	if path != "" {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var fleet []*device.Backend
		if err := json.Unmarshal(raw, &fleet); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		return fleet, nil
	}
	spec := device.DefaultFleetSpec()
	if small {
		spec.QubitCounts = []int{15, 20, 27}
	}
	return device.GenerateFleet(spec)
}
