// Command qrio runs an all-in-one QRIO deployment: cluster control plane,
// scheduler, kubelets, Meta Server, Master Server and the web Visualizer,
// over a generated (or user-supplied) device fleet.
//
// Endpoints (all on one listener, path-prefixed):
//
//	/                — Visualizer dashboard (submit jobs, view cluster/logs)
//	/v1/             — unified gateway: jobs (submit/batch/list/cancel),
//	                   nodes, scores, events, SSE watch, typed health
//	                   (/v1/health) and Prometheus metrics (/v1/metrics) —
//	                   what qrioctl and the qrio/client package speak
//	/apiserver/      — cluster REST API   (nodes, jobs, logs, events)
//	/meta/           — Meta Server REST   (backends, job metadata, scoring)
//	/master/         — Master Server REST (job submission, logs)
//
// Usage:
//
//	qrio [-addr :8080] [-fleet fleet.json] [-small] [-concurrency N]
//	     [-scheduler=false] [-node-concurrency N] [-score-workers N]
//	     [-tenant-weights a=3,b=1] [-quota-pending N] [-quota-active N]
//	     [-quota-qubit-seconds F]
//	     [-rate-limit F] [-rate-burst N] [-max-in-flight N]
//	     [-retention-max-age D] [-retention-max-count N] [-archive-spill F]
//	     [-data-dir DIR] [-wal-fsync=false] [-snapshot-interval D]
//	     [-faults point:mode[:prob[:latency]],...]
//
// -scheduler=false starts a gateway-only deployment: jobs are accepted and
// executed but never placed until external scheduler replicas (qrio-sched)
// bind them through POST /v1/bind — see README "Scaling out".
//
// -rate-limit bounds each tenant's submission arrival rate (token bucket,
// 429 rate_limited + Retry-After); -max-in-flight sheds excess concurrent
// /v1 requests (503 overloaded). On SIGTERM/SIGINT the daemon drains
// gracefully: intake answers 503 draining, in-flight requests and
// containers finish, unclaimed scheduled jobs are requeued, and (with
// -data-dir) a final compacted snapshot is written. -faults arms named
// fault points for resilience rehearsal — never in production.
//
// With -data-dir, cluster state is durable: every mutation is written to a
// per-shard WAL under DIR, compacted snapshots are taken every
// -snapshot-interval, and a restart replays the directory — jobs, results,
// events, tenant overrides and the archive come back; jobs that were
// running when the process died are re-queued. Without -data-dir the
// deployment is fully in-memory, exactly as before.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"qrio"

	"qrio/internal/cluster/api"
	"qrio/internal/daemon"
	"qrio/internal/device"
	"qrio/internal/faults"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	fleetPath := flag.String("fleet", "", "JSON fleet file (default: generate the Table 2 fleet)")
	small := flag.Bool("small", false, "generate a reduced 30-device fleet")
	concurrency := flag.Int("concurrency", 1, "scheduler jobs per pass (1 = paper behaviour, >1 = batched dispatch)")
	scheduler := flag.Bool("scheduler", true, "run the embedded scheduler (=false for a gateway-only deployment driven by external qrio-sched replicas)")
	nodeConcurrency := flag.Int("node-concurrency", 1, "containers per node (1 = paper behaviour; >1 bounded by node CPU capacity)")
	scoreWorkers := flag.Int("score-workers", 0, "total concurrent Meta-Server scoring calls across the ranked batch (0 = GOMAXPROCS)")
	tenantWeights := flag.String("tenant-weights", "", "fair-share weights as tenant=weight pairs, e.g. alice=3,bob=1 (unlisted tenants weigh 1)")
	quotaPending := flag.Int("quota-pending", 0, "per-tenant admission cap on pending jobs (0 = unlimited)")
	quotaActive := flag.Int("quota-active", 0, "per-tenant admission cap on jobs holding node resources (0 = unlimited)")
	quotaQubitSec := flag.Float64("quota-qubit-seconds", 0, "per-tenant admission cap on estimated qubit-seconds in flight (0 = unlimited)")
	retentionAge := flag.Duration("retention-max-age", 0, "archive terminal jobs older than this (0 = keep resident forever)")
	retentionCount := flag.Int("retention-max-count", 0, "archive the oldest terminal jobs beyond this resident count (0 = unlimited)")
	archiveSpill := flag.String("archive-spill", "", "append archived jobs as JSON lines to this file (incompatible with -data-dir, which owns its own spill)")
	dataDir := flag.String("data-dir", "", "durable state directory: WAL + snapshots + archive spill (empty = in-memory)")
	walFsync := flag.Bool("wal-fsync", true, "fsync every WAL append (with -data-dir; =false trades the log tail on power loss for latency)")
	snapshotInterval := flag.Duration("snapshot-interval", 0, "compacted snapshot period with -data-dir (0 = 5m default, negative = admin-triggered only)")
	rateLimit := flag.Float64("rate-limit", 0, "per-tenant submission rate limit in submissions/second (0 = unlimited; per-tenant overrides via PUT /v1/tenants/{name})")
	rateBurst := flag.Int("rate-burst", 0, "token-bucket burst for -rate-limit (0 = max(1, ceil(rate)))")
	maxInFlight := flag.Int("max-in-flight", 0, "global cap on concurrent /v1 requests; excess sheds with 503 overloaded (0 = uncapped)")
	faultSpec := flag.String("faults", "", "DEV ONLY: arm fault points as point:mode[:probability[:latency]] entries, comma-separated, e.g. meta.score:error:0.5 (modes: error, latency, hang)")
	flag.Parse()

	if *dataDir != "" && *archiveSpill != "" {
		log.Fatalf("-archive-spill cannot be combined with -data-dir: the data directory already maintains %s/archive.jsonl", *dataDir)
	}
	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		log.Fatalf("parsing -tenant-weights: %v", err)
	}
	fleet, err := loadFleet(*fleetPath, *small)
	if err != nil {
		log.Fatalf("loading fleet: %v", err)
	}
	if err := faults.Default.Parse(*faultSpec); err != nil {
		log.Fatalf("parsing -faults: %v", err)
	}
	if armed := faults.Default.Armed(); len(armed) > 0 {
		log.Printf("WARNING: fault injection armed for %s — this daemon will misbehave on purpose", strings.Join(armed, ", "))
	}
	q, err := qrio.New(qrio.Config{
		Backends:         fleet,
		Metrics:          qrio.NewMetricsRegistry(),
		Concurrency:      *concurrency,
		DisableScheduler: !*scheduler,
		NodeConcurrency:  *nodeConcurrency,
		ScoreWorkers:     *scoreWorkers,
		TenantWeights:    weights,
		TenantQuotas: api.TenantQuotaPolicy{
			Default: api.TenantQuota{
				MaxPending:      *quotaPending,
				MaxActive:       *quotaActive,
				MaxQubitSeconds: *quotaQubitSec,
			},
		},
		TenantRateLimits: api.TenantRateLimitPolicy{
			Default: api.TenantRateLimit{
				SubmitPerSecond: *rateLimit,
				Burst:           *rateBurst,
			},
		},
		Retention: qrio.RetentionPolicy{
			MaxTerminalAge:   *retentionAge,
			MaxTerminalCount: *retentionCount,
		},
		Durability: qrio.DurabilityOptions{
			Dir:              *dataDir,
			Fsync:            *walFsync,
			SnapshotInterval: *snapshotInterval,
		},
	})
	if err != nil {
		log.Fatalf("assembling QRIO: %v", err)
	}
	if q.Durability != nil {
		st := q.Durability.Stats()
		log.Printf("durable state: %s (gen %d, restored %d objects, replayed %d records, requeued %d jobs in %dms)",
			*dataDir, st.Generation, st.Replay.RestoredObjects, st.Replay.ReplayedRecords,
			st.Replay.RequeuedJobs, st.Replay.DurationMillis)
	}
	if *archiveSpill != "" {
		f, err := os.OpenFile(*archiveSpill, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening -archive-spill %s: %v", *archiveSpill, err)
		}
		defer f.Close()
		q.State.Archived.SetSpill(f)
	}
	q.Start()
	defer q.Close()

	if !*scheduler {
		log.Print("embedded scheduler disabled: jobs wait for external qrio-sched replicas on POST /v1/bind")
	}
	log.Printf("QRIO up: %d nodes, visualizer at http://localhost%s/", len(fleet), *addr)
	srv := &http.Server{Addr: *addr, Handler: daemon.HandlerMaxInFlight(q, *maxInFlight)}
	go func() {
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("serving: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// Graceful drain: stop intake first (503 draining; health reports it so
	// load balancers rotate away), let in-flight requests and containers
	// finish, requeue anything bound but unclaimed, snapshot, release.
	log.Print("draining: submissions rejected, finishing in-flight work")
	q.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain: http shutdown: %v", err)
	}
	cancel()
	requeued, err := q.Drain()
	if err != nil {
		log.Printf("drain: %v", err)
	}
	log.Printf("drained: %d unclaimed jobs requeued; shutting down", requeued)
}

// parseTenantWeights parses "a=3,b=1" into a weight map.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, raw, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("malformed pair %q (want tenant=weight)", pair)
		}
		if !api.ValidTenantName(name) {
			return nil, fmt.Errorf("invalid tenant name %q", name)
		}
		w, err := strconv.Atoi(raw)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("tenant %s: weight %q must be a positive integer", name, raw)
		}
		out[name] = w
	}
	return out, nil
}

func loadFleet(path string, small bool) ([]*device.Backend, error) {
	if path != "" {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var fleet []*device.Backend
		if err := json.Unmarshal(raw, &fleet); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		return fleet, nil
	}
	spec := device.DefaultFleetSpec()
	if small {
		spec.QubitCounts = []int{15, 20, 27}
	}
	return device.GenerateFleet(spec)
}
