// Command qrio-sim runs QRIO's virtual-time fleet simulator: seeded,
// open-loop workloads driven through the real cluster state, scheduler
// and controller at thousands-of-nodes / millions-of-jobs scale, in
// seconds. It is the capacity-planning harness: an experiments file
// describes a grid of scenarios, and each run emits deterministic
// markdown + CSV artifacts (same seed → byte-identical output; wall
// clock goes to stderr only, never into an artifact).
//
//	qrio-sim -experiments sim/experiments.json -out sim/results
//	qrio-sim -experiments sim/experiments.json -only baseline -out /tmp/r
//	qrio-sim -record trace.jsonl -only baseline   # dump the workload trace
//	qrio-sim -replay trace.jsonl -only baseline   # re-run from a trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"qrio/internal/sim"
	"qrio/internal/simload"
)

// Experiment is one named scenario in the grid.
type Experiment struct {
	Name   string     `json:"name"`
	Config sim.Config `json:"config"`
}

// ExperimentFile is the on-disk grid format.
type ExperimentFile struct {
	Experiments []Experiment `json:"experiments"`
}

func main() {
	// The simulator is a throughput batch tool: trade heap headroom for
	// fewer GC cycles (the hot loop allocates snapshot slices and store
	// copies at a very high rate).
	debug.SetGCPercent(400)
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qrio-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expPath = flag.String("experiments", "sim/experiments.json", "experiment grid file")
		outDir  = flag.String("out", "sim/results", "artifact output directory")
		only    = flag.String("only", "", "run only the named experiment")
		record  = flag.String("record", "", "write the generated workload trace to this JSONL file instead of simulating (requires -only or a single-experiment grid)")
		replay  = flag.String("replay", "", "drive the simulation from a recorded JSONL trace instead of generating (requires -only or a single-experiment grid)")
		profile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	raw, err := os.ReadFile(*expPath)
	if err != nil {
		return err
	}
	var file ExperimentFile
	if err := json.Unmarshal(raw, &file); err != nil {
		return fmt.Errorf("parsing %s: %w", *expPath, err)
	}
	exps := file.Experiments
	if *only != "" {
		var keep []Experiment
		for _, e := range exps {
			if e.Name == *only {
				keep = append(keep, e)
			}
		}
		if len(keep) == 0 {
			return fmt.Errorf("no experiment named %q in %s", *only, *expPath)
		}
		exps = keep
	}
	if len(exps) == 0 {
		return fmt.Errorf("%s holds no experiments", *expPath)
	}

	if *record != "" {
		if len(exps) != 1 {
			return fmt.Errorf("-record needs exactly one experiment (use -only)")
		}
		return recordTrace(exps[0], *record)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	summary, err := os.Create(filepath.Join(*outDir, "summary.md"))
	if err != nil {
		return err
	}
	defer summary.Close()
	fmt.Fprintf(summary, "# qrio-sim capacity report\n\nExperiments: %d\n\n", len(exps))

	for _, exp := range exps {
		var src simload.Source
		if *replay != "" {
			if len(exps) != 1 {
				return fmt.Errorf("-replay needs exactly one experiment (use -only)")
			}
			f, err := os.Open(*replay)
			if err != nil {
				return err
			}
			defer f.Close()
			src = simload.TraceSource(f)
		}
		rep, wall, err := runOne(exp, src)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", exp.Name, err)
		}
		fmt.Fprintf(os.Stderr, "qrio-sim: %-24s submitted=%d bound=%d drained=%t wall=%s\n",
			exp.Name, rep.Submitted, rep.Latency.Count, rep.Drained, wall.Round(time.Millisecond))

		if err := rep.WriteSummaryMarkdown(summary, exp.Name); err != nil {
			return err
		}
		csv, err := os.Create(filepath.Join(*outDir, exp.Name+"_timeline.csv"))
		if err != nil {
			return err
		}
		if err := rep.WriteTimelineCSV(csv); err != nil {
			csv.Close()
			return err
		}
		if err := csv.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "qrio-sim: artifacts in %s\n", *outDir)
	return nil
}

func runOne(exp Experiment, src simload.Source) (*sim.Report, time.Duration, error) {
	eng, err := sim.New(exp.Config, src)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	rep, err := eng.Run()
	return rep, time.Since(start), err
}

func recordTrace(exp Experiment, path string) error {
	lib, err := simload.DefaultLibrary()
	if err != nil {
		return err
	}
	stream, err := simload.NewStream(exp.Config.Profile, lib)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	n, err := simload.WriteTrace(f, stream)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "qrio-sim: recorded %d arrivals to %s\n", n, path)
	return nil
}
