// Quickstart: stand up an in-process QRIO cluster, submit a 10-qubit
// Bernstein–Vazirani circuit with a fidelity requirement, and read back
// the execution logs — the end-to-end flow of the paper's Fig. 5.
package main

import (
	"fmt"
	"log"
	"time"

	"qrio"
)

func main() {
	// A small fleet: 3 qubit counts x 10 edge densities = 30 simulated
	// devices with the paper's Table 2 characteristics.
	spec := qrio.DefaultFleetSpec()
	spec.QubitCounts = []int{15, 20, 27}
	fleet, err := qrio.GenerateFleet(spec)
	if err != nil {
		log.Fatal(err)
	}

	q, err := qrio.New(qrio.Config{Backends: fleet})
	if err != nil {
		log.Fatal(err)
	}
	q.Start()
	defer q.Stop()
	fmt.Printf("QRIO cluster up with %d nodes\n", len(fleet))

	// The user's circuit, submitted as OpenQASM (the paper's job format).
	src, err := qrio.DumpQASM(qrio.BernsteinVazirani(10, 0b101101101))
	if err != nil {
		log.Fatal(err)
	}

	job, res, err := q.SubmitAndWait(qrio.SubmitRequest{
		JobName:        "bv10",
		QASM:           src,
		Shots:          1024,
		Strategy:       qrio.StrategyFidelity,
		TargetFidelity: 1.0, // "give me the best you have"
	}, time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("job %s: %s on node %s (meta score %.4f)\n\n",
		job.Name, job.Status.Phase, job.Status.Node, job.Status.Score)
	for _, line := range res.LogLines {
		fmt.Println(line)
	}
	fmt.Printf("\nachieved fidelity: %.4f over %d distinct outcomes\n",
		res.Fidelity, len(res.Counts))
}
