// Quickstart: stand up a QRIO cluster behind the unified /v1 gateway,
// submit a 10-qubit Bernstein–Vazirani circuit with a fidelity
// requirement through the Go client, wait on the event stream (no
// polling), and read back the execution logs — the end-to-end flow of the
// paper's Fig. 5, driven exactly the way a remote cloud user would.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"qrio"
	"qrio/client"
)

func main() {
	// A small fleet: 3 qubit counts x 10 edge densities = 30 simulated
	// devices with the paper's Table 2 characteristics.
	spec := qrio.DefaultFleetSpec()
	spec.QubitCounts = []int{15, 20, 27}
	fleet, err := qrio.GenerateFleet(spec)
	if err != nil {
		log.Fatal(err)
	}

	q, err := qrio.New(qrio.Config{Backends: fleet})
	if err != nil {
		log.Fatal(err)
	}
	q.Start()
	defer q.Stop()

	// Serve the /v1 gateway on a local listener and talk to it over HTTP
	// like any external client (the qrio daemon serves the same routes).
	mux := http.NewServeMux()
	mux.Handle("/v1/", qrio.NewGateway(q).Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := client.New(srv.URL)
	ctx := context.Background()
	fmt.Printf("QRIO cluster up with %d nodes, gateway at %s/v1\n", len(fleet), srv.URL)

	// The user's circuit, submitted as OpenQASM (the paper's job format).
	src, err := qrio.DumpQASM(qrio.BernsteinVazirani(10, 0b101101101))
	if err != nil {
		log.Fatal(err)
	}

	if _, err := c.Submit(ctx, client.SubmitRequest{
		JobName:        "bv10",
		QASM:           src,
		Shots:          1024,
		Strategy:       qrio.StrategyFidelity,
		TargetFidelity: 1.0, // "give me the best you have"
	}); err != nil {
		log.Fatal(err)
	}

	// Wait rides the /v1/watch SSE stream: the terminal transition is
	// pushed to us the moment the kubelet publishes it.
	job, err := c.Wait(ctx, "bv10")
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Logs(ctx, "bv10")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("job %s: %s on node %s (meta score %.4f)\n\n",
		job.Name, job.Status.Phase, job.Status.Node, job.Status.Score)
	for _, line := range res.LogLines {
		fmt.Println(line)
	}
	fmt.Printf("\nachieved fidelity: %.4f over %d distinct outcomes\n",
		res.Fidelity, len(res.Counts))
}
