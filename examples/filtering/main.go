// Characteristics filtering: a user bounds the device properties they can
// tolerate (paper use case 1 / Fig. 10). Tight bounds shrink the candidate
// set before any expensive ranking runs — and an impossible bound leaves
// the job pending with a clear Unschedulable event instead of wasting
// classical pre-processing.
package main

import (
	"fmt"
	"log"
	"time"

	"qrio"
)

func main() {
	spec := qrio.DefaultFleetSpec()
	spec.QubitCounts = []int{15, 20, 27}
	fleet, err := qrio.GenerateFleet(spec)
	if err != nil {
		log.Fatal(err)
	}
	q, err := qrio.New(qrio.Config{Backends: fleet})
	if err != nil {
		log.Fatal(err)
	}
	q.Start()
	defer q.Stop()

	src, err := qrio.DumpQASM(qrio.GHZ(5))
	if err != nil {
		log.Fatal(err)
	}

	// Sweep the max average two-qubit error the user will accept.
	fmt.Println("devices surviving each two-qubit error bound:")
	for _, bound := range []float64{0.07, 0.2, 0.4, 0.68} {
		count := 0
		for _, b := range fleet {
			if b.AvgTwoQubitErr() <= bound {
				count++
			}
		}
		fmt.Printf("  max 2q error %.2f -> %2d of %d devices\n", bound, count, len(fleet))
	}

	// A realistic bound: rank only the decent third of the fleet.
	job, res, err := q.SubmitAndWait(qrio.SubmitRequest{
		JobName:        "ghz-filtered",
		QASM:           src,
		Shots:          512,
		Strategy:       qrio.StrategyFidelity,
		TargetFidelity: 1.0,
		Requirements: qrio.DeviceRequirements{
			MaxAvg2QError: 0.25,
			MinT1us:       200e3,
		},
	}, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfiltered job landed on %s (achieved fidelity %.4f)\n",
		job.Status.Node, res.Fidelity)

	// An impossible bound: the job must stay Pending, not crash the queue.
	if _, err := q.Submit(qrio.SubmitRequest{
		JobName:        "ghz-impossible",
		QASM:           src,
		Strategy:       qrio.StrategyFidelity,
		TargetFidelity: 1.0,
		Requirements:   qrio.DeviceRequirements{MaxAvg2QError: 0.001},
	}); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	pending, _, err := q.State.Jobs.Get("ghz-impossible")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("impossible bound: job stays %s — ", pending.Status.Phase)
	for _, e := range q.State.EventsAbout("ghz-impossible") {
		if e.Reason == "Unschedulable" {
			fmt.Println("cluster reports it unschedulable, as expected")
			return
		}
	}
	fmt.Println("(no event yet)")
}
