// Lifecycle: the /v1 gateway's full job-lifecycle vocabulary in one run —
// batch submission with per-item error reporting, live watching over
// server-sent events, filtered + paginated listing, and cancellation
// (including aborting a job mid-flight), all through the public Go client.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"qrio"
	"qrio/client"
)

func main() {
	spec := qrio.DefaultFleetSpec()
	spec.QubitCounts = []int{15, 20}
	fleet, err := qrio.GenerateFleet(spec)
	if err != nil {
		log.Fatal(err)
	}
	q, err := qrio.New(qrio.Config{Backends: fleet, Concurrency: 4, NodeConcurrency: 2})
	if err != nil {
		log.Fatal(err)
	}
	q.Start()
	defer q.Stop()

	mux := http.NewServeMux()
	mux.Handle("/v1/", qrio.NewGateway(q).Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := client.New(srv.URL)
	ctx := context.Background()

	// Start a watch before submitting: the SSE stream will carry every
	// transition of every job — no polling anywhere in this file. The
	// watch context is cancelled on exit so the streaming connection
	// closes before the server shuts down.
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	events, err := c.Watch(watchCtx, client.WatchOptions{Kind: "job"})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for ev := range events {
			if ev.Job != nil && ev.Type != client.EventSync {
				fmt.Printf("  [watch] %-9s %-12s %s\n", ev.Type, ev.Job.Name, ev.Job.Status.Phase)
			}
		}
	}()

	// Batch submission: three valid jobs plus one malformed one. The bad
	// job is rejected with a machine-readable code; the rest sail through.
	ghz, _ := qrio.DumpQASM(qrio.GHZ(5))
	bv, _ := qrio.DumpQASM(qrio.BernsteinVazirani(8, 0b1011))
	qft, _ := qrio.DumpQASM(qrio.QFT(4))
	reqs := []client.SubmitRequest{
		{JobName: "batch-ghz", QASM: ghz, Strategy: qrio.StrategyFidelity, TargetFidelity: 1.0},
		{JobName: "batch-bv", QASM: bv, Strategy: qrio.StrategyFidelity, TargetFidelity: 0.9},
		{JobName: "batch-qft", QASM: qft, Strategy: qrio.StrategyFidelity, TargetFidelity: 1.0},
		{JobName: "batch-bad", QASM: "not qasm at all", Strategy: qrio.StrategyFidelity, TargetFidelity: 1.0},
	}
	items, err := c.SubmitBatch(ctx, reqs)
	if err != nil {
		log.Fatal(err)
	}
	for _, it := range items {
		if it.Error != nil {
			fmt.Printf("batch: %-12s rejected (%s)\n", it.Name, it.Error.Code)
			continue
		}
		fmt.Printf("batch: %-12s accepted on image %s\n", it.Name, it.Job.Spec.Image)
	}

	// Cancel one of the accepted jobs — whatever stage it is in, the
	// gateway drives it to the terminal Cancelled phase (aborting the
	// container if it is already running). On this millisecond-scale
	// simulator the job may already have finished, which the gateway
	// reports as a structured conflict — exactly what a real client must
	// tolerate when cancelling against a fast fleet.
	if _, err := c.Cancel(ctx, "batch-qft"); err != nil {
		if !client.IsConflict(err) {
			log.Fatal(err)
		}
		fmt.Println("cancel batch-qft: already finished (conflict) — racing a fast fleet")
	}

	// Wait for everything to settle, then list by phase.
	for _, name := range []string{"batch-ghz", "batch-bv", "batch-qft"} {
		if _, err := c.Wait(ctx, name); err != nil {
			log.Fatal(err)
		}
	}
	for _, phase := range []client.JobPhase{qrio.JobSucceeded, qrio.JobCancelled} {
		page, err := c.List(ctx, client.ListOptions{Phase: phase, Limit: 10})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d jobs %s:\n", len(page.Items), phase)
		for _, j := range page.Items {
			fmt.Printf("  %-12s node=%-18s %s\n", j.Name, j.Status.Node, j.Status.Message)
		}
	}

	// The structured error model: a duplicate resubmission is a conflict,
	// an impossible requirement is unschedulable — branch on codes, not
	// message strings.
	_, err = c.Submit(ctx, reqs[0])
	fmt.Printf("resubmit duplicate: conflict=%v\n", client.IsConflict(err))
	_, err = c.Submit(ctx, client.SubmitRequest{
		JobName: "impossible", QASM: ghz, Strategy: qrio.StrategyFidelity,
		TargetFidelity: 1.0,
		Requirements:   qrio.DeviceRequirements{MinQubits: 4096},
	})
	fmt.Printf("impossible job: unschedulable=%v\n", client.IsUnschedulable(err))
}
