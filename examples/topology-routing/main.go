// Topology routing: an optimisation user running QAOA MaxCut on a ring
// knows exactly which hardware connectivity suits the workload (paper use
// case 3: "easily discernible for optimization problems"). They draw the
// ring as their desired topology; QRIO's Mapomatic-style ranking places
// the job on the device whose coupling map embeds it best.
package main

import (
	"fmt"
	"log"
	"time"

	"qrio"
)

func main() {
	// Three hand-built devices with identical error rates but different
	// topologies — only connectivity differentiates them (paper §4.4).
	var fleet []*qrio.Backend
	for _, spec := range []struct{ name, topo string }{
		{"dev-ring", "ring"},
		{"dev-line", "line"},
		{"dev-tree", "tree"},
	} {
		g, err := qrio.NamedTopology(spec.topo, 8)
		if err != nil {
			log.Fatal(err)
		}
		b, err := qrio.UniformBackend(spec.name, g, 0.05, 0.01, 0.02, 500e3, 500e3)
		if err != nil {
			log.Fatal(err)
		}
		fleet = append(fleet, b)
	}
	q, err := qrio.New(qrio.Config{Backends: fleet})
	if err != nil {
		log.Fatal(err)
	}
	q.Start()
	defer q.Stop()

	// The workload: QAOA MaxCut on an 8-ring (nearest-neighbour rzz layers).
	workload, err := qrio.DumpQASM(qrio.QAOARing(8, 2, 11))
	if err != nil {
		log.Fatal(err)
	}
	// The user draws their desired topology: the 8-ring itself.
	ringRequest, err := qrio.NamedTopology("ring", 8)
	if err != nil {
		log.Fatal(err)
	}
	topoQASM, err := qrio.TopologyQASM(ringRequest)
	if err != nil {
		log.Fatal(err)
	}

	job, res, err := q.SubmitAndWait(qrio.SubmitRequest{
		JobName:      "qaoa-ring8",
		QASM:         workload,
		Shots:        512,
		Strategy:     qrio.StrategyTopology,
		TopologyQASM: topoQASM,
	}, time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("requested topology: 8-ring\n")
	fmt.Printf("scheduled on: %s (score %.4f)\n", job.Status.Node, job.Status.Score)
	fmt.Printf("achieved fidelity: %.4f\n\n", res.Fidelity)
	if job.Status.Node == "dev-ring" {
		fmt.Println("the ring device wins: the 8-ring request embeds in its coupling map")
		fmt.Println("without routing, while line and tree devices must insert swaps for")
		fmt.Println("the wrap-around edge")
	}
}
