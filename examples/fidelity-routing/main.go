// Fidelity routing: a quantum-chemistry-style user who can derive the
// execution fidelity their application needs (paper §3.4.1 motivates this
// with chemical accuracy targets) submits the same ansatz circuit at
// different fidelity demands. QRIO's Clifford-canary ranking allocates a
// device that loosely matches each demand — high-demand jobs get the clean
// devices, modest demands leave them free for others.
package main

import (
	"fmt"
	"log"
	"time"

	"qrio"
)

func main() {
	fleet, err := qrio.GenerateFleet(smallSpec())
	if err != nil {
		log.Fatal(err)
	}
	// Concurrency > 1 enables the paper's future-work extension so the
	// three demands can be in flight together.
	q, err := qrio.New(qrio.Config{Backends: fleet, Concurrency: 3})
	if err != nil {
		log.Fatal(err)
	}
	q.Start()
	defer q.Stop()

	// A hardware-efficient ansatz stand-in: GHZ + rotations via QAOA.
	ansatz, err := qrio.DumpQASM(qrio.QAOARing(6, 1, 7))
	if err != nil {
		log.Fatal(err)
	}

	demands := []struct {
		name   string
		target float64
	}{
		{"chemistry-tight", 0.95}, // chemical-accuracy production run
		{"vqe-iteration", 0.70},   // optimiser step: moderate accuracy is fine
		{"debug-run", 0.40},       // smoke test: any device will do
	}
	fmt.Println("submitting the same ansatz at three fidelity demands:")
	for _, d := range demands {
		job, res, err := q.SubmitAndWait(qrio.SubmitRequest{
			JobName:        d.name,
			QASM:           ansatz,
			Shots:          512,
			Strategy:       qrio.StrategyFidelity,
			TargetFidelity: d.target,
		}, 2*time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s target %.2f -> node %-16s score %.4f achieved %.4f\n",
			d.name, d.target, job.Status.Node, job.Status.Score, res.Fidelity)
	}
	fmt.Println("\nlower demands land on looser devices; tight demands get the clean ones")
}

func smallSpec() qrio.FleetSpec {
	spec := qrio.DefaultFleetSpec()
	spec.QubitCounts = []int{15, 20, 27}
	return spec
}
