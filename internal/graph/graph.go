// Package graph provides the undirected-graph machinery QRIO uses for
// device coupling maps and user topology requests: named topologies
// (line/ring/grid/heavy-square/fully-connected/tree/star), the paper's
// bounded-degree random coupling-map generator (§4.1), BFS distances for
// routing, and VF2 subgraph monomorphism search for Mapomatic-style
// topology scoring (§3.4.2).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over vertices 0..n-1.
type Graph struct {
	n    int
	adj  [][]int
	seen map[[2]int]bool
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{n: n, adj: make([][]int, n), seen: make(map[[2]int]bool)}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.seen) }

func normPair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// AddEdge inserts the undirected edge (a, b); duplicates are ignored.
func (g *Graph) AddEdge(a, b int) error {
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range (n=%d)", a, b, g.n)
	}
	if a == b {
		return fmt.Errorf("graph: self-loop on %d", a)
	}
	key := normPair(a, b)
	if g.seen[key] {
		return nil
	}
	g.seen[key] = true
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	return nil
}

// MustAddEdge panics on error; for statically correct constructors.
func (g *Graph) MustAddEdge(a, b int) {
	if err := g.AddEdge(a, b); err != nil {
		panic(err)
	}
}

// HasEdge reports whether (a, b) is an edge.
func (g *Graph) HasEdge(a, b int) bool {
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		return false
	}
	return g.seen[normPair(a, b)]
}

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the largest vertex degree (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns v's adjacency list (do not mutate).
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Edges returns all edges as normalised pairs in lexicographic order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, len(g.seen))
	for e := range g.seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Copy returns a deep copy.
func (g *Graph) Copy() *Graph {
	c := New(g.n)
	for e := range g.seen {
		c.MustAddEdge(e[0], e[1])
	}
	return c
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.Distances(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Distances returns BFS hop counts from src; -1 marks unreachable vertices.
func (g *Graph) Distances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// AllPairsDistances returns the full BFS distance matrix.
func (g *Graph) AllPairsDistances() [][]int {
	out := make([][]int, g.n)
	for v := 0; v < g.n; v++ {
		out[v] = g.Distances(v)
	}
	return out
}

// ShortestPath returns one shortest path from a to b inclusive, or nil if
// unreachable.
func (g *Graph) ShortestPath(a, b int) []int {
	if a == b {
		return []int{a}
	}
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = a
	queue := []int{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if prev[w] < 0 {
				prev[w] = v
				if w == b {
					var path []int
					for x := b; x != a; x = prev[x] {
						path = append(path, x)
					}
					path = append(path, a)
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path
				}
				queue = append(queue, w)
			}
		}
	}
	return nil
}

// DegreeSequence returns the sorted (descending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	ds := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		ds[v] = len(g.adj[v])
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}

// Equal reports whether two graphs have identical vertex and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || len(g.seen) != len(h.seen) {
		return false
	}
	for e := range g.seen {
		if !h.seen[e] {
			return false
		}
	}
	return true
}

// String renders the graph compactly for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(%d vertices, %d edges)", g.n, len(g.seen))
}
