package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOperations(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0); err != nil { // duplicate, reversed
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (duplicate ignored)", g.NumEdges())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 9); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if g.Degree(0) != 1 || g.Degree(3) != 0 {
		t.Fatal("degrees wrong")
	}
}

func TestTopologyShapes(t *testing.T) {
	cases := []struct {
		name     string
		g        *Graph
		vertices int
		edges    int
		maxDeg   int
	}{
		{"line6", Line(6), 6, 5, 2},
		{"ring7", Ring(7), 7, 7, 2},
		{"grid2x2", Grid(2, 2), 4, 4, 2},
		{"grid3x3", Grid(3, 3), 9, 12, 4},
		{"full6", Full(6), 6, 15, 5},
		{"star5", Star(5), 5, 4, 4},
		{"tree10", BalancedBinaryTree(10), 10, 9, 3},
	}
	for _, c := range cases {
		if c.g.NumVertices() != c.vertices {
			t.Errorf("%s: vertices = %d, want %d", c.name, c.g.NumVertices(), c.vertices)
		}
		if c.g.NumEdges() != c.edges {
			t.Errorf("%s: edges = %d, want %d", c.name, c.g.NumEdges(), c.edges)
		}
		if c.g.MaxDegree() != c.maxDeg {
			t.Errorf("%s: max degree = %d, want %d", c.name, c.g.MaxDegree(), c.maxDeg)
		}
		if !c.g.Connected() {
			t.Errorf("%s: not connected", c.name)
		}
	}
}

func TestHeavySquare(t *testing.T) {
	g, err := HeavySquare(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 || !g.Connected() {
		t.Fatalf("heavy square 6: %v connected=%v", g, g.Connected())
	}
	// 6-vertex heavy square: square with two bridge vertices = 6 edges.
	if g.NumEdges() != 6 {
		t.Fatalf("heavy square 6 edges = %d, want 6", g.NumEdges())
	}
	if _, err := HeavySquare(3); err == nil {
		t.Fatal("heavy square must reject n < 4")
	}
	g8, err := HeavySquare(8)
	if err != nil {
		t.Fatal(err)
	}
	if !g8.Connected() {
		t.Fatal("heavy square 8 disconnected")
	}
}

func TestNamed(t *testing.T) {
	for _, name := range TopologyNames() {
		g, err := Named(name, 6)
		if err != nil {
			t.Errorf("Named(%q): %v", name, err)
			continue
		}
		if g.NumVertices() != 6 {
			t.Errorf("Named(%q): %d vertices", name, g.NumVertices())
		}
		if !g.Connected() {
			t.Errorf("Named(%q): disconnected", name)
		}
	}
	if _, err := Named("moebius", 6); err == nil {
		t.Fatal("unknown topology accepted")
	}
	// "grid" of 6 should be 2x3.
	g, _ := Named("grid", 6)
	if g.NumEdges() != 7 {
		t.Errorf("grid 6 edges = %d, want 7 (2x3 grid)", g.NumEdges())
	}
}

func TestDistancesAndPaths(t *testing.T) {
	g := Line(5)
	d := g.Distances(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("dist(0,%d) = %d, want %d", i, d[i], want)
		}
	}
	p := g.ShortestPath(0, 4)
	if len(p) != 5 || p[0] != 0 || p[4] != 4 {
		t.Errorf("path = %v", p)
	}
	if got := g.ShortestPath(2, 2); len(got) != 1 {
		t.Errorf("self path = %v", got)
	}
	disconnected := New(3)
	disconnected.MustAddEdge(0, 1)
	if p := disconnected.ShortestPath(0, 2); p != nil {
		t.Errorf("unreachable path = %v, want nil", p)
	}
	if disconnected.Connected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestRandomConnectedProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		prob := rng.Float64()
		g := RandomConnected(n, prob, 4, rng)
		if !g.Connected() {
			t.Logf("seed %d: disconnected graph n=%d p=%v", seed, n, prob)
			return false
		}
		// Degree cap may be exceeded by at most the spanning-tree fallback;
		// the generator promises <= max(4, fallback) – verify a loose cap.
		for v := 0; v < n; v++ {
			if g.Degree(v) > 4+1 {
				t.Logf("seed %d: degree %d at vertex %d", seed, g.Degree(v), v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomConnectedDensityMonotone(t *testing.T) {
	rng1 := rand.New(rand.NewSource(1))
	rng2 := rand.New(rand.NewSource(1))
	sparse := RandomConnected(50, 0.1, 4, rng1)
	dense := RandomConnected(50, 0.98, 4, rng2)
	if sparse.NumEdges() >= dense.NumEdges() {
		t.Fatalf("sparse (%d edges) >= dense (%d edges)", sparse.NumEdges(), dense.NumEdges())
	}
}

func TestCopyAndEqual(t *testing.T) {
	g := Ring(5)
	h := g.Copy()
	if !g.Equal(h) {
		t.Fatal("copy not equal")
	}
	h.MustAddEdge(0, 2)
	if g.Equal(h) {
		t.Fatal("mutated copy still equal")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("copy shares storage")
	}
}

func TestDegreeSequence(t *testing.T) {
	g := Star(5)
	ds := g.DegreeSequence()
	if ds[0] != 4 || ds[1] != 1 || ds[4] != 1 {
		t.Fatalf("star degree sequence = %v", ds)
	}
}
