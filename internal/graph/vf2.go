package graph

import "sort"

// VF2 subgraph monomorphism: find injective mappings m from pattern
// vertices to target vertices such that every pattern edge (u,v) maps to a
// target edge (m[u],m[v]). This is the search Mapomatic performs to locate
// device subgraphs matching a circuit's interaction graph (paper §3.4.2).
// Non-induced matching is used deliberately: extra device edges never hurt.

// MonomorphismOptions bounds the search.
type MonomorphismOptions struct {
	// MaxResults stops enumeration after this many mappings (0 = just one).
	MaxResults int
	// MaxVisits caps search-tree nodes to bound worst-case time (0 = 5e6).
	MaxVisits int
}

// defaultMaxVisits keeps dense-pattern searches (the paper notes Mapomatic
// can take ~45 minutes on dense devices) within interactive bounds.
const defaultMaxVisits = 5_000_000

// FindMonomorphism returns one mapping (len = pattern vertices) or nil.
func FindMonomorphism(pattern, target *Graph) []int {
	res := EnumerateMonomorphisms(pattern, target, MonomorphismOptions{MaxResults: 1})
	if len(res) == 0 {
		return nil
	}
	return res[0]
}

// EnumerateMonomorphisms returns up to opts.MaxResults mappings.
func EnumerateMonomorphisms(pattern, target *Graph, opts MonomorphismOptions) [][]int {
	if pattern.NumVertices() > target.NumVertices() {
		return nil
	}
	maxResults := opts.MaxResults
	if maxResults <= 0 {
		maxResults = 1
	}
	maxVisits := opts.MaxVisits
	if maxVisits <= 0 {
		maxVisits = defaultMaxVisits
	}
	s := &vf2State{
		pattern:    pattern,
		target:     target,
		order:      matchOrder(pattern),
		mapping:    make([]int, pattern.NumVertices()),
		used:       make([]bool, target.NumVertices()),
		maxResults: maxResults,
		maxVisits:  maxVisits,
	}
	for i := range s.mapping {
		s.mapping[i] = -1
	}
	s.search(0)
	return s.results
}

// matchOrder sorts pattern vertices so each vertex (after the first) is
// adjacent to an earlier one when possible, maximising early pruning.
// Within the constraint, higher-degree vertices come first.
func matchOrder(p *Graph) []int {
	n := p.NumVertices()
	placed := make([]bool, n)
	order := make([]int, 0, n)
	byDegree := make([]int, n)
	for i := range byDegree {
		byDegree[i] = i
	}
	sort.Slice(byDegree, func(a, b int) bool {
		if p.Degree(byDegree[a]) != p.Degree(byDegree[b]) {
			return p.Degree(byDegree[a]) > p.Degree(byDegree[b])
		}
		return byDegree[a] < byDegree[b]
	})
	for len(order) < n {
		// Prefer the highest-degree unplaced vertex adjacent to the placed
		// set; otherwise start a new component with the highest-degree one.
		best := -1
		for _, v := range byDegree {
			if placed[v] {
				continue
			}
			adj := false
			for _, w := range p.Neighbors(v) {
				if placed[w] {
					adj = true
					break
				}
			}
			if adj {
				best = v
				break
			}
		}
		if best < 0 {
			for _, v := range byDegree {
				if !placed[v] {
					best = v
					break
				}
			}
		}
		placed[best] = true
		order = append(order, best)
	}
	return order
}

type vf2State struct {
	pattern, target *Graph
	order           []int
	mapping         []int
	used            []bool
	results         [][]int
	maxResults      int
	maxVisits       int
	visits          int
}

func (s *vf2State) search(depth int) bool {
	if len(s.results) >= s.maxResults {
		return true
	}
	s.visits++
	if s.visits > s.maxVisits {
		return true // budget exhausted; return what we have
	}
	if depth == len(s.order) {
		s.results = append(s.results, append([]int(nil), s.mapping...))
		return len(s.results) >= s.maxResults
	}
	v := s.order[depth]
	for _, cand := range s.candidates(v) {
		s.mapping[v] = cand
		s.used[cand] = true
		if s.search(depth + 1) {
			s.mapping[v] = -1
			s.used[cand] = false
			return true
		}
		s.mapping[v] = -1
		s.used[cand] = false
	}
	return false
}

// candidates lists feasible target vertices for pattern vertex v given the
// current partial mapping: unused, degree-compatible, and adjacent to the
// images of all already-mapped pattern neighbours.
func (s *vf2State) candidates(v int) []int {
	// If some neighbour is mapped, restrict to the image's neighbourhood.
	var anchor = -1
	for _, w := range s.pattern.Neighbors(v) {
		if s.mapping[w] >= 0 {
			anchor = s.mapping[w]
			break
		}
	}
	var pool []int
	if anchor >= 0 {
		pool = s.target.Neighbors(anchor)
	} else {
		pool = make([]int, s.target.NumVertices())
		for i := range pool {
			pool[i] = i
		}
	}
	out := make([]int, 0, len(pool))
	deg := s.pattern.Degree(v)
	for _, c := range pool {
		if s.used[c] || s.target.Degree(c) < deg {
			continue
		}
		ok := true
		for _, w := range s.pattern.Neighbors(v) {
			if m := s.mapping[w]; m >= 0 && !s.target.HasEdge(c, m) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// HasMonomorphism reports whether the pattern embeds in the target.
func HasMonomorphism(pattern, target *Graph) bool {
	return FindMonomorphism(pattern, target) != nil
}
