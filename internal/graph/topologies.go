package graph

import (
	"fmt"
	"math/rand"
)

// Line returns the path topology 0-1-...-n-1 (paper default "line").
func Line(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

// Ring returns the cycle topology (paper default "ring").
func Ring(n int) *Graph {
	g := Line(n)
	if n >= 3 {
		g.MustAddEdge(n-1, 0)
	}
	return g
}

// Grid returns a rows x cols grid topology (paper default "grid", 2x2 for
// the 4-qubit case).
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	return g
}

// Full returns the complete graph K_n (paper default "fully connected").
func Full(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j)
		}
	}
	return g
}

// Star returns a star with vertex 0 at the centre.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
	}
	return g
}

// HeavySquare returns the paper's "heavy square" default: a square (4-cycle)
// whose edges carry extra bridge vertices, in the style of IBM's
// heavy-square lattices. Vertices 0..3 are the corners; bridge vertices are
// inserted on edges (0,1), (1,2), (2,3), (3,0) in order until n vertices
// are used. n must be at least 4.
func HeavySquare(n int) (*Graph, error) {
	if n < 4 {
		return nil, fmt.Errorf("graph: heavy square needs >= 4 vertices, got %d", n)
	}
	g := New(n)
	corners := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	next := 4
	for _, c := range corners {
		if next < n {
			g.MustAddEdge(c[0], next)
			g.MustAddEdge(next, c[1])
			next++
		} else {
			g.MustAddEdge(c[0], c[1])
		}
	}
	// Any leftover vertices hang off corner 0 to keep the graph connected.
	for ; next < n; next++ {
		g.MustAddEdge(0, next)
	}
	return g, nil
}

// BalancedBinaryTree returns a tree where vertex i has children 2i+1, 2i+2
// (the "tree-like" 10-qubit device of the paper's §4.4 experiment).
func BalancedBinaryTree(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge((i-1)/2, i)
	}
	return g
}

// Named builds a topology by name; qubit count semantics follow the paper's
// defaults ("grid" is as close to square as possible).
func Named(name string, n int) (*Graph, error) {
	switch name {
	case "line":
		return Line(n), nil
	case "ring":
		return Ring(n), nil
	case "grid":
		rows := 1
		for r := 2; r*r <= n; r++ {
			if n%r == 0 {
				rows = r
			}
		}
		return Grid(rows, n/rows), nil
	case "full", "fully-connected":
		return Full(n), nil
	case "heavy-square":
		return HeavySquare(n)
	case "star":
		return Star(n), nil
	case "tree":
		return BalancedBinaryTree(n), nil
	}
	return nil, fmt.Errorf("graph: unknown topology %q", name)
}

// TopologyNames lists the names accepted by Named.
func TopologyNames() []string {
	return []string{"line", "ring", "grid", "full", "heavy-square", "star", "tree"}
}

// RandomConnected generates a connected random graph in the style of the
// paper's coupling-map generator (§4.1): a random spanning tree guarantees
// connectivity, then every remaining vertex pair becomes an edge with
// probability edgeProb, subject to a maximum vertex degree (the paper caps
// qubits at 4 connections).
func RandomConnected(n int, edgeProb float64, maxDegree int, rng *rand.Rand) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	if maxDegree < 2 {
		maxDegree = 2 // a spanning structure needs at least degree 2
	}
	// Random spanning tree: attach each vertex (in random order) to a
	// random already-attached vertex with spare degree.
	order := rng.Perm(n)
	attached := []int{order[0]}
	for _, v := range order[1:] {
		// Collect candidates with spare degree; fall back to the least
		// loaded vertex so the tree always completes.
		var candidates []int
		for _, u := range attached {
			if g.Degree(u) < maxDegree {
				candidates = append(candidates, u)
			}
		}
		var u int
		if len(candidates) > 0 {
			u = candidates[rng.Intn(len(candidates))]
		} else {
			u = attached[0]
			for _, w := range attached {
				if g.Degree(w) < g.Degree(u) {
					u = w
				}
			}
		}
		g.MustAddEdge(u, v)
		attached = append(attached, v)
	}
	// Density pass.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.HasEdge(i, j) || g.Degree(i) >= maxDegree || g.Degree(j) >= maxDegree {
				continue
			}
			if rng.Float64() < edgeProb {
				g.MustAddEdge(i, j)
			}
		}
	}
	return g
}
