package graph

import (
	"math/rand"
	"testing"
)

// verifyMapping checks that m is a valid monomorphism.
func verifyMapping(t *testing.T, pattern, target *Graph, m []int) {
	t.Helper()
	if len(m) != pattern.NumVertices() {
		t.Fatalf("mapping length %d != %d", len(m), pattern.NumVertices())
	}
	seen := map[int]bool{}
	for _, v := range m {
		if v < 0 || v >= target.NumVertices() {
			t.Fatalf("mapping image %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("mapping not injective: %v", m)
		}
		seen[v] = true
	}
	for _, e := range pattern.Edges() {
		if !target.HasEdge(m[e[0]], m[e[1]]) {
			t.Fatalf("pattern edge %v maps to non-edge (%d,%d)", e, m[e[0]], m[e[1]])
		}
	}
}

func TestLineEmbedsInRing(t *testing.T) {
	m := FindMonomorphism(Line(4), Ring(6))
	if m == nil {
		t.Fatal("line-4 should embed in ring-6")
	}
	verifyMapping(t, Line(4), Ring(6), m)
}

func TestRingDoesNotEmbedInLine(t *testing.T) {
	if m := FindMonomorphism(Ring(4), Line(8)); m != nil {
		t.Fatalf("ring-4 embedded in line-8: %v", m)
	}
}

func TestFullRequiresDenseTarget(t *testing.T) {
	if FindMonomorphism(Full(4), Grid(2, 2)) != nil {
		t.Fatal("K4 embedded in 2x2 grid")
	}
	if m := FindMonomorphism(Full(4), Full(6)); m == nil {
		t.Fatal("K4 should embed in K6")
	}
	// K4 needs degree >= 3 everywhere; the max-degree-4 random device may
	// or may not host it, but K6 needs degree 5 and can never embed.
	rng := rand.New(rand.NewSource(1))
	dev := RandomConnected(50, 0.98, 4, rng)
	if FindMonomorphism(Full(6), dev) != nil {
		t.Fatal("K6 embedded in degree-4-capped device")
	}
}

func TestGridInGrid(t *testing.T) {
	m := FindMonomorphism(Grid(2, 2), Grid(3, 3))
	if m == nil {
		t.Fatal("2x2 grid should embed in 3x3 grid")
	}
	verifyMapping(t, Grid(2, 2), Grid(3, 3), m)
}

func TestStarDegreeBound(t *testing.T) {
	// Star-6 centre has degree 5; a ring (degree 2) cannot host it.
	if FindMonomorphism(Star(6), Ring(20)) != nil {
		t.Fatal("star-6 embedded in ring")
	}
	if m := FindMonomorphism(Star(4), Star(8)); m == nil {
		t.Fatal("star-4 should embed in star-8")
	}
}

func TestIsolatedPatternVertices(t *testing.T) {
	// A pattern with isolated vertices maps them to any free target vertex.
	p := New(3)
	p.MustAddEdge(0, 1) // vertex 2 isolated
	m := FindMonomorphism(p, Line(3))
	if m == nil {
		t.Fatal("pattern with isolated vertex should embed")
	}
	verifyMapping(t, p, Line(3), m)
}

func TestPatternLargerThanTarget(t *testing.T) {
	if FindMonomorphism(Line(5), Line(4)) != nil {
		t.Fatal("5-vertex pattern embedded in 4-vertex target")
	}
}

func TestEnumerateCountsRingAutomorphisms(t *testing.T) {
	// Ring-4 into ring-4: 8 monomorphisms (4 rotations x 2 reflections).
	res := EnumerateMonomorphisms(Ring(4), Ring(4), MonomorphismOptions{MaxResults: 100})
	if len(res) != 8 {
		t.Fatalf("ring-4 automorphism count = %d, want 8", len(res))
	}
	for _, m := range res {
		verifyMapping(t, Ring(4), Ring(4), m)
	}
}

func TestEnumerateRespectsLimit(t *testing.T) {
	res := EnumerateMonomorphisms(Line(3), Full(8), MonomorphismOptions{MaxResults: 5})
	if len(res) != 5 {
		t.Fatalf("limit ignored: got %d results", len(res))
	}
}

// bruteForceCount exhaustively counts monomorphisms for small graphs.
func bruteForceCount(pattern, target *Graph) int {
	n, m := pattern.NumVertices(), target.NumVertices()
	perm := make([]int, n)
	used := make([]bool, m)
	count := 0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			count++
			return
		}
		for v := 0; v < m; v++ {
			if used[v] {
				continue
			}
			ok := true
			for _, e := range pattern.Edges() {
				a, b := e[0], e[1]
				if a < i && b == i && !target.HasEdge(perm[a], v) {
					ok = false
					break
				}
				if b < i && a == i && !target.HasEdge(perm[b], v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			perm[i] = v
			used[v] = true
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return count
}

func TestEnumerationMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		pn := 2 + rng.Intn(3)
		tn := pn + rng.Intn(3)
		pattern := RandomConnected(pn, rng.Float64(), 4, rng)
		target := RandomConnected(tn, rng.Float64(), 4, rng)
		want := bruteForceCount(pattern, target)
		got := len(EnumerateMonomorphisms(pattern, target, MonomorphismOptions{MaxResults: 100000}))
		if got != want {
			t.Fatalf("trial %d: VF2 found %d, brute force %d\npattern %v edges %v\ntarget %v edges %v",
				trial, got, want, pattern, pattern.Edges(), target, target.Edges())
		}
	}
}

func TestVisitBudgetTerminates(t *testing.T) {
	// A pathological dense-in-dense search must respect the visit cap.
	res := EnumerateMonomorphisms(Full(8), Full(12), MonomorphismOptions{
		MaxResults: 1 << 30, MaxVisits: 1000,
	})
	if len(res) == 0 {
		t.Fatal("budgeted search found nothing at all")
	}
}
