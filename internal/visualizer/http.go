package visualizer

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"qrio/internal/cluster/api"
	"qrio/internal/device"
	"qrio/internal/httpx"
)

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>QRIO — {{.Title}}</title>
<style>
body{font-family:sans-serif;margin:2em;max-width:70em}
table{border-collapse:collapse}td,th{border:1px solid #999;padding:4px 8px;text-align:left}
.phase-Succeeded{color:green}.phase-Failed{color:red}.phase-Pending{color:#996600}
nav a{margin-right:1em}pre{background:#f4f4f4;padding:1em;overflow-x:auto}
fieldset{margin-bottom:1em}.err{color:red;font-weight:bold}
</style></head><body>
<nav><a href="/">Home</a><a href="/submit">Submit Job</a><a href="/cluster">Cluster</a>
<a href="/jobs">Jobs</a><a href="/vendor">Vendor</a></nav>
<h1>{{.Title}}</h1>
{{if .Error}}<p class="err">{{.Error}}</p>{{end}}
{{.Body}}
</body></html>`))

type page struct {
	Title string
	Error string
	Body  template.HTML
}

func (s *Server) render(w http.ResponseWriter, p page) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTmpl.Execute(w, p); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Handler returns the dashboard routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleHome)
	mux.HandleFunc("/submit", s.handleSubmit)
	mux.HandleFunc("/cluster", s.handleCluster)
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJobDetail)
	mux.HandleFunc("/vendor", s.handleVendor)
	return mux
}

// handleHome is the Fig. 3 front page: choose a circuit or view the cluster.
func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.render(w, page{Title: "Quantum Resource Infrastructure Orchestrator", Body: template.HTML(`
<p>Welcome to QRIO. Schedule a quantum job or inspect the cluster.</p>
<ul>
<li><a href="/submit">Choose a circuit and submit a job</a></li>
<li><a href="/cluster">View the current cluster</a></li>
</ul>`)})
}

// handleSubmit renders and processes the three-step form (Fig. 4).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		s.render(w, page{Title: "Submit a Quantum Job", Body: submitForm})
		return
	}
	if err := r.ParseForm(); err != nil {
		s.render(w, page{Title: "Submit a Quantum Job", Error: err.Error(), Body: submitForm})
		return
	}
	f := parseForm(r)
	req, err := f.buildRequest()
	if err == nil {
		_, err = s.Core.Submit(req)
	}
	if err != nil {
		s.render(w, page{Title: "Submit a Quantum Job", Error: err.Error(), Body: submitForm})
		return
	}
	http.Redirect(w, r, "/jobs/"+req.JobName, http.StatusSeeOther)
}

func parseForm(r *http.Request) formInput {
	i := func(k string) int {
		v, _ := strconv.Atoi(r.FormValue(k))
		return v
	}
	i64 := func(k string) int64 {
		v, _ := strconv.ParseInt(r.FormValue(k), 10, 64)
		return v
	}
	fl := func(k string) float64 {
		v, _ := strconv.ParseFloat(r.FormValue(k), 64)
		return v
	}
	return formInput{
		JobName:        strings.TrimSpace(r.FormValue("jobName")),
		ImageName:      strings.TrimSpace(r.FormValue("imageName")),
		QASM:           r.FormValue("qasm"),
		Shots:          i("shots"),
		NumQubits:      i("numQubits"),
		CPUMillis:      i64("cpuMillis"),
		MemoryMB:       i64("memoryMB"),
		MaxAvg2QError:  fl("maxGateErr"),
		MaxReadoutErr:  fl("maxReadout"),
		MinT1us:        fl("minT1"),
		MinT2us:        fl("minT2"),
		Strategy:       r.FormValue("strategy"),
		TargetFidelity: fl("fidelity"),
		TopologyKind:   r.FormValue("topoKind"),
		TopologyName:   r.FormValue("topoName"),
		TopologyQubits: i("topoQubits"),
		TopologyEdges:  r.FormValue("topoEdges"),
	}
}

const submitForm = template.HTML(`
<form method="POST" action="/submit">
<fieldset><legend>Step 1 — Job details</legend>
Job name <input name="jobName" required>
Docker image <input name="imageName" placeholder="qrio/myjob:latest">
Shots <input name="shots" type="number" value="1024"><br><br>
Qubits <input name="numQubits" type="number" value="0">
CPU (millicores) <input name="cpuMillis" type="number" value="0">
Memory (MB) <input name="memoryMB" type="number" value="0"><br><br>
Circuit (OpenQASM 2.0)<br><textarea name="qasm" rows="12" cols="80" required></textarea>
</fieldset>
<fieldset><legend>Step 2 — Requested device characteristics (optional)</legend>
Max avg 2-qubit gate error <input name="maxGateErr" placeholder="0.2">
Max readout error <input name="maxReadout"><br><br>
Min T1 (µs) <input name="minT1"> Min T2 (µs) <input name="minT2">
</fieldset>
<fieldset><legend>Step 3 — Device selection strategy</legend>
<label><input type="radio" name="strategy" value="fidelity" checked> Fidelity requirement</label>
Target fidelity (0-1] <input name="fidelity" value="1.0"><br><br>
<label><input type="radio" name="strategy" value="topology"> Topology requirement</label>
<select name="topoKind"><option value="default">default topology</option>
<option value="custom">draw my own (edge list)</option></select>
<select name="topoName"><option>line</option><option>ring</option><option>grid</option>
<option>heavy-square</option><option>full</option><option>star</option><option>tree</option></select>
Topology qubits <input name="topoQubits" type="number" value="4"><br>
Custom edges (e.g. 0-1, 1-2, 2-3) <input name="topoEdges" size="40">
</fieldset>
<button type="submit">Schedule job</button>
</form>`)

// handleCluster lists nodes with their §3.1 labels.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	nodes := s.Core.State.Nodes.List()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	var b strings.Builder
	b.WriteString(`<table><tr><th>Node</th><th>Phase</th><th>Qubits</th>
<th>Avg 2q error</th><th>Avg readout</th><th>T1 (µs)</th><th>CPU</th><th>Memory</th><th>Running</th></tr>`)
	for _, n := range nodes {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%sm</td><td>%sMB</td><td>%s</td></tr>",
			template.HTMLEscapeString(n.Name), n.Status.Phase,
			n.Labels[api.LabelQubits], n.Labels[api.LabelAvg2QErr],
			n.Labels[api.LabelAvgReadout], n.Labels[api.LabelAvgT1us],
			n.Labels[api.LabelCPUMillis], n.Labels[api.LabelMemoryMB],
			template.HTMLEscapeString(strings.Join(n.Status.RunningJobs, ", ")))
	}
	b.WriteString("</table>")
	s.render(w, page{Title: fmt.Sprintf("Cluster — %d nodes", len(nodes)), Body: template.HTML(b.String())})
}

// handleJobs lists all jobs and their phases.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Core.State.Jobs.List()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].CreatedAt.After(jobs[j].CreatedAt) })
	var b strings.Builder
	b.WriteString(`<table><tr><th>Job</th><th>Phase</th><th>Strategy</th><th>Node</th><th>Score</th></tr>`)
	for _, j := range jobs {
		fmt.Fprintf(&b, `<tr><td><a href="/jobs/%s">%s</a></td><td class="phase-%s">%s</td><td>%s</td><td>%s</td><td>%.4f</td></tr>`,
			template.HTMLEscapeString(j.Name), template.HTMLEscapeString(j.Name),
			j.Status.Phase, j.Status.Phase, j.Spec.Strategy,
			template.HTMLEscapeString(j.Status.Node), j.Status.Score)
	}
	b.WriteString("</table>")
	s.render(w, page{Title: fmt.Sprintf("Jobs — %d total", len(jobs)), Body: template.HTML(b.String())})
}

// handleJobDetail shows one job with its logs (Fig. 5) and events. A
// non-terminal job gets a Cancel button (POST /jobs/{name}/cancel, wired
// to the full-lifecycle cancellation path) and a live-update script that
// subscribes to the /v1 gateway's SSE watch stream and reloads the page
// when the job transitions — the visualizer consumes the same broadcast
// hub as qrioctl watch instead of asking users to refresh.
func (s *Server) handleJobDetail(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if name, ok := strings.CutSuffix(rest, "/cancel"); ok && name != "" && r.Method == http.MethodPost {
		if _, err := s.Core.Cancel(name); err != nil {
			status, _ := httpx.StatusOf(err)
			if status == 0 {
				status = http.StatusUnprocessableEntity
			}
			http.Error(w, err.Error(), status)
			return
		}
		http.Redirect(w, r, "/jobs/"+name, http.StatusSeeOther)
		return
	}
	name := rest
	if name == "" || strings.Contains(name, "/") {
		http.NotFound(w, r)
		return
	}
	j, _, err := s.Core.State.Jobs.Get(name)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<p>Phase: <b class=\"phase-%s\">%s</b>", j.Status.Phase, j.Status.Phase)
	if j.Status.Node != "" {
		fmt.Fprintf(&b, " &middot; scheduled on <b>%s</b> (score %.4f)",
			template.HTMLEscapeString(j.Status.Node), j.Status.Score)
	}
	b.WriteString("</p>")
	if !j.Status.Phase.Terminal() {
		fmt.Fprintf(&b, `<form method="POST" action="/jobs/%s/cancel">
<button type="submit">Cancel job</button></form>`, template.HTMLEscapeString(name))
		// Live updates via the /v1 gateway's SSE watch (served on the
		// same daemon mux); harmless when the gateway is not mounted.
		fmt.Fprintf(&b, `<script>
try {
  var es = new EventSource('/v1/watch?kind=job&name=%s');
  es.addEventListener('job', function (e) {
    var n = JSON.parse(e.data);
    if (n.type !== 'SYNC') { es.close(); location.reload(); }
  });
} catch (e) {}
</script>`, template.JSEscapeString(name))
	}
	if res, ok := s.Core.State.ResultFor(name); ok {
		fmt.Fprintf(&b, "<h2>Logs</h2><pre>%s</pre>",
			template.HTMLEscapeString(strings.Join(res.LogLines, "\n")))
		fmt.Fprintf(&b, "<p>Measured fidelity: <b>%.4f</b> &middot; %d distinct outcomes &middot; %dms</p>",
			res.Fidelity, len(res.Counts), res.ElapsedMS)
	} else {
		b.WriteString("<p><i>Logs are available once the job has finished execution.</i></p>")
	}
	b.WriteString("<h2>Events</h2><ul>")
	for _, e := range s.Core.State.EventsAbout(name) {
		fmt.Fprintf(&b, "<li><b>%s</b>: %s</li>",
			template.HTMLEscapeString(e.Reason), template.HTMLEscapeString(e.Message))
	}
	b.WriteString("</ul>")
	s.render(w, page{Title: "Job " + name, Body: template.HTML(b.String())})
}

// handleVendor is the minimal vendor dashboard (paper future-work item 1):
// paste a backend JSON to add a node; remove nodes by name.
func (s *Server) handleVendor(w http.ResponseWriter, r *http.Request) {
	const form = template.HTML(`
<h2>Add a device</h2>
<form method="POST" action="/vendor">
<input type="hidden" name="action" value="add">
Backend JSON<br><textarea name="backend" rows="10" cols="80"></textarea><br>
<button type="submit">Register node</button>
</form>
<h2>Remove a device</h2>
<form method="POST" action="/vendor">
<input type="hidden" name="action" value="delete">
Node name <input name="node">
<button type="submit">Remove node</button>
</form>`)
	if r.Method == http.MethodGet {
		s.render(w, page{Title: "Vendor Dashboard", Body: form})
		return
	}
	if err := r.ParseForm(); err != nil {
		s.render(w, page{Title: "Vendor Dashboard", Error: err.Error(), Body: form})
		return
	}
	var err error
	switch r.FormValue("action") {
	case "add":
		var b device.Backend
		if err = json.Unmarshal([]byte(r.FormValue("backend")), &b); err == nil {
			err = s.Core.AddBackend(&b)
		}
	case "delete":
		err = s.Core.State.Nodes.Delete(strings.TrimSpace(r.FormValue("node")))
	default:
		err = fmt.Errorf("visualizer: unknown vendor action")
	}
	if err != nil {
		s.render(w, page{Title: "Vendor Dashboard", Error: err.Error(), Body: form})
		return
	}
	http.Redirect(w, r, "/cluster", http.StatusSeeOther)
}
