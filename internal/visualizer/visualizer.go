// Package visualizer implements the QRIO Visualizer (§3.2): the web
// front-end users drive to submit jobs and inspect results. It renders the
// paper's flow with html/template instead of React: a front page (Fig. 3),
// the three-step submission form (Fig. 4) — job details, requested device
// characteristics, then a fidelity target or a topology drawn as an edge
// list (the react-flow canvas analogue) — and the per-job log view
// (Fig. 5). A minimal vendor page covers the paper's future-work item (1).
package visualizer

import (
	"fmt"
	"strconv"
	"strings"

	"qrio/internal/cluster/api"
	"qrio/internal/core"
	"qrio/internal/graph"
	"qrio/internal/mapomatic"
	"qrio/internal/master"
	"qrio/internal/quantum/qasm"
)

// Server renders the dashboard over a running orchestrator.
type Server struct {
	Core *core.QRIO
}

// New builds a visualizer for an orchestrator.
func New(q *core.QRIO) *Server { return &Server{Core: q} }

// formInput is the parsed three-step submission form.
type formInput struct {
	JobName   string
	ImageName string
	QASM      string
	Shots     int
	NumQubits int
	CPUMillis int64
	MemoryMB  int64

	MaxAvg2QError float64
	MaxReadoutErr float64
	MinT1us       float64
	MinT2us       float64

	Strategy       string
	TargetFidelity float64
	TopologyKind   string // "default" or "custom"
	TopologyName   string // default topology name
	TopologyQubits int
	TopologyEdges  string // custom edge list "0-1,1-2"
}

// buildRequest converts the form into the Master Server request plus the
// topology pseudo-circuit when needed (§3.2).
func (f formInput) buildRequest() (master.SubmitRequest, error) {
	req := master.SubmitRequest{
		JobName:   f.JobName,
		ImageName: f.ImageName,
		QASM:      f.QASM,
		Shots:     f.Shots,
		CPUMillis: f.CPUMillis,
		MemoryMB:  f.MemoryMB,
		Requirements: api.DeviceRequirements{
			MinQubits:     f.NumQubits,
			MaxAvg2QError: f.MaxAvg2QError,
			MaxReadoutErr: f.MaxReadoutErr,
			MinT1us:       f.MinT1us,
			MinT2us:       f.MinT2us,
		},
	}
	switch f.Strategy {
	case "fidelity":
		req.Strategy = api.StrategyFidelity
		req.TargetFidelity = f.TargetFidelity
	case "topology":
		req.Strategy = api.StrategyTopology
		g, err := f.topologyGraph()
		if err != nil {
			return req, err
		}
		topoQASM, err := qasm.Dump(mapomatic.TopologyCircuit(g))
		if err != nil {
			return req, err
		}
		req.TopologyQASM = topoQASM
	default:
		return req, fmt.Errorf("visualizer: choose a fidelity or topology strategy")
	}
	return req, nil
}

// topologyGraph builds the requested topology: one of the paper's defaults
// (grid, line, ring, heavy square, fully connected) or a custom edge list.
func (f formInput) topologyGraph() (*graph.Graph, error) {
	n := f.TopologyQubits
	if n <= 0 {
		return nil, fmt.Errorf("visualizer: topology needs a positive qubit count")
	}
	if f.TopologyKind == "default" {
		return graph.Named(f.TopologyName, n)
	}
	return ParseEdgeList(n, f.TopologyEdges)
}

// ParseEdgeList parses the custom-topology edge syntax "0-1, 1-2, 2-3"
// into a graph over n vertices — the textual stand-in for the paper's
// drag-to-connect canvas (Fig. 4f).
func ParseEdgeList(n int, edges string) (*graph.Graph, error) {
	g := graph.New(n)
	edges = strings.TrimSpace(edges)
	if edges == "" {
		return nil, fmt.Errorf("visualizer: custom topology needs at least one edge")
	}
	for _, part := range strings.Split(edges, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ab := strings.SplitN(part, "-", 2)
		if len(ab) != 2 {
			return nil, fmt.Errorf("visualizer: bad edge %q (want a-b)", part)
		}
		a, err := strconv.Atoi(strings.TrimSpace(ab[0]))
		if err != nil {
			return nil, fmt.Errorf("visualizer: bad edge %q: %v", part, err)
		}
		b, err := strconv.Atoi(strings.TrimSpace(ab[1]))
		if err != nil {
			return nil, fmt.Errorf("visualizer: bad edge %q: %v", part, err)
		}
		if err := g.AddEdge(a, b); err != nil {
			return nil, fmt.Errorf("visualizer: %v", err)
		}
	}
	return g, nil
}
