package visualizer_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/core"
	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/quantum/qasm"
	"qrio/internal/visualizer"
	"qrio/internal/workload"
)

const ghzQASM = `OPENQASM 2.0;
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
measure q -> c;
`

func newStack(t *testing.T) (*core.QRIO, *httptest.Server) {
	t.Helper()
	var fleet []*device.Backend
	for _, cfg := range []struct {
		name string
		g    *graph.Graph
		e2   float64
	}{
		{"clean", graph.Ring(10), 0.02},
		{"noisy", graph.Ring(10), 0.5},
	} {
		b, err := device.UniformBackend(cfg.name, cfg.g, cfg.e2, 0.005, 0.01, 500e3, 500e3)
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, b)
	}
	q, err := core.New(core.Config{Backends: fleet})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	t.Cleanup(q.Stop)
	srv := httptest.NewServer(visualizer.New(q).Handler())
	t.Cleanup(srv.Close)
	return q, srv
}

func get(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d:\n%s", path, resp.StatusCode, b.String())
	}
	return b.String()
}

func TestFrontPage(t *testing.T) {
	_, srv := newStack(t)
	body := get(t, srv, "/")
	for _, want := range []string{"Quantum Resource Infrastructure Orchestrator", "/submit", "/cluster"} {
		if !strings.Contains(body, want) {
			t.Errorf("front page missing %q", want)
		}
	}
}

func TestClusterView(t *testing.T) {
	_, srv := newStack(t)
	body := get(t, srv, "/cluster")
	for _, want := range []string{"clean", "noisy", "Ready", "Avg 2q error"} {
		if !strings.Contains(body, want) {
			t.Errorf("cluster view missing %q", want)
		}
	}
}

func TestSubmitFormRenders(t *testing.T) {
	_, srv := newStack(t)
	body := get(t, srv, "/submit")
	for _, want := range []string{"Step 1", "Step 2", "Step 3", "fidelity", "topology", "heavy-square"} {
		if !strings.Contains(body, want) {
			t.Errorf("submit form missing %q", want)
		}
	}
}

func TestSubmitFidelityJobThroughForm(t *testing.T) {
	q, srv := newStack(t)
	form := url.Values{
		"jobName":  {"web-ghz"},
		"qasm":     {ghzQASM},
		"shots":    {"128"},
		"strategy": {"fidelity"},
		"fidelity": {"1.0"},
	}
	resp, err := srv.Client().PostForm(srv.URL+"/submit", form)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Wait for the job to finish, then check the detail page.
	if _, err := q.WaitForJob("web-ghz", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	body := get(t, srv, "/jobs/web-ghz")
	for _, want := range []string{"Succeeded", "Logs", "estimated fidelity"} {
		if !strings.Contains(body, want) {
			t.Errorf("job page missing %q:\n%s", want, body)
		}
	}
	// The fidelity strategy must have avoided the noisy device.
	job, _, _ := q.State.Jobs.Get("web-ghz")
	if job.Status.Node != "clean" {
		t.Errorf("scheduled on %s, want clean", job.Status.Node)
	}
}

func TestSubmitCustomTopologyThroughForm(t *testing.T) {
	q, srv := newStack(t)
	src, err := qasm.Dump(workload.GHZ(4))
	if err != nil {
		t.Fatal(err)
	}
	form := url.Values{
		"jobName":    {"web-topo"},
		"qasm":       {src},
		"shots":      {"64"},
		"strategy":   {"topology"},
		"topoKind":   {"custom"},
		"topoQubits": {"4"},
		"topoEdges":  {"0-1, 1-2, 2-3, 3-0"}, // the react-flow canvas analogue
	}
	resp, err := srv.Client().PostForm(srv.URL+"/submit", form)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := q.WaitForJob("web-topo", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	job, _, _ := q.State.Jobs.Get("web-topo")
	if job.Status.Phase != api.JobSucceeded {
		t.Fatalf("job phase = %s (%s)", job.Status.Phase, job.Status.Message)
	}
}

func TestSubmitRejectsGarbage(t *testing.T) {
	_, srv := newStack(t)
	form := url.Values{
		"jobName":  {"bad"},
		"qasm":     {"not qasm"},
		"strategy": {"fidelity"},
		"fidelity": {"1.0"},
	}
	resp, err := srv.Client().PostForm(srv.URL+"/submit", form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64<<10)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "err") {
		t.Error("error not surfaced to the user")
	}
}

func TestVendorAddAndRemove(t *testing.T) {
	q, srv := newStack(t)
	extra, err := device.UniformBackend("extra", graph.Line(6), 0.1, 0.01, 0.02, 100e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(extra)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().PostForm(srv.URL+"/vendor", url.Values{
		"action":  {"add"},
		"backend": {string(raw)},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, _, err := q.State.Nodes.Get("extra"); err != nil {
		t.Fatal("vendor add did not register the node")
	}
	if _, err := q.Meta.Backend("extra"); err != nil {
		t.Fatal("vendor add did not reach the meta server")
	}
	resp, err = srv.Client().PostForm(srv.URL+"/vendor", url.Values{
		"action": {"delete"},
		"node":   {"extra"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, _, err := q.State.Nodes.Get("extra"); err == nil {
		t.Fatal("vendor delete did not remove the node")
	}
}

func TestParseEdgeList(t *testing.T) {
	g, err := visualizer.ParseEdgeList(4, "0-1, 1-2,2-3")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	for _, bad := range []string{"", "0-", "a-b", "0-9", "0-0"} {
		if _, err := visualizer.ParseEdgeList(4, bad); err == nil {
			t.Errorf("edge list %q accepted", bad)
		}
	}
}

func TestJobsListAndMissingJob(t *testing.T) {
	_, srv := newStack(t)
	body := get(t, srv, "/jobs")
	if !strings.Contains(body, "Jobs") {
		t.Error("jobs list broken")
	}
	resp, err := srv.Client().Get(srv.URL + "/jobs/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job page = %d, want 404", resp.StatusCode)
	}
}
