package fidelity

import (
	"fmt"
	"math"
	"sort"

	"qrio/internal/device"
	"qrio/internal/mapomatic"
	"qrio/internal/quantum/circuit"
	"qrio/internal/quantum/stabilizer"
	"qrio/internal/quantum/statevec"
	"qrio/internal/transpile"
)

// Execution is the record of actually running a circuit on a (simulated)
// device — what a QRIO node produces for the job logs (Fig. 5).
type Execution struct {
	// Counts is the measured histogram over the classical register.
	Counts map[string]int
	// Fidelity is the Hellinger fidelity against the ideal distribution.
	Fidelity float64
	// Transpiled is the full device-sized executable that ran.
	Transpiled *circuit.Circuit
	// ActiveQubits lists the physical qubits the executable touched.
	ActiveQubits []int
	// AddedSwaps is the routing overhead.
	AddedSwaps int
	// Method names the simulation engine used: "statevector" for dense
	// simulation, "stabilizer" for Clifford circuits too wide for it.
	Method string
}

// Execute transpiles and runs the circuit on the backend under its noise
// model. Dense simulation is used whenever the routed circuit's active
// footprint fits; all-Clifford circuits fall back to the tableau engine at
// any width. Non-Clifford circuits wider than dense limits are rejected —
// exactly the regime where the paper's canary method is the only option.
func (e Estimator) Execute(c *circuit.Circuit, b *device.Backend) (*Execution, error) {
	if e.Shots <= 0 {
		return nil, fmt.Errorf("fidelity: Execute needs positive Shots")
	}
	tr, err := transpile.Transpile(ensureMeasured(c), b, e.Transpile)
	if err != nil {
		return nil, err
	}
	compact, active, err := mapomatic.Deflate(tr.Circuit)
	if err != nil {
		return nil, err
	}
	model := compactModel(b, active)
	ex := &Execution{
		Transpiled:   tr.Circuit,
		ActiveQubits: active,
		AddedSwaps:   tr.AddedSwaps,
	}
	switch {
	case compact.NumQubits <= e.denseLimit():
		ex.Method = "statevector"
		ideal, err := statevec.IdealDistribution(compact)
		if err != nil {
			return nil, err
		}
		counts, err := statevec.Noisy{Model: model, Shots: e.Shots, Seed: e.Seed}.Counts(compact)
		if err != nil {
			return nil, err
		}
		ex.Counts = counts
		ex.Fidelity = HellingerCounts(ideal, counts)
	case compact.IsClifford():
		ex.Method = "stabilizer"
		counts, err := stabilizer.Runner{Model: model, Shots: e.Shots, Seed: e.Seed}.Counts(compact)
		if err != nil {
			return nil, err
		}
		ex.Counts = counts
		total := 0
		s := 0.0
		for _, n := range counts {
			total += n
		}
		for bits, n := range counts {
			p, err := stabilizer.OutcomeProbability(compact, bits)
			if err != nil {
				return nil, err
			}
			if p > 0 {
				s += math.Sqrt(p * float64(n) / float64(total))
			}
		}
		ex.Fidelity = s * s
	default:
		return nil, fmt.Errorf(
			"fidelity: circuit touches %d qubits after routing — too wide for dense simulation and not Clifford",
			compact.NumQubits)
	}
	return ex, nil
}

// TopCounts returns the n most frequent outcomes as "bits:count" strings,
// ties broken lexicographically — for compact log lines.
func TopCounts(counts map[string]int, n int) []string {
	type kv struct {
		bits string
		n    int
	}
	all := make([]kv, 0, len(counts))
	for b, c := range counts {
		all = append(all, kv{b, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].bits < all[j].bits
	})
	if len(all) > n {
		all = all[:n]
	}
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = fmt.Sprintf("%s:%d", e.bits, e.n)
	}
	return out
}
