// Package fidelity estimates how faithfully a device executes a circuit.
// It implements the three device-scoring strategies of the paper's
// evaluation (§4.3):
//
//   - Canary: the deployable estimator (§3.4.1) — transpile, cliffordize,
//     simulate the Clifford canary both noiselessly and under the device's
//     noise model with the polynomial-time stabilizer engine, and compare.
//   - Oracle: the ground truth — exact ideal distribution of the original
//     circuit (dense simulation) against its noisy execution. Unusable in a
//     real scheduler (it requires knowing the correct answer) but the
//     natural upper bound.
//   - Analytic: the "simplistic" product-of-success-rates estimate the
//     paper argues degrades with circuit complexity; kept for ablations.
//
// All comparisons use the Hellinger fidelity (Σ√(p·q))², Qiskit's
// convention for distribution fidelity.
package fidelity

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"

	"qrio/internal/device"
	"qrio/internal/mapomatic"
	"qrio/internal/quantum/circuit"
	"qrio/internal/quantum/clifford"
	"qrio/internal/quantum/noise"
	"qrio/internal/quantum/stabilizer"
	"qrio/internal/quantum/statevec"
	"qrio/internal/transpile"
)

// Hellinger returns the Hellinger fidelity (Σ_s √(p(s)·q(s)))² between two
// distributions given as probability maps over bitstrings.
func Hellinger(p, q map[string]float64) float64 {
	s := 0.0
	for k, pv := range p {
		if qv, ok := q[k]; ok && pv > 0 && qv > 0 {
			s += math.Sqrt(pv * qv)
		}
	}
	return s * s
}

// HellingerCounts compares an exact distribution with an empirical
// histogram.
func HellingerCounts(ideal map[string]float64, counts map[string]int) float64 {
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	s := 0.0
	for k, n := range counts {
		if p, ok := ideal[k]; ok && p > 0 {
			s += math.Sqrt(p * float64(n) / float64(total))
		}
	}
	return s * s
}

// TVD returns the total variation distance between two distributions.
func TVD(p, q map[string]float64) float64 {
	seen := map[string]bool{}
	d := 0.0
	for k, pv := range p {
		d += math.Abs(pv - q[k])
		seen[k] = true
	}
	for k, qv := range q {
		if !seen[k] {
			d += qv
		}
	}
	return d / 2
}

// Estimator configures fidelity evaluation. The zero value is invalid; use
// NewEstimator or set Shots explicitly.
type Estimator struct {
	Shots     int
	Seed      int64
	Transpile transpile.Options
	// MaxDenseQubits caps dense (state-vector) simulation below the hard
	// limit of statevec.MaxQubits; 0 means the hard limit. Fleet-scale
	// experiments lower this so a routed circuit that wanders across a
	// sparse device fails fast instead of grinding through 2^20+ amplitude
	// simulations.
	MaxDenseQubits int
	// CanaryEnsemble is the number of randomised-rounding canary variants
	// averaged by CanaryFidelity (0 = 5; 1 = single deterministic canary).
	// See clifford.Ensemble for why a single canary can be blind.
	CanaryEnsemble int
}

// canarySize resolves the canary ensemble size.
func (e Estimator) canarySize() int {
	if e.CanaryEnsemble <= 0 {
		return 5
	}
	return e.CanaryEnsemble
}

// denseLimit resolves the effective dense-simulation qubit cap.
func (e Estimator) denseLimit() int {
	if e.MaxDenseQubits > 0 && e.MaxDenseQubits < statevec.MaxQubits {
		return e.MaxDenseQubits
	}
	return statevec.MaxQubits
}

// NewEstimator returns an estimator with sensible defaults.
func NewEstimator(seed int64) Estimator {
	return Estimator{Shots: 256, Seed: seed}
}

// CanaryFingerprint digests everything that determines a CanaryFidelity
// result except the backend: the circuit source and the estimator's canary
// configuration. Two calls with equal fingerprints against the same
// backend calibration are guaranteed to return the same fidelity, which is
// what lets the Meta Server memoise canary simulation across jobs.
func (e Estimator) CanaryFingerprint(qasmSrc string) string {
	h := sha256.New()
	fmt.Fprintf(h, "canary|shots=%d|seed=%d|dense=%d|ensemble=%d|tr=%+v|",
		e.Shots, e.Seed, e.MaxDenseQubits, e.CanaryEnsemble, e.Transpile)
	io.WriteString(h, qasmSrc)
	return hex.EncodeToString(h.Sum(nil))
}

// ensureMeasured returns c itself when it measures, or a copy measuring
// every qubit.
func ensureMeasured(c *circuit.Circuit) *circuit.Circuit {
	if c.HasMeasurements() {
		return c
	}
	m := c.Copy()
	m.MeasureAll()
	return m
}

// prepare transpiles the circuit for the backend and deflates the physical
// circuit to its active qubits, returning the compact circuit plus the
// matching compact noise model.
func (e Estimator) prepare(c *circuit.Circuit, b *device.Backend) (*circuit.Circuit, *noise.Model, error) {
	tr, err := transpile.Transpile(ensureMeasured(c), b, e.Transpile)
	if err != nil {
		return nil, nil, err
	}
	compact, active, err := mapomatic.Deflate(tr.Circuit)
	if err != nil {
		return nil, nil, err
	}
	return compact, compactModel(b, active), nil
}

// compactModel restricts a backend's noise model to the given physical
// qubits, reindexed 0..len(active)-1.
func compactModel(b *device.Backend, active []int) *noise.Model {
	idx := make(map[int]int, len(active))
	for i, p := range active {
		idx[p] = i
	}
	m := &noise.Model{
		NumQubits:       len(active),
		OneQubit:        make([]float64, len(active)),
		Readout:         make([]float64, len(active)),
		TwoQubit:        map[[2]int]float64{},
		TwoQubitDefault: 0.99,
	}
	for i, p := range active {
		m.OneQubit[i] = b.OneQubitErr[p]
		m.Readout[i] = b.ReadoutErr[p]
	}
	for e2, err := range b.TwoQubitErr {
		a, ok1 := idx[e2[0]]
		c, ok2 := idx[e2[1]]
		if ok1 && ok2 {
			m.TwoQubit[noise.NormPair(a, c)] = err
		}
	}
	return m
}

// CanaryFidelity estimates the fidelity circuit c would achieve on backend
// b using the Clifford canary method, averaging over a randomised-rounding
// canary ensemble (clifford.Ensemble). It is computable for any device
// size — the whole point of the strategy (§3.4.1).
//
// The ensemble is built from the *logical* circuit, so every device is
// scored against the same reference canaries; each member is then
// transpiled to the device under test (cliffordizing after transpilation
// would hand every device a structurally different canary and make
// cross-device fidelities incomparable).
func (e Estimator) CanaryFidelity(c *circuit.Circuit, b *device.Backend) (float64, error) {
	if e.Shots <= 0 {
		return 0, fmt.Errorf("fidelity: estimator needs positive Shots")
	}
	measured := ensureMeasured(c).Decompose()
	members := selectCanaries(measured, e.canarySize())
	shots := e.Shots / len(members)
	if shots < 128 {
		shots = 128 // member estimates need enough shots to separate the
		// best devices, whose fidelities differ by a few percent
	}
	sum := 0.0
	for k, canary := range members {
		f, err := e.canaryMemberFidelity(canary, b, e.Seed+int64(k)*7919, shots)
		if err != nil {
			return 0, err
		}
		sum += f
	}
	return sum / float64(len(members)), nil
}

// selectCanaries picks the canary ensemble for a (decomposed, measured)
// logical circuit. Candidates come from clifford.Ensemble with a seed
// derived from the circuit itself — NOT from the estimator seed — so every
// device is judged against identical reference canaries. From an
// oversampled candidate pool it keeps the members whose ideal output
// distributions are most concentrated: a canary whose ideal distribution is
// (near-)uniform is blind to noise under the Hellinger metric, so
// preferring concentrated members maximises ranking signal (the
// canary-sensitivity selection of Quancorde [24]).
func selectCanaries(measured *circuit.Circuit, size int) []*circuit.Circuit {
	seed := circuitSeed(measured)
	candidates := clifford.Ensemble(measured, 3*size, seed)
	type scored struct {
		c    *circuit.Circuit
		conc float64
		idx  int
	}
	items := make([]scored, 0, len(candidates))
	for i, cand := range candidates {
		items = append(items, scored{c: cand, conc: concentration(cand, seed), idx: i})
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].conc > items[b].conc })
	if len(items) > size {
		items = items[:size]
	}
	out := make([]*circuit.Circuit, len(items))
	for i, it := range items {
		out[i] = it.c
	}
	return out
}

// concentration estimates the probability of a canary's most likely ideal
// outcome: sample a few noiseless shots, then evaluate the modal outcome's
// exact probability.
func concentration(c *circuit.Circuit, seed int64) float64 {
	counts, err := stabilizer.Runner{Shots: 96, Seed: seed}.Counts(c)
	if err != nil {
		return 0
	}
	mode, best := "", 0
	for bits, n := range counts {
		if n > best || (n == best && bits < mode) {
			mode, best = bits, n
		}
	}
	p, err := stabilizer.OutcomeProbability(c, mode)
	if err != nil {
		return 0
	}
	return p
}

// circuitSeed derives a stable seed from a circuit's structure so canary
// ensembles are identical across devices and processes.
func circuitSeed(c *circuit.Circuit) int64 {
	h := int64(1469598103934665603)
	mix := func(v int64) {
		h ^= v
		h *= 1099511628211
	}
	mix(int64(c.NumQubits))
	for _, g := range c.Gates {
		for _, b := range []byte(g.Name) {
			mix(int64(b))
		}
		for _, q := range g.Qubits {
			mix(int64(q))
		}
		for _, p := range g.Params {
			mix(int64(math.Float64bits(p)))
		}
	}
	return h
}

// canaryMemberFidelity transpiles one canary variant to the device, runs it
// under the device noise model, and compares against the member's exact
// ideal outcome probabilities (stabilizer states have dyadic outcome
// probabilities, so the ideal side is exact, not sampled). The ideal
// distribution over classical bits is device-independent, so it is
// evaluated on the logical member.
func (e Estimator) canaryMemberFidelity(canary *circuit.Circuit, b *device.Backend, seed int64, shots int) (float64, error) {
	tr, err := transpile.Transpile(canary, b, e.Transpile)
	if err != nil {
		return 0, err
	}
	compact, active, err := mapomatic.Deflate(tr.Circuit)
	if err != nil {
		return 0, err
	}
	model := compactModel(b, active)
	noisy, err := stabilizer.Runner{Model: model, Shots: shots, Seed: seed}.Counts(compact)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, n := range noisy {
		total += n
	}
	s := 0.0
	for bits, n := range noisy {
		p, err := stabilizer.OutcomeProbability(canary, bits)
		if err != nil {
			return 0, err
		}
		if p > 0 {
			s += math.Sqrt(p * float64(n) / float64(total))
		}
	}
	return s * s, nil
}

// OracleFidelity computes the achieved fidelity of the actual circuit on
// the backend: exact ideal distribution vs Monte-Carlo noisy execution.
// It fails when the circuit (after routing) touches more qubits than dense
// simulation allows.
func (e Estimator) OracleFidelity(c *circuit.Circuit, b *device.Backend) (float64, error) {
	if e.Shots <= 0 {
		return 0, fmt.Errorf("fidelity: estimator needs positive Shots")
	}
	compact, model, err := e.prepare(c, b)
	if err != nil {
		return 0, err
	}
	if compact.NumQubits > e.denseLimit() {
		return 0, fmt.Errorf("fidelity: oracle needs %d qubits (> %d) on %s",
			compact.NumQubits, e.denseLimit(), b.Name)
	}
	ideal, err := statevec.IdealDistribution(compact)
	if err != nil {
		return 0, err
	}
	noisy, err := statevec.Noisy{Model: model, Shots: e.Shots, Seed: e.Seed}.Counts(compact)
	if err != nil {
		return 0, err
	}
	return HellingerCounts(ideal, noisy), nil
}

// AnalyticFidelity is the simplistic estimate Π(1−e_i) over the transpiled
// circuit's gates and readouts (no simulation). Kept as an ablation
// baseline for the canary method.
func (e Estimator) AnalyticFidelity(c *circuit.Circuit, b *device.Backend) (float64, error) {
	tr, err := transpile.Transpile(ensureMeasured(c), b, e.Transpile)
	if err != nil {
		return 0, err
	}
	cost := mapomatic.PhysicalCost(tr.Circuit, b)
	return math.Exp(-cost), nil
}
