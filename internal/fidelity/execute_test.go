package fidelity_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"qrio/internal/device"
	"qrio/internal/fidelity"
	"qrio/internal/graph"
	"qrio/internal/quantum/circuit"
	"qrio/internal/workload"
)

func TestExecuteDenseVsStabilizerAgree(t *testing.T) {
	// A Clifford circuit small enough for both engines: force each path
	// and compare fidelities.
	c := workload.GHZ(5)
	b := uniform(t, "dual", graph.Line(8), 0.1, 0.01, 0.02)
	dense := fidelity.Estimator{Shots: 8000, Seed: 3}
	exD, err := dense.Execute(c, b)
	if err != nil {
		t.Fatal(err)
	}
	if exD.Method != "statevector" {
		t.Fatalf("dense path used %s", exD.Method)
	}
	// Cap dense simulation below the circuit width to force the tableau.
	stab := fidelity.Estimator{Shots: 8000, Seed: 4, MaxDenseQubits: 2}
	exS, err := stab.Execute(c, b)
	if err != nil {
		t.Fatal(err)
	}
	if exS.Method != "stabilizer" {
		t.Fatalf("stabilizer path used %s", exS.Method)
	}
	if math.Abs(exD.Fidelity-exS.Fidelity) > 0.05 {
		t.Fatalf("engines disagree: dense %v vs stabilizer %v", exD.Fidelity, exS.Fidelity)
	}
}

func TestExecuteWideCliffordUsesStabilizer(t *testing.T) {
	// 40-qubit GHZ on a 50-qubit device: far beyond dense simulation.
	c := workload.GHZ(40)
	b, err := device.GenerateBackend("wide", 50, 0.7, device.DefaultFleetSpec(), 8)
	if err != nil {
		t.Fatal(err)
	}
	est := fidelity.Estimator{Shots: 64, Seed: 5}
	ex, err := est.Execute(c, b)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Method != "stabilizer" {
		t.Fatalf("method = %s", ex.Method)
	}
	if ex.Fidelity < 0 || ex.Fidelity > 1 {
		t.Fatalf("fidelity out of range: %v", ex.Fidelity)
	}
	if len(ex.ActiveQubits) < 40 {
		t.Fatalf("active footprint %d < 40", len(ex.ActiveQubits))
	}
}

func TestExecuteWideNonCliffordFails(t *testing.T) {
	// A wide non-Clifford circuit must be rejected with a clear error —
	// this is the regime where only the canary method works.
	c := circuit.New(30)
	for q := 0; q < 30; q++ {
		c.T(q)
		c.H(q)
	}
	for q := 0; q < 29; q++ {
		c.CX(q, q+1)
	}
	c.MeasureAll()
	b, err := device.GenerateBackend("wide2", 40, 0.7, device.DefaultFleetSpec(), 9)
	if err != nil {
		t.Fatal(err)
	}
	est := fidelity.Estimator{Shots: 32, Seed: 6, MaxDenseQubits: 16}
	_, err = est.Execute(c, b)
	if err == nil {
		t.Fatal("wide non-Clifford circuit accepted")
	}
	if !strings.Contains(err.Error(), "not Clifford") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// The canary, by contrast, still works here.
	if _, err := est.CanaryFidelity(c, b); err != nil {
		t.Fatalf("canary should handle the wide circuit: %v", err)
	}
}

func TestExecuteRecordsTranspilationArtifacts(t *testing.T) {
	c := workload.GHZ(4)
	b := uniform(t, "art", graph.Line(6), 0.05, 0.01, 0.02)
	est := fidelity.Estimator{Shots: 128, Seed: 7}
	ex, err := est.Execute(c, b)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Transpiled == nil || ex.Transpiled.NumQubits != 6 {
		t.Fatal("transpiled circuit missing or wrong register")
	}
	total := 0
	for _, n := range ex.Counts {
		total += n
	}
	if total != 128 {
		t.Fatalf("counts total %d != shots", total)
	}
}

func TestTopCounts(t *testing.T) {
	counts := map[string]int{"00": 5, "01": 9, "10": 9, "11": 1}
	top := fidelity.TopCounts(counts, 2)
	if len(top) != 2 || top[0] != "01:9" || top[1] != "10:9" {
		t.Fatalf("TopCounts = %v (ties must break lexicographically)", top)
	}
	if got := fidelity.TopCounts(counts, 10); len(got) != 4 {
		t.Fatalf("TopCounts cap failed: %v", got)
	}
	if got := fidelity.TopCounts(nil, 3); len(got) != 0 {
		t.Fatalf("TopCounts(nil) = %v", got)
	}
}

// TestHellingerProperties checks the metric's bounds and symmetry over
// random distributions.
func TestHellingerProperties(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		// Build two small normalised distributions from the fuzz inputs.
		pa := float64(a%100) + 1
		pb := float64(b%100) + 1
		qa := float64(c%100) + 1
		qb := float64(d%100) + 1
		p := map[string]float64{"0": pa / (pa + pb), "1": pb / (pa + pb)}
		q := map[string]float64{"0": qa / (qa + qb), "1": qb / (qa + qb)}
		h1 := fidelity.Hellinger(p, q)
		h2 := fidelity.Hellinger(q, p)
		if math.Abs(h1-h2) > 1e-12 {
			return false // symmetric
		}
		if h1 < 0 || h1 > 1+1e-12 {
			return false // bounded
		}
		// Identity of indiscernibles (within float slack).
		if fidelity.Hellinger(p, p) < 1-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTVDHellingerConsistency: both metrics must agree on ordering for
// nested perturbations of a distribution.
func TestTVDHellingerConsistency(t *testing.T) {
	base := map[string]float64{"0": 0.5, "1": 0.5}
	near := map[string]float64{"0": 0.55, "1": 0.45}
	far := map[string]float64{"0": 0.9, "1": 0.1}
	if fidelity.TVD(base, near) >= fidelity.TVD(base, far) {
		t.Fatal("TVD ordering broken")
	}
	if fidelity.Hellinger(base, near) <= fidelity.Hellinger(base, far) {
		t.Fatal("Hellinger ordering broken (higher = closer)")
	}
}
