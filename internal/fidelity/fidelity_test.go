package fidelity_test

import (
	"math"
	"testing"

	"qrio/internal/device"
	"qrio/internal/fidelity"
	"qrio/internal/graph"
	"qrio/internal/quantum/circuit"
)

func uniform(t *testing.T, name string, g *graph.Graph, e2, e1, ro float64) *device.Backend {
	t.Helper()
	b, err := device.UniformBackend(name, g, e2, e1, ro, 100e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestHellingerIdentical(t *testing.T) {
	p := map[string]float64{"00": 0.5, "11": 0.5}
	if f := fidelity.Hellinger(p, p); math.Abs(f-1) > 1e-12 {
		t.Fatalf("Hellinger(p,p) = %v, want 1", f)
	}
}

func TestHellingerDisjoint(t *testing.T) {
	p := map[string]float64{"00": 1}
	q := map[string]float64{"11": 1}
	if f := fidelity.Hellinger(p, q); f != 0 {
		t.Fatalf("Hellinger(disjoint) = %v, want 0", f)
	}
}

func TestHellingerCounts(t *testing.T) {
	ideal := map[string]float64{"0": 0.5, "1": 0.5}
	counts := map[string]int{"0": 500, "1": 500}
	if f := fidelity.HellingerCounts(ideal, counts); math.Abs(f-1) > 1e-12 {
		t.Fatalf("HellingerCounts = %v, want 1", f)
	}
	if f := fidelity.HellingerCounts(ideal, map[string]int{}); f != 0 {
		t.Fatalf("empty counts fidelity = %v, want 0", f)
	}
}

func TestTVD(t *testing.T) {
	p := map[string]float64{"0": 1}
	q := map[string]float64{"1": 1}
	if d := fidelity.TVD(p, q); math.Abs(d-1) > 1e-12 {
		t.Fatalf("TVD(disjoint) = %v, want 1", d)
	}
	if d := fidelity.TVD(p, p); d != 0 {
		t.Fatalf("TVD(p,p) = %v, want 0", d)
	}
}

func bell() *circuit.Circuit {
	c := circuit.New(2)
	c.Name = "bell"
	c.H(0)
	c.CX(0, 1)
	c.MeasureAll()
	return c
}

func TestNoiselessFidelityIsNearOne(t *testing.T) {
	b := uniform(t, "clean", graph.Line(4), 0, 0, 0)
	e := fidelity.NewEstimator(1)
	can, err := e.CanaryFidelity(bell(), b)
	if err != nil {
		t.Fatal(err)
	}
	if can < 0.99 {
		t.Fatalf("noiseless canary fidelity = %v, want ~1", can)
	}
	orc, err := e.OracleFidelity(bell(), b)
	if err != nil {
		t.Fatal(err)
	}
	if orc < 0.999 {
		t.Fatalf("noiseless oracle fidelity = %v, want ~1", orc)
	}
	an, err := e.AnalyticFidelity(bell(), b)
	if err != nil {
		t.Fatal(err)
	}
	if an < 0.999 {
		t.Fatalf("noiseless analytic fidelity = %v, want ~1", an)
	}
}

func TestFidelityOrdersDevicesByNoise(t *testing.T) {
	good := uniform(t, "good", graph.Line(4), 0.02, 0.005, 0.01)
	bad := uniform(t, "bad", graph.Line(4), 0.4, 0.1, 0.1)
	e := fidelity.Estimator{Shots: 512, Seed: 5}
	for _, method := range []struct {
		name string
		f    func(*circuit.Circuit, *device.Backend) (float64, error)
	}{
		{"canary", e.CanaryFidelity},
		{"oracle", e.OracleFidelity},
		{"analytic", e.AnalyticFidelity},
	} {
		fg, err := method.f(bell(), good)
		if err != nil {
			t.Fatalf("%s(good): %v", method.name, err)
		}
		fb, err := method.f(bell(), bad)
		if err != nil {
			t.Fatalf("%s(bad): %v", method.name, err)
		}
		if fg <= fb {
			t.Errorf("%s: good device %v <= bad device %v", method.name, fg, fb)
		}
		if fg < 0 || fg > 1 || fb < 0 || fb > 1 {
			t.Errorf("%s: fidelity out of [0,1]: %v %v", method.name, fg, fb)
		}
	}
}

func TestCanaryTracksOracleOnCliffordCircuit(t *testing.T) {
	// BV-style circuit is all-Clifford: canary and oracle see the same
	// circuit, so estimates must land close.
	c := circuit.New(4)
	c.X(3)
	for q := 0; q < 4; q++ {
		c.H(q)
	}
	c.CX(0, 3)
	c.CX(2, 3)
	for q := 0; q < 3; q++ {
		c.H(q)
	}
	for q := 0; q < 3; q++ {
		c.Measure(q, q)
	}
	b := uniform(t, "mid", graph.Line(6), 0.08, 0.01, 0.02)
	e := fidelity.Estimator{Shots: 2048, Seed: 11}
	can, err := e.CanaryFidelity(c, b)
	if err != nil {
		t.Fatal(err)
	}
	orc, err := e.OracleFidelity(c, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(can-orc) > 0.1 {
		t.Fatalf("canary %v deviates from oracle %v on Clifford circuit", can, orc)
	}
}

func TestCanaryWorksOnLargeDevice(t *testing.T) {
	// The whole point of the canary: still computable when the device has
	// 60 qubits (transpiled circuit is deflated, but routing may wander).
	spec := device.DefaultFleetSpec()
	b, err := device.GenerateBackend("big", 60, 0.3, spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := fidelity.Estimator{Shots: 128, Seed: 7}
	f, err := e.CanaryFidelity(bell(), b)
	if err != nil {
		t.Fatal(err)
	}
	if f < 0 || f > 1 {
		t.Fatalf("fidelity out of range: %v", f)
	}
}

func TestUnmeasuredCircuitGetsMeasured(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	b := uniform(t, "clean", graph.Line(3), 0, 0, 0)
	e := fidelity.NewEstimator(2)
	f, err := e.CanaryFidelity(c, b)
	if err != nil {
		t.Fatal(err)
	}
	if f < 0.99 {
		t.Fatalf("auto-measured canary fidelity = %v", f)
	}
}

func TestEstimatorRejectsZeroShots(t *testing.T) {
	b := uniform(t, "x", graph.Line(2), 0, 0, 0)
	var e fidelity.Estimator
	if _, err := e.CanaryFidelity(bell(), b); err == nil {
		t.Fatal("zero-shot estimator accepted")
	}
	if _, err := e.OracleFidelity(bell(), b); err == nil {
		t.Fatal("zero-shot estimator accepted")
	}
}

func TestAnalyticMatchesClosedForm(t *testing.T) {
	b := uniform(t, "cf", graph.Line(2), 0.1, 0, 0.05)
	c := circuit.New(2)
	c.CX(0, 1)
	c.MeasureAll()
	e := fidelity.NewEstimator(1)
	got, err := e.AnalyticFidelity(c, b)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - 0.1) * (1 - 0.05) * (1 - 0.05)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("analytic = %v, want %v", got, want)
	}
}
