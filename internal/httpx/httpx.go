// Package httpx holds the HTTP plumbing shared by every QRIO server — the
// JSON codec helpers that were once copy-pasted across the master, cluster
// API and meta servers, and the /v1 structured error envelope. Every error
// response carries a machine-readable code so clients can branch on the
// failure class instead of string-matching messages:
//
//	{"error": {"code": "not_found", "message": "store: \"bv\" not found"}}
//
// The defined codes are invalid, not_found, conflict, unschedulable,
// quota_exceeded, rate_limited, method_not_allowed, compacted,
// overloaded, draining and internal.
package httpx

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"qrio/internal/cluster/store"
)

// Machine-readable error codes of the /v1 envelope.
const (
	CodeInvalid          = "invalid"
	CodeNotFound         = "not_found"
	CodeConflict         = "conflict"
	CodeUnschedulable    = "unschedulable"
	CodeQuotaExceeded    = "quota_exceeded"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeInternal         = "internal"
	// CodeCompacted (410 Gone) rejects a watch resume token whose position
	// has aged out of the server's version journal — the client must fall
	// back to a fresh watch (full snapshot) instead of an exact replay,
	// mirroring the Kubernetes expired-resourceVersion contract.
	CodeCompacted = "compacted"
	// CodeRateLimited (429) rejects a submission the tenant's token-bucket
	// rate limit refused; the Retry-After header says when the next token
	// arrives. Distinct from quota_exceeded: rate limits bound request
	// arrival, quotas bound admitted-but-unfinished work.
	CodeRateLimited = "rate_limited"
	// CodeOverloaded (503) sheds a request the gateway's global
	// max-in-flight bound refused — back off and retry.
	CodeOverloaded = "overloaded"
	// CodeDraining (503) rejects intake while the server is shutting down
	// gracefully; resubmit against another replica or after the restart.
	CodeDraining = "draining"
)

// MaxBodyBytes caps request and response bodies (circuits travel as QASM
// strings inside JSON, so payloads stay modest).
const MaxBodyBytes = 16 << 20

// ErrorBody is the payload inside the envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the wire shape of every QRIO error response.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// DecodeJSON reads a bounded request body into v.
func DecodeJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBodyBytes))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// WriteJSON writes v with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// RetryAfterer lets throttling error types (rate limit, quota, overload)
// tell clients when retrying could succeed; WriteError/WriteErr turn it
// into a Retry-After header on the response.
type RetryAfterer interface {
	RetryAfter() time.Duration
}

// WriteError writes the envelope with an explicit status and code. When
// the error (chain) carries a RetryAfter hint, the Retry-After header is
// set (whole seconds, rounded up, at least 1 — the HTTP delta-seconds
// form).
func WriteError(w http.ResponseWriter, status int, code string, err error) {
	var ra RetryAfterer
	if errors.As(err, &ra) {
		if d := ra.RetryAfter(); d > 0 {
			w.Header().Set("Retry-After", FormatRetryAfter(d))
		}
	}
	WriteJSON(w, status, ErrorEnvelope{Error: ErrorBody{Code: code, Message: err.Error()}})
}

// FormatRetryAfter renders a duration as HTTP delta-seconds (ceiling,
// minimum 1 — "Retry-After: 0" would invite an immediate hammer).
func FormatRetryAfter(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// ParseRetryAfter reads a Retry-After header value (delta-seconds form)
// back into a duration; 0 when absent or malformed.
func ParseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.ParseInt(v, 10, 64)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// WriteErr classifies err through StatusOf and writes the envelope, using
// the fallback status/code when the error carries no known type.
func WriteErr(w http.ResponseWriter, err error, fallbackStatus int, fallbackCode string) {
	status, code := StatusOf(err)
	if status == 0 {
		status, code = fallbackStatus, fallbackCode
	}
	WriteError(w, status, code, err)
}

// MethodNotAllowed writes the 405 envelope.
func MethodNotAllowed(w http.ResponseWriter, r *http.Request) {
	WriteError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
		fmt.Errorf("method %s not allowed on %s", r.Method, r.URL.Path))
}

// StatusCoder lets domain error types declare their own HTTP status and
// envelope code without depending on this package — state.TerminalJobError
// (conflict) and sched.UnschedulableError (unschedulable) implement it.
type StatusCoder interface {
	HTTPStatus() (status int, code string)
}

// StatusOf maps QRIO's typed domain errors onto (HTTP status, code):
// store lookup errors directly, everything else through StatusCoder.
// Unknown errors return (0, "") so callers choose their own fallback.
func StatusOf(err error) (int, string) {
	var notFound store.ErrNotFound
	var exists store.ErrExists
	var coder StatusCoder
	switch {
	case errors.As(err, &notFound):
		return http.StatusNotFound, CodeNotFound
	case errors.As(err, &exists):
		return http.StatusConflict, CodeConflict
	case errors.As(err, &coder):
		return coder.HTTPStatus()
	default:
		return 0, ""
	}
}

// ErrorFunc shapes a non-2xx response into the caller's error type:
// status and the envelope's code/message (message is "" when the body
// carried no recognisable envelope), plus the response's Retry-After
// delay (0 when the header was absent).
type ErrorFunc func(status int, code, message string, retryAfter time.Duration) error

// DoJSON is the one JSON request/response round trip every QRIO HTTP
// client shares: marshal in (when non-nil), issue the request under ctx,
// bound-read the response, and unmarshal into out (when non-nil). Non-2xx
// responses have their error envelope decoded and are shaped into the
// caller's error type via onError. For automatic retries wrap the call in
// DoJSONRetry (retry.go).
func DoJSON(ctx context.Context, hc *http.Client, method, url string, in, out any,
	onError ErrorFunc) error {
	_, _, err := doJSONOnce(ctx, hc, method, url, in, out, onError)
	return err
}

// doJSONOnce performs one attempt and additionally reports the HTTP
// status (0 on transport error) and the server's Retry-After delay so
// the retry loop can classify failures and pace itself without
// unwrapping the caller-shaped error.
func doJSONOnce(ctx context.Context, hc *http.Client, method, url string, in, out any,
	onError ErrorFunc) (status int, retryAfter time.Duration, err error) {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return 0, 0, err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return 0, 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes))
	if err != nil {
		return resp.StatusCode, 0, err
	}
	if resp.StatusCode >= 300 {
		code, msg, _ := DecodeErrorBody(raw)
		ra := ParseRetryAfter(resp.Header.Get("Retry-After"))
		return resp.StatusCode, ra, onError(resp.StatusCode, code, msg, ra)
	}
	if out != nil {
		return resp.StatusCode, 0, json.Unmarshal(raw, out)
	}
	return resp.StatusCode, 0, nil
}

// DecodeErrorBody parses an error response body into (code, message). It
// understands the structured envelope and falls back to the legacy
// {"error": "message"} string shape.
func DecodeErrorBody(raw []byte) (code, message string, ok bool) {
	var env ErrorEnvelope
	if json.Unmarshal(raw, &env) == nil && env.Error.Message != "" {
		return env.Error.Code, env.Error.Message, true
	}
	var legacy struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &legacy) == nil && legacy.Error != "" {
		return "", legacy.Error, true
	}
	return "", "", false
}
