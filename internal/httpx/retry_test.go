package httpx

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// shapeErr is the ErrorFunc the retry tests thread through, mirroring
// what real clients do: keep status and code visible.
func shapeErr(status int, code, message string, _ time.Duration) error {
	return fmt.Errorf("status %d code %s: %s", status, code, message)
}

// TestDelayJitterBounds pins the full-jitter window: attempt n draws
// uniformly from [0, min(MaxDelay, BaseDelay·2ⁿ)], and a seeded generator
// makes the draw sequence reproducible.
func TestDelayJitterBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
	rng := rand.New(rand.NewSource(7))
	windows := []time.Duration{
		50 * time.Millisecond,  // attempt 0
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second, // stays capped
	}
	for attempt, window := range windows {
		for i := 0; i < 200; i++ {
			d := p.Delay(attempt, 0, rng)
			if d < 0 || d > window {
				t.Fatalf("Delay(attempt=%d) = %s outside [0, %s]", attempt, d, window)
			}
		}
	}

	// Same seed → same sequence (determinism rule).
	a, b := rand.New(rand.NewSource(11)), rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		if da, db := p.Delay(i%6, 0, a), p.Delay(i%6, 0, b); da != db {
			t.Fatalf("same-seed draw %d diverged: %s vs %s", i, da, db)
		}
	}
}

// TestDelayRetryAfterWins: a positive server Retry-After overrides the
// backoff curve outright.
func TestDelayRetryAfterWins(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	if d := p.Delay(0, 3*time.Second, rand.New(rand.NewSource(1))); d != 3*time.Second {
		t.Fatalf("Delay with Retry-After = %s, want 3s", d)
	}
}

// TestDelayZeroValueDefaults: an unset policy still produces sane
// windows (50ms base, 2s cap).
func TestDelayZeroValueDefaults(t *testing.T) {
	var p RetryPolicy
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if d := p.Delay(0, 0, rng); d > 50*time.Millisecond {
			t.Fatalf("zero-value Delay(0) = %s beyond the 50ms default window", d)
		}
		if d := p.Delay(20, 0, rng); d > 2*time.Second {
			t.Fatalf("zero-value Delay(20) = %s beyond the 2s default cap", d)
		}
	}
}

// flakyServer answers with failStatus for the first failures calls, then
// 200 {"ok":true}.
func flakyServer(t *testing.T, failStatus int, failures int32) (*httptest.Server, *int32) {
	t.Helper()
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if atomic.AddInt32(&calls, 1) <= failures {
			WriteError(w, failStatus, CodeOverloaded, fmt.Errorf("try later"))
			return
		}
		WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
}

// TestRetryTransient503: an idempotent request retries through transient
// 503s and succeeds.
func TestRetryTransient503(t *testing.T) {
	srv, calls := flakyServer(t, http.StatusServiceUnavailable, 2)
	var out map[string]bool
	err := DoJSONRetry(context.Background(), srv.Client(), fastRetry(3),
		http.MethodGet, srv.URL, nil, &out, shapeErr)
	if err != nil {
		t.Fatalf("retried GET: %v", err)
	}
	if !out["ok"] || atomic.LoadInt32(calls) != 3 {
		t.Fatalf("out=%v calls=%d, want ok after 3 calls", out, atomic.LoadInt32(calls))
	}
}

// TestNoRetryNonIdempotent: POST is not replayed unless the policy opts
// in (the server must deduplicate first).
func TestNoRetryNonIdempotent(t *testing.T) {
	srv, calls := flakyServer(t, http.StatusServiceUnavailable, 2)
	err := DoJSONRetry(context.Background(), srv.Client(), fastRetry(3),
		http.MethodPost, srv.URL, map[string]string{"a": "b"}, nil, shapeErr)
	if err == nil {
		t.Fatal("non-idempotent POST was retried to success")
	}
	if got := atomic.LoadInt32(calls); got != 1 {
		t.Fatalf("POST issued %d times, want 1", got)
	}

	p := fastRetry(3)
	p.RetryNonIdempotent = true
	atomic.StoreInt32(calls, 0)
	if err := DoJSONRetry(context.Background(), srv.Client(), p,
		http.MethodPost, srv.URL, map[string]string{"a": "b"}, nil, shapeErr); err != nil {
		t.Fatalf("opted-in POST retry: %v", err)
	}
	if got := atomic.LoadInt32(calls); got != 3 {
		t.Fatalf("opted-in POST issued %d times, want 3", got)
	}
}

// TestNoRetryDeterministicStatus: 4xx like not_found are deterministic —
// replaying wastes the budget, so one attempt only.
func TestNoRetryDeterministicStatus(t *testing.T) {
	srv, calls := flakyServer(t, http.StatusNotFound, 99)
	err := DoJSONRetry(context.Background(), srv.Client(), fastRetry(3),
		http.MethodGet, srv.URL, nil, nil, shapeErr)
	if err == nil {
		t.Fatal("404 succeeded")
	}
	if got := atomic.LoadInt32(calls); got != 1 {
		t.Fatalf("404 GET issued %d times, want 1", got)
	}
}

// TestRetry429: throttling responses are retry-worthy.
func TestRetry429(t *testing.T) {
	srv, calls := flakyServer(t, http.StatusTooManyRequests, 1)
	if err := DoJSONRetry(context.Background(), srv.Client(), fastRetry(2),
		http.MethodGet, srv.URL, nil, nil, shapeErr); err != nil {
		t.Fatalf("retried past 429: %v", err)
	}
	if got := atomic.LoadInt32(calls); got != 2 {
		t.Fatalf("429 GET issued %d times, want 2", got)
	}
}

// TestPerAttemptTimeout: a hung first attempt is bounded by
// PerAttemptTimeout and retried while the caller's context is still
// live — the stuck-dependency case.
func TestPerAttemptTimeout(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			<-r.Context().Done() // hang until the per-attempt deadline kills us
			return
		}
		WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
	}))
	defer srv.Close()

	p := fastRetry(2)
	p.PerAttemptTimeout = 50 * time.Millisecond
	var out map[string]bool
	if err := DoJSONRetry(context.Background(), srv.Client(), p,
		http.MethodGet, srv.URL, nil, &out, shapeErr); err != nil {
		t.Fatalf("hung first attempt not recovered: %v", err)
	}
	if !out["ok"] || atomic.LoadInt32(&calls) != 2 {
		t.Fatalf("out=%v calls=%d, want ok after 2 calls", out, atomic.LoadInt32(&calls))
	}
}

// TestCallerCancelNotRetried: the caller's own context ending is final —
// no replay, prompt return.
func TestCallerCancelNotRetried(t *testing.T) {
	var calls int32
	srv := httptest.NewServer(http.HandlerFunc(func(_ http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		<-r.Context().Done()
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := DoJSONRetry(ctx, srv.Client(), fastRetry(5), http.MethodGet, srv.URL, nil, nil, shapeErr)
	if err == nil {
		t.Fatal("cancelled exchange succeeded")
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("cancelled exchange issued %d attempts, want 1", got)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled exchange took %s", d)
	}
}

// TestZeroPolicySingleAttempt: the zero-value policy performs exactly one
// attempt, so embedding it is never a behaviour change.
func TestZeroPolicySingleAttempt(t *testing.T) {
	srv, calls := flakyServer(t, http.StatusServiceUnavailable, 99)
	err := DoJSONRetry(context.Background(), srv.Client(), RetryPolicy{},
		http.MethodGet, srv.URL, nil, nil, shapeErr)
	if err == nil {
		t.Fatal("zero-policy call succeeded against a dead server")
	}
	if got := atomic.LoadInt32(calls); got != 1 {
		t.Fatalf("zero policy issued %d attempts, want 1", got)
	}
}
