// Shared *http.Client construction. Every QRIO component builds its HTTP
// client here (make lint enforces it), so three production requirements
// hold everywhere at once: an explicit overall timeout (no client can
// hang forever on an unresponsive peer), bounded transport connection
// state, and the httpx.roundtrip fault point threaded under every
// request for outage rehearsal.
package httpx

import (
	"net/http"
	"time"

	"qrio/internal/faults"
)

// DefaultClientTimeout is the blanket round-trip backstop for regular
// API calls; use per-request contexts for tighter deadlines.
const DefaultClientTimeout = 120 * time.Second

// newTransport builds the bounded transport both constructors share.
func newTransport() *http.Transport {
	return &http.Transport{
		MaxIdleConns:          100,
		MaxIdleConnsPerHost:   16,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
}

// NewClient builds the standard QRIO API client: explicit overall
// timeout (0 or negative selects DefaultClientTimeout), bounded
// transport, fault point on every round trip. reg nil means the
// process-wide faults.Default registry.
func NewClient(timeout time.Duration, reg *faults.Registry) *http.Client {
	if timeout <= 0 {
		timeout = DefaultClientTimeout
	}
	return &http.Client{
		Timeout:   timeout,
		Transport: faults.RoundTripper(reg, faults.PointHTTPRoundTrip, newTransport()),
	}
}

// NewStreamClient builds the client for long-lived streams (the SSE
// watch): no overall timeout — a healthy stream is expected to outlive
// any fixed deadline — but the response HEADER must arrive promptly, so
// a dead server still fails fast; lifetime is bounded by the request
// context.
func NewStreamClient(reg *faults.Registry) *http.Client {
	tr := newTransport()
	tr.ResponseHeaderTimeout = 30 * time.Second
	return &http.Client{
		Transport: faults.RoundTripper(reg, faults.PointHTTPRoundTrip, tr),
	}
}
