// Retry policy for QRIO's HTTP clients: per-attempt deadlines and
// exponential backoff with full jitter, applied only where a retry is
// safe (idempotent methods, or an explicit opt-in) and only to failures
// that plausibly clear (transport errors, 429 and 5xx gateway/overload
// statuses). Delays honour the server's Retry-After when one was sent —
// a throttling server knows its own refill schedule better than our
// backoff curve does.
package httpx

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// RetryPolicy configures DoJSONRetry. The zero value performs a single
// attempt (no retries) so embedding a policy is never a behaviour change
// until fields are set.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (<=1 means one attempt, no retry).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms): attempt n
	// waits a uniform draw from [0, min(MaxDelay, BaseDelay·2ⁿ)] — "full
	// jitter", which decorrelates retry storms across clients.
	BaseDelay time.Duration
	// MaxDelay caps the backoff window (default 2s).
	MaxDelay time.Duration
	// PerAttemptTimeout bounds each individual attempt, so one hung
	// request cannot consume the caller's whole context budget
	// (0 = no per-attempt bound beyond the caller's context).
	PerAttemptTimeout time.Duration
	// RetryNonIdempotent extends retries to POST/PATCH. Safe only when
	// the server deduplicates (QRIO job submission does: names are
	// unique, so a replayed submit returns conflict rather than a
	// duplicate job).
	RetryNonIdempotent bool
}

// DefaultRetry is the policy QRIO's own clients adopt: three attempts,
// 50ms..2s full-jitter backoff, 30s per attempt.
var DefaultRetry = RetryPolicy{
	MaxAttempts:       3,
	BaseDelay:         50 * time.Millisecond,
	MaxDelay:          2 * time.Second,
	PerAttemptTimeout: 30 * time.Second,
}

// jitterRNG drives backoff draws. Seeded (repo determinism rule) and
// process-shared: interleaving across goroutines is itself a jitter
// source, and tests that need exact sequences call RetryPolicy.Delay
// with their own *rand.Rand.
var (
	jitterMu  sync.Mutex
	jitterRNG = rand.New(rand.NewSource(0x9e3779b9))
)

// idempotentMethod reports whether a method is safe to replay blindly.
func idempotentMethod(m string) bool {
	switch m {
	case http.MethodGet, http.MethodHead, http.MethodOptions,
		http.MethodPut, http.MethodDelete:
		return true
	}
	return false
}

// retryableStatus reports whether an HTTP status is worth retrying:
// throttling and transient upstream/overload failures. Other 4xx/5xx
// (invalid, not_found, conflict, internal, ...) are deterministic —
// replaying them wastes the budget.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Delay computes the wait before retry attempt n (0-based: the wait
// after the first failure is Delay(0)). A positive server Retry-After
// wins outright; otherwise a full-jitter draw from rng (nil uses the
// package's seeded generator).
func (p RetryPolicy) Delay(attempt int, retryAfter time.Duration, rng *rand.Rand) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	window := base
	for i := 0; i < attempt && window < maxd; i++ {
		window *= 2
	}
	if window > maxd {
		window = maxd
	}
	if rng != nil {
		return time.Duration(rng.Int63n(int64(window) + 1))
	}
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return time.Duration(jitterRNG.Int63n(int64(window) + 1))
}

// DoJSONRetry is DoJSON under a retry policy: attempts are spaced by
// full-jitter backoff (or the server's Retry-After), each bounded by
// PerAttemptTimeout, and only retry-safe failures on retry-safe methods
// are replayed. The caller's ctx bounds the whole exchange — its
// cancellation is never retried, and the last attempt's error is
// returned as-is (already shaped by onError).
func DoJSONRetry(ctx context.Context, hc *http.Client, policy RetryPolicy,
	method, url string, in, out any, onError ErrorFunc) error {
	attempts := policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	canRetry := idempotentMethod(method) || policy.RetryNonIdempotent
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		attemptCtx, cancel := ctx, context.CancelFunc(nil)
		if policy.PerAttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, policy.PerAttemptTimeout)
		}
		status, retryAfter, err := doJSONOnce(attemptCtx, hc, method, url, in, out, onError)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if !canRetry || attempt == attempts-1 {
			return lastErr
		}
		if ctx.Err() != nil {
			// The caller's context ended; a per-attempt timeout (caller
			// context still live) is retryable, caller cancellation is not.
			return lastErr
		}
		if status == 0 {
			// Transport-level failure. Retry unless it was a context error
			// bubbling through the transport.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				if attemptCtx == ctx {
					return lastErr
				}
				// else: the per-attempt deadline fired — retryable.
			}
		} else if !retryableStatus(status) {
			return lastErr
		}
		delay := policy.Delay(attempt, retryAfter, nil)
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return lastErr
		case <-t.C:
		}
	}
	return lastErr
}
