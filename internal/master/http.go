package master

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/httpx"
)

// Handler exposes the Master Server over REST:
//
//	POST /v1/submit            — full job request (SubmitRequest JSON)
//	GET  /v1/jobs/{name}/logs  — proxy to the job's execution result
//
// Errors use the shared /v1 envelope (httpx): duplicate names map to 409
// conflict, malformed requests to 400 invalid.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpx.MethodNotAllowed(w, r)
			return
		}
		var req SubmitRequest
		if err := httpx.DecodeJSON(r, &req); err != nil {
			httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid, err)
			return
		}
		job, err := s.Submit(req)
		if err != nil {
			httpx.WriteErr(w, err, http.StatusUnprocessableEntity, httpx.CodeInvalid)
			return
		}
		httpx.WriteJSON(w, http.StatusCreated, job)
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		name, ok := strings.CutSuffix(rest, "/logs")
		if !ok || name == "" || r.Method != http.MethodGet {
			httpx.WriteError(w, http.StatusNotFound, httpx.CodeNotFound,
				fmt.Errorf("unknown path %q", r.URL.Path))
			return
		}
		res, err := s.Logs(name)
		if err != nil {
			httpx.WriteError(w, http.StatusNotFound, httpx.CodeNotFound, err)
			return
		}
		httpx.WriteJSON(w, http.StatusOK, res)
	})
	return mux
}

// Client submits jobs to a remote Master Server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Retry paces idempotent calls through transient failures
	// (httpx.DefaultRetry via NewClient; zero value = single attempt).
	// Submission is POST and never auto-retried here.
	Retry httpx.RetryPolicy
}

// NewClient builds a master client. The blanket client timeout is a
// backstop; pass a context to individual calls to deadline or cancel them.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP:  httpx.NewClient(0, nil),
		Retry: httpx.DefaultRetry}
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return httpx.DoJSONRetry(ctx, c.HTTP, c.Retry, method, c.BaseURL+path, in, out,
		func(status int, _, msg string, _ time.Duration) error {
			if msg == "" {
				return fmt.Errorf("master: %s %s: HTTP %d", method, path, status)
			}
			return fmt.Errorf("master: %s", msg)
		})
}

// Submit sends a full job request.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (api.QuantumJob, error) {
	var job api.QuantumJob
	err := c.do(ctx, http.MethodPost, "/v1/submit", req, &job)
	return job, err
}

// Logs fetches a job's execution log.
func (c *Client) Logs(ctx context.Context, jobName string) (api.Result, error) {
	var res api.Result
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobName+"/logs", nil, &res)
	return res, err
}
