package master

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"qrio/internal/cluster/api"
)

// Handler exposes the Master Server over REST:
//
//	POST /v1/submit            — full job request (SubmitRequest JSON)
//	GET  /v1/jobs/{name}/logs  — proxy to the job's execution result
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method))
			return
		}
		var req SubmitRequest
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		job, err := s.Submit(req)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusCreated, job)
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		name, ok := strings.CutSuffix(rest, "/logs")
		if !ok || name == "" || r.Method != http.MethodGet {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown path %q", r.URL.Path))
			return
		}
		res, err := s.Logs(name)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	return mux
}

func decodeJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Client submits jobs to a remote Master Server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient builds a master client.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP: &http.Client{Timeout: 120 * time.Second}}
}

// Submit sends a full job request.
func (c *Client) Submit(req SubmitRequest) (api.QuantumJob, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return api.QuantumJob{}, err
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/v1/submit", "application/json", bytes.NewReader(raw))
	if err != nil {
		return api.QuantumJob{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return api.QuantumJob{}, err
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return api.QuantumJob{}, fmt.Errorf("master: %s", e.Error)
		}
		return api.QuantumJob{}, fmt.Errorf("master: HTTP %d", resp.StatusCode)
	}
	var job api.QuantumJob
	err = json.Unmarshal(body, &job)
	return job, err
}

// Logs fetches a job's execution log.
func (c *Client) Logs(jobName string) (api.Result, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/jobs/" + jobName + "/logs")
	if err != nil {
		return api.Result{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return api.Result{}, err
	}
	if resp.StatusCode >= 300 {
		return api.Result{}, fmt.Errorf("master: logs for %s: HTTP %d", jobName, resp.StatusCode)
	}
	var res api.Result
	err = json.Unmarshal(body, &res)
	return res, err
}
