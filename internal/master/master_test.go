package master_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/master"
	"qrio/internal/registry"
)

const bellQASM = `OPENQASM 2.0;
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q -> c;
`

func newMaster() (*master.Server, *state.Cluster, *registry.Registry) {
	st := state.New()
	reg := registry.New()
	return master.NewServer(st, reg), st, reg
}

func fidelityReq(name string) master.SubmitRequest {
	return master.SubmitRequest{
		JobName:        name,
		QASM:           bellQASM,
		Strategy:       api.StrategyFidelity,
		TargetFidelity: 0.9,
	}
}

func TestSubmitContainerizesAndStoresJob(t *testing.T) {
	m, st, reg := newMaster()
	job, err := m.Submit(fidelityReq("bell"))
	if err != nil {
		t.Fatal(err)
	}
	if job.Status.Phase != api.JobPending {
		t.Fatalf("phase = %s", job.Status.Phase)
	}
	if !strings.Contains(job.Spec.Image, "@sha256:") {
		t.Fatalf("image not digest-pinned: %s", job.Spec.Image)
	}
	// MinQubits raised to the circuit's register size.
	if job.Spec.Requirements.MinQubits != 2 {
		t.Fatalf("MinQubits = %d, want 2", job.Spec.Requirements.MinQubits)
	}
	// Image bundle has the §3.3 directory contents.
	digest := job.Spec.Image[strings.LastIndex(job.Spec.Image, "@")+1:]
	img, err := reg.Pull(digest)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"circuit.qasm", "runner.json", "requirements.txt", "Dockerfile"} {
		if _, ok := img.Files[f]; !ok {
			t.Errorf("image missing %s", f)
		}
	}
	if string(img.Files["circuit.qasm"]) != bellQASM {
		t.Error("circuit content altered")
	}
	if !strings.Contains(string(img.Files["requirements.txt"]), "qiskit") {
		t.Error("requirements.txt missing qiskit packages")
	}
	var manifest master.RunnerManifest
	if err := json.Unmarshal(img.Files["runner.json"], &manifest); err != nil {
		t.Fatalf("runner.json corrupt: %v", err)
	}
	if manifest.JobName != "bell" || manifest.Shots != 1024 || !manifest.Transpile {
		t.Fatalf("manifest = %+v", manifest)
	}
	// Job visible in cluster state.
	if _, _, err := st.Jobs.Get("bell"); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitValidation(t *testing.T) {
	m, _, _ := newMaster()
	cases := []master.SubmitRequest{
		{},
		{JobName: "x"},
		{JobName: "bad name", QASM: bellQASM, Strategy: api.StrategyFidelity, TargetFidelity: 1},
		{JobName: "x", QASM: "garbage", Strategy: api.StrategyFidelity, TargetFidelity: 1},
		{JobName: "x", QASM: bellQASM, Strategy: "magic"},
		{JobName: "x", QASM: bellQASM, Strategy: api.StrategyTopology, TopologyQASM: "bad"},
		{JobName: "x", QASM: bellQASM, Strategy: api.StrategyFidelity, TargetFidelity: 0},
	}
	for i, req := range cases {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("case %d accepted: %+v", i, req)
		}
	}
}

func TestSubmitDuplicateJobName(t *testing.T) {
	m, _, _ := newMaster()
	if _, err := m.Submit(fidelityReq("dup")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(fidelityReq("dup")); err == nil {
		t.Fatal("duplicate job accepted")
	}
}

func TestLogsOnlyAfterExecution(t *testing.T) {
	m, st, _ := newMaster()
	m.Submit(fidelityReq("j"))
	if _, err := m.Logs("j"); err == nil {
		t.Fatal("logs available before execution")
	}
	st.Results.Create(api.Result{
		ObjectMeta: api.ObjectMeta{Name: "j"},
		JobName:    "j", Node: "n", LogLines: []string{"done"},
	})
	res, err := m.Logs("j")
	if err != nil || len(res.LogLines) != 1 {
		t.Fatalf("logs = %v, %v", res, err)
	}
}

func TestHTTPSubmitAndLogs(t *testing.T) {
	m, st, _ := newMaster()
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	c := master.NewClient(srv.URL)
	job, err := c.Submit(t.Context(), fidelityReq("http-bell"))
	if err != nil {
		t.Fatal(err)
	}
	if job.Name != "http-bell" || job.Status.Phase != api.JobPending {
		t.Fatalf("job = %+v", job)
	}
	if _, err := c.Submit(t.Context(), master.SubmitRequest{}); err == nil {
		t.Fatal("bad request accepted over HTTP")
	}
	if _, err := c.Logs(t.Context(), "http-bell"); err == nil {
		t.Fatal("premature logs over HTTP")
	}
	st.Results.Create(api.Result{
		ObjectMeta: api.ObjectMeta{Name: "http-bell"},
		JobName:    "http-bell", LogLines: []string{"x"},
	})
	res, err := c.Logs(t.Context(), "http-bell")
	if err != nil || len(res.LogLines) != 1 {
		t.Fatalf("logs = %v, %v", res, err)
	}
}
