// Package master implements the QRIO Master Server (§3.3): it takes a
// complete job request from the Visualizer, "containerises" it — bundling
// the user's QASM circuit, a generated runner manifest, the requirements
// file and a Dockerfile into an image pushed to the registry — builds the
// job specification, and submits it to the cluster API for scheduling.
package master

import (
	"encoding/json"
	"fmt"
	"strings"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/cluster/store"
	"qrio/internal/quantum/qasm"
	"qrio/internal/registry"
)

// SubmitRequest is the complete job description the Visualizer collects in
// its three-step form (Fig. 4).
type SubmitRequest struct {
	// Tenant names the submitting principal for quota accounting and
	// weighted fair scheduling; empty means the default tenant. The
	// gateway's admission layer charges quotas against it.
	Tenant string `json:"tenant,omitempty"`

	// Step 1 (Fig. 4a): job identity and classical resources.
	JobName   string `json:"jobName"`
	ImageName string `json:"imageName,omitempty"`
	QASM      string `json:"qasm"`
	Shots     int    `json:"shots,omitempty"`
	CPUMillis int64  `json:"cpuMillis,omitempty"`
	MemoryMB  int64  `json:"memoryMB,omitempty"`

	// Step 2 (Fig. 4b): preferred device characteristics.
	Requirements api.DeviceRequirements `json:"requirements,omitempty"`

	// Step 3 (Fig. 4c-f): device-selection strategy.
	Strategy       api.Strategy `json:"strategy"`
	TargetFidelity float64      `json:"targetFidelity,omitempty"`
	TopologyQASM   string       `json:"topologyQASM,omitempty"`
}

// Validate performs intake checks before any expensive work.
func (r SubmitRequest) Validate() error {
	if r.JobName == "" {
		return fmt.Errorf("master: job needs a name")
	}
	if strings.ContainsAny(r.JobName, " /?&#") {
		return fmt.Errorf("master: job name %q contains reserved characters", r.JobName)
	}
	if r.QASM == "" {
		return fmt.Errorf("master: job %s has no circuit", r.JobName)
	}
	if r.Tenant != "" && !api.ValidTenantName(r.Tenant) {
		return fmt.Errorf("master: job %s tenant %q is not a valid tenant name (lowercase alphanumerics and dashes)",
			r.JobName, r.Tenant)
	}
	switch r.Strategy {
	case api.StrategyFidelity, api.StrategyTopology:
	default:
		return fmt.Errorf("master: job %s has unknown strategy %q", r.JobName, r.Strategy)
	}
	return nil
}

// RunnerManifest is the generated "python script" analogue: the
// instructions the node agent follows to execute the bundled circuit
// against its local backend file (§3.3).
type RunnerManifest struct {
	JobName     string `json:"jobName"`
	CircuitFile string `json:"circuitFile"`
	BackendFile string `json:"backendFile"` // read from the node, per §3.1
	Shots       int    `json:"shots"`
	// Transpile documents that the runner must fit the circuit to the
	// node's coupling map and basis before execution.
	Transpile bool `json:"transpile"`
}

// requirementsTxt mirrors the package list the paper installs into each
// container (§3.3) — kept verbatim for fidelity to the paper even though
// this reproduction executes with its own simulators.
const requirementsTxt = `qiskit
qiskit-aer
matplotlib
qiskit_ibmq_provider
qiskit_ibm_runtime
`

// Server is the Master Server core; Handler (http.go) exposes it over REST.
type Server struct {
	State    *state.Cluster
	Registry *registry.Registry
}

// NewServer builds a master server.
func NewServer(st *state.Cluster, reg *registry.Registry) *Server {
	return &Server{State: st, Registry: reg}
}

// Submit performs the full §3.3 intake: parse, containerise, push, build
// the job spec, and hand it to the cluster API. It returns the stored job.
func (s *Server) Submit(req SubmitRequest) (api.QuantumJob, error) {
	if err := req.Validate(); err != nil {
		return api.QuantumJob{}, err
	}
	// Reject duplicate names before containerising: under concurrent
	// multi-user submission the name collision would otherwise only
	// surface after an image was built and pushed for nothing. The job
	// store's create remains the authoritative check for exact races.
	// Wrapping store.ErrExists lets the HTTP layer map this to 409.
	if _, _, err := s.State.Jobs.Get(req.JobName); err == nil {
		return api.QuantumJob{}, fmt.Errorf("master: %w", store.ErrExists{Name: req.JobName})
	}
	circ, err := qasm.Parse(req.QASM)
	if err != nil {
		return api.QuantumJob{}, fmt.Errorf("master: job %s circuit rejected: %w", req.JobName, err)
	}
	if req.Strategy == api.StrategyTopology {
		if _, err := qasm.Parse(req.TopologyQASM); err != nil {
			return api.QuantumJob{}, fmt.Errorf("master: job %s topology rejected: %w", req.JobName, err)
		}
	}
	shots := req.Shots
	if shots <= 0 {
		shots = api.DefaultShots
	}

	digest, imageName, err := s.containerize(req, shots)
	if err != nil {
		return api.QuantumJob{}, err
	}

	// The job's qubit demand is at least the circuit's register size.
	reqs := req.Requirements
	if reqs.MinQubits < circ.NumQubits {
		reqs.MinQubits = circ.NumQubits
	}

	job := api.QuantumJob{
		ObjectMeta: api.ObjectMeta{Name: req.JobName},
		Spec: api.JobSpec{
			Tenant: req.Tenant,
			Image:  imageName + "@" + digest,
			QASM:   req.QASM,
			Shots:  shots,
			Resources: api.ResourceRequirements{
				CPUMillis: req.CPUMillis,
				MemoryMB:  req.MemoryMB,
			},
			Requirements:   reqs,
			Strategy:       req.Strategy,
			TargetFidelity: req.TargetFidelity,
			TopologyQASM:   req.TopologyQASM,
		},
	}
	if err := s.State.SubmitJob(job); err != nil {
		return api.QuantumJob{}, err
	}
	stored, _, err := s.State.Jobs.Get(req.JobName)
	if err != nil {
		return api.QuantumJob{}, err
	}
	s.State.RecordEvent("Job", req.JobName, "Containerized",
		fmt.Sprintf("image %s pushed (%s)", imageName, digest[:19]))
	return stored, nil
}

// containerize builds and pushes the job image (§3.3's directory:
// circuit QASM + generated runner + requirements.txt + Dockerfile).
func (s *Server) containerize(req SubmitRequest, shots int) (digest, imageName string, err error) {
	imageName = req.ImageName
	if imageName == "" {
		imageName = "qrio/" + strings.ToLower(req.JobName) + ":latest"
	}
	manifest := RunnerManifest{
		JobName:     req.JobName,
		CircuitFile: "circuit.qasm",
		BackendFile: "backend.json",
		Shots:       shots,
		Transpile:   true,
	}
	rawManifest, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return "", "", err
	}
	dockerfile := fmt.Sprintf(`FROM qrio/runner-base:latest
COPY circuit.qasm /job/circuit.qasm
COPY runner.json /job/runner.json
COPY requirements.txt /job/requirements.txt
RUN pip install -r /job/requirements.txt
CMD ["qrio-run", "/job/runner.json"]
# job: %s
`, req.JobName)
	digest, err = s.Registry.Push(registry.Image{
		Name: imageName,
		Files: map[string][]byte{
			"circuit.qasm":     []byte(req.QASM),
			"runner.json":      rawManifest,
			"requirements.txt": []byte(requirementsTxt),
			"Dockerfile":       []byte(dockerfile),
		},
	})
	if err != nil {
		return "", "", fmt.Errorf("master: pushing image for %s: %w", req.JobName, err)
	}
	return digest, imageName, nil
}

// Logs returns the execution log for a job once it has finished (§3.2:
// "logs are only available once the job has finished execution").
func (s *Server) Logs(jobName string) (api.Result, error) {
	res, ok := s.State.ResultFor(jobName)
	if !ok {
		return api.Result{}, fmt.Errorf("master: no logs for job %q yet", jobName)
	}
	return res, nil
}
