// Gateway observability: the /v1/metrics exposition endpoint plus the
// request-level instrumentation (per-route counts and latency, in-flight
// gauge, shed counters). All of it is nil-guarded on the deployment's
// registry — a gateway over an uninstrumented core serves 404 from
// /v1/metrics and pays nothing per request.
package gateway

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"qrio/internal/httpx"
	"qrio/internal/obs"
)

// gwMetrics holds the gateway's registered families.
type gwMetrics struct {
	requests *obs.CounterVec   // route, code
	duration *obs.HistogramVec // route
	sheds    *obs.CounterVec   // reason
}

func newGWMetrics(r *obs.Registry, s *Server) *gwMetrics {
	m := &gwMetrics{
		requests: r.Counter("qrio_gateway_requests_total",
			"Requests served, by route pattern and status code.", "route", "code"),
		duration: r.Histogram("qrio_gateway_request_duration_seconds",
			"Request latency by route pattern.", nil, "route"),
		sheds: r.Counter("qrio_gateway_sheds_total",
			"Requests shed before real work: rate_limited, overloaded, draining.", "reason"),
	}
	r.GaugeFunc("qrio_gateway_inflight_requests",
		"Requests currently in flight across the /v1 surface.",
		func() float64 { return float64(s.inflight.Load()) })
	return m
}

// countShed records one shed request; reasons match the 429/503 codes.
func (s *Server) countShed(reason string) {
	if m := s.metrics; m != nil {
		m.sheds.With(reason).Inc()
	}
}

// instrument wraps the route mux with per-request accounting. The route
// label is the registered ServeMux pattern, never the raw path — label
// cardinality stays bounded by the route table.
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	m := s.metrics
	if m == nil {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, route := mux.Handler(r)
		if route == "" {
			route = "unmatched"
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		mux.ServeHTTP(rec, r)
		m.requests.With(route, strconv.Itoa(rec.status)).Inc()
		m.duration.With(route).Observe(time.Since(start).Seconds())
	})
}

// statusRecorder captures the response status for the request counter.
// It forwards Flush so the SSE watch handler still sees a Flusher.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleMetrics serves the deployment registry in Prometheus text
// exposition format. Without a registry the endpoint is absent by
// contract: 404 with the standard envelope.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.Core.Metrics
	if reg == nil {
		httpx.WriteError(w, http.StatusNotFound, httpx.CodeNotFound,
			fmt.Errorf("gateway: metrics are not enabled on this deployment"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WriteText(w)
}
