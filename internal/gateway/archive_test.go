// Gateway tests for the terminal-job archive tier: by-name fallthrough,
// the archived=true list merge, and pagination that walks the hot/archive
// boundary — including under concurrent retention sweeps.
package gateway_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"qrio/client"
	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/core"
	"qrio/internal/httpx"
)

// seedTerminal creates count terminal jobs named prefix-%04d directly in
// the hot store, finished in name order.
func seedTerminal(t *testing.T, q *core.QRIO, prefix string, count int) {
	t.Helper()
	base := time.Now().Add(-time.Hour)
	for i := 0; i < count; i++ {
		fin := base.Add(time.Duration(i) * time.Second)
		j := api.QuantumJob{
			ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("%s-%04d", prefix, i), CreatedAt: fin.Add(-time.Second)},
			Spec: api.JobSpec{QASM: "OPENQASM 2.0;\nqreg q[1];\nh q[0];",
				Strategy: api.StrategyFidelity, TargetFidelity: 1},
			Status: api.JobStatus{Phase: api.JobSucceeded, FinishedAt: &fin},
		}
		if _, err := q.State.Jobs.Create(j); err != nil {
			t.Fatal(err)
		}
	}
}

// TestArchivedJobFallthrough: GET by name, logs-style events, and the
// archived filter after a sweep.
func TestArchivedJobFallthrough(t *testing.T) {
	c, q := deployIdle(t, nil)
	ctx := context.Background()
	seedTerminal(t, q, "hist", 6)
	q.State.RecordEvent("Job", "hist-0000", "Succeeded", "finished")
	// Keep the 2 newest resident; archive the 4 oldest.
	if n := q.State.ArchiveTerminal(time.Now(), state.RetentionPolicy{MaxTerminalCount: 2}); n != 4 {
		t.Fatalf("archived %d, want 4", n)
	}

	// By-name Get falls through to the archive.
	j, err := c.Get(ctx, "hist-0000")
	if err != nil {
		t.Fatalf("get archived job: %v", err)
	}
	if j.Status.Phase != api.JobSucceeded {
		t.Fatalf("archived job phase %s", j.Status.Phase)
	}
	// Its event trail survived archival.
	events, err := c.Events(ctx, "hist-0000")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Reason != "Succeeded" {
		t.Fatalf("archived events = %+v", events)
	}
	// Unknown names still 404.
	if _, err := c.Get(ctx, "hist-9999"); !client.IsNotFound(err) {
		t.Fatalf("unknown name err = %v", err)
	}

	// Default list shows only the resident tail; archived=true shows all.
	hot, err := c.List(ctx, client.ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hot.Items) != 2 {
		t.Fatalf("hot list = %d items, want 2", len(hot.Items))
	}
	all, err := c.List(ctx, client.ListOptions{Archived: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Items) != 6 {
		t.Fatalf("archived list = %d items, want 6", len(all.Items))
	}
	for i, item := range all.Items {
		if want := fmt.Sprintf("hist-%04d", i); item.Name != want {
			t.Fatalf("item %d = %s, want %s (name order across tiers)", i, item.Name, want)
		}
	}
	// Field filters apply to archived entries too.
	succeeded, err := c.List(ctx, client.ListOptions{Archived: true, Phase: api.JobSucceeded})
	if err != nil {
		t.Fatal(err)
	}
	if len(succeeded.Items) != 6 {
		t.Fatalf("phase-filtered archived list = %d", len(succeeded.Items))
	}
}

// TestPaginationAcrossArchiveBoundary walks pages over a keyspace split
// between tiers and checks the token crosses the boundary without dupes
// or gaps — then repeats while sweeps concurrently move jobs between the
// tiers mid-walk.
func TestPaginationAcrossArchiveBoundary(t *testing.T) {
	c, q := deployIdle(t, nil)
	ctx := context.Background()
	const total = 60
	seedTerminal(t, q, "page", total)
	// Static split: 40 archived, 20 hot.
	q.State.ArchiveTerminal(time.Now(), state.RetentionPolicy{MaxTerminalCount: 20})

	walk := func() map[string]int {
		seen := map[string]int{}
		opts := client.ListOptions{Archived: true, Limit: 7}
		for {
			page, err := c.List(ctx, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, item := range page.Items {
				seen[item.Name]++
			}
			if page.Continue == "" {
				return seen
			}
			opts.Continue = page.Continue
		}
	}
	seen := walk()
	if len(seen) != total {
		t.Fatalf("walk saw %d names, want %d", len(seen), total)
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("%s seen %d times", name, n)
		}
	}

	// Now walk while sweeps concurrently shrink the resident tail from 20
	// down to 2 — jobs migrate between tiers mid-walk and must still be
	// seen exactly once each.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		keep := 20
		for {
			select {
			case <-stop:
				return
			default:
			}
			if keep > 2 {
				keep -= 2
			}
			q.State.ArchiveTerminal(time.Now(), state.RetentionPolicy{MaxTerminalCount: keep})
			time.Sleep(time.Millisecond)
		}
	}()
	for round := 0; round < 5; round++ {
		seen := walk()
		if len(seen) != total {
			t.Fatalf("churn walk %d saw %d names, want %d", round, len(seen), total)
		}
		for name, n := range seen {
			if n != 1 {
				t.Fatalf("churn walk %d: %s seen %d times", round, name, n)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestListBadArchivedParam pins the 400 invalid envelope for a malformed
// archived flag.
func TestListBadArchivedParam(t *testing.T) {
	c, _ := deployIdle(t, nil)
	resp, err := http.Get(c.BaseURL + "/v1/jobs?archived=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	code, _, ok := httpx.DecodeErrorBody(raw)
	if !ok || code != httpx.CodeInvalid {
		t.Fatalf("envelope = %s", raw)
	}
}
