// The /v1/admin ops surface: operator-facing durability introspection and
// control. These routes expose the state of the write-ahead log and
// snapshot machinery (see internal/cluster/durability) — WAL lag since the
// last snapshot, replay statistics from the most recent boot, and any
// latched WAL/spill errors — plus a knob to force a compaction snapshot
// before a planned restart. On an in-memory deployment (no -data-dir) the
// status endpoint reports enabled=false and the snapshot endpoint answers
// with the typed 422 "invalid" envelope.
package gateway

import (
	"fmt"
	"net/http"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/durability"
	"qrio/internal/httpx"
)

// SnapshotResponse is the body of POST /v1/admin/snapshot: the WAL
// generation the snapshot compacted up to.
type SnapshotResponse struct {
	Generation int64 `json:"generation"`
}

// SetTenantRequest is the body of PUT /v1/tenants/{name}: the tenant's
// new fair-share weight, quota and submission rate limit, applied
// atomically as one override that fully replaces the static flag
// configuration for that tenant. Weight 0 means the default weight (1);
// zero quota and rate-limit fields mean unlimited.
type SetTenantRequest struct {
	Weight    int                 `json:"weight,omitempty"`
	Quota     api.TenantQuota     `json:"quota,omitempty"`
	RateLimit api.TenantRateLimit `json:"rateLimit,omitempty"`
}

func (s *Server) handleAdminDurability(w http.ResponseWriter, r *http.Request) {
	if s.Core.Durability == nil {
		httpx.WriteJSON(w, http.StatusOK, durability.Stats{Enabled: false})
		return
	}
	httpx.WriteJSON(w, http.StatusOK, s.Core.Durability.Stats())
}

func (s *Server) handleAdminSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.Core.Durability == nil {
		httpx.WriteError(w, http.StatusUnprocessableEntity, httpx.CodeInvalid,
			fmt.Errorf("gateway: durability is not enabled on this deployment (start with -data-dir)"))
		return
	}
	gen, err := s.Core.Durability.Snapshot()
	if err != nil {
		httpx.WriteError(w, http.StatusInternalServerError, httpx.CodeInternal, err)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, SnapshotResponse{Generation: gen})
}

func (s *Server) handleSetTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req SetTenantRequest
	if err := httpx.DecodeJSON(r, &req); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid, err)
		return
	}
	cfg, err := s.Core.State.SetTenantConfig(api.TenantConfig{
		ObjectMeta: api.ObjectMeta{Name: name},
		Weight:     req.Weight,
		Quota:      req.Quota,
		RateLimit:  req.RateLimit,
	})
	if err != nil {
		// InvalidTenantConfigError carries 422/"invalid" through the
		// envelope's StatusCoder path.
		httpx.WriteErr(w, err, http.StatusUnprocessableEntity, httpx.CodeInvalid)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, cfg)
}
