package gateway

import (
	"fmt"
	"testing"

	"qrio/internal/cluster/api"
)

// BenchmarkRateLimit measures the flow-control hot path — it sits ahead
// of admission on every submission, so it must stay cheap exactly when
// the gateway is being flooded. Guarded by the CI bench-compare job.
func BenchmarkRateLimit(b *testing.B) {
	// The common production case: no limit configured — one map delete
	// under the mutex, no bucket state.
	b.Run("unlimited", func(b *testing.B) {
		l := rateLimiter{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := l.allow("tenant", api.TenantRateLimit{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// A limited tenant admitting under its rate: refill arithmetic plus
	// one bucket lookup per call.
	b.Run("limited-admit", func(b *testing.B) {
		l := rateLimiter{}
		limit := api.TenantRateLimit{SubmitPerSecond: 1e12, Burst: 1 << 30}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := l.allow("tenant", limit); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The flood case: an exhausted bucket rejecting — the 429 path must
	// not be more expensive than the admit path, or shedding load would
	// itself be load.
	b.Run("limited-reject", func(b *testing.B) {
		l := rateLimiter{}
		limit := api.TenantRateLimit{SubmitPerSecond: 1e-9, Burst: 1}
		l.allow("tenant", limit) // drain the single token
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := l.allow("tenant", limit); err == nil {
				b.Fatal("exhausted bucket admitted")
			}
		}
	})
	// Many tenants: the per-tenant map stays O(1) per call at fleet scale.
	b.Run("many-tenants", func(b *testing.B) {
		l := rateLimiter{}
		limit := api.TenantRateLimit{SubmitPerSecond: 1e12, Burst: 1 << 30}
		tenants := make([]string, 512)
		for i := range tenants {
			tenants[i] = fmt.Sprintf("tenant-%03d", i)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := l.allow(tenants[i%len(tenants)], limit); err != nil {
				b.Fatal(err)
			}
		}
	})
}
