// Gateway flow control: the overload layer ahead of tenant admission.
// Rate limiting bounds each tenant's submission *arrival rate* with a
// token bucket (429 rate_limited + Retry-After), complementing quotas,
// which bound admitted-but-unfinished *work*. A global max-in-flight cap
// sheds excess concurrent requests across the whole /v1 surface (503
// overloaded), and a draining daemon answers submission intake with 503
// draining so load balancers rotate traffic away during shutdown.
//
// Limits resolve through state.RateLimitFor — a live TenantConfig
// override (PUT /v1/tenants/{name}) wins over the static -rate-limit
// policy — so operators can throttle a flooding tenant without a
// restart. The limiter's fast path for unlimited tenants is one map
// read under a mutex; buckets exist only for limited tenants.
package gateway

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"qrio/internal/clock"
	"qrio/internal/cluster/api"
	"qrio/internal/httpx"
)

// RateLimitedError rejects a submission that exceeds its tenant's
// token-bucket arrival rate: HTTP 429 with the rate_limited code and a
// Retry-After hint of when the bucket next refills a full token.
type RateLimitedError struct {
	Tenant string
	Wait   time.Duration
}

func (e *RateLimitedError) Error() string {
	return fmt.Sprintf("gateway: tenant %s over submission rate limit (retry in %s)",
		e.Tenant, e.Wait.Round(time.Millisecond))
}

// HTTPStatus implements httpx.StatusCoder.
func (e *RateLimitedError) HTTPStatus() (int, string) { return 429, httpx.CodeRateLimited }

// RetryAfter implements httpx.RetryAfterer.
func (e *RateLimitedError) RetryAfter() time.Duration { return e.Wait }

// OverloadedError sheds a request over the gateway's global in-flight
// cap: HTTP 503 with the overloaded code. Shedding is instantaneous
// backpressure — the client should back off and retry.
type OverloadedError struct{ InFlight, Max int }

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("gateway: %d requests in flight at cap %d", e.InFlight, e.Max)
}

// HTTPStatus implements httpx.StatusCoder.
func (e *OverloadedError) HTTPStatus() (int, string) { return 503, httpx.CodeOverloaded }

// RetryAfter implements httpx.RetryAfterer.
func (e *OverloadedError) RetryAfter() time.Duration { return time.Second }

// DrainingError rejects submission intake on a daemon that received
// SIGTERM and is finishing its in-flight work: HTTP 503 with the
// draining code. Reads and watches keep working through the drain.
type DrainingError struct{}

func (e *DrainingError) Error() string {
	return "gateway: daemon is draining — submissions are not accepted"
}

// HTTPStatus implements httpx.StatusCoder.
func (e *DrainingError) HTTPStatus() (int, string) { return 503, httpx.CodeDraining }

// maxIdleBuckets bounds the limiter map: past this, buckets that have
// fully refilled (indistinguishable from fresh ones) are pruned.
const maxIdleBuckets = 1024

// rateLimiter holds per-tenant token buckets. Time comes from an
// injected clock so the chaos harness drives refills virtually.
type rateLimiter struct {
	clock   clock.Clock
	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// allow charges one submission against the tenant's bucket. A nil
// return admits; otherwise the *RateLimitedError carries the time until
// a full token refills. Limits hot-reload: the bucket re-reads rate and
// burst on every call, so an operator override applies to the very next
// submission.
func (l *rateLimiter) allow(tenant string, limit api.TenantRateLimit) error {
	if limit.Unlimited() {
		l.mu.Lock()
		delete(l.buckets, tenant) // forget history from a stricter past limit
		l.mu.Unlock()
		return nil
	}
	burst := float64(limit.Burst)
	if burst < 1 {
		burst = math.Max(1, math.Ceil(limit.SubmitPerSecond))
	}
	now := clock.Now(l.clock)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buckets == nil {
		l.buckets = make(map[string]*bucket)
	}
	b, ok := l.buckets[tenant]
	if !ok {
		if len(l.buckets) >= maxIdleBuckets {
			l.prune(now)
		}
		b = &bucket{tokens: burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * limit.SubmitPerSecond
	b.last = now
	if b.tokens > burst {
		b.tokens = burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return nil
	}
	wait := time.Duration((1 - b.tokens) / limit.SubmitPerSecond * float64(time.Second))
	return &RateLimitedError{Tenant: tenant, Wait: wait}
}

// prune drops buckets idle long enough to have refilled completely (a
// fresh bucket behaves identically), under l.mu. The one-second-per-
// token floor keeps pathological sub-1/s rates from pinning entries.
func (l *rateLimiter) prune(now time.Time) {
	for t, b := range l.buckets {
		if now.Sub(b.last) > time.Minute {
			delete(l.buckets, t)
		}
	}
}

// rateLimit is the submission-intake hook: resolves the tenant's
// governing limit (live override first, static policy second) and
// charges the bucket.
func (s *Server) rateLimit(tenant string) error {
	return s.limiter.allow(tenant, s.Core.State.RateLimitFor(tenant))
}

// flowControl wraps the /v1 mux with the global in-flight cap. It is
// deliberately outermost and O(1): shedding must stay cheap exactly when
// the gateway is busiest.
func (s *Server) flowControl(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// In-flight is counted unconditionally (two atomic ops): the
		// qrio_gateway_inflight_requests gauge reads it even on gateways
		// that never shed.
		n := s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if max := s.MaxInFlight; max > 0 && n > int64(max) {
			s.countShed("overloaded")
			httpx.WriteErr(w, &OverloadedError{InFlight: int(n), Max: max},
				http.StatusServiceUnavailable, httpx.CodeOverloaded)
			return
		}
		next.ServeHTTP(w, r)
	})
}
