package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"qrio/internal/cluster/state"
	"qrio/internal/httpx"
)

// handleWatch streams cluster changes as server-sent events, fanned out
// from the state broadcast hub. Each SSE message's event name is the
// notification kind ("job" or "node") and its data is the JSON-encoded
// state.Notification. On connect the current (filtered) objects are sent
// as SYNC notifications, so a client that watches after a transition it
// cares about still observes the object's present state — no list/watch
// race. Query params: kind=job|node narrows the stream to one kind,
// name=X to one object. The stream runs until the client disconnects.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	kind := r.URL.Query().Get("kind")
	if kind != "" && kind != state.KindJob && kind != state.KindNode {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid,
			fmt.Errorf("gateway: unknown watch kind %q (job or node)", kind))
		return
	}
	name := r.URL.Query().Get("name")
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpx.WriteError(w, http.StatusInternalServerError, httpx.CodeInternal,
			fmt.Errorf("gateway: response writer cannot stream"))
		return
	}

	// Subscribe before snapshotting so no transition between the two is
	// lost; duplicates are fine (watch consumers are level-triggered).
	sub, cancel := s.Core.State.Subscribe(256)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	match := func(n state.Notification) bool {
		if kind != "" && n.Kind != kind {
			return false
		}
		if name != "" {
			switch {
			case n.Job != nil && n.Job.Name != name:
				return false
			case n.Node != nil && n.Node.Name != name:
				return false
			}
		}
		return true
	}

	if kind == "" || kind == state.KindJob {
		for _, j := range s.Core.State.Jobs.List() {
			j := j
			n := state.Notification{Kind: state.KindJob, Type: SyncEvent, Job: &j}
			if match(n) {
				writeSSE(w, n)
			}
		}
	}
	if kind == "" || kind == state.KindNode {
		for _, nd := range s.Core.State.Nodes.List() {
			nd := nd
			n := state.Notification{Kind: state.KindNode, Type: SyncEvent, Node: &nd}
			if match(n) {
				writeSSE(w, n)
			}
		}
	}
	flusher.Flush()

	ping := s.PingInterval
	if ping <= 0 {
		ping = 15 * time.Second
	}
	keepalive := time.NewTicker(ping)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case n, ok := <-sub:
			if !ok {
				return
			}
			if !match(n) {
				continue
			}
			writeSSE(w, n)
			flusher.Flush()
		case <-keepalive.C:
			fmt.Fprint(w, ": ping\n\n")
			flusher.Flush()
		}
	}
}

// writeSSE renders one notification as an SSE message.
func writeSSE(w http.ResponseWriter, n state.Notification) {
	raw, err := json.Marshal(n)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", n.Kind, raw)
}
