package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/cluster/store"
	"qrio/internal/httpx"
)

// handleWatch streams cluster changes as server-sent events, fanned out
// from the state broadcast hub. Each SSE message's event name is the
// notification kind ("job" or "node") and its data is the JSON-encoded
// state.Notification, whose "resume" field carries the stream position
// token as of that event. On connect the current (filtered) objects are
// sent as SYNC notifications, so a client that watches after a transition
// it cares about still observes the object's present state — no
// list/watch race.
//
// Query params: kind=job|node narrows the stream to one kind, name=X to
// one object, and resume=<token> (a token from a previous stream's
// events) replays every transition after that position instead of sending
// the SYNC snapshot — the reconnect path for dropped SSE clients. A
// malformed token is 400 invalid; a token whose position has aged out of
// the server's version journal is 410 compacted, and the client must fall
// back to a fresh watch. The stream runs until the client disconnects; a
// resumed stream also ends (cleanly) if the client falls too far behind,
// so it reconnects from its latest token rather than silently missing
// transitions.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	kind := r.URL.Query().Get("kind")
	if kind != "" && kind != state.KindJob && kind != state.KindNode {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid,
			fmt.Errorf("gateway: unknown watch kind %q (job or node)", kind))
		return
	}
	name := r.URL.Query().Get("name")
	resume, resuming := "", false
	if raw := r.URL.Query().Get("resume"); raw != "" {
		resume, resuming = raw, true
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpx.WriteError(w, http.StatusInternalServerError, httpx.CodeInternal,
			fmt.Errorf("gateway: response writer cannot stream"))
		return
	}

	var (
		sub    <-chan state.Notification
		start  state.ResumeToken
		cancel func()
	)
	if resuming {
		token, err := state.ParseResumeToken(resume)
		if err != nil {
			httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid, err)
			return
		}
		var serr error
		sub, cancel, serr = s.Core.State.SubscribeFrom(256, token)
		if serr != nil {
			if errors.Is(serr, store.ErrCompacted) {
				httpx.WriteError(w, http.StatusGone, httpx.CodeCompacted, serr)
				return
			}
			httpx.WriteError(w, http.StatusInternalServerError, httpx.CodeInternal, serr)
			return
		}
	} else {
		// Subscribe before snapshotting so no transition between the two is
		// lost; duplicates are fine (watch consumers are level-triggered).
		sub, start, cancel = s.Core.State.SubscribeWithToken(256)
	}
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	match := func(n state.Notification) bool {
		if kind != "" && n.Kind != kind {
			return false
		}
		if name != "" {
			switch {
			case n.Job != nil && n.Job.Name != name:
				return false
			case n.Node != nil && n.Node.Name != name:
				return false
			}
		}
		return true
	}

	if !resuming {
		// SYNC snapshot, stamped with the stream's starting token (a client
		// that drops before the first live event resumes from here) and each
		// object's resource version — the observation an out-of-process
		// scheduler's version-conditional POST /v1/bind binds against.
		if kind == "" || kind == state.KindJob {
			s.Core.State.Jobs.Range(func(j api.QuantumJob, v int64) bool {
				n := state.Notification{Kind: state.KindJob, Type: SyncEvent, Job: &j, Version: v, Resume: start.String()}
				if match(n) {
					writeSSE(w, n)
				}
				return true
			})
		}
		if kind == "" || kind == state.KindNode {
			s.Core.State.Nodes.Range(func(nd api.Node, v int64) bool {
				n := state.Notification{Kind: state.KindNode, Type: SyncEvent, Node: &nd, Version: v, Resume: start.String()}
				if match(n) {
					writeSSE(w, n)
				}
				return true
			})
		}
	}
	flusher.Flush()

	ping := s.PingInterval
	if ping <= 0 {
		ping = 15 * time.Second
	}
	keepalive := time.NewTicker(ping)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case n, ok := <-sub:
			if !ok {
				return
			}
			if !match(n) {
				continue
			}
			writeSSE(w, n)
			flusher.Flush()
		case <-keepalive.C:
			fmt.Fprint(w, ": ping\n\n")
			flusher.Flush()
		}
	}
}

// writeSSE renders one notification as an SSE message.
func writeSSE(w http.ResponseWriter, n state.Notification) {
	raw, err := json.Marshal(n)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", n.Kind, raw)
}
