// Fuzzers for the gateway's client-supplied tokens: the /v1/jobs
// continue/limit/archived parameters and the /v1/watch resume token.
// Contract: malformed input is a 400 with the invalid envelope (the watch
// token additionally 410s once valid-but-stale), and no input ever
// panics a handler.
package gateway_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/core"
	"qrio/internal/device"
	"qrio/internal/gateway"
	"qrio/internal/graph"
	"qrio/internal/httpx"
)

// fuzzServer builds one idle orchestrator + gateway handler shared by all
// fuzz iterations (handlers are stateless across requests).
var fuzzServer = sync.OnceValues(func() (http.Handler, *core.QRIO) {
	b, err := device.UniformBackend("fuzz-dev", graph.Ring(8), 0.05, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		panic(err)
	}
	q, err := core.New(core.Config{Backends: []*device.Backend{b}})
	if err != nil {
		panic(err)
	}
	// A split keyspace so continue tokens exercise both tiers.
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 12; i++ {
		fin := base.Add(time.Duration(i) * time.Second)
		j := api.QuantumJob{
			ObjectMeta: api.ObjectMeta{Name: fmt.Sprintf("seed-%02d", i), CreatedAt: fin},
			Spec: api.JobSpec{QASM: "OPENQASM 2.0;\nqreg q[1];\nh q[0];",
				Strategy: api.StrategyFidelity, TargetFidelity: 1},
			Status: api.JobStatus{Phase: api.JobSucceeded, FinishedAt: &fin},
		}
		if _, err := q.State.Jobs.Create(j); err != nil {
			panic(err)
		}
	}
	q.State.ArchiveTerminal(time.Now(), state.RetentionPolicy{MaxTerminalCount: 6})
	return gateway.New(q).Handler(), q
})

// FuzzListContinueToken throws arbitrary continue/limit/archived values
// at GET /v1/jobs. Every response must be a well-formed 200 or a 400
// carrying the invalid envelope — never a panic, never another status.
func FuzzListContinueToken(f *testing.F) {
	f.Add("seed-03", "5", "true")
	f.Add("", "0", "false")
	f.Add("seed-08", "", "")
	f.Add("zzzz", "-1", "TRUE")
	f.Add("\x00\xff", "9999999999999999999", "bogus")
	f.Add("seed-05\n", "two", "1")
	f.Fuzz(func(t *testing.T, cont, limit, archived string) {
		handler, _ := fuzzServer()
		q := url.Values{}
		if cont != "" {
			q.Set("continue", cont)
		}
		if limit != "" {
			q.Set("limit", limit)
		}
		if archived != "" {
			q.Set("archived", archived)
		}
		req := httptest.NewRequest(http.MethodGet, "/v1/jobs?"+q.Encode(), nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // a panic fails the fuzz run
		switch rec.Code {
		case http.StatusOK:
		case http.StatusBadRequest:
			code, _, ok := httpx.DecodeErrorBody(rec.Body.Bytes())
			if !ok || code != httpx.CodeInvalid {
				t.Fatalf("400 without invalid envelope: %s", rec.Body.String())
			}
		default:
			t.Fatalf("status %d for continue=%q limit=%q archived=%q", rec.Code, cont, limit, archived)
		}
	})
}

// FuzzWatchResumeToken throws arbitrary resume tokens at GET /v1/watch.
// The request context is pre-cancelled so a token that opens a stream
// terminates immediately instead of serving SSE forever. Malformed
// tokens must 400 invalid; parseable-but-unreplayable ones 410 compacted;
// replayable ones 200. Nothing panics.
func FuzzWatchResumeToken(f *testing.F) {
	f.Add("j0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0-n0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0")
	f.Add("j1-n2")
	f.Add("")
	f.Add("garbage")
	f.Add("j-n")
	f.Add("j99999999999999999999-n0")
	f.Add("j1.2.3-n4.5.6")
	f.Add("j0.0-n0\x00")
	f.Fuzz(func(t *testing.T, token string) {
		handler, _ := fuzzServer()
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // streams exit on first select
		q := url.Values{}
		q.Set("resume", token)
		req := httptest.NewRequest(http.MethodGet, "/v1/watch?"+q.Encode(), nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusGone:
			// OK = replayable position (empty token streams a snapshot);
			// Gone = parseable but compacted/mismatched position.
		case http.StatusBadRequest:
			code, _, ok := httpx.DecodeErrorBody(firstJSONLine(rec))
			if !ok || code != httpx.CodeInvalid {
				t.Fatalf("400 without invalid envelope: %s", rec.Body.String())
			}
		default:
			t.Fatalf("status %d for resume=%q", rec.Code, token)
		}
	})
}

// firstJSONLine returns the recorder body (error envelopes are a single
// JSON object; SSE bodies never reach this helper).
func firstJSONLine(rec *httptest.ResponseRecorder) []byte {
	raw, _ := io.ReadAll(rec.Result().Body)
	return raw
}
