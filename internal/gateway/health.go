// Versioned health: GET /v1/health reports typed per-component statuses
// instead of the ad-hoc /v1/healthz map. Components are the subsystems an
// operator pages on — store, scheduler, durability, archive, scoring
// breaker — plus the drain gate; each carries a status string and its
// load-bearing numbers, and the top level rolls them up. /v1/healthz
// serves the same payload as a thin alias for one deprecation cycle.
package gateway

import (
	"net/http"
	"time"

	"qrio/internal/httpx"
)

// Component status values.
const (
	// StatusOK marks a healthy component (and a healthy overall roll-up).
	StatusOK = "ok"
	// StatusDegraded marks a component running with reduced guarantees: a
	// latched WAL/spill error, or the scoring breaker open.
	StatusDegraded = "degraded"
	// StatusDisabled marks a component the deployment did not enable.
	StatusDisabled = "disabled"
	// StatusDraining is the overall status of a daemon winding down.
	StatusDraining = "draining"
)

// HealthResponse is the GET /v1/health payload.
type HealthResponse struct {
	// Status rolls the components up: "ok", "degraded" (any component
	// degraded) or "draining" (shutdown in progress; trumps degraded — the
	// process is leaving either way).
	Status string `json:"status"`
	// OK is the boolean roll-up old probes checked on /v1/healthz: true
	// unless a component is degraded. A draining daemon with healthy
	// components stays OK — load balancers rotate on Status instead.
	OK       bool `json:"ok"`
	Draining bool `json:"draining,omitempty"`

	Store      StoreHealth      `json:"store"`
	Scheduler  SchedulerHealth  `json:"scheduler"`
	Durability DurabilityHealth `json:"durability"`
	Archive    ArchiveHealth    `json:"archive"`
	Breaker    BreakerHealth    `json:"breaker"`
}

// StoreHealth reports hot-store residency.
type StoreHealth struct {
	Status string `json:"status"`
	Jobs   int    `json:"jobs"`
	Nodes  int    `json:"nodes"`
}

// SchedulerHealth reports queue depth. Degraded scheduling (meta scoring
// down) shows on the breaker component, not here — the scheduler itself
// keeps binding either way.
type SchedulerHealth struct {
	Status  string `json:"status"`
	Pending int    `json:"pending"`
	Active  int    `json:"active"`
}

// DurabilityHealth summarises crash safety. Status is "disabled" for an
// in-memory deployment, "degraded" while a WAL error is latched (recent
// mutations may not survive a crash), else "ok". The clear fields carry
// the heal history: a latched error healed by a snapshot stays visible
// here after the latch itself is gone.
type DurabilityHealth struct {
	Status     string `json:"status"`
	Enabled    bool   `json:"enabled"`
	OK         bool   `json:"ok"`
	Generation int64  `json:"generation,omitempty"`
	WALRecords int64  `json:"walRecords,omitempty"`
	WALError   string `json:"walError,omitempty"`
	// WALErrorClears counts latched errors healed by snapshots;
	// LastWALErrorClearedAt stamps the latest heal (omitted until one).
	WALErrorClears        int64      `json:"walErrorClears,omitempty"`
	LastWALErrorClearedAt *time.Time `json:"lastWALErrorClearedAt,omitempty"`
}

// ArchiveHealth reports the terminal-history tier: resident entries,
// capacity-evicted entries, and the latched spill error (degraded: the
// archive keeps serving but new spills are not reaching disk).
type ArchiveHealth struct {
	Status     string `json:"status"`
	Resident   int    `json:"resident"`
	Dropped    int    `json:"dropped,omitempty"`
	SpillError string `json:"spillError,omitempty"`
}

// BreakerHealth reports the meta-scoring circuit breaker: its position
// ("closed", "open", "half-open") and lifetime open episodes. Open and
// half-open read as degraded — scheduling continues on stale or
// heuristic scores.
type BreakerHealth struct {
	Status string `json:"status"`
	State  string `json:"state"`
	Opens  int64  `json:"opens,omitempty"`
}

// health assembles the typed payload from the live subsystems.
func (s *Server) health() HealthResponse {
	st := s.Core.State
	h := HealthResponse{
		Draining: s.Core.Draining(),
		Store: StoreHealth{
			Status: StatusOK,
			Jobs:   st.Jobs.Len(),
			Nodes:  st.Nodes.Len(),
		},
		Scheduler: SchedulerHealth{
			Status:  StatusOK,
			Pending: st.PendingCount(),
			Active:  st.ActiveCount(),
		},
	}

	h.Archive = ArchiveHealth{
		Status:   StatusOK,
		Resident: st.Archived.Len(),
		Dropped:  st.Archived.Dropped(),
	}
	if err := st.Archived.SpillErr(); err != nil {
		h.Archive.Status = StatusDegraded
		h.Archive.SpillError = err.Error()
	}

	brState := s.Core.ScorerBreaker.State().String()
	h.Breaker = BreakerHealth{Status: StatusOK, State: brState, Opens: s.Core.ScorerBreaker.Opens()}
	if brState != "closed" {
		h.Breaker.Status = StatusDegraded
	}

	if d := s.Core.Durability; d != nil {
		ds := d.Stats()
		h.Durability = DurabilityHealth{
			Status:         StatusOK,
			Enabled:        true,
			OK:             ds.WALError == "",
			Generation:     ds.Generation,
			WALRecords:     ds.WALRecords,
			WALError:       ds.WALError,
			WALErrorClears: ds.WALErrorClears,
		}
		if !ds.LastWALErrorClearedAt.IsZero() {
			t := ds.LastWALErrorClearedAt
			h.Durability.LastWALErrorClearedAt = &t
		}
		if ds.WALError != "" {
			h.Durability.Status = StatusDegraded
		}
	} else {
		h.Durability = DurabilityHealth{Status: StatusDisabled, OK: true}
	}

	h.OK = h.Durability.Status != StatusDegraded &&
		h.Archive.Status != StatusDegraded &&
		h.Breaker.Status != StatusDegraded
	switch {
	case h.Draining:
		h.Status = StatusDraining
	case !h.OK:
		h.Status = StatusDegraded
	default:
		h.Status = StatusOK
	}
	return h
}

// handleHealth serves GET /v1/health.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	httpx.WriteJSON(w, http.StatusOK, s.health())
}
