package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/httpx"
)

// tickClock is a mutex-protected virtual clock driving bucket refills.
type tickClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTickClock() *tickClock {
	return &tickClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *tickClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestBucketRateAndBurst pins the token-bucket arithmetic: burst admits
// immediately, then admission tracks the refill rate, and the 429 carries
// the time until a full token.
func TestBucketRateAndBurst(t *testing.T) {
	fc := newTickClock()
	l := rateLimiter{clock: fc}
	limit := api.TenantRateLimit{SubmitPerSecond: 2, Burst: 3}

	for i := 0; i < 3; i++ {
		if err := l.allow("alice", limit); err != nil {
			t.Fatalf("burst submission %d refused: %v", i, err)
		}
	}
	err := l.allow("alice", limit)
	var rl *RateLimitedError
	if !errors.As(err, &rl) {
		t.Fatalf("over-burst submission: got %v, want *RateLimitedError", err)
	}
	// Empty bucket at 2 tokens/s: a full token is 500ms away.
	if rl.Wait != 500*time.Millisecond {
		t.Fatalf("Retry-After wait = %s, want 500ms", rl.Wait)
	}
	if rl.Tenant != "alice" {
		t.Fatalf("error tenant = %q", rl.Tenant)
	}

	fc.Advance(500 * time.Millisecond)
	if err := l.allow("alice", limit); err != nil {
		t.Fatalf("refilled token refused: %v", err)
	}
	if err := l.allow("alice", limit); err == nil {
		t.Fatal("second submission admitted on one refilled token")
	}

	// Long idle refills only to burst, never beyond.
	fc.Advance(time.Hour)
	for i := 0; i < 3; i++ {
		if err := l.allow("alice", limit); err != nil {
			t.Fatalf("post-idle submission %d refused: %v", i, err)
		}
	}
	if err := l.allow("alice", limit); err == nil {
		t.Fatal("idle refill exceeded burst")
	}
}

// TestBurstDefault: burst 0 defaults to max(1, ceil(rate)).
func TestBurstDefault(t *testing.T) {
	fc := newTickClock()
	l := rateLimiter{clock: fc}

	// Sub-1/s rate still admits a single submission.
	slow := api.TenantRateLimit{SubmitPerSecond: 0.5}
	if err := l.allow("slow", slow); err != nil {
		t.Fatalf("first slow submission refused: %v", err)
	}
	if err := l.allow("slow", slow); err == nil {
		t.Fatal("second slow submission admitted within the burst of 1")
	}

	// rate 2.5 → burst ceil = 3.
	mid := api.TenantRateLimit{SubmitPerSecond: 2.5}
	for i := 0; i < 3; i++ {
		if err := l.allow("mid", mid); err != nil {
			t.Fatalf("mid submission %d refused: %v", i, err)
		}
	}
	if err := l.allow("mid", mid); err == nil {
		t.Fatal("mid burst exceeded ceil(rate)")
	}
}

// TestHotReload: the bucket re-reads rate and burst per call, so an
// operator override applies to the very next submission; going unlimited
// forgets the bucket entirely (a re-limited tenant starts fresh).
func TestHotReload(t *testing.T) {
	fc := newTickClock()
	l := rateLimiter{clock: fc}

	strict := api.TenantRateLimit{SubmitPerSecond: 1, Burst: 1}
	if err := l.allow("bob", strict); err != nil {
		t.Fatal(err)
	}
	if err := l.allow("bob", strict); err == nil {
		t.Fatal("strict limit admitted past burst")
	}

	// Raise the limit: the drained bucket refills at the new rate.
	raised := api.TenantRateLimit{SubmitPerSecond: 100, Burst: 1}
	fc.Advance(100 * time.Millisecond) // 10 tokens at the raised rate, capped at burst 1
	if err := l.allow("bob", raised); err != nil {
		t.Fatalf("raised limit refused: %v", err)
	}

	// Unlimited admits and forgets history.
	if err := l.allow("bob", api.TenantRateLimit{}); err != nil {
		t.Fatalf("unlimited refused: %v", err)
	}
	l.mu.Lock()
	_, kept := l.buckets["bob"]
	l.mu.Unlock()
	if kept {
		t.Fatal("unlimited tenant kept a bucket")
	}
	// Re-limiting starts from a full burst, not the stricter past.
	if err := l.allow("bob", strict); err != nil {
		t.Fatalf("re-limited tenant refused its fresh burst: %v", err)
	}
}

// TestBucketPrune: at the map cap, buckets idle long enough to have
// fully refilled are dropped — a fresh bucket behaves identically.
func TestBucketPrune(t *testing.T) {
	fc := newTickClock()
	l := rateLimiter{clock: fc}
	limit := api.TenantRateLimit{SubmitPerSecond: 10, Burst: 1}

	for i := 0; i < maxIdleBuckets; i++ {
		if err := l.allow(fmt.Sprintf("tenant-%d", i), limit); err != nil {
			t.Fatal(err)
		}
	}
	fc.Advance(2 * time.Minute)
	if err := l.allow("newcomer", limit); err != nil {
		t.Fatal(err)
	}
	l.mu.Lock()
	size := len(l.buckets)
	l.mu.Unlock()
	if size != 1 {
		t.Fatalf("bucket map holds %d entries after prune, want 1", size)
	}
}

// TestFlowControlShed: the global in-flight cap sheds excess concurrent
// requests with the typed 503 envelope and a Retry-After, and recovers
// as soon as slots free.
func TestFlowControlShed(t *testing.T) {
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		<-release
		w.WriteHeader(http.StatusOK)
	})
	s := &Server{MaxInFlight: 2}
	h := s.flowControl(slow)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs", nil))
			if rec.Code != http.StatusOK {
				t.Errorf("occupying request got %d", rec.Code)
			}
		}()
	}
	// Both slots are held once the handlers park on release; the counter
	// is then stable at 2.
	for s.inflight.Load() != 2 {
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("third concurrent request got %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	var env httpx.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != httpx.CodeOverloaded {
		t.Fatalf("shed envelope = %s (err %v), want code overloaded", rec.Body.String(), err)
	}

	close(release)
	wg.Wait()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-recovery request got %d, want 200", rec.Code)
	}
}

// TestFlowControlUncapped: MaxInFlight 0 never sheds and skips the
// counter entirely.
func TestFlowControlUncapped(t *testing.T) {
	s := &Server{}
	h := s.flowControl(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("uncapped request got %d", rec.Code)
	}
	if s.inflight.Load() != 0 {
		t.Fatalf("uncapped path touched the in-flight counter: %d", s.inflight.Load())
	}
}

// TestErrorShapes pins each flow-control error's HTTP mapping.
func TestErrorShapes(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{&RateLimitedError{Tenant: "a", Wait: time.Second}, 429, httpx.CodeRateLimited},
		{&OverloadedError{InFlight: 9, Max: 8}, 503, httpx.CodeOverloaded},
		{&DrainingError{}, 503, httpx.CodeDraining},
	}
	for _, c := range cases {
		var sc httpx.StatusCoder
		if !errors.As(c.err, &sc) {
			t.Fatalf("%T does not implement StatusCoder", c.err)
		}
		status, code := sc.HTTPStatus()
		if status != c.status || code != c.code {
			t.Errorf("%T → (%d, %s), want (%d, %s)", c.err, status, code, c.status, c.code)
		}
	}
	var ra httpx.RetryAfterer
	if !errors.As(error(&RateLimitedError{Wait: 7 * time.Second}), &ra) || ra.RetryAfter() != 7*time.Second {
		t.Fatal("RateLimitedError does not surface its wait as Retry-After")
	}
}
