// End-to-end tests of the /v1 gateway, driven exclusively through the
// public Go client — the path a remote cloud user takes.
package gateway_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qrio/client"
	"qrio/internal/cluster/api"
	"qrio/internal/core"
	"qrio/internal/device"
	"qrio/internal/fidelity"
	"qrio/internal/gateway"
	"qrio/internal/graph"
	"qrio/internal/quantum/qasm"
	"qrio/internal/workload"
)

// deploy stands up an orchestrator plus its /v1 gateway over HTTP and
// returns the Go client. mutate (optional) runs before Start — tests use
// it to inject kubelet runtimes.
func deploy(t *testing.T, backends []*device.Backend, mutate func(*core.QRIO)) (*client.Client, *core.QRIO) {
	t.Helper()
	q, err := core.New(core.Config{Backends: backends, Concurrency: 4, NodeConcurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(q)
	}
	q.Start()
	t.Cleanup(q.Stop)
	srv := httptest.NewServer(gateway.New(q).Handler())
	t.Cleanup(srv.Close)
	return client.New(srv.URL), q
}

func twoNodeFleet(t *testing.T) []*device.Backend {
	t.Helper()
	var fleet []*device.Backend
	for _, cfg := range []struct {
		name string
		e2   float64
	}{{"good", 0.03}, {"bad", 0.5}} {
		b, err := device.UniformBackend(cfg.name, graph.Ring(12), cfg.e2, 0.005, 0.01, 500e3, 500e3)
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, b)
	}
	return fleet
}

func ghzReq(name string) client.SubmitRequest {
	src, _ := qasm.Dump(workload.GHZ(5))
	return client.SubmitRequest{
		JobName: name, QASM: src, Shots: 128,
		Strategy: api.StrategyFidelity, TargetFidelity: 1.0,
	}
}

// TestErrorModel pins the structured envelope: duplicate → 409 conflict,
// unknown → 404 not_found, malformed → 400 invalid, impossible
// requirements → 422 unschedulable — all machine-readable through the
// client's error helpers.
func TestErrorModel(t *testing.T) {
	c, _ := deploy(t, twoNodeFleet(t), nil)
	ctx := context.Background()

	if _, err := c.Submit(ctx, ghzReq("dup")); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(ctx, ghzReq("dup"))
	if !client.IsConflict(err) {
		t.Fatalf("duplicate submit: want conflict, got %v", err)
	}
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != 409 || apiErr.Code != "conflict" {
		t.Fatalf("duplicate submit envelope: %+v", apiErr)
	}

	_, err = c.Get(ctx, "ghost")
	if !client.IsNotFound(err) {
		t.Fatalf("unknown job: want not_found, got %v", err)
	}
	if asAPIError(err, &apiErr); apiErr.Status != 404 {
		t.Fatalf("unknown job status = %d", apiErr.Status)
	}
	if _, err = c.Node(ctx, "ghost-node"); !client.IsNotFound(err) {
		t.Fatalf("unknown node: want not_found, got %v", err)
	}
	if _, err = c.Logs(ctx, "ghost"); !client.IsNotFound(err) {
		t.Fatalf("unknown logs: want not_found, got %v", err)
	}
	if _, err = c.Cancel(ctx, "ghost"); !client.IsNotFound(err) {
		t.Fatalf("cancel unknown job: want not_found, got %v", err)
	}

	bad := ghzReq("malformed")
	bad.QASM = "this is not QASM"
	_, err = c.Submit(ctx, bad)
	if !client.IsInvalid(err) {
		t.Fatalf("malformed submit: want invalid, got %v", err)
	}
	if asAPIError(err, &apiErr); apiErr.Status != 400 {
		t.Fatalf("malformed submit status = %d", apiErr.Status)
	}
	missing := ghzReq("no-strategy")
	missing.Strategy = ""
	if _, err = c.Submit(ctx, missing); !client.IsInvalid(err) {
		t.Fatalf("missing strategy: want invalid, got %v", err)
	}

	impossible := ghzReq("impossible")
	impossible.Requirements.MinQubits = 4096
	_, err = c.Submit(ctx, impossible)
	if !client.IsUnschedulable(err) {
		t.Fatalf("impossible requirements: want unschedulable, got %v", err)
	}
	if asAPIError(err, &apiErr); apiErr.Status != 422 {
		t.Fatalf("unschedulable status = %d", apiErr.Status)
	}
	// The circuit's own width counts even without explicit requirements:
	// a 40-qubit circuit on a 12-qubit fleet is never schedulable.
	wideSrc, _ := qasm.Dump(workload.GHZ(40))
	wide := client.SubmitRequest{
		JobName: "too-wide", QASM: wideSrc,
		Strategy: api.StrategyFidelity, TargetFidelity: 1.0,
	}
	if _, err = c.Submit(ctx, wide); !client.IsUnschedulable(err) {
		t.Fatalf("over-wide circuit: want unschedulable, got %v", err)
	}

	// Cancel of a finished job is a conflict.
	if _, err = c.Wait(ctx, "dup"); err != nil {
		t.Fatal(err)
	}
	if _, err = c.Cancel(ctx, "dup"); !client.IsConflict(err) {
		t.Fatalf("cancel terminal job: want conflict, got %v", err)
	}
}

func asAPIError(err error, target **client.APIError) bool {
	if err == nil {
		return false
	}
	e, ok := err.(*client.APIError)
	if ok {
		*target = e
	}
	return ok
}

// TestCancelRunningJobEndToEnd is the acceptance scenario: DELETE
// /v1/jobs/{name} against a *running* job aborts the container on the
// node, frees its slot, lands the terminal Cancelled phase — and the
// /v1/watch SSE stream delivers every transition without the client
// polling job state.
func TestCancelRunningJobEndToEnd(t *testing.T) {
	b, err := device.UniformBackend("solo", graph.Ring(12), 0.03, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	aborted := make(chan struct{})
	c, _ := deploy(t, []*device.Backend{b}, func(q *core.QRIO) {
		q.Kubelets[0].Runtime = func(ctx context.Context, j api.QuantumJob) ([]string, *fidelity.Execution, error) {
			if j.Name == "abort-me" {
				close(started)
				<-ctx.Done() // the container runs until aborted
				close(aborted)
				return nil, nil, ctx.Err()
			}
			<-ctx.Done() // later jobs also run until cancelled
			return nil, nil, ctx.Err()
		}
	})
	ctx := context.Background()

	// Watch the job over SSE before submitting: every observation below
	// comes off this stream, never from polling GETs.
	watchCtx, stopWatch := context.WithTimeout(ctx, 30*time.Second)
	defer stopWatch()
	events, err := c.Watch(watchCtx, client.WatchOptions{Kind: "job", Name: "abort-me"})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := c.Submit(ctx, ghzReq("abort-me")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started running")
	}

	// Cancel the running job over the wire.
	j, err := c.Cancel(ctx, "abort-me")
	if err != nil {
		t.Fatal(err)
	}
	if j.Status.Phase != api.JobRunning || !j.Status.CancelRequested {
		t.Fatalf("cancel response: %+v", j.Status)
	}

	// The SSE stream must deliver the Running → Cancelled transition.
	var phases []api.JobPhase
	deadline := time.After(15 * time.Second)
observe:
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("watch closed early; saw %v", phases)
			}
			if ev.Job == nil {
				continue
			}
			phases = append(phases, ev.Job.Status.Phase)
			if ev.Job.Status.Phase == api.JobCancelled {
				break observe
			}
			if ev.Job.Status.Phase.Terminal() {
				t.Fatalf("job reached %s, want Cancelled (saw %v)", ev.Job.Status.Phase, phases)
			}
		case <-deadline:
			t.Fatalf("Cancelled never delivered over SSE; saw %v", phases)
		}
	}
	sawRunning := false
	for _, p := range phases {
		if p == api.JobRunning {
			sawRunning = true
		}
	}
	if !sawRunning {
		t.Fatalf("watch missed the Running phase: %v", phases)
	}

	// The container really was aborted...
	select {
	case <-aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("container context never cancelled")
	}
	// ...and the node slot frees (release lands just after the phase).
	freeBy := time.Now().Add(5 * time.Second)
	for {
		n, err := c.Node(ctx, "solo")
		if err != nil {
			t.Fatal(err)
		}
		if len(n.Status.RunningJobs) == 0 && n.Status.CPUMillisInUse == 0 {
			break
		}
		if time.Now().After(freeBy) {
			t.Fatalf("node slot never freed: %+v", n.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The freed slot must be usable: a follow-up job on the same node
	// completes (with the real runtime unavailable, use a new deployment?
	// no — the injected runtime blocks forever, so assert schedulability
	// via binding instead: submit and watch it reach Running).
	if _, err := c.Submit(ctx, ghzReq("after-cancel")); err != nil {
		t.Fatal(err)
	}
	reRunBy := time.Now().Add(10 * time.Second)
	for {
		j, err := c.Get(ctx, "after-cancel")
		if err != nil {
			t.Fatal(err)
		}
		if j.Status.Phase == api.JobRunning && j.Status.Node == "solo" {
			break
		}
		if time.Now().After(reRunBy) {
			t.Fatalf("freed slot never reused: %+v", j.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Cancel the follow-up too so the blocking runtime releases before
	// orchestrator shutdown.
	if _, err := c.Cancel(ctx, "after-cancel"); err != nil {
		t.Fatal(err)
	}
	if j, err := c.Wait(ctx, "after-cancel"); err != nil || j.Status.Phase != api.JobCancelled {
		t.Fatalf("second cancel: %+v, %v", j.Status, err)
	}
}

// TestWatchDeliversLifecycleWithoutPolling submits a job and observes its
// entire lifecycle purely through the SSE stream, including the terminal
// transition — then cross-checks Wait (which rides the same stream).
func TestWatchDeliversLifecycleWithoutPolling(t *testing.T) {
	c, _ := deploy(t, twoNodeFleet(t), nil)
	ctx, stop := context.WithTimeout(context.Background(), 60*time.Second)
	defer stop()

	events, err := c.Watch(ctx, client.WatchOptions{Kind: "job", Name: "watched"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, ghzReq("watched")); err != nil {
		t.Fatal(err)
	}
	var phases []api.JobPhase
	for ev := range events {
		if ev.Job == nil {
			continue
		}
		phases = append(phases, ev.Job.Status.Phase)
		if ev.Job.Status.Phase.Terminal() {
			if ev.Job.Status.Phase != api.JobSucceeded {
				t.Fatalf("terminal phase %s (%s)", ev.Job.Status.Phase, ev.Job.Status.Message)
			}
			if ev.Job.Status.Node != "good" {
				t.Fatalf("scheduled on %s, want the clean device", ev.Job.Status.Node)
			}
			break
		}
	}
	if len(phases) < 2 {
		t.Fatalf("stream delivered too few transitions: %v", phases)
	}

	// Wait on the already-terminal job returns instantly from state.
	j, err := c.Wait(ctx, "watched")
	if err != nil || j.Status.Phase != api.JobSucceeded {
		t.Fatalf("Wait after terminal: %+v, %v", j.Status, err)
	}
	res, err := c.Logs(ctx, "watched")
	if err != nil || res.Fidelity <= 0 || len(res.LogLines) == 0 {
		t.Fatalf("logs through client incomplete: %+v, %v", res, err)
	}
	evs, err := c.Events(ctx, "watched")
	if err != nil || len(evs) == 0 {
		t.Fatalf("events through client: %v, %v", evs, err)
	}
}

// TestBatchSubmitListFilterPaginate covers the batch verb and List's
// field filters + pagination through the client.
func TestBatchSubmitListFilterPaginate(t *testing.T) {
	c, _ := deploy(t, twoNodeFleet(t), nil)
	ctx, stop := context.WithTimeout(context.Background(), 120*time.Second)
	defer stop()

	reqs := []client.SubmitRequest{
		ghzReq("batch-a"),
		ghzReq("batch-b"),
		{JobName: "batch-bad", QASM: "garbage", Strategy: api.StrategyFidelity, TargetFidelity: 1.0},
		ghzReq("batch-c"),
	}
	items, err := c.SubmitBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("batch items = %d", len(items))
	}
	for i, it := range items {
		if it.Name != reqs[i].JobName {
			t.Fatalf("batch order broken: %s at %d", it.Name, i)
		}
	}
	if items[2].Error == nil || items[2].Error.Code != "invalid" {
		t.Fatalf("bad batch entry not rejected: %+v", items[2])
	}
	for _, i := range []int{0, 1, 3} {
		if items[i].Job == nil {
			t.Fatalf("batch entry %d rejected: %+v", i, items[i].Error)
		}
	}

	for _, name := range []string{"batch-a", "batch-b", "batch-c"} {
		if j, err := c.Wait(ctx, name); err != nil || j.Status.Phase != api.JobSucceeded {
			t.Fatalf("%s: %+v, %v", name, j.Status, err)
		}
	}

	// Phase filter.
	page, err := c.List(ctx, client.ListOptions{Phase: api.JobSucceeded})
	if err != nil || len(page.Items) != 3 {
		t.Fatalf("phase filter: %d items, %v", len(page.Items), err)
	}
	// Node filter: each page contains only that node's jobs, and the two
	// nodes partition the fleet's work.
	total := 0
	for _, node := range []string{"good", "bad"} {
		page, err = c.List(ctx, client.ListOptions{Node: node})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range page.Items {
			if j.Status.Node != node {
				t.Fatalf("node filter %q returned %s on %s", node, j.Name, j.Status.Node)
			}
		}
		total += len(page.Items)
	}
	if total != 3 {
		t.Fatalf("node filters cover %d jobs, want 3", total)
	}
	// Strategy filter.
	page, err = c.List(ctx, client.ListOptions{Strategy: "fidelity"})
	if err != nil || len(page.Items) != 3 {
		t.Fatalf("strategy filter: %d items, %v", len(page.Items), err)
	}
	// Unknown phase is a structured 400.
	if _, err = c.List(ctx, client.ListOptions{Phase: "Sideways"}); !client.IsInvalid(err) {
		t.Fatalf("bad phase filter: %v", err)
	}

	// Pagination: limit 1 walks all three in name order.
	var walked []string
	opts := client.ListOptions{Limit: 1}
	for {
		page, err := c.List(ctx, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range page.Items {
			walked = append(walked, j.Name)
		}
		if page.Continue == "" {
			break
		}
		opts.Continue = page.Continue
	}
	want := []string{"batch-a", "batch-b", "batch-c"}
	if strings.Join(walked, ",") != strings.Join(want, ",") {
		t.Fatalf("pagination walk = %v, want %v", walked, want)
	}
}

// TestGatewayNodesAndScores covers the node and score routes: register a
// backend through the client (it must reach the Meta Server and get a
// kubelet), score against it, delete it.
func TestGatewayNodesAndScores(t *testing.T) {
	c, q := deploy(t, twoNodeFleet(t), nil)
	ctx := context.Background()

	nodes, err := c.Nodes(ctx)
	if err != nil || len(nodes) != 2 {
		t.Fatalf("nodes = %v, %v", nodes, err)
	}
	extra, err := device.UniformBackend("extra", graph.Ring(12), 0.04, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.RegisterNode(ctx, extra)
	if err != nil || n.Name != "extra" {
		t.Fatalf("register node = %+v, %v", n, err)
	}
	if len(q.Kubelets) != 3 {
		t.Fatalf("registered node got no kubelet: %d", len(q.Kubelets))
	}

	if _, err := c.Submit(ctx, ghzReq("scored")); err != nil {
		t.Fatal(err)
	}
	good, err := c.Score(ctx, "scored", "good")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := c.Score(ctx, "scored", "bad")
	if err != nil {
		t.Fatal(err)
	}
	if good >= bad {
		t.Fatalf("scoring inverted: good %v vs bad %v", good, bad)
	}
	batch, err := c.ScoreBatch(ctx, "scored", nil)
	if err != nil || len(batch) != 3 {
		t.Fatalf("score batch = %v, %v", batch, err)
	}

	if err := c.DeleteNode(ctx, "extra"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(ctx, "extra"); !client.IsNotFound(err) {
		t.Fatalf("deleted node still there: %v", err)
	}
	if err := c.Healthy(ctx); err != nil {
		t.Fatal(err)
	}
}
