package gateway

import (
	"fmt"
	"net/http"

	"qrio/internal/httpx"
)

// BindRequest is the body of POST /v1/bind: the scheduler-replica binding
// verb. Version, when > 0, makes the bind version-conditional — it
// commits only if the job's resource version (as observed in the
// replica's watch feed) is unchanged, and loses with 409 conflict
// otherwise. Version 0 binds unconditionally (the phase checks still
// apply); out-of-process replicas should always send the version they
// observed, which is what makes N of them safe against one queue.
type BindRequest struct {
	Job     string  `json:"job"`
	Node    string  `json:"node"`
	Score   float64 `json:"score,omitempty"`
	Version int64   `json:"version,omitempty"`
}

// handleBind places one pending job on one node through the optimistic
// bind transaction. 200 returns the bound job; a lost version race, a
// job no longer pending, or a node without capacity all surface as 409
// conflict — the caller's cue to move on, not retry.
func (s *Server) handleBind(w http.ResponseWriter, r *http.Request) {
	var req BindRequest
	if err := httpx.DecodeJSON(r, &req); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid, err)
		return
	}
	if req.Job == "" || req.Node == "" {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid,
			fmt.Errorf("gateway: bind needs both job and node"))
		return
	}
	if req.Version < 0 {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid,
			fmt.Errorf("gateway: bind version must be >= 0, got %d", req.Version))
		return
	}
	if err := s.Core.State.BindJobAt(req.Job, req.Node, req.Score, req.Version); err != nil {
		// Typed errors (ConflictError, ErrNotFound) carry their own
		// status; the untyped bind failures — job not pending, node not
		// ready or full — are all some racer winning, hence the 409
		// fallback.
		httpx.WriteErr(w, err, http.StatusConflict, httpx.CodeConflict)
		return
	}
	job, _, err := s.Core.State.Jobs.Get(req.Job)
	if err != nil {
		httpx.WriteErr(w, err, http.StatusInternalServerError, httpx.CodeInternal)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, job)
}
