// Package gateway is QRIO's unified client-facing API: one versioned /v1
// surface over the whole orchestrator, replacing the three disjoint HTTP
// servers (master submit/logs, cluster CRUD, meta scores) users previously
// had to stitch together. It mounts job, node, score and event routes
// under /v1 with the shared httpx error envelope, and adds the two verbs
// the split servers never had: DELETE /v1/jobs/{name} (full-lifecycle
// cancellation, including aborting a running container) and GET /v1/watch
// (server-sent events fanned out from the cluster's broadcast hub, so
// clients observe transitions without polling).
//
//	GET    /v1/health               — typed per-component health (health.go)
//	GET    /v1/healthz              — deprecated alias for /v1/health (one
//	                                  deprecation cycle; same payload)
//	GET    /v1/metrics              — Prometheus text exposition of the
//	                                  deployment registry (404 when the
//	                                  deployment has no registry)
//	POST   /v1/jobs                 — submit one job (SubmitRequest)
//	POST   /v1/jobs/batch           — submit many ([]SubmitRequest)
//	GET    /v1/jobs                 — list, filters phase/node/strategy,
//	                                  archived=true merges the archive tier,
//	                                  pagination via limit/continue
//	GET    /v1/jobs/{name}          — fetch one job (falls through to the
//	                                  archive for retired terminal jobs)
//	DELETE /v1/jobs/{name}          — cancel through the full lifecycle
//	GET    /v1/jobs/{name}/logs     — execution result (Fig. 5)
//	GET    /v1/jobs/{name}/events   — the job's event trail
//	GET    /v1/nodes                — list nodes
//	POST   /v1/nodes                — register a vendor backend
//	GET    /v1/nodes/{name}         — fetch one node
//	DELETE /v1/nodes/{name}         — remove a node
//	GET    /v1/score?job=J&backend=B
//	GET    /v1/score/batch?job=J[&backend=B...]
//	GET    /v1/tenants              — per-tenant usage, fair-share weight,
//	                                  quota, submission rate limit
//	PUT    /v1/tenants/{name}       — hot-reload a tenant's weight + quota +
//	                                  rate limit (atomic; durable when
//	                                  -data-dir is on)
//	GET    /v1/events[?about=X]
//	GET    /v1/watch[?kind=job|node][&name=X][&resume=T]  — SSE stream;
//	                                  resume=T replays from a prior
//	                                  stream's token instead of snapshotting;
//	                                  every event carries the object's
//	                                  resource version
//	POST   /v1/bind                 — version-conditional bind (BindRequest);
//	                                  409 conflict when another scheduler
//	                                  replica won the job, the scale-out
//	                                  contract for out-of-process schedulers
//	GET    /v1/admin/durability     — WAL lag, snapshot age, replay stats,
//	                                  latched WAL/spill errors
//	POST   /v1/admin/snapshot       — force a compacted snapshot now
//
// Submissions are charged to a tenant (SubmitRequest.Tenant, defaulted to
// "default") and pass flow control (ratelimit.go: per-tenant arrival rate,
// global in-flight cap, drain gate) and the quota admission layer
// (admission.go) before any expensive work; GET /v1/jobs accepts a tenant
// filter.
//
// Error responses carry machine-readable codes: invalid (400),
// not_found (404), conflict (409), compacted (410), unschedulable (422),
// quota_exceeded and rate_limited (429, with Retry-After), and
// overloaded / draining (503). 429 responses carry a Retry-After header
// with the delta-seconds to wait.
package gateway

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/cluster/store"
	"qrio/internal/core"
	"qrio/internal/device"
	"qrio/internal/httpx"
	"qrio/internal/master"
	"qrio/internal/quantum/qasm"
	"qrio/internal/sched"
)

// SyncEvent marks watch notifications that carry a snapshot of current
// state (sent when a watch opens) rather than a live transition.
const SyncEvent = store.EventType("SYNC")

// JobList is the paginated response of GET /v1/jobs. Continue, when set,
// is the opaque token to pass back to fetch the next page.
type JobList struct {
	Items    []api.QuantumJob `json:"items"`
	Continue string           `json:"continue,omitempty"`
}

// BatchSubmitItem is one entry of the POST /v1/jobs/batch response,
// aligned with the request order: either the accepted job or the
// structured error that rejected it.
type BatchSubmitItem struct {
	Name  string           `json:"name"`
	Job   *api.QuantumJob  `json:"job,omitempty"`
	Error *httpx.ErrorBody `json:"error,omitempty"`
}

// Server serves the /v1 gateway over a running orchestrator.
type Server struct {
	Core *core.QRIO
	// PingInterval spaces SSE keep-alive comments (default 15s).
	PingInterval time.Duration
	// MaxInFlight caps concurrent /v1 requests across the whole surface;
	// excess requests are shed with 503 overloaded. 0 means uncapped.
	MaxInFlight int

	// admission is the tenant quota layer (see admission.go); quotas come
	// from Core.Quotas, live usage from the cluster's tenant index.
	admission admission
	// limiter holds the per-tenant submission token buckets (ratelimit.go).
	limiter rateLimiter
	// inflight counts requests for the MaxInFlight shed and the in-flight
	// gauge.
	inflight atomic.Int64
	// metrics holds the gateway's registered families (metrics.go); nil on
	// an uninstrumented deployment.
	metrics *gwMetrics
}

// New builds a gateway for an orchestrator. The rate limiter shares the
// cluster's clock so virtual-time harnesses drive bucket refills.
func New(q *core.QRIO) *Server {
	s := &Server{Core: q}
	s.limiter.clock = q.State.Clock
	if q.Metrics != nil {
		s.metrics = newGWMetrics(q.Metrics, s)
	}
	return s
}

// Handler returns the /v1 routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth) // deprecated alias
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/jobs/batch", s.handleSubmitBatch)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{name}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{name}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/jobs/{name}/logs", s.handleJobLogs)
	mux.HandleFunc("GET /v1/jobs/{name}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/nodes", s.handleListNodes)
	mux.HandleFunc("POST /v1/nodes", s.handleRegisterNode)
	mux.HandleFunc("GET /v1/nodes/{name}", s.handleGetNode)
	mux.HandleFunc("DELETE /v1/nodes/{name}", s.handleDeleteNode)
	mux.HandleFunc("GET /v1/score", s.handleScore)
	mux.HandleFunc("GET /v1/score/batch", s.handleScoreBatch)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("PUT /v1/tenants/{name}", s.handleSetTenant)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/watch", s.handleWatch)
	mux.HandleFunc("POST /v1/bind", s.handleBind)
	mux.HandleFunc("GET /v1/admin/durability", s.handleAdminDurability)
	mux.HandleFunc("POST /v1/admin/snapshot", s.handleAdminSnapshot)
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteError(w, http.StatusNotFound, httpx.CodeNotFound,
			fmt.Errorf("no /v1 route for %s %s", r.Method, r.URL.Path))
	})
	return s.flowControl(s.instrument(mux))
}

// staticFilters are the fleet-invariant admission filters: a job no node
// can ever satisfy on published device characteristics is rejected at
// submit time with the unschedulable code, instead of parking forever in
// the queue. Dynamic conditions (busy slots, committed resources) are
// deliberately excluded — those clear as the fleet drains.
func staticFilters() []sched.FilterPlugin {
	return []sched.FilterPlugin{sched.QubitCount{}, sched.Characteristics{}}
}

// checkSchedulable runs the static admission filters for one request,
// including the circuit-derived qubit demand the Master Server will later
// impose (a 40-qubit circuit is never schedulable on a 27-qubit fleet
// even with no explicit MinQubits). minQubits carries that derived width.
func (s *Server) checkSchedulable(req master.SubmitRequest, minQubits int) error {
	nodes := s.Core.State.Nodes.List()
	if len(nodes) == 0 {
		return nil // an empty fleet queues jobs until vendors register
	}
	reqs := req.Requirements
	reqs.MinQubits = minQubits
	probe := api.QuantumJob{
		ObjectMeta: api.ObjectMeta{Name: req.JobName},
		Spec:       api.JobSpec{Requirements: reqs},
	}
	fw := sched.Framework{Filters: staticFilters()}
	feasible, rejected := fw.FilterNodes(probe, nodes)
	if len(feasible) == 0 {
		return &sched.UnschedulableError{Job: req.JobName, Rejected: rejected}
	}
	return nil
}

// submitOne validates, admission-checks (static schedulability + tenant
// quota) and submits one request through the orchestrator (meta upload +
// containerisation + cluster submit). The tenant is defaulted and
// validated here: the gateway is the multi-tenant front door.
func (s *Server) submitOne(req master.SubmitRequest) (api.QuantumJob, error) {
	if req.Tenant == "" {
		req.Tenant = api.DefaultTenant
	}
	if err := req.Validate(); err != nil {
		return api.QuantumJob{}, err
	}
	// Flow control precedes everything else: a draining daemon accepts no
	// new work, and a tenant over its arrival rate is bounced before any
	// parsing, scoring or quota bookkeeping happens on its behalf.
	if s.Core.Draining() {
		s.countShed("draining")
		return api.QuantumJob{}, &DrainingError{}
	}
	if err := s.rateLimit(req.Tenant); err != nil {
		s.countShed("rate_limited")
		return api.QuantumJob{}, err
	}
	// The circuit-derived qubit width feeds both the static filters and
	// the quota accounting. Unparseable QASM is left for the Master
	// Server's intake, which rejects it with the invalid code.
	minQubits := req.Requirements.MinQubits
	if circ, err := qasm.Parse(req.QASM); err == nil && minQubits < circ.NumQubits {
		minQubits = circ.NumQubits
	}
	if err := s.checkSchedulable(req, minQubits); err != nil {
		return api.QuantumJob{}, err
	}
	shots := req.Shots
	if shots <= 0 {
		shots = api.DefaultShots // quota pricing parity with master intake
	}
	release, err := s.admission.admit(s.Core.State, s.Core.State.QuotaFor(req.Tenant),
		req.Tenant, api.EstimateQubitSeconds(minQubits, shots))
	if err != nil {
		return api.QuantumJob{}, err
	}
	defer release()
	return s.Core.Submit(req)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req master.SubmitRequest
	if err := httpx.DecodeJSON(r, &req); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid, err)
		return
	}
	job, err := s.submitOne(req)
	if err != nil {
		httpx.WriteErr(w, err, http.StatusBadRequest, httpx.CodeInvalid)
		return
	}
	httpx.WriteJSON(w, http.StatusCreated, job)
}

func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []master.SubmitRequest
	if err := httpx.DecodeJSON(r, &reqs); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid, err)
		return
	}
	if len(reqs) == 0 {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid,
			fmt.Errorf("gateway: batch submit needs at least one request"))
		return
	}
	items := make([]BatchSubmitItem, len(reqs))
	for i, req := range reqs {
		items[i].Name = req.JobName
		job, err := s.submitOne(req)
		if err != nil {
			status, code := httpx.StatusOf(err)
			if status == 0 {
				code = httpx.CodeInvalid
			}
			items[i].Error = &httpx.ErrorBody{Code: code, Message: err.Error()}
			continue
		}
		items[i].Job = &job
	}
	httpx.WriteJSON(w, http.StatusOK, items)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	phase := api.JobPhase(q.Get("phase"))
	if phase != "" {
		known := false
		for _, p := range api.JobPhases {
			if p == phase {
				known = true
				break
			}
		}
		if !known {
			httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid,
				fmt.Errorf("gateway: unknown phase %q (one of %v)", phase, api.JobPhases))
			return
		}
	}
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid,
				fmt.Errorf("gateway: bad limit %q", raw))
			return
		}
		limit = v
	}
	node := q.Get("node")
	strategy := q.Get("strategy")
	tenant := q.Get("tenant")
	if tenant != "" && !api.ValidTenantName(tenant) {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid,
			fmt.Errorf("gateway: invalid tenant filter %q", tenant))
		return
	}
	archived := false
	if raw := q.Get("archived"); raw != "" {
		v, err := strconv.ParseBool(raw)
		if err != nil {
			httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid,
				fmt.Errorf("gateway: bad archived %q (want true or false)", raw))
			return
		}
		archived = v
	}
	cont := q.Get("continue")

	// Field filters run inside ListFunc so non-matching jobs are never
	// deep-copied; the continue-token cut happens pre-copy as well.
	keep := func(j *api.QuantumJob) bool {
		if cont != "" && j.Name <= cont {
			return false
		}
		if phase != "" && j.Status.Phase != phase {
			return false
		}
		if node != "" && j.Status.Node != node {
			return false
		}
		if strategy != "" && string(j.Spec.Strategy) != strategy {
			return false
		}
		if tenant != "" && state.TenantOf(j) != tenant {
			return false
		}
		return true
	}
	jobs := s.Core.State.Jobs.ListFunc(func(j api.QuantumJob) bool { return keep(&j) })
	if archived {
		// Merge the archive tier in. Continue tokens are job names and both
		// tiers sort by name, so one token paginates seamlessly across the
		// hot/archive boundary — and a job swept between two pages is found
		// in whichever tier the next page's walk reaches. Hot wins the
		// dedupe: during a sweep's copy window an object can briefly exist
		// in both tiers, and the hot copy is authoritative.
		hot := make(map[string]bool, len(jobs))
		for i := range jobs {
			hot[jobs[i].Name] = true
		}
		for _, j := range s.Core.State.Archived.List(keep) {
			if !hot[j.Name] {
				jobs = append(jobs, j)
			}
		}
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Name < jobs[j].Name })
	out := JobList{Items: []api.QuantumJob{}}
	for _, j := range jobs {
		if limit > 0 && len(out.Items) == limit {
			// One more match exists beyond the page: emit the token.
			out.Continue = out.Items[len(out.Items)-1].Name
			break
		}
		out.Items = append(out.Items, j)
	}
	httpx.WriteJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	j, _, err := s.Core.State.Jobs.Get(name)
	if err != nil {
		// Fall through to the archive tier: retention moves terminal jobs
		// out of the hot store, but history stays addressable by name.
		if entry, ok := s.Core.State.Archived.Get(name); ok {
			httpx.WriteJSON(w, http.StatusOK, entry.Job)
			return
		}
		httpx.WriteErr(w, err, http.StatusNotFound, httpx.CodeNotFound)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, j)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.Core.Cancel(r.PathValue("name"))
	if err != nil {
		httpx.WriteErr(w, err, http.StatusUnprocessableEntity, httpx.CodeInvalid)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, j)
}

func (s *Server) handleJobLogs(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	res, ok := s.Core.State.ResultFor(name)
	if !ok {
		httpx.WriteError(w, http.StatusNotFound, httpx.CodeNotFound,
			fmt.Errorf("no logs for job %q (logs appear once execution finishes)", name))
		return
	}
	httpx.WriteJSON(w, http.StatusOK, res)
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if _, _, err := s.Core.State.Jobs.Get(name); err != nil {
		// Archived jobs keep their event trail as of archival.
		if entry, ok := s.Core.State.Archived.Get(name); ok {
			events := entry.Events
			if events == nil {
				events = []api.Event{}
			}
			httpx.WriteJSON(w, http.StatusOK, events)
			return
		}
		httpx.WriteErr(w, err, http.StatusNotFound, httpx.CodeNotFound)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, s.Core.State.EventsAbout(name))
}

func (s *Server) handleListNodes(w http.ResponseWriter, r *http.Request) {
	nodes := s.Core.State.Nodes.List()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	httpx.WriteJSON(w, http.StatusOK, nodes)
}

func (s *Server) handleRegisterNode(w http.ResponseWriter, r *http.Request) {
	var b device.Backend
	if err := httpx.DecodeJSON(r, &b); err != nil {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid, err)
		return
	}
	// Through the orchestrator, not raw state: the backend also reaches
	// the Meta Server and gets a kubelet.
	if err := s.Core.AddBackend(&b); err != nil {
		httpx.WriteErr(w, err, http.StatusBadRequest, httpx.CodeInvalid)
		return
	}
	n, _, err := s.Core.State.Nodes.Get(b.Name)
	if err != nil {
		httpx.WriteErr(w, err, http.StatusInternalServerError, httpx.CodeInternal)
		return
	}
	httpx.WriteJSON(w, http.StatusCreated, n)
}

func (s *Server) handleGetNode(w http.ResponseWriter, r *http.Request) {
	n, _, err := s.Core.State.Nodes.Get(r.PathValue("name"))
	if err != nil {
		httpx.WriteErr(w, err, http.StatusNotFound, httpx.CodeNotFound)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, n)
}

func (s *Server) handleDeleteNode(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.Core.State.Nodes.Delete(name); err != nil {
		httpx.WriteErr(w, err, http.StatusNotFound, httpx.CodeNotFound)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	job := r.URL.Query().Get("job")
	backend := r.URL.Query().Get("backend")
	if job == "" || backend == "" {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid,
			fmt.Errorf("need job and backend query params"))
		return
	}
	score, err := s.Core.Meta.Score(job, backend)
	if err != nil {
		httpx.WriteErr(w, err, http.StatusUnprocessableEntity, httpx.CodeInvalid)
		return
	}
	httpx.WriteJSON(w, http.StatusOK, map[string]float64{"score": score})
}

func (s *Server) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	job := r.URL.Query().Get("job")
	if job == "" {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid,
			fmt.Errorf("need job query param"))
		return
	}
	backends := r.URL.Query()["backend"]
	if len(backends) == 0 {
		backends = s.Core.Meta.BackendNames()
		sort.Strings(backends)
	}
	httpx.WriteJSON(w, http.StatusOK, s.Core.Meta.ScoreBatch(job, backends, 0))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	about := r.URL.Query().Get("about")
	var events []api.Event
	if about != "" {
		events = s.Core.State.EventsAbout(about)
	} else {
		events = s.Core.State.Events.List()
		sort.Slice(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
	}
	httpx.WriteJSON(w, http.StatusOK, events)
}
