// Multi-tenancy end-to-end: tenant defaulting/validation, the quota
// admission layer with its typed quota_exceeded envelope, the /v1/tenants
// usage listing, and the tenant list filter — all through the Go client.
package gateway_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"qrio/client"
	"qrio/internal/cluster/api"
	"qrio/internal/core"
	"qrio/internal/fidelity"
	"qrio/internal/gateway"
)

// deployCfg stands up an orchestrator with a caller-supplied config plus
// its gateway; start=false leaves the control loops stopped so submitted
// jobs sit in Pending forever (quota tests need a stable backlog).
func deployCfg(t *testing.T, cfg core.Config, start bool, mutate func(*core.QRIO)) (*client.Client, *core.QRIO) {
	t.Helper()
	if cfg.Backends == nil {
		cfg.Backends = twoNodeFleet(t)
	}
	q, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(q)
	}
	if start {
		q.Start()
		t.Cleanup(q.Stop)
	}
	srv := httptest.NewServer(gateway.New(q).Handler())
	t.Cleanup(srv.Close)
	return client.New(srv.URL), q
}

func tenantReq(name, tenant string) client.SubmitRequest {
	req := ghzReq(name)
	req.Tenant = tenant
	return req
}

// TestTenantDefaultingAndValidation: submissions without a tenant land on
// "default"; malformed tenant names are rejected with the invalid code
// before any expensive work.
func TestTenantDefaultingAndValidation(t *testing.T) {
	c, q := deployCfg(t, core.Config{}, false, nil)
	ctx := context.Background()

	job, err := c.Submit(ctx, ghzReq("plain"))
	if err != nil {
		t.Fatal(err)
	}
	if job.Spec.Tenant != api.DefaultTenant {
		t.Fatalf("tenant defaulted to %q, want %q", job.Spec.Tenant, api.DefaultTenant)
	}
	job, err = c.Submit(ctx, tenantReq("owned", "alice"))
	if err != nil || job.Spec.Tenant != "alice" {
		t.Fatalf("tenant submit: %+v, %v", job.Spec, err)
	}
	for _, bad := range []string{"Bad_Tenant", "UPPER", "-lead", "trail-", "sp ace"} {
		if _, err := c.Submit(ctx, tenantReq("bad-"+bad, bad)); !client.IsInvalid(err) {
			t.Fatalf("tenant %q: want invalid, got %v", bad, err)
		}
	}
	// The usage index sees both tenants.
	if u := q.State.TenantUsage("alice"); u.Pending != 1 {
		t.Fatalf("alice usage: %+v", u)
	}
}

// TestTenantQuotaPending: the admission layer rejects the submission that
// would exceed MaxPending with a 429 quota_exceeded envelope, tenants are
// isolated from each other, and draining the queue re-admits.
func TestTenantQuotaPending(t *testing.T) {
	cfg := core.Config{
		TenantQuotas: api.TenantQuotaPolicy{Default: api.TenantQuota{MaxPending: 2}},
	}
	c, _ := deployCfg(t, cfg, false, nil)
	ctx := context.Background()

	for i, name := range []string{"alice-1", "alice-2"} {
		if _, err := c.Submit(ctx, tenantReq(name, "alice")); err != nil {
			t.Fatalf("submit %d under quota: %v", i, err)
		}
	}
	_, err := c.Submit(ctx, tenantReq("alice-3", "alice"))
	if !client.IsQuotaExceeded(err) {
		t.Fatalf("over-quota submit: want quota_exceeded, got %v", err)
	}
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != 429 || apiErr.Code != "quota_exceeded" {
		t.Fatalf("quota envelope: %+v", apiErr)
	}
	// Another tenant is unaffected by alice's backlog.
	if _, err := c.Submit(ctx, tenantReq("bob-1", "bob")); err != nil {
		t.Fatalf("bob blocked by alice's quota: %v", err)
	}
	// Draining alice's queue frees a slot.
	if _, err := c.Cancel(ctx, "alice-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, tenantReq("alice-3", "alice")); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

// TestTenantQuotaActiveAndQubitSeconds: the active-jobs bound trips while
// a job holds a node, clears when it finishes; the qubit-second bound
// prices a submission by circuit width × shots and rejects demand that
// does not fit.
func TestTenantQuotaActiveAndQubitSeconds(t *testing.T) {
	cfg := core.Config{
		Concurrency: 4,
		TenantQuotas: api.TenantQuotaPolicy{
			Tenants: map[string]api.TenantQuota{
				"alice": {MaxActive: 1},
				"carol": {MaxQubitSeconds: 0.01},
			},
		},
	}
	c, _ := deployCfg(t, cfg, true, func(q *core.QRIO) {
		for _, k := range q.Kubelets {
			k.Runtime = func(ctx context.Context, j api.QuantumJob) ([]string, *fidelity.Execution, error) {
				<-ctx.Done() // containers run until cancelled
				return nil, nil, ctx.Err()
			}
		}
	})
	ctx := context.Background()

	if _, err := c.Submit(ctx, tenantReq("alice-run", "alice")); err != nil {
		t.Fatal(err)
	}
	// Wait until the job occupies a node (Scheduled or Running).
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := c.Get(ctx, "alice-run")
		if err != nil {
			t.Fatal(err)
		}
		if j.Status.Phase == api.JobScheduled || j.Status.Phase == api.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alice-run never reached a node: %+v", j.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, err := c.Submit(ctx, tenantReq("alice-blocked", "alice"))
	if !client.IsQuotaExceeded(err) {
		t.Fatalf("active quota: want quota_exceeded, got %v", err)
	}
	// Finishing (cancelling) the active job re-admits.
	if _, err := c.Cancel(ctx, "alice-run"); err != nil {
		t.Fatal(err)
	}
	if j, err := c.Wait(ctx, "alice-run"); err != nil || j.Status.Phase != api.JobCancelled {
		t.Fatalf("cancel active: %+v, %v", j.Status, err)
	}
	if _, err := c.Submit(ctx, tenantReq("alice-after", "alice")); err != nil {
		t.Fatalf("submit after active drained: %v", err)
	}
	if _, err := c.Cancel(ctx, "alice-after"); err != nil {
		t.Fatal(err)
	}

	// carol's quota admits 0.01 qubit-seconds; a 5-qubit, 128-shot GHZ
	// prices at 5×128×1e-3 = 0.64 and is rejected outright.
	_, err = c.Submit(ctx, tenantReq("carol-big", "carol"))
	if !client.IsQuotaExceeded(err) {
		t.Fatalf("qubit-second quota: want quota_exceeded, got %v", err)
	}
}

// TestTenantsEndpointAndListFilter covers GET /v1/tenants (usage, weight,
// quota — including configured-but-idle tenants) and the tenant filter on
// GET /v1/jobs.
func TestTenantsEndpointAndListFilter(t *testing.T) {
	cfg := core.Config{
		TenantWeights: map[string]int{"alice": 3},
		TenantQuotas: api.TenantQuotaPolicy{
			Default: api.TenantQuota{MaxPending: 100},
			Tenants: map[string]api.TenantQuota{"idle": {MaxPending: 7}},
		},
	}
	c, _ := deployCfg(t, cfg, false, nil)
	ctx := context.Background()

	for _, sub := range []struct{ name, tenant string }{
		{"a-1", "alice"}, {"a-2", "alice"}, {"b-1", "bob"},
	} {
		if _, err := c.Submit(ctx, tenantReq(sub.name, sub.tenant)); err != nil {
			t.Fatal(err)
		}
	}
	tenants, err := c.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]client.TenantStatus)
	for _, ts := range tenants {
		byName[ts.Tenant] = ts
	}
	alice, ok := byName["alice"]
	if !ok || alice.Pending != 2 || alice.Weight != 3 || alice.Quota.MaxPending != 100 {
		t.Fatalf("alice status: %+v (ok=%v)", alice, ok)
	}
	if bob := byName["bob"]; bob.Pending != 1 || bob.Weight != 1 {
		t.Fatalf("bob status: %+v", bob)
	}
	// Configured-but-idle tenants appear with zero usage and their quota.
	if idle, ok := byName["idle"]; !ok || idle.Pending != 0 || idle.Quota.MaxPending != 7 {
		t.Fatalf("idle tenant status: %+v (ok=%v)", idle, ok)
	}

	page, err := c.List(ctx, client.ListOptions{Tenant: "alice"})
	if err != nil || len(page.Items) != 2 {
		t.Fatalf("tenant filter: %d items, %v", len(page.Items), err)
	}
	for _, j := range page.Items {
		if j.Spec.Tenant != "alice" {
			t.Fatalf("tenant filter leaked %s (tenant %s)", j.Name, j.Spec.Tenant)
		}
	}
	if _, err := c.List(ctx, client.ListOptions{Tenant: "Not/Valid"}); !client.IsInvalid(err) {
		t.Fatalf("invalid tenant filter: want invalid, got %v", err)
	}
}

// TestQuotaAdmissionConcurrentSubmits: N parallel submissions racing for
// a MaxPending=K quota admit exactly K — the reservation table closes the
// check-then-store window.
func TestQuotaAdmissionConcurrentSubmits(t *testing.T) {
	cfg := core.Config{
		TenantQuotas: api.TenantQuotaPolicy{Default: api.TenantQuota{MaxPending: 3}},
	}
	c, _ := deployCfg(t, cfg, false, nil)
	ctx := context.Background()

	const attempts = 12
	results := make(chan error, attempts)
	for i := 0; i < attempts; i++ {
		go func(i int) {
			_, err := c.Submit(ctx, tenantReq("race-"+string(rune('a'+i)), "racer"))
			results <- err
		}(i)
	}
	admitted, rejected := 0, 0
	for i := 0; i < attempts; i++ {
		err := <-results
		switch {
		case err == nil:
			admitted++
		case client.IsQuotaExceeded(err):
			rejected++
		default:
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if admitted != 3 || rejected != attempts-3 {
		t.Fatalf("admitted %d, rejected %d; want exactly 3 admitted", admitted, rejected)
	}
}
