// Tenant admission control: the gateway's quota layer. Every submission
// is charged to a tenant (JobSpec.Tenant, defaulted and validated here)
// and admitted only while that tenant is under all three bounds of its
// api.TenantQuota — pending jobs, active (Scheduled/Running) jobs, and
// estimated qubit-seconds in flight. Rejections carry the typed
// state.QuotaExceededError, which the httpx envelope maps to HTTP 429
// with the machine-readable "quota_exceeded" code.
//
// The check itself lives in state (state.Cluster.CheckTenantQuota, also
// enforced inside SubmitJob — the choke point no submission surface can
// route around). The gateway layer adds two things: rejection BEFORE any
// expensive work (metadata upload, containerisation), and a per-tenant
// gate held from the quota check to the store commit so concurrent /v1
// submissions of one tenant serialise — the hook-fed usage index updates
// synchronously under the store write, inside the gated window, so two
// racers can never both slip under the last quota slot. Different
// tenants proceed in parallel.
package gateway

import (
	"net/http"
	"sort"
	"sync"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/httpx"
)

// tenantGate serialises one tenant's trips through the submission
// pipeline; refs counts waiters so idle gates can be dropped.
type tenantGate struct {
	mu   sync.Mutex
	refs int
}

// admission holds the per-tenant gates.
type admission struct {
	mu    sync.Mutex
	gates map[string]*tenantGate
}

// acquire locks tenant's gate (creating it on first use).
func (a *admission) acquire(tenant string) *tenantGate {
	a.mu.Lock()
	if a.gates == nil {
		a.gates = make(map[string]*tenantGate)
	}
	g := a.gates[tenant]
	if g == nil {
		g = &tenantGate{}
		a.gates[tenant] = g
	}
	g.refs++
	a.mu.Unlock()
	g.mu.Lock()
	return g
}

// put unlocks tenant's gate and drops it once nobody holds or awaits it.
func (a *admission) put(tenant string, g *tenantGate) {
	g.mu.Unlock()
	a.mu.Lock()
	g.refs--
	if g.refs <= 0 {
		delete(a.gates, tenant)
	}
	a.mu.Unlock()
}

// admit checks one submission against the tenant's quota. On success the
// tenant's gate stays held until release is called — after the pipeline
// stored or rejected the job — so the next submission of this tenant
// reads a usage index that already accounts for this one. Exact by
// construction: the index updates synchronously under the store write,
// inside the window the gate covers.
func (a *admission) admit(st *state.Cluster, quota api.TenantQuota, tenant string, qsec float64) (release func(), err error) {
	if quota.Unlimited() {
		return func() {}, nil
	}
	g := a.acquire(tenant)
	if quotaErr := st.CheckTenantQuota(tenant, qsec); quotaErr != nil {
		a.put(tenant, g)
		return nil, quotaErr
	}
	released := false
	return func() {
		if released {
			return
		}
		released = true
		a.put(tenant, g)
	}, nil
}

// TenantStatus is one row of GET /v1/tenants: the tenant's live usage
// from the cluster index, its fair-share weight and its governing quota.
type TenantStatus struct {
	state.TenantUsage
	Weight    int                 `json:"weight"`
	Quota     api.TenantQuota     `json:"quota"`
	RateLimit api.TenantRateLimit `json:"rateLimit,omitempty"`
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	usages := s.Core.State.TenantUsages()
	seen := make(map[string]bool, len(usages))
	for _, u := range usages {
		seen[u.Tenant] = true
	}
	// Configured-but-idle tenants (live overrides, static quota entries,
	// scheduler weights) are listed too, with zero usage — the operator's
	// full tenancy view.
	for _, cfg := range s.Core.State.TenantConfigList() {
		if !seen[cfg.Name] {
			seen[cfg.Name] = true
			usages = append(usages, state.TenantUsage{Tenant: cfg.Name})
		}
	}
	for t := range s.Core.Quotas.Tenants {
		if !seen[t] {
			seen[t] = true
			usages = append(usages, state.TenantUsage{Tenant: t})
		}
	}
	for t := range s.Core.Scheduler.TenantWeights {
		if !seen[t] {
			seen[t] = true
			usages = append(usages, state.TenantUsage{Tenant: t})
		}
	}
	out := make([]TenantStatus, 0, len(usages))
	for _, u := range usages {
		// Resolution order mirrors the scheduler's: live override first,
		// static flag configuration second.
		weight, ok := s.Core.State.TenantWeight(u.Tenant)
		if !ok {
			weight = 1
			if w := s.Core.Scheduler.TenantWeights[u.Tenant]; w > 0 {
				weight = w
			}
		}
		out = append(out, TenantStatus{
			TenantUsage: u,
			Weight:      weight,
			Quota:       s.Core.State.QuotaFor(u.Tenant),
			RateLimit:   s.Core.State.RateLimitFor(u.Tenant),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	httpx.WriteJSON(w, http.StatusOK, out)
}
