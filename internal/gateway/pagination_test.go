// Pagination under churn: GET /v1/jobs continue tokens are name cursors,
// so they must stay valid while jobs are deleted out from under the
// walker — including the exact job the token names.
package gateway_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"qrio/client"
	"qrio/internal/core"
)

// TestListPaginationTokenSurvivesDeletes walks pages while deleting jobs
// inside the unread window — including the cursor job itself — and
// checks the walk neither errors, nor duplicates, nor skips a survivor.
func TestListPaginationTokenSurvivesDeletes(t *testing.T) {
	c, q := deployCfg(t, core.Config{}, false, nil)
	ctx := context.Background()

	var all []string
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("page-%02d", i)
		if _, err := c.Submit(ctx, ghzReq(name)); err != nil {
			t.Fatal(err)
		}
		all = append(all, name)
	}

	// Page 1 of 4: cursor lands on page-03.
	page, err := c.List(ctx, client.ListOptions{Limit: 4})
	if err != nil || page.Continue != "page-03" {
		t.Fatalf("first page continue = %q, %v", page.Continue, err)
	}
	seen := map[string]int{}
	for _, j := range page.Items {
		seen[j.Name]++
	}
	// Churn inside the window: delete the cursor job itself, one job just
	// past the cursor, and one already-walked job.
	for _, victim := range []string{"page-03", "page-05", "page-01"} {
		if err := q.State.Jobs.Delete(victim); err != nil {
			t.Fatal(err)
		}
	}
	opts := client.ListOptions{Limit: 4, Continue: page.Continue}
	for {
		page, err := c.List(ctx, opts)
		if err != nil {
			t.Fatalf("walk after deletes: %v", err)
		}
		for _, j := range page.Items {
			seen[j.Name]++
		}
		if page.Continue == "" {
			break
		}
		opts.Continue = page.Continue
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("job %s appeared %d times in the walk", name, n)
		}
	}
	// Every survivor past the cursor point was reached; page-05 was
	// legitimately dropped (deleted), page-01/page-03 were behind or at
	// the cursor.
	for _, name := range all {
		switch name {
		case "page-03", "page-05":
			if seen[name] > 1 {
				t.Fatalf("deleted job %s still walked %d times", name, seen[name])
			}
		default:
			if seen[name] != 1 {
				t.Fatalf("survivor %s missed by the walk (seen %d)", name, seen[name])
			}
		}
	}
}

// TestListPaginationUnderConcurrentChurn runs the walker against a
// goroutine deleting sacrificial jobs the whole time: the stable set must
// come back exactly once each, with no error from any page fetch.
func TestListPaginationUnderConcurrentChurn(t *testing.T) {
	c, q := deployCfg(t, core.Config{}, false, nil)
	ctx := context.Background()

	var keep, churn []string
	for i := 0; i < 15; i++ {
		k := fmt.Sprintf("keep-%02d", i)
		ch := fmt.Sprintf("churn-%02d", i)
		for _, name := range []string{k, ch} {
			if _, err := c.Submit(ctx, ghzReq(name)); err != nil {
				t.Fatal(err)
			}
		}
		keep, churn = append(keep, k), append(churn, ch)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, victim := range churn {
			if err := q.State.Jobs.Delete(victim); err != nil {
				t.Errorf("churn delete %s: %v", victim, err)
			}
		}
	}()

	seen := map[string]int{}
	opts := client.ListOptions{Limit: 3}
	for {
		page, err := c.List(ctx, opts)
		if err != nil {
			t.Fatalf("page fetch during churn: %v", err)
		}
		for _, j := range page.Items {
			seen[j.Name]++
		}
		if page.Continue == "" {
			break
		}
		opts.Continue = page.Continue
	}
	wg.Wait()

	for _, name := range keep {
		if seen[name] != 1 {
			t.Fatalf("stable job %s seen %d times (want exactly once)", name, seen[name])
		}
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("job %s duplicated in walk (%d times)", name, n)
		}
	}
}
