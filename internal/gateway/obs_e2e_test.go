// End-to-end tests of the observability surface: /v1/metrics scraped
// mid-lifecycle over an instrumented durable deployment, the typed
// /v1/health payload and its /v1/healthz deprecation alias, the 404
// behaviour of uninstrumented deployments, and the latched-WAL-error
// clear surfacing on both ops endpoints.
package gateway_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"qrio/client"
	"qrio/internal/cluster/api"
	"qrio/internal/cluster/durability"
	"qrio/internal/core"
	"qrio/internal/faults"
	"qrio/internal/obs"
)

// obsFamily returns the named family or fails the test, so assertions
// read as one line per metric.
func obsFamily(t *testing.T, fams []client.MetricFamily, name string) *client.MetricFamily {
	t.Helper()
	f := obs.FindFamily(fams, name)
	if f == nil {
		t.Fatalf("family %s missing from /v1/metrics", name)
	}
	return f
}

// sampleValue returns the value of the first sample matching every given
// label pair (pass none to take the first sample), or fails.
func sampleValue(t *testing.T, f *client.MetricFamily, suffix string, labels ...string) float64 {
	t.Helper()
	for _, s := range f.Samples {
		if suffix != "" && !strings.HasSuffix(s.Name, suffix) {
			continue
		}
		ok := true
		for i := 0; i+1 < len(labels); i += 2 {
			if s.Get(labels[i]) != labels[i+1] {
				ok = false
				break
			}
		}
		if ok {
			return s.Value
		}
	}
	t.Fatalf("family %s: no sample with suffix %q labels %v", f.Name, suffix, labels)
	return 0
}

// TestMetricsEndToEnd runs the full observability loop an operator would:
// deploy a durable, instrumented cluster, push jobs through it, snapshot,
// then scrape /v1/metrics with the client and check that the exposition
// carries live families from every layer — scheduler, state, meta cache,
// gateway, watch hub, durability/archive and faults.
func TestMetricsEndToEnd(t *testing.T) {
	cfg := core.Config{
		Metrics:         obs.NewRegistry(),
		Concurrency:     4,
		NodeConcurrency: 1,
		Durability:      durability.Options{Dir: t.TempDir(), SnapshotInterval: -1},
	}
	c, q := deployCfg(t, cfg, true, nil)
	t.Cleanup(func() { q.Durability.Close() })
	ctx := context.Background()

	// Traffic: three jobs across two tenants, run to completion (the
	// Wait calls also exercise the watch hub), then one admin snapshot.
	for _, sub := range []client.SubmitRequest{
		tenantReq("obs-a1", "alice"),
		tenantReq("obs-a2", "alice"),
		tenantReq("obs-b1", "bob"),
	} {
		if _, err := c.Submit(ctx, sub); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"obs-a1", "obs-a2", "obs-b1"} {
		job, err := c.Wait(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		if job.Status.Phase != api.JobSucceeded {
			t.Fatalf("job %s finished %s", name, job.Status.Phase)
		}
	}
	if _, err := c.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}

	fams, err := c.MetricFamilies(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// The acceptance floor: at least 15 distinct families spanning the
	// six instrumented layers.
	if len(fams) < 15 {
		names := make([]string, len(fams))
		for i, f := range fams {
			names[i] = f.Name
		}
		t.Fatalf("only %d families exposed: %v", len(fams), names)
	}
	for _, name := range []string{
		// scheduler
		"qrio_sched_pass_duration_seconds",
		"qrio_sched_pass_jobs_total",
		"qrio_sched_degraded_episodes_total",
		// state
		"qrio_state_submit_to_bind_seconds",
		"qrio_state_depth_jobs",
		"qrio_state_tenant_binds_total",
		"qrio_state_quota_rejections_total",
		// meta score cache
		"qrio_meta_cache_events_total",
		"qrio_meta_cache_entries",
		// gateway
		"qrio_gateway_requests_total",
		"qrio_gateway_request_duration_seconds",
		"qrio_gateway_inflight_requests",
		"qrio_gateway_sheds_total",
		// watch hub
		"qrio_watch_active_streams",
		"qrio_watch_fanout_lag_events",
		"qrio_watch_resume_total",
		// durability + archive + faults
		"qrio_durability_wal_appends_total",
		"qrio_durability_snapshot_generation",
		"qrio_archive_resident_entries",
		"qrio_faults_fired_total",
	} {
		obsFamily(t, fams, name)
	}

	// Spot-check values against the lifecycle the test just drove.
	if v := sampleValue(t, obsFamily(t, fams, "qrio_sched_pass_duration_seconds"), "_count"); v < 1 {
		t.Fatalf("scheduler passes observed = %v, want >= 1", v)
	}
	if v := sampleValue(t, obsFamily(t, fams, "qrio_sched_pass_jobs_total"), "", "outcome", "bound"); v < 3 {
		t.Fatalf("bound jobs counted = %v, want >= 3", v)
	}
	if v := sampleValue(t, obsFamily(t, fams, "qrio_state_submit_to_bind_seconds"), "_count"); v != 3 {
		t.Fatalf("submit-to-bind observations = %v, want 3", v)
	}
	if v := sampleValue(t, obsFamily(t, fams, "qrio_state_tenant_binds_total"), "", "tenant", "alice"); v != 2 {
		t.Fatalf("alice binds = %v, want 2", v)
	}
	if v := sampleValue(t, obsFamily(t, fams, "qrio_state_tenant_binds_total"), "", "tenant", "bob"); v != 1 {
		t.Fatalf("bob binds = %v, want 1", v)
	}
	if v := sampleValue(t, obsFamily(t, fams, "qrio_state_depth_jobs"), "", "phase", "terminal"); v != 3 {
		t.Fatalf("terminal depth = %v, want 3", v)
	}
	if v := sampleValue(t, obsFamily(t, fams, "qrio_meta_cache_events_total"), "", "event", "miss"); v < 1 {
		t.Fatalf("meta cache misses = %v, want >= 1", v)
	}
	// The scrape itself rides through the gateway, so the submit route
	// and at least one 200 must already be on the books.
	if v := sampleValue(t, obsFamily(t, fams, "qrio_gateway_requests_total"), "", "route", "POST /v1/jobs", "code", "201"); v != 3 {
		t.Fatalf("submit route count = %v, want 3", v)
	}
	if v := sampleValue(t, obsFamily(t, fams, "qrio_gateway_request_duration_seconds"), "_count", "route", "POST /v1/jobs"); v != 3 {
		t.Fatalf("submit route latency observations = %v, want 3", v)
	}
	if v := sampleValue(t, obsFamily(t, fams, "qrio_durability_wal_appends_total"), ""); v < 3 {
		t.Fatalf("WAL appends = %v, want >= 3", v)
	}
	if v := sampleValue(t, obsFamily(t, fams, "qrio_durability_snapshot_generation"), ""); v != 1 {
		t.Fatalf("snapshot generation = %v, want 1", v)
	}
	if v := sampleValue(t, obsFamily(t, fams, "qrio_durability_snapshot_age_seconds"), ""); v < 0 {
		t.Fatalf("snapshot age = %v, want >= 0 after a snapshot", v)
	}

	// The raw exposition must be byte-stable between consecutive scrapes
	// of a quiet cluster (deterministic ordering is the whole point).
	raw1, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(raw1, "# TYPE qrio_gateway_requests_total counter") {
		t.Fatal("exposition missing TYPE header for qrio_gateway_requests_total")
	}
}

// TestHealthTypedPayload: /v1/health reports per-component status with an
// overall ok on a healthy deployment, and the deprecated /v1/healthz
// alias serves the identical payload.
func TestHealthTypedPayload(t *testing.T) {
	cfg := core.Config{
		Metrics:    obs.NewRegistry(),
		Durability: durability.Options{Dir: t.TempDir(), SnapshotInterval: -1},
	}
	c, q := deployCfg(t, cfg, false, nil)
	t.Cleanup(func() { q.Durability.Close() })
	ctx := context.Background()

	if _, err := c.Submit(ctx, ghzReq("obs-health-1")); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !h.OK || h.Draining {
		t.Fatalf("overall health = %+v", h)
	}
	if h.Store.Status != "ok" || h.Store.Nodes == 0 || h.Store.Jobs != 1 {
		t.Fatalf("store health = %+v", h.Store)
	}
	if h.Scheduler.Status != "ok" || h.Scheduler.Pending != 1 {
		t.Fatalf("scheduler health = %+v (loops stopped, job must stay pending)", h.Scheduler)
	}
	if h.Durability.Status != "ok" || !h.Durability.Enabled || !h.Durability.OK {
		t.Fatalf("durability health = %+v", h.Durability)
	}
	if h.Durability.WALRecords == 0 {
		t.Fatal("durability health shows no WAL records after a submit")
	}
	if h.Archive.Status != "ok" || h.Breaker.Status != "ok" || h.Breaker.State != "closed" {
		t.Fatalf("archive/breaker health = %+v / %+v", h.Archive, h.Breaker)
	}

	// Healthy() (which now targets /v1/health) agrees.
	if err := c.Healthy(ctx); err != nil {
		t.Fatal(err)
	}

	// One deprecation cycle: /v1/healthz serves the same typed payload.
	raw, err := c.Metrics(ctx) // instrumented deployment: metrics live
	if err != nil || raw == "" {
		t.Fatalf("metrics alongside health: %v", err)
	}
	resp, err := http.Get(c.BaseURL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var alias client.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&alias); err != nil {
		t.Fatal(err)
	}
	if alias.Status != h.Status || alias.Store.Jobs != h.Store.Jobs || alias.Durability.Generation != h.Durability.Generation {
		t.Fatalf("/v1/healthz diverged from /v1/health: %+v vs %+v", alias, h)
	}
}

// TestMetricsDisabled: a deployment assembled without a registry answers
// /v1/metrics with the typed 404 envelope instead of an empty exposition,
// so scrapers fail loudly rather than recording silence.
func TestMetricsDisabled(t *testing.T) {
	c, _ := deployCfg(t, core.Config{}, false, nil)
	ctx := context.Background()
	if _, err := c.Metrics(ctx); !client.IsNotFound(err) {
		t.Fatalf("metrics on uninstrumented deployment: err=%v, want not-found envelope", err)
	}
	// Health still works without a registry — the two surfaces are
	// independent.
	if err := c.Healthy(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestHealthSurfacesWALErrorClear drives the failure-and-heal loop from
// PR 8 through the new surfaces: a latched WAL error degrades /v1/health,
// a successful snapshot clears it, and the clear count appears in both
// /v1/admin/durability and the health payload (with the latch gone).
func TestHealthSurfacesWALErrorClear(t *testing.T) {
	reg := faults.NewRegistry(1)
	cfg := core.Config{
		Metrics:    obs.NewRegistry(),
		Faults:     reg,
		Durability: durability.Options{Dir: t.TempDir(), SnapshotInterval: -1},
	}
	c, q := deployCfg(t, cfg, false, nil)
	t.Cleanup(func() { q.Durability.Close() })
	ctx := context.Background()

	// Latch: every WAL append fails while the point is armed.
	reg.Enable(faults.PointWALAppend, faults.Spec{})
	if _, err := c.Submit(ctx, ghzReq("obs-wal-1")); err != nil {
		t.Fatal(err)
	}
	reg.Disable(faults.PointWALAppend)

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.OK {
		t.Fatalf("health with latched WAL error = %+v", h)
	}
	if h.Durability.Status != "degraded" || h.Durability.WALError == "" {
		t.Fatalf("durability health = %+v, want degraded with the latched error", h.Durability)
	}

	// Heal: the snapshot rotates past the broken writer and records the
	// clear, so the episode stays visible after it ends.
	if _, err := c.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := c.Durability(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.WALError != "" || st.WALErrorClears != 1 {
		t.Fatalf("admin durability after heal = %+v, want no error and 1 clear", st)
	}
	if st.LastWALErrorClearedAt.IsZero() {
		t.Fatal("admin durability missing the clear timestamp")
	}
	h, err = c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Durability.Status != "ok" || h.Durability.WALErrorClears != 1 {
		t.Fatalf("health after heal = %+v, want ok with walErrorClears=1", h)
	}
	if h.Durability.LastWALErrorClearedAt == nil || h.Durability.LastWALErrorClearedAt.IsZero() {
		t.Fatalf("health missing the clear timestamp: %+v", h.Durability)
	}

	// The instrumented view tells the same story.
	fams, err := c.MetricFamilies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v := sampleValue(t, obsFamily(t, fams, "qrio_durability_wal_latched_errors"), ""); v != 0 {
		t.Fatalf("latched-error gauge = %v after heal, want 0", v)
	}
	if v := sampleValue(t, obsFamily(t, fams, "qrio_durability_wal_error_clears_total"), ""); v != 1 {
		t.Fatalf("clear counter = %v, want 1", v)
	}
	if v := sampleValue(t, obsFamily(t, fams, "qrio_faults_fired_total"), "", "point", faults.PointWALAppend); v < 1 {
		t.Fatalf("fault fire counter = %v, want >= 1", v)
	}
}
