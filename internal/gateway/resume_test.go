// SSE watch resumption end to end: kill the stream mid-lifecycle, resume
// from the last token, and observe every transition exactly once; stale
// tokens fall back to a full re-list via the compacted error.
package gateway_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"qrio/client"
	"qrio/internal/cluster/api"
	"qrio/internal/core"
	"qrio/internal/gateway"
)

// deployIdle stands up the gateway over an orchestrator whose control
// loops are NOT running, so tests drive every job transition by hand and
// can assert exact event sequences.
func deployIdle(t *testing.T, mutate func(*core.QRIO)) (*client.Client, *core.QRIO) {
	t.Helper()
	q, err := core.New(core.Config{Backends: twoNodeFleet(t)})
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(q)
	}
	srv := httptest.NewServer(gateway.New(q).Handler())
	t.Cleanup(srv.Close)
	return client.New(srv.URL), q
}

// setPhase flips a job's phase directly in the store.
func setPhase(t *testing.T, q *core.QRIO, name string, phase api.JobPhase) {
	t.Helper()
	if _, _, err := q.State.Jobs.Update(name, func(j api.QuantumJob) (api.QuantumJob, error) {
		j.Status.Phase = phase
		if phase.Terminal() {
			now := time.Now()
			j.Status.FinishedAt = &now
		}
		return j, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// nextJobEvent reads job events for one name until the deadline.
func nextJobEvent(t *testing.T, ch <-chan client.WatchEvent, name string) client.WatchEvent {
	t.Helper()
	deadline := time.After(3 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed waiting for %s", name)
			}
			if ev.Job == nil || ev.Job.Name != name {
				continue
			}
			return ev
		case <-deadline:
			t.Fatalf("no event for %s", name)
		}
	}
}

// TestWatchResumeNoMissNoDup is the SSE reconnect contract: kill the
// stream mid-lifecycle, resume with the last token, and the union of both
// streams is every transition exactly once.
func TestWatchResumeNoMissNoDup(t *testing.T) {
	c, q := deployIdle(t, nil)
	ctx := context.Background()

	ctx1, kill := context.WithCancel(ctx)
	events1, err := c.Watch(ctx1, client.WatchOptions{Kind: "job"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, ghzReq("lifecycle")); err != nil {
		t.Fatal(err)
	}
	setPhase(t, q, "lifecycle", api.JobScheduled)

	var seen []client.WatchEvent
	seen = append(seen, nextJobEvent(t, events1, "lifecycle")) // ADDED Pending
	seen = append(seen, nextJobEvent(t, events1, "lifecycle")) // MODIFIED Scheduled
	token := seen[len(seen)-1].Resume
	if token == "" {
		t.Fatal("event carried no resume token")
	}
	kill() // stream dies mid-lifecycle

	// Transitions the dead stream never saw.
	setPhase(t, q, "lifecycle", api.JobRunning)
	setPhase(t, q, "lifecycle", api.JobSucceeded)

	ctx2, cancel2 := context.WithCancel(ctx)
	defer cancel2()
	events2, err := c.Watch(ctx2, client.WatchOptions{Kind: "job", Resume: token})
	if err != nil {
		t.Fatal(err)
	}
	seen = append(seen, nextJobEvent(t, events2, "lifecycle")) // MODIFIED Running
	seen = append(seen, nextJobEvent(t, events2, "lifecycle")) // MODIFIED Succeeded

	wantPhases := []api.JobPhase{api.JobPending, api.JobScheduled, api.JobRunning, api.JobSucceeded}
	counts := map[api.JobPhase]int{}
	for i, ev := range seen {
		if ev.Type == client.EventSync {
			t.Fatalf("resumed stream delivered a SYNC snapshot event: %+v", ev)
		}
		if ev.Job.Status.Phase != wantPhases[i] {
			t.Fatalf("event %d phase %s, want %s", i, ev.Job.Status.Phase, wantPhases[i])
		}
		counts[ev.Job.Status.Phase]++
	}
	for phase, n := range counts {
		if n != 1 {
			t.Fatalf("phase %s observed %d times, want exactly once", phase, n)
		}
	}
	// And the resumed stream carries fresh tokens of its own.
	if seen[len(seen)-1].Resume == "" {
		t.Fatal("resumed stream events carry no tokens")
	}
}

// TestWatchResumeCompactedFallback: a token that aged out of the journal
// is rejected with the typed 410 compacted error, and the documented
// fallback — a fresh snapshot watch — observes current state via SYNC.
func TestWatchResumeCompactedFallback(t *testing.T) {
	c, q := deployIdle(t, func(q *core.QRIO) {
		q.State.Jobs.SetJournalCap(4)
	})
	ctx := context.Background()

	ctx1, kill := context.WithCancel(ctx)
	events1, err := c.Watch(ctx1, client.WatchOptions{Kind: "job"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, ghzReq("churn")); err != nil {
		t.Fatal(err)
	}
	token := nextJobEvent(t, events1, "churn").Resume
	kill()

	// Overflow the journal far past the token.
	for i := 0; i < 64; i++ {
		setPhase(t, q, "churn", api.JobScheduled)
		setPhase(t, q, "churn", api.JobPending)
	}
	setPhase(t, q, "churn", api.JobSucceeded)

	_, err = c.Watch(ctx, client.WatchOptions{Kind: "job", Resume: token})
	if !client.IsCompacted(err) {
		t.Fatalf("stale token err = %v, want compacted", err)
	}

	// The fallback path: fresh watch, SYNC snapshot shows present state.
	ctx2, cancel2 := context.WithCancel(ctx)
	defer cancel2()
	events2, err := c.Watch(ctx2, client.WatchOptions{Kind: "job"})
	if err != nil {
		t.Fatal(err)
	}
	sync := nextJobEvent(t, events2, "churn")
	if sync.Type != client.EventSync || sync.Job.Status.Phase != api.JobSucceeded {
		t.Fatalf("fallback snapshot = %+v, want SYNC Succeeded", sync)
	}

	// Reconnect:true heals the same situation transparently.
	ctx3, cancel3 := context.WithCancel(ctx)
	defer cancel3()
	events3, err := c.Watch(ctx3, client.WatchOptions{Kind: "job", Resume: token, Reconnect: true})
	if err != nil {
		t.Fatalf("reconnecting watch with stale token: %v", err)
	}
	if ev := nextJobEvent(t, events3, "churn"); ev.Type != client.EventSync {
		t.Fatalf("healed stream first event = %+v, want SYNC", ev)
	}
}

// TestWatchMalformedResumeToken pins the 400 invalid envelope.
func TestWatchMalformedResumeToken(t *testing.T) {
	c, _ := deployIdle(t, nil)
	_, err := c.Watch(context.Background(), client.WatchOptions{Resume: "not-a-token"})
	if !client.IsInvalid(err) {
		t.Fatalf("malformed token err = %v, want invalid", err)
	}
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("malformed token envelope = %+v", apiErr)
	}
}
