// End-to-end tests of the /v1/admin ops surface and tenant hot-reload,
// driven through the public Go client like every other gateway test.
package gateway_test

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"qrio/client"
	"qrio/internal/cluster/durability"
	"qrio/internal/core"
)

// TestAdminDurabilityDisabled: an in-memory deployment reports
// enabled=false and refuses manual snapshots with the typed 422 envelope.
func TestAdminDurabilityDisabled(t *testing.T) {
	c, _ := deployCfg(t, core.Config{}, false, nil)
	ctx := context.Background()
	st, err := c.Durability(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Fatalf("in-memory deployment reports durability: %+v", st)
	}
	if _, err := c.Snapshot(ctx); !client.IsInvalid(err) {
		t.Fatalf("snapshot without durability: err=%v, want invalid envelope", err)
	}
}

// TestAdminDurabilityEnabled exercises the ops loop an operator runs: read
// the WAL lag, trigger a snapshot, watch the generation advance and the
// lag reset, and see the same summary in healthz.
func TestAdminDurabilityEnabled(t *testing.T) {
	cfg := core.Config{Durability: durability.Options{Dir: t.TempDir(), SnapshotInterval: -1}}
	c, q := deployCfg(t, cfg, false, nil)
	t.Cleanup(func() { q.Durability.Close() })
	ctx := context.Background()

	if _, err := c.Submit(ctx, ghzReq("adm-1")); err != nil {
		t.Fatal(err)
	}
	st, err := c.Durability(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Generation != 0 {
		t.Fatalf("pre-snapshot stats: %+v", st)
	}
	if st.WALRecords == 0 {
		t.Fatal("submission produced no WAL records")
	}
	lag := st.WALRecords

	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 1 {
		t.Fatalf("generation = %d, want 1", snap.Generation)
	}
	st, err = c.Durability(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 1 || st.Snapshots != 1 {
		t.Fatalf("post-snapshot stats: %+v", st)
	}
	if st.WALRecords >= lag {
		t.Fatalf("WAL lag did not reset: %d -> %d", lag, st.WALRecords)
	}
	if st.LastSnapshotAt.IsZero() || st.LastSnapshotAge == "" {
		t.Fatalf("snapshot time not reported: %+v", st)
	}

	// healthz carries the operator summary of the same facts.
	resp, err := http.Get(c.BaseURL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Durability struct {
			Enabled    bool  `json:"enabled"`
			OK         bool  `json:"ok"`
			Generation int64 `json:"generation"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health.Durability.Enabled || !health.Durability.OK || health.Durability.Generation != 1 {
		t.Fatalf("healthz durability = %+v", health.Durability)
	}
}

// TestSetTenantHotReload: PUT /v1/tenants/{name} changes weight and quota
// atomically, the change shows in GET /v1/tenants immediately, and the
// admission gate enforces the new quota on the very next submission.
func TestSetTenantHotReload(t *testing.T) {
	c, _ := deployCfg(t, core.Config{}, false, nil) // loops stopped: jobs stay Pending
	ctx := context.Background()

	cfg, err := c.SetTenant(ctx, "alice", client.SetTenantRequest{
		Weight: 3,
		Quota:  client.TenantQuota{MaxPending: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "alice" || cfg.Weight != 3 || cfg.Quota.MaxPending != 1 {
		t.Fatalf("returned config: %+v", cfg)
	}

	// The override is visible in the usage listing even with no jobs yet.
	tenants, err := c.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, u := range tenants {
		if u.Tenant == "alice" {
			found = true
			if u.Weight != 3 || u.Quota.MaxPending != 1 {
				t.Fatalf("listing shows stale override: %+v", u)
			}
		}
	}
	if !found {
		t.Fatalf("override tenant missing from listing: %+v", tenants)
	}

	// Admission enforces the live quota...
	req := ghzReq("hot-1")
	req.Tenant = "alice"
	if _, err := c.Submit(ctx, req); err != nil {
		t.Fatal(err)
	}
	req2 := ghzReq("hot-2")
	req2.Tenant = "alice"
	if _, err := c.Submit(ctx, req2); !client.IsQuotaExceeded(err) {
		t.Fatalf("over-quota submit: err=%v, want quota_exceeded", err)
	}
	// ...and a live raise unblocks the tenant with no restart.
	if _, err := c.SetTenant(ctx, "alice", client.SetTenantRequest{
		Weight: 3,
		Quota:  client.TenantQuota{MaxPending: 10},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Submit(ctx, req2); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("submit after quota raise still failing: %v", err)
		}
	}
}

// TestSetTenantInvalid pins the 422 invalid envelope for rejected
// configurations, end to end through the client's error helpers.
func TestSetTenantInvalid(t *testing.T) {
	c, _ := deployCfg(t, core.Config{}, false, nil)
	ctx := context.Background()
	cases := []struct {
		name string
		req  client.SetTenantRequest
	}{
		{"bad tenant name!", client.SetTenantRequest{Weight: 1}},
		{"ok", client.SetTenantRequest{Weight: -2}},
		{"ok", client.SetTenantRequest{Weight: 2_000_000}},
		{"ok", client.SetTenantRequest{Quota: client.TenantQuota{MaxPending: -1}}},
		{"ok", client.SetTenantRequest{Quota: client.TenantQuota{MaxQubitSeconds: -1}}},
	}
	for i, tc := range cases {
		if _, err := c.SetTenant(ctx, tc.name, tc.req); !client.IsInvalid(err) {
			t.Fatalf("case %d (%s): err=%v, want invalid envelope", i, tc.name, err)
		}
	}
	if tenants, _ := c.Tenants(ctx); len(tenants) != 0 {
		t.Fatalf("rejected configs persisted: %+v", tenants)
	}
}
