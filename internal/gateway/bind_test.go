// End-to-end tests of POST /v1/bind — the out-of-process scheduler's
// binding verb — driven through the public Go client like a real replica.
package gateway_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"qrio/client"
	"qrio/internal/core"
	"qrio/internal/gateway"
)

// deployNoSched stands up an orchestrator whose in-process scheduling
// loop is off — the topology a gateway node has when out-of-process
// replicas own binding.
func deployNoSched(t *testing.T) (*client.Client, *core.QRIO) {
	t.Helper()
	q, err := core.New(core.Config{
		Backends:         twoNodeFleet(t),
		DisableScheduler: true,
		NodeConcurrency:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	t.Cleanup(q.Stop)
	srv := httptest.NewServer(gateway.New(q).Handler())
	t.Cleanup(srv.Close)
	return client.New(srv.URL), q
}

// watchVersion reads the watch stream until it yields the named job's
// latest version (SYNC or live event) — exactly how a replica observes
// the version it binds at.
func watchVersion(t *testing.T, c *client.Client, name string) int64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	events, err := c.Watch(ctx, client.WatchOptions{Kind: "job", Name: name})
	if err != nil {
		t.Fatal(err)
	}
	for ev := range events {
		if ev.Job != nil && ev.Job.Name == name {
			if ev.Version <= 0 {
				t.Fatalf("watch event for %s carries version %d, want > 0 (type %s)",
					name, ev.Version, ev.Type)
			}
			return ev.Version
		}
	}
	t.Fatalf("watch ended without an event for %s", name)
	return 0
}

func TestBindThroughGateway(t *testing.T) {
	c, _ := deployNoSched(t)
	ctx := context.Background()

	if _, err := c.Submit(ctx, ghzReq("bind-me")); err != nil {
		t.Fatal(err)
	}
	// The SYNC snapshot must carry the job's resource version — the
	// observation the version-conditional bind commits against.
	v := watchVersion(t, c, "bind-me")

	job, err := c.Bind(ctx, "bind-me", "good", 0.9, v)
	if err != nil {
		t.Fatal(err)
	}
	if job.Status.Node != "good" {
		t.Fatalf("bound node = %q", job.Status.Node)
	}
	// With no in-process scheduler, the remote bind is what drives the
	// lifecycle: the kubelet picks the job up and runs it to completion.
	final, err := c.Wait(ctx, "bind-me")
	if err != nil {
		t.Fatal(err)
	}
	if final.Status.Phase != "Succeeded" {
		t.Fatalf("final phase = %s (%s)", final.Status.Phase, final.Status.Message)
	}

	// A replica still holding the pre-bind version loses with 409: the
	// typed conflict a replica treats as "someone else won, move on".
	if _, err := c.Bind(ctx, "bind-me", "bad", 0.1, v); !client.IsConflict(err) {
		t.Fatalf("stale bind: want conflict, got %v", err)
	}
}

func TestBindValidation(t *testing.T) {
	c, _ := deployNoSched(t)
	ctx := context.Background()

	if _, err := c.Bind(ctx, "", "good", 0, 0); !client.IsInvalid(err) {
		t.Fatalf("bind without job: want invalid, got %v", err)
	}
	if _, err := c.Bind(ctx, "ghost", "", 0, 0); !client.IsInvalid(err) {
		t.Fatalf("bind without node: want invalid, got %v", err)
	}
	if _, err := c.Bind(ctx, "ghost", "good", 0, -1); !client.IsInvalid(err) {
		t.Fatalf("negative version: want invalid, got %v", err)
	}
	if _, err := c.Bind(ctx, "ghost", "good", 0, 0); !client.IsNotFound(err) {
		t.Fatalf("bind unknown job: want not_found, got %v", err)
	}

	// A cancelled job's version moved: binding at the stale observation is
	// a conflict, never a resurrection.
	if _, err := c.Submit(ctx, ghzReq("doomed")); err != nil {
		t.Fatal(err)
	}
	v := watchVersion(t, c, "doomed")
	if _, err := c.Cancel(ctx, "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Bind(ctx, "doomed", "good", 0.5, v); !client.IsConflict(err) {
		t.Fatalf("bind after cancel: want conflict, got %v", err)
	}
	got, err := c.Get(ctx, "doomed")
	if err != nil {
		t.Fatal(err)
	}
	if got.Status.Phase != "Cancelled" {
		t.Fatalf("cancelled job resurrected to %s", got.Status.Phase)
	}
}
