package faults

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestErrorMode pins the default behaviour: an armed point with no
// probability fires on every call, returns *InjectedError carrying the
// point name, and counts fires; disarming silences it again.
func TestErrorMode(t *testing.T) {
	r := NewRegistry(1)
	ctx := context.Background()

	if err := r.Fire(ctx, PointMetaScore); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	r.Enable(PointMetaScore, Spec{})
	err := r.Fire(ctx, PointMetaScore)
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Point != PointMetaScore {
		t.Fatalf("armed error point: got %v, want *InjectedError{%s}", err, PointMetaScore)
	}
	if got := r.Fired(PointMetaScore); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	// Other points stay inert while one is armed.
	if err := r.Fire(ctx, PointWALAppend); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
	r.Disable(PointMetaScore)
	if err := r.Fire(ctx, PointMetaScore); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if armed := r.Armed(); len(armed) != 0 {
		t.Fatalf("Armed after disable = %v", armed)
	}
}

// TestProbabilityDeterminism pins the repo determinism rule: two
// registries with the same seed produce the same fire pattern, and the
// trigger frequency tracks the configured probability.
func TestProbabilityDeterminism(t *testing.T) {
	const n = 1000
	pattern := func(seed int64) []bool {
		r := NewRegistry(seed)
		r.Enable(PointHTTPRoundTrip, Spec{Probability: 0.3})
		out := make([]bool, n)
		for i := range out {
			out[i] = r.Fire(context.Background(), PointHTTPRoundTrip) != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired < n*2/10 || fired > n*4/10 {
		t.Fatalf("probability 0.3 fired %d/%d times", fired, n)
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical patterns")
	}
}

// TestLatencyMode checks the delay actually happens and that a cancelled
// context cuts it short with ctx.Err().
func TestLatencyMode(t *testing.T) {
	r := NewRegistry(1)
	r.Enable(PointKubeletRuntime, Spec{Mode: ModeLatency, Latency: 20 * time.Millisecond})
	start := time.Now()
	if err := r.Fire(context.Background(), PointKubeletRuntime); err != nil {
		t.Fatalf("latency fire: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency fire returned after %s, want >= 20ms", d)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.Enable(PointKubeletRuntime, Spec{Mode: ModeLatency, Latency: time.Hour})
	if err := r.Fire(ctx, PointKubeletRuntime); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled latency fire: got %v, want context.Canceled", err)
	}
}

// TestHangMode checks a hang point blocks until its context ends — the
// stuck-dependency case per-attempt deadlines exist for.
func TestHangMode(t *testing.T) {
	r := NewRegistry(1)
	r.Enable(PointMetaScore, Spec{Mode: ModeHang})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := r.Fire(ctx, PointMetaScore)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang fire: got %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("hang returned after %s, before its context ended", d)
	}
}

// TestParse covers the -faults flag grammar: full entries, defaults, and
// each rejection class.
func TestParse(t *testing.T) {
	r := NewRegistry(1)
	if err := r.Parse(""); err != nil {
		t.Fatalf("empty flag: %v", err)
	}
	spec := "meta.score:error, httpx.roundtrip:latency:0.25:50ms ,wal.append:error:0.5"
	if err := r.Parse(spec); err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	want := []string{"httpx.roundtrip", "meta.score", "wal.append"}
	got := r.Armed()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Armed = %v, want %v", got, want)
	}

	for _, bad := range []string{
		"meta.score",               // missing mode
		":error",                   // missing point
		"meta.score:explode",       // unknown mode
		"meta.score:error:1.5",     // probability out of range
		"meta.score:error:x",       // malformed probability
		"meta.score:latency:1:-5s", // negative latency
		"meta.score:latency:1:soon",
	} {
		if err := NewRegistry(1).Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestResetAndReplace: re-enabling replaces the spec without double
// counting armed points; Reset clears everything.
func TestResetAndReplace(t *testing.T) {
	r := NewRegistry(1)
	r.Enable(PointWALAppend, Spec{Probability: 1})
	r.Enable(PointWALAppend, Spec{Mode: ModeLatency, Latency: time.Millisecond})
	if err := r.Fire(context.Background(), PointWALAppend); err != nil {
		t.Fatalf("replaced spec should be latency (nil error), got %v", err)
	}
	r.Reset()
	if len(r.Armed()) != 0 || r.Fired(PointWALAppend) != 0 {
		t.Fatalf("Reset left state: armed=%v fired=%d", r.Armed(), r.Fired(PointWALAppend))
	}
}

// TestNilRegistryResolvesToDefault: components carry optional *Registry
// fields; a nil receiver must route to faults.Default so the -faults flag
// reaches unwired components.
func TestNilRegistryResolvesToDefault(t *testing.T) {
	Default.Reset()
	t.Cleanup(Default.Reset)
	var r *Registry
	r.Enable("test.point", Spec{})
	if err := r.Fire(context.Background(), "test.point"); err == nil {
		t.Fatal("nil registry did not reach Default's armed point")
	}
	if Default.Fired("test.point") != 1 {
		t.Fatalf("Default.Fired = %d, want 1", Default.Fired("test.point"))
	}
}

// TestWriter wraps an io.Writer: armed → injected error and the payload
// never reaches the substrate; disarmed → passthrough.
func TestWriter(t *testing.T) {
	r := NewRegistry(1)
	var sb strings.Builder
	w := Writer(r, PointArchiveSpill, &sb)

	r.Enable(PointArchiveSpill, Spec{})
	if _, err := io.WriteString(w, "lost"); err == nil {
		t.Fatal("armed writer accepted a write")
	}
	if sb.Len() != 0 {
		t.Fatalf("failed write reached substrate: %q", sb.String())
	}
	r.Disable(PointArchiveSpill)
	if _, err := io.WriteString(w, "kept"); err != nil {
		t.Fatalf("disarmed writer: %v", err)
	}
	if sb.String() != "kept" {
		t.Fatalf("substrate = %q, want %q", sb.String(), "kept")
	}
}

// TestRoundTripper wraps a transport: armed → request fails before the
// wire; disarmed → the backend answers.
func TestRoundTripper(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits++
	}))
	defer srv.Close()

	r := NewRegistry(1)
	hc := &http.Client{Transport: RoundTripper(r, PointHTTPRoundTrip, nil)}
	r.Enable(PointHTTPRoundTrip, Spec{})
	if _, err := hc.Get(srv.URL); err == nil {
		t.Fatal("armed round trip succeeded")
	}
	if hits != 0 {
		t.Fatalf("failed round trip reached the server %d times", hits)
	}
	r.Disable(PointHTTPRoundTrip)
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("disarmed round trip: %v", err)
	}
	resp.Body.Close()
	if hits != 1 {
		t.Fatalf("server hits = %d, want 1", hits)
	}
}
