// Package faults is QRIO's fault-injection seam: a registry of named
// fault points threaded through the dependency edges a production
// deployment can lose — the shared HTTP round trip, the Meta-Server
// scorer, the kubelet container runtime, the WAL append path and the
// archive spill writer. A point that is not enabled costs one atomic load
// (the registry tracks how many points are armed), so the hooks stay in
// production builds; tests and the qrio daemon's -faults flag arm them to
// rehearse outages deterministically.
//
// Three failure modes are injectable per point, each with a seeded
// trigger probability:
//
//   - error:   the call fails immediately with an *InjectedError
//   - latency: the call is delayed (context-aware) before proceeding
//   - hang:    the call blocks until its context is cancelled — the
//     stuck-dependency case retry deadlines must bound
//
// Probabilistic draws go through an explicitly seeded *rand.Rand (the
// repo-wide determinism rule): the same seed and call sequence reproduces
// the same storm.
package faults

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The fault points QRIO threads through its dependency edges. Components
// fire these by name; arming any other name is allowed (the registry is
// just a string keyspace) but reaches nothing.
const (
	// PointHTTPRoundTrip fails/delays every request issued through the
	// shared httpx client transport (master, meta, apiserver, gateway
	// clients).
	PointHTTPRoundTrip = "httpx.roundtrip"
	// PointMetaScore fails/delays Meta-Server scoring calls — the
	// scheduler's ranking dependency.
	PointMetaScore = "meta.score"
	// PointKubeletRuntime fails/delays container runtime invocations on
	// every node.
	PointKubeletRuntime = "kubelet.runtime"
	// PointWALAppend fails WAL appends (the durability layer latches the
	// first error, exactly like a real disk fault).
	PointWALAppend = "wal.append"
	// PointArchiveSpill fails archive spill writes.
	PointArchiveSpill = "archive.spill"
)

// Mode is a fault point's failure behaviour.
type Mode string

const (
	ModeError   Mode = "error"
	ModeLatency Mode = "latency"
	ModeHang    Mode = "hang"
)

// Spec arms one fault point.
type Spec struct {
	// Mode selects the failure behaviour (default ModeError).
	Mode Mode
	// Probability is the per-call trigger chance in (0, 1]; 0 means 1
	// (every call), so the common "always fail" case needs no field.
	Probability float64
	// Latency is the added delay for ModeLatency (default 10ms).
	Latency time.Duration
}

// InjectedError is the error every ModeError trigger returns; tests and
// retry classifiers can identify injected failures with errors.As.
type InjectedError struct{ Point string }

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected failure at %s", e.Point)
}

// Registry holds armed fault points. The zero value (and nil) is an
// inert registry: Fire returns nil after one atomic load. One process
// typically shares Default, but tests build private registries so
// parallel packages cannot see each other's storms.
type Registry struct {
	armed atomic.Int32 // number of enabled points: the fast-path gate

	mu     sync.Mutex
	points map[string]Spec
	rng    *rand.Rand
	fired  map[string]int64
}

// Default is the process-wide registry production wiring resolves nil
// registry fields to; the qrio daemon's -faults flag arms points here.
var Default = NewRegistry(1)

// NewRegistry builds an inert registry whose probabilistic draws use the
// given seed.
func NewRegistry(seed int64) *Registry {
	return &Registry{
		points: make(map[string]Spec),
		rng:    rand.New(rand.NewSource(seed)),
		fired:  make(map[string]int64),
	}
}

// or resolves a possibly-nil registry to Default, so components carrying
// an optional *Registry field need no wiring to stay injectable.
func or(r *Registry) *Registry {
	if r != nil {
		return r
	}
	return Default
}

// Enable arms a point. Enabling an already-armed point replaces its spec.
func (r *Registry) Enable(point string, s Spec) {
	r = or(r)
	if s.Mode == "" {
		s.Mode = ModeError
	}
	if s.Probability < 0 || s.Probability > 1 {
		s.Probability = 1
	}
	if s.Mode == ModeLatency && s.Latency <= 0 {
		s.Latency = 10 * time.Millisecond
	}
	r.mu.Lock()
	if r.points == nil {
		r.points = make(map[string]Spec)
	}
	if _, on := r.points[point]; !on {
		r.armed.Add(1)
	}
	r.points[point] = s
	r.mu.Unlock()
}

// Disable disarms a point (no-op when it was not armed).
func (r *Registry) Disable(point string) {
	r = or(r)
	r.mu.Lock()
	if _, on := r.points[point]; on {
		delete(r.points, point)
		r.armed.Add(-1)
	}
	r.mu.Unlock()
}

// Reset disarms every point and clears fire counts.
func (r *Registry) Reset() {
	r = or(r)
	r.mu.Lock()
	r.points = make(map[string]Spec)
	r.fired = make(map[string]int64)
	r.armed.Store(0)
	r.mu.Unlock()
}

// Fired reports how many times a point has triggered (any mode).
func (r *Registry) Fired(point string) int64 {
	r = or(r)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fired[point]
}

// Fire evaluates one pass through a fault point. It returns nil unless
// the point is armed and its probability draw triggers; then ModeError
// returns an *InjectedError, ModeLatency sleeps (honouring ctx) and
// returns nil, and ModeHang blocks until ctx is cancelled and returns
// ctx.Err(). Safe on a nil registry (resolves to Default).
func (r *Registry) Fire(ctx context.Context, point string) error {
	r = or(r)
	if r.armed.Load() == 0 {
		return nil
	}
	r.mu.Lock()
	s, on := r.points[point]
	if !on {
		r.mu.Unlock()
		return nil
	}
	if s.Probability > 0 && s.Probability < 1 && r.rng.Float64() >= s.Probability {
		r.mu.Unlock()
		return nil
	}
	if r.fired == nil {
		r.fired = make(map[string]int64)
	}
	r.fired[point]++
	r.mu.Unlock()
	switch s.Mode {
	case ModeLatency:
		t := time.NewTimer(s.Latency)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case ModeHang:
		<-ctx.Done()
		return ctx.Err()
	default:
		return &InjectedError{Point: point}
	}
}

// Parse arms points from a flag string of comma-separated entries, each
//
//	point:mode[:probability[:latency]]
//
// e.g. "meta.score:error", "httpx.roundtrip:latency:0.3:50ms",
// "wal.append:error:0.01". Unknown modes or malformed numbers are
// rejected; an empty string is a no-op.
func (r *Registry) Parse(flag string) error {
	flag = strings.TrimSpace(flag)
	if flag == "" {
		return nil
	}
	for _, entry := range strings.Split(flag, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 || parts[0] == "" {
			return fmt.Errorf("faults: malformed entry %q (want point:mode[:probability[:latency]])", entry)
		}
		s := Spec{Mode: Mode(parts[1])}
		switch s.Mode {
		case ModeError, ModeLatency, ModeHang:
		default:
			return fmt.Errorf("faults: %s: unknown mode %q (error, latency or hang)", parts[0], parts[1])
		}
		if len(parts) > 2 && parts[2] != "" {
			p, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || p < 0 || p > 1 {
				return fmt.Errorf("faults: %s: probability %q out of [0,1]", parts[0], parts[2])
			}
			s.Probability = p
		}
		if len(parts) > 3 && parts[3] != "" {
			d, err := time.ParseDuration(parts[3])
			if err != nil || d < 0 {
				return fmt.Errorf("faults: %s: bad latency %q", parts[0], parts[3])
			}
			s.Latency = d
		}
		r.Enable(parts[0], s)
	}
	return nil
}

// Armed lists the armed point names, sorted — the daemon logs this at
// startup so an accidentally-armed production fault is loud.
func (r *Registry) Armed() []string {
	r = or(r)
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.points))
	for p := range r.points {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// RoundTripper wraps an http.RoundTripper with a fault point evaluated
// before every request, under the request's context.
func RoundTripper(r *Registry, point string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultRT{reg: or(r), point: point, base: base}
}

type faultRT struct {
	reg   *Registry
	point string
	base  http.RoundTripper
}

func (f *faultRT) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := f.reg.Fire(req.Context(), f.point); err != nil {
		return nil, err
	}
	return f.base.RoundTrip(req)
}

// Writer wraps an io.Writer with a fault point evaluated before every
// write — the archive spill / WAL substrate hook. Writes carry no
// context, so ModeHang points block until the registry is disarmed only
// via their (background) context: don't arm hang on writer points.
func Writer(r *Registry, point string, w io.Writer) io.Writer {
	return &faultWriter{reg: or(r), point: point, w: w}
}

type faultWriter struct {
	reg   *Registry
	point string
	w     io.Writer
}

func (f *faultWriter) Write(p []byte) (int, error) {
	if err := f.reg.Fire(context.Background(), f.point); err != nil {
		return 0, err
	}
	return f.w.Write(p)
}
