// Package device models quantum backends: the calibration surface a QRIO
// vendor must publish for every cluster node (paper §3.1 — the backend.py
// analogue, serialised here as JSON), aggregate labels used by the
// scheduler's filtering phase, and the Table 2 fleet generator used
// throughout the paper's evaluation.
package device

import (
	"encoding/json"
	"fmt"
	"sort"

	"qrio/internal/graph"
	"qrio/internal/quantum/noise"
)

// Backend describes one quantum device (real or simulated). It carries the
// mandatory vendor-supplied calibration of §3.1: coupling map, two-qubit
// and single-qubit error rates, readout error and length, T1/T2 times and
// basis gates — plus the node's classical capacity used for scheduling.
type Backend struct {
	Name      string
	NumQubits int

	Coupling *graph.Graph

	// TwoQubitErr maps each coupling edge (low, high) to its gate error.
	TwoQubitErr map[[2]int]float64
	// OneQubitErr, ReadoutErr, ReadoutLenNS, T1us and T2us are per qubit.
	OneQubitErr  []float64
	ReadoutErr   []float64
	ReadoutLenNS []float64
	T1us         []float64
	T2us         []float64

	BasisGates []string

	// Classical co-resources of the hosting node.
	CPUMillis int64 // CPU capacity in millicores
	MemoryMB  int64
}

// DefaultBasis is the paper's basis gate set (Table 2).
var DefaultBasis = []string{"u1", "u2", "u3", "cx"}

// Validate checks structural consistency.
func (b *Backend) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("device: backend has no name")
	}
	if b.NumQubits <= 0 {
		return fmt.Errorf("device %s: non-positive qubit count", b.Name)
	}
	if b.Coupling == nil || b.Coupling.NumVertices() != b.NumQubits {
		return fmt.Errorf("device %s: coupling map size mismatch", b.Name)
	}
	for _, e := range b.Coupling.Edges() {
		if _, ok := b.TwoQubitErr[e]; !ok {
			return fmt.Errorf("device %s: edge %v has no two-qubit error", b.Name, e)
		}
	}
	for name, s := range map[string][]float64{
		"one-qubit error": b.OneQubitErr,
		"readout error":   b.ReadoutErr,
		"readout length":  b.ReadoutLenNS,
		"T1":              b.T1us,
		"T2":              b.T2us,
	} {
		if len(s) != b.NumQubits {
			return fmt.Errorf("device %s: %s has %d entries, want %d", b.Name, name, len(s), b.NumQubits)
		}
	}
	for e, p := range b.TwoQubitErr {
		if p < 0 || p >= 1 {
			return fmt.Errorf("device %s: edge %v error %g out of [0,1)", b.Name, e, p)
		}
	}
	if len(b.BasisGates) == 0 {
		return fmt.Errorf("device %s: empty basis gate set", b.Name)
	}
	return nil
}

// EdgeError returns the two-qubit error of the (a, b) coupling edge and
// whether the edge exists.
func (b *Backend) EdgeError(a, c int) (float64, bool) {
	e, ok := b.TwoQubitErr[noise.NormPair(a, c)]
	return e, ok
}

// AvgTwoQubitErr is the mean two-qubit error over coupling edges; this is
// the headline label the scheduler filters on (Fig. 10). Edges are summed
// in sorted order so the value is bit-for-bit deterministic.
func (b *Backend) AvgTwoQubitErr() float64 {
	edges := b.Coupling.Edges()
	if len(edges) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range edges {
		s += b.TwoQubitErr[e]
	}
	return s / float64(len(edges))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// AvgOneQubitErr is the mean single-qubit gate error.
func (b *Backend) AvgOneQubitErr() float64 { return mean(b.OneQubitErr) }

// AvgReadoutErr is the mean readout error.
func (b *Backend) AvgReadoutErr() float64 { return mean(b.ReadoutErr) }

// AvgT1us is the mean T1 in microseconds.
func (b *Backend) AvgT1us() float64 { return mean(b.T1us) }

// AvgT2us is the mean T2 in microseconds.
func (b *Backend) AvgT2us() float64 { return mean(b.T2us) }

// NoiseModel converts the calibration into the simulators' noise model.
func (b *Backend) NoiseModel() *noise.Model {
	m := &noise.Model{
		NumQubits:       b.NumQubits,
		OneQubit:        append([]float64(nil), b.OneQubitErr...),
		Readout:         append([]float64(nil), b.ReadoutErr...),
		TwoQubit:        make(map[[2]int]float64, len(b.TwoQubitErr)),
		TwoQubitDefault: 0.99, // off-coupling 2q gates should never happen; make them fatal to fidelity
	}
	for e, p := range b.TwoQubitErr {
		m.TwoQubit[e] = p
	}
	return m
}

// backendJSON is the serialised form — the repo's stand-in for the vendor
// backend.py file that each node and the Meta Server keep (§3.1).
type backendJSON struct {
	Name         string    `json:"name"`
	NumQubits    int       `json:"num_qubits"`
	CouplingMap  [][2]int  `json:"coupling_map"`
	TwoQubitErr  []edgeErr `json:"two_qubit_error"`
	OneQubitErr  []float64 `json:"one_qubit_error"`
	ReadoutErr   []float64 `json:"readout_error"`
	ReadoutLenNS []float64 `json:"readout_length_ns"`
	T1us         []float64 `json:"t1_us"`
	T2us         []float64 `json:"t2_us"`
	BasisGates   []string  `json:"basis_gates"`
	CPUMillis    int64     `json:"cpu_millis"`
	MemoryMB     int64     `json:"memory_mb"`
}

type edgeErr struct {
	A   int     `json:"a"`
	B   int     `json:"b"`
	Err float64 `json:"err"`
}

// MarshalJSON implements json.Marshaler.
func (b *Backend) MarshalJSON() ([]byte, error) {
	j := backendJSON{
		Name:         b.Name,
		NumQubits:    b.NumQubits,
		CouplingMap:  b.Coupling.Edges(),
		OneQubitErr:  b.OneQubitErr,
		ReadoutErr:   b.ReadoutErr,
		ReadoutLenNS: b.ReadoutLenNS,
		T1us:         b.T1us,
		T2us:         b.T2us,
		BasisGates:   b.BasisGates,
		CPUMillis:    b.CPUMillis,
		MemoryMB:     b.MemoryMB,
	}
	edges := make([]edgeErr, 0, len(b.TwoQubitErr))
	for e, p := range b.TwoQubitErr {
		edges = append(edges, edgeErr{A: e[0], B: e[1], Err: p})
	}
	sort.Slice(edges, func(i, k int) bool {
		if edges[i].A != edges[k].A {
			return edges[i].A < edges[k].A
		}
		return edges[i].B < edges[k].B
	})
	j.TwoQubitErr = edges
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (b *Backend) UnmarshalJSON(data []byte) error {
	var j backendJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	g := graph.New(j.NumQubits)
	for _, e := range j.CouplingMap {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return fmt.Errorf("device %s: %w", j.Name, err)
		}
	}
	b.Name = j.Name
	b.NumQubits = j.NumQubits
	b.Coupling = g
	b.TwoQubitErr = make(map[[2]int]float64, len(j.TwoQubitErr))
	for _, e := range j.TwoQubitErr {
		b.TwoQubitErr[noise.NormPair(e.A, e.B)] = e.Err
	}
	b.OneQubitErr = j.OneQubitErr
	b.ReadoutErr = j.ReadoutErr
	b.ReadoutLenNS = j.ReadoutLenNS
	b.T1us = j.T1us
	b.T2us = j.T2us
	b.BasisGates = j.BasisGates
	b.CPUMillis = j.CPUMillis
	b.MemoryMB = j.MemoryMB
	return b.Validate()
}

// String summarises the backend.
func (b *Backend) String() string {
	return fmt.Sprintf("Backend(%s: %dq, %d edges, avg2q=%.3f)",
		b.Name, b.NumQubits, b.Coupling.NumEdges(), b.AvgTwoQubitErr())
}
