package device

import (
	"fmt"
	"math/rand"

	"qrio/internal/graph"
	"qrio/internal/quantum/noise"
)

// FleetSpec parameterises the random-device generator of §4.1 / Table 2.
type FleetSpec struct {
	// QubitCounts and EdgeProbs are crossed to produce one device per pair.
	QubitCounts []int
	EdgeProbs   []float64
	// MaxDegree caps qubit connectivity (the paper limits to 4).
	MaxDegree int
	// ErrLow/ErrHigh bound the per-device mean error draw. Table 2 gives
	// 0.01–0.7. See DESIGN.md §1: each device draws a mean in this range
	// and per-edge/per-qubit rates jitter around it, so device *averages*
	// spread across the range (required for the Fig. 10 ramp).
	ErrLow, ErrHigh float64
	// OneQubitScale relates single-qubit to two-qubit error means (§2.1:
	// "two-qubit operations are especially noisy").
	OneQubitScale float64
	// Jitter is the relative spread of per-edge/per-qubit rates around the
	// device mean.
	Jitter float64
	// ReadoutChoices and T1T2Choices are sampled per device (Table 2).
	ReadoutChoices []float64
	T1T2Choices    []float64 // microseconds
	ReadoutLenNS   float64
	// CPU/memory capacities cycled across nodes.
	CPUMillisChoices []int64
	MemoryMBChoices  []int64
	Seed             int64
}

// DefaultFleetSpec reproduces Table 2: 10 qubit counts x 10 edge
// probabilities = 100 simulated devices. The qubit list follows §4.1's text
// (15..100); Table 2's first entry "5" conflicts with the 10-qubit jobs the
// paper schedules, see DESIGN.md.
func DefaultFleetSpec() FleetSpec {
	return FleetSpec{
		QubitCounts:      []int{15, 20, 27, 35, 50, 60, 78, 85, 95, 100},
		EdgeProbs:        []float64{0.1, 0.15, 0.3, 0.45, 0.54, 0.67, 0.7, 0.78, 0.89, 0.98},
		MaxDegree:        4,
		ErrLow:           0.01,
		ErrHigh:          0.7,
		OneQubitScale:    0.3,
		Jitter:           0.2,
		ReadoutChoices:   []float64{0.05, 0.15},
		T1T2Choices:      []float64{500e3, 100e3},
		ReadoutLenNS:     30,
		CPUMillisChoices: []int64{2000, 4000, 8000, 16000},
		MemoryMBChoices:  []int64{2048, 4096, 8192, 16384},
		Seed:             42,
	}
}

// Validate sanity-checks the spec.
func (s FleetSpec) Validate() error {
	if len(s.QubitCounts) == 0 || len(s.EdgeProbs) == 0 {
		return fmt.Errorf("device: fleet spec needs qubit counts and edge probs")
	}
	if s.ErrLow < 0 || s.ErrHigh >= 1 || s.ErrLow > s.ErrHigh {
		return fmt.Errorf("device: bad error range [%g,%g]", s.ErrLow, s.ErrHigh)
	}
	if s.MaxDegree < 2 {
		return fmt.Errorf("device: max degree %d too small", s.MaxDegree)
	}
	if len(s.ReadoutChoices) == 0 || len(s.T1T2Choices) == 0 {
		return fmt.Errorf("device: fleet spec needs readout and T1/T2 choices")
	}
	return nil
}

// GenerateFleet builds the full device testbed: one backend per
// (qubit count, edge probability) pair, deterministically from the seed.
func GenerateFleet(spec FleetSpec) ([]*Backend, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var fleet []*Backend
	idx := 0
	for _, nq := range spec.QubitCounts {
		for _, p := range spec.EdgeProbs {
			name := fmt.Sprintf("sim-q%d-p%03d", nq, int(p*100))
			b, err := generate(name, nq, p, spec, rng, idx)
			if err != nil {
				return nil, err
			}
			fleet = append(fleet, b)
			idx++
		}
	}
	return fleet, nil
}

// GenerateBackend builds a single random backend outside a fleet sweep.
func GenerateBackend(name string, numQubits int, edgeProb float64, spec FleetSpec, seed int64) (*Backend, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return generate(name, numQubits, edgeProb, spec, rand.New(rand.NewSource(seed)), 0)
}

func generate(name string, nq int, edgeProb float64, spec FleetSpec, rng *rand.Rand, idx int) (*Backend, error) {
	g := graph.RandomConnected(nq, edgeProb, spec.MaxDegree, rng)
	// Device-level mean error, then jittered per edge/qubit (DESIGN.md §1).
	mu := spec.ErrLow + rng.Float64()*(spec.ErrHigh-spec.ErrLow)
	jittered := func(center float64) float64 {
		v := center * (1 + spec.Jitter*(2*rng.Float64()-1))
		if v < 0.001 {
			v = 0.001
		}
		if v > 0.95 {
			v = 0.95
		}
		return v
	}
	b := &Backend{
		Name:        name,
		NumQubits:   nq,
		Coupling:    g,
		TwoQubitErr: make(map[[2]int]float64, g.NumEdges()),
		BasisGates:  append([]string(nil), DefaultBasis...),
	}
	for _, e := range g.Edges() {
		b.TwoQubitErr[noise.NormPair(e[0], e[1])] = jittered(mu)
	}
	ro := spec.ReadoutChoices[rng.Intn(len(spec.ReadoutChoices))]
	t1 := spec.T1T2Choices[rng.Intn(len(spec.T1T2Choices))]
	t2 := spec.T1T2Choices[rng.Intn(len(spec.T1T2Choices))]
	oneMu := mu * spec.OneQubitScale
	for q := 0; q < nq; q++ {
		b.OneQubitErr = append(b.OneQubitErr, jittered(oneMu))
		b.ReadoutErr = append(b.ReadoutErr, ro)
		b.ReadoutLenNS = append(b.ReadoutLenNS, spec.ReadoutLenNS)
		b.T1us = append(b.T1us, t1)
		b.T2us = append(b.T2us, t2)
	}
	if len(spec.CPUMillisChoices) > 0 {
		b.CPUMillis = spec.CPUMillisChoices[idx%len(spec.CPUMillisChoices)]
	} else {
		b.CPUMillis = 4000
	}
	if len(spec.MemoryMBChoices) > 0 {
		b.MemoryMB = spec.MemoryMBChoices[idx%len(spec.MemoryMBChoices)]
	} else {
		b.MemoryMB = 4096
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// UniformBackend builds a backend with a fixed topology and uniform error
// rates — the §4.4 experiment uses three of these (tree/ring/line) so the
// topology choice is isolated from error-rate effects.
func UniformBackend(name string, coupling *graph.Graph, e2, e1, readout, t1us, t2us float64) (*Backend, error) {
	nq := coupling.NumVertices()
	b := &Backend{
		Name:        name,
		NumQubits:   nq,
		Coupling:    coupling,
		TwoQubitErr: make(map[[2]int]float64, coupling.NumEdges()),
		BasisGates:  append([]string(nil), DefaultBasis...),
		CPUMillis:   4000,
		MemoryMB:    4096,
	}
	for _, e := range coupling.Edges() {
		b.TwoQubitErr[noise.NormPair(e[0], e[1])] = e2
	}
	for q := 0; q < nq; q++ {
		b.OneQubitErr = append(b.OneQubitErr, e1)
		b.ReadoutErr = append(b.ReadoutErr, readout)
		b.ReadoutLenNS = append(b.ReadoutLenNS, 30)
		b.T1us = append(b.T1us, t1us)
		b.T2us = append(b.T2us, t2us)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}
