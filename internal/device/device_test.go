package device

import (
	"encoding/json"
	"math"
	"testing"

	"qrio/internal/graph"
)

func TestDefaultFleetMatchesTable2(t *testing.T) {
	spec := DefaultFleetSpec()
	fleet, err := GenerateFleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 100 {
		t.Fatalf("fleet size = %d, want 100", len(fleet))
	}
	seenQubits := map[int]int{}
	for _, b := range fleet {
		if err := b.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", b.Name, err)
		}
		seenQubits[b.NumQubits]++
		if !b.Coupling.Connected() {
			t.Errorf("%s: disconnected coupling map", b.Name)
		}
		if d := b.Coupling.MaxDegree(); d > spec.MaxDegree+1 {
			t.Errorf("%s: degree %d exceeds cap", b.Name, d)
		}
		// Readout from the Table 2 choices.
		ro := b.ReadoutErr[0]
		if ro != 0.05 && ro != 0.15 {
			t.Errorf("%s: readout %v not in {0.05, 0.15}", b.Name, ro)
		}
		t1 := b.T1us[0]
		if t1 != 500e3 && t1 != 100e3 {
			t.Errorf("%s: T1 %v not in {500e3, 100e3}", b.Name, t1)
		}
		if b.ReadoutLenNS[0] != 30 {
			t.Errorf("%s: readout length %v != 30ns", b.Name, b.ReadoutLenNS[0])
		}
	}
	for _, nq := range spec.QubitCounts {
		if seenQubits[nq] != 10 {
			t.Errorf("qubit count %d appears %d times, want 10", nq, seenQubits[nq])
		}
	}
}

func TestFleetIsDeterministic(t *testing.T) {
	a, err := GenerateFleet(DefaultFleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFleet(DefaultFleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].AvgTwoQubitErr() != b[i].AvgTwoQubitErr() {
			t.Fatalf("fleet not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
		if !a[i].Coupling.Equal(b[i].Coupling) {
			t.Fatalf("coupling maps differ at %d", i)
		}
	}
}

func TestFleetAvgErrorsSpreadAcrossRange(t *testing.T) {
	// The DESIGN.md substitution: device average 2q errors must spread
	// across [ErrLow, ErrHigh], not concentrate at the midpoint — Fig. 10
	// depends on this.
	fleet, err := GenerateFleet(DefaultFleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	low, high := 0, 0
	for _, b := range fleet {
		avg := b.AvgTwoQubitErr()
		if avg < 0.2 {
			low++
		}
		if avg > 0.5 {
			high++
		}
	}
	if low < 10 || high < 10 {
		t.Fatalf("avg 2q errors not spread: %d below 0.2, %d above 0.5", low, high)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	fleet, err := GenerateFleet(DefaultFleetSpec())
	if err != nil {
		t.Fatal(err)
	}
	b := fleet[7]
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back Backend
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != b.Name || back.NumQubits != b.NumQubits {
		t.Fatal("identity lost in round trip")
	}
	if !back.Coupling.Equal(b.Coupling) {
		t.Fatal("coupling lost in round trip")
	}
	if math.Abs(back.AvgTwoQubitErr()-b.AvgTwoQubitErr()) > 1e-12 {
		t.Fatal("errors lost in round trip")
	}
	if back.CPUMillis != b.CPUMillis || back.MemoryMB != b.MemoryMB {
		t.Fatal("classical capacity lost in round trip")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	// An edge without a recorded error must fail validation.
	bad := `{"name":"x","num_qubits":2,"coupling_map":[[0,1]],
		"two_qubit_error":[],"one_qubit_error":[0.1,0.1],
		"readout_error":[0.1,0.1],"readout_length_ns":[30,30],
		"t1_us":[1,1],"t2_us":[1,1],"basis_gates":["u1","u2","u3","cx"]}`
	var b Backend
	if err := json.Unmarshal([]byte(bad), &b); err == nil {
		t.Fatal("corrupt backend accepted")
	}
}

func TestNoiseModelMirrorsCalibration(t *testing.T) {
	g := graph.Line(3)
	b, err := UniformBackend("u", g, 0.2, 0.05, 0.1, 100e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	m := b.NoiseModel()
	if m.TwoQubitProb(0, 1) != 0.2 {
		t.Fatalf("2q prob = %v", m.TwoQubitProb(0, 1))
	}
	if m.TwoQubitProb(0, 2) != 0.99 {
		t.Fatalf("off-coupling prob = %v, want punitive 0.99", m.TwoQubitProb(0, 2))
	}
	if m.OneQubit[1] != 0.05 || m.Readout[2] != 0.1 {
		t.Fatal("1q/readout not mirrored")
	}
}

func TestAverages(t *testing.T) {
	g := graph.Line(2)
	b, err := UniformBackend("u", g, 0.3, 0.01, 0.07, 500e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	if b.AvgTwoQubitErr() != 0.3 || b.AvgOneQubitErr() != 0.01 ||
		b.AvgReadoutErr() != 0.07 || b.AvgT1us() != 500e3 || b.AvgT2us() != 100e3 {
		t.Fatalf("averages wrong: %v %v %v %v %v",
			b.AvgTwoQubitErr(), b.AvgOneQubitErr(), b.AvgReadoutErr(), b.AvgT1us(), b.AvgT2us())
	}
}

func TestGenerateBackendSingle(t *testing.T) {
	b, err := GenerateBackend("solo", 12, 0.5, DefaultFleetSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumQubits != 12 || !b.Coupling.Connected() {
		t.Fatalf("bad single backend: %v", b)
	}
}

func TestSpecValidation(t *testing.T) {
	s := DefaultFleetSpec()
	s.ErrHigh = 1.2
	if _, err := GenerateFleet(s); err == nil {
		t.Fatal("invalid error range accepted")
	}
	s = DefaultFleetSpec()
	s.QubitCounts = nil
	if _, err := GenerateFleet(s); err == nil {
		t.Fatal("empty qubit list accepted")
	}
}
