package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGateValidate(t *testing.T) {
	cases := []struct {
		g  Gate
		ok bool
	}{
		{Gate{Name: GateH, Qubits: []int{0}}, true},
		{Gate{Name: GateH, Qubits: []int{0, 1}}, false},
		{Gate{Name: GateCX, Qubits: []int{0, 1}}, true},
		{Gate{Name: GateCX, Qubits: []int{1, 1}}, false},
		{Gate{Name: GateCX, Qubits: []int{1}}, false},
		{Gate{Name: GateU3, Qubits: []int{0}, Params: []float64{1, 2, 3}}, true},
		{Gate{Name: GateU3, Qubits: []int{0}, Params: []float64{1}}, false},
		{Gate{Name: "bogus", Qubits: []int{0}}, false},
		{Gate{Name: GateMeasure, Qubits: []int{0}, Clbits: []int{0}}, true},
		{Gate{Name: GateMeasure, Qubits: []int{0}}, false},
		{Gate{Name: GateBarrier, Qubits: []int{0, 1, 2}}, true},
		{Gate{Name: GateBarrier}, true},
		{Gate{Name: GateX, Qubits: []int{-1}}, false},
	}
	for i, c := range cases {
		err := c.g.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d (%v): Validate() = %v, want ok=%v", i, c.g, err, c.ok)
		}
	}
}

func TestCircuitAppendRangeChecks(t *testing.T) {
	c := New(2)
	if err := c.Append(Gate{Name: GateH, Qubits: []int{2}}); err == nil {
		t.Fatal("expected out-of-range qubit error")
	}
	if err := c.Append(Gate{Name: GateMeasure, Qubits: []int{0}, Clbits: []int{5}}); err == nil {
		t.Fatal("expected out-of-range clbit error")
	}
	if err := c.Append(Gate{Name: GateCX, Qubits: []int{0, 1}}); err != nil {
		t.Fatalf("valid append failed: %v", err)
	}
}

func TestDepth(t *testing.T) {
	c := New(3)
	if got := c.Depth(); got != 0 {
		t.Fatalf("empty depth = %d, want 0", got)
	}
	c.H(0)
	c.H(1)
	c.H(2)
	if got := c.Depth(); got != 1 {
		t.Fatalf("parallel depth = %d, want 1", got)
	}
	c.CX(0, 1)
	if got := c.Depth(); got != 2 {
		t.Fatalf("depth = %d, want 2", got)
	}
	c.CX(1, 2)
	if got := c.Depth(); got != 3 {
		t.Fatalf("chained depth = %d, want 3", got)
	}
}

func TestDepthWithMeasureAndBarrier(t *testing.T) {
	c := New(2)
	c.H(0)
	c.Barrier() // all-qubit barrier synchronises
	c.X(1)
	// After barrier, x(1) must wait for h(0)'s level.
	if got := c.Depth(); got != 2 {
		t.Fatalf("depth = %d, want 2", got)
	}
	c.Measure(0, 0)
	c.Measure(1, 1)
	if got := c.Depth(); got != 3 {
		t.Fatalf("depth with measures = %d, want 3", got)
	}
}

func TestInteractionGraph(t *testing.T) {
	c := New(4)
	c.CX(0, 1)
	c.CX(1, 0) // same undirected edge
	c.CZ(2, 3)
	c.H(0)
	g := c.InteractionGraph()
	if g[Edge{0, 1}] != 2 {
		t.Errorf("edge 0-1 count = %d, want 2", g[Edge{0, 1}])
	}
	if g[Edge{2, 3}] != 1 {
		t.Errorf("edge 2-3 count = %d, want 1", g[Edge{2, 3}])
	}
	if len(g) != 2 {
		t.Errorf("edge count = %d, want 2", len(g))
	}
	edges := c.InteractionEdges()
	if len(edges) != 2 || edges[0] != (Edge{0, 1}) || edges[1] != (Edge{2, 3}) {
		t.Errorf("InteractionEdges = %v", edges)
	}
}

func TestRemapQubits(t *testing.T) {
	c := New(2)
	c.H(0)
	c.CX(0, 1)
	out, err := c.RemapQubits(map[int]int{0: 3, 1: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Gates[0].Qubits[0] != 3 {
		t.Errorf("h qubit = %d, want 3", out.Gates[0].Qubits[0])
	}
	if out.Gates[1].Qubits[0] != 3 || out.Gates[1].Qubits[1] != 1 {
		t.Errorf("cx qubits = %v, want [3 1]", out.Gates[1].Qubits)
	}
	if _, err := c.RemapQubits(map[int]int{0: 9, 1: 1}, 5); err == nil {
		t.Error("expected range error for image 9 in size-5 register")
	}
	if _, err := c.RemapQubits(map[int]int{0: 0}, 5); err == nil {
		t.Error("expected missing-image error")
	}
}

func TestCopyIsDeep(t *testing.T) {
	c := New(2)
	c.U3(0, 1, 2, 3)
	d := c.Copy()
	d.Gates[0].Params[0] = 99
	d.Gates[0].Qubits[0] = 1
	if c.Gates[0].Params[0] != 1 || c.Gates[0].Qubits[0] != 0 {
		t.Fatal("Copy shares backing arrays with original")
	}
}

func TestIsCliffordGate(t *testing.T) {
	cases := []struct {
		g    Gate
		want bool
	}{
		{Gate{Name: GateH, Qubits: []int{0}}, true},
		{Gate{Name: GateT, Qubits: []int{0}}, false},
		{Gate{Name: GateCX, Qubits: []int{0, 1}}, true},
		{Gate{Name: GateCCX, Qubits: []int{0, 1, 2}}, false},
		{Gate{Name: GateRZ, Qubits: []int{0}, Params: []float64{math.Pi / 2}}, true},
		{Gate{Name: GateRZ, Qubits: []int{0}, Params: []float64{math.Pi / 3}}, false},
		{Gate{Name: GateU3, Qubits: []int{0}, Params: []float64{math.Pi, 0, math.Pi}}, true},
		{Gate{Name: GateU3, Qubits: []int{0}, Params: []float64{0.3, 0, 0}}, false},
		{Gate{Name: GateU1, Qubits: []int{0}, Params: []float64{-math.Pi}}, true},
	}
	for i, c := range cases {
		if got := c.g.IsClifford(); got != c.want {
			t.Errorf("case %d (%v): IsClifford = %v, want %v", i, c.g, got, c.want)
		}
	}
}

func TestDecomposeProducesOnlyBasicGates(t *testing.T) {
	c := New(3)
	c.CCX(0, 1, 2)
	c.Swap(0, 2)
	c.CZ(1, 2)
	c.MustAppend(Gate{Name: GateCSwap, Qubits: []int{0, 1, 2}})
	c.MustAppend(Gate{Name: GateCCZ, Qubits: []int{0, 1, 2}})
	d := c.Decompose()
	for _, g := range d.Gates {
		if len(g.Qubits) > 2 {
			t.Fatalf("gate %v survived decomposition", g)
		}
		if len(g.Qubits) == 2 && g.Name != GateCX {
			t.Fatalf("2q gate %v is not cx after decomposition", g)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("decomposed circuit invalid: %v", err)
	}
}

func TestU3MatrixIsUnitary(t *testing.T) {
	f := func(t0, p0, l0 float64) bool {
		// Constrain angles to a sane range: trig of astronomically large
		// arguments legitimately loses all precision.
		theta := math.Mod(t0, 2*math.Pi)
		phi := math.Mod(p0, 2*math.Pi)
		lambda := math.Mod(l0, 2*math.Pi)
		m := U3Matrix(theta, phi, lambda)
		// m * m† = I
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				var s complex128
				for k := 0; k < 2; k++ {
					mj := m[j][k]
					s += m[i][k] * complex(real(mj), -imag(mj))
				}
				want := complex128(0)
				if i == j {
					want = 1
				}
				if d := s - want; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestActiveQubits(t *testing.T) {
	c := New(5)
	c.H(3)
	c.CX(1, 3)
	got := c.ActiveQubits()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("ActiveQubits = %v, want [1 3]", got)
	}
}

func TestMeasureAllGrowsClbits(t *testing.T) {
	c := &Circuit{NumQubits: 3, NumClbits: 0}
	c.MeasureAll()
	if c.NumClbits != 3 {
		t.Fatalf("NumClbits = %d, want 3", c.NumClbits)
	}
	qs, cs := c.MeasuredQubits()
	if len(qs) != 3 || len(cs) != 3 {
		t.Fatalf("measured pairs = %v -> %v", qs, cs)
	}
}

func TestCountOpsAndSize(t *testing.T) {
	c := New(2)
	c.H(0)
	c.H(1)
	c.CX(0, 1)
	c.Barrier()
	c.Measure(0, 0)
	ops := c.CountOps()
	if ops["h"] != 2 || ops["cx"] != 1 || ops["barrier"] != 1 || ops["measure"] != 1 {
		t.Fatalf("CountOps = %v", ops)
	}
	if c.Size() != 4 {
		t.Fatalf("Size = %d, want 4 (barrier excluded)", c.Size())
	}
	if c.TwoQubitGateCount() != 1 {
		t.Fatalf("TwoQubitGateCount = %d, want 1", c.TwoQubitGateCount())
	}
}
