package circuit_test

import (
	"math"
	"math/rand"
	"testing"

	"qrio/internal/quantum/circuit"
	"qrio/internal/quantum/statevec"
)

// TestEveryDecompositionIsEquivalent verifies each multi-qubit gate's
// decomposition against direct simulation: applying the gate and applying
// its decomposition from a random product state must produce the same
// state up to global phase. This pins down all the textbook identities in
// Gate.Decompose.
func TestEveryDecompositionIsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	gates := []circuit.Gate{
		{Name: circuit.GateCZ, Qubits: []int{0, 1}},
		{Name: circuit.GateCY, Qubits: []int{0, 1}},
		{Name: circuit.GateCH, Qubits: []int{0, 1}},
		{Name: circuit.GateSwap, Qubits: []int{0, 1}},
		{Name: circuit.GateCRZ, Qubits: []int{0, 1}, Params: []float64{0.7}},
		{Name: circuit.GateCU1, Qubits: []int{0, 1}, Params: []float64{1.3}},
		{Name: circuit.GateRZZ, Qubits: []int{0, 1}, Params: []float64{0.9}},
		{Name: circuit.GateCCX, Qubits: []int{0, 1, 2}},
		{Name: circuit.GateCCZ, Qubits: []int{0, 1, 2}},
		{Name: circuit.GateCSwap, Qubits: []int{0, 1, 2}},
		// Reversed operand orders exercise qubit-index plumbing.
		{Name: circuit.GateCCX, Qubits: []int{2, 0, 1}},
		{Name: circuit.GateCRZ, Qubits: []int{1, 0}, Params: []float64{-2.1}},
	}
	for _, g := range gates {
		for trial := 0; trial < 4; trial++ {
			n := 3
			// Random separable input state via random u3 on each qubit.
			prep := circuit.New(n)
			for q := 0; q < n; q++ {
				prep.U3(q, rng.Float64()*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi)
			}

			direct := prep.Copy()
			direct.MustAppend(g.Copy())
			sDirect, err := statevec.Run(direct)
			if err != nil {
				t.Fatalf("%s direct: %v", g.Name, err)
			}

			decomposed := prep.Copy()
			sub := g.Decompose()
			if len(sub) == 1 && sub[0].Name == g.Name {
				t.Fatalf("%s has no decomposition", g.Name)
			}
			for _, sg := range sub {
				decomposed.MustAppend(sg)
			}
			sDecomp, err := statevec.Run(decomposed)
			if err != nil {
				t.Fatalf("%s decomposed: %v", g.Name, err)
			}
			if !sDirect.EqualUpToGlobalPhase(sDecomp, 1e-9) {
				t.Fatalf("%s %v: decomposition is not equivalent", g.Name, g.Qubits)
			}
		}
	}
}

// TestNamed1QGatesMatchTheirU3Forms verifies every named 1-qubit gate's
// matrix against simulation of its canonical u3 form.
func TestNamed1QGatesMatchTheirU3Forms(t *testing.T) {
	forms := map[string][3]float64{
		"x":  {math.Pi, 0, math.Pi},
		"y":  {math.Pi, math.Pi / 2, math.Pi / 2},
		"h":  {math.Pi / 2, 0, math.Pi},
		"id": {0, 0, 0},
	}
	for name, angles := range forms {
		a := circuit.New(1)
		a.H(0) // non-trivial input
		a.MustAppend(circuit.Gate{Name: name, Qubits: []int{0}})
		b := circuit.New(1)
		b.H(0)
		b.U3(0, angles[0], angles[1], angles[2])
		sa, err := statevec.Run(a)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := statevec.Run(b)
		if err != nil {
			t.Fatal(err)
		}
		if !sa.EqualUpToGlobalPhase(sb, 1e-9) {
			t.Errorf("%s does not match its u3 form", name)
		}
	}
	// Phase-gate ladder: z = s·s = t·t·t·t.
	z1 := circuit.New(1)
	z1.H(0)
	z1.Z(0)
	z2 := circuit.New(1)
	z2.H(0)
	for i := 0; i < 4; i++ {
		z2.T(0)
	}
	sa, _ := statevec.Run(z1)
	sb, _ := statevec.Run(z2)
	if !sa.EqualUpToGlobalPhase(sb, 1e-9) {
		t.Error("t^4 != z")
	}
	// sx² = x.
	x1 := circuit.New(1)
	x1.H(0)
	x1.MustAppend(circuit.Gate{Name: circuit.GateSX, Qubits: []int{0}})
	x1.MustAppend(circuit.Gate{Name: circuit.GateSX, Qubits: []int{0}})
	x2 := circuit.New(1)
	x2.H(0)
	x2.X(0)
	sa, _ = statevec.Run(x1)
	sb, _ = statevec.Run(x2)
	if !sa.EqualUpToGlobalPhase(sb, 1e-9) {
		t.Error("sx² != x")
	}
}

// TestRotationGatesCompose checks rx/ry/rz additivity: r(a)·r(b) = r(a+b).
func TestRotationGatesCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, name := range []string{"rx", "ry", "rz"} {
		for trial := 0; trial < 5; trial++ {
			a, b := rng.Float64()*3, rng.Float64()*3
			c1 := circuit.New(1)
			c1.H(0)
			c1.MustAppend(circuit.Gate{Name: name, Qubits: []int{0}, Params: []float64{a}})
			c1.MustAppend(circuit.Gate{Name: name, Qubits: []int{0}, Params: []float64{b}})
			c2 := circuit.New(1)
			c2.H(0)
			c2.MustAppend(circuit.Gate{Name: name, Qubits: []int{0}, Params: []float64{a + b}})
			s1, err := statevec.Run(c1)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := statevec.Run(c2)
			if err != nil {
				t.Fatal(err)
			}
			if !s1.EqualUpToGlobalPhase(s2, 1e-9) {
				t.Fatalf("%s(%v)·%s(%v) != %s(%v)", name, a, name, b, name, a+b)
			}
		}
	}
}

func TestGateStringRendering(t *testing.T) {
	g := circuit.Gate{Name: "u3", Qubits: []int{2}, Params: []float64{1, 2, 3}}
	if got := g.String(); got != "u3(1,2,3) q[2]" {
		t.Errorf("String = %q", got)
	}
	m := circuit.Gate{Name: "measure", Qubits: []int{0}, Clbits: []int{4}}
	if got := m.String(); got != "measure q[0] -> c[4]" {
		t.Errorf("String = %q", got)
	}
	cx := circuit.Gate{Name: "cx", Qubits: []int{0, 1}}
	if got := cx.String(); got != "cx q[0],q[1]" {
		t.Errorf("String = %q", got)
	}
}

func TestGateArityAndParamLookups(t *testing.T) {
	if n, ok := circuit.GateArity("ccx"); !ok || n != 3 {
		t.Errorf("GateArity(ccx) = %d, %v", n, ok)
	}
	if n, ok := circuit.GateArity("barrier"); !ok || n != -1 {
		t.Errorf("GateArity(barrier) = %d, %v", n, ok)
	}
	if _, ok := circuit.GateArity("bogus"); ok {
		t.Error("GateArity(bogus) ok")
	}
	if n, ok := circuit.GateParamCount("u2"); !ok || n != 2 {
		t.Errorf("GateParamCount(u2) = %d, %v", n, ok)
	}
	if _, ok := circuit.GateParamCount("bogus"); ok {
		t.Error("GateParamCount(bogus) ok")
	}
	if !circuit.KnownGate("h") || circuit.KnownGate("hh") {
		t.Error("KnownGate wrong")
	}
}
