package circuit

import (
	"fmt"
	"sort"
)

// Circuit is an ordered list of gates over NumQubits qubits and NumClbits
// classical bits. The zero value is an empty circuit over zero qubits.
type Circuit struct {
	Name      string
	NumQubits int
	NumClbits int
	Gates     []Gate
}

// New returns an empty circuit over n qubits and n classical bits.
func New(n int) *Circuit {
	return &Circuit{NumQubits: n, NumClbits: n}
}

// NewWithClbits returns an empty circuit with explicit register sizes.
func NewWithClbits(nq, nc int) *Circuit {
	return &Circuit{NumQubits: nq, NumClbits: nc}
}

// Copy returns a deep copy of the circuit.
func (c *Circuit) Copy() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, NumClbits: c.NumClbits}
	out.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		out.Gates[i] = g.Copy()
	}
	return out
}

// Append validates g and adds it to the circuit, growing the qubit register
// if needed.
func (c *Circuit) Append(g Gate) error {
	if err := g.Validate(); err != nil {
		return err
	}
	for _, q := range g.Qubits {
		if q >= c.NumQubits {
			return fmt.Errorf("circuit: qubit %d out of range (%d qubits)", q, c.NumQubits)
		}
	}
	for _, b := range g.Clbits {
		if b < 0 || b >= c.NumClbits {
			return fmt.Errorf("circuit: clbit %d out of range (%d clbits)", b, c.NumClbits)
		}
	}
	c.Gates = append(c.Gates, g)
	return nil
}

// MustAppend is Append that panics on error; for use by builders whose
// inputs are statically correct.
func (c *Circuit) MustAppend(g Gate) {
	if err := c.Append(g); err != nil {
		panic(err)
	}
}

// Builder helpers. Each appends a standard gate and panics on misuse
// (out-of-range qubits), which indicates a programming error.

func (c *Circuit) H(q int)       { c.MustAppend(Gate{Name: GateH, Qubits: []int{q}}) }
func (c *Circuit) X(q int)       { c.MustAppend(Gate{Name: GateX, Qubits: []int{q}}) }
func (c *Circuit) Y(q int)       { c.MustAppend(Gate{Name: GateY, Qubits: []int{q}}) }
func (c *Circuit) Z(q int)       { c.MustAppend(Gate{Name: GateZ, Qubits: []int{q}}) }
func (c *Circuit) S(q int)       { c.MustAppend(Gate{Name: GateS, Qubits: []int{q}}) }
func (c *Circuit) Sdg(q int)     { c.MustAppend(Gate{Name: GateSdg, Qubits: []int{q}}) }
func (c *Circuit) T(q int)       { c.MustAppend(Gate{Name: GateT, Qubits: []int{q}}) }
func (c *Circuit) Tdg(q int)     { c.MustAppend(Gate{Name: GateTdg, Qubits: []int{q}}) }
func (c *Circuit) CX(a, b int)   { c.MustAppend(Gate{Name: GateCX, Qubits: []int{a, b}}) }
func (c *Circuit) CZ(a, b int)   { c.MustAppend(Gate{Name: GateCZ, Qubits: []int{a, b}}) }
func (c *Circuit) Swap(a, b int) { c.MustAppend(Gate{Name: GateSwap, Qubits: []int{a, b}}) }
func (c *Circuit) CCX(a, b, t int) {
	c.MustAppend(Gate{Name: GateCCX, Qubits: []int{a, b, t}})
}
func (c *Circuit) RX(q int, theta float64) {
	c.MustAppend(Gate{Name: GateRX, Qubits: []int{q}, Params: []float64{theta}})
}
func (c *Circuit) RY(q int, theta float64) {
	c.MustAppend(Gate{Name: GateRY, Qubits: []int{q}, Params: []float64{theta}})
}
func (c *Circuit) RZ(q int, theta float64) {
	c.MustAppend(Gate{Name: GateRZ, Qubits: []int{q}, Params: []float64{theta}})
}
func (c *Circuit) U1(q int, l float64) {
	c.MustAppend(Gate{Name: GateU1, Qubits: []int{q}, Params: []float64{l}})
}
func (c *Circuit) U2(q int, p, l float64) {
	c.MustAppend(Gate{Name: GateU2, Qubits: []int{q}, Params: []float64{p, l}})
}
func (c *Circuit) U3(q int, t, p, l float64) {
	c.MustAppend(Gate{Name: GateU3, Qubits: []int{q}, Params: []float64{t, p, l}})
}
func (c *Circuit) Measure(q, clbit int) {
	c.MustAppend(Gate{Name: GateMeasure, Qubits: []int{q}, Clbits: []int{clbit}})
}
func (c *Circuit) Barrier(qs ...int) {
	c.MustAppend(Gate{Name: GateBarrier, Qubits: qs})
}
func (c *Circuit) Reset(q int) {
	c.MustAppend(Gate{Name: GateReset, Qubits: []int{q}})
}

// MeasureAll appends measure q[i] -> c[i] for every qubit, growing the
// classical register if needed.
func (c *Circuit) MeasureAll() {
	if c.NumClbits < c.NumQubits {
		c.NumClbits = c.NumQubits
	}
	for q := 0; q < c.NumQubits; q++ {
		c.Measure(q, q)
	}
}

// HasMeasurements reports whether the circuit contains any measure gates.
func (c *Circuit) HasMeasurements() bool {
	for _, g := range c.Gates {
		if g.Name == GateMeasure {
			return true
		}
	}
	return false
}

// MeasuredQubits returns (qubit, clbit) pairs in program order.
func (c *Circuit) MeasuredQubits() (qubits, clbits []int) {
	for _, g := range c.Gates {
		if g.Name == GateMeasure {
			qubits = append(qubits, g.Qubits[0])
			clbits = append(clbits, g.Clbits[0])
		}
	}
	return qubits, clbits
}

// WithoutMeasurements returns a copy of c with measure/barrier gates removed.
func (c *Circuit) WithoutMeasurements() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, NumClbits: c.NumClbits}
	for _, g := range c.Gates {
		if g.Name == GateMeasure || g.Name == GateBarrier {
			continue
		}
		out.Gates = append(out.Gates, g.Copy())
	}
	return out
}

// CountOps returns a histogram of gate names.
func (c *Circuit) CountOps() map[string]int {
	m := make(map[string]int)
	for _, g := range c.Gates {
		m[g.Name]++
	}
	return m
}

// Size returns the number of gates excluding barriers.
func (c *Circuit) Size() int {
	n := 0
	for _, g := range c.Gates {
		if g.Name != GateBarrier {
			n++
		}
	}
	return n
}

// TwoQubitGateCount returns the number of gates acting on exactly 2 qubits.
func (c *Circuit) TwoQubitGateCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.IsUnitary() && len(g.Qubits) == 2 {
			n++
		}
	}
	return n
}

// Depth returns the circuit depth: the length of the longest path through
// the gate dependency DAG. Barriers synchronise the qubits they touch
// (or all qubits when given none) without contributing depth.
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits+c.NumClbits)
	clOff := c.NumQubits
	max := 0
	for _, g := range c.Gates {
		wires := make([]int, 0, len(g.Qubits)+len(g.Clbits))
		if g.Name == GateBarrier && len(g.Qubits) == 0 {
			for q := 0; q < c.NumQubits; q++ {
				wires = append(wires, q)
			}
		} else {
			wires = append(wires, g.Qubits...)
		}
		for _, b := range g.Clbits {
			wires = append(wires, clOff+b)
		}
		h := 0
		for _, w := range wires {
			if level[w] > h {
				h = level[w]
			}
		}
		if g.Name != GateBarrier {
			h++
		}
		for _, w := range wires {
			level[w] = h
		}
		if h > max {
			max = h
		}
	}
	return max
}

// Edge is an undirected pair of qubits with a < b.
type Edge struct{ A, B int }

// NormEdge returns the normalised (sorted) edge for a qubit pair.
func NormEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{a, b}
}

// InteractionGraph returns the multiset of 2-qubit interactions in the
// circuit as a map from normalised edge to occurrence count. Gates on three
// or more qubits contribute every pairwise edge (they must be decomposed
// before hardware mapping anyway).
func (c *Circuit) InteractionGraph() map[Edge]int {
	m := make(map[Edge]int)
	for _, g := range c.Gates {
		if !g.IsUnitary() {
			continue
		}
		qs := g.Qubits
		for i := 0; i < len(qs); i++ {
			for j := i + 1; j < len(qs); j++ {
				m[NormEdge(qs[i], qs[j])]++
			}
		}
	}
	return m
}

// InteractionEdges returns the distinct interaction edges sorted
// lexicographically; convenient for deterministic iteration.
func (c *Circuit) InteractionEdges() []Edge {
	g := c.InteractionGraph()
	edges := make([]Edge, 0, len(g))
	for e := range g {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	return edges
}

// ActiveQubits returns the sorted list of qubits touched by any gate.
func (c *Circuit) ActiveQubits() []int {
	seen := map[int]bool{}
	for _, g := range c.Gates {
		for _, q := range g.Qubits {
			seen[q] = true
		}
	}
	out := make([]int, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// RemapQubits returns a copy of the circuit with every qubit q replaced by
// perm[q]. perm must be a map defined on all active qubits; newSize is the
// qubit register size of the result.
func (c *Circuit) RemapQubits(perm map[int]int, newSize int) (*Circuit, error) {
	out := &Circuit{Name: c.Name, NumQubits: newSize, NumClbits: c.NumClbits}
	for _, g := range c.Gates {
		ng := g.Copy()
		for i, q := range ng.Qubits {
			p, ok := perm[q]
			if !ok {
				return nil, fmt.Errorf("circuit: remap has no image for qubit %d", q)
			}
			if p < 0 || p >= newSize {
				return nil, fmt.Errorf("circuit: remap image %d out of range %d", p, newSize)
			}
			ng.Qubits[i] = p
		}
		out.Gates = append(out.Gates, ng)
	}
	return out, nil
}

// Decompose returns a copy of the circuit with all multi-qubit gates beyond
// cx rewritten over {1-qubit, cx}, applied recursively.
func (c *Circuit) Decompose() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, NumClbits: c.NumClbits}
	var expand func(g Gate)
	expand = func(g Gate) {
		sub := g.Decompose()
		if len(sub) == 1 && sub[0].Name == g.Name {
			out.Gates = append(out.Gates, g.Copy())
			return
		}
		for _, s := range sub {
			expand(s)
		}
	}
	for _, g := range c.Gates {
		expand(g)
	}
	return out
}

// IsClifford reports whether every unitary gate in the circuit is Clifford.
func (c *Circuit) IsClifford() bool {
	for _, g := range c.Gates {
		if g.IsUnitary() && !g.IsClifford() {
			return false
		}
	}
	return true
}

// Validate checks every gate against the register sizes.
func (c *Circuit) Validate() error {
	if c.NumQubits < 0 || c.NumClbits < 0 {
		return fmt.Errorf("circuit: negative register size")
	}
	for i, g := range c.Gates {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
		for _, q := range g.Qubits {
			if q >= c.NumQubits {
				return fmt.Errorf("gate %d (%s): qubit %d out of range", i, g.Name, q)
			}
		}
		for _, b := range g.Clbits {
			if b >= c.NumClbits {
				return fmt.Errorf("gate %d (%s): clbit %d out of range", i, g.Name, b)
			}
		}
	}
	return nil
}

// String summarises the circuit.
func (c *Circuit) String() string {
	return fmt.Sprintf("Circuit(%q, %d qubits, %d clbits, %d gates, depth %d)",
		c.Name, c.NumQubits, c.NumClbits, len(c.Gates), c.Depth())
}
