// Package circuit provides the quantum-circuit intermediate representation
// shared by every QRIO component: the QASM front end, the transpiler, the
// state-vector and stabilizer simulators, and the Mapomatic-style scorer.
//
// The gate vocabulary follows OpenQASM 2.0's qelib1 subset plus the
// IBM-style u1/u2/u3 basis the paper's backends expose (Table 2).
package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Gate is a single circuit operation: a unitary gate, a measurement, a
// reset, or a barrier. Qubits are logical indices into the owning circuit;
// Clbits are only used by "measure".
type Gate struct {
	Name   string    // lower-case mnemonic, e.g. "h", "cx", "u3", "measure"
	Qubits []int     // operand qubits, in gate-argument order
	Params []float64 // rotation angles in radians, if any
	Clbits []int     // classical targets (measure only)
}

// Standard gate names understood across the system.
const (
	GateID      = "id"
	GateX       = "x"
	GateY       = "y"
	GateZ       = "z"
	GateH       = "h"
	GateS       = "s"
	GateSdg     = "sdg"
	GateT       = "t"
	GateTdg     = "tdg"
	GateSX      = "sx"
	GateRX      = "rx"
	GateRY      = "ry"
	GateRZ      = "rz"
	GateU1      = "u1"
	GateU2      = "u2"
	GateU3      = "u3"
	GateP       = "p"
	GateCX      = "cx"
	GateCZ      = "cz"
	GateCY      = "cy"
	GateCH      = "ch"
	GateCRZ     = "crz"
	GateCU1     = "cu1"
	GateSwap    = "swap"
	GateCCX     = "ccx"
	GateCCZ     = "ccz"
	GateCSwap   = "cswap"
	GateRZZ     = "rzz"
	GateMeasure = "measure"
	GateBarrier = "barrier"
	GateReset   = "reset"
)

// spec describes the static shape of a named gate.
type spec struct {
	qubits int // -1 means variadic (barrier)
	params int
}

var gateSpecs = map[string]spec{
	GateID: {1, 0}, GateX: {1, 0}, GateY: {1, 0}, GateZ: {1, 0},
	GateH: {1, 0}, GateS: {1, 0}, GateSdg: {1, 0}, GateT: {1, 0},
	GateTdg: {1, 0}, GateSX: {1, 0},
	GateRX: {1, 1}, GateRY: {1, 1}, GateRZ: {1, 1},
	GateU1: {1, 1}, GateU2: {1, 2}, GateU3: {1, 3}, GateP: {1, 1},
	GateCX: {2, 0}, GateCZ: {2, 0}, GateCY: {2, 0}, GateCH: {2, 0},
	GateCRZ: {2, 1}, GateCU1: {2, 1}, GateSwap: {2, 0}, GateRZZ: {2, 1},
	GateCCX: {3, 0}, GateCCZ: {3, 0}, GateCSwap: {3, 0},
	GateMeasure: {1, 0}, GateReset: {1, 0}, GateBarrier: {-1, 0},
}

// KnownGate reports whether name is part of the supported vocabulary.
func KnownGate(name string) bool {
	_, ok := gateSpecs[name]
	return ok
}

// GateArity returns the number of qubit operands a named gate takes,
// or -1 for variadic gates (barrier). It returns 0, false for unknown names.
func GateArity(name string) (int, bool) {
	s, ok := gateSpecs[name]
	if !ok {
		return 0, false
	}
	return s.qubits, true
}

// GateParamCount returns the number of angle parameters a named gate takes.
func GateParamCount(name string) (int, bool) {
	s, ok := gateSpecs[name]
	if !ok {
		return 0, false
	}
	return s.params, true
}

// Validate checks the gate's shape against the vocabulary.
func (g Gate) Validate() error {
	s, ok := gateSpecs[g.Name]
	if !ok {
		return fmt.Errorf("circuit: unknown gate %q", g.Name)
	}
	if s.qubits >= 0 && len(g.Qubits) != s.qubits {
		return fmt.Errorf("circuit: gate %q wants %d qubits, got %d", g.Name, s.qubits, len(g.Qubits))
	}
	if len(g.Params) != s.params {
		return fmt.Errorf("circuit: gate %q wants %d params, got %d", g.Name, s.params, len(g.Params))
	}
	if g.Name == GateMeasure && len(g.Clbits) != 1 {
		return fmt.Errorf("circuit: measure wants 1 clbit, got %d", len(g.Clbits))
	}
	seen := map[int]bool{}
	for _, q := range g.Qubits {
		if q < 0 {
			return fmt.Errorf("circuit: gate %q has negative qubit %d", g.Name, q)
		}
		if seen[q] {
			return fmt.Errorf("circuit: gate %q repeats qubit %d", g.Name, q)
		}
		seen[q] = true
	}
	return nil
}

// IsUnitary reports whether the gate is a unitary operation (as opposed to
// measure, reset, or barrier).
func (g Gate) IsUnitary() bool {
	switch g.Name {
	case GateMeasure, GateBarrier, GateReset:
		return false
	}
	return true
}

// Copy returns a deep copy of the gate.
func (g Gate) Copy() Gate {
	c := Gate{Name: g.Name}
	c.Qubits = append([]int(nil), g.Qubits...)
	if g.Params != nil {
		c.Params = append([]float64(nil), g.Params...)
	}
	if g.Clbits != nil {
		c.Clbits = append([]int(nil), g.Clbits...)
	}
	return c
}

const angleTol = 1e-9

// multipleOfHalfPi reports whether angle is an integer multiple of π/2
// (within tolerance), returning that integer modulo 4.
func multipleOfHalfPi(a float64) (int, bool) {
	k := a / (math.Pi / 2)
	r := math.Round(k)
	if math.Abs(k-r) > 1e-7 {
		return 0, false
	}
	m := int(r) % 4
	if m < 0 {
		m += 4
	}
	return m, true
}

// IsClifford reports whether the gate is a member of the Clifford group.
// Parameterised gates are Clifford when all angles are multiples of π/2.
func (g Gate) IsClifford() bool {
	switch g.Name {
	case GateID, GateX, GateY, GateZ, GateH, GateS, GateSdg, GateSX,
		GateCX, GateCZ, GateCY, GateSwap:
		return true
	case GateT, GateTdg, GateCCX, GateCCZ, GateCSwap, GateCH:
		return false
	case GateRX, GateRY, GateRZ, GateU1, GateP, GateCRZ, GateCU1, GateRZZ:
		_, ok := multipleOfHalfPi(g.Params[0])
		return ok
	case GateU2:
		// u2(φ,λ) = u3(π/2, φ, λ); Clifford iff both angles are k·π/2.
		for _, p := range g.Params {
			if _, ok := multipleOfHalfPi(p); !ok {
				return false
			}
		}
		return true
	case GateU3:
		for _, p := range g.Params {
			if _, ok := multipleOfHalfPi(p); !ok {
				return false
			}
		}
		return true
	}
	return false
}

// Matrix2 is a 2x2 complex matrix in row-major order.
type Matrix2 [2][2]complex128

// Matrix4 is a 4x4 complex matrix in row-major order. The qubit ordering
// convention is q0 = least-significant bit of the row/column index.
type Matrix4 [4][4]complex128

// U3Matrix returns the matrix of u3(theta, phi, lambda) using the OpenQASM
// convention:
//
//	u3 = [[cos(θ/2),            -e^{iλ} sin(θ/2)],
//	      [e^{iφ} sin(θ/2),  e^{i(φ+λ)} cos(θ/2)]]
func U3Matrix(theta, phi, lambda float64) Matrix2 {
	ct, st := math.Cos(theta/2), math.Sin(theta/2)
	return Matrix2{
		{complex(ct, 0), -cmplx.Exp(complex(0, lambda)) * complex(st, 0)},
		{cmplx.Exp(complex(0, phi)) * complex(st, 0),
			cmplx.Exp(complex(0, phi+lambda)) * complex(ct, 0)},
	}
}

// Matrix1Q returns the 2x2 matrix for a one-qubit unitary gate.
func (g Gate) Matrix1Q() (Matrix2, error) {
	switch g.Name {
	case GateID:
		return U3Matrix(0, 0, 0), nil
	case GateX:
		return U3Matrix(math.Pi, 0, math.Pi), nil
	case GateY:
		return U3Matrix(math.Pi, math.Pi/2, math.Pi/2), nil
	case GateZ:
		return U3Matrix(0, 0, math.Pi), nil
	case GateH:
		return U3Matrix(math.Pi/2, 0, math.Pi), nil
	case GateS:
		return U3Matrix(0, 0, math.Pi/2), nil
	case GateSdg:
		return U3Matrix(0, 0, -math.Pi/2), nil
	case GateT:
		return U3Matrix(0, 0, math.Pi/4), nil
	case GateTdg:
		return U3Matrix(0, 0, -math.Pi/4), nil
	case GateSX:
		// sqrt(X) = e^{iπ/4} rx(π/2)
		m := U3Matrix(math.Pi/2, -math.Pi/2, math.Pi/2)
		ph := cmplx.Exp(complex(0, math.Pi/4))
		return Matrix2{{ph * m[0][0], ph * m[0][1]}, {ph * m[1][0], ph * m[1][1]}}, nil
	case GateRX:
		return U3Matrix(g.Params[0], -math.Pi/2, math.Pi/2), nil
	case GateRY:
		return U3Matrix(g.Params[0], 0, 0), nil
	case GateRZ:
		// rz(λ) = e^{-iλ/2} u1(λ)
		ph := cmplx.Exp(complex(0, -g.Params[0]/2))
		m := U3Matrix(0, 0, g.Params[0])
		return Matrix2{{ph * m[0][0], ph * m[0][1]}, {ph * m[1][0], ph * m[1][1]}}, nil
	case GateU1, GateP:
		return U3Matrix(0, 0, g.Params[0]), nil
	case GateU2:
		return U3Matrix(math.Pi/2, g.Params[0], g.Params[1]), nil
	case GateU3:
		return U3Matrix(g.Params[0], g.Params[1], g.Params[2]), nil
	}
	return Matrix2{}, fmt.Errorf("circuit: %q is not a one-qubit unitary", g.Name)
}

// MustMatrix1Q is Matrix1Q for gates statically known to be 1-qubit
// unitaries; it panics otherwise.
func (g Gate) MustMatrix1Q() Matrix2 {
	m, err := g.Matrix1Q()
	if err != nil {
		panic(err)
	}
	return m
}

// Decompose rewrites a gate into an equivalent sequence over {1q, cx}.
// Gates that are already 1-qubit unitaries or cx are returned unchanged.
// Measure, reset and barrier are returned unchanged. The decompositions are
// the textbook ones (e.g. Nielsen & Chuang fig. 4.9 for ccx).
func (g Gate) Decompose() []Gate {
	q := g.Qubits
	switch g.Name {
	case GateCZ:
		return []Gate{
			{Name: GateH, Qubits: []int{q[1]}},
			{Name: GateCX, Qubits: []int{q[0], q[1]}},
			{Name: GateH, Qubits: []int{q[1]}},
		}
	case GateCY:
		return []Gate{
			{Name: GateSdg, Qubits: []int{q[1]}},
			{Name: GateCX, Qubits: []int{q[0], q[1]}},
			{Name: GateS, Qubits: []int{q[1]}},
		}
	case GateCH:
		// ch = (I⊗ry(π/4)) cx (I⊗ry(-π/4)) up to phase; use exact qelib form.
		return []Gate{
			{Name: GateS, Qubits: []int{q[1]}},
			{Name: GateH, Qubits: []int{q[1]}},
			{Name: GateT, Qubits: []int{q[1]}},
			{Name: GateCX, Qubits: []int{q[0], q[1]}},
			{Name: GateTdg, Qubits: []int{q[1]}},
			{Name: GateH, Qubits: []int{q[1]}},
			{Name: GateSdg, Qubits: []int{q[1]}},
		}
	case GateSwap:
		return []Gate{
			{Name: GateCX, Qubits: []int{q[0], q[1]}},
			{Name: GateCX, Qubits: []int{q[1], q[0]}},
			{Name: GateCX, Qubits: []int{q[0], q[1]}},
		}
	case GateCRZ:
		l := g.Params[0]
		return []Gate{
			{Name: GateRZ, Qubits: []int{q[1]}, Params: []float64{l / 2}},
			{Name: GateCX, Qubits: []int{q[0], q[1]}},
			{Name: GateRZ, Qubits: []int{q[1]}, Params: []float64{-l / 2}},
			{Name: GateCX, Qubits: []int{q[0], q[1]}},
		}
	case GateCU1:
		l := g.Params[0]
		return []Gate{
			{Name: GateU1, Qubits: []int{q[0]}, Params: []float64{l / 2}},
			{Name: GateCX, Qubits: []int{q[0], q[1]}},
			{Name: GateU1, Qubits: []int{q[1]}, Params: []float64{-l / 2}},
			{Name: GateCX, Qubits: []int{q[0], q[1]}},
			{Name: GateU1, Qubits: []int{q[1]}, Params: []float64{l / 2}},
		}
	case GateRZZ:
		l := g.Params[0]
		return []Gate{
			{Name: GateCX, Qubits: []int{q[0], q[1]}},
			{Name: GateRZ, Qubits: []int{q[1]}, Params: []float64{l}},
			{Name: GateCX, Qubits: []int{q[0], q[1]}},
		}
	case GateCCX:
		a, b, c := q[0], q[1], q[2]
		return []Gate{
			{Name: GateH, Qubits: []int{c}},
			{Name: GateCX, Qubits: []int{b, c}},
			{Name: GateTdg, Qubits: []int{c}},
			{Name: GateCX, Qubits: []int{a, c}},
			{Name: GateT, Qubits: []int{c}},
			{Name: GateCX, Qubits: []int{b, c}},
			{Name: GateTdg, Qubits: []int{c}},
			{Name: GateCX, Qubits: []int{a, c}},
			{Name: GateT, Qubits: []int{b}},
			{Name: GateT, Qubits: []int{c}},
			{Name: GateH, Qubits: []int{c}},
			{Name: GateCX, Qubits: []int{a, b}},
			{Name: GateT, Qubits: []int{a}},
			{Name: GateTdg, Qubits: []int{b}},
			{Name: GateCX, Qubits: []int{a, b}},
		}
	case GateCCZ:
		a, b, c := q[0], q[1], q[2]
		out := []Gate{{Name: GateH, Qubits: []int{c}}}
		out = append(out, Gate{Name: GateCCX, Qubits: []int{a, b, c}}.Decompose()...)
		out = append(out, Gate{Name: GateH, Qubits: []int{c}})
		return out
	case GateCSwap:
		a, b, c := q[0], q[1], q[2]
		out := []Gate{{Name: GateCX, Qubits: []int{c, b}}}
		out = append(out, Gate{Name: GateCCX, Qubits: []int{a, b, c}}.Decompose()...)
		out = append(out, Gate{Name: GateCX, Qubits: []int{c, b}})
		return out
	}
	return []Gate{g}
}

// String renders the gate in QASM-like syntax for debugging.
func (g Gate) String() string {
	s := g.Name
	if len(g.Params) > 0 {
		s += "("
		for i, p := range g.Params {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%g", p)
		}
		s += ")"
	}
	s += " "
	for i, q := range g.Qubits {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("q[%d]", q)
	}
	if g.Name == GateMeasure && len(g.Clbits) == 1 {
		s += fmt.Sprintf(" -> c[%d]", g.Clbits[0])
	}
	return s
}
