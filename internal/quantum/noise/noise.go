// Package noise models device noise for QRIO's simulated backends.
//
// The model mirrors the calibration surface the paper's vendors must
// publish for every node (§3.1): per-qubit single-qubit gate error, per-edge
// two-qubit gate error, and per-qubit readout error. Gate errors are treated
// as depolarizing channels realised by Monte-Carlo Pauli sampling, which
// keeps the identical model usable by both the dense state-vector simulator
// and the polynomial-time stabilizer simulator (Pauli errors are Clifford).
package noise

import (
	"fmt"
	"math/rand"
)

// Pauli identifies a single-qubit Pauli error.
type Pauli byte

const (
	PauliX Pauli = 'X'
	PauliY Pauli = 'Y'
	PauliZ Pauli = 'Z'
)

// Error is a Pauli error on one qubit.
type Error struct {
	Qubit int
	Pauli Pauli
}

// Model holds the error rates of one device.
//
// The zero value is a noiseless model. All probabilities are in [0, 1).
type Model struct {
	NumQubits int
	// OneQubit[q] is the depolarizing probability after a 1-qubit gate on q.
	OneQubit []float64
	// TwoQubit[edge] is the depolarizing probability after a 2-qubit gate on
	// the normalised (low, high) qubit pair.
	TwoQubit map[[2]int]float64
	// TwoQubitDefault applies to pairs missing from TwoQubit (e.g. after a
	// routing bug); keeping it high makes such bugs visible in fidelity.
	TwoQubitDefault float64
	// Readout[q] is the classical bit-flip probability when measuring q.
	Readout []float64
}

// Noiseless returns a model with zero error everywhere.
func Noiseless(n int) *Model {
	return &Model{NumQubits: n}
}

// Uniform returns a model with uniform error rates; handy in tests.
func Uniform(n int, e1, e2, ro float64) *Model {
	m := &Model{
		NumQubits:       n,
		OneQubit:        make([]float64, n),
		Readout:         make([]float64, n),
		TwoQubit:        map[[2]int]float64{},
		TwoQubitDefault: e2,
	}
	for q := 0; q < n; q++ {
		m.OneQubit[q] = e1
		m.Readout[q] = ro
	}
	return m
}

// Validate checks all probabilities are within [0, 1].
func (m *Model) Validate() error {
	check := func(p float64, what string) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("noise: %s probability %g out of [0,1]", what, p)
		}
		return nil
	}
	for q, p := range m.OneQubit {
		if err := check(p, fmt.Sprintf("1q[%d]", q)); err != nil {
			return err
		}
	}
	for e, p := range m.TwoQubit {
		if err := check(p, fmt.Sprintf("2q[%d-%d]", e[0], e[1])); err != nil {
			return err
		}
	}
	for q, p := range m.Readout {
		if err := check(p, fmt.Sprintf("readout[%d]", q)); err != nil {
			return err
		}
	}
	return check(m.TwoQubitDefault, "2q default")
}

// NormPair returns the normalised (low, high) qubit pair key.
func NormPair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (m *Model) oneQubitProb(q int) float64 {
	if q < len(m.OneQubit) {
		return m.OneQubit[q]
	}
	return 0
}

// TwoQubitProb returns the error probability for a gate on pair (a, b).
func (m *Model) TwoQubitProb(a, b int) float64 {
	if m.TwoQubit != nil {
		if p, ok := m.TwoQubit[NormPair(a, b)]; ok {
			return p
		}
	}
	return m.TwoQubitDefault
}

// ReadoutProb returns the readout flip probability of qubit q.
func (m *Model) ReadoutProb(q int) float64 {
	if q < len(m.Readout) {
		return m.Readout[q]
	}
	return 0
}

var paulis = [3]Pauli{PauliX, PauliY, PauliZ}

// SampleGateError draws the Pauli errors (possibly none) that follow one
// gate application on the given qubits. One-qubit gates use the depolarizing
// channel {I: 1-p, X/Y/Z: p/3 each}; two-qubit gates use the 16-element
// two-qubit depolarizing channel with the 15 non-identity Paulis equally
// likely. Gates on 3+ qubits are charged one two-qubit error per qubit pair
// (they should have been decomposed before execution anyway).
func (m *Model) SampleGateError(qubits []int, rng *rand.Rand) []Error {
	if m == nil {
		return nil
	}
	switch len(qubits) {
	case 0:
		return nil
	case 1:
		q := qubits[0]
		if rng.Float64() >= m.oneQubitProb(q) {
			return nil
		}
		return []Error{{Qubit: q, Pauli: paulis[rng.Intn(3)]}}
	case 2:
		return m.sampleTwoQubit(qubits[0], qubits[1], rng)
	default:
		var errs []Error
		for i := 0; i < len(qubits); i++ {
			for j := i + 1; j < len(qubits); j++ {
				errs = append(errs, m.sampleTwoQubit(qubits[i], qubits[j], rng)...)
			}
		}
		return errs
	}
}

func (m *Model) sampleTwoQubit(a, b int, rng *rand.Rand) []Error {
	p := m.TwoQubitProb(a, b)
	if rng.Float64() >= p {
		return nil
	}
	// Pick one of the 15 non-identity two-qubit Paulis uniformly.
	k := rng.Intn(15) + 1 // 1..15, base-4 digits (pa, pb), never (0,0)
	pa, pb := k%4, k/4
	var errs []Error
	if pa > 0 {
		errs = append(errs, Error{Qubit: a, Pauli: paulis[pa-1]})
	}
	if pb > 0 {
		errs = append(errs, Error{Qubit: b, Pauli: paulis[pb-1]})
	}
	return errs
}

// FlipReadout applies classical readout error in place: bits[i] is the
// measured value of qubit qubits[i] and flips with Readout[qubit].
func (m *Model) FlipReadout(qubits []int, bits []int, rng *rand.Rand) {
	if m == nil {
		return
	}
	for i, q := range qubits {
		if rng.Float64() < m.ReadoutProb(q) {
			bits[i] ^= 1
		}
	}
}

// AverageTwoQubit returns the mean two-qubit error over known edges,
// falling back to the default when no edges are recorded.
func (m *Model) AverageTwoQubit() float64 {
	if len(m.TwoQubit) == 0 {
		return m.TwoQubitDefault
	}
	s := 0.0
	for _, p := range m.TwoQubit {
		s += p
	}
	return s / float64(len(m.TwoQubit))
}
