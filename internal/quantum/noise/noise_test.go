package noise

import (
	"math/rand"
	"testing"
)

func TestNoiselessSamplesNothing(t *testing.T) {
	m := Noiseless(3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if errs := m.SampleGateError([]int{0, 1}, rng); len(errs) != 0 {
			t.Fatalf("noiseless model produced errors: %v", errs)
		}
	}
}

func TestOneQubitErrorRate(t *testing.T) {
	m := Uniform(1, 0.25, 0, 0)
	rng := rand.New(rand.NewSource(2))
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if len(m.SampleGateError([]int{0}, rng)) > 0 {
			hits++
		}
	}
	frac := float64(hits) / trials
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("1q error frequency = %v, want ~0.25", frac)
	}
}

func TestTwoQubitErrorUniformOverPaulis(t *testing.T) {
	m := Uniform(2, 0, 1.0, 0) // always error
	rng := rand.New(rand.NewSource(3))
	single, double := 0, 0
	const trials = 30000
	for i := 0; i < trials; i++ {
		errs := m.SampleGateError([]int{0, 1}, rng)
		switch len(errs) {
		case 1:
			single++
		case 2:
			double++
		default:
			t.Fatalf("p=1 model produced %d errors", len(errs))
		}
	}
	// 6 of 15 Paulis touch one qubit, 9 touch both.
	fracSingle := float64(single) / trials
	if fracSingle < 0.37 || fracSingle > 0.43 {
		t.Fatalf("single-qubit fraction = %v, want ~0.4", fracSingle)
	}
	if single+double != trials {
		t.Fatal("accounting error")
	}
}

func TestPerEdgeRates(t *testing.T) {
	m := &Model{
		NumQubits:       3,
		TwoQubit:        map[[2]int]float64{{0, 1}: 0.5},
		TwoQubitDefault: 0.0,
	}
	if got := m.TwoQubitProb(1, 0); got != 0.5 {
		t.Fatalf("TwoQubitProb(1,0) = %v, want 0.5 (order-insensitive)", got)
	}
	if got := m.TwoQubitProb(1, 2); got != 0 {
		t.Fatalf("TwoQubitProb(1,2) = %v, want default 0", got)
	}
}

func TestReadoutFlip(t *testing.T) {
	m := Uniform(2, 0, 0, 1.0) // always flip
	rng := rand.New(rand.NewSource(4))
	bits := []int{0, 1}
	m.FlipReadout([]int{0, 1}, bits, rng)
	if bits[0] != 1 || bits[1] != 0 {
		t.Fatalf("p=1 readout flip gave %v", bits)
	}
}

func TestValidate(t *testing.T) {
	bad := Uniform(1, 1.5, 0, 0)
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error for p=1.5")
	}
	good := Uniform(2, 0.1, 0.2, 0.05)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
}

func TestThreeQubitGateChargedPairwise(t *testing.T) {
	m := Uniform(3, 0, 1.0, 0)
	rng := rand.New(rand.NewSource(5))
	errs := m.SampleGateError([]int{0, 1, 2}, rng)
	if len(errs) == 0 {
		t.Fatal("3q gate with p=1 produced no errors")
	}
}

func TestAverageTwoQubit(t *testing.T) {
	m := &Model{
		TwoQubit:        map[[2]int]float64{{0, 1}: 0.2, {1, 2}: 0.4},
		TwoQubitDefault: 0.9,
	}
	if got := m.AverageTwoQubit(); got < 0.3-1e-12 || got > 0.3+1e-12 {
		t.Fatalf("AverageTwoQubit = %v, want 0.3", got)
	}
	empty := &Model{TwoQubitDefault: 0.7}
	if got := empty.AverageTwoQubit(); got != 0.7 {
		t.Fatalf("AverageTwoQubit fallback = %v, want 0.7", got)
	}
}

func TestNilModelIsSafe(t *testing.T) {
	var m *Model
	rng := rand.New(rand.NewSource(6))
	if errs := m.SampleGateError([]int{0}, rng); errs != nil {
		t.Fatal("nil model sampled errors")
	}
	bits := []int{1}
	m.FlipReadout([]int{0}, bits, rng)
	if bits[0] != 1 {
		t.Fatal("nil model flipped readout")
	}
}
