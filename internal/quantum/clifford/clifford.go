// Package clifford builds Clifford "canary" circuits (paper §3.4.1,
// following Quancorde/pass-selection prior work [16, 24]): the user's
// circuit with every non-Clifford gate snapped to its nearest Clifford.
// Canaries keep the structure — especially the noisy two-qubit gates — of
// the original circuit while remaining classically simulable in polynomial
// time, so their fidelity on a device tracks the original circuit's.
package clifford

import (
	"math"
	"math/rand"

	"qrio/internal/quantum/circuit"
)

// Canary returns the Clifford canary of c. Parameterised gates have each
// angle rounded to the nearest multiple of π/2; non-Clifford named gates
// (t, tdg, ccx, ccz, cswap, ch, ...) are first decomposed over {1q, cx} and
// then rounded. Measurements and barriers pass through unchanged.
func Canary(c *circuit.Circuit) *circuit.Circuit {
	out := &circuit.Circuit{
		Name:      c.Name + "-canary",
		NumQubits: c.NumQubits,
		NumClbits: c.NumClbits,
	}
	for _, g := range c.Gates {
		out.Gates = append(out.Gates, cliffordize(g)...)
	}
	return out
}

// cliffordize maps one gate to an equivalent-structure Clifford sequence.
func cliffordize(g circuit.Gate) []circuit.Gate {
	if !g.IsUnitary() || g.IsClifford() {
		return []circuit.Gate{g.Copy()}
	}
	switch g.Name {
	case circuit.GateT:
		return []circuit.Gate{{Name: circuit.GateS, Qubits: append([]int(nil), g.Qubits...)}}
	case circuit.GateTdg:
		return []circuit.Gate{{Name: circuit.GateSdg, Qubits: append([]int(nil), g.Qubits...)}}
	}
	if len(g.Params) > 0 {
		ng := g.Copy()
		for i, p := range ng.Params {
			ng.Params[i] = roundToHalfPi(p)
		}
		return []circuit.Gate{ng}
	}
	// Parameter-free non-Clifford (ccx and friends): decompose, then round.
	sub := g.Decompose()
	if len(sub) == 1 && sub[0].Name == g.Name {
		// No decomposition available; drop the gate rather than fail — the
		// canary is an approximation by definition.
		return nil
	}
	var out []circuit.Gate
	for _, s := range sub {
		out = append(out, cliffordize(s)...)
	}
	return out
}

// roundToHalfPi snaps an angle to the nearest integer multiple of π/2.
func roundToHalfPi(a float64) float64 {
	return math.Round(a/(math.Pi/2)) * (math.Pi / 2)
}

// Ensemble builds size canary variants of c using randomised rounding:
// every non-Clifford angle θ rounds up to the next multiple of π/2 with
// probability proportional to its fractional position, down otherwise
// (member 0 is always the deterministic nearest-Clifford Canary). A single
// canary can be degenerate — e.g. a cliffordized Grover has a uniform
// output distribution that no amount of Pauli noise can change, making its
// fidelity blind to device quality — but across an ensemble some members
// land on noise-sensitive stabilizer states, so the *average* ensemble
// fidelity ranks devices reliably. This mirrors the diverse-ensemble idea
// of Quancorde [24], which the paper's fidelity strategy builds on.
func Ensemble(c *circuit.Circuit, size int, seed int64) []*circuit.Circuit {
	if size <= 1 {
		return []*circuit.Circuit{Canary(c)}
	}
	out := make([]*circuit.Circuit, 0, size)
	out = append(out, Canary(c))
	rng := rand.New(rand.NewSource(seed))
	for k := 1; k < size; k++ {
		member := &circuit.Circuit{
			Name:      c.Name + "-canary",
			NumQubits: c.NumQubits,
			NumClbits: c.NumClbits,
		}
		for _, g := range c.Gates {
			member.Gates = append(member.Gates, cliffordizeRandom(g, rng)...)
		}
		out = append(out, member)
	}
	return out
}

// cliffordizeRandom is cliffordize with stochastic angle rounding.
func cliffordizeRandom(g circuit.Gate, rng *rand.Rand) []circuit.Gate {
	if !g.IsUnitary() || g.IsClifford() {
		return []circuit.Gate{g.Copy()}
	}
	if len(g.Params) > 0 {
		ng := g.Copy()
		for i, p := range ng.Params {
			ng.Params[i] = stochasticHalfPi(p, rng)
		}
		return []circuit.Gate{ng}
	}
	switch g.Name {
	case circuit.GateT, circuit.GateTdg:
		// θ = ±π/4: snap to 0 (drop) or ±π/2 with equal probability.
		if rng.Float64() < 0.5 {
			return nil
		}
		name := circuit.GateS
		if g.Name == circuit.GateTdg {
			name = circuit.GateSdg
		}
		return []circuit.Gate{{Name: name, Qubits: append([]int(nil), g.Qubits...)}}
	}
	sub := g.Decompose()
	if len(sub) == 1 && sub[0].Name == g.Name {
		return nil
	}
	var out []circuit.Gate
	for _, s := range sub {
		out = append(out, cliffordizeRandom(s, rng)...)
	}
	return out
}

// stochasticHalfPi rounds an angle up or down to a multiple of π/2 with
// probability given by its fractional position between the two.
func stochasticHalfPi(a float64, rng *rand.Rand) float64 {
	k := a / (math.Pi / 2)
	lo := math.Floor(k)
	frac := k - lo
	if rng.Float64() < frac {
		return (lo + 1) * (math.Pi / 2)
	}
	return lo * (math.Pi / 2)
}

// Distance measures how much cliffordization changed the circuit: the sum
// of |angle - rounded(angle)| over all parameters plus π/4 for every
// parameter-free non-Clifford gate. Zero means the circuit was already
// Clifford; useful as a confidence signal for canary-based estimates.
func Distance(c *circuit.Circuit) float64 {
	d := 0.0
	for _, g := range c.Gates {
		if !g.IsUnitary() || g.IsClifford() {
			continue
		}
		if len(g.Params) == 0 {
			d += math.Pi / 4
			continue
		}
		for _, p := range g.Params {
			d += math.Abs(p - roundToHalfPi(p))
		}
	}
	return d
}
