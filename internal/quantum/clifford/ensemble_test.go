package clifford_test

import (
	"math"
	"math/rand"
	"testing"

	"qrio/internal/quantum/circuit"
	"qrio/internal/quantum/clifford"
)

func randomNonClifford(seed int64, n, gates int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		switch rng.Intn(3) {
		case 0:
			c.U3(rng.Intn(n), rng.Float64()*3, rng.Float64()*3, rng.Float64()*3)
		case 1:
			c.T(rng.Intn(n))
		case 2:
			a := rng.Intn(n)
			c.CX(a, (a+1)%n)
		}
	}
	c.MeasureAll()
	return c
}

func TestEnsembleAllMembersClifford(t *testing.T) {
	c := randomNonClifford(3, 4, 30)
	members := clifford.Ensemble(c, 7, 11)
	if len(members) != 7 {
		t.Fatalf("got %d members, want 7", len(members))
	}
	for i, m := range members {
		if !m.IsClifford() {
			t.Errorf("member %d not Clifford: %v", i, m.CountOps())
		}
		if err := m.Validate(); err != nil {
			t.Errorf("member %d invalid: %v", i, err)
		}
	}
}

func TestEnsembleMemberZeroIsDeterministicCanary(t *testing.T) {
	c := randomNonClifford(5, 3, 20)
	members := clifford.Ensemble(c, 4, 9)
	want := clifford.Canary(c)
	if len(members[0].Gates) != len(want.Gates) {
		t.Fatal("member 0 is not the deterministic canary")
	}
	for i := range want.Gates {
		a, b := members[0].Gates[i], want.Gates[i]
		if a.Name != b.Name {
			t.Fatalf("member 0 gate %d: %s != %s", i, a.Name, b.Name)
		}
		for j := range a.Params {
			if math.Abs(a.Params[j]-b.Params[j]) > 1e-12 {
				t.Fatalf("member 0 gate %d params differ", i)
			}
		}
	}
}

func TestEnsembleDeterministicPerSeed(t *testing.T) {
	c := randomNonClifford(7, 4, 25)
	a := clifford.Ensemble(c, 5, 42)
	b := clifford.Ensemble(c, 5, 42)
	for k := range a {
		if len(a[k].Gates) != len(b[k].Gates) {
			t.Fatalf("member %d differs across identical seeds", k)
		}
		for i := range a[k].Gates {
			ga, gb := a[k].Gates[i], b[k].Gates[i]
			if ga.Name != gb.Name {
				t.Fatalf("member %d gate %d: %s != %s", k, i, ga.Name, gb.Name)
			}
			for j := range ga.Params {
				if ga.Params[j] != gb.Params[j] {
					t.Fatalf("member %d gate %d param %d differs", k, i, j)
				}
			}
		}
	}
}

func TestEnsembleMembersActuallyVary(t *testing.T) {
	// With many non-Clifford angles, random rounding must produce at least
	// two distinct members.
	c := randomNonClifford(9, 4, 40)
	members := clifford.Ensemble(c, 6, 13)
	distinct := false
	base := members[1]
	for _, m := range members[2:] {
		if len(m.Gates) != len(base.Gates) {
			distinct = true
			break
		}
		for i := range m.Gates {
			for j := range m.Gates[i].Params {
				if m.Gates[i].Params[j] != base.Gates[i].Params[j] {
					distinct = true
				}
			}
		}
	}
	if !distinct {
		t.Fatal("all random members identical — rounding not stochastic")
	}
}

func TestEnsembleRoundingStaysAdjacent(t *testing.T) {
	// Every rounded angle must be one of the two π/2 multiples bracketing
	// the original angle.
	c := circuit.New(1)
	angle := 0.3 + math.Pi/2 // between π/2 and π
	c.RZ(0, angle)
	members := clifford.Ensemble(c, 20, 3)
	lo := math.Floor(angle/(math.Pi/2)) * (math.Pi / 2)
	hi := lo + math.Pi/2
	for i, m := range members {
		got := m.Gates[0].Params[0]
		if math.Abs(got-lo) > 1e-12 && math.Abs(got-hi) > 1e-12 {
			t.Fatalf("member %d rounded %v to %v, outside {%v, %v}", i, angle, got, lo, hi)
		}
	}
}

func TestEnsembleSizeOne(t *testing.T) {
	c := randomNonClifford(11, 3, 10)
	members := clifford.Ensemble(c, 1, 5)
	if len(members) != 1 {
		t.Fatalf("size-1 ensemble has %d members", len(members))
	}
	if !members[0].IsClifford() {
		t.Fatal("single member not Clifford")
	}
}

func TestEnsembleOfCliffordCircuitIsStable(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.CX(0, 1)
	c.S(2)
	c.MeasureAll()
	for _, m := range clifford.Ensemble(c, 4, 1) {
		if len(m.Gates) != len(c.Gates) {
			t.Fatal("Clifford circuit mutated by ensemble")
		}
	}
}

func TestEnsembleTGateBothRoundings(t *testing.T) {
	// t rounds to identity (drop) or s with equal probability; across many
	// members both outcomes must appear.
	c := circuit.New(1)
	c.T(0)
	c.MeasureAll()
	sawDrop, sawS := false, false
	for _, m := range clifford.Ensemble(c, 40, 17)[1:] {
		ops := m.CountOps()
		switch {
		case ops["s"] == 1:
			sawS = true
		case ops["s"] == 0 && ops["sdg"] == 0:
			sawDrop = true
		}
	}
	if !sawDrop || !sawS {
		t.Fatalf("t roundings not both observed: drop=%v s=%v", sawDrop, sawS)
	}
}
