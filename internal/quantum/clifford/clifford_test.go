package clifford_test

import (
	"math"
	"math/rand"
	"testing"

	"qrio/internal/quantum/circuit"
	"qrio/internal/quantum/clifford"
	"qrio/internal/quantum/statevec"
)

func TestCanaryOfCliffordCircuitIsEquivalent(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.S(1)
	c.CX(0, 1)
	c.CZ(1, 2)
	c.Swap(0, 2)
	can := clifford.Canary(c)
	a, err := statevec.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := statevec.Run(can)
	if err != nil {
		t.Fatal(err)
	}
	if !a.EqualUpToGlobalPhase(b, 1e-9) {
		t.Fatal("canary of a Clifford circuit changed its state")
	}
	if clifford.Distance(c) != 0 {
		t.Fatalf("Distance of Clifford circuit = %v, want 0", clifford.Distance(c))
	}
}

func TestCanaryIsAlwaysClifford(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		c := circuit.New(4)
		for i := 0; i < 25; i++ {
			switch rng.Intn(5) {
			case 0:
				c.T(rng.Intn(4))
			case 1:
				c.U3(rng.Intn(4), rng.Float64()*6, rng.Float64()*6, rng.Float64()*6)
			case 2:
				c.RZ(rng.Intn(4), rng.Float64()*2*math.Pi)
			case 3:
				a := rng.Intn(4)
				c.CX(a, (a+1)%4)
			case 4:
				c.CCX(0, 1, 2+rng.Intn(2))
			}
		}
		c.MeasureAll()
		can := clifford.Canary(c)
		if !can.IsClifford() {
			t.Fatalf("trial %d: canary still contains non-Clifford gates: %v",
				trial, can.CountOps())
		}
		if err := can.Validate(); err != nil {
			t.Fatalf("trial %d: canary invalid: %v", trial, err)
		}
	}
}

func TestCanaryPreservesTwoQubitStructure(t *testing.T) {
	// Canaries must keep all original cx gates in place (the noisy gates
	// drive device fidelity, per the paper's argument).
	c := circuit.New(3)
	c.H(0)
	c.T(0)
	c.CX(0, 1)
	c.U3(1, 0.3, 0.1, 0.2)
	c.CX(1, 2)
	can := clifford.Canary(c)
	if got, want := can.TwoQubitGateCount(), 2; got != want {
		t.Fatalf("canary 2q gates = %d, want %d", got, want)
	}
	// cx positions relative to other cx gates must be preserved.
	var origPairs, canPairs [][2]int
	for _, g := range c.Gates {
		if g.Name == circuit.GateCX {
			origPairs = append(origPairs, [2]int{g.Qubits[0], g.Qubits[1]})
		}
	}
	for _, g := range can.Gates {
		if g.Name == circuit.GateCX {
			canPairs = append(canPairs, [2]int{g.Qubits[0], g.Qubits[1]})
		}
	}
	if len(origPairs) != len(canPairs) {
		t.Fatal("cx count changed")
	}
	for i := range origPairs {
		if origPairs[i] != canPairs[i] {
			t.Fatalf("cx %d moved: %v -> %v", i, origPairs[i], canPairs[i])
		}
	}
}

func TestAngleRounding(t *testing.T) {
	c := circuit.New(1)
	c.RZ(0, math.Pi/2+0.1) // near s
	can := clifford.Canary(c)
	got := can.Gates[0].Params[0]
	if math.Abs(got-math.Pi/2) > 1e-12 {
		t.Fatalf("rounded angle = %v, want π/2", got)
	}
	if !can.Gates[0].IsClifford() {
		t.Fatal("rounded gate is not Clifford")
	}
}

func TestTBecomesS(t *testing.T) {
	c := circuit.New(1)
	c.T(0)
	c.Tdg(0)
	can := clifford.Canary(c)
	if can.Gates[0].Name != circuit.GateS || can.Gates[1].Name != circuit.GateSdg {
		t.Fatalf("t/tdg mapped to %v/%v", can.Gates[0].Name, can.Gates[1].Name)
	}
}

func TestDistanceMonotone(t *testing.T) {
	near := circuit.New(1)
	near.RZ(0, math.Pi/2+0.01)
	far := circuit.New(1)
	far.RZ(0, math.Pi/4)
	if clifford.Distance(near) >= clifford.Distance(far) {
		t.Fatalf("Distance(near)=%v should be < Distance(far)=%v",
			clifford.Distance(near), clifford.Distance(far))
	}
}

func TestCanaryKeepsMeasurements(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.T(0)
	c.Measure(0, 0)
	c.Measure(1, 1)
	can := clifford.Canary(c)
	qs, cs := can.MeasuredQubits()
	if len(qs) != 2 || qs[0] != 0 || cs[1] != 1 {
		t.Fatalf("canary measurements broken: %v -> %v", qs, cs)
	}
}
