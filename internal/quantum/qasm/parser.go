package qasm

import (
	"fmt"
	"math"

	"qrio/internal/quantum/circuit"
)

// Parse reads OpenQASM 2.0 source and returns the flattened circuit.
// All quantum registers are concatenated into one logical qubit space in
// declaration order, and likewise for classical registers.
func Parse(src string) (*circuit.Circuit, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:  toks,
		qregs: map[string]regInfo{},
		cregs: map[string]regInfo{},
		gates: map[string]*gateDef{},
	}
	return p.parseProgram()
}

type regInfo struct{ offset, size int }

// gateDef is a user-declared gate: `gate name(params) qargs { body }`.
type gateDef struct {
	params []string
	qargs  []string
	body   []bodyOp
}

// bodyOp is one statement inside a gate body. Qubit operands are indices
// into the enclosing definition's qarg list.
type bodyOp struct {
	name    string
	params  []*expr
	qargIdx []int
	barrier bool
}

type parser struct {
	toks  []token
	pos   int
	qregs map[string]regInfo
	cregs map[string]regInfo
	qlist []string // declaration order
	clist []string
	gates map[string]*gateDef
	nq    int
	nc    int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("qasm: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.advance()
	if t.kind != k {
		return t, p.errf(t, "expected %s, got %s", what, t)
	}
	return t, nil
}

func (p *parser) expectIdent(word string) error {
	t := p.advance()
	if t.kind != tokIdent || t.text != word {
		return p.errf(t, "expected %q, got %s", word, t)
	}
	return nil
}

func (p *parser) parseProgram() (*circuit.Circuit, error) {
	if err := p.expectIdent("OPENQASM"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokNumber, "version number"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	c := &circuit.Circuit{}
	for p.peek().kind != tokEOF {
		if err := p.parseStatement(c); err != nil {
			return nil, err
		}
	}
	c.NumQubits = p.nq
	c.NumClbits = p.nc
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("qasm: parsed circuit invalid: %w", err)
	}
	return c, nil
}

func (p *parser) parseStatement(c *circuit.Circuit) error {
	t := p.peek()
	if t.kind != tokIdent {
		return p.errf(t, "expected statement, got %s", t)
	}
	switch t.text {
	case "include":
		p.advance()
		if _, err := p.expect(tokString, "include path"); err != nil {
			return err
		}
		_, err := p.expect(tokSemi, "';'")
		return err
	case "qreg", "creg":
		return p.parseRegDecl(t.text)
	case "gate":
		return p.parseGateDef()
	case "opaque":
		// Skip to semicolon: opaque gates cannot be executed anyway.
		for p.peek().kind != tokSemi && p.peek().kind != tokEOF {
			p.advance()
		}
		_, err := p.expect(tokSemi, "';'")
		return err
	case "measure":
		return p.parseMeasure(c)
	case "barrier":
		return p.parseBarrier(c)
	case "reset":
		return p.parseReset(c)
	case "if":
		return p.errf(t, "classical control ('if') is not supported")
	default:
		return p.parseGateApplication(c)
	}
}

func (p *parser) parseRegDecl(kind string) error {
	p.advance() // qreg/creg
	name, err := p.expect(tokIdent, "register name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLBracket, "'['"); err != nil {
		return err
	}
	sz, err := p.expect(tokNumber, "register size")
	if err != nil {
		return err
	}
	var n int
	if _, err := fmt.Sscanf(sz.text, "%d", &n); err != nil || n <= 0 {
		return p.errf(sz, "bad register size %q", sz.text)
	}
	if _, err := p.expect(tokRBracket, "']'"); err != nil {
		return err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return err
	}
	if kind == "qreg" {
		if _, dup := p.qregs[name.text]; dup {
			return p.errf(name, "duplicate qreg %q", name.text)
		}
		p.qregs[name.text] = regInfo{p.nq, n}
		p.qlist = append(p.qlist, name.text)
		p.nq += n
	} else {
		if _, dup := p.cregs[name.text]; dup {
			return p.errf(name, "duplicate creg %q", name.text)
		}
		p.cregs[name.text] = regInfo{p.nc, n}
		p.clist = append(p.clist, name.text)
		p.nc += n
	}
	return nil
}

// arg is a parsed register argument: whole register (idx < 0) or one element.
type arg struct {
	reg string
	idx int // -1 for whole register
}

func (p *parser) parseArg() (arg, error) {
	name, err := p.expect(tokIdent, "register reference")
	if err != nil {
		return arg{}, err
	}
	a := arg{reg: name.text, idx: -1}
	if p.peek().kind == tokLBracket {
		p.advance()
		num, err := p.expect(tokNumber, "index")
		if err != nil {
			return arg{}, err
		}
		if _, err := fmt.Sscanf(num.text, "%d", &a.idx); err != nil {
			return arg{}, p.errf(num, "bad index %q", num.text)
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return arg{}, err
		}
	}
	return a, nil
}

// resolveQ maps an argument to concrete qubit indices.
func (p *parser) resolveQ(a arg, at token) ([]int, error) {
	r, ok := p.qregs[a.reg]
	if !ok {
		return nil, p.errf(at, "unknown qreg %q", a.reg)
	}
	if a.idx >= 0 {
		if a.idx >= r.size {
			return nil, p.errf(at, "index %d out of range for qreg %q[%d]", a.idx, a.reg, r.size)
		}
		return []int{r.offset + a.idx}, nil
	}
	out := make([]int, r.size)
	for i := range out {
		out[i] = r.offset + i
	}
	return out, nil
}

func (p *parser) resolveC(a arg, at token) ([]int, error) {
	r, ok := p.cregs[a.reg]
	if !ok {
		return nil, p.errf(at, "unknown creg %q", a.reg)
	}
	if a.idx >= 0 {
		if a.idx >= r.size {
			return nil, p.errf(at, "index %d out of range for creg %q[%d]", a.idx, a.reg, r.size)
		}
		return []int{r.offset + a.idx}, nil
	}
	out := make([]int, r.size)
	for i := range out {
		out[i] = r.offset + i
	}
	return out, nil
}

func (p *parser) parseMeasure(c *circuit.Circuit) error {
	at := p.advance() // measure
	qa, err := p.parseArg()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokArrow, "'->'"); err != nil {
		return err
	}
	ca, err := p.parseArg()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return err
	}
	qs, err := p.resolveQ(qa, at)
	if err != nil {
		return err
	}
	cs, err := p.resolveC(ca, at)
	if err != nil {
		return err
	}
	if len(qs) != len(cs) {
		return p.errf(at, "measure operand sizes differ: %d vs %d", len(qs), len(cs))
	}
	for i := range qs {
		c.Gates = append(c.Gates, circuit.Gate{
			Name: circuit.GateMeasure, Qubits: []int{qs[i]}, Clbits: []int{cs[i]},
		})
	}
	return nil
}

func (p *parser) parseBarrier(c *circuit.Circuit) error {
	at := p.advance() // barrier
	var qubits []int
	for {
		a, err := p.parseArg()
		if err != nil {
			return err
		}
		qs, err := p.resolveQ(a, at)
		if err != nil {
			return err
		}
		qubits = append(qubits, qs...)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return err
	}
	c.Gates = append(c.Gates, circuit.Gate{Name: circuit.GateBarrier, Qubits: qubits})
	return nil
}

func (p *parser) parseReset(c *circuit.Circuit) error {
	at := p.advance() // reset
	a, err := p.parseArg()
	if err != nil {
		return err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return err
	}
	qs, err := p.resolveQ(a, at)
	if err != nil {
		return err
	}
	for _, q := range qs {
		c.Gates = append(c.Gates, circuit.Gate{Name: circuit.GateReset, Qubits: []int{q}})
	}
	return nil
}

// builtinName maps OpenQASM builtins and aliases onto the circuit vocabulary.
func builtinName(name string) string {
	switch name {
	case "U":
		return circuit.GateU3
	case "CX":
		return circuit.GateCX
	case "u":
		return circuit.GateU3
	case "cnot":
		return circuit.GateCX
	}
	return name
}

func (p *parser) parseGateApplication(c *circuit.Circuit) error {
	nameTok := p.advance()
	name := builtinName(nameTok.text)

	var params []float64
	if p.peek().kind == tokLParen {
		p.advance()
		if p.peek().kind != tokRParen {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return err
				}
				v, err := e.eval(nil)
				if err != nil {
					return p.errf(nameTok, "%v", err)
				}
				params = append(params, v)
				if p.peek().kind != tokComma {
					break
				}
				p.advance()
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return err
		}
	}

	var args []arg
	for {
		a, err := p.parseArg()
		if err != nil {
			return err
		}
		args = append(args, a)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return err
	}

	// Resolve each argument, then broadcast whole-register operands.
	resolved := make([][]int, len(args))
	bcast := 1
	for i, a := range args {
		qs, err := p.resolveQ(a, nameTok)
		if err != nil {
			return err
		}
		resolved[i] = qs
		if a.idx < 0 {
			if bcast != 1 && bcast != len(qs) {
				return p.errf(nameTok, "mismatched broadcast register sizes")
			}
			bcast = len(qs)
		}
	}
	for rep := 0; rep < bcast; rep++ {
		qubits := make([]int, len(args))
		for i := range args {
			if len(resolved[i]) == 1 {
				qubits[i] = resolved[i][0]
			} else {
				qubits[i] = resolved[i][rep]
			}
		}
		if err := p.emit(c, name, params, qubits, nameTok); err != nil {
			return err
		}
	}
	return nil
}

// emit appends a primitive gate or expands a user-defined one.
func (p *parser) emit(c *circuit.Circuit, name string, params []float64, qubits []int, at token) error {
	if def, ok := p.gates[name]; ok {
		return p.expand(c, def, name, params, qubits, at, 0)
	}
	if !circuit.KnownGate(name) {
		return p.errf(at, "unknown gate %q", name)
	}
	g := circuit.Gate{Name: name, Qubits: qubits, Params: params}
	if err := g.Validate(); err != nil {
		return p.errf(at, "%v", err)
	}
	c.Gates = append(c.Gates, g)
	return nil
}

const maxExpandDepth = 64

func (p *parser) expand(c *circuit.Circuit, def *gateDef, name string, params []float64, qubits []int, at token, depth int) error {
	if depth > maxExpandDepth {
		return p.errf(at, "gate %q expands too deeply (recursive definition?)", name)
	}
	if len(params) != len(def.params) {
		return p.errf(at, "gate %q wants %d params, got %d", name, len(def.params), len(params))
	}
	if len(qubits) != len(def.qargs) {
		return p.errf(at, "gate %q wants %d qubits, got %d", name, len(def.qargs), len(qubits))
	}
	env := map[string]float64{"pi": math.Pi}
	for i, pn := range def.params {
		env[pn] = params[i]
	}
	for _, op := range def.body {
		qs := make([]int, len(op.qargIdx))
		for i, idx := range op.qargIdx {
			qs[i] = qubits[idx]
		}
		if op.barrier {
			c.Gates = append(c.Gates, circuit.Gate{Name: circuit.GateBarrier, Qubits: qs})
			continue
		}
		var ps []float64
		for _, e := range op.params {
			v, err := e.eval(env)
			if err != nil {
				return p.errf(at, "in gate %q: %v", name, err)
			}
			ps = append(ps, v)
		}
		if sub, ok := p.gates[op.name]; ok {
			if err := p.expand(c, sub, op.name, ps, qs, at, depth+1); err != nil {
				return err
			}
			continue
		}
		if !circuit.KnownGate(op.name) {
			return p.errf(at, "gate %q uses unknown gate %q", name, op.name)
		}
		g := circuit.Gate{Name: op.name, Qubits: qs, Params: ps}
		if err := g.Validate(); err != nil {
			return p.errf(at, "in gate %q: %v", name, err)
		}
		c.Gates = append(c.Gates, g)
	}
	return nil
}

func (p *parser) parseGateDef() error {
	p.advance() // gate
	nameTok, err := p.expect(tokIdent, "gate name")
	if err != nil {
		return err
	}
	def := &gateDef{}
	if p.peek().kind == tokLParen {
		p.advance()
		if p.peek().kind != tokRParen {
			for {
				id, err := p.expect(tokIdent, "parameter name")
				if err != nil {
					return err
				}
				def.params = append(def.params, id.text)
				if p.peek().kind != tokComma {
					break
				}
				p.advance()
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return err
		}
	}
	for {
		id, err := p.expect(tokIdent, "qubit argument name")
		if err != nil {
			return err
		}
		def.qargs = append(def.qargs, id.text)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return err
	}
	qindex := map[string]int{}
	for i, n := range def.qargs {
		qindex[n] = i
	}
	for p.peek().kind != tokRBrace {
		if p.peek().kind == tokEOF {
			return p.errf(nameTok, "unterminated gate body for %q", nameTok.text)
		}
		op, err := p.parseBodyOp(qindex, def.params)
		if err != nil {
			return err
		}
		def.body = append(def.body, op)
	}
	p.advance() // }
	if _, dup := p.gates[nameTok.text]; dup {
		return p.errf(nameTok, "duplicate gate definition %q", nameTok.text)
	}
	p.gates[nameTok.text] = def
	return nil
}

func (p *parser) parseBodyOp(qindex map[string]int, paramNames []string) (bodyOp, error) {
	nameTok, err := p.expect(tokIdent, "gate name")
	if err != nil {
		return bodyOp{}, err
	}
	op := bodyOp{name: builtinName(nameTok.text)}
	if op.name == "barrier" {
		op.barrier = true
	}
	if p.peek().kind == tokLParen {
		p.advance()
		if p.peek().kind != tokRParen {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return bodyOp{}, err
				}
				op.params = append(op.params, e)
				if p.peek().kind != tokComma {
					break
				}
				p.advance()
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return bodyOp{}, err
		}
	}
	for {
		id, err := p.expect(tokIdent, "qubit argument")
		if err != nil {
			return bodyOp{}, err
		}
		idx, ok := qindex[id.text]
		if !ok {
			return bodyOp{}, p.errf(id, "unknown qubit argument %q in gate body", id.text)
		}
		op.qargIdx = append(op.qargIdx, idx)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return bodyOp{}, err
	}
	return op, nil
}
