package qasm

import (
	"strings"
	"testing"

	"qrio/internal/quantum/circuit"
)

func TestDumpRejectsInvalidCircuit(t *testing.T) {
	c := &circuit.Circuit{NumQubits: 1}
	c.Gates = append(c.Gates, circuit.Gate{Name: "h", Qubits: []int{5}})
	if _, err := Dump(c); err == nil {
		t.Fatal("invalid circuit dumped")
	}
}

func TestDumpEmptyCircuit(t *testing.T) {
	c := &circuit.Circuit{}
	s, err := Dump(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "OPENQASM 2.0;") {
		t.Fatalf("header missing:\n%s", s)
	}
	if strings.Contains(s, "qreg") {
		t.Fatalf("zero-qubit circuit declared a register:\n%s", s)
	}
	if _, err := Parse(s); err != nil {
		t.Fatalf("empty dump does not re-parse: %v", err)
	}
}

func TestDumpIncludesNameComment(t *testing.T) {
	c := circuit.New(1)
	c.Name = "my-job\ninjected"
	c.H(0)
	s, err := Dump(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "// circuit: my-job injected") {
		t.Fatalf("name comment missing or newline not sanitised:\n%s", s)
	}
	if _, err := Parse(s); err != nil {
		t.Fatalf("named dump does not re-parse: %v", err)
	}
}

func TestDumpResetAndMeasure(t *testing.T) {
	c := circuit.New(2)
	c.Reset(0)
	c.H(0)
	c.Measure(0, 1)
	s, err := Dump(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "reset q[0];") {
		t.Errorf("reset missing:\n%s", s)
	}
	if !strings.Contains(s, "measure q[0] -> c[1];") {
		t.Errorf("measure mapping missing:\n%s", s)
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	qs, cs := back.MeasuredQubits()
	if len(qs) != 1 || qs[0] != 0 || cs[0] != 1 {
		t.Fatalf("measure mapping lost: %v -> %v", qs, cs)
	}
}

func TestDumpIdempotent(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.U3(1, 0.1, 0.2, 0.3)
	c.CX(0, 2)
	c.MeasureAll()
	s1, err := Dump(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(s1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Dump(back)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("dump not idempotent:\n%s\nvs\n%s", s1, s2)
	}
}

func TestValidIdent(t *testing.T) {
	for ident, want := range map[string]bool{
		"q": true, "my_reg2": true, "": false, "2q": false, "a-b": false,
	} {
		if got := ValidIdent(ident); got != want {
			t.Errorf("ValidIdent(%q) = %v, want %v", ident, got, want)
		}
	}
}

func TestLexerScientificAndStrings(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[2];
u1(1.5e+2) q[0];
u1(2E-3) q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Params[0] != 150 {
		t.Errorf("1.5e+2 = %v", c.Gates[0].Params[0])
	}
	if c.Gates[1].Params[0] != 0.002 {
		t.Errorf("2E-3 = %v", c.Gates[1].Params[0])
	}
	if _, err := Parse("OPENQASM 2.0;\ninclude \"unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Parse("OPENQASM 2.0;\nqreg q[1];\nh q[0]; @"); err == nil {
		t.Error("stray character accepted")
	}
}
