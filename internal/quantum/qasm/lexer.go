// Package qasm implements an OpenQASM 2.0 reader and writer for the subset
// used by QRIO jobs: version header, include, qreg/creg declarations, the
// qelib1 gate vocabulary, custom gate definitions, barrier, reset and
// measure. Users submit circuits to QRIO as QASM files (paper §3.2); this
// package is the REST-facing front end for them.
package qasm

import (
	"fmt"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLBracket // [
	tokRBracket // ]
	tokLParen   // (
	tokRParen   // )
	tokLBrace   // {
	tokRBrace   // }
	tokSemi     // ;
	tokComma    // ,
	tokArrow    // ->
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokCaret
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) error(format string, args ...any) error {
	return fmt.Errorf("qasm: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		switch {
		case ch == '\n':
			l.line++
			l.pos++
		case ch == ' ' || ch == '\t' || ch == '\r':
			l.pos++
		case ch == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	start := l.pos
	ch := l.src[l.pos]
	switch {
	case unicode.IsLetter(rune(ch)) || ch == '_':
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], l.line}, nil
	case unicode.IsDigit(rune(ch)) || ch == '.':
		seenE := false
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if unicode.IsDigit(rune(c)) || c == '.' {
				l.pos++
				continue
			}
			if (c == 'e' || c == 'E') && !seenE {
				seenE = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				continue
			}
			break
		}
		return token{tokNumber, l.src[start:l.pos], l.line}, nil
	case ch == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.error("unterminated string")
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{tokString, text, l.line}, nil
	case ch == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
		l.pos += 2
		return token{tokArrow, "->", l.line}, nil
	}
	l.pos++
	simple := map[byte]tokenKind{
		'[': tokLBracket, ']': tokRBracket, '(': tokLParen, ')': tokRParen,
		'{': tokLBrace, '}': tokRBrace, ';': tokSemi, ',': tokComma,
		'+': tokPlus, '-': tokMinus, '*': tokStar, '/': tokSlash, '^': tokCaret,
	}
	if k, ok := simple[ch]; ok {
		return token{k, string(ch), l.line}, nil
	}
	return token{}, l.error("unexpected character %q", string(ch))
}

func isIdentChar(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_'
}

// tokenize lexes the whole source up front; QASM files are small.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

// ValidIdent reports whether s is a valid QASM identifier; the writer uses
// it to guard register names.
func ValidIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return !unicode.IsDigit(rune(s[0]))
}
