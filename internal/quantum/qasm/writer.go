package qasm

import (
	"fmt"
	"strings"

	"qrio/internal/quantum/circuit"
)

// Dump renders a circuit as OpenQASM 2.0 source with a single quantum
// register q and classical register c. The output round-trips through Parse.
func Dump(c *circuit.Circuit) (string, error) {
	if err := c.Validate(); err != nil {
		return "", fmt.Errorf("qasm: cannot dump invalid circuit: %w", err)
	}
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	if c.Name != "" {
		fmt.Fprintf(&b, "// circuit: %s\n", strings.ReplaceAll(c.Name, "\n", " "))
	}
	if c.NumQubits > 0 {
		fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	}
	if c.NumClbits > 0 {
		fmt.Fprintf(&b, "creg c[%d];\n", c.NumClbits)
	}
	for _, g := range c.Gates {
		line, err := dumpGate(g)
		if err != nil {
			return "", err
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func dumpGate(g circuit.Gate) (string, error) {
	switch g.Name {
	case circuit.GateMeasure:
		return fmt.Sprintf("measure q[%d] -> c[%d];", g.Qubits[0], g.Clbits[0]), nil
	case circuit.GateBarrier:
		if len(g.Qubits) == 0 {
			return "barrier q;", nil
		}
		parts := make([]string, len(g.Qubits))
		for i, q := range g.Qubits {
			parts[i] = fmt.Sprintf("q[%d]", q)
		}
		return "barrier " + strings.Join(parts, ",") + ";", nil
	case circuit.GateReset:
		return fmt.Sprintf("reset q[%d];", g.Qubits[0]), nil
	}
	if !circuit.KnownGate(g.Name) {
		return "", fmt.Errorf("qasm: cannot dump unknown gate %q", g.Name)
	}
	var b strings.Builder
	b.WriteString(g.Name)
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.17g", p)
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	for i, q := range g.Qubits {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "q[%d]", q)
	}
	b.WriteByte(';')
	return b.String(), nil
}
