package qasm

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"qrio/internal/quantum/circuit"
)

const bvSample = `
OPENQASM 2.0;
include "qelib1.inc";
// 4-qubit Bernstein-Vazirani with secret 101
qreg q[4];
creg c[3];
x q[3];
h q;
cx q[0],q[3];
cx q[2],q[3];
h q[0];
h q[1];
h q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
`

func TestParseBV(t *testing.T) {
	c, err := Parse(bvSample)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 4 || c.NumClbits != 3 {
		t.Fatalf("registers = (%d,%d), want (4,3)", c.NumQubits, c.NumClbits)
	}
	ops := c.CountOps()
	if ops["h"] != 7 { // broadcast h q; expands to 4, plus 3 singles
		t.Errorf("h count = %d, want 7", ops["h"])
	}
	if ops["cx"] != 2 || ops["measure"] != 3 || ops["x"] != 1 {
		t.Errorf("ops = %v", ops)
	}
}

func TestParseParameterExpressions(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[1];
u3(pi/2, -pi/4, 2*pi) q[0];
u1(1.5e-1) q[0];
rz(cos(0)) q[0];
u1(2^3) q[0];
u1((1+2)*3) q[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Gates[0]
	want := []float64{math.Pi / 2, -math.Pi / 4, 2 * math.Pi}
	for i, w := range want {
		if math.Abs(g.Params[i]-w) > 1e-12 {
			t.Errorf("u3 param %d = %g, want %g", i, g.Params[i], w)
		}
	}
	if math.Abs(c.Gates[1].Params[0]-0.15) > 1e-12 {
		t.Errorf("u1 param = %g, want 0.15", c.Gates[1].Params[0])
	}
	if math.Abs(c.Gates[2].Params[0]-1) > 1e-12 {
		t.Errorf("rz(cos(0)) = %g, want 1", c.Gates[2].Params[0])
	}
	if math.Abs(c.Gates[3].Params[0]-8) > 1e-12 {
		t.Errorf("2^3 = %g, want 8", c.Gates[3].Params[0])
	}
	if math.Abs(c.Gates[4].Params[0]-9) > 1e-12 {
		t.Errorf("(1+2)*3 = %g, want 9", c.Gates[4].Params[0])
	}
}

func TestParseCustomGate(t *testing.T) {
	src := `OPENQASM 2.0;
gate majority a,b,c {
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
gate rot(theta) q { ry(theta/2) q; ry(theta/2) q; }
qreg q[3];
majority q[0],q[1],q[2];
rot(pi) q[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ops := c.CountOps()
	if ops["cx"] != 2 || ops["ccx"] != 1 || ops["ry"] != 2 {
		t.Fatalf("ops = %v", ops)
	}
	if math.Abs(c.Gates[3].Params[0]-math.Pi/2) > 1e-12 {
		t.Errorf("expanded ry angle = %g, want pi/2", c.Gates[3].Params[0])
	}
}

func TestParseNestedCustomGates(t *testing.T) {
	src := `OPENQASM 2.0;
gate bell a,b { h a; cx a,b; }
gate doublebell a,b,c,d { bell a,b; bell c,d; }
qreg q[4];
doublebell q[0],q[1],q[2],q[3];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ops := c.CountOps()
	if ops["h"] != 2 || ops["cx"] != 2 {
		t.Fatalf("ops = %v", ops)
	}
}

func TestParseMultipleRegisters(t *testing.T) {
	src := `OPENQASM 2.0;
qreg a[2];
qreg b[3];
creg m[2];
h a[1];
cx a[1],b[0];
measure a -> m;
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 5 {
		t.Fatalf("NumQubits = %d, want 5", c.NumQubits)
	}
	// a occupies 0-1, b occupies 2-4.
	if c.Gates[0].Qubits[0] != 1 {
		t.Errorf("h target = %d, want 1", c.Gates[0].Qubits[0])
	}
	if c.Gates[1].Qubits[0] != 1 || c.Gates[1].Qubits[1] != 2 {
		t.Errorf("cx operands = %v, want [1 2]", c.Gates[1].Qubits)
	}
	qs, cs := c.MeasuredQubits()
	if len(qs) != 2 || qs[0] != 0 || qs[1] != 1 || cs[0] != 0 || cs[1] != 1 {
		t.Errorf("measures = %v -> %v", qs, cs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                             // missing header
		"OPENQASM 2.0;\nqreg q[0];",                    // zero-size register
		"OPENQASM 2.0;\nqreg q[2];\nh q[5];",           // index out of range
		"OPENQASM 2.0;\nqreg q[2];\nbogus q[0];",       // unknown gate
		"OPENQASM 2.0;\nqreg q[2];\ncx q[0];",          // wrong arity
		"OPENQASM 2.0;\nqreg q[2];\nh q[0]",            // missing semicolon
		"OPENQASM 2.0;\nqreg q[2];\nqreg q[2];",        // duplicate register
		"OPENQASM 2.0;\nqreg q[1];\nu1(zzz) q[0];",     // unknown identifier in expr
		"OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];",     // repeated qubit
		"OPENQASM 2.0;\nqreg q[1];\nif (c==1) x q[0];", // classical control
		"OPENQASM 2.0;\nqreg q[1];\nu1(1/0) q[0];",     // division by zero
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: expected error for %q", i, src)
		}
	}
}

func TestOpaqueIsSkipped(t *testing.T) {
	src := `OPENQASM 2.0;
opaque magic(a,b) q0, q1;
qreg q[1];
h q[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 || c.Gates[0].Name != "h" {
		t.Fatalf("gates = %v", c.Gates)
	}
}

func TestBuiltinAliases(t *testing.T) {
	src := `OPENQASM 2.0;
qreg q[2];
U(0.1,0.2,0.3) q[0];
CX q[0],q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Name != circuit.GateU3 || c.Gates[1].Name != circuit.GateCX {
		t.Fatalf("gates = %v", c.Gates)
	}
}

// randomCircuit builds a random circuit over the full vocabulary the writer
// supports, for round-trip testing.
func randomCircuit(rng *rand.Rand, nq int) *circuit.Circuit {
	c := circuit.New(nq)
	names1 := []string{"h", "x", "y", "z", "s", "sdg", "t", "tdg"}
	for i := 0; i < 30; i++ {
		switch rng.Intn(4) {
		case 0:
			c.MustAppend(circuit.Gate{Name: names1[rng.Intn(len(names1))], Qubits: []int{rng.Intn(nq)}})
		case 1:
			a := rng.Intn(nq)
			b := (a + 1 + rng.Intn(nq-1)) % nq
			c.CX(a, b)
		case 2:
			c.U3(rng.Intn(nq), rng.Float64()*6, rng.Float64()*6-3, rng.Float64()*6)
		case 3:
			c.RZ(rng.Intn(nq), rng.Float64()*2*math.Pi)
		}
	}
	c.MeasureAll()
	return c
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		orig := randomCircuit(rng, 2+rng.Intn(4))
		src, err := Dump(orig)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("re-parse failed: %v\nsource:\n%s", err, src)
		}
		if back.NumQubits != orig.NumQubits || back.NumClbits != orig.NumClbits {
			t.Fatalf("register mismatch after round trip")
		}
		if len(back.Gates) != len(orig.Gates) {
			t.Fatalf("gate count %d != %d", len(back.Gates), len(orig.Gates))
		}
		for i := range orig.Gates {
			a, b := orig.Gates[i], back.Gates[i]
			if a.Name != b.Name || len(a.Qubits) != len(b.Qubits) {
				t.Fatalf("gate %d mismatch: %v vs %v", i, a, b)
			}
			for j := range a.Qubits {
				if a.Qubits[j] != b.Qubits[j] {
					t.Fatalf("gate %d qubit mismatch: %v vs %v", i, a, b)
				}
			}
			for j := range a.Params {
				if math.Abs(a.Params[j]-b.Params[j]) > 1e-12 {
					t.Fatalf("gate %d param mismatch: %v vs %v", i, a, b)
				}
			}
		}
	}
}

func TestDumpBarrierForms(t *testing.T) {
	c := circuit.New(3)
	c.Barrier()
	c.Barrier(0, 2)
	s, err := Dump(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "barrier q;") {
		t.Errorf("missing whole-register barrier in:\n%s", s)
	}
	if !strings.Contains(s, "barrier q[0],q[2];") {
		t.Errorf("missing explicit barrier in:\n%s", s)
	}
	if _, err := Parse(s); err != nil {
		t.Fatalf("dumped barriers do not re-parse: %v", err)
	}
}
