package qasm

import (
	"fmt"
	"math"
	"strconv"
)

// expr is a parameter-expression AST node. OpenQASM 2.0 allows real
// arithmetic over literals, pi, gate parameters and the unary functions
// sin/cos/tan/exp/ln/sqrt.
type expr struct {
	kind  exprKind
	num   float64
	name  string // ident or function name
	op    tokenKind
	left  *expr
	right *expr
	arg   *expr
}

type exprKind int

const (
	exprNum exprKind = iota
	exprIdent
	exprBinary
	exprUnaryNeg
	exprCall
)

func (e *expr) eval(env map[string]float64) (float64, error) {
	switch e.kind {
	case exprNum:
		return e.num, nil
	case exprIdent:
		if e.name == "pi" {
			return math.Pi, nil
		}
		if env != nil {
			if v, ok := env[e.name]; ok {
				return v, nil
			}
		}
		return 0, fmt.Errorf("unknown identifier %q in expression", e.name)
	case exprUnaryNeg:
		v, err := e.arg.eval(env)
		return -v, err
	case exprCall:
		v, err := e.arg.eval(env)
		if err != nil {
			return 0, err
		}
		switch e.name {
		case "sin":
			return math.Sin(v), nil
		case "cos":
			return math.Cos(v), nil
		case "tan":
			return math.Tan(v), nil
		case "exp":
			return math.Exp(v), nil
		case "ln":
			return math.Log(v), nil
		case "sqrt":
			return math.Sqrt(v), nil
		}
		return 0, fmt.Errorf("unknown function %q", e.name)
	case exprBinary:
		l, err := e.left.eval(env)
		if err != nil {
			return 0, err
		}
		r, err := e.right.eval(env)
		if err != nil {
			return 0, err
		}
		switch e.op {
		case tokPlus:
			return l + r, nil
		case tokMinus:
			return l - r, nil
		case tokStar:
			return l * r, nil
		case tokSlash:
			if r == 0 {
				return 0, fmt.Errorf("division by zero in expression")
			}
			return l / r, nil
		case tokCaret:
			return math.Pow(l, r), nil
		}
	}
	return 0, fmt.Errorf("malformed expression")
}

// parseExpr parses an additive expression.
func (p *parser) parseExpr() (*expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokPlus && k != tokMinus {
			return left, nil
		}
		p.advance()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &expr{kind: exprBinary, op: k, left: left, right: right}
	}
}

func (p *parser) parseTerm() (*expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokStar && k != tokSlash {
			return left, nil
		}
		p.advance()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &expr{kind: exprBinary, op: k, left: left, right: right}
	}
}

// parseFactor handles exponentiation (right-associative).
func (p *parser) parseFactor() (*expr, error) {
	base, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokCaret {
		p.advance()
		exp, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &expr{kind: exprBinary, op: tokCaret, left: base, right: exp}, nil
	}
	return base, nil
}

func (p *parser) parseAtom() (*expr, error) {
	t := p.advance()
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf(t, "bad number %q", t.text)
		}
		return &expr{kind: exprNum, num: v}, nil
	case tokMinus:
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &expr{kind: exprUnaryNeg, arg: a}, nil
	case tokPlus:
		return p.parseAtom()
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		if p.peek().kind == tokLParen {
			p.advance()
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			return &expr{kind: exprCall, name: t.text, arg: a}, nil
		}
		return &expr{kind: exprIdent, name: t.text}, nil
	}
	return nil, p.errf(t, "expected expression, got %s", t)
}
