package statevec

import (
	"math"
	"math/rand"
	"testing"

	"qrio/internal/quantum/circuit"
	"qrio/internal/quantum/noise"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBellState(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Probabilities()
	if !approxEq(p[0], 0.5, 1e-12) || !approxEq(p[3], 0.5, 1e-12) {
		t.Fatalf("bell probabilities = %v", p)
	}
	if !approxEq(p[1], 0, 1e-12) || !approxEq(p[2], 0, 1e-12) {
		t.Fatalf("bell probabilities = %v", p)
	}
}

func TestGateIdentities(t *testing.T) {
	// Pairs of circuits that must produce identical states up to global phase.
	build := func(f func(c *circuit.Circuit)) *State {
		c := circuit.New(2)
		// Start from a non-trivial state so identities are exercised fully.
		c.H(0)
		c.T(0)
		c.H(1)
		c.S(1)
		c.CX(0, 1)
		f(c)
		s, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name string
		a, b func(c *circuit.Circuit)
	}{
		{"HH=I", func(c *circuit.Circuit) { c.H(0); c.H(0) }, func(c *circuit.Circuit) {}},
		{"SS=Z", func(c *circuit.Circuit) { c.S(0); c.S(0) }, func(c *circuit.Circuit) { c.Z(0) }},
		{"TT=S", func(c *circuit.Circuit) { c.T(0); c.T(0) }, func(c *circuit.Circuit) { c.S(0) }},
		{"HXH=Z", func(c *circuit.Circuit) { c.H(0); c.X(0); c.H(0) }, func(c *circuit.Circuit) { c.Z(0) }},
		{"swap=3cx", func(c *circuit.Circuit) { c.Swap(0, 1) }, func(c *circuit.Circuit) {
			c.CX(0, 1)
			c.CX(1, 0)
			c.CX(0, 1)
		}},
		{"cz sym", func(c *circuit.Circuit) { c.CZ(0, 1) }, func(c *circuit.Circuit) { c.CZ(1, 0) }},
		{"u2(0,pi)=h", func(c *circuit.Circuit) { c.U2(0, 0, math.Pi) }, func(c *circuit.Circuit) { c.H(0) }},
		{"u3(pi,0,pi)=x", func(c *circuit.Circuit) { c.U3(0, math.Pi, 0, math.Pi) }, func(c *circuit.Circuit) { c.X(0) }},
		{"rz vs u1 phase", func(c *circuit.Circuit) { c.RZ(0, 0.7) }, func(c *circuit.Circuit) { c.U1(0, 0.7) }},
	}
	for _, tc := range cases {
		sa, sb := build(tc.a), build(tc.b)
		if !sa.EqualUpToGlobalPhase(sb, 1e-9) {
			t.Errorf("%s: states differ", tc.name)
		}
	}
}

func TestDecomposedGatesMatchDirect(t *testing.T) {
	// ccx, cswap, ccz, crz, rzz, ch, cy decompositions must match a direct
	// matrix-free reference: we compare the decomposition against the
	// statevector of known truth tables / phase behaviour.
	c := circuit.New(3)
	c.X(0)
	c.X(1)
	c.CCX(0, 1, 2) // should flip qubit 2
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Probabilities()
	if !approxEq(p[7], 1, 1e-9) {
		t.Fatalf("ccx truth table broken: %v", p)
	}

	c2 := circuit.New(3)
	c2.X(0)
	c2.CCX(0, 1, 2) // only one control set: no flip
	s2, err := Run(c2)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(s2.Probabilities()[1], 1, 1e-9) {
		t.Fatalf("ccx fired with one control: %v", s2.Probabilities())
	}
}

func TestIdealDistributionGHZ(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.CX(0, 1)
	c.CX(1, 2)
	c.MeasureAll()
	dist, err := IdealDistribution(c)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(dist["000"], 0.5, 1e-12) || !approxEq(dist["111"], 0.5, 1e-12) {
		t.Fatalf("GHZ distribution = %v", dist)
	}
	if len(dist) != 2 {
		t.Fatalf("GHZ distribution has %d entries: %v", len(dist), dist)
	}
}

func TestIdealDistributionPartialMeasure(t *testing.T) {
	c := circuit.NewWithClbits(2, 1)
	c.H(0)
	c.CX(0, 1)
	c.Measure(1, 0) // only measure qubit 1 into clbit 0
	dist, err := IdealDistribution(c)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(dist["0"], 0.5, 1e-12) || !approxEq(dist["1"], 0.5, 1e-12) {
		t.Fatalf("partial distribution = %v", dist)
	}
}

func TestMidCircuitMeasurementRejected(t *testing.T) {
	c := circuit.New(1)
	c.Measure(0, 0)
	c.H(0)
	if _, err := IdealDistribution(c); err == nil {
		t.Fatal("expected mid-circuit measurement error")
	}
}

func TestMeasureQubitStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ones := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		s, _ := New(1)
		s.Apply1Q(0, circuit.Gate{Name: circuit.GateH}.MustMatrix1Q())
		ones += s.MeasureQubit(0, rng)
	}
	frac := float64(ones) / trials
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("H measurement bias: %v", frac)
	}
}

func TestMeasureCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, _ := New(2)
	s.Apply1Q(0, circuit.Gate{Name: circuit.GateH}.MustMatrix1Q())
	s.ApplyCX(0, 1)
	out := s.MeasureQubit(0, rng)
	// After measuring qubit 0 of a Bell pair, qubit 1 must agree.
	if got := s.ProbOne(1); !approxEq(got, float64(out), 1e-9) {
		t.Fatalf("collapse broken: out=%d P(q1=1)=%v", out, got)
	}
}

func TestNoisyCountsNoiselessMatchesIdeal(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	c.MeasureAll()
	counts, err := Noisy{Shots: 2000, Seed: 5}.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	if counts["01"]+counts["10"] != 0 {
		t.Fatalf("noiseless bell produced odd-parity outcomes: %v", counts)
	}
	frac := float64(counts["00"]) / 2000
	if frac < 0.44 || frac > 0.56 {
		t.Fatalf("bell 00 fraction = %v", frac)
	}
}

func TestNoisyCountsReadoutError(t *testing.T) {
	// |0> with 30% readout flip should read 1 about 30% of the time.
	c := circuit.New(1)
	c.MeasureAll()
	m := noise.Uniform(1, 0, 0, 0.3)
	counts, err := Noisy{Model: m, Shots: 5000, Seed: 9}.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(counts["1"]) / 5000
	if frac < 0.26 || frac > 0.34 {
		t.Fatalf("readout flip fraction = %v, want ~0.3", frac)
	}
}

func TestNoisyCountsGateErrorDegradesFidelity(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	c.MeasureAll()
	m := noise.Uniform(2, 0.05, 0.2, 0)
	counts, err := Noisy{Model: m, Shots: 4000, Seed: 13}.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	bad := counts["01"] + counts["10"]
	if bad == 0 {
		t.Fatal("depolarizing noise produced no odd-parity outcomes")
	}
	if float64(bad)/4000 > 0.5 {
		t.Fatalf("noise overwhelming: %v", counts)
	}
}

func TestFormatBits(t *testing.T) {
	if got := FormatBits(0b101, 3); got != "101" {
		t.Fatalf("FormatBits(0b101,3) = %q", got)
	}
	if got := FormatBits(1, 3); got != "001" {
		t.Fatalf("FormatBits(1,3) = %q (bit 0 must be rightmost)", got)
	}
}

func TestResetQubit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		s, _ := New(1)
		s.Apply1Q(0, circuit.Gate{Name: circuit.GateH}.MustMatrix1Q())
		s.ResetQubit(0, rng)
		if !approxEq(s.ProbOne(0), 0, 1e-12) {
			t.Fatal("reset did not return qubit to |0>")
		}
	}
}

func TestNewRejectsHugeRegisters(t *testing.T) {
	if _, err := New(MaxQubits + 1); err == nil {
		t.Fatal("expected error above MaxQubits")
	}
	if _, err := New(-1); err == nil {
		t.Fatal("expected error for negative size")
	}
}

func TestRunRejectsMeasure(t *testing.T) {
	c := circuit.New(1)
	c.Measure(0, 0)
	if _, err := Run(c); err == nil {
		t.Fatal("Run must reject measurement")
	}
}
