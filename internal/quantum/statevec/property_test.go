package statevec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qrio/internal/quantum/circuit"
)

// TestNormPreservation: any sequence of unitary gates preserves the state
// norm — the core invariant of the simulator.
func TestNormPreservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		s, err := New(n)
		if err != nil {
			return false
		}
		names := []string{"h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx"}
		for i := 0; i < 40; i++ {
			switch rng.Intn(4) {
			case 0:
				s.Apply1Q(rng.Intn(n), circuit.Gate{
					Name: names[rng.Intn(len(names))]}.MustMatrix1Q())
			case 1:
				a := rng.Intn(n)
				s.ApplyCX(a, (a+1+rng.Intn(n-1))%n)
			case 2:
				a := rng.Intn(n)
				s.ApplyCZ(a, (a+1+rng.Intn(n-1))%n)
			case 3:
				s.Apply1Q(rng.Intn(n), circuit.U3Matrix(
					rng.Float64()*6, rng.Float64()*6, rng.Float64()*6))
			}
		}
		norm := 0.0
		for _, p := range s.Probabilities() {
			norm += p
		}
		return math.Abs(norm-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestMeasurementPreservesNormalization: post-measurement states remain
// normalised regardless of outcome.
func TestMeasurementPreservesNormalization(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3
		s, _ := New(n)
		for q := 0; q < n; q++ {
			s.Apply1Q(q, circuit.U3Matrix(rng.Float64()*3, rng.Float64()*3, rng.Float64()*3))
		}
		s.ApplyCX(0, 1)
		s.ApplyCX(1, 2)
		s.MeasureQubit(rng.Intn(n), rng)
		norm := 0.0
		for _, p := range s.Probabilities() {
			norm += p
		}
		return math.Abs(norm-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSwapIsPermutation: ApplySwap permutes amplitudes exactly.
func TestSwapIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s, _ := New(3)
	for q := 0; q < 3; q++ {
		s.Apply1Q(q, circuit.U3Matrix(rng.Float64()*3, rng.Float64(), rng.Float64()))
	}
	before := append([]complex128(nil), s.Amplitudes()...)
	s.ApplySwap(0, 2)
	after := s.Amplitudes()
	for i := range before {
		// Swap qubits 0 and 2 of index i.
		b0, b2 := (i>>0)&1, (i>>2)&1
		j := (i &^ 0b101) | (b0 << 2) | (b2 << 0)
		if before[i] != after[j] {
			t.Fatalf("swap broke amplitude %d -> %d", i, j)
		}
	}
}

// TestCloneIsIndependent mutating a clone leaves the original untouched.
func TestCloneIsIndependent(t *testing.T) {
	s, _ := New(2)
	s.Apply1Q(0, circuit.Gate{Name: circuit.GateH}.MustMatrix1Q())
	c := s.Clone()
	c.ApplyCX(0, 1)
	if math.Abs(s.ProbOne(1)) > 1e-12 {
		t.Fatal("clone shares amplitudes with original")
	}
}

// TestSampleIndexMatchesDistribution: empirical sampling converges to the
// state's probabilities.
func TestSampleIndexMatchesDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s, _ := New(2)
	s.Apply1Q(0, circuit.U3Matrix(1.0, 0, 0)) // biased qubit
	probs := s.Probabilities()
	counts := make([]int, 4)
	const trials = 20000
	for i := 0; i < trials; i++ {
		counts[s.SampleIndex(rng)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / trials
		if math.Abs(got-p) > 0.02 {
			t.Fatalf("index %d: sampled %v, want %v", i, got, p)
		}
	}
}
