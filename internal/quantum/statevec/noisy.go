package statevec

import (
	"fmt"
	"math/rand"

	"qrio/internal/quantum/circuit"
	"qrio/internal/quantum/noise"
)

// Noisy executes circuits shot-by-shot under a Pauli + readout noise model
// (Monte-Carlo trajectories). Each shot replays the whole circuit with
// freshly sampled gate errors, which is exact for Pauli channels.
type Noisy struct {
	Model *noise.Model // nil means noiseless
	Shots int          // number of trajectories; must be > 0
	Seed  int64        // RNG seed; runs are reproducible per seed
}

// Counts runs the circuit and returns a histogram over classical bitstrings
// (or over all qubits when the circuit has no measurements).
func (r Noisy) Counts(c *circuit.Circuit) (map[string]int, error) {
	if r.Shots <= 0 {
		return nil, fmt.Errorf("statevec: Shots must be positive, got %d", r.Shots)
	}
	qubits, clbits, err := terminalMeasurements(c)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	counts := make(map[string]int)
	body := c.WithoutMeasurements()
	nc := c.NumClbits
	measureAll := len(qubits) == 0
	if measureAll {
		nc = c.NumQubits
	}

	for shot := 0; shot < r.Shots; shot++ {
		s, err := New(c.NumQubits)
		if err != nil {
			return nil, err
		}
		for _, g := range body.Gates {
			if g.Name == circuit.GateReset {
				s.ResetQubit(g.Qubits[0], rng)
				continue
			}
			if err := s.ApplyGate(g); err != nil {
				return nil, err
			}
			if r.Model != nil && g.IsUnitary() && g.Name != circuit.GateID {
				for _, e := range r.Model.SampleGateError(g.Qubits, rng) {
					s.ApplyPauli(e.Qubit, e.Pauli)
				}
			}
		}
		idx := s.SampleIndex(rng)
		var key int
		if measureAll {
			key = idx
			if r.Model != nil {
				key = flipAllReadout(idx, c.NumQubits, r.Model, rng)
			}
		} else {
			bits := make([]int, len(qubits))
			for i, q := range qubits {
				if idx&(1<<uint(q)) != 0 {
					bits[i] = 1
				}
			}
			r.Model.FlipReadout(qubits, bits, rng)
			for i, b := range bits {
				if b == 1 {
					key |= 1 << uint(clbits[i])
				}
			}
		}
		counts[FormatBits(key, nc)]++
	}
	return counts, nil
}

func flipAllReadout(idx, n int, m *noise.Model, rng *rand.Rand) int {
	for q := 0; q < n; q++ {
		if rng.Float64() < m.ReadoutProb(q) {
			idx ^= 1 << uint(q)
		}
	}
	return idx
}

// CountsToDistribution normalises a histogram into a probability map.
func CountsToDistribution(counts map[string]int) map[string]float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	dist := make(map[string]float64, len(counts))
	if total == 0 {
		return dist
	}
	for k, c := range counts {
		dist[k] = float64(c) / float64(total)
	}
	return dist
}
