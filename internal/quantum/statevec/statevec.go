// Package statevec implements a dense state-vector simulator. It provides
// the "oracle" execution path of the paper's evaluation (§4.3): exact ideal
// output distributions for arbitrary circuits, and Monte-Carlo noisy
// execution under a device noise model. Memory grows as 2^n; it is intended
// for the ≤ ~20-qubit circuits the paper schedules.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"qrio/internal/quantum/circuit"
	"qrio/internal/quantum/noise"
)

// MaxQubits bounds the register size to keep allocations sane (2^24 amps).
const MaxQubits = 24

// State is an n-qubit pure state. Amplitude indices are little-endian:
// qubit 0 is the least-significant bit of the index.
type State struct {
	n    int
	amps []complex128
}

// New returns |0...0> over n qubits.
func New(n int) (*State, error) {
	if n < 0 || n > MaxQubits {
		return nil, fmt.Errorf("statevec: %d qubits out of range [0,%d]", n, MaxQubits)
	}
	s := &State{n: n, amps: make([]complex128, 1<<uint(n))}
	s.amps[0] = 1
	return s, nil
}

// NumQubits returns the register size.
func (s *State) NumQubits() int { return s.n }

// Amplitudes exposes the raw amplitude slice (do not mutate).
func (s *State) Amplitudes() []complex128 { return s.amps }

// Clone returns a deep copy.
func (s *State) Clone() *State {
	amps := make([]complex128, len(s.amps))
	copy(amps, s.amps)
	return &State{n: s.n, amps: amps}
}

// Apply1Q applies a 2x2 unitary to qubit q.
func (s *State) Apply1Q(q int, m circuit.Matrix2) {
	bit := 1 << uint(q)
	for base := 0; base < len(s.amps); base += bit << 1 {
		for i := base; i < base+bit; i++ {
			a0, a1 := s.amps[i], s.amps[i|bit]
			s.amps[i] = m[0][0]*a0 + m[0][1]*a1
			s.amps[i|bit] = m[1][0]*a0 + m[1][1]*a1
		}
	}
}

// ApplyCX applies controlled-X with the given control and target.
func (s *State) ApplyCX(ctl, tgt int) {
	cb, tb := 1<<uint(ctl), 1<<uint(tgt)
	for i := range s.amps {
		if i&cb != 0 && i&tb == 0 {
			j := i | tb
			s.amps[i], s.amps[j] = s.amps[j], s.amps[i]
		}
	}
}

// ApplyCZ applies controlled-Z on the pair (a, b).
func (s *State) ApplyCZ(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := range s.amps {
		if i&ab != 0 && i&bb != 0 {
			s.amps[i] = -s.amps[i]
		}
	}
}

// ApplySwap exchanges qubits a and b.
func (s *State) ApplySwap(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := range s.amps {
		hasA, hasB := i&ab != 0, i&bb != 0
		if hasA && !hasB {
			j := (i &^ ab) | bb
			s.amps[i], s.amps[j] = s.amps[j], s.amps[i]
		}
	}
}

// ApplyPauli applies a single-qubit Pauli error.
func (s *State) ApplyPauli(q int, p noise.Pauli) {
	switch p {
	case noise.PauliX:
		s.Apply1Q(q, circuit.Gate{Name: circuit.GateX}.MustMatrix1Q())
	case noise.PauliY:
		s.Apply1Q(q, circuit.Gate{Name: circuit.GateY}.MustMatrix1Q())
	case noise.PauliZ:
		s.Apply1Q(q, circuit.Gate{Name: circuit.GateZ}.MustMatrix1Q())
	}
}

// ApplyGate applies any unitary gate from the circuit vocabulary,
// decomposing multi-qubit gates beyond {cx, cz, swap}.
func (s *State) ApplyGate(g circuit.Gate) error {
	if !g.IsUnitary() {
		return fmt.Errorf("statevec: gate %q is not unitary", g.Name)
	}
	for _, q := range g.Qubits {
		if q < 0 || q >= s.n {
			return fmt.Errorf("statevec: qubit %d out of range (n=%d)", q, s.n)
		}
	}
	switch g.Name {
	case circuit.GateCX:
		s.ApplyCX(g.Qubits[0], g.Qubits[1])
		return nil
	case circuit.GateCZ:
		s.ApplyCZ(g.Qubits[0], g.Qubits[1])
		return nil
	case circuit.GateSwap:
		s.ApplySwap(g.Qubits[0], g.Qubits[1])
		return nil
	case circuit.GateID, circuit.GateBarrier:
		return nil
	}
	if len(g.Qubits) == 1 {
		m, err := g.Matrix1Q()
		if err != nil {
			return err
		}
		s.Apply1Q(g.Qubits[0], m)
		return nil
	}
	// Multi-qubit gate: decompose and recurse.
	sub := g.Decompose()
	if len(sub) == 1 && sub[0].Name == g.Name {
		return fmt.Errorf("statevec: cannot apply gate %q", g.Name)
	}
	for _, sg := range sub {
		if err := s.ApplyGate(sg); err != nil {
			return err
		}
	}
	return nil
}

// MustMatrix1Q panics if the gate is not a known 1-qubit unitary.
// Exposed via the circuit package's Gate for simulator internals.

// Probabilities returns |amp|^2 for every basis state.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.amps))
	for i, a := range s.amps {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// ProbOne returns the probability of measuring 1 on qubit q.
func (s *State) ProbOne(q int) float64 {
	bit := 1 << uint(q)
	p := 0.0
	for i, a := range s.amps {
		if i&bit != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// MeasureQubit projects qubit q, returning the observed bit.
func (s *State) MeasureQubit(q int, rng *rand.Rand) int {
	p1 := s.ProbOne(q)
	bit := 1 << uint(q)
	out := 0
	if rng.Float64() < p1 {
		out = 1
	}
	var norm float64
	if out == 1 {
		norm = math.Sqrt(p1)
	} else {
		norm = math.Sqrt(1 - p1)
	}
	if norm == 0 {
		norm = 1 // fully collapsed already; avoid division by zero
	}
	for i := range s.amps {
		if (i&bit != 0) != (out == 1) {
			s.amps[i] = 0
		} else {
			s.amps[i] /= complex(norm, 0)
		}
	}
	return out
}

// ResetQubit measures q and flips it back to |0> if needed.
func (s *State) ResetQubit(q int, rng *rand.Rand) {
	if s.MeasureQubit(q, rng) == 1 {
		s.Apply1Q(q, circuit.Gate{Name: circuit.GateX}.MustMatrix1Q())
	}
}

// SampleIndex draws one basis-state index from the state's distribution.
func (s *State) SampleIndex(rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	last := 0
	for i, a := range s.amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if r < acc {
			return i
		}
		last = i
	}
	return last // numerical slack: fall back to the final index
}

// FidelityTo returns |<s|t>|^2, the state fidelity with another pure state.
func (s *State) FidelityTo(t *State) (float64, error) {
	if s.n != t.n {
		return 0, fmt.Errorf("statevec: size mismatch %d vs %d", s.n, t.n)
	}
	var ip complex128
	for i := range s.amps {
		ip += cmplx.Conj(s.amps[i]) * t.amps[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip), nil
}

// EqualUpToGlobalPhase reports whether two states are equal modulo a global
// phase, within tolerance tol on fidelity.
func (s *State) EqualUpToGlobalPhase(t *State, tol float64) bool {
	f, err := s.FidelityTo(t)
	return err == nil && f >= 1-tol
}

// Run executes all unitary gates of c (skipping barriers) on a fresh state.
// It rejects measure/reset: strip them first or use Counts.
func Run(c *circuit.Circuit) (*State, error) {
	s, err := New(c.NumQubits)
	if err != nil {
		return nil, err
	}
	for _, g := range c.Gates {
		switch g.Name {
		case circuit.GateBarrier:
			continue
		case circuit.GateMeasure, circuit.GateReset:
			return nil, fmt.Errorf("statevec: Run cannot handle %q; use Counts", g.Name)
		}
		if err := s.ApplyGate(g); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// FormatBits renders a basis index over nbits as a Qiskit-style bitstring:
// bit 0 is the rightmost character.
func FormatBits(index, nbits int) string {
	b := make([]byte, nbits)
	for i := 0; i < nbits; i++ {
		if index&(1<<uint(i)) != 0 {
			b[nbits-1-i] = '1'
		} else {
			b[nbits-1-i] = '0'
		}
	}
	return string(b)
}

// terminalMeasurements validates that measures appear only after the last
// unitary touching the measured qubit and returns the (qubit, clbit) pairs.
func terminalMeasurements(c *circuit.Circuit) (qubits, clbits []int, err error) {
	measured := map[int]bool{}
	for _, g := range c.Gates {
		switch g.Name {
		case circuit.GateMeasure:
			measured[g.Qubits[0]] = true
			qubits = append(qubits, g.Qubits[0])
			clbits = append(clbits, g.Clbits[0])
		case circuit.GateBarrier:
			continue
		default:
			for _, q := range g.Qubits {
				if measured[q] {
					return nil, nil, fmt.Errorf(
						"statevec: qubit %d used after measurement (mid-circuit measurement unsupported)", q)
				}
			}
		}
	}
	return qubits, clbits, nil
}

// IdealDistribution returns the exact outcome distribution of the circuit
// over its classical register (or over all qubits when there are no
// measurements). Keys are Qiskit-style bitstrings.
func IdealDistribution(c *circuit.Circuit) (map[string]float64, error) {
	qubits, clbits, err := terminalMeasurements(c)
	if err != nil {
		return nil, err
	}
	s, err := Run(c.WithoutMeasurements())
	if err != nil {
		return nil, err
	}
	probs := s.Probabilities()
	dist := make(map[string]float64)
	if len(qubits) == 0 {
		for i, p := range probs {
			if p > 1e-15 {
				dist[FormatBits(i, c.NumQubits)] += p
			}
		}
		return dist, nil
	}
	nc := c.NumClbits
	for i, p := range probs {
		if p <= 1e-15 {
			continue
		}
		key := 0
		for k, q := range qubits {
			if i&(1<<uint(q)) != 0 {
				key |= 1 << uint(clbits[k])
			}
		}
		dist[FormatBits(key, nc)] += p
	}
	return dist, nil
}
