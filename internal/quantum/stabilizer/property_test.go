package stabilizer_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qrio/internal/quantum/stabilizer"
	"qrio/internal/quantum/statevec"
)

// TestOutcomeProbabilitiesSumToOne: over all basis states, a Clifford
// circuit's exact outcome probabilities form a distribution.
func TestOutcomeProbabilitiesSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		c := randomCliffordCircuit(rng, n, 20)
		total := 0.0
		for idx := 0; idx < 1<<n; idx++ {
			p, err := stabilizer.OutcomeProbability(c, statevec.FormatBits(idx, n))
			if err != nil {
				return false
			}
			if p < 0 {
				return false
			}
			total += p
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOutcomeProbabilitiesAreDyadic: stabilizer outcome probabilities are
// always 0 or a power of 1/2 (Gottesman–Knill structure).
func TestOutcomeProbabilitiesAreDyadic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(3)
		c := randomCliffordCircuit(rng, n, 15)
		for idx := 0; idx < 1<<n; idx++ {
			p, err := stabilizer.OutcomeProbability(c, statevec.FormatBits(idx, n))
			if err != nil {
				t.Fatal(err)
			}
			if p == 0 {
				continue
			}
			k := math.Log2(1 / p)
			if math.Abs(k-math.Round(k)) > 1e-9 {
				t.Fatalf("P = %v is not dyadic", p)
			}
		}
	}
}

// TestGateInversesRestoreState: g followed by g† leaves all outcome
// probabilities unchanged.
func TestGateInversesRestoreState(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		n := 3
		base := randomCliffordCircuit(rng, n, 12)
		withPair := base.Copy()
		// Append a random gate and its inverse.
		switch rng.Intn(4) {
		case 0:
			withPair.H(0)
			withPair.H(0)
		case 1:
			withPair.S(1)
			withPair.Sdg(1)
		case 2:
			withPair.CX(0, 2)
			withPair.CX(0, 2)
		case 3:
			withPair.Swap(1, 2)
			withPair.Swap(1, 2)
		}
		for idx := 0; idx < 1<<n; idx++ {
			bits := statevec.FormatBits(idx, n)
			p1, err := stabilizer.OutcomeProbability(base, bits)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := stabilizer.OutcomeProbability(withPair, bits)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(p1-p2) > 1e-12 {
				t.Fatalf("trial %d: inverse pair changed P(%s): %v -> %v", trial, bits, p1, p2)
			}
		}
	}
}

// TestSamplingMatchesExactProbabilities: empirical frequencies converge to
// OutcomeProbability values.
func TestSamplingMatchesExactProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	c := randomCliffordCircuit(rng, 3, 18)
	c.MeasureAll()
	const shots = 20000
	counts, err := stabilizer.Runner{Shots: shots, Seed: 2}.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 8; idx++ {
		bits := statevec.FormatBits(idx, 3)
		want, err := stabilizer.OutcomeProbability(c, bits)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(counts[bits]) / shots
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("P(%s): sampled %v, exact %v", bits, got, want)
		}
	}
}
