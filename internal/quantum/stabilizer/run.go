package stabilizer

import (
	"fmt"
	"math"
	"math/rand"

	"qrio/internal/quantum/circuit"
	"qrio/internal/quantum/noise"
)

// ApplyGate applies a unitary Clifford gate from the circuit vocabulary.
// Parameterised gates are accepted when their angles are multiples of π/2.
// Non-Clifford gates return an error: callers should cliffordize first.
func (t *Tableau) ApplyGate(g circuit.Gate) error {
	for _, q := range g.Qubits {
		if q < 0 || q >= t.n {
			return fmt.Errorf("stabilizer: qubit %d out of range (n=%d)", q, t.n)
		}
	}
	q := g.Qubits
	switch g.Name {
	case circuit.GateID, circuit.GateBarrier:
		return nil
	case circuit.GateX:
		t.X(q[0])
	case circuit.GateY:
		t.Y(q[0])
	case circuit.GateZ:
		t.Z(q[0])
	case circuit.GateH:
		t.H(q[0])
	case circuit.GateS:
		t.S(q[0])
	case circuit.GateSdg:
		t.Sdg(q[0])
	case circuit.GateSX:
		t.SX(q[0])
	case circuit.GateCX:
		t.CX(q[0], q[1])
	case circuit.GateCZ:
		t.CZ(q[0], q[1])
	case circuit.GateCY:
		t.Sdg(q[1])
		t.CX(q[0], q[1])
		t.S(q[1])
	case circuit.GateSwap:
		t.Swap(q[0], q[1])
	case circuit.GateU1, circuit.GateP, circuit.GateRZ:
		return t.applyRZ(q[0], g.Params[0])
	case circuit.GateRX:
		return t.applyRX(q[0], g.Params[0])
	case circuit.GateRY:
		return t.applyRY(q[0], g.Params[0])
	case circuit.GateU2:
		return t.applyU3(q[0], math.Pi/2, g.Params[0], g.Params[1])
	case circuit.GateU3:
		return t.applyU3(q[0], g.Params[0], g.Params[1], g.Params[2])
	default:
		return fmt.Errorf("%w: %q", errNotClifford, g.Name)
	}
	return nil
}

// quarterTurns converts an angle to its multiple of π/2 mod 4, or errors.
func quarterTurns(a float64) (int, error) {
	k := a / (math.Pi / 2)
	r := math.Round(k)
	if math.Abs(k-r) > 1e-7 {
		return 0, fmt.Errorf("%w: angle %g is not a multiple of π/2", errNotClifford, a)
	}
	m := int(r) % 4
	if m < 0 {
		m += 4
	}
	return m, nil
}

func (t *Tableau) applyRZ(q int, a float64) error {
	m, err := quarterTurns(a)
	if err != nil {
		return err
	}
	switch m {
	case 1:
		t.S(q)
	case 2:
		t.Z(q)
	case 3:
		t.Sdg(q)
	}
	return nil
}

func (t *Tableau) applyRX(q int, a float64) error {
	m, err := quarterTurns(a)
	if err != nil {
		return err
	}
	switch m {
	case 1: // rx(π/2) ≅ sqrt(X) = H·S·H up to global phase
		t.H(q)
		t.S(q)
		t.H(q)
	case 2:
		t.X(q)
	case 3:
		t.H(q)
		t.Sdg(q)
		t.H(q)
	}
	return nil
}

func (t *Tableau) applyRY(q int, a float64) error {
	m, err := quarterTurns(a)
	if err != nil {
		return err
	}
	switch m {
	case 1: // ry(π/2) ≅ H·Z: conjugation Z→X, X→-Z
		t.Z(q)
		t.H(q)
	case 2:
		t.Y(q)
	case 3:
		t.H(q)
		t.Z(q)
	}
	return nil
}

// applyU3 uses u3(θ,φ,λ) ≅ rz(φ)·ry(θ)·rz(λ) up to global phase.
func (t *Tableau) applyU3(q int, theta, phi, lambda float64) error {
	if err := t.applyRZ(q, lambda); err != nil {
		return err
	}
	if err := t.applyRY(q, theta); err != nil {
		return err
	}
	return t.applyRZ(q, phi)
}

// Runner executes Clifford circuits shot-by-shot, optionally under a Pauli
// + readout noise model. It supports mid-circuit measurement and reset.
type Runner struct {
	Model *noise.Model // nil means noiseless
	Shots int
	Seed  int64
}

// Counts returns a histogram over classical bitstrings. When the circuit
// has no measurements every qubit is measured at the end in qubit order.
// Keys use the Qiskit convention: clbit 0 is the rightmost character.
// Registers beyond 64 bits are supported (the fleet has 100-qubit devices).
func (r Runner) Counts(c *circuit.Circuit) (map[string]int, error) {
	if r.Shots <= 0 {
		return nil, fmt.Errorf("stabilizer: Shots must be positive, got %d", r.Shots)
	}
	rng := rand.New(rand.NewSource(r.Seed))
	counts := make(map[string]int)
	hasMeasure := c.HasMeasurements()
	nc := c.NumClbits
	if !hasMeasure {
		nc = c.NumQubits
	}
	key := make([]byte, nc)
	for shot := 0; shot < r.Shots; shot++ {
		for i := range key {
			key[i] = '0'
		}
		if err := r.runShot(c, hasMeasure, rng, key); err != nil {
			return nil, err
		}
		counts[string(key)]++
	}
	return counts, nil
}

// runShot executes one trajectory, writing outcome bits into key (bit i at
// position len(key)-1-i).
func (r Runner) runShot(c *circuit.Circuit, hasMeasure bool, rng *rand.Rand, key []byte) error {
	t := New(c.NumQubits)
	record := func(bit, pos int) {
		if bit == 1 {
			key[len(key)-1-pos] = '1'
		} else {
			key[len(key)-1-pos] = '0'
		}
	}
	for _, g := range c.Gates {
		switch g.Name {
		case circuit.GateBarrier:
			continue
		case circuit.GateReset:
			t.Reset(g.Qubits[0], rng)
			continue
		case circuit.GateMeasure:
			q := g.Qubits[0]
			bit := t.Measure(q, rng)
			if r.Model != nil && rng.Float64() < r.Model.ReadoutProb(q) {
				bit ^= 1
			}
			record(bit, g.Clbits[0])
			continue
		}
		if err := t.ApplyGate(g); err != nil {
			return err
		}
		if r.Model != nil && g.Name != circuit.GateID {
			for _, e := range r.Model.SampleGateError(g.Qubits, rng) {
				switch e.Pauli {
				case noise.PauliX:
					t.X(e.Qubit)
				case noise.PauliY:
					t.Y(e.Qubit)
				case noise.PauliZ:
					t.Z(e.Qubit)
				}
			}
		}
	}
	if !hasMeasure {
		for q := 0; q < c.NumQubits; q++ {
			bit := t.Measure(q, rng)
			if r.Model != nil && rng.Float64() < r.Model.ReadoutProb(q) {
				bit ^= 1
			}
			record(bit, q)
		}
	}
	return nil
}

// FormatBits renders a basis index as a Qiskit-style bitstring (bit 0
// rightmost); identical convention to package statevec.
func FormatBits(index, nbits int) string {
	b := make([]byte, nbits)
	for i := 0; i < nbits; i++ {
		if index&(1<<uint(i)) != 0 {
			b[nbits-1-i] = '1'
		} else {
			b[nbits-1-i] = '0'
		}
	}
	return string(b)
}

// ParseBits inverts FormatBits.
func ParseBits(s string) (int, error) {
	v := 0
	for i := 0; i < len(s); i++ {
		bit := s[len(s)-1-i]
		switch bit {
		case '1':
			v |= 1 << uint(i)
		case '0':
		default:
			return 0, fmt.Errorf("stabilizer: bad bitstring %q", s)
		}
	}
	return v, nil
}

// OutcomeProbability returns the exact probability that a noiseless run of
// the Clifford circuit produces the given classical bitstring. For circuits
// without measurements the bitstring covers all qubits. Probabilities of
// stabilizer states are always of the form 2^-k (or 0), so this is exact.
func OutcomeProbability(c *circuit.Circuit, bits string) (float64, error) {
	hasMeasure := c.HasMeasurements()
	if hasMeasure && len(bits) != c.NumClbits {
		return 0, fmt.Errorf("stabilizer: bitstring length %d != %d clbits", len(bits), c.NumClbits)
	}
	if !hasMeasure && len(bits) != c.NumQubits {
		return 0, fmt.Errorf("stabilizer: bitstring length %d != %d qubits", len(bits), c.NumQubits)
	}
	bitAt := func(pos int) (int, error) {
		switch bits[len(bits)-1-pos] {
		case '0':
			return 0, nil
		case '1':
			return 1, nil
		}
		return 0, fmt.Errorf("stabilizer: bad bitstring %q", bits)
	}
	t := New(c.NumQubits)
	prob := 1.0
	for _, g := range c.Gates {
		switch g.Name {
		case circuit.GateBarrier:
			continue
		case circuit.GateReset:
			return 0, fmt.Errorf("stabilizer: OutcomeProbability does not support reset")
		case circuit.GateMeasure:
			want, err := bitAt(g.Clbits[0])
			if err != nil {
				return 0, err
			}
			prob *= t.ForcedMeasure(g.Qubits[0], want)
			if prob == 0 {
				return 0, nil
			}
			continue
		}
		if err := t.ApplyGate(g); err != nil {
			return 0, err
		}
	}
	if !hasMeasure {
		for q := 0; q < c.NumQubits; q++ {
			want, err := bitAt(q)
			if err != nil {
				return 0, err
			}
			prob *= t.ForcedMeasure(q, want)
			if prob == 0 {
				return 0, nil
			}
		}
	}
	return prob, nil
}
