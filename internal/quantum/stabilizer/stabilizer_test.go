package stabilizer_test

import (
	"math"
	"math/rand"
	"testing"

	"qrio/internal/quantum/circuit"
	"qrio/internal/quantum/noise"
	"qrio/internal/quantum/stabilizer"
	"qrio/internal/quantum/statevec"
)

func TestZeroStateMeasuresZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := stabilizer.New(3)
	for q := 0; q < 3; q++ {
		if out := tb.Measure(q, rng); out != 0 {
			t.Fatalf("qubit %d of |000> measured %d", q, out)
		}
	}
}

func TestDeterministicOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := stabilizer.New(2)
	tb.X(0)
	if out := tb.Measure(0, rng); out != 1 {
		t.Fatalf("X|0> measured %d, want 1", out)
	}
	if out := tb.Measure(1, rng); out != 0 {
		t.Fatalf("untouched qubit measured %d, want 0", out)
	}
}

func TestBellCorrelations(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	c.MeasureAll()
	counts, err := stabilizer.Runner{Shots: 2000, Seed: 3}.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	if counts["01"]+counts["10"] != 0 {
		t.Fatalf("bell state gave uncorrelated outcomes: %v", counts)
	}
	frac := float64(counts["00"]) / 2000
	if frac < 0.44 || frac > 0.56 {
		t.Fatalf("bell 00 fraction = %v", frac)
	}
}

func TestRepeatedMeasurementIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tb := stabilizer.New(1)
	tb.H(0)
	first := tb.Measure(0, rng)
	for i := 0; i < 10; i++ {
		if out := tb.Measure(0, rng); out != first {
			t.Fatalf("repeated measurement changed: %d then %d", first, out)
		}
	}
}

// randomCliffordCircuit builds a random Clifford circuit over the gate set
// the tableau supports, including parameterised Clifford angles.
func randomCliffordCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	halfPi := math.Pi / 2
	for i := 0; i < gates; i++ {
		switch rng.Intn(8) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.S(rng.Intn(n))
		case 2:
			c.Sdg(rng.Intn(n))
		case 3:
			names := []string{"x", "y", "z", "sx"}
			c.MustAppend(circuit.Gate{Name: names[rng.Intn(4)], Qubits: []int{rng.Intn(n)}})
		case 4:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		case 5:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			if rng.Intn(2) == 0 {
				c.CZ(a, b)
			} else {
				c.Swap(a, b)
			}
		case 6:
			k := float64(rng.Intn(4)) * halfPi
			switch rng.Intn(3) {
			case 0:
				c.RX(rng.Intn(n), k)
			case 1:
				c.RY(rng.Intn(n), k)
			default:
				c.RZ(rng.Intn(n), k)
			}
		case 7:
			c.U3(rng.Intn(n),
				float64(rng.Intn(4))*halfPi,
				float64(rng.Intn(4))*halfPi,
				float64(rng.Intn(4))*halfPi)
		}
	}
	return c
}

// TestAgreementWithStatevector is the core cross-validation property: on
// random Clifford circuits, the tableau's exact outcome probabilities must
// match the dense simulator's for every basis state.
func TestAgreementWithStatevector(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 4
	for trial := 0; trial < 60; trial++ {
		c := randomCliffordCircuit(rng, n, 25)
		sv, err := statevec.Run(c)
		if err != nil {
			t.Fatalf("trial %d: statevec failed: %v", trial, err)
		}
		probs := sv.Probabilities()
		for idx := 0; idx < 1<<n; idx++ {
			bits := statevec.FormatBits(idx, n)
			got, err := stabilizer.OutcomeProbability(c, bits)
			if err != nil {
				t.Fatalf("trial %d: OutcomeProbability: %v", trial, err)
			}
			if math.Abs(got-probs[idx]) > 1e-9 {
				t.Fatalf("trial %d outcome %s: stabilizer %v vs statevec %v\ncircuit: %v",
					trial, bits, got, probs[idx], c.Gates)
			}
		}
	}
}

// TestSampledCountsAgreement compares sampled distributions between the two
// simulators on a fixed Clifford circuit.
func TestSampledCountsAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	c := randomCliffordCircuit(rng, 3, 20)
	c.MeasureAll()
	const shots = 8000
	sc, err := stabilizer.Runner{Shots: shots, Seed: 21}.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := statevec.Noisy{Shots: shots, Seed: 22}.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	for key := 0; key < 8; key++ {
		bits := statevec.FormatBits(key, 3)
		a := float64(sc[bits]) / shots
		b := float64(vc[bits]) / shots
		if math.Abs(a-b) > 0.03 {
			t.Fatalf("outcome %s: stabilizer %v vs statevec %v", bits, a, b)
		}
	}
}

func TestGHZOutcomeProbability(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.CX(0, 1)
	c.CX(1, 2)
	c.MeasureAll()
	for bits, want := range map[string]float64{
		"000": 0.5, "111": 0.5, "001": 0, "010": 0, "101": 0,
	} {
		got, err := stabilizer.OutcomeProbability(c, bits)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(%s) = %v, want %v", bits, got, want)
		}
	}
}

func TestNonCliffordGateRejected(t *testing.T) {
	tb := stabilizer.New(1)
	err := tb.ApplyGate(circuit.Gate{Name: circuit.GateT, Qubits: []int{0}})
	if err == nil {
		t.Fatal("t gate must be rejected")
	}
	err = tb.ApplyGate(circuit.Gate{Name: circuit.GateRZ, Qubits: []int{0}, Params: []float64{0.3}})
	if err == nil {
		t.Fatal("rz(0.3) must be rejected")
	}
}

func TestNoiseDegradesGHZ(t *testing.T) {
	c := circuit.New(4)
	c.H(0)
	c.CX(0, 1)
	c.CX(1, 2)
	c.CX(2, 3)
	c.MeasureAll()
	m := noise.Uniform(4, 0.02, 0.15, 0.02)
	counts, err := stabilizer.Runner{Model: m, Shots: 4000, Seed: 77}.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	good := counts["0000"] + counts["1111"]
	if good == 4000 {
		t.Fatal("noise had no effect")
	}
	if float64(good)/4000 < 0.3 {
		t.Fatalf("noise too destructive: %v good shots", good)
	}
}

func TestMidCircuitMeasurementCollapse(t *testing.T) {
	// Measure half a Bell pair mid-circuit, then CX onto a fresh qubit: the
	// final qubits must all agree.
	c := circuit.NewWithClbits(3, 3)
	c.H(0)
	c.CX(0, 1)
	c.Measure(0, 0)
	c.CX(1, 2)
	c.Measure(1, 1)
	c.Measure(2, 2)
	counts, err := stabilizer.Runner{Shots: 1000, Seed: 9}.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	for bits, n := range counts {
		if n > 0 && bits != "000" && bits != "111" {
			t.Fatalf("inconsistent outcome %s appeared %d times", bits, n)
		}
	}
}

func TestResetInRunner(t *testing.T) {
	c := circuit.New(1)
	c.H(0)
	c.Reset(0)
	c.MeasureAll()
	counts, err := stabilizer.Runner{Shots: 500, Seed: 2}.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	if counts["0"] != 500 {
		t.Fatalf("reset failed: %v", counts)
	}
}

func TestParseFormatBitsRoundTrip(t *testing.T) {
	for _, v := range []int{0, 1, 5, 127, 1 << 10} {
		s := stabilizer.FormatBits(v, 12)
		got, err := stabilizer.ParseBits(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %s -> %d", v, s, got)
		}
	}
	if _, err := stabilizer.ParseBits("01x"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestLargeRegisterSmoke(t *testing.T) {
	// 100-qubit GHZ: far beyond dense simulation, trivial for the tableau.
	const n = 100
	c := circuit.New(n)
	c.H(0)
	for q := 0; q < n-1; q++ {
		c.CX(q, q+1)
	}
	c.MeasureAll()
	counts, err := stabilizer.Runner{Shots: 200, Seed: 4}.Counts(c)
	if err != nil {
		t.Fatal(err)
	}
	all0 := ""
	all1 := ""
	for i := 0; i < n; i++ {
		all0 += "0"
		all1 += "1"
	}
	if counts[all0]+counts[all1] != 200 {
		t.Fatalf("100-qubit GHZ broken: %d distinct outcomes", len(counts))
	}
	if counts[all0] == 0 || counts[all1] == 0 {
		t.Fatalf("GHZ sampling one-sided: %v/%v", counts[all0], counts[all1])
	}
}

func TestCopyIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tb := stabilizer.New(2)
	tb.H(0)
	cp := tb.Copy()
	cp.CX(0, 1)
	cp.Measure(0, rng)
	// Original must still be in superposition: both outcomes possible.
	saw := map[int]bool{}
	for i := 0; i < 50; i++ {
		saw[tb.Copy().Measure(0, rng)] = true
	}
	if !saw[0] || !saw[1] {
		t.Fatal("copy mutated the original tableau")
	}
}
