// Package stabilizer implements the Aaronson–Gottesman CHP tableau
// simulator for Clifford circuits (Gottesman–Knill theorem). It is the
// engine behind QRIO's fidelity-ranking strategy (§3.4.1): Clifford
// "canary" versions of user circuits are simulated here in polynomial time
// — both noiselessly (for the reference distribution) and under sampled
// Pauli noise (for the per-device canary fidelity) — even at the fleet's
// 100-qubit device sizes where dense simulation is impossible.
package stabilizer

import (
	"fmt"
	"math/rand"
)

// Tableau is the stabilizer tableau of an n-qubit state. Rows 0..n-1 are
// destabilizer generators, rows n..2n-1 stabilizer generators, and row 2n a
// scratch row used during measurement. Bits are packed into uint64 words.
type Tableau struct {
	n     int
	words int
	x     [][]uint64 // X-part bits, (2n+1) rows
	z     [][]uint64 // Z-part bits
	r     []uint8    // sign bits (0 = +, 1 = -)
}

// New returns the tableau of |0...0>: destabilizers X_i, stabilizers Z_i.
func New(n int) *Tableau {
	if n < 0 {
		panic("stabilizer: negative qubit count")
	}
	words := (n + 63) / 64
	if words == 0 {
		words = 1
	}
	t := &Tableau{n: n, words: words}
	rows := 2*n + 1
	t.x = make([][]uint64, rows)
	t.z = make([][]uint64, rows)
	t.r = make([]uint8, rows)
	for i := range t.x {
		t.x[i] = make([]uint64, words)
		t.z[i] = make([]uint64, words)
	}
	for i := 0; i < n; i++ {
		setBit(t.x[i], i)   // destabilizer i = X_i
		setBit(t.z[i+n], i) // stabilizer i = Z_i
	}
	return t
}

// NumQubits returns the register size.
func (t *Tableau) NumQubits() int { return t.n }

// Copy returns a deep copy of the tableau.
func (t *Tableau) Copy() *Tableau {
	c := &Tableau{n: t.n, words: t.words}
	c.x = make([][]uint64, len(t.x))
	c.z = make([][]uint64, len(t.z))
	c.r = append([]uint8(nil), t.r...)
	for i := range t.x {
		c.x[i] = append([]uint64(nil), t.x[i]...)
		c.z[i] = append([]uint64(nil), t.z[i]...)
	}
	return c
}

func setBit(w []uint64, i int)   { w[i>>6] |= 1 << uint(i&63) }
func clearBit(w []uint64, i int) { w[i>>6] &^= 1 << uint(i&63) }
func getBit(w []uint64, i int) uint8 {
	return uint8((w[i>>6] >> uint(i&63)) & 1)
}
func assignBit(w []uint64, i int, v uint8) {
	if v != 0 {
		setBit(w, i)
	} else {
		clearBit(w, i)
	}
}

// H applies a Hadamard on qubit a.
func (t *Tableau) H(a int) {
	for i := 0; i < 2*t.n; i++ {
		xa, za := getBit(t.x[i], a), getBit(t.z[i], a)
		t.r[i] ^= xa & za
		assignBit(t.x[i], a, za)
		assignBit(t.z[i], a, xa)
	}
}

// S applies the phase gate diag(1, i) on qubit a.
func (t *Tableau) S(a int) {
	for i := 0; i < 2*t.n; i++ {
		xa, za := getBit(t.x[i], a), getBit(t.z[i], a)
		t.r[i] ^= xa & za
		assignBit(t.z[i], a, za^xa)
	}
}

// Sdg applies S† = diag(1, -i) on qubit a.
func (t *Tableau) Sdg(a int) {
	t.Z(a)
	t.S(a)
}

// X applies a Pauli X on qubit a.
func (t *Tableau) X(a int) {
	for i := 0; i < 2*t.n; i++ {
		t.r[i] ^= getBit(t.z[i], a)
	}
}

// Z applies a Pauli Z on qubit a.
func (t *Tableau) Z(a int) {
	for i := 0; i < 2*t.n; i++ {
		t.r[i] ^= getBit(t.x[i], a)
	}
}

// Y applies a Pauli Y on qubit a.
func (t *Tableau) Y(a int) {
	for i := 0; i < 2*t.n; i++ {
		t.r[i] ^= getBit(t.x[i], a) ^ getBit(t.z[i], a)
	}
}

// CX applies controlled-X with control a and target b.
func (t *Tableau) CX(a, b int) {
	for i := 0; i < 2*t.n; i++ {
		xa, za := getBit(t.x[i], a), getBit(t.z[i], a)
		xb, zb := getBit(t.x[i], b), getBit(t.z[i], b)
		t.r[i] ^= xa & zb & (xb ^ za ^ 1)
		assignBit(t.x[i], b, xb^xa)
		assignBit(t.z[i], a, za^zb)
	}
}

// CZ applies controlled-Z on the pair (a, b).
func (t *Tableau) CZ(a, b int) {
	t.H(b)
	t.CX(a, b)
	t.H(b)
}

// Swap exchanges qubits a and b.
func (t *Tableau) Swap(a, b int) {
	t.CX(a, b)
	t.CX(b, a)
	t.CX(a, b)
}

// SX applies sqrt(X) (equal to H·S·H up to global phase).
func (t *Tableau) SX(a int) {
	t.H(a)
	t.S(a)
	t.H(a)
}

// g is the phase exponent contribution when multiplying single-qubit Pauli
// (x1,z1) into (x2,z2); see Aaronson & Gottesman, PRA 70, 052328 (2004).
func g(x1, z1, x2, z2 uint8) int {
	switch {
	case x1 == 0 && z1 == 0:
		return 0
	case x1 == 1 && z1 == 1:
		return int(z2) - int(x2)
	case x1 == 1 && z1 == 0:
		return int(z2) * (2*int(x2) - 1)
	default: // x1 == 0 && z1 == 1
		return int(x2) * (1 - 2*int(z2))
	}
}

// rowsum multiplies generator row i into row h, tracking the sign.
func (t *Tableau) rowsum(h, i int) {
	phase := 2*int(t.r[h]) + 2*int(t.r[i])
	for j := 0; j < t.n; j++ {
		phase += g(getBit(t.x[i], j), getBit(t.z[i], j),
			getBit(t.x[h], j), getBit(t.z[h], j))
	}
	phase = ((phase % 4) + 4) % 4
	if phase == 0 {
		t.r[h] = 0
	} else {
		t.r[h] = 1 // phase is guaranteed to be 0 or 2 for valid tableaus
	}
	for w := 0; w < t.words; w++ {
		t.x[h][w] ^= t.x[i][w]
		t.z[h][w] ^= t.z[i][w]
	}
}

// anticommutingStabilizer returns the first stabilizer row index p in
// [n, 2n) whose X part has bit a set, or -1 when the measurement of Z_a is
// deterministic.
func (t *Tableau) anticommutingStabilizer(a int) int {
	for p := t.n; p < 2*t.n; p++ {
		if getBit(t.x[p], a) == 1 {
			return p
		}
	}
	return -1
}

// Measure performs a Z-basis measurement of qubit a, collapsing the state.
// rng supplies the coin for random outcomes.
func (t *Tableau) Measure(a int, rng *rand.Rand) int {
	p := t.anticommutingStabilizer(a)
	if p < 0 {
		return t.deterministicOutcome(a)
	}
	out := uint8(rng.Intn(2))
	t.collapse(a, p, out)
	return int(out)
}

// ForcedMeasure measures qubit a forcing the given outcome. It returns the
// probability of that outcome (1, 0.5 or 0); on probability 0 the state is
// left untouched.
func (t *Tableau) ForcedMeasure(a, outcome int) float64 {
	p := t.anticommutingStabilizer(a)
	if p < 0 {
		if t.deterministicOutcome(a) == outcome {
			return 1
		}
		return 0
	}
	t.collapse(a, p, uint8(outcome))
	return 0.5
}

// deterministicOutcome computes the determined measurement value of Z_a
// using the scratch row.
func (t *Tableau) deterministicOutcome(a int) int {
	scratch := 2 * t.n
	for w := 0; w < t.words; w++ {
		t.x[scratch][w] = 0
		t.z[scratch][w] = 0
	}
	t.r[scratch] = 0
	for i := 0; i < t.n; i++ {
		if getBit(t.x[i], a) == 1 {
			t.rowsum(scratch, i+t.n)
		}
	}
	return int(t.r[scratch])
}

// collapse performs the random-outcome measurement update: p is an
// anticommuting stabilizer row and out the chosen outcome bit.
func (t *Tableau) collapse(a, p int, out uint8) {
	for i := 0; i < 2*t.n; i++ {
		if i != p && getBit(t.x[i], a) == 1 {
			t.rowsum(i, p)
		}
	}
	// Destabilizer p-n becomes the old stabilizer row p.
	d := p - t.n
	copy(t.x[d], t.x[p])
	copy(t.z[d], t.z[p])
	t.r[d] = t.r[p]
	// Stabilizer p becomes ±Z_a with the measured sign.
	for w := 0; w < t.words; w++ {
		t.x[p][w] = 0
		t.z[p][w] = 0
	}
	setBit(t.z[p], a)
	t.r[p] = out
}

// Reset measures qubit a and flips it to |0> when the outcome was 1.
func (t *Tableau) Reset(a int, rng *rand.Rand) {
	if t.Measure(a, rng) == 1 {
		t.X(a)
	}
}

// String renders the stabilizer generators for debugging.
func (t *Tableau) String() string {
	out := ""
	for i := t.n; i < 2*t.n; i++ {
		if t.r[i] == 1 {
			out += "-"
		} else {
			out += "+"
		}
		for j := 0; j < t.n; j++ {
			x, z := getBit(t.x[i], j), getBit(t.z[i], j)
			switch {
			case x == 1 && z == 1:
				out += "Y"
			case x == 1:
				out += "X"
			case z == 1:
				out += "Z"
			default:
				out += "I"
			}
		}
		out += "\n"
	}
	return out
}

var errNotClifford = fmt.Errorf("stabilizer: gate is not Clifford")
