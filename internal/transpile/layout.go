package transpile

import (
	"sort"

	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/quantum/circuit"
)

// chooseLayout picks the initial logical→physical placement. It first tries
// a VF2 perfect embedding of the circuit's interaction graph into the
// coupling map (zero routing); otherwise it falls back to a greedy
// BFS-based placement that keeps strongly interacting qubits adjacent.
// The returned slice has one entry per logical qubit. The boolean reports
// whether the embedding was perfect.
func chooseLayout(c *circuit.Circuit, b *device.Backend, opts Options) ([]int, bool) {
	n := c.NumQubits
	layout := make([]int, n)
	interactions := c.InteractionGraph()

	// Build the interaction graph over all logical qubits.
	ig := graph.New(n)
	type wedge struct {
		a, b int
		w    int
	}
	var wedges []wedge
	for e, w := range interactions {
		ig.MustAddEdge(e.A, e.B)
		wedges = append(wedges, wedge{e.A, e.B, w})
	}
	sort.Slice(wedges, func(i, j int) bool {
		if wedges[i].w != wedges[j].w {
			return wedges[i].w > wedges[j].w
		}
		if wedges[i].a != wedges[j].a {
			return wedges[i].a < wedges[j].a
		}
		return wedges[i].b < wedges[j].b
	})

	if !opts.DisableVF2Layout {
		if m := graph.EnumerateMonomorphisms(ig, b.Coupling, graph.MonomorphismOptions{
			MaxResults: 1, MaxVisits: opts.VF2MaxVisits,
		}); len(m) == 1 {
			copy(layout, m[0])
			return layout, true
		}
	}

	// Greedy fallback: place the highest-weight edge on the lowest-error
	// coupling edge region, then grow outwards by interaction weight.
	for i := range layout {
		layout[i] = -1
	}
	usedPhys := make([]bool, b.NumQubits)

	place := func(l, p int) {
		layout[l] = p
		usedPhys[p] = true
	}
	// Order logical qubits: by total interaction weight descending.
	weight := make([]int, n)
	for e, w := range interactions {
		weight[e.A] += w
		weight[e.B] += w
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if weight[order[i]] != weight[order[j]] {
			return weight[order[i]] > weight[order[j]]
		}
		return order[i] < order[j]
	})

	// Physical preference: highest-degree vertices first (more room to
	// grow neighbourhoods).
	physPref := make([]int, b.NumQubits)
	for i := range physPref {
		physPref[i] = i
	}
	sort.Slice(physPref, func(i, j int) bool {
		di, dj := b.Coupling.Degree(physPref[i]), b.Coupling.Degree(physPref[j])
		if di != dj {
			return di > dj
		}
		return physPref[i] < physPref[j]
	})

	freePhys := func() int {
		for _, p := range physPref {
			if !usedPhys[p] {
				return p
			}
		}
		return -1
	}

	for _, l := range order {
		if layout[l] >= 0 {
			continue
		}
		// Prefer a physical qubit adjacent to already-placed neighbours.
		best, bestScore := -1, -1
		for _, p := range physPref {
			if usedPhys[p] {
				continue
			}
			score := 0
			for _, lnbr := range ig.Neighbors(l) {
				if lp := layout[lnbr]; lp >= 0 && b.Coupling.HasEdge(p, lp) {
					score += interactions[circuit.NormEdge(l, lnbr)]
				}
			}
			if score > bestScore {
				best, bestScore = p, score
			}
		}
		if best < 0 {
			best = freePhys()
		}
		place(l, best)
	}
	return layout, false
}
