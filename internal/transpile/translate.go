package transpile

import (
	"fmt"
	"math"
	"math/cmplx"

	"qrio/internal/quantum/circuit"
)

// translate rewrites every one-qubit gate into the device basis
// {u1, u2, u3} (cx passes through), choosing the cheapest form: u1 for
// phase-only gates, u2 for θ=π/2, u3 otherwise.
func translate(c *circuit.Circuit) (*circuit.Circuit, error) {
	out := &circuit.Circuit{Name: c.Name, NumQubits: c.NumQubits, NumClbits: c.NumClbits}
	for _, g := range c.Gates {
		switch g.Name {
		case circuit.GateCX, circuit.GateMeasure, circuit.GateBarrier, circuit.GateReset,
			circuit.GateU1, circuit.GateU2, circuit.GateU3:
			out.Gates = append(out.Gates, g.Copy())
			continue
		case circuit.GateID:
			continue
		}
		if len(g.Qubits) != 1 || !g.IsUnitary() {
			return nil, fmt.Errorf("transpile: unexpected gate %q during translation", g.Name)
		}
		m, err := g.Matrix1Q()
		if err != nil {
			return nil, err
		}
		ng, ok := synthesizeU(g.Qubits[0], m)
		if ok {
			out.Gates = append(out.Gates, ng)
		}
		// !ok means the matrix is the identity up to phase: drop it.
	}
	return out, nil
}

const synthTol = 1e-9

// classifyTol is the looser tolerance used to classify synthesised angles
// into gate forms: acos() amplifies one-ulp magnitude errors into ~1e-8
// angles, which are still numerically the identity.
const classifyTol = 1e-7

// zyzAngles decomposes a 2x2 unitary as e^{iα}·u3(θ,φ,λ).
func zyzAngles(m circuit.Matrix2) (theta, phi, lambda float64) {
	a, b := m[0][0], m[0][1]
	c, d := m[1][0], m[1][1]
	absA := cmplx.Abs(a)
	if absA > 1 {
		absA = 1
	}
	theta = 2 * math.Acos(absA)
	sin := math.Sin(theta / 2)
	// Branch tolerances must be loose (classifyTol): acos() amplifies
	// one-ulp magnitude errors into ~1e-8 angles, and the off-diagonal
	// entries of a near-diagonal unitary are then numerically zero — their
	// phases would be garbage (e.g. Phase(-0) = π).
	switch {
	case absA > classifyTol && sin > classifyTol:
		// Remove the global phase so the top-left entry is real positive.
		ph := cmplx.Exp(complex(0, -cmplx.Phase(a)))
		phi = cmplx.Phase(c * ph)
		lambda = cmplx.Phase(-b * ph)
	case absA <= classifyTol:
		// θ = π: normalise on the bottom-left entry; put all phase in λ.
		phi = 0
		lambda = cmplx.Phase(-b / c)
		theta = math.Pi
	default:
		// θ = 0: diagonal gate; u1(λ) with λ = relative phase.
		phi = 0
		lambda = cmplx.Phase(d / a)
		theta = 0
	}
	return theta, phi, lambda
}

// synthesizeU builds the cheapest u-gate realising the matrix on qubit q.
// It returns ok=false when the matrix is the identity up to global phase.
func synthesizeU(q int, m circuit.Matrix2) (circuit.Gate, bool) {
	theta, phi, lambda := zyzAngles(m)
	theta = normalizeAngle(theta)
	switch {
	case math.Abs(theta) < classifyTol:
		l := normalizeAngle(phi + lambda)
		if math.Abs(l) < classifyTol {
			return circuit.Gate{}, false // identity
		}
		return circuit.Gate{Name: circuit.GateU1, Qubits: []int{q}, Params: []float64{l}}, true
	case math.Abs(theta-math.Pi/2) < classifyTol:
		return circuit.Gate{Name: circuit.GateU2, Qubits: []int{q},
			Params: []float64{normalizeAngle(phi), normalizeAngle(lambda)}}, true
	default:
		return circuit.Gate{Name: circuit.GateU3, Qubits: []int{q},
			Params: []float64{theta, normalizeAngle(phi), normalizeAngle(lambda)}}, true
	}
}

// normalizeAngle maps an angle into (-π, π].
func normalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	}
	if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// mul2 multiplies two 2x2 complex matrices (l·r: r applied first).
func mul2(l, r circuit.Matrix2) circuit.Matrix2 {
	var out circuit.Matrix2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			out[i][j] = l[i][0]*r[0][j] + l[i][1]*r[1][j]
		}
	}
	return out
}
