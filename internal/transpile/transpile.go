// Package transpile rewrites logical circuits into executables that respect
// a device's qubit connectivity and native gate set — the six broad stages
// the paper attributes to the Qiskit transpiler (§2.3): gate decomposition,
// placement on physical qubits, routing on the restricted topology,
// translation to basis gates, and physical-circuit optimisation.
package transpile

import (
	"fmt"

	"qrio/internal/device"
	"qrio/internal/quantum/circuit"
)

// Options tunes the pipeline. The zero value gives the default pipeline.
type Options struct {
	// Lookahead is the routing heuristic's window of upcoming 2-qubit
	// gates (0 means the default of 10).
	Lookahead int
	// DisableVF2Layout skips the perfect-embedding layout search
	// (ablation: greedy placement only).
	DisableVF2Layout bool
	// NaiveRouting replaces the SABRE-lite heuristic with plain
	// shortest-path swapping (ablation baseline).
	NaiveRouting bool
	// SkipOptimize disables the peephole optimisation stage.
	SkipOptimize bool
	// VF2MaxVisits caps the embedding search (0 = package default).
	VF2MaxVisits int
}

// Result is a transpiled circuit plus its qubit mappings.
type Result struct {
	// Circuit acts on the device's physical qubits and uses only the
	// {u1, u2, u3, cx} basis plus measure/barrier/reset.
	Circuit *circuit.Circuit
	// InitialLayout[l] is the physical qubit initially holding logical l.
	InitialLayout []int
	// FinalLayout[l] is the physical qubit holding logical l after routing.
	FinalLayout []int
	// AddedSwaps counts routing swaps inserted (3 cx each).
	AddedSwaps int
	// PerfectLayout reports whether the interaction graph embedded into
	// the coupling map without any routing.
	PerfectLayout bool
}

// Transpile runs the full pipeline for a backend.
func Transpile(c *circuit.Circuit, b *device.Backend, opts Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("transpile: input circuit invalid: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("transpile: backend invalid: %w", err)
	}
	if c.NumQubits > b.NumQubits {
		return nil, fmt.Errorf("transpile: circuit needs %d qubits, device %s has %d",
			c.NumQubits, b.Name, b.NumQubits)
	}
	if !supportsBasis(b) {
		return nil, fmt.Errorf("transpile: device %s basis %v lacks {u1,u2,u3,cx}",
			b.Name, b.BasisGates)
	}

	// Stage 1-2: virtual optimisation + 3+ qubit gate decomposition.
	flat := c.Decompose()

	// Stage 3: placement on physical qubits.
	layout, perfect := chooseLayout(flat, b, opts)

	// Stage 4: routing on the restricted topology.
	routed, finalLayout, swaps, err := route(flat, b, layout, opts)
	if err != nil {
		return nil, err
	}

	// Stage 5: translation to basis gates.
	translated, err := translate(routed)
	if err != nil {
		return nil, err
	}

	// Stage 6: physical circuit optimisation.
	if !opts.SkipOptimize {
		translated = optimize(translated)
	}
	if err := translated.Validate(); err != nil {
		return nil, fmt.Errorf("transpile: produced invalid circuit: %w", err)
	}
	return &Result{
		Circuit:       translated,
		InitialLayout: layout,
		FinalLayout:   finalLayout,
		AddedSwaps:    swaps,
		PerfectLayout: perfect,
	}, nil
}

func supportsBasis(b *device.Backend) bool {
	have := map[string]bool{}
	for _, g := range b.BasisGates {
		have[g] = true
	}
	for _, want := range []string{"u1", "u2", "u3", "cx"} {
		if !have[want] {
			return false
		}
	}
	return true
}
