package transpile_test

import (
	"math"
	"math/rand"
	"testing"

	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/quantum/circuit"
	"qrio/internal/quantum/statevec"
	"qrio/internal/transpile"
)

func lineBackend(t *testing.T, n int) *device.Backend {
	t.Helper()
	b, err := device.UniformBackend("line", graph.Line(n), 0.1, 0.01, 0.02, 100e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// distEqual compares two distributions with tolerance.
func distEqual(a, b map[string]float64, tol float64) bool {
	keys := map[string]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	for k := range keys {
		if math.Abs(a[k]-b[k]) > tol {
			return false
		}
	}
	return true
}

// checkEquivalent transpiles and verifies the measured distribution is
// preserved — the end-to-end semantic test.
func checkEquivalent(t *testing.T, c *circuit.Circuit, b *device.Backend, opts transpile.Options) *transpile.Result {
	t.Helper()
	measured := c.Copy()
	if !measured.HasMeasurements() {
		measured.MeasureAll()
	}
	want, err := statevec.IdealDistribution(measured)
	if err != nil {
		t.Fatal(err)
	}
	res, err := transpile.Transpile(measured, b, opts)
	if err != nil {
		t.Fatalf("transpile failed: %v", err)
	}
	got, err := statevec.IdealDistribution(res.Circuit)
	if err != nil {
		t.Fatalf("transpiled circuit does not simulate: %v", err)
	}
	if !distEqual(want, got, 1e-9) {
		t.Fatalf("distribution changed by transpilation\nwant %v\ngot  %v\ncircuit %v",
			want, got, res.Circuit.Gates)
	}
	return res
}

func TestBellOnLine(t *testing.T) {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	res := checkEquivalent(t, c, lineBackend(t, 4), transpile.Options{})
	for _, g := range res.Circuit.Gates {
		switch g.Name {
		case "u1", "u2", "u3", "cx", "measure", "barrier", "reset":
		default:
			t.Fatalf("non-basis gate %q in output", g.Name)
		}
	}
}

func TestRoutingLongRange(t *testing.T) {
	// cx between the two ends of a line forces swaps.
	c := circuit.New(5)
	c.H(0)
	c.CX(0, 4)
	res := checkEquivalent(t, c, lineBackend(t, 5), transpile.Options{})
	if res.AddedSwaps == 0 && !res.PerfectLayout {
		// Either the layout placed 0 and 4 adjacent (perfect) or routing
		// must have inserted swaps.
		t.Fatalf("long-range cx needed no swaps and no perfect layout")
	}
	// Every 2q gate must act on a coupling edge.
	b := lineBackend(t, 5)
	for _, g := range res.Circuit.Gates {
		if g.Name == "cx" && !b.Coupling.HasEdge(g.Qubits[0], g.Qubits[1]) {
			t.Fatalf("cx on non-edge (%d,%d)", g.Qubits[0], g.Qubits[1])
		}
	}
}

func TestGHZOnRing(t *testing.T) {
	b, err := device.UniformBackend("ring", graph.Ring(6), 0.1, 0.01, 0.02, 100e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(4)
	c.H(0)
	c.CX(0, 1)
	c.CX(0, 2)
	c.CX(0, 3)
	checkEquivalent(t, c, b, transpile.Options{})
}

func TestCCXDecomposition(t *testing.T) {
	c := circuit.New(3)
	c.X(0)
	c.X(1)
	c.CCX(0, 1, 2)
	res := checkEquivalent(t, c, lineBackend(t, 4), transpile.Options{})
	for _, g := range res.Circuit.Gates {
		if len(g.Qubits) > 2 {
			t.Fatalf("multi-qubit gate %v survived", g)
		}
	}
}

func randomTestCircuit(rng *rand.Rand, n int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < 20; i++ {
		switch rng.Intn(6) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.T(rng.Intn(n))
		case 2:
			c.U3(rng.Intn(n), rng.Float64()*3, rng.Float64()*3, rng.Float64()*3)
		case 3, 4:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		case 5:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CZ(a, b)
		}
	}
	return c
}

// TestRandomCircuitsOnRandomDevices is the transpiler's core property test:
// measured distributions are preserved across random circuits, devices and
// option combinations.
func TestRandomCircuitsOnRandomDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	optVariants := []transpile.Options{
		{},
		{DisableVF2Layout: true},
		{NaiveRouting: true},
		{SkipOptimize: true},
		{DisableVF2Layout: true, NaiveRouting: true, SkipOptimize: true},
	}
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(3)
		c := randomTestCircuit(rng, n)
		devQubits := n + rng.Intn(4)
		coupling := graph.RandomConnected(devQubits, 0.2+0.6*rng.Float64(), 4, rng)
		b, err := device.UniformBackend("rand", coupling, 0.1, 0.01, 0.02, 100e3, 100e3)
		if err != nil {
			t.Fatal(err)
		}
		opts := optVariants[trial%len(optVariants)]
		checkEquivalent(t, c, b, opts)
	}
}

func TestOptimizeReducesGateCount(t *testing.T) {
	c := circuit.New(2)
	// Six 1q gates on the same qubit fuse to at most one; cx-cx cancels.
	c.H(0)
	c.H(0)
	c.T(0)
	c.Tdg(0)
	c.S(0)
	c.Sdg(0)
	c.CX(0, 1)
	c.CX(0, 1)
	b := lineBackend(t, 2)
	plain, err := transpile.Transpile(c, b, transpile.Options{SkipOptimize: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := transpile.Transpile(c, b, transpile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Circuit.Size() >= plain.Circuit.Size() {
		t.Fatalf("optimisation did not help: %d vs %d gates",
			opt.Circuit.Size(), plain.Circuit.Size())
	}
	if opt.Circuit.Size() != 0 {
		t.Fatalf("fully cancelling circuit left %d gates: %v",
			opt.Circuit.Size(), opt.Circuit.Gates)
	}
}

func TestPerfectLayoutAvoidsSwaps(t *testing.T) {
	// A line-shaped circuit on a line device must embed perfectly.
	c := circuit.New(4)
	for q := 0; q < 3; q++ {
		c.CX(q, q+1)
	}
	res, err := transpile.Transpile(c, lineBackend(t, 6), transpile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PerfectLayout {
		t.Fatal("line circuit did not embed perfectly in line device")
	}
	if res.AddedSwaps != 0 {
		t.Fatalf("perfect layout still swapped %d times", res.AddedSwaps)
	}
}

func TestTooManyQubitsRejected(t *testing.T) {
	c := circuit.New(10)
	c.H(0)
	if _, err := transpile.Transpile(c, lineBackend(t, 4), transpile.Options{}); err == nil {
		t.Fatal("oversized circuit accepted")
	}
}

func TestBasisCheck(t *testing.T) {
	b := lineBackend(t, 3)
	b.BasisGates = []string{"rx", "rz", "cz"}
	c := circuit.New(2)
	c.H(0)
	if _, err := transpile.Transpile(c, b, transpile.Options{}); err == nil {
		t.Fatal("unsupported basis accepted")
	}
}

func TestMeasurementMappingSurvivesRouting(t *testing.T) {
	// A circuit that certainly routes: entangle ends of a 6-line, measure
	// only qubit 5 into clbit 0, expect the marginal to survive.
	c := circuit.NewWithClbits(6, 1)
	c.X(0)
	c.CX(0, 5)
	c.Measure(5, 0)
	b := lineBackend(t, 6)
	res, err := transpile.Transpile(c, b, transpile.Options{DisableVF2Layout: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := statevec.IdealDistribution(res.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got["1"]-1) > 1e-9 {
		t.Fatalf("measurement mapping broken: %v", got)
	}
}

func TestFinalLayoutTracksSwaps(t *testing.T) {
	c := circuit.New(3)
	c.CX(0, 2) // on a 3-line with trivial layout this needs one swap
	res, err := transpile.Transpile(c, lineBackend(t, 3), transpile.Options{DisableVF2Layout: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalLayout) != 3 || len(res.InitialLayout) != 3 {
		t.Fatalf("layout sizes wrong: %v %v", res.InitialLayout, res.FinalLayout)
	}
	// Final layout must be a permutation.
	seen := map[int]bool{}
	for _, p := range res.FinalLayout {
		if seen[p] {
			t.Fatalf("final layout not injective: %v", res.FinalLayout)
		}
		seen[p] = true
	}
}
