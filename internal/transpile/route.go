package transpile

import (
	"fmt"

	"qrio/internal/device"
	"qrio/internal/quantum/circuit"
)

// route makes every two-qubit gate act on a coupling edge by inserting
// swaps (emitted as cx triples). It implements a SABRE-lite heuristic:
// candidate swaps are scored by the distance of the blocked gate plus a
// discounted look-ahead over upcoming two-qubit gates. With
// opts.NaiveRouting it instead walks the shortest path (ablation baseline).
func route(c *circuit.Circuit, b *device.Backend, initial []int, opts Options) (*circuit.Circuit, []int, int, error) {
	dist := b.Coupling.AllPairsDistances()
	lookahead := opts.Lookahead
	if lookahead <= 0 {
		lookahead = 10
	}

	l2p := append([]int(nil), initial...)
	p2l := make([]int, b.NumQubits)
	for i := range p2l {
		p2l[i] = -1
	}
	for l, p := range l2p {
		p2l[p] = l
	}

	out := &circuit.Circuit{
		Name:      c.Name,
		NumQubits: b.NumQubits,
		NumClbits: c.NumClbits,
	}
	swaps := 0

	// Upcoming two-qubit gate pairs (logical), indexed per gate position,
	// for the lookahead term.
	type pair struct{ a, b int }
	var future []pair
	futureAt := make([]int, len(c.Gates)) // index into future for gate i
	for i, g := range c.Gates {
		futureAt[i] = len(future)
		if g.IsUnitary() && len(g.Qubits) == 2 {
			future = append(future, pair{g.Qubits[0], g.Qubits[1]})
		}
	}

	applySwap := func(p, q int) {
		out.Gates = append(out.Gates,
			circuit.Gate{Name: circuit.GateCX, Qubits: []int{p, q}},
			circuit.Gate{Name: circuit.GateCX, Qubits: []int{q, p}},
			circuit.Gate{Name: circuit.GateCX, Qubits: []int{p, q}},
		)
		la, lb := p2l[p], p2l[q]
		p2l[p], p2l[q] = lb, la
		if la >= 0 {
			l2p[la] = q
		}
		if lb >= 0 {
			l2p[lb] = p
		}
		swaps++
	}

	maxSteps := 10 * (len(c.Gates) + 1) * (b.NumQubits + 1)
	steps := 0

	for gi, g := range c.Gates {
		switch {
		case g.Name == circuit.GateBarrier:
			qs := make([]int, len(g.Qubits))
			for i, q := range g.Qubits {
				qs[i] = l2p[q]
			}
			out.Gates = append(out.Gates, circuit.Gate{Name: circuit.GateBarrier, Qubits: qs})
			continue
		case g.Name == circuit.GateMeasure:
			out.Gates = append(out.Gates, circuit.Gate{
				Name: circuit.GateMeasure, Qubits: []int{l2p[g.Qubits[0]]},
				Clbits: append([]int(nil), g.Clbits...),
			})
			continue
		case g.Name == circuit.GateReset:
			out.Gates = append(out.Gates, circuit.Gate{
				Name: circuit.GateReset, Qubits: []int{l2p[g.Qubits[0]]}})
			continue
		case len(g.Qubits) == 1:
			ng := g.Copy()
			ng.Qubits[0] = l2p[g.Qubits[0]]
			out.Gates = append(out.Gates, ng)
			continue
		case len(g.Qubits) != 2:
			return nil, nil, 0, fmt.Errorf("transpile: %d-qubit gate %q survived decomposition", len(g.Qubits), g.Name)
		}

		a, bq := g.Qubits[0], g.Qubits[1]
		for dist[l2p[a]][l2p[bq]] > 1 {
			steps++
			if steps > maxSteps {
				return nil, nil, 0, fmt.Errorf("transpile: routing failed to converge (device %s)", b.Name)
			}
			pa, pb := l2p[a], l2p[bq]
			if opts.NaiveRouting {
				path := b.Coupling.ShortestPath(pa, pb)
				if len(path) < 2 {
					return nil, nil, 0, fmt.Errorf("transpile: qubits %d,%d disconnected on %s", pa, pb, b.Name)
				}
				applySwap(path[0], path[1])
				continue
			}
			// SABRE-lite: score every swap adjacent to either endpoint.
			window := future[futureAt[gi]:]
			if len(window) > lookahead {
				window = window[:lookahead]
			}
			bestEdge := [2]int{-1, -1}
			bestScore := 1e18
			consider := func(p, q int) {
				// Simulate the swap's effect on distances.
				d := func(x int) int {
					switch x {
					case p:
						return q
					case q:
						return p
					}
					return x
				}
				score := float64(dist[d(l2p[a])][d(l2p[bq])])
				discount := 0.5
				for k, f := range window {
					if k == 0 {
						continue // first window entry is the blocked gate itself
					}
					score += discount * float64(dist[d(l2p[f.a])][d(l2p[f.b])]) / float64(len(window))
				}
				if score < bestScore-1e-12 {
					bestScore = score
					bestEdge = [2]int{p, q}
				}
			}
			for _, nb := range b.Coupling.Neighbors(pa) {
				consider(pa, nb)
			}
			for _, nb := range b.Coupling.Neighbors(pb) {
				consider(pb, nb)
			}
			if bestEdge[0] < 0 {
				return nil, nil, 0, fmt.Errorf("transpile: no swap candidates on %s", b.Name)
			}
			// Guarantee progress: if the best swap does not reduce the
			// blocked gate's distance, step along the shortest path.
			cur := float64(dist[pa][pb])
			d0 := func(x, p, q int) int {
				switch x {
				case p:
					return q
				case q:
					return p
				}
				return x
			}
			after := dist[d0(pa, bestEdge[0], bestEdge[1])][d0(pb, bestEdge[0], bestEdge[1])]
			if float64(after) >= cur {
				path := b.Coupling.ShortestPath(pa, pb)
				bestEdge = [2]int{path[0], path[1]}
			}
			applySwap(bestEdge[0], bestEdge[1])
		}
		out.Gates = append(out.Gates, circuit.Gate{
			Name: g.Name, Qubits: []int{l2p[a], l2p[bq]},
			Params: append([]float64(nil), g.Params...),
		})
	}
	return out, l2p, swaps, nil
}
