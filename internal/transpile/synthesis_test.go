package transpile

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"qrio/internal/quantum/circuit"
)

// matricesEqualUpToPhase compares 2x2 matrices modulo a global phase.
func matricesEqualUpToPhase(a, b circuit.Matrix2, tol float64) bool {
	// Find a reference entry with decent magnitude in a.
	var phase complex128
	found := false
	for i := 0; i < 2 && !found; i++ {
		for j := 0; j < 2 && !found; j++ {
			if cmplx.Abs(a[i][j]) > 1e-6 && cmplx.Abs(b[i][j]) > 1e-6 {
				phase = b[i][j] / a[i][j]
				found = true
			}
		}
	}
	if !found {
		return false
	}
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(a[i][j]*phase-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// TestZYZRoundTrip: decomposing any 1-qubit unitary into (θ, φ, λ) and
// rebuilding u3(θ, φ, λ) must reproduce the matrix up to global phase —
// the core invariant of the basis translator.
func TestZYZRoundTrip(t *testing.T) {
	f := func(t0, p0, l0, g0 float64) bool {
		theta := math.Mod(t0, 2*math.Pi)
		phi := math.Mod(p0, 2*math.Pi)
		lambda := math.Mod(l0, 2*math.Pi)
		m := circuit.U3Matrix(theta, phi, lambda)
		// Inject a random global phase — zyz must be insensitive to it.
		ph := cmplx.Exp(complex(0, math.Mod(g0, 2*math.Pi)))
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				m[i][j] *= ph
			}
		}
		th, p, l := zyzAngles(m)
		re := circuit.U3Matrix(th, p, l)
		return matricesEqualUpToPhase(m, re, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestZYZEdgeCases covers the degenerate branches: diagonal (θ=0) and
// anti-diagonal (θ=π) unitaries.
func TestZYZEdgeCases(t *testing.T) {
	cases := []circuit.Matrix2{
		circuit.U3Matrix(0, 0, 1.3),           // pure phase
		circuit.U3Matrix(math.Pi, 0, 0.4),     // anti-diagonal
		circuit.U3Matrix(0, 0, 0),             // identity
		circuit.U3Matrix(math.Pi, 0, math.Pi), // x
		circuit.U3Matrix(math.Pi/2, 0, math.Pi),
	}
	for i, m := range cases {
		th, p, l := zyzAngles(m)
		re := circuit.U3Matrix(th, p, l)
		if !matricesEqualUpToPhase(m, re, 1e-9) {
			t.Errorf("case %d: zyz round trip failed", i)
		}
	}
}

// TestSynthesizeUPicksCheapestForm verifies gate-form selection: phase-only
// → u1, θ=π/2 → u2, general → u3, identity → dropped.
func TestSynthesizeUPicksCheapestForm(t *testing.T) {
	check := func(m circuit.Matrix2, wantName string, wantOK bool) {
		t.Helper()
		g, ok := synthesizeU(0, m)
		if ok != wantOK {
			t.Fatalf("ok = %v, want %v", ok, wantOK)
		}
		if ok && g.Name != wantName {
			t.Fatalf("name = %s, want %s", g.Name, wantName)
		}
	}
	check(circuit.U3Matrix(0, 0, 0.7), circuit.GateU1, true)
	check(circuit.U3Matrix(math.Pi/2, 0.3, 0.9), circuit.GateU2, true)
	check(circuit.U3Matrix(1.1, 0.3, 0.9), circuit.GateU3, true)
	check(circuit.U3Matrix(0, 0, 0), "", false) // identity dropped
	// Identity up to a global phase is still identity.
	m := circuit.U3Matrix(0, 0, 0)
	ph := cmplx.Exp(complex(0, 1.234))
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m[i][j] *= ph
		}
	}
	check(m, "", false)
}

// TestNormalizeAngleProperty: output is always in (-π, π] and congruent to
// the input mod 2π.
func TestNormalizeAngleProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e9 {
			return true // out of scope for angles
		}
		n := normalizeAngle(a)
		if n <= -math.Pi || n > math.Pi {
			return false
		}
		d := math.Mod(a-n, 2*math.Pi)
		if d > math.Pi {
			d -= 2 * math.Pi
		}
		if d < -math.Pi {
			d += 2 * math.Pi
		}
		return math.Abs(d) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFuse1QRunsIsExact: fusing a run of random u gates equals their
// product.
func TestFuse1QRunsIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		c := &circuit.Circuit{NumQubits: 1, NumClbits: 1}
		product := circuit.U3Matrix(0, 0, 0) // identity
		for i := 0; i < 5; i++ {
			th, p, l := rng.Float64()*3, rng.Float64()*3, rng.Float64()*3
			c.MustAppend(circuit.Gate{Name: circuit.GateU3, Qubits: []int{0},
				Params: []float64{th, p, l}})
			product = mul2(circuit.U3Matrix(th, p, l), product)
		}
		fused := fuseOneQubitRuns(c)
		if len(fused.Gates) > 1 {
			t.Fatalf("trial %d: %d gates after fusion", trial, len(fused.Gates))
		}
		var got circuit.Matrix2
		if len(fused.Gates) == 0 {
			got = circuit.U3Matrix(0, 0, 0)
		} else {
			got = fused.Gates[0].MustMatrix1Q()
		}
		if !matricesEqualUpToPhase(product, got, 1e-8) {
			t.Fatalf("trial %d: fusion changed the unitary", trial)
		}
	}
}
