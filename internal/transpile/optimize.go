package transpile

import (
	"qrio/internal/quantum/circuit"
)

// optimize performs physical-circuit peephole optimisation: adjacent
// one-qubit gates on the same qubit are fused into a single u gate, exact
// cx-cx pairs cancel, and identity rotations disappear. Iterates until a
// fixed point (cancelling a cx pair can make 1q gates adjacent).
func optimize(c *circuit.Circuit) *circuit.Circuit {
	cur := c
	for i := 0; i < 20; i++ { // fixed-point iteration with a hard cap
		next := fuseOneQubitRuns(cur)
		next = cancelCXPairs(next)
		if len(next.Gates) == len(cur.Gates) {
			return next
		}
		cur = next
	}
	return cur
}

func isUGate(name string) bool {
	return name == circuit.GateU1 || name == circuit.GateU2 || name == circuit.GateU3
}

// fuseOneQubitRuns merges maximal runs of u gates per qubit into one gate.
// A gate stream per qubit is interrupted by any multi-qubit gate, measure,
// reset or barrier touching that qubit.
func fuseOneQubitRuns(c *circuit.Circuit) *circuit.Circuit {
	out := &circuit.Circuit{Name: c.Name, NumQubits: c.NumQubits, NumClbits: c.NumClbits}
	// pending[q] holds the accumulated matrix for qubit q, or nil.
	pending := make([]*circuit.Matrix2, c.NumQubits)

	flush := func(q int) {
		if pending[q] == nil {
			return
		}
		if g, ok := synthesizeU(q, *pending[q]); ok {
			out.Gates = append(out.Gates, g)
		}
		pending[q] = nil
	}
	flushAll := func() {
		for q := range pending {
			flush(q)
		}
	}

	for _, g := range c.Gates {
		if isUGate(g.Name) && len(g.Qubits) == 1 {
			q := g.Qubits[0]
			m := g.MustMatrix1Q()
			if pending[q] == nil {
				pending[q] = &m
			} else {
				fused := mul2(m, *pending[q]) // later gate multiplies on the left
				pending[q] = &fused
			}
			continue
		}
		if g.Name == circuit.GateBarrier && len(g.Qubits) == 0 {
			flushAll()
		} else {
			for _, q := range g.Qubits {
				flush(q)
			}
		}
		out.Gates = append(out.Gates, g.Copy())
	}
	flushAll()
	return out
}

// cancelCXPairs removes immediately adjacent identical cx gates (no
// intervening gate on either qubit).
func cancelCXPairs(c *circuit.Circuit) *circuit.Circuit {
	out := &circuit.Circuit{Name: c.Name, NumQubits: c.NumQubits, NumClbits: c.NumClbits}
	// lastCX[q] is the index in out.Gates of the trailing cx touching q,
	// valid only if nothing touched q since.
	lastCX := make([]int, c.NumQubits)
	for i := range lastCX {
		lastCX[i] = -1
	}
	invalidate := func(qs []int) {
		for _, q := range qs {
			lastCX[q] = -1
		}
	}
	for _, g := range c.Gates {
		if g.Name == circuit.GateCX {
			a, b := g.Qubits[0], g.Qubits[1]
			if idx := lastCX[a]; idx >= 0 && idx == lastCX[b] {
				prev := out.Gates[idx]
				if prev.Name == circuit.GateCX && prev.Qubits[0] == a && prev.Qubits[1] == b {
					// Cancel the pair.
					out.Gates = append(out.Gates[:idx], out.Gates[idx+1:]...)
					// Indices above idx shifted down by one.
					for q := range lastCX {
						if lastCX[q] > idx {
							lastCX[q]--
						} else if lastCX[q] == idx {
							lastCX[q] = -1
						}
					}
					continue
				}
			}
			out.Gates = append(out.Gates, g.Copy())
			lastCX[a] = len(out.Gates) - 1
			lastCX[b] = len(out.Gates) - 1
			continue
		}
		if g.Name == circuit.GateBarrier && len(g.Qubits) == 0 {
			for q := range lastCX {
				lastCX[q] = -1
			}
		} else {
			invalidate(g.Qubits)
		}
		out.Gates = append(out.Gates, g.Copy())
	}
	return out
}
