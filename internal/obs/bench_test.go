package obs

import (
	"io"
	"strconv"
	"testing"
)

// BenchmarkMetricsHotPath is the CI-guarded cost model for the three
// operations instrumentation adds to existing hot paths: a counter
// increment, a histogram observation, and a full scrape of a populated
// registry. The first two bound the per-event overhead inside the
// scheduler/gateway/WAL; the scrape bounds what a Prometheus poll costs
// the deployment.
func BenchmarkMetricsHotPath(b *testing.B) {
	b.Run("counter-inc", func(b *testing.B) {
		c := NewRegistry().Counter("qrio_state_tenant_binds_total", "", "tenant").With("bench")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter-with-inc", func(b *testing.B) {
		vec := NewRegistry().Counter("qrio_state_tenant_binds_total", "", "tenant")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vec.With("bench").Inc()
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		h := NewRegistry().Histogram("qrio_sched_pass_duration_seconds", "", nil).With()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%1000) / 1000)
		}
	})
	b.Run("scrape", func(b *testing.B) {
		r := populated()
		// Widen to a realistic deployment: tens of routes and tenants.
		req := r.Counter("qrio_gateway_requests_total", "", "route", "code")
		lat := r.Histogram("qrio_gateway_request_duration_seconds", "", nil, "route")
		for i := 0; i < 30; i++ {
			route := "GET /v1/r" + strconv.Itoa(i)
			req.With(route, "200").Add(uint64(i))
			lat.With(route).Observe(float64(i) / 100)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := r.WriteText(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}
