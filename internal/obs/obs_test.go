package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exposition output byte for byte: sorted
// families, sorted children, sorted label pairs, cumulative buckets, no
// timestamps. Any formatting drift breaks scrapers and sim diffs alike.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	binds := r.Counter("qrio_state_tenant_binds_total", "Jobs bound per tenant.", "tenant")
	binds.With("bob").Add(2)
	binds.With("alice").Inc()
	depth := r.Gauge("qrio_state_depth_jobs", "Jobs per lifecycle phase.", "phase")
	depth.With("pending").Set(7)
	depth.With("active").Set(1.5)
	h := r.Histogram("qrio_sched_pass_duration_seconds", "Scheduling pass wall time.", []float64{0.01, 0.1, 1})
	h.With().Observe(0.005)
	h.With().Observe(0.05)
	h.With().Observe(42)
	r.GaugeFunc("qrio_gateway_inflight_requests", "In-flight /v1 requests.", func() float64 { return 3 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP qrio_gateway_inflight_requests In-flight /v1 requests.
# TYPE qrio_gateway_inflight_requests gauge
qrio_gateway_inflight_requests 3
# HELP qrio_sched_pass_duration_seconds Scheduling pass wall time.
# TYPE qrio_sched_pass_duration_seconds histogram
qrio_sched_pass_duration_seconds_bucket{le="0.01"} 1
qrio_sched_pass_duration_seconds_bucket{le="0.1"} 2
qrio_sched_pass_duration_seconds_bucket{le="1"} 2
qrio_sched_pass_duration_seconds_bucket{le="+Inf"} 3
qrio_sched_pass_duration_seconds_sum 42.055
qrio_sched_pass_duration_seconds_count 3
# HELP qrio_state_depth_jobs Jobs per lifecycle phase.
# TYPE qrio_state_depth_jobs gauge
qrio_state_depth_jobs{phase="active"} 1.5
qrio_state_depth_jobs{phase="pending"} 7
# HELP qrio_state_tenant_binds_total Jobs bound per tenant.
# TYPE qrio_state_tenant_binds_total counter
qrio_state_tenant_binds_total{tenant="alice"} 1
qrio_state_tenant_binds_total{tenant="bob"} 2
`
	if b.String() != want {
		t.Errorf("exposition drift:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
	// A second render must be byte-identical (scrape idempotence).
	var b2 strings.Builder
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b.String() {
		t.Error("two scrapes of an unchanged registry differ")
	}
}

// TestRegisterIdempotent: identical re-registration shares the family
// (wiring the same registry twice is legal); a changed signature panics.
func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("qrio_gateway_sheds_total", "Shed requests.", "reason")
	b := r.Counter("qrio_gateway_sheds_total", "Shed requests.", "reason")
	a.With("overloaded").Inc()
	if got := b.With("overloaded").Value(); got != 1 {
		t.Fatalf("re-registered vec sees %d, want 1 (same family)", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("qrio_gateway_sheds_total", "Shed requests.", "reason")
}

// TestLabelEscaping: quotes, backslashes and newlines in label values
// and HELP text survive a write/parse round trip.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("qrio_state_tenant_binds_total", "line one\nline \\two", "tenant")
	c.With(`we"ird\te` + "\nnant").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(b.String())
	if err != nil {
		t.Fatalf("parsing own output: %v\n%s", err, b.String())
	}
	f := FindFamily(fams, "qrio_state_tenant_binds_total")
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("families = %+v", fams)
	}
	if f.Help != "line one\nline \\two" {
		t.Errorf("help round trip: %q", f.Help)
	}
	if got := f.Samples[0].Get("tenant"); got != `we"ird\te`+"\nnant" {
		t.Errorf("label round trip: %q", got)
	}
}

// TestConcurrentUpdates hammers every metric type (and dynamic child
// creation) from many goroutines while a scraper gathers — the test is
// only meaningful under -race, where internal/obs runs in CI.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("qrio_state_tenant_binds_total", "", "tenant")
	g := r.Gauge("qrio_gateway_inflight_requests", "")
	h := r.Histogram("qrio_sched_pass_duration_seconds", "", nil)
	r.OnGather(func() { c.With("hook").Set(1) })

	const workers, iters = 8, 2000
	tenants := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.With(tenants[(w+i)%len(tenants)]).Inc()
				g.With().Add(1)
				g.With().Add(-1)
				h.With().Observe(float64(i) / iters)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Gather()
		}
	}()
	wg.Wait()
	<-done

	var total uint64
	for _, tn := range tenants {
		total += c.With(tn).Value()
	}
	if total != workers*iters {
		t.Errorf("counter total = %d, want %d", total, workers*iters)
	}
	hh := h.With()
	if got := hh.count.Load(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	var bucketSum uint64
	for i := range hh.counts {
		bucketSum += hh.counts[i].Load()
	}
	if bucketSum != workers*iters {
		t.Errorf("bucket sum = %d, want %d", bucketSum, workers*iters)
	}
	if got := g.With().Value(); got != 0 {
		t.Errorf("gauge = %v, want 0 after balanced adds", got)
	}
}

// TestHistogramBuckets pins bucket assignment at the boundaries: le is
// an upper inclusive bound.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("qrio_sched_pass_duration_seconds", "", []float64{1, 2}).With()
	h.Observe(1)           // le="1"
	h.Observe(1.5)         // le="2"
	h.Observe(2)           // le="2"
	h.Observe(3)           // +Inf
	h.Observe(math.Inf(1)) // +Inf
	for i, want := range []uint64{1, 2, 2} {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}
	if got := h.count.Load(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
}

func TestValueFormatting(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		1:           "1",
		0.25:        "0.25",
		1e7:         "1e+07",
		math.Inf(1): "+Inf",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("NaN formats as %q", got)
	}
}
