package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Family is one metric family in the exposition model — what Gather
// produces, WriteFamilies renders and ParseText reads back. Type is
// "counter", "gauge", "histogram" or "untyped".
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

// Sample is one exposition line: a sample name (the family name, or
// family_bucket/_sum/_count for histograms), its label pairs sorted by
// name, and the value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label is one name="value" pair.
type Label struct {
	Name  string
	Value string
}

// Get returns the value of the named label, or "" if absent.
func (s Sample) Get(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// FindFamily returns the family with the given name, or nil.
func FindFamily(fams []Family, name string) *Family {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4). Output is byte-stable for a given set of values.
func (r *Registry) WriteText(w io.Writer) error {
	return WriteFamilies(w, r.Gather())
}

// WriteFamilies renders families in Prometheus text exposition format.
// It emits no timestamps and preserves the given family order (Gather
// sorts; parsed input keeps its appearance order), so formatting a parse
// of its own output is byte-identical.
func WriteFamilies(w io.Writer, fams []Family) error {
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.Help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.Name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.Help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		if f.Type == "" {
			b.WriteString("untyped")
		} else {
			b.WriteString(f.Type)
		}
		b.WriteByte('\n')
		for _, s := range f.Samples {
			b.WriteString(s.Name)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(l.Name)
					b.WriteString(`="`)
					b.WriteString(escapeLabel(l.Value))
					b.WriteByte('"')
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trippable decimal, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ParseText parses Prometheus text exposition (the subset WriteFamilies
// emits: HELP/TYPE comments and timestamp-less samples) back into the
// family model. Families keep their order of first appearance; samples
// are attached to the family whose name they carry, or — for
// _bucket/_sum/_count suffixes — to the matching histogram family.
// Unknown samples open an implicit untyped family. It never panics on
// malformed input; it returns an error instead.
func ParseText(text string) ([]Family, error) {
	var (
		fams  []Family
		index = make(map[string]int)
	)
	ensure := func(name string) *Family {
		if i, ok := index[name]; ok {
			return &fams[i]
		}
		index[name] = len(fams)
		fams = append(fams, Family{Name: name, Type: "untyped"})
		return &fams[len(fams)-1]
	}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimPrefix(rest, " ")
			keyword, rest, _ := strings.Cut(rest, " ")
			switch keyword {
			case "HELP":
				name, help, _ := strings.Cut(rest, " ")
				if name == "" {
					return nil, fmt.Errorf("line %d: HELP without a metric name", ln+1)
				}
				ensure(name).Help = unescapeHelp(help)
			case "TYPE":
				name, typ, ok := strings.Cut(rest, " ")
				if name == "" || !ok {
					return nil, fmt.Errorf("line %d: malformed TYPE comment", ln+1)
				}
				ensure(name).Type = strings.TrimSpace(typ)
			}
			// Other comments are ignored, per the format spec.
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		fam := familyFor(fams, index, name)
		if fam == nil {
			fam = ensure(name)
		}
		fam.Samples = append(fam.Samples, Sample{Name: name, Labels: labels, Value: value})
	}
	return fams, nil
}

// familyFor resolves which existing family owns a sample name: an exact
// match, or the base histogram family for _bucket/_sum/_count suffixes.
func familyFor(fams []Family, index map[string]int, name string) *Family {
	if i, ok := index[name]; ok {
		return &fams[i]
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if i, ok := index[base]; ok && fams[i].Type == "histogram" {
			return &fams[i]
		}
	}
	return nil
}

func parseSampleLine(line string) (string, []Label, float64, error) {
	i := strings.IndexAny(line, "{ \t")
	if i <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:i]
	if !nameRE.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid sample name %q", name)
	}
	rest := line[i:]
	var labels []Label
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return "", nil, 0, fmt.Errorf("want exactly one value after %q, got %q", name, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return name, labels, v, nil
}

// parseLabels consumes `name="value",...}` and returns the pairs plus
// the unconsumed remainder of the line.
func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !nameRE.MatchString(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, "", fmt.Errorf("label %s: value not quoted", name)
		}
		value, rest, err := parseQuoted(s[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", name, err)
		}
		labels = append(labels, Label{Name: name, Value: value})
		s = rest
		if len(s) > 0 && s[0] == ',' {
			s = s[1:]
		}
	}
}

// parseQuoted consumes an escaped label value up to its closing quote.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '"', '\\':
				b.WriteByte(s[i])
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}
