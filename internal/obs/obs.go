// Package obs is QRIO's zero-dependency metrics subsystem: counters,
// gauges and fixed-bucket histograms with atomic hot-path updates, label
// support, and a deterministic Prometheus text-exposition writer.
//
// Design constraints, in order:
//
//   - Hot-path cost. Counter.Inc is one atomic add; Histogram.Observe is
//     a short linear scan plus three atomics. No locks, no allocation.
//     Vec.With takes a read lock and a map hit — instrumented call sites
//     that run per-request pay one lookup; call sites that run per
//     scheduling pass cache the child handle at wiring time.
//   - Determinism. Gather sorts families by name, children by label
//     values and label pairs by key, and the writer emits no timestamps,
//     so exposition output is byte-stable for a given set of values —
//     golden-testable, and diffable across seeded sim runs.
//   - Zero dependencies. Everything is stdlib; the exposition format is
//     Prometheus text version 0.0.4, which any scraper understands.
//
// Values that are cheap to read but not worth threading handles through
// (queue depths, cache stats, breaker state) register as GaugeFunc /
// CounterFunc or are mirrored inside an OnGather hook, sampled once per
// scrape instead of updated per event.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram bounds, in seconds: they span
// sub-millisecond hot paths (counter bumps, fsync on fast disks) through
// multi-second whole-pass and end-to-end latencies.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Registry holds a deployment's metric families. One registry is shared
// by every layer (core.Config.Metrics) so the daemon, the simulator and
// tests scrape a single coherent view.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family: fixed kind, label schema and (for
// histograms) bucket bounds, plus its children keyed by label values.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string
	bounds []float64      // histogram upper bounds, sorted, no +Inf
	fn     func() float64 // CounterFunc/GaugeFunc value source

	mu       sync.RWMutex
	children map[string]*child
}

type child struct {
	values []string
	metric any // *Counter, *Gauge or *Histogram
}

// register adds (or idempotently returns) a family. Re-registering the
// same name with an identical signature returns the existing family, so
// wiring the same registry twice (e.g. two gateways over one core) is
// safe; a mismatched signature is a programming error and panics.
func (r *Registry) register(name, help string, k kind, labels []string, bounds []float64, fn func() float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRE.MatchString(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	if !slices.IsSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q buckets not sorted", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || !slices.Equal(f.labels, labels) || !slices.Equal(f.bounds, bounds) || (f.fn == nil) != (fn == nil) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different signature", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     k,
		labels:   slices.Clone(labels),
		bounds:   slices.Clone(bounds),
		fn:       fn,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// Counter registers (or returns) a counter family with the given label
// schema.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, kindCounter, labels, nil, nil)}
}

// Gauge registers (or returns) a gauge family with the given label
// schema.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, kindGauge, labels, nil, nil)}
}

// Histogram registers (or returns) a histogram family. buckets are the
// upper bounds (ascending, +Inf implied); nil means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{fam: r.register(name, help, kindHistogram, labels, buckets, nil)}
}

// CounterFunc registers a label-less counter whose value is read from fn
// at each scrape — for mirroring an external monotonic source (breaker
// open count, archive drop count) without double bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounter, nil, nil, fn)
}

// GaugeFunc registers a label-less gauge whose value is read from fn at
// each scrape — for cheap instantaneous reads (queue depth, in-flight).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil, fn)
}

// OnGather registers a hook run at the start of every Gather, before
// values are read — the place to mirror batched stats (cache counters,
// durability stats, per-point fault fire counts) into registered metrics.
func (r *Registry) OnGather(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// childKey joins label values; unit separator keeps the mapping
// injective for any values that don't themselves contain 0x1f.
func childKey(values []string) string { return strings.Join(values, "\x1f") }

func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c.metric
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.children[key]; c != nil {
		return c.metric
	}
	m := make()
	f.children[key] = &child{values: slices.Clone(values), metric: m}
	return m
}

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the count. Only for mirroring an external monotonic
// source (e.g. meta.CacheStats) inside an OnGather hook — instrumented
// code paths must use Inc/Add.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a counter family; With resolves one labelled child.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.child(values, func() any { return new(Counter) }).(*Counter)
}

// Gauge is an instantaneous value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a gauge family; With resolves one labelled child.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.child(values, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram accumulates observations into fixed buckets. Observe is
// lock-free; a concurrent scrape may see a bucket increment before the
// matching sum update (standard for atomic histograms).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramVec is a histogram family; With resolves one labelled child.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.fam
	return f.child(values, func() any {
		return &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	}).(*Histogram)
}

// Gather runs the OnGather hooks, then snapshots every family into the
// exposition model: families sorted by name, children by label values,
// label pairs by key. The result is deterministic for a given set of
// metric values.
func (r *Registry) Gather() []Family {
	r.mu.RLock()
	hooks := slices.Clone(r.hooks)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, h := range hooks {
		h()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.gather())
	}
	return out
}

func (f *family) gather() Family {
	fam := Family{Name: f.name, Type: f.kind.String(), Help: f.help}
	if f.fn != nil {
		fam.Samples = []Sample{{Name: f.name, Value: f.fn()}}
		return fam
	}
	f.mu.RLock()
	children := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		children = append(children, c)
	}
	f.mu.RUnlock()
	sort.Slice(children, func(i, j int) bool {
		return slices.Compare(children[i].values, children[j].values) < 0
	})
	for _, c := range children {
		base := labelPairs(f.labels, c.values)
		switch m := c.metric.(type) {
		case *Counter:
			fam.Samples = append(fam.Samples, Sample{Name: f.name, Labels: base, Value: float64(m.Value())})
		case *Gauge:
			fam.Samples = append(fam.Samples, Sample{Name: f.name, Labels: base, Value: m.Value()})
		case *Histogram:
			var cum uint64
			for i := range m.counts {
				cum += m.counts[i].Load()
				le := "+Inf"
				if i < len(m.bounds) {
					le = formatValue(m.bounds[i])
				}
				fam.Samples = append(fam.Samples, Sample{
					Name:   f.name + "_bucket",
					Labels: withLabel(base, "le", le),
					Value:  float64(cum),
				})
			}
			fam.Samples = append(fam.Samples,
				Sample{Name: f.name + "_sum", Labels: base, Value: math.Float64frombits(m.sum.Load())},
				Sample{Name: f.name + "_count", Labels: base, Value: float64(m.count.Load())},
			)
		}
	}
	return fam
}

// labelPairs zips a label schema with one child's values, sorted by key.
func labelPairs(keys, values []string) []Label {
	if len(keys) == 0 {
		return nil
	}
	out := make([]Label, len(keys))
	for i := range keys {
		out[i] = Label{Name: keys[i], Value: values[i]}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// withLabel returns base plus one extra pair, keeping key order.
func withLabel(base []Label, name, value string) []Label {
	out := make([]Label, 0, len(base)+1)
	out = append(out, base...)
	out = append(out, Label{Name: name, Value: value})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
