package obs

import (
	"strings"
	"testing"
)

// populated builds a registry resembling a real deployment scrape: every
// metric type, labelled and label-less, funcs and histograms.
func populated() *Registry {
	r := NewRegistry()
	req := r.Counter("qrio_gateway_requests_total", "Requests per route and status.", "route", "code")
	req.With("POST /v1/jobs", "200").Add(17)
	req.With("POST /v1/jobs", "429").Add(3)
	req.With("GET /v1/jobs/{name}", "404").Inc()
	sheds := r.Counter("qrio_gateway_sheds_total", "Requests shed before handling.", "reason")
	sheds.With("rate_limited").Add(3)
	depth := r.Gauge("qrio_state_depth_jobs", "Jobs per phase.", "phase")
	depth.With("pending").Set(12)
	depth.With("terminal").Set(40)
	r.GaugeFunc("qrio_watch_active_streams", "Live watch subscribers.", func() float64 { return 2 })
	r.CounterFunc("qrio_sched_degraded_episodes_total", "Breaker opens.", func() float64 { return 1 })
	lat := r.Histogram("qrio_state_submit_to_bind_seconds", "Submit to bind latency.", []float64{0.001, 0.1, 10})
	lat.With().Observe(0.0005)
	lat.With().Observe(0.05)
	lat.With().Observe(3)
	return r
}

// TestParseRoundTrip: formatting a parse of our own exposition output
// reproduces it byte for byte — parser and writer agree on the format.
func TestParseRoundTrip(t *testing.T) {
	var first strings.Builder
	if err := populated().WriteText(&first); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(first.String())
	if err != nil {
		t.Fatalf("parsing own output: %v\n%s", err, first.String())
	}
	var second strings.Builder
	if err := WriteFamilies(&second, fams); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("round trip drift:\n--- formatted ---\n%s--- reformatted ---\n%s", first.String(), second.String())
	}
	// Histogram samples must attach to their base family, not open
	// implicit _bucket/_sum/_count families.
	if f := FindFamily(fams, "qrio_state_submit_to_bind_seconds"); f == nil || len(f.Samples) != 6 {
		t.Errorf("histogram family not reassembled: %+v", f)
	}
	if FindFamily(fams, "qrio_state_submit_to_bind_seconds_bucket") != nil {
		t.Error("_bucket opened its own family")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		`qrio_x{tenant="a} 1`,    // unterminated quote
		`qrio_x{tenant=a} 1`,     // unquoted value
		`qrio_x 1 2 3`,           // trailing tokens
		`qrio_x{} nope`,          // non-numeric value
		`{tenant="a"} 1`,         // missing name
		`qrio_x{tenant="a"`,      // unterminated label set
		`qrio_x{tenant="a\q"} 1`, // unknown escape
		"# TYPE qrio_x",          // TYPE without a type
	}
	for _, c := range cases {
		if _, err := ParseText(c); err == nil {
			t.Errorf("ParseText(%q) accepted malformed input", c)
		}
	}
}

func TestParseIgnoresFreeComments(t *testing.T) {
	fams, err := ParseText("# a scraper note\n# EOF\nqrio_state_depth_jobs 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || fams[0].Type != "untyped" || fams[0].Samples[0].Value != 4 {
		t.Fatalf("families = %+v", fams)
	}
}

// FuzzParseText: the parser must never panic, and anything it accepts
// must survive a format/reparse/format round trip (idempotent rendering).
func FuzzParseText(f *testing.F) {
	var seed strings.Builder
	if err := populated().WriteText(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("# HELP a b\n# TYPE a counter\na 1\n")
	f.Add(`a{x="y\n\\\""} +Inf` + "\n")
	f.Add("a_bucket{le=\"0.1\"} 1\n# TYPE a histogram\na_sum 2\n")
	f.Add("# TYPE \n\n{} 1\na{ 1")
	f.Fuzz(func(t *testing.T, text string) {
		fams, err := ParseText(text)
		if err != nil {
			return
		}
		var once strings.Builder
		if err := WriteFamilies(&once, fams); err != nil {
			t.Fatal(err)
		}
		fams2, err := ParseText(once.String())
		if err != nil {
			t.Fatalf("reparse of formatted output failed: %v\n%s", err, once.String())
		}
		var twice strings.Builder
		if err := WriteFamilies(&twice, fams2); err != nil {
			t.Fatal(err)
		}
		if once.String() != twice.String() {
			t.Errorf("format not idempotent:\n--- once ---\n%s--- twice ---\n%s", once.String(), twice.String())
		}
	})
}
