package mapomatic_test

import (
	"math"
	"testing"

	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/mapomatic"
	"qrio/internal/quantum/circuit"
)

func uniform(t *testing.T, name string, g *graph.Graph, e2 float64) *device.Backend {
	t.Helper()
	b, err := device.UniformBackend(name, g, e2, 0.01, 0.02, 100e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDeflate(t *testing.T) {
	c := circuit.New(10)
	c.H(7)
	c.CX(7, 2)
	d, active, err := mapomatic.Deflate(c)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumQubits != 2 {
		t.Fatalf("deflated to %d qubits, want 2", d.NumQubits)
	}
	if len(active) != 2 || active[0] != 2 || active[1] != 7 {
		t.Fatalf("active = %v, want [2 7]", active)
	}
	// h was on 7 -> compact index 1.
	if d.Gates[0].Qubits[0] != 1 {
		t.Fatalf("h remapped to %d, want 1", d.Gates[0].Qubits[0])
	}
}

func TestLayoutCostPrefersLowErrorEdges(t *testing.T) {
	g := graph.Line(3)
	b := uniform(t, "l", g, 0.1)
	// Make edge (0,1) much better than (1,2).
	b.TwoQubitErr[[2]int{0, 1}] = 0.01
	b.TwoQubitErr[[2]int{1, 2}] = 0.5

	c := circuit.New(2)
	c.CX(0, 1)
	s, err := mapomatic.BestLayout(c, b, mapomatic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Routed {
		t.Fatal("2q circuit on a line should embed perfectly")
	}
	got := [2]int{s.Layout[0], s.Layout[1]}
	if !(got == [2]int{0, 1} || got == [2]int{1, 0}) {
		t.Fatalf("layout = %v, want the low-error edge (0,1)", s.Layout)
	}
	want := -math.Log(1-0.01) - 2*math.Log(1-0.01) // one cx + no measures; plus 0 readout
	_ = want
}

func TestCostValue(t *testing.T) {
	g := graph.Line(2)
	b := uniform(t, "c", g, 0.2)
	c := circuit.New(2)
	c.CX(0, 1)
	c.MeasureAll()
	s, err := mapomatic.BestLayout(c, b, mapomatic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := -math.Log(1-0.2) - 2*math.Log(1-0.02)
	if math.Abs(s.Cost-want) > 1e-9 {
		t.Fatalf("cost = %v, want %v (-ln(1-e2) - 2·ln(1-ro))", s.Cost, want)
	}
}

func TestU1IsFree(t *testing.T) {
	g := graph.Line(2)
	b := uniform(t, "f", g, 0.2)
	c1 := circuit.New(1)
	c1.U1(0, 1.0)
	s, err := mapomatic.BestLayout(c1, b, mapomatic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 0 {
		t.Fatalf("u1 charged cost %v, want 0 (virtual Z)", s.Cost)
	}
}

func TestRoutedFallbackForDensePattern(t *testing.T) {
	// K4 cannot embed in a line: must route and cost extra cx.
	full := mapomatic.TopologyCircuit(graph.Full(4))
	line := uniform(t, "line", graph.Line(6), 0.1)
	s, err := mapomatic.BestLayout(full, line, mapomatic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Routed {
		t.Fatal("K4 on a line must use the routed fallback")
	}
	if s.ExtraCX == 0 {
		t.Fatal("routing reported zero extra cx")
	}
	// A perfect host scores strictly lower.
	fullDev := uniform(t, "full", graph.Full(4), 0.1)
	s2, err := mapomatic.BestLayout(full, fullDev, mapomatic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Routed {
		t.Fatal("K4 on K4 should embed perfectly")
	}
	if s2.Cost >= s.Cost {
		t.Fatalf("perfect embedding cost %v >= routed cost %v", s2.Cost, s.Cost)
	}
}

func TestDisableRoutedFallback(t *testing.T) {
	full := mapomatic.TopologyCircuit(graph.Full(4))
	line := uniform(t, "line", graph.Line(6), 0.1)
	if _, err := mapomatic.BestLayout(full, line, mapomatic.Options{DisableRoutedFallback: true}); err == nil {
		t.Fatal("expected failure with fallback disabled")
	}
}

func TestRankBackendsOrdering(t *testing.T) {
	ring := mapomatic.TopologyCircuit(graph.Ring(4))
	good := uniform(t, "good", graph.Ring(8), 0.05)
	bad := uniform(t, "bad", graph.Ring(8), 0.5)
	tiny := uniform(t, "tiny", graph.Ring(3), 0.01) // too small, filtered out
	scores := mapomatic.RankBackends(ring, []*device.Backend{bad, good, tiny}, mapomatic.Options{})
	if len(scores) != 2 {
		t.Fatalf("got %d scores, want 2 (tiny filtered)", len(scores))
	}
	if scores[0].Backend != "good" || scores[1].Backend != "bad" {
		t.Fatalf("ranking wrong: %v", scores)
	}
	if scores[0].Cost >= scores[1].Cost {
		t.Fatal("scores not sorted ascending")
	}
}

func TestTopologyCircuit(t *testing.T) {
	g := graph.Ring(5)
	c := mapomatic.TopologyCircuit(g)
	if c.NumQubits != 5 {
		t.Fatalf("topology circuit has %d qubits", c.NumQubits)
	}
	if c.TwoQubitGateCount() != 5 {
		t.Fatalf("topology circuit has %d cx, want 5", c.TwoQubitGateCount())
	}
	// Interaction graph must equal the input graph.
	ig := graph.New(5)
	for e := range c.InteractionGraph() {
		ig.MustAddEdge(e.A, e.B)
	}
	if !ig.Equal(g) {
		t.Fatal("interaction graph differs from requested topology")
	}
}

func TestBestLayoutPicksBestSubgraphWithinDevice(t *testing.T) {
	// Device: two disjoint-ish triangles connected by a bridge; one
	// triangle has low-error edges. A triangle request must land there.
	g := graph.New(7)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 4}} {
		g.MustAddEdge(e[0], e[1])
	}
	b := uniform(t, "tri", g, 0.4)
	for _, e := range [][2]int{{4, 5}, {5, 6}, {4, 6}} {
		b.TwoQubitErr[[2]int{e[0], e[1]}] = 0.02
	}
	tri := mapomatic.TopologyCircuit(graph.Ring(3)) // triangle
	s, err := mapomatic.BestLayout(tri, b, mapomatic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Routed {
		t.Fatal("triangle should embed")
	}
	for _, p := range s.Layout {
		if p != 4 && p != 5 && p != 6 {
			t.Fatalf("layout %v not on the low-error triangle", s.Layout)
		}
	}
}

func TestOversizedCircuitErrors(t *testing.T) {
	c := mapomatic.TopologyCircuit(graph.Ring(10))
	b := uniform(t, "small", graph.Ring(4), 0.1)
	if _, err := mapomatic.BestLayout(c, b, mapomatic.Options{}); err == nil {
		t.Fatal("oversized circuit accepted")
	}
}
