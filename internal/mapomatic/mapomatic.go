// Package mapomatic reimplements the Mapomatic scoring approach the paper
// leans on for topology-requirement resource allocation (§3.4.2, [21]):
// identify device subgraphs isomorphic to the circuit's interaction graph
// (VF2 subgraph monomorphism) and score each with an error-aware cost
// function; the lowest-cost subgraph (and, across devices, the lowest-cost
// device) wins.
//
// Cost units: negative-log success probability, cost = Σ −ln(1−e_i) over
// executed gates and readouts. This is monotone in Mapomatic's
// 1−Π(1−e_i) and stays informative at the paper's very high error rates
// (see DESIGN.md §1). Lower is better. When no perfect embedding exists the
// circuit is routed first and the inserted swaps are charged at their real
// gate cost — exactly how a dense topology request punishes a sparse device.
package mapomatic

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"

	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/quantum/circuit"
	"qrio/internal/transpile"
)

// Options bounds the layout search.
type Options struct {
	// MaxLayouts caps the number of VF2 embeddings scored (0 = 256).
	MaxLayouts int
	// VF2MaxVisits caps the VF2 search tree (0 = package default).
	VF2MaxVisits int
	// Transpile configures the routed fallback.
	Transpile transpile.Options
	// DisableRoutedFallback makes BestLayout fail when no perfect
	// embedding exists (ablation).
	DisableRoutedFallback bool
}

func (o Options) maxLayouts() int {
	if o.MaxLayouts <= 0 {
		return 256
	}
	return o.MaxLayouts
}

// Fingerprint digests everything that determines a BestLayout result
// except the backend: the topology-circuit source and the search bounds.
// Equal fingerprints against the same backend calibration yield identical
// costs, enabling Meta-Server memoisation of the subgraph search.
func (o Options) Fingerprint(qasmSrc string) string {
	h := sha256.New()
	fmt.Fprintf(h, "layout|max=%d|visits=%d|tr=%+v|nofallback=%t|",
		o.MaxLayouts, o.VF2MaxVisits, o.Transpile, o.DisableRoutedFallback)
	io.WriteString(h, qasmSrc)
	return hex.EncodeToString(h.Sum(nil))
}

// Score is the result of evaluating one circuit against one backend.
type Score struct {
	Backend string
	// Cost is the negative-log success probability; lower is better.
	Cost float64
	// Layout maps the deflated circuit's logical qubits to physical qubits
	// (perfect embeddings only; routed fallbacks report the initial layout).
	Layout []int
	// Routed is true when no perfect embedding existed and the circuit was
	// routed with swap insertion instead.
	Routed bool
	// ExtraCX counts cx gates added by routing.
	ExtraCX int
}

// Deflate reduces a circuit to its active qubits. It returns the compacted
// circuit and actives, where actives[i] is the original index of compact
// qubit i. Classical bits are preserved as-is.
func Deflate(c *circuit.Circuit) (*circuit.Circuit, []int, error) {
	active := c.ActiveQubits()
	remap := make(map[int]int, len(active))
	for i, q := range active {
		remap[q] = i
	}
	out, err := c.RemapQubits(remap, len(active))
	if err != nil {
		return nil, nil, err
	}
	out.NumClbits = c.NumClbits
	return out, active, nil
}

const maxErrClamp = 0.999999

// gateCost converts an error probability to its negative-log contribution.
func gateCost(e float64) float64 {
	if e <= 0 {
		return 0
	}
	if e > maxErrClamp {
		e = maxErrClamp
	}
	return -math.Log(1 - e)
}

// LayoutCost scores a (deflated) circuit placed on a backend with the given
// logical→physical layout, without routing: every two-qubit gate must land
// on a coupling edge, else the cost is +Inf. u1 gates are free (virtual Z),
// matching Qiskit's convention.
func LayoutCost(c *circuit.Circuit, layout []int, b *device.Backend) float64 {
	cost := 0.0
	for _, g := range c.Gates {
		switch g.Name {
		case circuit.GateBarrier, circuit.GateID, circuit.GateU1:
			continue
		case circuit.GateMeasure:
			cost += gateCost(b.ReadoutErr[layout[g.Qubits[0]]])
			continue
		case circuit.GateReset:
			continue
		}
		switch len(g.Qubits) {
		case 1:
			cost += gateCost(b.OneQubitErr[layout[g.Qubits[0]]])
		case 2:
			e, ok := b.EdgeError(layout[g.Qubits[0]], layout[g.Qubits[1]])
			if !ok {
				return math.Inf(1)
			}
			cost += gateCost(e)
		default:
			// 3+ qubit gates cannot be placed directly.
			return math.Inf(1)
		}
	}
	return cost
}

// PhysicalCost scores an already-transpiled circuit (acting on physical
// qubits) against the backend calibration.
func PhysicalCost(pc *circuit.Circuit, b *device.Backend) float64 {
	identity := make([]int, b.NumQubits)
	for i := range identity {
		identity[i] = i
	}
	return LayoutCost(pc, identity, b)
}

// BestLayout finds the lowest-cost placement of c on backend b. It prefers
// perfect VF2 embeddings of the interaction graph; if none exists it
// transpiles (routing with swap insertion) and scores the routed circuit.
func BestLayout(c *circuit.Circuit, b *device.Backend, opts Options) (Score, error) {
	deflated, _, err := Deflate(c)
	if err != nil {
		return Score{}, err
	}
	flat := deflated.Decompose()
	if flat.NumQubits > b.NumQubits {
		return Score{}, fmt.Errorf(
			"mapomatic: circuit uses %d qubits, device %s has %d",
			flat.NumQubits, b.Name, b.NumQubits)
	}

	ig := graph.New(flat.NumQubits)
	for e := range flat.InteractionGraph() {
		ig.MustAddEdge(e.A, e.B)
	}
	layouts := graph.EnumerateMonomorphisms(ig, b.Coupling, graph.MonomorphismOptions{
		MaxResults: opts.maxLayouts(),
		MaxVisits:  opts.VF2MaxVisits,
	})
	if len(layouts) > 0 {
		best := Score{Backend: b.Name, Cost: math.Inf(1)}
		for _, layout := range layouts {
			if cost := LayoutCost(flat, layout, b); cost < best.Cost {
				best.Cost = cost
				best.Layout = layout
			}
		}
		if !math.IsInf(best.Cost, 1) {
			return best, nil
		}
	}
	if opts.DisableRoutedFallback {
		return Score{}, fmt.Errorf("mapomatic: no perfect embedding of %q on %s", c.Name, b.Name)
	}
	tr, err := transpile.Transpile(flat, b, opts.Transpile)
	if err != nil {
		return Score{}, fmt.Errorf("mapomatic: routed fallback failed on %s: %w", b.Name, err)
	}
	return Score{
		Backend: b.Name,
		Cost:    PhysicalCost(tr.Circuit, b),
		Layout:  tr.InitialLayout,
		Routed:  true,
		ExtraCX: 3 * tr.AddedSwaps,
	}, nil
}

// RankBackends scores the circuit on every backend and returns the feasible
// scores sorted ascending by cost (the scheduler picks the first). Devices
// that cannot host the circuit are omitted.
func RankBackends(c *circuit.Circuit, backends []*device.Backend, opts Options) []Score {
	scores := make([]Score, 0, len(backends))
	for _, b := range backends {
		s, err := BestLayout(c, b, opts)
		if err != nil || math.IsInf(s.Cost, 1) {
			continue
		}
		scores = append(scores, s)
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Cost != scores[j].Cost {
			return scores[i].Cost < scores[j].Cost
		}
		return scores[i].Backend < scores[j].Backend
	})
	return scores
}

// TopologyCircuit converts a user topology request into the paper's
// "pseudo quantum circuit" (§3.2): one CNOT per requested edge over the
// requested number of qubits.
func TopologyCircuit(g *graph.Graph) *circuit.Circuit {
	c := circuit.New(g.NumVertices())
	c.Name = "topology"
	for _, e := range g.Edges() {
		c.CX(e[0], e[1])
	}
	return c
}
