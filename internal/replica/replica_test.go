// End-to-end tests of the out-of-process scheduler replica: watch-fed
// cache, partitioned passes, version-conditional binds, shard takeover,
// and — via a re-exec harness — a genuinely separate OS process driving
// the full job lifecycle through the public gateway.
package replica_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"testing"
	"time"

	"qrio/client"
	"qrio/internal/cluster/api"
	"qrio/internal/core"
	"qrio/internal/device"
	"qrio/internal/gateway"
	"qrio/internal/graph"
	"qrio/internal/quantum/qasm"
	"qrio/internal/replica"
	"qrio/internal/sched"
	"qrio/internal/workload"
)

// deploy stands up a gateway-only QRIO (scheduler off — binding belongs
// to the replicas under test) over a two-node fleet with slots slots per
// node, and returns its public URL plus a connected client.
func deploy(t *testing.T, slots int) (string, *client.Client) {
	t.Helper()
	var fleet []*device.Backend
	for _, name := range []string{"east", "west"} {
		b, err := device.UniformBackend(name, graph.Ring(12), 0.03, 0.005, 0.01, 500e3, 500e3)
		if err != nil {
			t.Fatal(err)
		}
		// Container slots are additionally capped by node CPU (1 core per
		// slot) — give each node enough cores to honour the requested count.
		b.CPUMillis = int64(slots) * 1000
		fleet = append(fleet, b)
	}
	q, err := core.New(core.Config{
		Backends:         fleet,
		DisableScheduler: true,
		NodeConcurrency:  slots,
	})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	t.Cleanup(q.Stop)
	srv := httptest.NewServer(gateway.New(q).Handler())
	t.Cleanup(srv.Close)
	return srv.URL, client.New(srv.URL)
}

func ghzReq(name string) client.SubmitRequest {
	src, _ := qasm.Dump(workload.GHZ(5))
	return client.SubmitRequest{
		JobName: name, QASM: src, Shots: 64,
		Strategy: api.StrategyFidelity, TargetFidelity: 1.0,
	}
}

// startReplica runs rep until the test ends.
func startReplica(t *testing.T, rep *replica.Replica) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	done := make(chan error, 1)
	go func() { done <- rep.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("replica run: %v", err)
		}
	})
}

// waitAll blocks until every named job reaches a terminal phase and
// asserts each one Succeeded.
func waitAll(t *testing.T, c *client.Client, names []string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, name := range names {
		job, err := c.Wait(ctx, name)
		if err != nil {
			t.Fatalf("waiting for %s: %v", name, err)
		}
		if job.Status.Phase != api.JobSucceeded {
			t.Fatalf("%s finished %s (%s)", name, job.Status.Phase, job.Status.Message)
		}
	}
}

// waitBinds polls the replicas' aggregate bind counter until it reaches
// want — jobs can finish (and waitAll return) a beat before the winning
// Bind call returns to its replica and increments the counter. Overshoot
// is an immediate failure: it means a double bind.
func waitBinds(t *testing.T, want uint64, reps ...*replica.Replica) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var sum uint64
		for _, rep := range reps {
			sum += rep.Stats().Binds
		}
		if sum > want {
			t.Fatalf("aggregate binds = %d, want %d — a double bind slipped through", sum, want)
		}
		if sum == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("aggregate binds = %d, want %d — a successful bind went uncounted", sum, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func submitN(t *testing.T, c *client.Client, n int) []string {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("rep-%d", i)
		if _, err := c.Submit(context.Background(), ghzReq(names[i])); err != nil {
			t.Fatal(err)
		}
	}
	return names
}

// TestReplicaDrivesLifecycle: with the in-process scheduler off, a single
// out-of-process replica — watch cache, batch scoring, remote binds — is
// the only thing placing jobs, and every job still runs to completion.
func TestReplicaDrivesLifecycle(t *testing.T) {
	url, c := deploy(t, 4)
	rep := &replica.Replica{Client: client.New(url), Interval: 10 * time.Millisecond}
	startReplica(t, rep)

	names := submitN(t, c, 8)
	waitAll(t, c, names)
	waitBinds(t, 8, rep)

	if s := rep.Stats(); s.Conflicts != 0 {
		t.Fatalf("lone replica observed %d conflicts, want 0", s.Conflicts)
	}
}

// TestReplicasPartitionSplit: two sharded replicas split the queue
// hash(job) mod 2 — together they drain it, and the shard discipline
// means neither ever contends (zero conflicts) while every job is bound
// exactly once (binds sum to the job count).
func TestReplicasPartitionSplit(t *testing.T) {
	// Slots sized so even the worst-case placement (every job on one node)
	// fits: with capacity off the table, any conflict would be a real
	// cross-shard version race — which the partition must make impossible.
	url, c := deploy(t, 16)
	reps := make([]*replica.Replica, 2)
	for i := range reps {
		part, err := sched.NewPartition(2, i)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = &replica.Replica{
			Client:    client.New(url),
			Partition: part,
			Interval:  10 * time.Millisecond,
		}
		startReplica(t, reps[i])
	}

	names := submitN(t, c, 16)
	waitAll(t, c, names)
	waitBinds(t, 16, reps...)

	for i, rep := range reps {
		s := rep.Stats()
		if s.Binds == 0 {
			t.Errorf("replica %d bound nothing — partition not splitting", i)
		}
		if s.Conflicts != 0 {
			t.Errorf("sharded replica %d conflicted %d times, want 0", i, s.Conflicts)
		}
	}
}

// TestReplicasRaceUnpartitioned: two replicas with no shard discipline
// race the whole queue. Optimistic concurrency must keep binds
// exactly-once — the losers surface as counted conflicts, never as
// double placements.
func TestReplicasRaceUnpartitioned(t *testing.T) {
	url, c := deploy(t, 4)
	reps := make([]*replica.Replica, 2)
	for i := range reps {
		reps[i] = &replica.Replica{Client: client.New(url), Interval: 5 * time.Millisecond}
		startReplica(t, reps[i])
	}

	names := submitN(t, c, 16)
	waitAll(t, c, names)
	waitBinds(t, 16, reps...)
}

// TestReplicaTakeover: shard 1's replica never starts. Its jobs sit
// pending until the surviving replica assumes the lost shard — the
// manual takeover path a deployment runs on replica loss.
func TestReplicaTakeover(t *testing.T) {
	url, c := deploy(t, 4)
	part, err := sched.NewPartition(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := &replica.Replica{Client: client.New(url), Partition: part, Interval: 10 * time.Millisecond}
	startReplica(t, rep)

	names := submitN(t, c, 12)

	// Shard 1's jobs must stay pending while unowned.
	var orphan string
	for _, name := range names {
		if part.Shard(name) == 1 {
			orphan = name
			break
		}
	}
	if orphan == "" {
		t.Fatal("no job hashed to shard 1; enlarge the submission batch")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		job, err := c.Get(context.Background(), orphan)
		if err != nil {
			t.Fatal(err)
		}
		if job.Status.Phase != api.JobPending {
			t.Fatalf("unowned job %s reached %s before takeover", orphan, job.Status.Phase)
		}
		time.Sleep(100 * time.Millisecond)
	}

	rep.Assume(1)
	waitAll(t, c, names)
	waitBinds(t, 12, rep)
}

// TestOutOfProcessScheduler re-execs the test binary as a genuinely
// separate qrio-sched-style process: the child builds a Replica against
// this process's gateway URL (passed by env) and schedules over the
// network while the parent submits and waits. This is the ISSUE's
// acceptance bar — an out-of-process replica driving the full lifecycle
// through the gateway alone.
func TestOutOfProcessScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	url, c := deploy(t, 4)

	cmd := exec.Command(os.Args[0], "-test.run", "^TestSchedulerChildProcess$", "-test.v")
	cmd.Env = append(os.Environ(), "QRIO_REPLICA_GATEWAY="+url)
	out, err := os.CreateTemp(t.TempDir(), "child-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		if t.Failed() {
			raw, _ := os.ReadFile(out.Name())
			t.Logf("child output:\n%s", raw)
		}
	}()

	names := submitN(t, c, 8)
	waitAll(t, c, names)

	// Sanity: nothing in this process could have bound them.
	for _, name := range names {
		job, err := c.Get(context.Background(), name)
		if err != nil {
			t.Fatal(err)
		}
		if job.Status.Node == "" {
			t.Fatalf("%s succeeded without a node?", name)
		}
	}
}

// TestSchedulerChildProcess is the re-exec child of
// TestOutOfProcessScheduler: not a test when run in the normal suite.
func TestSchedulerChildProcess(t *testing.T) {
	url := os.Getenv("QRIO_REPLICA_GATEWAY")
	if url == "" {
		t.Skip("re-exec child only")
	}
	rep := &replica.Replica{Client: client.New(url), Interval: 10 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := rep.Run(ctx); err != nil {
		t.Fatalf("child replica: %v", err)
	}
}
