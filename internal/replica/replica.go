// Package replica implements an out-of-process scheduler replica: a
// stateless scheduling loop that talks to a QRIO deployment exclusively
// through the public /v1 gateway. Its fleet and queue views are watch-fed
// (GET /v1/watch, resume-token reconnects), ranking goes through the Meta
// Server's batch scoring surface, and every placement is a
// version-conditional POST /v1/bind — so N replicas race safely over one
// pending queue: exactly one wins each job, the rest observe a counted
// conflict and move on. Shard partitioning (sched.Partition, hash(job)
// mod N) keeps the replicas off each other's jobs in the steady state;
// Assume() takes over a lost peer's shard.
//
// This is the Qunicorn-style decoupling the paper's Kubernetes lineage
// implies: the scheduler is just another API client, so scheduling
// capacity scales by starting processes (cmd/qrio-sched) instead of
// growing one.
package replica

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qrio/client"
	"qrio/internal/cluster/api"
	"qrio/internal/meta"
	"qrio/internal/sched"
)

// BatchScorer ranks one job against many backends in a single call. Both
// the gateway client (client.Client, over GET /v1/score/batch) and the
// Meta Server's direct HTTP client (meta.Client) satisfy it.
type BatchScorer interface {
	ScoreBatch(ctx context.Context, jobName string, backendNames []string) ([]meta.BatchResult, error)
}

// Stats are a replica's monotonic counters, readable while it runs.
type Stats struct {
	// Passes counts non-empty scheduling passes.
	Passes uint64
	// Binds counts jobs this replica placed.
	Binds uint64
	// Conflicts counts optimistic binds lost to another replica (or a
	// racing cancel) — the cross-replica contention signal.
	Conflicts uint64
	// Errors counts bind/score attempts that failed for any other reason.
	Errors uint64
}

// Replica is one out-of-process scheduler instance.
type Replica struct {
	// Client is the gateway connection (required).
	Client *client.Client
	// Scorer ranks candidate nodes (default: Client's batch scoring
	// route; a direct meta.Client works too).
	Scorer BatchScorer
	// Partition is this replica's share of the pending queue (nil = own
	// everything, the single-replica default).
	Partition *sched.Partition
	// Interval is the pass cadence (default 50ms — remote binds are
	// network round trips, so the loop is coarser than the in-process
	// scheduler's 10ms).
	Interval time.Duration
	// Concurrency caps binds per pass (default 16).
	Concurrency int

	mu    sync.Mutex
	jobs  map[string]watched[api.QuantumJob]
	nodes map[string]watched[api.Node]
	ready atomic.Bool // first SYNC snapshot consumed

	passes, binds, conflicts, errors atomic.Uint64
}

// watched is one cached object plus the resource version it was last
// observed at — the version the replica's binds are conditioned on.
type watched[T any] struct {
	obj     T
	version int64
}

// Stats snapshots the replica's counters.
func (r *Replica) Stats() Stats {
	return Stats{
		Passes:    r.passes.Load(),
		Binds:     r.binds.Load(),
		Conflicts: r.conflicts.Load(),
		Errors:    r.errors.Load(),
	}
}

// Ready reports whether the watch feed has delivered its initial
// snapshot (the replica schedules nothing before that).
func (r *Replica) Ready() bool { return r.ready.Load() }

// Assume takes over a lost peer's shard: the next pass drains its jobs
// too. No-op without a partition.
func (r *Replica) Assume(index int) {
	if r.Partition != nil {
		r.Partition.Assume(index)
	}
}

// Run drives the replica until the context ends: one goroutine consumes
// the self-healing watch stream into the local cache, the loop fires a
// scheduling pass every Interval. Returns the watch setup error, or nil
// on context end.
func (r *Replica) Run(ctx context.Context) error {
	if r.Client == nil {
		return fmt.Errorf("replica: no gateway client")
	}
	r.mu.Lock()
	if r.jobs == nil {
		r.jobs = make(map[string]watched[api.QuantumJob])
		r.nodes = make(map[string]watched[api.Node])
	}
	r.mu.Unlock()
	events, err := r.Client.Watch(ctx, client.WatchOptions{Reconnect: true})
	if err != nil {
		return fmt.Errorf("replica: opening watch: %w", err)
	}
	interval := r.Interval
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case ev, ok := <-events:
			if !ok {
				return nil // context ended; the healing watch closes only then
			}
			r.observe(ev)
		case <-ticker.C:
			r.Pass(ctx)
		}
	}
}

// observe folds one watch event into the cache. SYNC and live events are
// handled identically (level-triggered): latest version wins.
func (r *Replica) observe(ev client.WatchEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case ev.Job != nil:
		if ev.Type == client.EventDeleted {
			delete(r.jobs, ev.Job.Name)
		} else {
			r.jobs[ev.Job.Name] = watched[api.QuantumJob]{*ev.Job, ev.Version}
		}
	case ev.Node != nil:
		if ev.Type == client.EventDeleted {
			delete(r.nodes, ev.Node.Name)
		} else {
			r.nodes[ev.Node.Name] = watched[api.Node]{*ev.Node, ev.Version}
		}
	}
	r.ready.Store(true)
}

// markBound evicts a just-bound job from the cache so the next pass
// (which may fire before the Scheduled watch event lands) doesn't re-bind
// it against itself. Conditional on the bound version: if the cache
// already moved past what we bound at, the newer observation wins.
func (r *Replica) markBound(name string, version int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.jobs[name]; ok && w.version == version {
		delete(r.jobs, name)
	}
}

// pendingJob is one bind candidate from the cached queue view.
type pendingJob struct {
	job     api.QuantumJob
	version int64
}

// headroom is the pass-local free capacity of one cached node.
type headroom struct {
	slots    int
	cpu, mem int64
}

// snapshot extracts this replica's pending jobs (FIFO: CreatedAt, then
// name) and the ready fleet's headroom from the cache.
func (r *Replica) snapshot() ([]pendingJob, []string, map[string]*headroom) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var pending []pendingJob
	for name, w := range r.jobs {
		if w.obj.Status.Phase != api.JobPending || !r.Partition.Owns(name) {
			continue
		}
		pending = append(pending, pendingJob{w.obj, w.version})
	}
	sort.Slice(pending, func(i, j int) bool {
		if !pending[i].job.CreatedAt.Equal(pending[j].job.CreatedAt) {
			return pending[i].job.CreatedAt.Before(pending[j].job.CreatedAt)
		}
		return pending[i].job.Name < pending[j].job.Name
	})
	var names []string
	free := make(map[string]*headroom)
	for name, w := range r.nodes {
		n := w.obj
		if n.Status.Phase != api.NodeReady {
			continue
		}
		names = append(names, name)
		free[name] = &headroom{
			slots: n.ContainerSlots() - len(n.Status.RunningJobs),
			cpu:   n.Spec.CPUMillis - n.Status.CPUMillisInUse,
			mem:   n.Spec.MemoryMB - n.Status.MemoryMBInUse,
		}
	}
	sort.Strings(names)
	return pending, names, free
}

// Pass runs one scheduling pass over the cached views and returns how
// many jobs it bound. Exported so harnesses (and tests) can drive the
// replica without the Run loop.
func (r *Replica) Pass(ctx context.Context) int {
	if !r.ready.Load() {
		return 0
	}
	limit := r.Concurrency
	if limit <= 0 {
		limit = 16
	}
	pending, names, free := r.snapshot()
	if len(pending) == 0 || len(names) == 0 {
		return 0
	}
	r.passes.Add(1)
	scorer := r.Scorer
	if scorer == nil {
		scorer = r.Client
	}
	bound := 0
	for _, p := range pending {
		if bound >= limit || ctx.Err() != nil {
			break
		}
		// Candidates with headroom, by the cached view; the server-side
		// bind remains the authoritative capacity check.
		var cands []string
		for _, name := range names {
			h := free[name]
			if h.slots <= 0 || h.cpu < p.job.Spec.Resources.CPUMillis || h.mem < p.job.Spec.Resources.MemoryMB {
				continue
			}
			cands = append(cands, name)
		}
		if len(cands) == 0 {
			break // headroom only shrinks within a pass
		}
		results, err := scorer.ScoreBatch(ctx, p.job.Name, cands)
		if err != nil {
			r.errors.Add(1)
			continue
		}
		sort.SliceStable(results, func(i, j int) bool { return results[i].Score > results[j].Score })
		placed := false
		for _, cand := range results {
			if cand.Error != "" {
				continue
			}
			_, err := r.Client.Bind(ctx, p.job.Name, cand.Backend, cand.Score, p.version)
			if err == nil {
				r.binds.Add(1)
				r.markBound(p.job.Name, p.version)
				h := free[cand.Backend]
				h.slots--
				h.cpu -= p.job.Spec.Resources.CPUMillis
				h.mem -= p.job.Spec.Resources.MemoryMB
				placed = true
				bound++
				break
			}
			if client.IsConflict(err) {
				// Version conflict: another replica won the job — drop it
				// for this pass (the watch feed will deliver its new state).
				// A capacity conflict on the node surfaces the same way; in
				// both cases this candidate is spent, and for a job-version
				// loss every other candidate is too. Distinguish cheaply:
				// refresh nothing, just stop after the first conflict.
				r.conflicts.Add(1)
				placed = true
				break
			}
			r.errors.Add(1)
		}
		_ = placed
	}
	return bound
}
