package sim

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Metrics accumulates raw observations during a run. Everything here is
// derived from virtual time and seeded randomness only, so a report is a
// pure function of (config, seed).
type Metrics struct {
	submitted int
	rejected  int
	binds     int

	latencies []time.Duration // first submit→bind latency per job
	tenants   map[string]*TenantStats
	samples   []Sample
}

func newMetrics() *Metrics {
	return &Metrics{tenants: map[string]*TenantStats{}}
}

func (m *Metrics) tenant(name string) *TenantStats {
	t := m.tenants[name]
	if t == nil {
		t = &TenantStats{}
		m.tenants[name] = t
	}
	return t
}

func (m *Metrics) bind(tenant string, latency time.Duration) {
	m.latencies = append(m.latencies, latency)
	t := m.tenant(tenant)
	t.Bound++
	t.latencies = append(t.latencies, latency)
}

func (m *Metrics) finish(tenant string, ok bool) {
	t := m.tenant(tenant)
	if ok {
		t.Succeeded++
	} else {
		t.Failed++
	}
}

func (m *Metrics) sample(at time.Duration, pending, running int) {
	m.samples = append(m.samples, Sample{At: at, Pending: pending, Running: running})
}

// Sample is one point on the queue-depth timeline.
type Sample struct {
	At      time.Duration `json:"at"`
	Pending int           `json:"pending"`
	Running int           `json:"running"`
}

// TenantStats is one tenant's slice of the run.
type TenantStats struct {
	Bound     int           `json:"bound"`
	Succeeded int           `json:"succeeded"`
	Failed    int           `json:"failed"`
	P50       time.Duration `json:"p50"`
	P99       time.Duration `json:"p99"`

	latencies []time.Duration
}

// LatencyStats summarises a latency population.
type LatencyStats struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"p50"`
	P90   time.Duration `json:"p90"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

// Report is the deterministic outcome of one simulation run. It contains
// no wall-clock figures — wall time is an observation about the host, not
// the scenario, and would break byte-identical artifacts.
type Report struct {
	Submitted int `json:"submitted"`
	Rejected  int `json:"rejected"`
	// Binds counts every bind the scheduler performed, retries included.
	Binds int `json:"binds"`

	// SimulatedTime is how far virtual time ran (horizon + drain).
	SimulatedTime time.Duration `json:"simulatedTime"`
	// BoundPerSecond is first-bind throughput over the arrival horizon.
	BoundPerSecond float64 `json:"boundPerSecond"`

	Latency LatencyStats `json:"latency"`

	Tenants     map[string]*TenantStats `json:"tenants"`
	TenantOrder []string                `json:"-"`

	Timeline []Sample `json:"timeline"`

	// Drained is true when every offered job reached a final terminal
	// phase before the drain grace expired.
	Drained  bool `json:"drained"`
	Leftover int  `json:"leftover"`

	TerminalResident int `json:"terminalResident"`
	Archived         int `json:"archived"`
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func summarize(lat []time.Duration) LatencyStats {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	s := LatencyStats{Count: len(lat)}
	if len(lat) == 0 {
		return s
	}
	s.P50 = percentile(lat, 0.50)
	s.P90 = percentile(lat, 0.90)
	s.P99 = percentile(lat, 0.99)
	s.Max = lat[len(lat)-1]
	return s
}

func (m *Metrics) report(simulated, horizon time.Duration) *Report {
	r := &Report{
		Submitted:     m.submitted,
		Rejected:      m.rejected,
		Binds:         m.binds,
		SimulatedTime: simulated,
		Latency:       summarize(m.latencies),
		Tenants:       m.tenants,
		Timeline:      m.samples,
	}
	if horizon > 0 {
		r.BoundPerSecond = float64(r.Latency.Count) / horizon.Seconds()
	}
	for _, t := range m.tenants {
		sort.Slice(t.latencies, func(i, j int) bool { return t.latencies[i] < t.latencies[j] })
		t.P50 = percentile(t.latencies, 0.50)
		t.P99 = percentile(t.latencies, 0.99)
		t.latencies = nil
	}
	return r
}

// WriteSummaryMarkdown renders the report as a markdown fragment with a
// stable field order — the golden-file / byte-identity artifact format.
func (r *Report) WriteSummaryMarkdown(w io.Writer, title string) error {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("## %s\n\n", title)
	p("| metric | value |\n|---|---|\n")
	p("| jobs submitted | %d |\n", r.Submitted)
	p("| jobs rejected | %d |\n", r.Rejected)
	p("| jobs bound (first bind) | %d |\n", r.Latency.Count)
	p("| binds incl. retries | %d |\n", r.Binds)
	p("| bound jobs/s (horizon) | %.2f |\n", r.BoundPerSecond)
	p("| submit→bind p50 | %s |\n", r.Latency.P50)
	p("| submit→bind p90 | %s |\n", r.Latency.P90)
	p("| submit→bind p99 | %s |\n", r.Latency.P99)
	p("| submit→bind max | %s |\n", r.Latency.Max)
	p("| simulated time | %s |\n", r.SimulatedTime)
	p("| drained | %t |\n", r.Drained)
	p("| leftover jobs | %d |\n", r.Leftover)
	p("| terminal resident | %d |\n", r.TerminalResident)
	p("| archived | %d |\n\n", r.Archived)
	p("| tenant | bound | succeeded | failed | share | p50 | p99 |\n|---|---|---|---|---|---|---|\n")
	total := r.Latency.Count
	for _, name := range r.TenantOrder {
		t := r.Tenants[name]
		share := 0.0
		if total > 0 {
			share = float64(t.Bound) / float64(total)
		}
		p("| %s | %d | %d | %d | %.3f | %s | %s |\n", name, t.Bound, t.Succeeded, t.Failed, share, t.P50, t.P99)
	}
	fmt.Fprintln(w)
	return nil
}

// WriteTimelineCSV renders the queue-depth timeline as CSV with virtual
// seconds in the first column.
func (r *Report) WriteTimelineCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_seconds,pending,running"); err != nil {
		return err
	}
	for _, s := range r.Timeline {
		if _, err := fmt.Fprintf(w, "%.3f,%d,%d\n", s.At.Seconds(), s.Pending, s.Running); err != nil {
			return err
		}
	}
	return nil
}
