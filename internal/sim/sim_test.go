package sim

import (
	"bytes"
	"testing"
	"time"

	"qrio/internal/simload"
)

func smallConfig(seed int64) Config {
	return Config{
		Fleet: []FleetClass{
			{Name: "small", Count: 6, Qubits: 5, Slots: 2, TwoQErr: 0.01},
			{Name: "big", Count: 2, Qubits: 12, Slots: 2, TwoQErr: 0.02},
		},
		Profile: simload.Profile{
			Seed:     seed,
			Duration: simload.Duration(20 * time.Second),
			Cohorts: []simload.Cohort{
				{
					Tenant: "alice", Rate: 8,
					Mix:     []simload.Share{{Family: "ghz", Weight: 3}, {Family: "qft", Weight: 1}},
					Service: simload.ServiceModel{Mean: simload.Duration(400 * time.Millisecond), CV: 1},
				},
				{
					Tenant: "bob", Rate: 4,
					Mix:         []simload.Share{{Family: "circ_2", Weight: 1}},
					Service:     simload.ServiceModel{Mean: simload.Duration(600 * time.Millisecond), CV: 0.5},
					FailureRate: 0.1,
				},
			},
		},
		MaxTerminalResident: 50,
	}
}

func runReport(t *testing.T, cfg Config) *Report {
	t.Helper()
	eng, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSimEndToEnd drives a 20-virtual-second mixed workload through the
// real state/scheduler/controller and checks the books balance: every
// offered job drains to a final terminal phase, first binds are counted
// once, and the retention sweep keeps the hot store bounded.
func TestSimEndToEnd(t *testing.T) {
	rep := runReport(t, smallConfig(42))
	if rep.Submitted == 0 {
		t.Fatal("no jobs submitted")
	}
	if rep.Rejected != 0 {
		t.Fatalf("%d arrivals rejected", rep.Rejected)
	}
	if !rep.Drained {
		t.Fatalf("run did not drain: %d leftover", rep.Leftover)
	}
	if rep.Latency.Count != rep.Submitted {
		t.Fatalf("first binds %d != submitted %d", rep.Latency.Count, rep.Submitted)
	}
	var done int
	for _, name := range rep.TenantOrder {
		ts := rep.Tenants[name]
		done += ts.Succeeded + ts.Failed
	}
	if done != rep.Submitted {
		t.Fatalf("terminal count %d != submitted %d", done, rep.Submitted)
	}
	// bob's 10% failure rate flows through the real controller's retry
	// loop, so binds-with-retries must exceed first binds.
	if rep.Binds <= rep.Latency.Count {
		t.Fatalf("binds %d should exceed first binds %d (retries)", rep.Binds, rep.Latency.Count)
	}
	if rep.TerminalResident > 50 {
		t.Fatalf("terminal resident %d exceeds retention cap 50", rep.TerminalResident)
	}
	if rep.Archived == 0 {
		t.Fatal("retention sweep archived nothing")
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Fatalf("implausible latency stats: %+v", rep.Latency)
	}
	if len(rep.Timeline) == 0 {
		t.Fatal("no queue-depth samples")
	}
}

// TestSimDeterminism is the reproducibility contract: same seed and
// config → byte-identical summary and timeline artifacts; a different
// seed diverges.
func TestSimDeterminism(t *testing.T) {
	render := func(seed int64) []byte {
		rep := runReport(t, smallConfig(seed))
		var buf bytes.Buffer
		if err := rep.WriteSummaryMarkdown(&buf, "determinism"); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteTimelineCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(42), render(42)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different artifacts:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if bytes.Equal(a, render(43)) {
		t.Fatal("different seed produced identical artifacts")
	}
}

// TestSimTraceReplay: replaying a recorded trace reproduces the
// generated run exactly — the record/replay path is interchangeable with
// live generation.
func TestSimTraceReplay(t *testing.T) {
	cfg := smallConfig(7)
	lib, err := simload.DefaultLibrary()
	if err != nil {
		t.Fatal(err)
	}
	stream, err := simload.NewStream(cfg.Profile, lib)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if _, err := simload.WriteTrace(&trace, stream); err != nil {
		t.Fatal(err)
	}

	live := runReport(t, cfg)
	eng, err := New(cfg, simload.TraceSource(&trace))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := live.WriteSummaryMarkdown(&a, "x"); err != nil {
		t.Fatal(err)
	}
	if err := replayed.WriteSummaryMarkdown(&b, "x"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("trace replay diverged from live generation:\n--- live ---\n%s\n--- replay ---\n%s", a.Bytes(), b.Bytes())
	}
}

// TestSimOverload: a fleet far too small for the offered load must not
// drain within the grace window, and the timeline must show the backlog
// growing — the signal capacity planning exists to surface.
func TestSimOverload(t *testing.T) {
	cfg := smallConfig(11)
	cfg.Fleet = []FleetClass{{Name: "tiny", Count: 1, Qubits: 12, Slots: 1, TwoQErr: 0.01}}
	cfg.Profile.Cohorts[0].Rate = 50
	cfg.Profile.Cohorts[0].Service = simload.ServiceModel{Mean: simload.Duration(2 * time.Second)}
	cfg.DrainGrace = simload.Duration(5 * time.Second)
	rep := runReport(t, cfg)
	if rep.Drained {
		t.Fatal("overloaded run claims to have drained")
	}
	if rep.Leftover == 0 {
		t.Fatal("overloaded run reports no leftover jobs")
	}
	first, last := rep.Timeline[0], rep.Timeline[len(rep.Timeline)-1]
	if last.Pending <= first.Pending {
		t.Fatalf("backlog did not grow under overload: first=%+v last=%+v", first, last)
	}
}

// TestRankReuseModesAgree: the simulator's three ranking modes must
// produce identical reports — reuse is an optimisation, not a behaviour
// change — for a drained run.
func TestRankReuseModesAgree(t *testing.T) {
	render := func(mode string) []byte {
		cfg := smallConfig(42)
		cfg.RankReuse = mode
		rep := runReport(t, cfg)
		var buf bytes.Buffer
		if err := rep.WriteSummaryMarkdown(&buf, "modes"); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fleet, pass, none := render("fleet"), render("pass"), render("none")
	if !bytes.Equal(fleet, pass) {
		t.Fatalf("fleet vs pass diverged:\n%s\nvs\n%s", fleet, pass)
	}
	if !bytes.Equal(fleet, none) {
		t.Fatalf("fleet vs none diverged:\n%s\nvs\n%s", fleet, none)
	}
}
