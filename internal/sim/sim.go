// Package sim is QRIO's virtual-time fleet simulator: a seeded,
// single-threaded discrete-event engine that drives the REAL cluster
// state, scheduler and controller — the same code paths production
// traffic takes — against thousands of simulated nodes and millions of
// simulated job arrivals, in seconds of wall-clock time. There are no
// goroutine kubelets and no sleeps: time is an event heap, the virtual
// clock advances only when the next event pops, and the clock seam
// (internal/clock) injects that virtual clock into every timestamp the
// cluster takes. Same seed, same config → byte-identical results.
//
// The execution model replaces kubelets with events: when the scheduler
// binds a job (observed through a Jobs store hook), the engine claims it
// to Running exactly as a kubelet would — same phase guard, same
// Attempts increment — and schedules a Finish event at now + the
// arrival's sampled service time. Finishing releases the node slot and
// lands the terminal phase; failed jobs flow through the real
// controller's retry loop, and the real retention sweep archives
// terminal jobs so the hot store stays bounded at million-job scale.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"time"

	"qrio/internal/clock"
	"qrio/internal/cluster/api"
	"qrio/internal/cluster/archive"
	"qrio/internal/cluster/controller"
	"qrio/internal/cluster/state"
	"qrio/internal/cluster/store"
	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/obs"
	"qrio/internal/sched"
	"qrio/internal/simload"
)

// Epoch is the fixed instant virtual time starts from. A constant epoch
// (not time.Now) is what makes every timestamp in a run reproducible.
var Epoch = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

// Clock is the virtual time source the engine injects through the clock
// seam. It satisfies clock.Clock; Now is safe for concurrent readers
// (the scheduler's ranking pool may read timestamps), while only the
// event loop advances it.
type Clock struct {
	mu  sync.RWMutex
	now time.Time
}

// Now implements clock.Clock.
func (c *Clock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

func (c *Clock) set(t time.Time) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

var _ clock.Clock = (*Clock)(nil)

// FleetClass describes one homogeneous slice of the simulated fleet.
type FleetClass struct {
	// Name prefixes the node names ("<name>-0017").
	Name  string `json:"name"`
	Count int    `json:"count"`
	// Qubits sizes the device (a line coupling graph; placement filters
	// only read the label-projected qubit count and error figures).
	Qubits int `json:"qubits"`
	// Slots is the node's concurrent-container capacity.
	Slots int `json:"slots"`
	// TwoQErr is the uniform two-qubit error — the static score the
	// simulator's ranking prefers lower values of.
	TwoQErr float64 `json:"twoQErr"`
}

// Config is one simulation scenario.
type Config struct {
	Fleet   []FleetClass    `json:"fleet"`
	Profile simload.Profile `json:"profile"`

	// PassEvery is the scheduler cadence in virtual time (default 10ms —
	// the live scheduler's default Interval).
	PassEvery simload.Duration `json:"passEvery,omitempty"`
	// Concurrency is the scheduler's per-pass dispatch budget (default
	// 256; the simulator always runs the batched path).
	Concurrency int `json:"concurrency,omitempty"`
	// MaxPendingPerTenant bounds the per-pass queue snapshot (default
	// 4×Concurrency; 0 keeps the default, -1 means unlimited).
	MaxPendingPerTenant int `json:"maxPendingPerTenant,omitempty"`
	// RankReuse selects the dispatch ranking mode: "fleet" (default —
	// the simulator's filters and scorer are static, so cross-pass reuse
	// is sound), "pass", or "none".
	RankReuse string `json:"rankReuse,omitempty"`
	// TenantWeights configures weighted-fair dispatch.
	TenantWeights map[string]int `json:"tenantWeights,omitempty"`

	// SweepEvery is the controller cadence in virtual time (default 1s).
	SweepEvery simload.Duration `json:"sweepEvery,omitempty"`
	// MaxRetries is the controller's failed-job retry budget (default 2).
	MaxRetries int `json:"maxRetries,omitempty"`
	// MaxTerminalResident caps terminal jobs resident in the hot store;
	// the real retention sweep archives the overflow (default 20000).
	MaxTerminalResident int `json:"maxTerminalResident,omitempty"`
	// ArchiveResident, when > 0, bounds cold-tier entries resident in
	// memory (oldest evicted; see archive.Options.MaxResident) — needed to
	// keep million-job runs inside a flat memory budget. 0 keeps every
	// archived entry, the live server's default.
	ArchiveResident int `json:"archiveResident,omitempty"`

	// SampleEvery is the queue-depth sampling cadence (default 1s).
	SampleEvery simload.Duration `json:"sampleEvery,omitempty"`
	// DrainGrace bounds how long past the arrival horizon the engine
	// keeps simulating to drain in-flight work (default 60s virtual).
	DrainGrace simload.Duration `json:"drainGrace,omitempty"`

	// Obs, when set, threads the deployment-style metrics registry through
	// the simulated scheduler and state — the same families a live server
	// exposes on /v1/metrics, fed by a virtual-time run. Programmatic only
	// (not part of the JSON scenario format).
	Obs *obs.Registry `json:"-"`
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.PassEvery <= 0 {
		out.PassEvery = simload.Duration(10 * time.Millisecond)
	}
	if out.Concurrency <= 0 {
		out.Concurrency = 256
	}
	switch {
	case out.MaxPendingPerTenant == 0:
		out.MaxPendingPerTenant = 4 * out.Concurrency
	case out.MaxPendingPerTenant < 0:
		out.MaxPendingPerTenant = 0
	}
	if out.RankReuse == "" {
		out.RankReuse = "fleet"
	}
	if out.SweepEvery <= 0 {
		out.SweepEvery = simload.Duration(time.Second)
	}
	if out.MaxRetries == 0 {
		out.MaxRetries = 2
	}
	if out.MaxTerminalResident <= 0 {
		out.MaxTerminalResident = 20000
	}
	if out.SampleEvery <= 0 {
		out.SampleEvery = simload.Duration(time.Second)
	}
	if out.DrainGrace <= 0 {
		out.DrainGrace = simload.Duration(60 * time.Second)
	}
	return out
}

// rankReuseMode maps the config string to the scheduler's mode.
func rankReuseMode(s string) (sched.RankReuseMode, error) {
	switch s {
	case "fleet":
		return sched.RankReuseFleet, nil
	case "pass":
		return sched.RankReusePass, nil
	case "none":
		return sched.RankEachJob, nil
	}
	return 0, fmt.Errorf("sim: unknown rankReuse mode %q (want fleet|pass|none)", s)
}

// labelScorer ranks nodes by their average two-qubit error label —
// prefer the most faithful device, deterministic name tie-break. It
// reads only static node identity (labels), which is what makes
// RankReuseFleet sound for the simulator.
type labelScorer struct{}

// Name implements sched.ScorePlugin.
func (labelScorer) Name() string { return "SimLabelScore" }

// Score implements sched.ScorePlugin.
func (labelScorer) Score(_ api.QuantumJob, n api.Node) (float64, error) {
	v, ok := api.ParseFloatLabel(n.Labels, api.LabelAvg2QErr)
	if !ok {
		return 0, fmt.Errorf("sim: node %s has no %s label", n.Name, api.LabelAvg2QErr)
	}
	return v, nil
}

// event is one heap entry. seq breaks virtual-time ties in scheduling
// order, so simultaneous events run deterministically.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }

// jobMeta is what the engine remembers about an in-flight job.
type jobMeta struct {
	tenant  string
	service time.Duration
	submit  time.Time
	fail    bool
	bound   bool // first bind already measured (sticky across retries)
	running bool // currently claimed on a node
}

// Engine is one simulation run. Build with New, run with Run; an engine
// is single-use.
type Engine struct {
	cfg Config
	lib simload.Library
	src simload.Source

	clk *Clock
	st  *state.Cluster
	sch *sched.Scheduler
	ctl *controller.Controller

	events eventHeap
	seq    uint64

	// bindQ collects Scheduled transitions observed by the Jobs hook.
	// The hook runs under a store shard lock, synchronously inside the
	// event loop's own store calls; the mutex satisfies the hook contract
	// without real contention.
	bindMu sync.Mutex
	bindQ  []string

	jobs      map[string]*jobMeta
	remaining int // jobs not yet finally terminal
	horizon   time.Time

	metrics *Metrics
	stopped bool
}

// New assembles an engine: fleet registered, clock seam threaded, hooks
// installed, workload stream compiled. src may be nil to generate from
// cfg.Profile; pass a simload.TraceSource to replay a recorded trace.
func New(cfg Config, src simload.Source) (*Engine, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Fleet) == 0 {
		return nil, fmt.Errorf("sim: config has no fleet")
	}
	lib, err := simload.DefaultLibrary()
	if err != nil {
		return nil, err
	}
	if src == nil {
		stream, err := simload.NewStream(cfg.Profile, lib)
		if err != nil {
			return nil, err
		}
		src = stream
	}
	mode, err := rankReuseMode(cfg.RankReuse)
	if err != nil {
		return nil, err
	}

	clk := &Clock{now: Epoch}
	st := state.New()
	st.Clock = clk
	if cfg.ArchiveResident > 0 {
		st.Archived = archive.New(archive.Options{MaxResident: cfg.ArchiveResident})
	}

	e := &Engine{
		cfg:     cfg,
		lib:     lib,
		src:     src,
		clk:     clk,
		st:      st,
		jobs:    make(map[string]*jobMeta),
		horizon: Epoch.Add(time.Duration(cfg.Profile.Duration)),
		metrics: newMetrics(),
	}
	// The bind hook must be registered before any traffic (store hook
	// contract): it may only note the name — no store calls under the
	// shard lock.
	st.Jobs.OnEvent(func(ev store.WatchEvent[api.QuantumJob]) {
		if ev.Type != store.Deleted && ev.Object.Status.Phase == api.JobScheduled {
			e.bindMu.Lock()
			e.bindQ = append(e.bindQ, ev.Object.Name)
			e.bindMu.Unlock()
		}
	})

	if err := e.buildFleet(); err != nil {
		return nil, err
	}

	// The simulator's framework chain is static by construction: label
	// filters plus a label scorer. NodeReady/ResourceFit are load
	// plugins; the dispatcher's headroom bookkeeping and BindJob's
	// authoritative capacity check cover what they filter.
	fw := sched.NewFramework(labelScorer{}, sched.QubitCount{}, sched.Characteristics{})
	e.sch = sched.New(st, fw)
	e.sch.Clock = clk
	e.sch.Concurrency = cfg.Concurrency
	e.sch.RankReuse = mode
	e.sch.MaxPendingPerTenant = cfg.MaxPendingPerTenant
	e.sch.TenantWeights = cfg.TenantWeights
	e.sch.FleetResync = time.Minute // virtual; watch events carry the cache

	e.ctl = controller.New(st)
	e.ctl.Clock = clk
	e.ctl.MaxRetries = cfg.MaxRetries
	// Simulated nodes have no heartbeats; never declare them stale, and
	// never requeue for staleness.
	e.ctl.NodeTimeout = 1000 * time.Hour
	e.ctl.StuckTimeout = 1000 * time.Hour
	e.ctl.Retention = state.RetentionPolicy{MaxTerminalCount: cfg.MaxTerminalResident}

	if cfg.Obs != nil {
		st.Metrics = state.NewMetrics(cfg.Obs)
		e.sch.Metrics = sched.NewMetrics(cfg.Obs)
	}
	return e, nil
}

// buildFleet registers every configured node through the real AddNode
// path, one shared coupling graph per qubit count.
func (e *Engine) buildFleet() error {
	graphs := map[int]*graph.Graph{}
	for _, cl := range e.cfg.Fleet {
		if cl.Count <= 0 || cl.Qubits < 2 {
			return fmt.Errorf("sim: fleet class %q needs count ≥ 1 and qubits ≥ 2", cl.Name)
		}
		g, ok := graphs[cl.Qubits]
		if !ok {
			g = graph.Line(cl.Qubits)
			graphs[cl.Qubits] = g
		}
		slots := cl.Slots
		if slots <= 0 {
			slots = 1
		}
		for i := 0; i < cl.Count; i++ {
			name := fmt.Sprintf("%s-%04d", cl.Name, i)
			b, err := device.UniformBackend(name, g, cl.TwoQErr, cl.TwoQErr/10, 0.02, 100e3, 100e3)
			if err != nil {
				return fmt.Errorf("sim: building node %s: %w", name, err)
			}
			if _, err := e.st.AddNode(b); err != nil {
				return err
			}
			if slots > 1 {
				if _, _, err := e.st.Nodes.Update(name, func(n api.Node) (api.Node, error) {
					n.Spec.MaxContainers = slots
					return n, nil
				}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (e *Engine) schedule(at time.Time, fn func()) {
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// Run executes the simulation to completion and returns its report.
func (e *Engine) Run() (*Report, error) {
	defer e.sch.Stop()
	heap.Init(&e.events)

	// Prime the recurring machinery and the first arrival.
	e.scheduleNextArrival()
	e.schedule(Epoch.Add(time.Duration(e.cfg.PassEvery)), e.passTick)
	e.schedule(Epoch.Add(time.Duration(e.cfg.SweepEvery)), e.sweepTick)
	e.schedule(Epoch, e.sampleTick)

	deadline := e.horizon.Add(time.Duration(e.cfg.DrainGrace))
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.at.After(deadline) {
			e.stopped = true
			break
		}
		e.clk.set(ev.at)
		ev.fn()
		e.processBinds()
	}
	e.clk.set(e.latestOrHorizon())
	return e.report(), nil
}

func (e *Engine) latestOrHorizon() time.Time {
	if now := e.clk.Now(); now.After(e.horizon) {
		return now
	}
	return e.horizon
}

// done reports whether all offered work has finally terminated.
func (e *Engine) done() bool { return e.remaining == 0 }

// scheduleNextArrival pulls one arrival from the stream and turns it
// into a submit event; the submit event pulls the next, keeping exactly
// one pending arrival event regardless of trace length.
func (e *Engine) scheduleNextArrival() {
	a, ok := e.src.Next()
	if !ok {
		return
	}
	at := Epoch.Add(time.Duration(a.T))
	e.schedule(at, func() {
		e.submit(a)
		e.scheduleNextArrival()
	})
}

func (e *Engine) submit(a simload.Arrival) {
	spec, err := e.lib.Spec(a)
	if err != nil {
		e.metrics.rejected++
		return
	}
	name := fmt.Sprintf("sim-%07d", e.metrics.submitted)
	job := api.QuantumJob{ObjectMeta: api.ObjectMeta{Name: name}, Spec: spec}
	if err := e.st.SubmitJob(job); err != nil {
		e.metrics.rejected++
		return
	}
	e.jobs[name] = &jobMeta{
		tenant:  spec.Tenant,
		service: time.Duration(a.Service),
		submit:  e.clk.Now(),
		fail:    a.Fail,
	}
	e.remaining++
	e.metrics.submitted++
}

// passTick runs one real scheduling pass and reschedules itself while
// arrivals or in-flight work remain.
func (e *Engine) passTick() {
	bound := e.sch.SchedulePass()
	e.metrics.binds += bound
	now := e.clk.Now()
	if now.Before(e.horizon) || !e.done() {
		e.schedule(now.Add(time.Duration(e.cfg.PassEvery)), e.passTick)
	}
}

// sweepTick runs one real controller reconcile pass (retry, retention,
// event GC) on the virtual cadence.
func (e *Engine) sweepTick() {
	e.ctl.ReconcileOnce()
	now := e.clk.Now()
	if now.Before(e.horizon) || !e.done() {
		e.schedule(now.Add(time.Duration(e.cfg.SweepEvery)), e.sweepTick)
	}
}

// sampleTick records the queue-depth timeline.
func (e *Engine) sampleTick() {
	now := e.clk.Now()
	e.metrics.sample(now.Sub(Epoch), e.st.PendingCount(), e.running())
	if now.Before(e.horizon) || !e.done() {
		e.schedule(now.Add(time.Duration(e.cfg.SampleEvery)), e.sampleTick)
	}
}

func (e *Engine) running() int {
	n := 0
	for _, m := range e.jobs {
		if m.running {
			n++
		}
	}
	return n
}

// processBinds claims every newly Scheduled job to Running — the
// kubelet's transition, minus the kubelet — and schedules its finish.
func (e *Engine) processBinds() {
	e.bindMu.Lock()
	batch := e.bindQ
	e.bindQ = nil
	e.bindMu.Unlock()
	now := e.clk.Now()
	for _, name := range batch {
		meta := e.jobs[name]
		if meta == nil {
			continue
		}
		_, _, err := e.st.Jobs.Update(name, func(j api.QuantumJob) (api.QuantumJob, error) {
			if j.Status.Phase != api.JobScheduled {
				return j, fmt.Errorf("sim: job no longer scheduled")
			}
			j.Status.Phase = api.JobRunning
			j.Status.Attempts++
			t := now
			j.Status.StartedAt = &t
			return j, nil
		})
		if err != nil {
			continue
		}
		meta.running = true
		if !meta.bound {
			meta.bound = true
			e.metrics.bind(meta.tenant, now.Sub(meta.submit))
		}
		jobName := name
		e.schedule(now.Add(meta.service), func() { e.finish(jobName) })
	}
}

// finish lands one running job's terminal phase, releasing its node —
// the kubelet's epilogue. Failed jobs stay tracked: the real controller
// requeues them until the retry budget runs out.
func (e *Engine) finish(name string) {
	meta := e.jobs[name]
	if meta == nil {
		return
	}
	now := e.clk.Now()
	node := ""
	attempts := 0
	_, _, err := e.st.Jobs.Update(name, func(j api.QuantumJob) (api.QuantumJob, error) {
		if j.Status.Phase != api.JobRunning {
			return j, fmt.Errorf("sim: job no longer running")
		}
		node = j.Status.Node
		attempts = j.Status.Attempts
		t := now
		j.Status.FinishedAt = &t
		if meta.fail {
			j.Status.Phase = api.JobFailed
			j.Status.Message = "sim: injected failure"
		} else {
			j.Status.Phase = api.JobSucceeded
			j.Status.Message = "sim: executed"
		}
		return j, nil
	})
	if err != nil {
		return // another actor finalised it (cancel path); leave to them
	}
	if node != "" {
		if rerr := e.st.ReleaseNode(node, name); rerr != nil {
			e.st.LatchReleaseFailure(node, name, rerr)
		}
	}
	meta.running = false
	if !meta.fail {
		e.metrics.finish(meta.tenant, true)
		e.remaining--
		delete(e.jobs, name)
		return
	}
	if attempts > e.cfg.MaxRetries {
		// The controller's retry rule will skip it: finally terminal.
		e.metrics.finish(meta.tenant, false)
		e.remaining--
		delete(e.jobs, name)
	}
}

// report assembles the run's metrics.
func (e *Engine) report() *Report {
	r := e.metrics.report(e.clk.Now().Sub(Epoch), time.Duration(e.cfg.Profile.Duration))
	r.Drained = e.done() && !e.stopped
	r.Leftover = e.remaining
	r.TerminalResident = e.st.TerminalCount()
	r.Archived = e.st.Archived.Len() + e.st.Archived.Dropped()
	tenants := make([]string, 0, len(r.Tenants))
	for t := range r.Tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	r.TenantOrder = tenants
	return r
}
