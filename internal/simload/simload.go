// Package simload is the open-loop workload generator behind the
// virtual-time fleet simulator (cmd/qrio-sim): it turns a declarative
// Profile — tenant cohorts with circuit-family mixes, Poisson arrivals
// modulated by multi-period diurnal harmonics and burst storms — into a
// deterministic, seeded stream of job arrivals. "Open-loop" means
// arrival times never depend on how fast the cluster drains the queue,
// so overload, fairness and latency behaviour are measured against an
// offered load the system cannot push back on (the paper's evaluation
// fixes the workload the same way, §4.3).
//
// Every random draw flows through per-cohort *rand.Rand streams seeded
// from Profile.Seed, so a profile replays byte-identically: same seed →
// the same arrivals in the same order with the same service times. For
// record/replay across processes, WriteTrace serialises a stream as
// JSONL and TraceSource plays one back.
package simload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/quantum/circuit"
	"qrio/internal/quantum/qasm"
	"qrio/internal/workload"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("250ms", "2h"), keeping experiment grids human-editable.
type Duration time.Duration

// MarshalJSON renders the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or raw nanoseconds.
func (d *Duration) UnmarshalJSON(raw []byte) error {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		v, perr := time.ParseDuration(s)
		if perr != nil {
			return fmt.Errorf("simload: bad duration %q: %w", s, perr)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(raw, &n); err != nil {
		return fmt.Errorf("simload: duration must be a string or nanoseconds: %s", raw)
	}
	*d = Duration(n)
	return nil
}

// Harmonic is one sinusoidal component of a cohort's diurnal rate
// modulation: factor(t) = 1 + Σ Amplitude·sin(2π·t/Period + Phase),
// clamped at zero. Several harmonics compose multi-period shapes (a
// daily cycle plus a weekly one, say).
type Harmonic struct {
	Period    Duration `json:"period"`
	Amplitude float64  `json:"amplitude"`
	Phase     float64  `json:"phase,omitempty"`
}

// Burst is a storm window: while active it multiplies the arrival rate
// of the matching cohorts by Factor. Overlapping bursts multiply.
type Burst struct {
	Start    Duration `json:"start"`
	Duration Duration `json:"duration"`
	Factor   float64  `json:"factor"`
	// Tenant limits the burst to one cohort; empty hits every cohort.
	Tenant string `json:"tenant,omitempty"`
}

// Share weights one circuit family inside a cohort's mix.
type Share struct {
	Family string  `json:"family"`
	Weight float64 `json:"weight"`
}

// ServiceModel samples per-job execution times: lognormal with the given
// mean and coefficient of variation (CV 0 degenerates to the constant
// mean — still useful for analytically checkable experiments).
type ServiceModel struct {
	Mean Duration `json:"mean"`
	CV   float64  `json:"cv,omitempty"`
}

// Cohort is one tenant's offered load.
type Cohort struct {
	Tenant string `json:"tenant"`
	// Rate is the base arrival rate in jobs/second (before diurnal and
	// burst modulation).
	Rate    float64    `json:"rate"`
	Mix     []Share    `json:"mix"`
	Diurnal []Harmonic `json:"diurnal,omitempty"`
	Service ServiceModel
	// FailureRate is the fraction of this cohort's jobs that fail on
	// their simulated node (exercising the controller's retry path).
	FailureRate float64 `json:"failureRate,omitempty"`
	// CPUMillis/MemoryMB are the per-job container resource requests.
	CPUMillis int64 `json:"cpuMillis,omitempty"`
	MemoryMB  int64 `json:"memoryMB,omitempty"`
}

// Profile is a complete open-loop workload description.
type Profile struct {
	Seed     int64    `json:"seed"`
	Duration Duration `json:"duration"`
	Cohorts  []Cohort `json:"cohorts"`
	Bursts   []Burst  `json:"bursts,omitempty"`
}

// Arrival is one generated job arrival. It names its circuit family
// instead of embedding the QASM so traces stay compact; Library.Spec
// re-attaches the source.
type Arrival struct {
	// T is the arrival offset from the start of the trace.
	T      Duration `json:"t"`
	Tenant string   `json:"tenant"`
	Family string   `json:"family"`
	Shots  int      `json:"shots,omitempty"`
	// Service is the job's simulated execution time once Running.
	Service Duration `json:"service"`
	// Fail marks the job to fail on its node instead of succeeding.
	Fail      bool  `json:"fail,omitempty"`
	CPUMillis int64 `json:"cpuMillis,omitempty"`
	MemoryMB  int64 `json:"memoryMB,omitempty"`
}

// Source yields arrivals in non-decreasing T order until exhausted.
type Source interface {
	Next() (Arrival, bool)
}

// --- circuit family library ---------------------------------------------

// Family is one schedulable circuit class: shared QASM source plus the
// device requirements every job of the family carries.
type Family struct {
	Name      string
	QASM      string
	MinQubits int
	Shots     int
}

// Library resolves family names to specs.
type Library map[string]Family

// DefaultLibrary builds the paper's §4.3 evaluation circuits (plus GHZ
// and QFT) through the real workload generators and QASM writer, so
// simulated jobs carry genuine circuit source — spec-identical within a
// family, which is exactly the shape the scheduler's rank-reuse path is
// designed for.
func DefaultLibrary() (Library, error) {
	circuits := []struct {
		c     *circuit.Circuit
		min   int
		shots int
	}{
		{workload.BernsteinVazirani(10, 0b101101101), 10, 1024},
		{workload.HiddenSubgroup(), 4, 1024},
		{workload.Grover(), 3, 2048},
		{workload.RepetitionEncoder(), 5, 512},
		{workload.Circ(), 7, 1024},
		{workload.Circ2(), 8, 1024},
		{workload.GHZ(5), 5, 512},
		{workload.QFT(4), 4, 1024},
	}
	lib := make(Library, len(circuits))
	for _, e := range circuits {
		src, err := qasm.Dump(e.c)
		if err != nil {
			return nil, fmt.Errorf("simload: dumping %s: %w", e.c.Name, err)
		}
		lib[e.c.Name] = Family{Name: e.c.Name, QASM: src, MinQubits: e.min, Shots: e.shots}
	}
	return lib, nil
}

// Spec materialises one arrival as a submittable JobSpec.
func (l Library) Spec(a Arrival) (api.JobSpec, error) {
	fam, ok := l[a.Family]
	if !ok {
		return api.JobSpec{}, fmt.Errorf("simload: unknown circuit family %q", a.Family)
	}
	shots := a.Shots
	if shots == 0 {
		shots = fam.Shots
	}
	return api.JobSpec{
		Tenant:         a.Tenant,
		QASM:           fam.QASM,
		Shots:          shots,
		Strategy:       api.StrategyFidelity,
		TargetFidelity: 1,
		Resources:      api.ResourceRequirements{CPUMillis: a.CPUMillis, MemoryMB: a.MemoryMB},
		Requirements:   api.DeviceRequirements{MinQubits: fam.MinQubits},
	}, nil
}

// --- generation ----------------------------------------------------------

// Validate rejects profiles the generator cannot honour.
func (p *Profile) Validate(lib Library) error {
	if p.Duration <= 0 {
		return fmt.Errorf("simload: profile needs a positive duration")
	}
	if len(p.Cohorts) == 0 {
		return fmt.Errorf("simload: profile has no cohorts")
	}
	seen := map[string]bool{}
	for i, c := range p.Cohorts {
		if c.Tenant == "" {
			return fmt.Errorf("simload: cohort %d has no tenant", i)
		}
		if seen[c.Tenant] {
			return fmt.Errorf("simload: duplicate cohort tenant %q", c.Tenant)
		}
		seen[c.Tenant] = true
		if c.Rate <= 0 {
			return fmt.Errorf("simload: cohort %q needs a positive rate", c.Tenant)
		}
		if len(c.Mix) == 0 {
			return fmt.Errorf("simload: cohort %q has an empty mix", c.Tenant)
		}
		total := 0.0
		for _, s := range c.Mix {
			if s.Weight <= 0 {
				return fmt.Errorf("simload: cohort %q: non-positive weight for %q", c.Tenant, s.Family)
			}
			if _, ok := lib[s.Family]; !ok {
				return fmt.Errorf("simload: cohort %q: unknown family %q", c.Tenant, s.Family)
			}
			total += s.Weight
		}
		if c.Service.Mean <= 0 {
			return fmt.Errorf("simload: cohort %q needs a positive mean service time", c.Tenant)
		}
		if c.FailureRate < 0 || c.FailureRate > 1 {
			return fmt.Errorf("simload: cohort %q: failure rate outside [0,1]", c.Tenant)
		}
		for _, h := range c.Diurnal {
			if h.Period <= 0 {
				return fmt.Errorf("simload: cohort %q: harmonic needs a positive period", c.Tenant)
			}
		}
	}
	for i, b := range p.Bursts {
		if b.Duration <= 0 || b.Factor <= 0 {
			return fmt.Errorf("simload: burst %d needs positive duration and factor", i)
		}
	}
	return nil
}

// cohortGen thins a homogeneous Poisson candidate stream at the cohort's
// envelope rate down to the modulated target rate (Lewis & Shedler).
// Each cohort owns an independent rng stream, so adding a cohort never
// perturbs another cohort's draws.
type cohortGen struct {
	cohort  Cohort
	bursts  []Burst // global bursts plus this tenant's
	rng     *rand.Rand
	sigma   float64 // lognormal shape from the service model's CV
	horizon time.Duration
	maxRate float64 // thinning envelope (≥ rate(t) everywhere)

	t    time.Duration // candidate clock
	head Arrival
	done bool
}

// factor is the instantaneous rate multiplier at offset t.
func (g *cohortGen) factor(t time.Duration) float64 {
	f := 1.0
	for _, h := range g.cohort.Diurnal {
		f += h.Amplitude * math.Sin(2*math.Pi*float64(t)/float64(h.Period)+h.Phase)
	}
	if f < 0 {
		f = 0
	}
	for _, b := range g.bursts {
		if t >= time.Duration(b.Start) && t < time.Duration(b.Start)+time.Duration(b.Duration) {
			f *= b.Factor
		}
	}
	return f
}

// envelope bounds factor(t) from above: the harmonic amplitudes all
// peaking at once, times every burst window that can apply.
func (g *cohortGen) envelope() float64 {
	f := 1.0
	for _, h := range g.cohort.Diurnal {
		f += math.Abs(h.Amplitude)
	}
	for _, b := range g.bursts {
		if b.Factor > 1 {
			f *= b.Factor
		}
	}
	return f
}

func (g *cohortGen) advance() {
	mixTotal := 0.0
	for _, s := range g.cohort.Mix {
		mixTotal += s.Weight
	}
	for {
		// Exponential gap at the envelope rate, then thin.
		g.t += time.Duration(g.rng.ExpFloat64() / g.maxRate * float64(time.Second))
		if g.t >= g.horizon {
			g.done = true
			return
		}
		if accept := g.cohort.Rate * g.factor(g.t) / g.maxRate; g.rng.Float64() >= accept {
			continue
		}
		// Family pick, proportional to mix weights.
		pick := g.rng.Float64() * mixTotal
		family := g.cohort.Mix[len(g.cohort.Mix)-1].Family
		for _, s := range g.cohort.Mix {
			if pick < s.Weight {
				family = s.Family
				break
			}
			pick -= s.Weight
		}
		// Lognormal service time with mean preserved for any CV.
		service := float64(g.cohort.Service.Mean)
		if g.sigma > 0 {
			service *= math.Exp(g.sigma*g.rng.NormFloat64() - g.sigma*g.sigma/2)
		}
		g.head = Arrival{
			T:         Duration(g.t),
			Tenant:    g.cohort.Tenant,
			Family:    family,
			Service:   Duration(service),
			Fail:      g.cohort.FailureRate > 0 && g.rng.Float64() < g.cohort.FailureRate,
			CPUMillis: g.cohort.CPUMillis,
			MemoryMB:  g.cohort.MemoryMB,
		}
		return
	}
}

// Stream merges the profile's cohort generators into one arrival stream
// ordered by (T, tenant).
type Stream struct {
	gens []*cohortGen
}

// NewStream compiles a profile into its deterministic arrival stream.
func NewStream(p Profile, lib Library) (*Stream, error) {
	if err := p.Validate(lib); err != nil {
		return nil, err
	}
	s := &Stream{}
	for _, c := range p.Cohorts {
		var bursts []Burst
		for _, b := range p.Bursts {
			if b.Tenant == "" || b.Tenant == c.Tenant {
				bursts = append(bursts, b)
			}
		}
		g := &cohortGen{
			cohort:  c,
			bursts:  bursts,
			rng:     rand.New(rand.NewSource(p.Seed ^ tenantSeed(c.Tenant))),
			horizon: time.Duration(p.Duration),
		}
		if cv := c.Service.CV; cv > 0 {
			g.sigma = math.Sqrt(math.Log(1 + cv*cv))
		}
		g.maxRate = c.Rate * g.envelope()
		g.advance()
		s.gens = append(s.gens, g)
	}
	return s, nil
}

// tenantSeed derives a per-cohort seed offset so cohort streams are
// independent yet reproducible.
func tenantSeed(tenant string) int64 {
	h := fnv.New64a()
	io.WriteString(h, tenant)
	return int64(h.Sum64() &^ (1 << 63))
}

// Next returns the earliest pending arrival across cohorts.
func (s *Stream) Next() (Arrival, bool) {
	best := -1
	for i, g := range s.gens {
		if g.done {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := s.gens[best]
		if g.head.T < b.head.T || (g.head.T == b.head.T && g.cohort.Tenant < b.cohort.Tenant) {
			best = i
		}
	}
	if best < 0 {
		return Arrival{}, false
	}
	a := s.gens[best].head
	s.gens[best].advance()
	return a, true
}

// --- trace record / replay ----------------------------------------------

// WriteTrace drains a source to JSONL, one arrival per line, and reports
// how many arrivals it wrote.
func WriteTrace(w io.Writer, src Source) (int, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	n := 0
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		if err := enc.Encode(a); err != nil {
			return n, fmt.Errorf("simload: trace write: %w", err)
		}
		n++
	}
	return n, bw.Flush()
}

// traceSource streams arrivals back out of a JSONL trace.
type traceSource struct {
	sc   *bufio.Scanner
	line int
	err  error
}

// TraceSource replays a JSONL trace written by WriteTrace. Read errors
// end the stream; check Err when the source is drained.
func TraceSource(r io.Reader) *traceSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &traceSource{sc: sc}
}

func (t *traceSource) Next() (Arrival, bool) {
	for t.err == nil && t.sc.Scan() {
		t.line++
		raw := t.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var a Arrival
		if err := json.Unmarshal(raw, &a); err != nil {
			t.err = fmt.Errorf("simload: trace line %d: %w", t.line, err)
			return Arrival{}, false
		}
		return a, true
	}
	if t.err == nil {
		t.err = t.sc.Err()
	}
	return Arrival{}, false
}

// Err reports the first read error, if any.
func (t *traceSource) Err() error { return t.err }
