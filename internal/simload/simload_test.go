package simload

import (
	"bytes"
	"math"
	"testing"
	"time"

	"qrio/internal/cluster/api"
)

func lib(t *testing.T) Library {
	t.Helper()
	l, err := DefaultLibrary()
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func drain(t *testing.T, src Source) []Arrival {
	t.Helper()
	var out []Arrival
	for {
		a, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

func flatProfile(seed int64, rate float64, dur time.Duration) Profile {
	return Profile{
		Seed:     seed,
		Duration: Duration(dur),
		Cohorts: []Cohort{{
			Tenant:  "alice",
			Rate:    rate,
			Mix:     []Share{{Family: "ghz", Weight: 1}},
			Service: ServiceModel{Mean: Duration(200 * time.Millisecond)},
		}},
	}
}

// TestPoissonInterArrivals: a constant-rate cohort is a homogeneous
// Poisson process — inter-arrival gaps are exponential, so their mean is
// 1/rate and their coefficient of variation is 1, within sampling
// tolerance at n ≈ 20k.
func TestPoissonInterArrivals(t *testing.T) {
	const rate = 200.0
	p := flatProfile(42, rate, 100*time.Second)
	s, err := NewStream(p, lib(t))
	if err != nil {
		t.Fatal(err)
	}
	arrivals := drain(t, s)
	n := len(arrivals)
	expected := rate * 100
	if math.Abs(float64(n)-expected) > 4*math.Sqrt(expected) {
		t.Fatalf("arrival count %d outside 4σ of %g", n, expected)
	}
	var gaps []float64
	for i := 1; i < n; i++ {
		gaps = append(gaps, time.Duration(arrivals[i].T-arrivals[i-1].T).Seconds())
	}
	mean, m2 := 0.0, 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		m2 += (g - mean) * (g - mean)
	}
	variance := m2 / float64(len(gaps))
	if math.Abs(mean-1/rate) > 0.1/rate {
		t.Fatalf("mean gap %.6fs, want %.6fs ±10%%", mean, 1/rate)
	}
	if cv := math.Sqrt(variance) / mean; math.Abs(cv-1) > 0.05 {
		t.Fatalf("gap CV %.3f, want 1 ±0.05 (exponential)", cv)
	}
	for i := 1; i < n; i++ {
		if arrivals[i].T < arrivals[i-1].T {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}
}

// TestDiurnalShape: with a single sinusoidal harmonic the arrival mass
// must follow the modulation — the peak-phase quarter of each period
// collects measurably more arrivals than the trough-phase quarter, in
// the analytically expected ratio.
func TestDiurnalShape(t *testing.T) {
	period := 10 * time.Second
	p := flatProfile(7, 300, 100*time.Second)
	p.Cohorts[0].Diurnal = []Harmonic{{Period: Duration(period), Amplitude: 0.8}}
	s, err := NewStream(p, lib(t))
	if err != nil {
		t.Fatal(err)
	}
	// Quarter-period buckets by phase: bucket 0 spans phase [0, π/2) where
	// sin rises — integrate 1+0.8·sin over each quarter for the expectation.
	var buckets [4]float64
	for _, a := range drain(t, s) {
		phase := math.Mod(time.Duration(a.T).Seconds(), period.Seconds()) / period.Seconds()
		buckets[int(phase*4)%4]++
	}
	total := buckets[0] + buckets[1] + buckets[2] + buckets[3]
	// ∫ (1+A sin 2πx) dx over [0,¼],[¼,½],[½,¾],[¾,1] with A=0.8:
	// ¼ + A/2π ≈ 0.3773, ¼ + A/2π, ¼ − A/2π ≈ 0.1227, ¼ − A/2π.
	want := [4]float64{0.25 + 0.8/(2*math.Pi), 0.25 + 0.8/(2*math.Pi),
		0.25 - 0.8/(2*math.Pi), 0.25 - 0.8/(2*math.Pi)}
	for i, b := range buckets {
		got := b / total
		if math.Abs(got-want[i]) > 0.02 {
			t.Fatalf("phase bucket %d holds %.3f of arrivals, want %.3f ±0.02", i, got, want[i])
		}
	}
	if buckets[0] < buckets[2]*2 {
		t.Fatalf("peak quarter (%.0f) not clearly above trough quarter (%.0f)", buckets[0], buckets[2])
	}
}

// TestBurstWindow: a 5× storm multiplies arrival density inside its
// window and leaves the outside untouched.
func TestBurstWindow(t *testing.T) {
	p := flatProfile(11, 100, 60*time.Second)
	p.Bursts = []Burst{{Start: Duration(20 * time.Second), Duration: Duration(10 * time.Second), Factor: 5}}
	s, err := NewStream(p, lib(t))
	if err != nil {
		t.Fatal(err)
	}
	inside, outside := 0.0, 0.0
	for _, a := range drain(t, s) {
		at := time.Duration(a.T)
		if at >= 20*time.Second && at < 30*time.Second {
			inside++
		} else {
			outside++
		}
	}
	// Inside: 10s at 500/s = 5000. Outside: 50s at 100/s = 5000.
	if math.Abs(inside-5000) > 300 || math.Abs(outside-5000) > 300 {
		t.Fatalf("burst split inside=%.0f outside=%.0f, want ≈5000/5000", inside, outside)
	}
}

// TestCohortMixRatios: family picks follow the mix weights, and
// per-cohort rng streams stay independent (two tenants, same profile).
func TestCohortMixRatios(t *testing.T) {
	p := Profile{
		Seed:     3,
		Duration: Duration(50 * time.Second),
		Cohorts: []Cohort{
			{
				Tenant: "alice", Rate: 200,
				Mix:     []Share{{Family: "ghz", Weight: 3}, {Family: "bv", Weight: 1}},
				Service: ServiceModel{Mean: Duration(100 * time.Millisecond)},
			},
			{
				Tenant: "bob", Rate: 100,
				Mix:     []Share{{Family: "qft", Weight: 1}},
				Service: ServiceModel{Mean: Duration(100 * time.Millisecond)},
			},
		},
	}
	s, err := NewStream(p, lib(t))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]map[string]float64{}
	for _, a := range drain(t, s) {
		if counts[a.Tenant] == nil {
			counts[a.Tenant] = map[string]float64{}
		}
		counts[a.Tenant][a.Family]++
	}
	alice := counts["alice"]["ghz"] + counts["alice"]["bv"]
	if alice == 0 {
		t.Fatal("alice generated nothing")
	}
	if share := counts["alice"]["ghz"] / alice; math.Abs(share-0.75) > 0.02 {
		t.Fatalf("ghz share %.3f, want 0.75 ±0.02", share)
	}
	if counts["bob"]["qft"] == 0 || counts["alice"]["qft"] != 0 {
		t.Fatalf("cohort mixes bled across tenants: %+v", counts)
	}
	if ratio := alice / counts["bob"]["qft"]; math.Abs(ratio-2) > 0.2 {
		t.Fatalf("alice/bob arrival ratio %.2f, want 2 ±0.2", ratio)
	}
}

// TestServiceTimeMean: the lognormal service sampler preserves the
// configured mean for a non-trivial CV.
func TestServiceTimeMean(t *testing.T) {
	p := flatProfile(19, 400, 50*time.Second)
	p.Cohorts[0].Service = ServiceModel{Mean: Duration(300 * time.Millisecond), CV: 1.5}
	s, err := NewStream(p, lib(t))
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 0
	for _, a := range drain(t, s) {
		sum += time.Duration(a.Service).Seconds()
		n++
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.3) > 0.3*0.08 {
		t.Fatalf("mean service %.4fs over %d samples, want 0.3 ±8%%", mean, n)
	}
}

// TestSameSeedByteIdentical: the whole point of the seeded streams — a
// profile replays exactly, and a different seed diverges.
func TestSameSeedByteIdentical(t *testing.T) {
	l := lib(t)
	p := flatProfile(99, 150, 20*time.Second)
	p.Cohorts[0].Service.CV = 1.0
	p.Cohorts[0].FailureRate = 0.1
	run := func(pp Profile) []byte {
		s, err := NewStream(pp, l)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := WriteTrace(&buf, s); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(p), run(p)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different traces")
	}
	p2 := p
	p2.Seed = 100
	if bytes.Equal(a, run(p2)) {
		t.Fatal("different seed produced an identical trace")
	}
}

// TestTraceRoundTrip: record → replay reproduces the arrival sequence
// exactly, and replayed arrivals materialise into valid job specs.
func TestTraceRoundTrip(t *testing.T) {
	l := lib(t)
	p := flatProfile(5, 100, 10*time.Second)
	s, err := NewStream(p, l)
	if err != nil {
		t.Fatal(err)
	}
	want := drain(t, s)
	s2, err := NewStream(p, l)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if n, err := WriteTrace(&buf, s2); err != nil || n != len(want) {
		t.Fatalf("WriteTrace = %d, %v; want %d", n, err, len(want))
	}
	replay := TraceSource(&buf)
	got := drain(t, replay)
	if err := replay.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d arrivals, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("arrival %d diverged: %+v vs %+v", i, got[i], want[i])
		}
	}
	spec, err := l.Spec(got[0])
	if err != nil {
		t.Fatal(err)
	}
	job := api.QuantumJob{ObjectMeta: api.ObjectMeta{Name: "probe"}, Spec: spec}
	if err := job.Validate(); err != nil {
		t.Fatalf("replayed arrival produced an invalid spec: %v", err)
	}
}
