// Package workload provides the benchmark circuits of the paper's
// evaluation (§4.3) — Bernstein–Vazirani, a hidden-subgroup instance,
// Grover search, the repetition-code encoder and the two seeded random
// circuits Circ and Circ_2 — plus common extras (GHZ, QFT, QAOA) used by
// the examples and tests.
package workload

import (
	"math"
	"math/rand"

	"qrio/internal/quantum/circuit"
)

// BernsteinVazirani builds the n-qubit BV circuit: qubits 0..n-2 hold the
// input register, qubit n-1 the oracle ancilla. secret's bit i controls a
// cx from input qubit i. Inputs are measured into clbits 0..n-2.
// The paper's Fig. 5/Fig. 7 instance is BernsteinVazirani(10, ...).
func BernsteinVazirani(n int, secret uint64) *circuit.Circuit {
	c := circuit.New(n)
	c.Name = "bv"
	anc := n - 1
	c.X(anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for i := 0; i < n-1; i++ {
		if secret&(1<<uint(i)) != 0 {
			c.CX(i, anc)
		}
	}
	for q := 0; q < n-1; q++ {
		c.H(q)
	}
	for q := 0; q < n-1; q++ {
		c.Measure(q, q)
	}
	return c
}

// HiddenSubgroup is the paper's 4-qubit "Hsp" benchmark: a Simon-style
// coset-sampling circuit for the hidden subgroup {00, 11} of (Z_2)^2.
// The oracle computes f(x0,x1) = (x0⊕x1, x0⊕x1), which is constant exactly
// on cosets of the subgroup, so noiseless samples satisfy y·(11) = 0 —
// a structured output distribution ({00, 11} only) that noise visibly
// degrades.
func HiddenSubgroup() *circuit.Circuit {
	c := circuit.New(4)
	c.Name = "hsp"
	c.H(0)
	c.H(1)
	c.CX(0, 2)
	c.CX(1, 2)
	c.CX(0, 3)
	c.CX(1, 3)
	c.H(0)
	c.H(1)
	c.Measure(0, 0)
	c.Measure(1, 1)
	return c
}

// Grover builds the 3-qubit Grover search marking |111> with the optimal
// two iterations.
func Grover() *circuit.Circuit {
	c := circuit.New(3)
	c.Name = "grover"
	for q := 0; q < 3; q++ {
		c.H(q)
	}
	for iter := 0; iter < 2; iter++ {
		// Oracle: phase-flip |111> (ccz).
		c.MustAppend(circuit.Gate{Name: circuit.GateCCZ, Qubits: []int{0, 1, 2}})
		// Diffusion about the mean.
		for q := 0; q < 3; q++ {
			c.H(q)
			c.X(q)
		}
		c.MustAppend(circuit.Gate{Name: circuit.GateCCZ, Qubits: []int{0, 1, 2}})
		for q := 0; q < 3; q++ {
			c.X(q)
			c.H(q)
		}
	}
	c.MeasureAll()
	return c
}

// RepetitionEncoder builds the 5-qubit repetition-code encoder ("Rep"):
// qubit 0's state is copied (in the bit-flip code sense) onto the rest.
func RepetitionEncoder() *circuit.Circuit {
	c := circuit.New(5)
	c.Name = "rep"
	c.H(0) // encode a superposition so the output is non-trivial
	for q := 1; q < 5; q++ {
		c.CX(0, q)
	}
	c.MeasureAll()
	return c
}

// RandomCircuit builds a seeded random circuit with the given qubit count
// and exactly cxCount cx gates interleaved with random u3 rotations —
// the construction behind the paper's Circ / Circ_2 benchmarks.
func RandomCircuit(name string, n, cxCount int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	c.Name = name
	for i := 0; i < cxCount; i++ {
		// A layer of sparse random 1q rotations...
		for q := 0; q < n; q++ {
			if rng.Float64() < 0.4 {
				c.U3(q, rng.Float64()*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi)
			}
		}
		// ...then one cx on a random pair.
		a := rng.Intn(n)
		b := (a + 1 + rng.Intn(n-1)) % n
		c.CX(a, b)
	}
	c.MeasureAll()
	return c
}

// Circ is the paper's random 7-qubit benchmark.
func Circ() *circuit.Circuit { return RandomCircuit("circ", 7, 9, 70) }

// Circ2 is the paper's random 8-qubit benchmark with 12 cx gates.
func Circ2() *circuit.Circuit { return RandomCircuit("circ_2", 8, 12, 80) }

// GHZ builds the n-qubit GHZ state preparation with measurement.
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.Name = "ghz"
	c.H(0)
	for q := 0; q < n-1; q++ {
		c.CX(q, q+1)
	}
	c.MeasureAll()
	return c
}

// QFT builds the n-qubit quantum Fourier transform (with final swaps).
func QFT(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.Name = "qft"
	for i := n - 1; i >= 0; i-- {
		c.H(i)
		for j := i - 1; j >= 0; j-- {
			angle := math.Pi / math.Pow(2, float64(i-j))
			c.MustAppend(circuit.Gate{Name: circuit.GateCU1,
				Qubits: []int{j, i}, Params: []float64{angle}})
		}
	}
	for i := 0; i < n/2; i++ {
		c.Swap(i, n-1-i)
	}
	c.MeasureAll()
	return c
}

// QAOARing builds a depth-p QAOA circuit for MaxCut on an n-ring — the
// kind of optimisation workload whose preferred topology a user can
// "easily discern" (§1, use case 3).
func QAOARing(n, p int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	c.Name = "qaoa-ring"
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for layer := 0; layer < p; layer++ {
		gamma := rng.Float64() * math.Pi
		beta := rng.Float64() * math.Pi
		for q := 0; q < n; q++ {
			c.MustAppend(circuit.Gate{Name: circuit.GateRZZ,
				Qubits: []int{q, (q + 1) % n}, Params: []float64{2 * gamma}})
		}
		for q := 0; q < n; q++ {
			c.RX(q, 2*beta)
		}
	}
	c.MeasureAll()
	return c
}

// PaperCircuit is one §4.3 evaluation workload.
type PaperCircuit struct {
	Name    string
	Circuit *circuit.Circuit
}

// PaperCircuits returns the six circuits of Fig. 7 with the paper's sizes:
// bv (10 qubits), Hsp (4), Grover (3), Rep (5), Circ (random 7), Circ_2
// (random 8 with 12 cx).
func PaperCircuits() []PaperCircuit {
	return []PaperCircuit{
		{"bv", BernsteinVazirani(10, 0b101101101)},
		{"hsp", HiddenSubgroup()},
		{"grover", Grover()},
		{"rep", RepetitionEncoder()},
		{"circ", Circ()},
		{"circ_2", Circ2()},
	}
}
