package workload_test

import (
	"math"
	"testing"

	"qrio/internal/quantum/statevec"
	"qrio/internal/workload"
)

func TestBVRecoversSecret(t *testing.T) {
	for _, secret := range []uint64{0b1011, 0b0001, 0b1111, 0} {
		c := workload.BernsteinVazirani(5, secret)
		dist, err := statevec.IdealDistribution(c)
		if err != nil {
			t.Fatal(err)
		}
		want := statevec.FormatBits(int(secret), 5)
		if math.Abs(dist[want]-1) > 1e-9 {
			t.Fatalf("secret %b: dist = %v, want all mass on %s", secret, dist, want)
		}
	}
}

func TestBVPaperInstanceIsClifford(t *testing.T) {
	c := workload.BernsteinVazirani(10, 0b101101101)
	if c.NumQubits != 10 {
		t.Fatalf("paper BV has %d qubits", c.NumQubits)
	}
	if !c.IsClifford() {
		t.Fatal("BV must be a Clifford circuit")
	}
}

func TestGroverFindsMarkedState(t *testing.T) {
	dist, err := statevec.IdealDistribution(workload.Grover())
	if err != nil {
		t.Fatal(err)
	}
	if dist["111"] < 0.9 {
		t.Fatalf("Grover P(111) = %v, want > 0.9 after 2 iterations", dist["111"])
	}
}

func TestRepetitionEncoderCorrelates(t *testing.T) {
	dist, err := statevec.IdealDistribution(workload.RepetitionEncoder())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist["00000"]-0.5) > 1e-9 || math.Abs(dist["11111"]-0.5) > 1e-9 {
		t.Fatalf("encoder dist = %v", dist)
	}
}

func TestHiddenSubgroupShape(t *testing.T) {
	c := workload.HiddenSubgroup()
	if c.NumQubits != 4 {
		t.Fatalf("hsp qubits = %d, want 4", c.NumQubits)
	}
	if !c.IsClifford() {
		t.Fatal("hsp should be Clifford")
	}
	if _, err := statevec.IdealDistribution(c); err != nil {
		t.Fatal(err)
	}
}

func TestRandomCircuitsAreSeededAndSized(t *testing.T) {
	a := workload.Circ()
	b := workload.Circ()
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("Circ not deterministic")
	}
	if a.NumQubits != 7 {
		t.Fatalf("Circ qubits = %d", a.NumQubits)
	}
	c2 := workload.Circ2()
	if c2.NumQubits != 8 {
		t.Fatalf("Circ_2 qubits = %d", c2.NumQubits)
	}
	if got := c2.CountOps()["cx"]; got != 12 {
		t.Fatalf("Circ_2 cx count = %d, want 12 (paper)", got)
	}
	if a.IsClifford() {
		t.Fatal("Circ should contain non-Clifford gates")
	}
}

func TestGHZ(t *testing.T) {
	dist, err := statevec.IdealDistribution(workload.GHZ(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist["0000"]-0.5) > 1e-9 || math.Abs(dist["1111"]-0.5) > 1e-9 {
		t.Fatalf("GHZ dist = %v", dist)
	}
}

func TestQFTOnBasisState(t *testing.T) {
	// QFT|0...0> has a uniform output distribution.
	dist, err := statevec.IdealDistribution(workload.QFT(3))
	if err != nil {
		t.Fatal(err)
	}
	for bits, p := range dist {
		if math.Abs(p-0.125) > 1e-9 {
			t.Fatalf("QFT|000> P(%s) = %v, want 1/8", bits, p)
		}
	}
}

func TestQAOARingValidAndSized(t *testing.T) {
	c := workload.QAOARing(6, 2, 11)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 6 {
		t.Fatalf("qaoa qubits = %d", c.NumQubits)
	}
	// Ring interaction pattern: 6 distinct edges.
	if got := len(c.InteractionEdges()); got != 6 {
		t.Fatalf("qaoa ring edges = %d, want 6", got)
	}
}

func TestPaperCircuitsRoster(t *testing.T) {
	pcs := workload.PaperCircuits()
	if len(pcs) != 6 {
		t.Fatalf("roster size = %d, want 6", len(pcs))
	}
	wantQubits := map[string]int{
		"bv": 10, "hsp": 4, "grover": 3, "rep": 5, "circ": 7, "circ_2": 8,
	}
	for _, pc := range pcs {
		if pc.Circuit.NumQubits != wantQubits[pc.Name] {
			t.Errorf("%s qubits = %d, want %d", pc.Name, pc.Circuit.NumQubits, wantQubits[pc.Name])
		}
		if err := pc.Circuit.Validate(); err != nil {
			t.Errorf("%s invalid: %v", pc.Name, err)
		}
		if !pc.Circuit.HasMeasurements() {
			t.Errorf("%s has no measurements", pc.Name)
		}
	}
}
