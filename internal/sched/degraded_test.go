package sched

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/resilience"
)

// stubClock is a mutex-protected virtual clock for staleness/cool-down
// control.
type stubClock struct {
	mu  sync.Mutex
	now time.Time
}

func newStubClock() *stubClock {
	return &stubClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *stubClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *stubClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// flipScorer is a meta.Scorer whose health the test flips.
type flipScorer struct {
	mu     sync.Mutex
	down   bool
	scores map[string]float64 // "job/node" → score
	calls  int
}

func (s *flipScorer) Score(job, node string) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.down {
		return 0, errors.New("meta server unreachable")
	}
	if v, ok := s.scores[job+"/"+node]; ok {
		return v, nil
	}
	return 0.42, nil
}

func (s *flipScorer) setDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

func jobNamed(name string) api.QuantumJob {
	return api.QuantumJob{ObjectMeta: api.ObjectMeta{Name: name}}
}

func nodeNamed(name string, labels map[string]string) api.Node {
	return api.Node{ObjectMeta: api.ObjectMeta{Name: name, Labels: labels}}
}

// resilient builds the plugin under test with a 1-failure breaker so a
// single outage opens the circuit deterministically.
func resilient(scorer *flipScorer, fc *stubClock, onDegraded func(string)) *ResilientMetaScore {
	return &ResilientMetaScore{
		Scorer:     scorer,
		Breaker:    &resilience.Breaker{FailureThreshold: 1, OpenTimeout: 30 * time.Second, Clock: fc},
		Clock:      fc,
		OnDegraded: onDegraded,
	}
}

// TestFallbackOrdering pins the degraded chain: exact (job, node) stale
// entry beats the node-level entry, which beats the label heuristic,
// which beats an error.
func TestFallbackOrdering(t *testing.T) {
	fc := newStubClock()
	scorer := &flipScorer{scores: map[string]float64{
		"a/n1": 1.5,
		"b/n1": 2.5,
	}}
	r := resilient(scorer, fc, nil)

	labelled := nodeNamed("n2", map[string]string{
		api.LabelAvg2QErr:   "0.02",
		api.LabelAvgReadout: "0.05",
	})

	// Healthy pass: live scores flow through and are remembered.
	if got, err := r.Score(jobNamed("a"), nodeNamed("n1", nil)); err != nil || got != 1.5 {
		t.Fatalf("live score = %v, %v; want 1.5", got, err)
	}
	if got, err := r.Score(jobNamed("b"), nodeNamed("n1", nil)); err != nil || got != 2.5 {
		t.Fatalf("live score = %v, %v; want 2.5", got, err)
	}

	// Outage: one failure opens the 1-failure breaker.
	scorer.setDown(true)
	if _, err := r.Score(jobNamed("c"), labelled); err != nil {
		t.Fatalf("first degraded pass errored: %v", err)
	}

	// 1. Exact pair wins even though the node entry is fresher data for b.
	if got, err := r.Score(jobNamed("a"), nodeNamed("n1", nil)); err != nil || got != 1.5 {
		t.Fatalf("degraded exact-pair score = %v, %v; want 1.5", got, err)
	}
	// 2. Unknown job on a known node: node-level entry (most recent live
	// score on n1, which was b's 2.5).
	if got, err := r.Score(jobNamed("zzz"), nodeNamed("n1", nil)); err != nil || got != 2.5 {
		t.Fatalf("degraded node-level score = %v, %v; want 2.5", got, err)
	}
	// 3. Unknown node with calibration labels: heuristic 10·avg2q + readout.
	want := 10*0.02 + 0.05
	if got, err := r.Score(jobNamed("zzz"), labelled); err != nil || got != want {
		t.Fatalf("degraded heuristic score = %v, %v; want %v", got, err, want)
	}
	// 4. Nothing to fall back on: a typed error, not a fake score.
	if _, err := r.Score(jobNamed("zzz"), nodeNamed("bare", nil)); err == nil {
		t.Fatal("degraded score with no fallback succeeded")
	}

	// The open circuit short-circuits: the scorer saw the healthy passes,
	// the opening failure, and nothing since.
	scorer.mu.Lock()
	calls := scorer.calls
	scorer.mu.Unlock()
	if calls != 3 {
		t.Fatalf("scorer calls = %d, want 3 (open circuit must not probe)", calls)
	}
}

// TestMaxStaleBound: cache entries past MaxStale stop serving and the
// chain falls through to the heuristic/error.
func TestMaxStaleBound(t *testing.T) {
	fc := newStubClock()
	scorer := &flipScorer{scores: map[string]float64{"a/n1": 1.5}}
	r := resilient(scorer, fc, nil)
	r.MaxStale = time.Minute

	if _, err := r.Score(jobNamed("a"), nodeNamed("n1", nil)); err != nil {
		t.Fatal(err)
	}
	scorer.setDown(true)
	if _, err := r.Score(jobNamed("a"), nodeNamed("n1", nil)); err != nil {
		t.Fatalf("fresh stale entry refused: %v", err)
	}
	fc.Advance(2 * time.Minute)
	if _, err := r.Score(jobNamed("a"), nodeNamed("n1", nil)); err == nil {
		t.Fatal("entry older than MaxStale still served")
	}
}

// TestRecoveryResumesLiveScoring: after the breaker cool-down, a probe
// reaches the healthy scorer again and live values flow.
func TestRecoveryResumesLiveScoring(t *testing.T) {
	fc := newStubClock()
	scorer := &flipScorer{scores: map[string]float64{"a/n1": 1.5}}
	r := resilient(scorer, fc, nil)

	if _, err := r.Score(jobNamed("a"), nodeNamed("n1", nil)); err != nil {
		t.Fatal(err)
	}
	scorer.setDown(true)
	r.Score(jobNamed("a"), nodeNamed("n1", nil)) // opens the breaker
	scorer.setDown(false)

	// Before the cool-down the circuit still serves stale.
	scorer.mu.Lock()
	before := scorer.calls
	scorer.mu.Unlock()
	if _, err := r.Score(jobNamed("a"), nodeNamed("n1", nil)); err != nil {
		t.Fatal(err)
	}
	scorer.mu.Lock()
	during := scorer.calls
	scorer.mu.Unlock()
	if during != before {
		t.Fatalf("open circuit probed the scorer (%d → %d calls)", before, during)
	}

	fc.Advance(30 * time.Second)
	scorer.mu.Lock()
	scorer.scores["a/n1"] = 9.9
	scorer.mu.Unlock()
	if got, err := r.Score(jobNamed("a"), nodeNamed("n1", nil)); err != nil || got != 9.9 {
		t.Fatalf("post-recovery score = %v, %v; want live 9.9", got, err)
	}
}

// TestOnDegradedCoalescing: one notification per open episode, not one
// per degraded call; a second outage notifies again.
func TestOnDegradedCoalescing(t *testing.T) {
	fc := newStubClock()
	scorer := &flipScorer{}
	var mu sync.Mutex
	var events []string
	r := resilient(scorer, fc, func(detail string) {
		mu.Lock()
		events = append(events, detail)
		mu.Unlock()
	})

	if _, err := r.Score(jobNamed("a"), nodeNamed("n1", nil)); err != nil {
		t.Fatal(err)
	}
	scorer.setDown(true)
	for i := 0; i < 5; i++ {
		if _, err := r.Score(jobNamed("a"), nodeNamed("n1", nil)); err != nil {
			t.Fatalf("degraded pass %d: %v", i, err)
		}
	}
	mu.Lock()
	n := len(events)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("OnDegraded fired %d times in one outage, want 1", n)
	}

	// Recover, then a second outage: a new episode, a new notification.
	scorer.setDown(false)
	fc.Advance(30 * time.Second)
	if _, err := r.Score(jobNamed("a"), nodeNamed("n1", nil)); err != nil {
		t.Fatal(err)
	}
	scorer.setDown(true)
	r.Score(jobNamed("a"), nodeNamed("n1", nil))
	r.Score(jobNamed("a"), nodeNamed("n1", nil))
	mu.Lock()
	n = len(events)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("OnDegraded fired %d times across two outages, want 2", n)
	}
}

// TestNoScorerErrors: a mis-wired plugin fails loudly instead of scoring
// everything zero.
func TestNoScorerErrors(t *testing.T) {
	r := &ResilientMetaScore{}
	if _, err := r.Score(jobNamed("a"), nodeNamed("n1", nil)); err == nil {
		t.Fatal("nil scorer did not error")
	}
}

// TestCacheCap: the pair cache prunes expired entries at the cap instead
// of growing without bound through a long outage.
func TestCacheCap(t *testing.T) {
	fc := newStubClock()
	scorer := &flipScorer{}
	r := resilient(scorer, fc, nil)
	r.MaxStale = time.Minute

	for i := 0; i < maxCacheEntries; i++ {
		if _, err := r.Score(jobNamed(fmt.Sprintf("j%d", i)), nodeNamed("n1", nil)); err != nil {
			t.Fatal(err)
		}
	}
	fc.Advance(2 * time.Minute) // everything above is now expired
	if _, err := r.Score(jobNamed("fresh"), nodeNamed("n1", nil)); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	size := len(r.pairs)
	r.mu.Unlock()
	if size > 1 {
		t.Fatalf("cache kept %d entries past the cap prune, want 1", size)
	}
}
