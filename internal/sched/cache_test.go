package sched

import (
	"fmt"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
)

// fleetNodesOf drops the membership-epoch return the tests here don't
// assert on (epoch semantics get their own tests).
func fleetNodesOf(s *Scheduler) []api.Node {
	nodes, _ := s.fleetNodes()
	return nodes
}

// TestFleetCacheTracksStoreViaEvents: with the relist fallback effectively
// disabled, the cache must still observe node additions and status changes
// purely from drained watch events.
func TestFleetCacheTracksStoreViaEvents(t *testing.T) {
	st := state.New()
	node(t, st, "a", 5, 0.1)
	fw := NewFramework(MetaScore{Scorer: mapScorer{"a": 1, "b": 2}}, DefaultFilters()...)
	s := New(st, fw)
	s.FleetResync = time.Hour // events or bust

	if got := fleetNodesOf(s); len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("initial snapshot = %v", got)
	}
	node(t, st, "b", 5, 0.1) // arrives only as a watch event now
	if got := fleetNodesOf(s); len(got) != 2 || got[1].Name != "b" {
		t.Fatalf("snapshot after AddNode = %+v (watch event not applied)", got)
	}
	// A bind's node-status event must flow in the same way: schedule onto
	// the fleet and verify the next snapshot sees the occupied slot.
	if err := st.SubmitJob(job("j1", 0, 0)); err != nil {
		t.Fatal(err)
	}
	if bound := s.SchedulePass(); bound != 1 {
		t.Fatalf("bound %d", bound)
	}
	var busy int
	for _, n := range fleetNodesOf(s) {
		busy += len(n.Status.RunningJobs)
	}
	if busy != 1 {
		t.Fatalf("cache sees %d running jobs after bind, want 1", busy)
	}
}

// TestFleetCacheRelistHealsDroppedEvents floods the node store with more
// mutations than the watch buffer holds — the newest events are dropped by
// the store's slow-consumer contract, leaving the cache stale — then
// verifies the level-triggered re-List restores the true state.
func TestFleetCacheRelistHealsDroppedEvents(t *testing.T) {
	st := state.New()
	node(t, st, "n", 5, 0.1)
	s := New(st, NewFramework(nil, DefaultFilters()...))
	s.FleetResync = time.Hour
	fleetNodesOf(s) // subscribe

	const churn = fleetWatchBuffer + 100
	for i := 1; i <= churn; i++ {
		if _, _, err := st.Nodes.Update("n", func(n api.Node) (api.Node, error) {
			n.Spec.MaxContainers = i
			return n, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	got := fleetNodesOf(s)
	if len(got) != 1 {
		t.Fatalf("snapshot = %v", got)
	}
	if got[0].Spec.MaxContainers == churn {
		t.Fatalf("cache saw the final update despite %d dropped events — drop simulation broken", churn-fleetWatchBuffer)
	}
	s.FleetResync = time.Nanosecond // force the level-triggered re-List
	got = fleetNodesOf(s)
	if got[0].Spec.MaxContainers != churn {
		t.Fatalf("re-List left MaxContainers=%d, want %d", got[0].Spec.MaxContainers, churn)
	}
}

// TestSchedulePassAllocsIndependentOfHistory: the end-to-end hot path —
// pending lookup plus fleet snapshot — must not allocate proportionally to
// terminal jobs resident in the store (the pre-index code deep-copied all
// of them every pass).
func TestSchedulePassAllocsIndependentOfHistory(t *testing.T) {
	st := state.New()
	node(t, st, "n", 5, 0.1)
	const history = 5000
	for i := 0; i < history; i++ {
		j := job(fmt.Sprintf("done-%d", i), 0, 0)
		j.Status.Phase = api.JobSucceeded
		if _, err := st.Jobs.Create(j); err != nil {
			t.Fatal(err)
		}
	}
	s := New(st, NewFramework(nil, DefaultFilters()...))
	s.FleetResync = time.Hour
	allocs := testing.AllocsPerRun(20, func() {
		if bound := s.SchedulePass(); bound != 0 {
			t.Fatalf("bound %d with empty queue", bound)
		}
	})
	if allocs > 100 {
		t.Fatalf("idle SchedulePass did %.0f allocs with %d terminal jobs resident — scaling with history", allocs, history)
	}
}

// TestRunStopsFleetWatch: exiting the Run loop must deregister the cache's
// store watcher so an abandoned scheduler leaks nothing; the next pass
// resubscribes transparently.
func TestRunStopsFleetWatch(t *testing.T) {
	st := state.New()
	node(t, st, "n", 5, 0.1)
	s := New(st, NewFramework(nil, DefaultFilters()...))
	fleetNodesOf(s)
	s.fleet.mu.Lock()
	subscribed := s.fleet.events != nil
	s.fleet.mu.Unlock()
	if !subscribed {
		t.Fatal("snapshot did not subscribe")
	}
	s.Stop()
	s.fleet.mu.Lock()
	stopped := s.fleet.events == nil && s.fleet.nodes == nil
	s.fleet.mu.Unlock()
	if !stopped {
		t.Fatal("stop left the cache live")
	}
	if got := fleetNodesOf(s); len(got) != 1 {
		t.Fatalf("resubscribe snapshot = %v", got)
	}
}

// TestFleetCacheResetsOnStateSwap: pointing the scheduler at a different
// cluster must drop the old store's view and version space entirely —
// otherwise the old (larger) versions suppress the new store's events.
func TestFleetCacheResetsOnStateSwap(t *testing.T) {
	stA := state.New()
	node(t, stA, "shared", 5, 0.1)
	for i := 0; i < 50; i++ { // inflate A's version counter
		stA.Nodes.Update("shared", func(n api.Node) (api.Node, error) { return n, nil })
	}
	s := New(stA, NewFramework(nil, DefaultFilters()...))
	s.FleetResync = time.Hour
	fleetNodesOf(s)

	stB := state.New()
	node(t, stB, "shared", 5, 0.1)
	s.State = stB
	if got := fleetNodesOf(s); len(got) != 1 || got[0].Name != "shared" {
		t.Fatalf("post-swap snapshot = %v", got)
	}
	// B's low-version watch events must not be suppressed by A's versions.
	if _, _, err := stB.Nodes.Update("shared", func(n api.Node) (api.Node, error) {
		n.Spec.MaxContainers = 7
		return n, nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := fleetNodesOf(s); got[0].Spec.MaxContainers != 7 {
		t.Fatalf("post-swap event suppressed: MaxContainers = %d, want 7", got[0].Spec.MaxContainers)
	}
}
