package sched

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
)

// TestRunLoopBindsOnWatchEvent verifies the scheduler's live loop reacts to
// job submissions without waiting for the ticker.
func TestRunLoopBindsOnWatchEvent(t *testing.T) {
	st := state.New()
	node(t, st, "live", 5, 0.1)
	fw := NewFramework(MetaScore{Scorer: mapScorer{"live": 1}}, DefaultFilters()...)
	s := New(st, fw)
	s.Interval = time.Hour // force the watch path, not the ticker

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		s.Run(ctx)
		close(done)
	}()
	// Give the loop a moment to install its watcher.
	time.Sleep(20 * time.Millisecond)

	if err := st.SubmitJob(job("evt", 0, 0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, _, _ := st.Jobs.Get("evt")
		if j.Status.Phase == api.JobScheduled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch-driven scheduling never happened")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("scheduler loop did not stop")
	}
}

func TestRandomPickerSkipScore(t *testing.T) {
	st := state.New()
	node(t, st, "a", 5, 0.1)
	fw := &Framework{
		Filters: DefaultFilters(),
		Picker:  &RandomPicker{Rng: rand.New(rand.NewSource(2)), SkipScore: true},
	}
	pick, err := fw.Select(job("j", 0, 0), st.Nodes.List())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(pick.Score) {
		t.Fatalf("SkipScore picker returned score %v, want NaN", pick.Score)
	}
	if pick.Node != "a" {
		t.Fatalf("picked %s", pick.Node)
	}
}

func TestRandomPickerEmptyFeasible(t *testing.T) {
	p := &RandomPicker{Rng: rand.New(rand.NewSource(1))}
	if _, err := p.Pick(api.QuantumJob{}, nil, nil); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func TestFrameworkNilPickerDefaultsToLowest(t *testing.T) {
	st := state.New()
	node(t, st, "a", 5, 0.1)
	node(t, st, "b", 5, 0.1)
	fw := &Framework{
		Filters: DefaultFilters(),
		Scorer:  MetaScore{Scorer: mapScorer{"a": 2, "b": 1}},
		// Picker left nil on purpose.
	}
	pick, err := fw.Select(job("j", 0, 0), st.Nodes.List())
	if err != nil {
		t.Fatal(err)
	}
	if pick.Node != "b" {
		t.Fatalf("nil picker chose %s, want lowest-score b", pick.Node)
	}
}

func TestNilScorerScoresZero(t *testing.T) {
	st := state.New()
	node(t, st, "a", 5, 0.1)
	fw := NewFramework(nil, DefaultFilters()...)
	pick, err := fw.Select(job("j", 0, 0), st.Nodes.List())
	if err != nil {
		t.Fatal(err)
	}
	if pick.Score != 0 {
		t.Fatalf("nil scorer gave %v", pick.Score)
	}
}

func TestMetaScoreWithoutScorerErrors(t *testing.T) {
	st := state.New()
	node(t, st, "a", 5, 0.1)
	fw := NewFramework(MetaScore{}, DefaultFilters()...)
	if _, err := fw.Select(job("j", 0, 0), st.Nodes.List()); err == nil {
		t.Fatal("MetaScore without a scorer must fail")
	}
}

func TestScheduleOneWithoutFramework(t *testing.T) {
	s := &Scheduler{State: state.New()}
	if err := s.ScheduleOne(api.QuantumJob{}); err == nil {
		t.Fatal("nil framework accepted")
	}
}
