package sched

import (
	"fmt"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
)

// tenantJob creates a pending job owned by a tenant with a controlled
// creation sequence number (FIFO position), bypassing SubmitJob so tests
// fully control arrival order.
func tenantJob(t *testing.T, st *state.Cluster, name, tenant string, seq int, base time.Time) {
	t.Helper()
	j := api.QuantumJob{
		ObjectMeta: api.ObjectMeta{Name: name, CreatedAt: base.Add(time.Duration(seq) * time.Millisecond)},
		Spec: api.JobSpec{
			Tenant:         tenant,
			QASM:           "OPENQASM 2.0;\nqreg q[2];\nh q[0];",
			Strategy:       api.StrategyFidelity,
			TargetFidelity: 1,
		},
		Status: api.JobStatus{Phase: api.JobPending},
	}
	if _, err := st.Jobs.Create(j); err != nil {
		t.Fatal(err)
	}
}

// driveBindSequence runs scheduling passes against a single one-slot node
// until total jobs have been bound, retiring each bound job immediately so
// the slot frees for the next pass. The returned slice is the exact bind
// order — the observable the fairness contract is stated over.
func driveBindSequence(t *testing.T, st *state.Cluster, s *Scheduler, total int) []string {
	t.Helper()
	var seq []string
	for len(seq) < total {
		if n := s.SchedulePass(); n != 1 {
			t.Fatalf("pass bound %d jobs after %v (want 1 per pass on the one-slot node)", n, seq)
		}
		bound := st.Jobs.ListFunc(func(j api.QuantumJob) bool { return j.Status.Phase == api.JobScheduled })
		if len(bound) != 1 {
			t.Fatalf("%d jobs in Scheduled after a pass", len(bound))
		}
		j := bound[0]
		seq = append(seq, j.Name)
		if _, _, err := st.Jobs.Update(j.Name, func(j api.QuantumJob) (api.QuantumJob, error) {
			j.Status.Phase = api.JobSucceeded
			return j, nil
		}); err != nil {
			t.Fatal(err)
		}
		st.ReleaseNode(j.Status.Node, j.Name)
	}
	return seq
}

func fairTestScheduler(t *testing.T, st *state.Cluster) *Scheduler {
	t.Helper()
	s := New(st, NewFramework(nil, DefaultFilters()...))
	s.Concurrency = 4
	t.Cleanup(s.Stop)
	return s
}

// TestFairShareTwoTenantsTenToOne is the headline fairness contract: two
// tenants with equal weights submit at a 10:1 rate, yet while both are
// backlogged each receives ~50% of the binds. The flood tenant cannot
// starve the trickle tenant.
func TestFairShareTwoTenantsTenToOne(t *testing.T) {
	st := state.New()
	node(t, st, "dev", 4, 0.1)
	base := time.Now()
	// Arrival pattern: ten alice jobs, then one bob job, repeated — the
	// 10:1 submission rate, all backlogged before scheduling starts.
	seq := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 10; i++ {
			tenantJob(t, st, fmt.Sprintf("alice-%d-%d", round, i), "alice", seq, base)
			seq++
		}
		tenantJob(t, st, fmt.Sprintf("bob-%d", round), "bob", seq, base)
		seq++
	}
	s := fairTestScheduler(t, st)

	// While bob still has backlog (5 jobs), binds alternate: the first 10
	// binds split 50/50 despite the 10:1 queue contents.
	binds := driveBindSequence(t, st, s, 10)
	bob := 0
	for _, name := range binds {
		if name[:3] == "bob" {
			bob++
		}
	}
	if bob < 4 || bob > 6 { // ~50% ±10%
		t.Fatalf("bob got %d of the first 10 binds, want ~5 (sequence %v)", bob, binds)
	}
	// Within each tenant, order stayed FIFO.
	assertSubsequenceFIFO(t, binds, "alice-0-0", "alice-0-1", "alice-0-2")
	assertSubsequenceFIFO(t, binds, "bob-0", "bob-1", "bob-2")
}

// TestFairShareWeights checks the weighted split: weight 3 vs 1 yields a
// 3:1 bind share while both tenants are backlogged.
func TestFairShareWeights(t *testing.T) {
	st := state.New()
	node(t, st, "dev", 4, 0.1)
	base := time.Now()
	for i := 0; i < 12; i++ {
		tenantJob(t, st, fmt.Sprintf("heavy-%02d", i), "heavy", i*2, base)
		tenantJob(t, st, fmt.Sprintf("light-%02d", i), "light", i*2+1, base)
	}
	s := fairTestScheduler(t, st)
	s.TenantWeights = map[string]int{"heavy": 3, "light": 1}

	binds := driveBindSequence(t, st, s, 12)
	heavy := 0
	for _, name := range binds {
		if name[:5] == "heavy" {
			heavy++
		}
	}
	if heavy != 9 {
		t.Fatalf("heavy got %d of 12 binds, want 9 (3:1 weights; sequence %v)", heavy, binds)
	}
}

// TestSingleTenantBatchedKeepsFIFO pins the paper-faithful degenerate
// case: with one tenant, the batched scheduler binds in the exact global
// FIFO order the pre-tenancy scheduler used.
func TestSingleTenantBatchedKeepsFIFO(t *testing.T) {
	st := state.New()
	node(t, st, "dev", 4, 0.1)
	base := time.Now()
	want := make([]string, 8)
	for i := range want {
		want[i] = fmt.Sprintf("solo-%02d", i)
		tenantJob(t, st, want[i], "solo", i, base)
	}
	s := fairTestScheduler(t, st)
	binds := driveBindSequence(t, st, s, len(want))
	for i := range want {
		if binds[i] != want[i] {
			t.Fatalf("bind order %v, want FIFO %v", binds, want)
		}
	}
}

// TestSerialPathIgnoresFairQueue pins the second degenerate case: with
// Concurrency == 1 the scheduler stays strict global FIFO even across
// tenants — the paper's serial architecture is untouched by tenancy.
func TestSerialPathIgnoresFairQueue(t *testing.T) {
	st := state.New()
	node(t, st, "dev", 4, 0.1)
	base := time.Now()
	var want []string
	for round := 0; round < 3; round++ {
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("flood-%d-%d", round, i)
			tenantJob(t, st, name, "flood", len(want), base)
			want = append(want, name)
		}
		name := fmt.Sprintf("drip-%d", round)
		tenantJob(t, st, name, "drip", len(want), base)
		want = append(want, name)
	}
	s := New(st, NewFramework(nil, DefaultFilters()...))
	t.Cleanup(s.Stop)
	s.Concurrency = 1
	s.TenantWeights = map[string]int{"drip": 100}
	binds := driveBindSequence(t, st, s, len(want))
	for i := range want {
		if binds[i] != want[i] {
			t.Fatalf("serial bind order %v, want strict FIFO %v", binds, want)
		}
	}
}

// TestFairOrderSmoothInterleave unit-tests the SWRR sequence shape: with
// weights 3:1 the heavy tenant never takes more than three consecutive
// slots (the "smooth" property nginx WRR is chosen for).
func TestFairOrderSmoothInterleave(t *testing.T) {
	st := state.New()
	base := time.Now()
	for i := 0; i < 8; i++ {
		tenantJob(t, st, fmt.Sprintf("a-%02d", i), "tenant-a", i*2, base)
		tenantJob(t, st, fmt.Sprintf("b-%02d", i), "tenant-b", i*2+1, base)
	}
	s := New(st, nil)
	t.Cleanup(s.Stop)
	s.TenantWeights = map[string]int{"tenant-a": 3, "tenant-b": 1}
	order := s.fairOrder(st.PendingJobs())
	if len(order) != 16 {
		t.Fatalf("fairOrder returned %d jobs, want 16", len(order))
	}
	run := 0
	for _, j := range order {
		if j.Spec.Tenant == "tenant-a" {
			run++
			if run > 3 {
				t.Fatalf("tenant-a took %d consecutive slots with weight 3: %v", run, names(order))
			}
		} else {
			run = 0
		}
	}
}

func names(jobs []api.QuantumJob) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.Name
	}
	return out
}

// assertSubsequenceFIFO checks the given names appear in order within seq.
func assertSubsequenceFIFO(t *testing.T, seq []string, want ...string) {
	t.Helper()
	i := 0
	for _, name := range seq {
		if i < len(want) && name == want[i] {
			i++
		}
	}
	if i != len(want) {
		t.Fatalf("sequence %v does not contain %v in FIFO order", seq, want)
	}
}

// TestDispatchRespectsMaxActiveQuota: the scheduler enforces the
// MaxActive bound at dispatch time — a burst admitted while the tenant
// was idle binds at most MaxActive jobs, and capacity frees up binds
// one-for-one as active jobs finish.
func TestDispatchRespectsMaxActiveQuota(t *testing.T) {
	st := state.New()
	for i := 0; i < 4; i++ {
		node(t, st, fmt.Sprintf("dev-%d", i), 4, 0.1)
	}
	base := time.Now()
	for i := 0; i < 4; i++ {
		tenantJob(t, st, fmt.Sprintf("burst-%d", i), "capped", i, base)
	}
	s := New(st, NewFramework(nil, DefaultFilters()...))
	t.Cleanup(s.Stop)
	s.Concurrency = 4
	s.TenantQuotas = api.TenantQuotaPolicy{
		Tenants: map[string]api.TenantQuota{"capped": {MaxActive: 2}},
	}

	if n := s.SchedulePass(); n != 2 {
		t.Fatalf("first pass bound %d jobs, want 2 (MaxActive)", n)
	}
	// At the cap: nothing more binds even with free nodes and backlog.
	if n := s.SchedulePass(); n != 0 {
		t.Fatalf("pass at the active cap bound %d jobs, want 0", n)
	}
	if u := st.TenantUsage("capped"); u.Active != 2 || u.Pending != 2 {
		t.Fatalf("usage at cap: %+v", u)
	}
	// Finish one active job: exactly one slot of budget returns.
	done := st.Jobs.ListFunc(func(j api.QuantumJob) bool { return j.Status.Phase == api.JobScheduled })[0]
	if _, _, err := st.Jobs.Update(done.Name, func(j api.QuantumJob) (api.QuantumJob, error) {
		j.Status.Phase = api.JobSucceeded
		return j, nil
	}); err != nil {
		t.Fatal(err)
	}
	st.ReleaseNode(done.Status.Node, done.Name)
	if n := s.SchedulePass(); n != 1 {
		t.Fatalf("pass after one finish bound %d jobs, want 1", n)
	}
}
