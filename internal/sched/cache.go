package sched

import (
	"sort"
	"sync"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/store"
)

const (
	// defaultFleetResync is the level-triggered fallback cadence: even if
	// every watch event were dropped, the cache re-Lists the store at least
	// this often, so a stale view self-heals within one resync interval.
	defaultFleetResync = time.Second
	// fleetWatchBuffer sizes the node watch channel. Node churn between two
	// scheduler passes (binds, releases, heartbeats) is orders of magnitude
	// below this on the paper's 100-device fleet; overflow just falls back
	// to the resync path.
	fleetWatchBuffer = 1024
)

// fleetCache is the scheduler's snapshot of the node fleet, maintained
// from store watch events instead of a full Nodes.List() deep copy on
// every pass. It is pull-based: snapshot() drains whatever events have
// accumulated and applies them, so the cache needs no goroutine of its own
// and works for both the live Run loop and tests driving SchedulePass
// directly. Dropped watch events (the store's slow-consumer contract) are
// healed by a periodic re-List — level-triggered reconciliation; in
// between, BindJob's own capacity check remains the authoritative guard,
// so a transiently stale view can only waste a candidate attempt, never
// overcommit a node.
type fleetCache struct {
	mu       sync.Mutex
	src      *store.Store[api.Node]
	nodes    map[string]api.Node
	versions map[string]int64
	events   <-chan store.WatchEvent[api.Node]
	cancel   func()
	lastList time.Time
	// epoch advances whenever fleet MEMBERSHIP changes (a node appears or
	// disappears) — not on status churn. The rank-reuse dispatcher keys
	// its cross-pass ranking cache on it: static filters/scorers produce
	// the same ranking until the node set itself changes.
	epoch uint64
	// sortedNames is the name-ordered member list, rebuilt lazily when
	// sortedEpoch falls behind epoch — so steady-state snapshots fill the
	// output by map lookup instead of re-sorting the whole fleet on every
	// scheduler pass.
	sortedNames []string
	sortedEpoch uint64
}

// snapshot returns the current fleet view, name-ordered, plus the
// membership epoch it reflects. The returned nodes are shared read-only
// copies: callers must not mutate them (the filter/score pipeline never
// does). now is the caller's clock reading — virtual time under the
// simulator — used only for the periodic re-List cadence.
func (f *fleetCache) snapshot(src *store.Store[api.Node], resync time.Duration, now time.Time) ([]api.Node, uint64) {
	if resync <= 0 {
		resync = defaultFleetResync
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.events == nil || f.src != src {
		if f.cancel != nil {
			f.cancel()
		}
		// A different source store has its own version space: drop the old
		// view entirely so relist's keep-if-current check and apply's
		// version guard can't compare versions across stores.
		f.src = src
		f.nodes = nil
		f.versions = nil
		f.events, f.cancel = src.Watch(fleetWatchBuffer)
		f.relist(now)
	} else {
		f.drain()
		if now.Sub(f.lastList) >= resync {
			f.relist(now)
		}
	}
	if f.sortedNames == nil || f.sortedEpoch != f.epoch {
		f.sortedNames = make([]string, 0, len(f.nodes))
		for name := range f.nodes {
			f.sortedNames = append(f.sortedNames, name)
		}
		sort.Strings(f.sortedNames)
		f.sortedEpoch = f.epoch
	}
	out := make([]api.Node, len(f.sortedNames))
	for i, name := range f.sortedNames {
		out[i] = f.nodes[name]
	}
	return out, f.epoch
}

// drain applies every buffered watch event. Per-key versions are monotone
// on the store's merged stream, and the version guard additionally ignores
// events older than what a re-List already installed.
func (f *fleetCache) drain() {
	for {
		select {
		case ev, ok := <-f.events:
			if !ok {
				f.events = nil
				return
			}
			f.apply(ev)
		default:
			return
		}
	}
}

func (f *fleetCache) apply(ev store.WatchEvent[api.Node]) {
	name := ev.Object.Name
	if v, ok := f.versions[name]; ok && ev.Version <= v {
		return
	}
	if ev.Type == store.Deleted {
		if _, ok := f.versions[name]; ok {
			f.epoch++
		}
		delete(f.nodes, name)
		delete(f.versions, name)
		return
	}
	if _, ok := f.versions[name]; !ok {
		f.epoch++
	}
	f.nodes[name] = ev.Object
	f.versions[name] = ev.Version
}

// relist rebuilds the view from the store — the level-triggered fallback.
// Entries whose cached version is already at least the stored version keep
// their cached copy, so a steady-state relist copies nothing.
func (f *fleetCache) relist(now time.Time) {
	nodes := make(map[string]api.Node, len(f.nodes))
	versions := make(map[string]int64, len(f.versions))
	f.src.Range(func(n api.Node, v int64) bool {
		if _, known := f.versions[n.Name]; !known {
			f.epoch++
		}
		if cur, ok := f.versions[n.Name]; ok && cur >= v {
			nodes[n.Name] = f.nodes[n.Name]
			versions[n.Name] = cur
			return true
		}
		nodes[n.Name] = n.DeepCopy()
		versions[n.Name] = v
		return true
	})
	if len(versions) != len(f.versions) {
		// At least one previously-known node vanished from the store.
		f.epoch++
	}
	f.nodes, f.versions = nodes, versions
	f.lastList = now
}

// stop cancels the watch and clears the view; the next snapshot starts
// fresh. Called when the scheduler's Run loop exits so an abandoned
// scheduler leaves no watcher registered on the store.
func (f *fleetCache) stop() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cancel != nil {
		f.cancel()
	}
	f.src = nil
	f.nodes = nil
	f.versions = nil
	f.events = nil
	f.cancel = nil
	f.sortedNames = nil
	f.lastList = time.Time{}
}
