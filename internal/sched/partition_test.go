package sched

import (
	"fmt"
	"sync"
	"testing"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/obs"
)

func TestPartitionCoversQueueExactlyOnce(t *testing.T) {
	const replicas = 4
	parts := make([]*Partition, replicas)
	for i := range parts {
		p, err := NewPartition(replicas, i)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}
	// Every job has exactly one home replica, and shards are populated
	// (fnv spreads 200 names over 4 shards comfortably).
	perShard := make([]int, replicas)
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("job-%d", i)
		owners := 0
		for r, p := range parts {
			if p.Owns(name) {
				owners++
				perShard[r]++
			}
		}
		if owners != 1 {
			t.Fatalf("%s has %d owners", name, owners)
		}
	}
	for r, n := range perShard {
		if n == 0 {
			t.Fatalf("shard %d owns no jobs of 200", r)
		}
	}
}

func TestPartitionTakeover(t *testing.T) {
	p, err := NewPartition(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Owned(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("initial ownership = %v", got)
	}
	// Find a job homed on shard 1: before takeover it is not ours,
	// after Assume(1) it is, after Drop(1) it is not again.
	name := ""
	for i := 0; name == ""; i++ {
		if n := fmt.Sprintf("job-%d", i); p.Shard(n) == 1 {
			name = n
		}
	}
	if p.Owns(name) {
		t.Fatalf("%s owned before takeover", name)
	}
	p.Assume(1)
	if !p.Owns(name) {
		t.Fatalf("%s not owned after Assume", name)
	}
	if got := p.Owned(); len(got) != 2 {
		t.Fatalf("ownership after Assume = %v", got)
	}
	p.Drop(1)
	if p.Owns(name) {
		t.Fatalf("%s still owned after Drop", name)
	}
	// Nil partition owns everything (single-replica default).
	var nilPart *Partition
	if !nilPart.Owns(name) {
		t.Fatal("nil partition must own everything")
	}
}

func TestPartitionRejectsBadConfig(t *testing.T) {
	if _, err := NewPartition(0, 0); err == nil {
		t.Fatal("0 replicas accepted")
	}
	if _, err := NewPartition(MaxPartitionReplicas+1, 0); err == nil {
		t.Fatal("over-wide partition accepted")
	}
	if _, err := NewPartition(4, 4); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// TestReplicasBindExactlyOnce races partitioned optimistic replicas over
// one shared pending queue until it drains: every job must be bound
// exactly once, and the per-replica conflict counters must account for
// every lost race (they may be zero — partitioning avoids contention —
// but never negative progress).
func TestReplicasBindExactlyOnce(t *testing.T) {
	const replicas = 4
	const jobs = 120
	st := state.New()
	for i := 0; i < replicas; i++ {
		name := fmt.Sprintf("dev-%d", i)
		node(t, st, name, 5, 0.1)
		// Enough container slots that the whole queue fits on the fleet.
		if _, _, err := st.Nodes.Update(name, func(n api.Node) (api.Node, error) {
			n.Spec.MaxContainers = jobs / replicas
			return n, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < jobs; i++ {
		if err := st.SubmitJob(job(fmt.Sprintf("job-%d", i), 0, 0)); err != nil {
			t.Fatal(err)
		}
	}

	scheds := make([]*Scheduler, replicas)
	for i := range scheds {
		p, err := NewPartition(replicas, i)
		if err != nil {
			t.Fatal(err)
		}
		s := New(st, NewFramework(nil, DefaultFilters()...))
		s.Concurrency = 8
		s.Partition = p
		s.OptimisticBind = true
		s.Metrics = NewMetrics(obs.NewRegistry())
		scheds[i] = s
	}
	defer func() {
		for _, s := range scheds {
			s.Stop()
		}
	}()

	var wg sync.WaitGroup
	for _, s := range scheds {
		wg.Add(1)
		go func(s *Scheduler) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.SchedulePass()
				if st.PendingCount() == 0 {
					return
				}
			}
		}(s)
	}
	wg.Wait()

	if n := st.PendingCount(); n != 0 {
		t.Fatalf("%d jobs still pending", n)
	}
	// Exactly-once: every job Scheduled, and node RunningJobs lists sum
	// to the job count with no duplicates.
	seen := map[string]bool{}
	for i := 0; i < replicas; i++ {
		n, _, err := st.Nodes.Get(fmt.Sprintf("dev-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range n.Status.RunningJobs {
			if seen[j] {
				t.Fatalf("job %s bound to more than one node", j)
			}
			seen[j] = true
		}
	}
	if len(seen) != jobs {
		t.Fatalf("%d jobs bound, want %d", len(seen), jobs)
	}
	for i := 0; i < jobs; i++ {
		j, _, err := st.Jobs.Get(fmt.Sprintf("job-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if j.Status.Phase != api.JobScheduled {
			t.Fatalf("%s phase = %s", j.Name, j.Status.Phase)
		}
	}
}
