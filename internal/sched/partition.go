package sched

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// MaxPartitionReplicas bounds a partition's replica count: shard
// ownership is an atomic 64-bit mask, which is plenty — replicas are
// whole scheduler processes, not worker goroutines.
const MaxPartitionReplicas = 64

// Partition splits the pending queue among scheduler replicas by stable
// hash: shard(job) = fnv32a(name) mod Replicas, and a replica drains only
// the shards it owns. Replicas therefore mostly don't contend — each
// job has exactly one home replica — while BindJobAt's version check
// remains the correctness guard for the moments they do (takeover races,
// a replica binding from a stale snapshot).
//
// Ownership starts as the replica's own index and grows by Assume when a
// peer is lost (takeover on replica loss): whoever the deployment's
// health layer elects calls Assume(deadIndex) and the orphaned shard's
// jobs flow on the next pass. Owns and Assume are safe for concurrent
// use — ownership is one atomic mask — so a health watcher can reassign
// shards while passes are mid-flight.
//
// A nil *Partition owns every job: the single-replica deployments that
// never construct one keep exactly their old behaviour.
type Partition struct {
	replicas uint32
	owned    atomic.Uint64 // bit i set ⇒ this replica drains shard i
}

// NewPartition returns replica index's share of an N-way partition.
func NewPartition(replicas, index int) (*Partition, error) {
	if replicas < 1 || replicas > MaxPartitionReplicas {
		return nil, fmt.Errorf("sched: partition needs 1..%d replicas, got %d", MaxPartitionReplicas, replicas)
	}
	if index < 0 || index >= replicas {
		return nil, fmt.Errorf("sched: replica index %d outside 0..%d", index, replicas-1)
	}
	p := &Partition{replicas: uint32(replicas)}
	p.owned.Store(1 << uint(index))
	return p, nil
}

// Shard returns the job's home shard index.
func (p *Partition) Shard(jobName string) int {
	h := fnv.New32a()
	h.Write([]byte(jobName))
	return int(h.Sum32() % p.replicas)
}

// Owns reports whether this replica currently drains the job's shard.
// A nil partition owns everything.
func (p *Partition) Owns(jobName string) bool {
	if p == nil {
		return true
	}
	return p.owned.Load()&(1<<uint(p.Shard(jobName))) != 0
}

// Assume adds a shard to this replica's ownership — the takeover step
// after a peer replica is declared lost. Out-of-range indexes are
// ignored. Idempotent.
func (p *Partition) Assume(index int) {
	if index < 0 || index >= int(p.replicas) {
		return
	}
	for {
		old := p.owned.Load()
		if p.owned.CompareAndSwap(old, old|1<<uint(index)) {
			return
		}
	}
}

// Drop removes a shard from this replica's ownership — handing it back
// when the peer rejoins. Idempotent.
func (p *Partition) Drop(index int) {
	if index < 0 || index >= int(p.replicas) {
		return
	}
	for {
		old := p.owned.Load()
		if p.owned.CompareAndSwap(old, old&^(1<<uint(index))) {
			return
		}
	}
}

// Owned lists the shard indexes this replica currently drains.
func (p *Partition) Owned() []int {
	mask := p.owned.Load()
	var out []int
	for i := 0; i < int(p.replicas); i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}
