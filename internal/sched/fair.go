// Weighted fair queueing across tenants. The batched dispatcher no longer
// walks the pending backlog in raw global-FIFO order: jobs are grouped
// into per-tenant FIFO sub-queues and interleaved by smooth weighted
// round-robin (the nginx algorithm), so one tenant flooding the queue
// cannot starve the others — with equal weights, two backlogged tenants
// converge to a 50/50 share of binds regardless of their submission
// rates, and weights skew that share proportionally.
//
// The paper-faithful paths are untouched: with a single tenant the
// interleaving degenerates to the exact global FIFO order, and the serial
// scheduler (Concurrency == 1) never consults the fair queue at all.
package sched

import (
	"sort"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
)

// weightOf resolves a tenant's effective weight: a live TenantConfig
// override (set through PUT /v1/tenants/{name}, hot-reloaded) wins over
// the static flag configuration; missing or non-positive entries mean
// weight 1, so unconfigured tenants compete equally instead of being
// shut out.
func (s *Scheduler) weightOf(tenant string) int {
	if w, ok := s.State.TenantWeight(tenant); ok {
		return w
	}
	if w := s.TenantWeights[tenant]; w > 0 {
		return w
	}
	return 1
}

// quotaFor resolves a tenant's effective quota the same way: live
// override first, static policy second.
func (s *Scheduler) quotaFor(tenant string) api.TenantQuota {
	if cfg, ok := s.State.TenantConfig(tenant); ok {
		return cfg.Quota
	}
	return s.TenantQuotas.For(tenant)
}

// fairOrderer returns the pass's dispatch iterator: next(n) yields the
// next ≤n jobs in weighted-fair order (smooth weighted round-robin
// across tenants, FIFO within each tenant), nil when drained. The
// interleave is generated lazily — a pass that binds its Concurrency
// budget from the first chunk never pays to order the rest of a deep
// backlog. With zero or one tenant present the iterator serves slices of
// the input untouched — byte-identical to the pre-tenancy scheduler.
//
// The ordering runs on a scratch copy of the credit state: only a
// handful of binds may land this pass, so the persistent credits advance
// per *actual* bind (chargeBind, called by the binder) — that is what
// makes shares converge to the weight ratio across passes instead of
// resetting every pass.
func (s *Scheduler) fairOrderer(pending []api.QuantumJob) func(n int) []api.QuantumJob {
	// Single-tenant fast path: detected with a scan, no copies — the
	// dominant case must cost nothing over the pre-tenancy scheduler.
	multi := false
	for i := 1; i < len(pending); i++ {
		if state.TenantOf(&pending[i]) != state.TenantOf(&pending[0]) {
			multi = true
			break
		}
	}
	if !multi {
		s.passTenants = nil // single tenant: binds are never charged
		pos := 0
		return func(n int) []api.QuantumJob {
			if pos >= len(pending) || n <= 0 {
				return nil
			}
			end := pos + n
			if end > len(pending) {
				end = len(pending)
			}
			chunk := pending[pos:end]
			pos = end
			return chunk
		}
	}

	// Group into per-tenant sub-queues of indices (job structs are big;
	// only the emitted interleave copies them). The global snapshot is
	// already (CreatedAt, Name)-sorted, so each sub-queue inherits FIFO
	// order.
	queues := make(map[string][]int)
	tenants := make([]string, 0, 4)
	for i := range pending {
		t := state.TenantOf(&pending[i])
		if _, seen := queues[t]; !seen {
			tenants = append(tenants, t)
		}
		queues[t] = append(queues[t], i)
	}
	sort.Strings(tenants) // deterministic credit accrual and tie-breaks

	if s.wrrCredit == nil {
		s.wrrCredit = make(map[string]int)
	}
	// Drop credit for tenants with no backlog this pass: a drained (or
	// departed) tenant re-enters later on equal footing, and the map
	// stays bounded by the set of currently-backlogged tenants.
	for t := range s.wrrCredit {
		if _, ok := queues[t]; !ok {
			delete(s.wrrCredit, t)
		}
	}
	s.passTenants = tenants
	s.passTotalWeight = 0
	for _, t := range tenants {
		s.passTotalWeight += s.weightOf(t)
	}

	credit := make(map[string]int, len(tenants))
	for _, t := range tenants {
		credit[t] = s.wrrCredit[t]
	}
	heads := make(map[string]int, len(tenants))
	remaining := len(pending)
	return func(n int) []api.QuantumJob {
		if remaining == 0 || n <= 0 {
			return nil
		}
		if n > remaining {
			n = remaining
		}
		out := make([]api.QuantumJob, 0, n)
		for len(out) < n {
			total := 0
			for _, t := range tenants {
				if heads[t] < len(queues[t]) {
					total += s.weightOf(t)
				}
			}
			best := ""
			for _, t := range tenants {
				if heads[t] >= len(queues[t]) {
					continue
				}
				credit[t] += s.weightOf(t)
				if best == "" || credit[t] > credit[best] {
					best = t
				}
			}
			credit[best] -= total
			out = append(out, pending[queues[best][heads[best]]])
			heads[best]++
			remaining--
		}
		return out
	}
}

// fairOrder drains fairOrderer into one slice — the full pass order,
// used by tests pinning the interleave shape.
func (s *Scheduler) fairOrder(pending []api.QuantumJob) []api.QuantumJob {
	next := s.fairOrderer(pending)
	out := make([]api.QuantumJob, 0, len(pending))
	for chunk := next(len(pending)); chunk != nil; chunk = next(len(pending)) {
		out = append(out, chunk...)
	}
	return out
}

// capActiveBudget enforces the MaxActive quota bound at dispatch time:
// each tenant contributes at most (MaxActive − currently active) jobs to
// the pass, so a burst admitted while the tenant was idle cannot bind
// past the cap. With no active bounds configured the input is returned
// untouched — the pre-tenancy scheduler's exact behaviour.
func (s *Scheduler) capActiveBudget(pending []api.QuantumJob) []api.QuantumJob {
	if len(pending) == 0 || !s.hasActiveBound() {
		return pending
	}
	budget := make(map[string]int)
	kept := pending[:0]
	for i := range pending {
		t := state.TenantOf(&pending[i])
		b, ok := budget[t]
		if !ok {
			if max := s.quotaFor(t).MaxActive; max <= 0 {
				b = -1 // unlimited
			} else {
				b = max - s.State.TenantUsage(t).Active
				if b < 0 {
					b = 0
				}
			}
		}
		if b == 0 {
			budget[t] = b
			continue
		}
		if b > 0 {
			b--
		}
		budget[t] = b
		kept = append(kept, pending[i])
	}
	return kept
}

// hasActiveBound reports whether any configured quota — static or live
// override — caps active jobs.
func (s *Scheduler) hasActiveBound() bool {
	if s.TenantQuotas.Default.MaxActive > 0 {
		return true
	}
	for _, q := range s.TenantQuotas.Tenants {
		if q.MaxActive > 0 {
			return true
		}
	}
	return s.State.HasActiveQuotaOverride()
}

// chargeBind settles one actual bind against the persistent SWRR state:
// every backlogged tenant accrues its weight, the tenant that got the
// bind pays the full round. A tenant whose head job kept failing to bind
// therefore accumulates credit and goes first in later passes.
func (s *Scheduler) chargeBind(job *api.QuantumJob) {
	if len(s.passTenants) <= 1 {
		return
	}
	for _, t := range s.passTenants {
		s.wrrCredit[t] += s.weightOf(t)
	}
	s.wrrCredit[state.TenantOf(job)] -= s.passTotalWeight
}
