// Package sched implements the QRIO Scheduler (§3.5): a Kubernetes-style
// scheduling framework with pluggable Filter and Score stages. Filtering
// compares node labels against the job's requested characteristics
// (Fig. 10's experiment); ranking asks the Meta Server for a per-device
// score and binds the job to the lowest-scoring feasible node.
package sched

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"qrio/internal/cluster/api"
)

// FilterPlugin decides whether a node can host a job at all.
type FilterPlugin interface {
	Name() string
	// Filter returns ok=false with a human-readable reason.
	Filter(job api.QuantumJob, node api.Node) (bool, string)
}

// ScorePlugin ranks a feasible node for a job; lower scores are better
// (QRIO's convention — the Meta Server returns costs/fidelity misses).
type ScorePlugin interface {
	Name() string
	Score(job api.QuantumJob, node api.Node) (float64, error)
}

// NodeScore pairs a node with its score.
type NodeScore struct {
	Node  string
	Score float64
}

// Picker chooses the target node among feasible candidates. score lazily
// evaluates a node (so baselines that ignore scores don't pay for them).
type Picker interface {
	Name() string
	Pick(job api.QuantumJob, feasible []api.Node, score func(api.Node) (float64, error)) (NodeScore, error)
}

// Framework runs the filter → score → pick pipeline.
type Framework struct {
	Filters []FilterPlugin
	Scorer  ScorePlugin
	Picker  Picker
	// ScoreParallelism bounds concurrent Score calls across ALL Rank
	// invocations sharing this framework — the batched scheduler ranks
	// many jobs at once, and without a global bound the per-job pools
	// would multiply into jobs×workers simultaneous simulations. 0 means
	// GOMAXPROCS; 1 scores serially. Set it before the first Rank call.
	// Select always scores serially, preserving the paper's behaviour.
	ScoreParallelism int

	semOnce  sync.Once
	scoreSem chan struct{}
}

// scoreSlots returns the framework-wide scoring semaphore, sized on first
// use from ScoreParallelism.
func (f *Framework) scoreSlots() chan struct{} {
	f.semOnce.Do(func() {
		n := f.ScoreParallelism
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		f.scoreSem = make(chan struct{}, n)
	})
	return f.scoreSem
}

// NewFramework assembles a framework with the default lowest-score picker.
func NewFramework(scorer ScorePlugin, filters ...FilterPlugin) *Framework {
	return &Framework{Filters: filters, Scorer: scorer, Picker: LowestScore{}}
}

// FilterNodes returns the feasible nodes and, for the rest, the reason the
// first failing plugin gave.
func (f *Framework) FilterNodes(job api.QuantumJob, nodes []api.Node) ([]api.Node, map[string]string) {
	feasible := make([]api.Node, 0, len(nodes))
	rejected := make(map[string]string)
	for _, n := range nodes {
		ok := true
		for _, p := range f.Filters {
			if pass, reason := p.Filter(job, n); !pass {
				rejected[n.Name] = fmt.Sprintf("%s: %s", p.Name(), reason)
				ok = false
				break
			}
		}
		if ok {
			feasible = append(feasible, n)
		}
	}
	sort.Slice(feasible, func(i, j int) bool { return feasible[i].Name < feasible[j].Name })
	return feasible, rejected
}

// Select runs the full pipeline and returns the chosen node.
func (f *Framework) Select(job api.QuantumJob, nodes []api.Node) (NodeScore, error) {
	feasible, rejected := f.FilterNodes(job, nodes)
	if len(feasible) == 0 {
		return NodeScore{}, &UnschedulableError{Job: job.Name, Rejected: rejected}
	}
	picker := f.Picker
	if picker == nil {
		picker = LowestScore{}
	}
	scoreFn := func(n api.Node) (float64, error) {
		if f.Scorer == nil {
			return 0, nil
		}
		return f.Scorer.Score(job, n)
	}
	return picker.Pick(job, feasible, scoreFn)
}

// Rank runs filtering and then scores every feasible node — concurrently,
// bounded by ScoreParallelism — returning candidates sorted best-first
// (score ascending, deterministic tie-break on node name). Nodes whose
// scoring fails are skipped, like LowestScore does. This is the batched
// dispatcher's primitive: the greedy binder walks the ranking until a node
// with a free container slot accepts the job.
func (f *Framework) Rank(job api.QuantumJob, nodes []api.Node) ([]NodeScore, error) {
	feasible, rejected := f.FilterNodes(job, nodes)
	if len(feasible) == 0 {
		return nil, &UnschedulableError{Job: job.Name, Rejected: rejected}
	}
	scores := make([]float64, len(feasible))
	errs := make([]error, len(feasible))
	if f.Scorer == nil {
		// All-zero scores: the ranking degenerates to name order.
	} else {
		sem := f.scoreSlots()
		var wg sync.WaitGroup
		for i := range feasible {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				scores[i], errs[i] = f.Scorer.Score(job, feasible[i])
			}(i)
		}
		wg.Wait()
	}
	ranked := make([]NodeScore, 0, len(feasible))
	var firstErr error
	for i, n := range feasible {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("sched: scoring %s for %s: %w", n.Name, job.Name, errs[i])
			}
			continue
		}
		ranked = append(ranked, NodeScore{Node: n.Name, Score: scores[i]})
	}
	if len(ranked) == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("sched: no nodes scored for %s", job.Name)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score < ranked[j].Score
		}
		return ranked[i].Node < ranked[j].Node
	})
	return ranked, nil
}

// UnschedulableError reports that no node passed filtering — the paper's
// "the user's job is not fit for scheduling in the cluster" outcome.
type UnschedulableError struct {
	Job      string
	Rejected map[string]string
}

func (e *UnschedulableError) Error() string {
	return fmt.Sprintf("sched: job %s unschedulable (%d nodes rejected)", e.Job, len(e.Rejected))
}

// HTTPStatus implements httpx.StatusCoder: unschedulable jobs map to 422
// with the "unschedulable" envelope code.
func (e *UnschedulableError) HTTPStatus() (int, string) { return 422, "unschedulable" }

// LowestScore scores every feasible node and picks the minimum
// (deterministic tie-break on name) — QRIO's default ranking behaviour.
type LowestScore struct{}

// Name implements Picker.
func (LowestScore) Name() string { return "LowestScore" }

// Pick implements Picker.
func (LowestScore) Pick(job api.QuantumJob, feasible []api.Node, score func(api.Node) (float64, error)) (NodeScore, error) {
	best := NodeScore{Score: math.Inf(1)}
	var firstErr error
	scored := 0
	for _, n := range feasible {
		s, err := score(n)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("sched: scoring %s for %s: %w", n.Name, job.Name, err)
			}
			continue
		}
		scored++
		if s < best.Score || (s == best.Score && n.Name < best.Node) {
			best = NodeScore{Node: n.Name, Score: s}
		}
	}
	if scored == 0 {
		if firstErr != nil {
			return NodeScore{}, firstErr
		}
		return NodeScore{}, fmt.Errorf("sched: no nodes scored for %s", job.Name)
	}
	return best, nil
}

// RandomPicker is the paper's baseline scheduler (§4.2): it picks a
// feasible node uniformly at random, then reports that node's score so
// experiments can compare against QRIO's choice.
type RandomPicker struct {
	Rng *rand.Rand
	// SkipScore leaves Score as NaN instead of evaluating the choice.
	SkipScore bool
}

// Name implements Picker.
func (p *RandomPicker) Name() string { return "Random" }

// Pick implements Picker.
func (p *RandomPicker) Pick(job api.QuantumJob, feasible []api.Node, score func(api.Node) (float64, error)) (NodeScore, error) {
	if len(feasible) == 0 {
		return NodeScore{}, fmt.Errorf("sched: random picker has no candidates")
	}
	n := feasible[p.Rng.Intn(len(feasible))]
	if p.SkipScore {
		return NodeScore{Node: n.Name, Score: math.NaN()}, nil
	}
	s, err := score(n)
	if err != nil {
		return NodeScore{Node: n.Name, Score: math.NaN()}, nil
	}
	return NodeScore{Node: n.Name, Score: s}, nil
}
