package sched

import (
	"fmt"
	"sync"
	"time"

	"qrio/internal/clock"
	"qrio/internal/cluster/api"
	"qrio/internal/meta"
	"qrio/internal/resilience"
)

// Degraded-score cache bounds: entries older than the staleness window
// never serve, and the cache prunes itself once it crosses the entry cap
// so a long outage with heavy churn cannot grow it without bound.
const (
	defaultMaxStale = 5 * time.Minute
	maxCacheEntries = 4096
)

// ResilientMetaScore wraps the Meta-Server scoring dependency in a
// circuit breaker so a dead scorer degrades scheduling instead of
// starving it. While the circuit is closed every score flows through the
// live scorer and is remembered; once consecutive failures open it,
// passes are served from the fallback chain without touching the
// dependency:
//
//  1. the stale cache entry for this exact (job, node) pair, if one was
//     scored within MaxStale;
//  2. the node's most recent score for any job within MaxStale (circuit
//     quality dominates the score far more than the job, so a
//     neighbouring job's score beats a blind guess);
//  3. a local heuristic from the node's calibration labels.
//
// After OpenTimeout the breaker admits half-open probes; the first
// successful probe closes it and live scoring resumes. OnDegraded fires
// once per open episode (not once per call), letting the scheduler emit
// a single SchedulingDegraded event per outage.
type ResilientMetaScore struct {
	// Scorer is the live dependency (required).
	Scorer meta.Scorer
	// Breaker guards the dependency; nil gets a zero-value breaker with
	// its defaults (5 consecutive failures, 5s cool-down, 1 probe).
	Breaker *resilience.Breaker
	// Clock bounds cache staleness (nil = wall clock).
	Clock clock.Clock
	// MaxStale caps how old a cached score may be and still serve a
	// degraded pass (default 5m).
	MaxStale time.Duration
	// OnDegraded, when set, is called once per breaker open episode the
	// first time a degraded score is served.
	OnDegraded func(detail string)

	mu       sync.Mutex
	breaker  *resilience.Breaker // resolved from Breaker on first use
	pairs    map[string]staleScore
	nodes    map[string]staleScore
	notified int64 // breaker episode OnDegraded last fired for
}

type staleScore struct {
	score float64
	at    time.Time
}

// Name implements ScorePlugin.
func (*ResilientMetaScore) Name() string { return "ResilientMetaScore" }

// Score implements ScorePlugin. Nodes are named after their backends, so
// the node name doubles as the backend key (same convention as
// MetaScore).
func (r *ResilientMetaScore) Score(j api.QuantumJob, n api.Node) (float64, error) {
	if r.Scorer == nil {
		return 0, fmt.Errorf("sched: ResilientMetaScore has no meta scorer")
	}
	br := r.circuit()
	if !br.Allow() {
		return r.degraded(j, n, nil)
	}
	score, err := r.Scorer.Score(j.Name, n.Name)
	br.Record(err)
	if err == nil {
		r.remember(j.Name, n.Name, score)
		return score, nil
	}
	return r.degraded(j, n, err)
}

// circuit resolves the breaker once so concurrent scoring shares one.
func (r *ResilientMetaScore) circuit() *resilience.Breaker {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.breaker == nil {
		if r.Breaker != nil {
			r.breaker = r.Breaker
		} else {
			r.breaker = &resilience.Breaker{Clock: r.Clock}
		}
	}
	return r.breaker
}

func (r *ResilientMetaScore) maxStale() time.Duration {
	if r.MaxStale > 0 {
		return r.MaxStale
	}
	return defaultMaxStale
}

func pairKey(job, node string) string { return job + "\x00" + node }

// remember stores a live score for degraded replay, pruning expired
// entries when the cache crosses its cap.
func (r *ResilientMetaScore) remember(job, node string, score float64) {
	now := clock.Now(r.Clock)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pairs == nil {
		r.pairs = make(map[string]staleScore)
		r.nodes = make(map[string]staleScore)
	}
	if len(r.pairs) >= maxCacheEntries {
		cutoff := now.Add(-r.maxStale())
		for k, v := range r.pairs {
			if v.at.Before(cutoff) {
				delete(r.pairs, k)
			}
		}
	}
	r.pairs[pairKey(job, node)] = staleScore{score: score, at: now}
	r.nodes[node] = staleScore{score: score, at: now}
}

// degraded serves the fallback chain; cause is the live error when the
// breaker admitted the call but the dependency failed.
func (r *ResilientMetaScore) degraded(j api.QuantumJob, n api.Node, cause error) (float64, error) {
	r.announce()
	now := clock.Now(r.Clock)
	r.mu.Lock()
	pair, okPair := r.pairs[pairKey(j.Name, n.Name)]
	node, okNode := r.nodes[n.Name]
	r.mu.Unlock()
	if okPair && now.Sub(pair.at) <= r.maxStale() {
		return pair.score, nil
	}
	if okNode && now.Sub(node.at) <= r.maxStale() {
		return node.score, nil
	}
	if score, ok := heuristicScore(n); ok {
		return score, nil
	}
	if cause == nil {
		cause = fmt.Errorf("meta scorer circuit open")
	}
	return 0, fmt.Errorf("sched: no degraded score for %s on %s: %w", j.Name, n.Name, cause)
}

// announce fires OnDegraded once per breaker open episode.
func (r *ResilientMetaScore) announce() {
	if r.OnDegraded == nil {
		return
	}
	ep := r.circuit().Opens()
	r.mu.Lock()
	if ep == r.notified {
		r.mu.Unlock()
		return
	}
	r.notified = ep
	r.mu.Unlock()
	r.OnDegraded(fmt.Sprintf(
		"meta scorer unavailable (outage %d): scheduling on cached/heuristic scores", ep))
}

// heuristicScore approximates a meta score from the node's calibration
// labels when no live or cached score exists. The weighting mirrors what
// dominates fidelity loss on hardware — two-qubit gate error well ahead
// of readout error — and the absolute value is meaningless next to real
// meta scores; but a degraded pass compares candidates under the same
// formula, so the ordering stays calibration-aware (lower is better).
func heuristicScore(n api.Node) (float64, bool) {
	twoQ, ok2 := api.ParseFloatLabel(n.Labels, api.LabelAvg2QErr)
	readout, okR := api.ParseFloatLabel(n.Labels, api.LabelAvgReadout)
	if !ok2 && !okR {
		return 0, false
	}
	return 10*twoQ + readout, true
}

var _ ScorePlugin = (*ResilientMetaScore)(nil)
