package sched

import (
	"fmt"
	"strings"

	"qrio/internal/cluster/api"
	"qrio/internal/meta"
)

// NodeReady filters out nodes that are unhealthy or out of container
// slots. With the paper's default of one container per node (§5) this is
// the classic "busy" check; nodes configured for concurrent containers
// stay feasible until every slot is taken.
type NodeReady struct{}

// Name implements FilterPlugin.
func (NodeReady) Name() string { return "NodeReady" }

// Filter implements FilterPlugin.
func (NodeReady) Filter(_ api.QuantumJob, n api.Node) (bool, string) {
	if n.Status.Phase != api.NodeReady {
		return false, fmt.Sprintf("node is %s", n.Status.Phase)
	}
	if slots := n.ContainerSlots(); len(n.Status.RunningJobs) >= slots {
		return false, fmt.Sprintf("busy with %d/%d containers (%s)",
			len(n.Status.RunningJobs), slots, strings.Join(n.Status.RunningJobs, ","))
	}
	return true, ""
}

// ResourceFit checks the job's classical CPU/memory request against the
// node's uncommitted capacity (Fig. 4a inputs).
type ResourceFit struct{}

// Name implements FilterPlugin.
func (ResourceFit) Name() string { return "ResourceFit" }

// Filter implements FilterPlugin.
func (ResourceFit) Filter(j api.QuantumJob, n api.Node) (bool, string) {
	freeCPU := n.Spec.CPUMillis - n.Status.CPUMillisInUse
	freeMem := n.Spec.MemoryMB - n.Status.MemoryMBInUse
	if j.Spec.Resources.CPUMillis > freeCPU {
		return false, fmt.Sprintf("needs %dm CPU, %dm free", j.Spec.Resources.CPUMillis, freeCPU)
	}
	if j.Spec.Resources.MemoryMB > freeMem {
		return false, fmt.Sprintf("needs %dMB memory, %dMB free", j.Spec.Resources.MemoryMB, freeMem)
	}
	return true, ""
}

// QubitCount requires the device to have at least the requested qubits.
type QubitCount struct{}

// Name implements FilterPlugin.
func (QubitCount) Name() string { return "QubitCount" }

// Filter implements FilterPlugin.
func (QubitCount) Filter(j api.QuantumJob, n api.Node) (bool, string) {
	if j.Spec.Requirements.MinQubits == 0 {
		return true, ""
	}
	q, ok := api.ParseIntLabel(n.Labels, api.LabelQubits)
	if !ok {
		return false, "node has no qubit label"
	}
	if int(q) < j.Spec.Requirements.MinQubits {
		return false, fmt.Sprintf("has %d qubits, needs %d", q, j.Spec.Requirements.MinQubits)
	}
	return true, ""
}

// Characteristics enforces the user's device-characteristic bounds
// (Fig. 4b / Fig. 10): max average two-qubit error, max readout error,
// minimum T1/T2.
type Characteristics struct{}

// Name implements FilterPlugin.
func (Characteristics) Name() string { return "Characteristics" }

// Filter implements FilterPlugin.
func (Characteristics) Filter(j api.QuantumJob, n api.Node) (bool, string) {
	req := j.Spec.Requirements
	if req.MaxAvg2QError > 0 {
		v, ok := api.ParseFloatLabel(n.Labels, api.LabelAvg2QErr)
		if !ok {
			return false, "node has no 2q-error label"
		}
		if v > req.MaxAvg2QError {
			return false, fmt.Sprintf("avg 2q error %.4f > %.4f", v, req.MaxAvg2QError)
		}
	}
	if req.MaxReadoutErr > 0 {
		v, ok := api.ParseFloatLabel(n.Labels, api.LabelAvgReadout)
		if !ok {
			return false, "node has no readout label"
		}
		if v > req.MaxReadoutErr {
			return false, fmt.Sprintf("readout error %.4f > %.4f", v, req.MaxReadoutErr)
		}
	}
	if req.MinT1us > 0 {
		v, ok := api.ParseFloatLabel(n.Labels, api.LabelAvgT1us)
		if !ok || v < req.MinT1us {
			return false, fmt.Sprintf("T1 %.0fus < %.0fus", v, req.MinT1us)
		}
	}
	if req.MinT2us > 0 {
		v, ok := api.ParseFloatLabel(n.Labels, api.LabelAvgT2us)
		if !ok || v < req.MinT2us {
			return false, fmt.Sprintf("T2 %.0fus < %.0fus", v, req.MinT2us)
		}
	}
	return true, ""
}

// DefaultFilters is QRIO's standard filter chain.
func DefaultFilters() []FilterPlugin {
	return []FilterPlugin{NodeReady{}, ResourceFit{}, QubitCount{}, Characteristics{}}
}

// MetaScore is the custom ranking plugin of §3.5: it asks the Meta Server
// to score the job against the node's backend.
type MetaScore struct {
	Scorer meta.Scorer
}

// Name implements ScorePlugin.
func (MetaScore) Name() string { return "MetaScore" }

// Score implements ScorePlugin. Nodes are named after their backends, so
// the node name doubles as the backend key.
func (m MetaScore) Score(j api.QuantumJob, n api.Node) (float64, error) {
	if m.Scorer == nil {
		return 0, fmt.Errorf("sched: MetaScore has no meta scorer")
	}
	return m.Scorer.Score(j.Name, n.Name)
}
