package sched

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"runtime"
	"time"

	"qrio/internal/clock"
	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/par"
)

// RankReuseMode selects how batched dispatch may reuse framework
// rankings across jobs instead of ranking every job independently.
type RankReuseMode int

const (
	// RankEachJob ranks every job against the fleet independently — the
	// original batched-dispatch behaviour, correct for arbitrary plugins.
	RankEachJob RankReuseMode = iota
	// RankReusePass shares one ranking among all jobs with an identical
	// spec within a single pass. Sound whenever filter/score plugins read
	// only the job's Spec (not its Name/UID/timestamps) — true for every
	// in-tree plugin.
	RankReusePass
	// RankReuseFleet additionally keeps those per-spec rankings across
	// passes until the fleet MEMBERSHIP changes (nodes added/removed).
	// That further requires filters and scorers that read only static
	// node identity — labels, spec — never load-dependent Status fields
	// (NodeReady/ResourceFit are load-dependent and must not be in the
	// chain; the dispatcher's own headroom bookkeeping plus BindJob's
	// authoritative capacity check already cover what they filter). The
	// virtual-time fleet simulator runs in this mode to schedule millions
	// of jobs against thousands of nodes in seconds.
	RankReuseFleet
)

// Scheduler drives the cluster's scheduling loop: it watches for pending
// jobs, runs the framework's filter/score pipeline, and binds each job to
// the winning node. By default it processes one job at a time in FIFO
// order, matching the paper's current architecture (§5); Concurrency > 1
// enables the future-work extension: each pass collects up to Concurrency
// pending jobs, ranks them against the fleet in parallel (a bounded worker
// pool calling Framework.Rank), and binds greedily — FIFO job order,
// best-score-first candidates, deterministic name tie-breaks — so no node
// slot is ever double-booked. When jobs from several tenants are queued,
// batched dispatch walks them in weighted-fair order instead of raw FIFO
// (see fair.go and TenantWeights); plugins see the owning tenant on every
// job via Spec.Tenant.
type Scheduler struct {
	State     *state.Cluster
	Framework *Framework
	// Interval is the reconcile cadence (default 10ms; in-process stores
	// make this cheap).
	Interval time.Duration
	// Concurrency caps jobs dispatched per pass (default 1 = paper's
	// serial path; >1 selects batched dispatch).
	Concurrency int
	// Workers bounds the ranking worker pool in batched dispatch
	// (0 = min(Concurrency, GOMAXPROCS)).
	Workers int
	// FleetResync is the level-triggered fallback cadence at which the
	// node snapshot cache re-Lists the store, healing dropped watch events
	// (default 1s). Tests shrink it to force relists.
	FleetResync time.Duration
	// TenantWeights skews the weighted fair queue that batched dispatch
	// drains: a tenant with weight 3 receives three binds for every one a
	// weight-1 tenant gets while both are backlogged. Missing tenants
	// weigh 1; nil means every tenant competes equally. The serial path
	// (Concurrency == 1) ignores weights and stays strictly FIFO.
	TenantWeights map[string]int
	// TenantQuotas lets the scheduler enforce the MaxActive bound at
	// dispatch time: a pass never considers more of a tenant's queue than
	// its remaining active budget, so a burst admitted while the tenant
	// was idle still cannot exceed the cap once bound. The zero policy
	// disables the check (byte-identical pre-tenancy behaviour).
	TenantQuotas api.TenantQuotaPolicy
	// Clock is the scheduler's time source — the fleet cache's resync
	// cadence reads it, so the virtual-time simulator can drive relists
	// on virtual time. Nil means the wall clock.
	Clock clock.Clock
	// RankReuse lets batched dispatch share framework rankings among
	// jobs with identical specs (see RankReuseMode). The default,
	// RankEachJob, keeps the original rank-every-job behaviour.
	RankReuse RankReuseMode
	// MaxPendingPerTenant bounds how much of each tenant's queue a pass
	// snapshots (0 = unlimited). Within-tenant FIFO order is preserved —
	// the cap trims only the tail — so a pass under deep overload costs
	// O(tenants × cap) instead of O(total backlog).
	MaxPendingPerTenant int
	// Partition restricts this scheduler to its share of an N-way
	// replica partition of the pending queue (nil = own everything, the
	// single-replica default). See Partition for the takeover protocol.
	Partition *Partition
	// OptimisticBind makes every bind version-conditional: the pass
	// snapshots each pending job's resource version and binds with
	// BindJobAt, so a job another replica bound (or a user cancelled)
	// since the snapshot loses with a counted conflict instead of racing
	// through phase checks. Required when multiple replicas share one
	// pending queue; a lone scheduler can leave it off and skip the
	// version bookkeeping.
	OptimisticBind bool
	// Metrics is the optional instrumentation handle (nil = no metrics,
	// the zero-overhead default). Set once at wiring time.
	Metrics *Metrics

	// wrrCredit is the smooth weighted round-robin accumulator behind
	// fairOrder, advanced one round per actual bind (see fair.go) and
	// persisted across passes. passTenants/passTotalWeight carry the
	// current pass's backlogged-tenant context from fairOrder to
	// chargeBind. All three are accessed only from SchedulePass, which is
	// not safe for concurrent use.
	wrrCredit       map[string]int
	passTenants     []string
	passTotalWeight int

	// fleet is the watch-fed node snapshot cache: passes rank against this
	// cached view instead of deep-copying the whole fleet each pass.
	fleet fleetCache

	// fleetRank is RankReuseFleet's cross-pass spec-class → ranking cache,
	// valid for the fleet membership epoch it was built against. Accessed
	// only from SchedulePass (not safe for concurrent use, like wrrCredit).
	fleetRank      map[uint64][]NodeScore
	fleetRankEpoch uint64

	// passVersions maps job name → the resource version this pass's
	// pending snapshot observed, consumed by bind under OptimisticBind.
	// Accessed only from SchedulePass, like wrrCredit.
	passVersions map[string]int64
}

// New assembles a scheduler over cluster state.
func New(st *state.Cluster, fw *Framework) *Scheduler {
	return &Scheduler{State: st, Framework: fw, Interval: 10 * time.Millisecond, Concurrency: 1}
}

// Run reconciles until the context is cancelled.
func (s *Scheduler) Run(ctx context.Context) {
	interval := s.Interval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	events, cancel := s.State.Jobs.Watch(128)
	defer cancel()
	defer s.fleet.stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-events:
			s.SchedulePass()
		case <-ticker.C:
			s.SchedulePass()
		}
	}
}

// SchedulePass schedules up to Concurrency pending jobs, oldest first.
// It returns the number of jobs bound. Concurrency == 1 runs the
// paper-faithful serial pipeline; larger values dispatch a batch.
func (s *Scheduler) SchedulePass() int {
	limit := s.Concurrency
	if limit <= 0 {
		limit = 1
	}
	// The incremental pending index makes this O(pending work): terminal
	// jobs resident in the store are never touched, let alone deep-copied.
	pending := s.capActiveBudget(s.snapshotPending())
	if len(pending) == 0 {
		return 0
	}
	// Pass duration is real compute, so it reads the wall clock even when
	// a virtual Clock drives the cadence.
	m := s.Metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	var bound int
	if limit == 1 {
		// Paper-faithful serial path: strict global FIFO, no fair queue.
		bound = s.serialPass(pending, limit)
	} else {
		bound = s.batchedPass(pending, limit)
	}
	if m != nil {
		m.PassSeconds.Observe(time.Since(start).Seconds())
		m.PassJobs.With("ranked").Add(uint64(len(pending)))
		m.PassJobs.With("bound").Add(uint64(bound))
	}
	return bound
}

// snapshotPending builds the pass's work queue: the pending index capped
// per tenant, filtered to this replica's partition, and — under
// OptimisticBind — with each job's observed resource version parked in
// passVersions for bind to condition on.
func (s *Scheduler) snapshotPending() []api.QuantumJob {
	if !s.OptimisticBind {
		pending := s.State.PendingJobsCapped(s.MaxPendingPerTenant)
		if s.Partition == nil {
			return pending
		}
		owned := pending[:0]
		for _, j := range pending {
			if s.Partition.Owns(j.Name) {
				owned = append(owned, j)
			}
		}
		return owned
	}
	versioned := s.State.PendingJobsVersioned(s.MaxPendingPerTenant)
	if s.passVersions == nil {
		s.passVersions = make(map[string]int64, len(versioned))
	} else {
		clear(s.passVersions)
	}
	pending := make([]api.QuantumJob, 0, len(versioned))
	for _, p := range versioned {
		if !s.Partition.Owns(p.Job.Name) {
			continue
		}
		s.passVersions[p.Job.Name] = p.Version
		pending = append(pending, p.Job)
	}
	return pending
}

// bind places one job, version-conditionally under OptimisticBind. A
// ConflictError means another actor moved the job since the snapshot —
// count it (the replica-contention signal) and pass it up for the caller
// to treat as "job moved on", not as a scheduling failure.
func (s *Scheduler) bind(jobName, nodeName string, score float64) error {
	var version int64
	if s.OptimisticBind {
		version = s.passVersions[jobName]
	}
	err := s.State.BindJobAt(jobName, nodeName, score, version)
	if state.IsConflict(err) {
		if m := s.Metrics; m != nil {
			m.BindConflicts.Inc()
		}
	}
	return err
}

// serialPass is the paper's architecture: one job at a time through the
// full filter/score/pick pipeline.
func (s *Scheduler) serialPass(pending []api.QuantumJob, limit int) int {
	bound := 0
	for _, job := range pending {
		if bound >= limit {
			break
		}
		if err := s.ScheduleOne(job); err != nil {
			if state.IsConflict(err) {
				// Another replica won the job between snapshot and bind —
				// expected under contention, not a failure to record.
				continue
			}
			s.recordSchedulingFailure(job.Name, err)
			continue
		}
		bound++
	}
	return bound
}

// headroom is the scheduler's pass-local view of a node's free capacity.
type headroom struct {
	slots    int
	cpu, mem int64
}

// batchedPass ranks pending jobs in parallel against one node snapshot —
// limit at a time, pulling weighted-fair chunks until limit jobs are
// bound or the queue is exhausted, so unschedulable jobs at the head
// cannot starve feasible jobs behind them (the serial loop's guarantee).
// The fair order is generated lazily: in the common case only the first
// chunk of a deep backlog is ever interleaved. Binding is greedy in
// chunk order with local slot/resource bookkeeping to keep the walk from
// double-booking a node within the pass; BindJob's own capacity check
// remains the authoritative guard against races with kubelets and other
// actors.
func (s *Scheduler) batchedPass(pending []api.QuantumJob, limit int) int {
	if s.Framework == nil {
		return 0
	}
	nodes, epoch := s.fleetNodes()
	free := make(map[string]*headroom, len(nodes))
	for _, n := range nodes {
		free[n.Name] = &headroom{
			slots: n.ContainerSlots() - len(n.Status.RunningJobs),
			cpu:   n.Spec.CPUMillis - n.Status.CPUMillisInUse,
			mem:   n.Spec.MemoryMB - n.Status.MemoryMBInUse,
		}
	}
	var pr *passRank
	if s.RankReuse != RankEachJob {
		pr = &passRank{cursors: map[uint64]int{}, spent: map[uint64]bool{}}
		if s.RankReuse == RankReuseFleet {
			if s.fleetRank == nil || s.fleetRankEpoch != epoch {
				s.fleetRank = map[uint64][]NodeScore{}
				s.fleetRankEpoch = epoch
			}
			pr.rankings = s.fleetRank
		} else {
			pr.rankings = map[uint64][]NodeScore{}
		}
	}
	next := s.fairOrderer(pending)
	bound := 0
	for bound < limit {
		chunk := next(limit)
		if len(chunk) == 0 {
			break
		}
		if pr != nil {
			bound += s.dispatchChunkShared(chunk, limit-bound, nodes, free, pr)
		} else {
			bound += s.dispatchChunk(chunk, limit-bound, nodes, free)
		}
	}
	return bound
}

// dispatchChunk ranks one chunk of jobs in parallel and binds at most
// budget of them greedily against the shared pass-local headroom.
func (s *Scheduler) dispatchChunk(chunk []api.QuantumJob, budget int, nodes []api.Node, free map[string]*headroom) int {
	rankings := make([][]NodeScore, len(chunk))
	rankErrs := make([]error, len(chunk))
	workers := s.Workers
	if workers <= 0 {
		workers = len(chunk)
		if max := runtime.GOMAXPROCS(0); workers > max {
			workers = max
		}
	}
	par.ForEach(len(chunk), workers, func(i int) {
		rankings[i], rankErrs[i] = s.Framework.Rank(chunk[i], nodes)
	})

	bound := 0
	for i, job := range chunk {
		if bound >= budget {
			break
		}
		if rankErrs[i] != nil {
			s.recordSchedulingFailure(job.Name, rankErrs[i])
			continue
		}
		placed := false
		for _, cand := range rankings[i] {
			h := free[cand.Node]
			if h == nil || h.slots <= 0 ||
				h.cpu < job.Spec.Resources.CPUMillis || h.mem < job.Spec.Resources.MemoryMB {
				continue
			}
			if err := s.bind(job.Name, cand.Node, cand.Score); err != nil {
				if state.IsConflict(err) {
					// Another replica took the job since the snapshot; stop
					// trying candidates but count nothing.
					placed = true
					break
				}
				if j, _, jerr := s.State.Jobs.Get(job.Name); jerr != nil || j.Status.Phase != api.JobPending {
					// The job itself moved on (bound elsewhere, deleted);
					// stop trying candidates but count nothing.
					placed = true
					break
				}
				// Node-side race (kubelet, another scheduler): the local
				// headroom was stale — drop the node for this pass.
				h.slots = 0
				continue
			}
			h.slots--
			h.cpu -= job.Spec.Resources.CPUMillis
			h.mem -= job.Spec.Resources.MemoryMB
			placed = true
			bound++
			s.chargeBind(&job)
			break
		}
		if !placed {
			s.State.RecordEvent("Job", job.Name, "Unschedulable",
				fmt.Sprintf("sched: job %s ranked %d nodes but all slots taken this pass",
					job.Name, len(rankings[i])))
		}
	}
	return bound
}

// passRank is one pass's shared-ranking state under a RankReuse mode:
// rankings maps each spec-class fingerprint to its ranked candidates
// (pass-local, or the cross-pass fleetRank cache under RankReuseFleet);
// cursors and spent are always pass-local because they track pass-local
// headroom consumption.
type passRank struct {
	rankings map[uint64][]NodeScore
	// cursors[fp] is the first candidate not yet proven dead this pass.
	// Jobs sharing a fingerprint share demands, and pass-local headroom
	// only shrinks, so a candidate that fails one job of the class fails
	// every later one — the cursor never has to back up.
	cursors map[uint64]int
	// spent marks classes whose candidates were exhausted this pass; the
	// dispatcher skips their remaining jobs and coalesces the
	// Unschedulable event to one per class per pass.
	spent map[uint64]bool
}

// specFingerprint hashes every JobSpec field into the spec-class key.
// Two jobs share a fingerprint only if their specs are byte-identical,
// so sharing a ranking is exactly as correct as ranking each job
// separately — for plugins that read only the spec.
func specFingerprint(s *api.JobSpec) uint64 {
	h := fnv.New64a()
	str := func(v string) { io.WriteString(h, v); h.Write([]byte{0xff}) }
	num := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	str(s.Tenant)
	str(s.Image)
	str(s.QASM)
	str(string(s.Strategy))
	str(s.TopologyQASM)
	num(uint64(s.Shots))
	num(uint64(s.Resources.CPUMillis))
	num(uint64(s.Resources.MemoryMB))
	num(uint64(s.Requirements.MinQubits))
	num(math.Float64bits(s.Requirements.MaxAvg2QError))
	num(math.Float64bits(s.Requirements.MaxReadoutErr))
	num(math.Float64bits(s.Requirements.MinT1us))
	num(math.Float64bits(s.Requirements.MinT2us))
	num(math.Float64bits(s.TargetFidelity))
	return h.Sum64()
}

// dispatchChunkShared is dispatchChunk under a RankReuse mode: it ranks
// only the distinct spec classes the chunk introduces (in parallel),
// then binds sequentially, walking each class's ranking behind a shared
// cursor. A chunk of a thousand identical jobs costs one Rank call.
func (s *Scheduler) dispatchChunkShared(chunk []api.QuantumJob, budget int, nodes []api.Node, free map[string]*headroom, pr *passRank) int {
	fps := make([]uint64, len(chunk))
	type classRep struct {
		fp  uint64
		job api.QuantumJob
	}
	var missing []classRep
	have := map[uint64]bool{}
	for i := range chunk {
		fp := specFingerprint(&chunk[i].Spec)
		fps[i] = fp
		if _, ok := pr.rankings[fp]; ok || have[fp] {
			continue
		}
		have[fp] = true
		missing = append(missing, classRep{fp, chunk[i]})
	}
	if len(missing) > 0 {
		ranked := make([][]NodeScore, len(missing))
		errs := make([]error, len(missing))
		workers := s.Workers
		if workers <= 0 {
			workers = len(missing)
			if max := runtime.GOMAXPROCS(0); workers > max {
				workers = max
			}
		}
		par.ForEach(len(missing), workers, func(i int) {
			ranked[i], errs[i] = s.Framework.Rank(missing[i].job, nodes)
		})
		for i, m := range missing {
			if errs[i] != nil {
				// The whole class is unrankable (static chain ⇒ the error is
				// a property of the spec, not the job). Record it once, for
				// the class's first job, and park an empty ranking so
				// same-class jobs — this pass or, under RankReuseFleet, until
				// the fleet changes — skip straight past.
				pr.rankings[m.fp] = []NodeScore{}
				pr.spent[m.fp] = true
				s.recordSchedulingFailure(m.job.Name, errs[i])
				continue
			}
			pr.rankings[m.fp] = ranked[i]
		}
	}

	bound := 0
	for i := range chunk {
		if bound >= budget {
			break
		}
		job := chunk[i]
		fp := fps[i]
		if pr.spent[fp] {
			continue
		}
		ranking := pr.rankings[fp]
		cur := pr.cursors[fp]
		placed := false
		for cur < len(ranking) {
			cand := ranking[cur]
			h := free[cand.Node]
			if h == nil || h.slots <= 0 ||
				h.cpu < job.Spec.Resources.CPUMillis || h.mem < job.Spec.Resources.MemoryMB {
				// Dead for the whole class this pass: same demands, and
				// headroom only shrinks.
				cur++
				continue
			}
			if err := s.bind(job.Name, cand.Node, cand.Score); err != nil {
				if state.IsConflict(err) {
					// Another replica took the job; the candidate is still
					// live for the rest of the class.
					placed = true
					break
				}
				if j, _, jerr := s.State.Jobs.Get(job.Name); jerr != nil || j.Status.Phase != api.JobPending {
					// The job itself moved on; the candidate is still live
					// for the rest of the class.
					placed = true
					break
				}
				// Node-side race: stale headroom — dead for the pass.
				h.slots = 0
				cur++
				continue
			}
			h.slots--
			h.cpu -= job.Spec.Resources.CPUMillis
			h.mem -= job.Spec.Resources.MemoryMB
			placed = true
			bound++
			s.chargeBind(&job)
			break
		}
		pr.cursors[fp] = cur
		if !placed && cur >= len(ranking) {
			pr.spent[fp] = true
			s.State.RecordEvent("Job", job.Name, "Unschedulable",
				fmt.Sprintf("sched: job %s and its spec class exhausted %d ranked nodes this pass",
					job.Name, len(ranking)))
		}
	}
	return bound
}

// recordSchedulingFailure emits the event the serial path always recorded.
func (s *Scheduler) recordSchedulingFailure(jobName string, err error) {
	var unsched *UnschedulableError
	if errors.As(err, &unsched) {
		// Leave pending; a node may free up. Record once per pass.
		s.State.RecordEvent("Job", jobName, "Unschedulable", err.Error())
		return
	}
	s.State.RecordEvent("Job", jobName, "SchedulingError", err.Error())
}

// fleetNodes returns the cached fleet view (watch-fed, with a periodic
// re-List fallback) the pass ranks against, plus its membership epoch.
func (s *Scheduler) fleetNodes() ([]api.Node, uint64) {
	return s.fleet.snapshot(s.State.Nodes, s.FleetResync, s.now())
}

func (s *Scheduler) now() time.Time { return clock.Now(s.Clock) }

// Stop releases the fleet cache's store watcher. Run does this on exit;
// callers driving SchedulePass/ScheduleOne directly (tests, benchmarks,
// library embeddings) should Stop a scheduler they abandon so the store
// isn't left broadcasting to a channel nobody drains. The scheduler
// remains usable afterwards — the next pass resubscribes.
func (s *Scheduler) Stop() {
	s.fleet.stop()
}

// ScheduleOne runs the pipeline for a single job and binds it.
func (s *Scheduler) ScheduleOne(job api.QuantumJob) error {
	if s.Framework == nil {
		return fmt.Errorf("sched: scheduler has no framework")
	}
	nodes, _ := s.fleetNodes()
	choice, err := s.Framework.Select(job, nodes)
	if err != nil {
		return err
	}
	return s.bind(job.Name, choice.Node, choice.Score)
}
