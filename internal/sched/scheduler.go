package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
)

// Scheduler drives the cluster's scheduling loop: it watches for pending
// jobs, runs the framework's filter/score pipeline, and binds each job to
// the winning node. By default it processes one job at a time in FIFO
// order, matching the paper's current architecture (§5); Concurrency > 1
// enables the future-work extension of dispatching several queued jobs as
// long as free nodes remain.
type Scheduler struct {
	State     *state.Cluster
	Framework *Framework
	// Interval is the reconcile cadence (default 10ms; in-process stores
	// make this cheap).
	Interval time.Duration
	// Concurrency caps jobs dispatched per pass (default 1 = paper).
	Concurrency int
}

// New assembles a scheduler over cluster state.
func New(st *state.Cluster, fw *Framework) *Scheduler {
	return &Scheduler{State: st, Framework: fw, Interval: 10 * time.Millisecond, Concurrency: 1}
}

// Run reconciles until the context is cancelled.
func (s *Scheduler) Run(ctx context.Context) {
	interval := s.Interval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	events, cancel := s.State.Jobs.Watch(128)
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return
		case <-events:
			s.SchedulePass()
		case <-ticker.C:
			s.SchedulePass()
		}
	}
}

// SchedulePass schedules up to Concurrency pending jobs, oldest first.
// It returns the number of jobs bound.
func (s *Scheduler) SchedulePass() int {
	limit := s.Concurrency
	if limit <= 0 {
		limit = 1
	}
	pending := s.pendingFIFO()
	bound := 0
	for _, job := range pending {
		if bound >= limit {
			break
		}
		if err := s.ScheduleOne(job); err != nil {
			var unsched *UnschedulableError
			if errors.As(err, &unsched) {
				// Leave pending; a node may free up. Record once per pass.
				s.State.RecordEvent("Job", job.Name, "Unschedulable", err.Error())
				continue
			}
			s.State.RecordEvent("Job", job.Name, "SchedulingError", err.Error())
			continue
		}
		bound++
	}
	return bound
}

// pendingFIFO lists pending jobs oldest-first (stable on name).
func (s *Scheduler) pendingFIFO() []api.QuantumJob {
	var pending []api.QuantumJob
	for _, j := range s.State.Jobs.List() {
		if j.Status.Phase == api.JobPending {
			pending = append(pending, j)
		}
	}
	sort.Slice(pending, func(i, j int) bool {
		if !pending[i].CreatedAt.Equal(pending[j].CreatedAt) {
			return pending[i].CreatedAt.Before(pending[j].CreatedAt)
		}
		return pending[i].Name < pending[j].Name
	})
	return pending
}

// ScheduleOne runs the pipeline for a single job and binds it.
func (s *Scheduler) ScheduleOne(job api.QuantumJob) error {
	if s.Framework == nil {
		return fmt.Errorf("sched: scheduler has no framework")
	}
	choice, err := s.Framework.Select(job, s.State.Nodes.List())
	if err != nil {
		return err
	}
	return s.State.BindJob(job.Name, choice.Node, choice.Score)
}
