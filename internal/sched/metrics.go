package sched

import "qrio/internal/obs"

// Metrics is the scheduler's instrumentation handle. Nil (the default)
// costs one branch per pass — schedulers built without a registry (the
// paper experiments, benches) pay nothing. Degraded-mode episodes are
// not counted here: the breaker already counts its own opens
// (resilience.Breaker.Opens), which the core wiring mirrors at scrape
// time as qrio_sched_degraded_episodes_total.
type Metrics struct {
	// PassSeconds observes the wall time of each non-empty scheduling
	// pass (empty idle passes would drown the histogram at the 10ms
	// reconcile cadence and measure nothing).
	PassSeconds *obs.Histogram
	// PassJobs counts per-pass work by outcome: "ranked" (pending jobs
	// the pass considered) and "bound" (jobs it placed). The gap between
	// the two is the backlog the fleet couldn't absorb.
	PassJobs *obs.CounterVec
	// BindConflicts counts optimistic binds lost to another replica (or
	// a racing cancel) — the replica-contention signal. A high rate
	// relative to binds means the partition is misconfigured (replicas
	// draining overlapping shards) or takeover left two owners.
	BindConflicts *obs.Counter
}

// NewMetrics registers the scheduler's families on a registry.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		PassSeconds: r.Histogram("qrio_sched_pass_duration_seconds",
			"Wall time of each non-empty scheduling pass.", nil).With(),
		PassJobs: r.Counter("qrio_sched_pass_jobs_total",
			"Jobs considered (ranked) and placed (bound) by scheduling passes.", "outcome"),
		BindConflicts: r.Counter("qrio_sched_bind_conflicts_total",
			"Optimistic binds lost to another scheduler replica.").With(),
	}
}
