package sched

import (
	"fmt"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
)

// reuseFixture builds one cluster + batched scheduler pair: a small
// heterogeneous fleet and a backlog mixing three spec classes (small,
// large, infeasible) across two tenants.
func reuseFixture(t *testing.T, mode RankReuseMode) (*Scheduler, *state.Cluster) {
	t.Helper()
	st := state.New()
	node(t, st, "small-1", 3, 0.10)
	node(t, st, "small-2", 3, 0.20)
	node(t, st, "big-1", 8, 0.05)
	scorer := MetaScore{Scorer: mapScorer{"small-1": 1, "small-2": 2, "big-1": 3}}
	s := New(st, NewFramework(scorer, DefaultFilters()...))
	s.Concurrency = 8
	s.RankReuse = mode
	s.FleetResync = time.Hour
	for i := 0; i < 12; i++ {
		j := job(fmt.Sprintf("small-%02d", i), 2, 0)
		if i%2 == 1 {
			j.Spec.Tenant = "beta"
		}
		if err := st.SubmitJob(j); err != nil {
			t.Fatal(err)
		}
		big := job(fmt.Sprintf("big-%02d", i), 5, 0)
		if err := st.SubmitJob(big); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.SubmitJob(job("impossible", 99, 0)); err != nil {
		t.Fatal(err)
	}
	return s, st
}

func assignments(t *testing.T, st *state.Cluster) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, j := range st.Jobs.List() {
		if j.Status.Phase == api.JobScheduled {
			out[j.Name] = j.Status.Node
		}
	}
	return out
}

// TestRankReuseMatchesRankEachJob: for spec-reading plugins the shared
// ranking is a pure optimisation — pass-level reuse must bind exactly
// the jobs, to exactly the nodes, that ranking every job would.
func TestRankReuseMatchesRankEachJob(t *testing.T) {
	base, baseSt := reuseFixture(t, RankEachJob)
	reuse, reuseSt := reuseFixture(t, RankReusePass)
	defer base.Stop()
	defer reuse.Stop()
	for i := 0; i < 10; i++ {
		if base.SchedulePass() != reuse.SchedulePass() {
			t.Fatalf("pass %d bound different counts", i)
		}
	}
	want, got := assignments(t, baseSt), assignments(t, reuseSt)
	if len(want) == 0 {
		t.Fatal("fixture bound nothing — test is vacuous")
	}
	if len(want) != len(got) {
		t.Fatalf("bound %d jobs with reuse, want %d", len(got), len(want))
	}
	for name, n := range want {
		if got[name] != n {
			t.Fatalf("job %s bound to %s with reuse, want %s", name, got[name], n)
		}
	}
	if _, ok := got["impossible"]; ok {
		t.Fatal("infeasible job was bound")
	}
}

// TestRankReuseFleetSeesMembershipChanges: the cross-pass ranking cache
// must be dropped when a node joins, or jobs keep ranking against the
// old fleet and never discover the newcomer.
func TestRankReuseFleetSeesMembershipChanges(t *testing.T) {
	st := state.New()
	node(t, st, "old", 3, 0.10)
	// Static chain only: label-based filters plus a label-derived score —
	// the contract RankReuseFleet documents.
	s := New(st, NewFramework(MetaScore{Scorer: mapScorer{"old": 1, "new": 2}}, QubitCount{}, Characteristics{}))
	s.Concurrency = 4
	s.RankReuse = RankReuseFleet
	s.FleetResync = time.Hour
	defer s.Stop()

	if err := st.SubmitJob(job("warm", 2, 0)); err != nil {
		t.Fatal(err)
	}
	if s.SchedulePass() != 1 {
		t.Fatal("warm-up job not bound")
	}
	// A bigger node joins; a job only it can host must be schedulable even
	// though its spec class is new and the fleet cache was already warm.
	node(t, st, "new", 8, 0.05)
	if _, _, err := st.Nodes.Update("new", func(n api.Node) (api.Node, error) {
		n.Spec.MaxContainers = 4 // room for both the redirect and the warm class
		return n, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.SubmitJob(job("needs-new", 5, 0)); err != nil {
		t.Fatal(err)
	}
	if s.SchedulePass() != 1 {
		t.Fatal("job for the new node not bound")
	}
	j, _, _ := st.Jobs.Get("needs-new")
	if j.Status.Node != "new" {
		t.Fatalf("bound to %s, want new", j.Status.Node)
	}
	// And the warm class must re-rank too: retire the old node, then a
	// same-spec job has to land on the remaining one.
	if err := st.Nodes.Delete("old"); err != nil {
		t.Fatal(err)
	}
	if err := st.SubmitJob(job("warm-2", 2, 0)); err != nil {
		t.Fatal(err)
	}
	if s.SchedulePass() != 1 {
		t.Fatal("warm-class job not bound after membership change")
	}
	j, _, _ = st.Jobs.Get("warm-2")
	if j.Status.Node != "new" {
		t.Fatalf("stale fleet ranking survived a node delete: bound to %s", j.Status.Node)
	}
}

// TestSpecFingerprintSeparatesClasses: distinct specs must not collide on
// the obvious axes, and identical specs must agree.
func TestSpecFingerprintSeparatesClasses(t *testing.T) {
	a := job("a", 2, 0)
	b := job("b", 2, 0)
	if specFingerprint(&a.Spec) != specFingerprint(&b.Spec) {
		t.Fatal("identical specs produced different fingerprints")
	}
	seen := map[uint64]string{}
	variants := map[string]api.QuantumJob{
		"base":   job("v", 2, 0),
		"qubits": job("v", 3, 0),
		"maxerr": job("v", 2, 0.5),
	}
	tenant := job("v", 2, 0)
	tenant.Spec.Tenant = "beta"
	variants["tenant"] = tenant
	shots := job("v", 2, 0)
	shots.Spec.Shots = 4096
	variants["shots"] = shots
	qasm := job("v", 2, 0)
	qasm.Spec.QASM += "\nh q[1];"
	variants["qasm"] = qasm
	for label, v := range variants {
		fp := specFingerprint(&v.Spec)
		if prev, ok := seen[fp]; ok {
			t.Fatalf("variants %q and %q collide on fingerprint %016x", prev, label, fp)
		}
		seen[fp] = label
	}
}
