package sched

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/device"
	"qrio/internal/graph"
)

func node(t *testing.T, st *state.Cluster, name string, qubits int, e2 float64) {
	t.Helper()
	b, err := device.UniformBackend(name, graph.Line(qubits), e2, 0.01, 0.05, 500e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddNode(b); err != nil {
		t.Fatal(err)
	}
}

func job(name string, minQubits int, maxErr float64) api.QuantumJob {
	return api.QuantumJob{
		ObjectMeta: api.ObjectMeta{Name: name},
		Spec: api.JobSpec{
			QASM:           "OPENQASM 2.0;\nqreg q[2];\nh q[0];",
			Strategy:       api.StrategyFidelity,
			TargetFidelity: 1,
			Requirements: api.DeviceRequirements{
				MinQubits:     minQubits,
				MaxAvg2QError: maxErr,
			},
		},
	}
}

// mapScorer scores by a fixed map.
type mapScorer map[string]float64

func (m mapScorer) Score(_, backend string) (float64, error) {
	s, ok := m[backend]
	if !ok {
		return 0, fmt.Errorf("no score for %s", backend)
	}
	return s, nil
}

func TestFiltersByQubitCount(t *testing.T) {
	st := state.New()
	node(t, st, "small", 3, 0.1)
	node(t, st, "big", 10, 0.1)
	fw := NewFramework(nil, DefaultFilters()...)
	feasible, rejected := fw.FilterNodes(job("j", 5, 0), st.Nodes.List())
	if len(feasible) != 1 || feasible[0].Name != "big" {
		t.Fatalf("feasible = %v", feasible)
	}
	if _, ok := rejected["small"]; !ok {
		t.Fatalf("rejected = %v", rejected)
	}
}

func TestFiltersByCharacteristics(t *testing.T) {
	st := state.New()
	node(t, st, "clean", 5, 0.05)
	node(t, st, "noisy", 5, 0.5)
	fw := NewFramework(nil, DefaultFilters()...)
	feasible, _ := fw.FilterNodes(job("j", 0, 0.1), st.Nodes.List())
	if len(feasible) != 1 || feasible[0].Name != "clean" {
		t.Fatalf("feasible = %v", feasible)
	}
	// No constraint: both pass.
	feasible, _ = fw.FilterNodes(job("j", 0, 0), st.Nodes.List())
	if len(feasible) != 2 {
		t.Fatalf("unconstrained feasible = %d", len(feasible))
	}
}

func TestResourceFitUsesFreeCapacity(t *testing.T) {
	st := state.New()
	node(t, st, "n", 5, 0.1)
	st.Nodes.Update("n", func(n api.Node) (api.Node, error) {
		n.Status.CPUMillisInUse = n.Spec.CPUMillis - 100
		return n, nil
	})
	j := job("j", 0, 0)
	j.Spec.Resources.CPUMillis = 500
	fw := NewFramework(nil, DefaultFilters()...)
	feasible, rejected := fw.FilterNodes(j, st.Nodes.List())
	if len(feasible) != 0 {
		t.Fatalf("overcommitted node passed: %v", feasible)
	}
	if r := rejected["n"]; r == "" {
		t.Fatal("no rejection reason")
	}
}

func TestNodeReadyFilter(t *testing.T) {
	st := state.New()
	node(t, st, "busy", 5, 0.1)
	st.Nodes.Update("busy", func(n api.Node) (api.Node, error) {
		n.Status.RunningJobs = []string{"other"}
		return n, nil
	})
	node(t, st, "down", 5, 0.1)
	st.Nodes.Update("down", func(n api.Node) (api.Node, error) {
		n.Status.Phase = api.NodeNotReady
		return n, nil
	})
	fw := NewFramework(nil, DefaultFilters()...)
	feasible, _ := fw.FilterNodes(job("j", 0, 0), st.Nodes.List())
	if len(feasible) != 0 {
		t.Fatalf("busy/down nodes passed: %v", feasible)
	}
}

func TestLowestScorePick(t *testing.T) {
	st := state.New()
	node(t, st, "a", 5, 0.1)
	node(t, st, "b", 5, 0.1)
	node(t, st, "c", 5, 0.1)
	fw := NewFramework(MetaScore{Scorer: mapScorer{"a": 3, "b": 1, "c": 2}}, DefaultFilters()...)
	pick, err := fw.Select(job("j", 0, 0), st.Nodes.List())
	if err != nil {
		t.Fatal(err)
	}
	if pick.Node != "b" || pick.Score != 1 {
		t.Fatalf("pick = %+v, want b/1", pick)
	}
}

func TestLowestScoreSkipsFailingNodes(t *testing.T) {
	st := state.New()
	node(t, st, "a", 5, 0.1)
	node(t, st, "b", 5, 0.1)
	fw := NewFramework(MetaScore{Scorer: mapScorer{"b": 7}}, DefaultFilters()...)
	pick, err := fw.Select(job("j", 0, 0), st.Nodes.List())
	if err != nil {
		t.Fatal(err)
	}
	if pick.Node != "b" {
		t.Fatalf("pick = %+v", pick)
	}
}

func TestUnschedulableError(t *testing.T) {
	st := state.New()
	node(t, st, "small", 2, 0.1)
	fw := NewFramework(nil, DefaultFilters()...)
	_, err := fw.Select(job("j", 50, 0), st.Nodes.List())
	var unsched *UnschedulableError
	if !errors.As(err, &unsched) {
		t.Fatalf("err = %v, want UnschedulableError", err)
	}
	if len(unsched.Rejected) != 1 {
		t.Fatalf("rejected = %v", unsched.Rejected)
	}
}

func TestRandomPickerReportsScore(t *testing.T) {
	st := state.New()
	node(t, st, "a", 5, 0.1)
	node(t, st, "b", 5, 0.1)
	fw := &Framework{
		Filters: DefaultFilters(),
		Scorer:  MetaScore{Scorer: mapScorer{"a": 3, "b": 1}},
		Picker:  &RandomPicker{Rng: rand.New(rand.NewSource(1))},
	}
	seen := map[string]bool{}
	for i := 0; i < 40; i++ {
		pick, err := fw.Select(job("j", 0, 0), st.Nodes.List())
		if err != nil {
			t.Fatal(err)
		}
		seen[pick.Node] = true
		if math.IsNaN(pick.Score) {
			t.Fatal("random picker lost the score")
		}
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("random picker not random: %v", seen)
	}
}

func TestSchedulerPassFIFOOneAtATime(t *testing.T) {
	st := state.New()
	node(t, st, "only", 5, 0.1)
	fw := NewFramework(MetaScore{Scorer: mapScorer{"only": 1}}, DefaultFilters()...)
	s := New(st, fw)

	j1 := job("j1", 0, 0)
	j2 := job("j2", 0, 0)
	if err := st.SubmitJob(j1); err != nil {
		t.Fatal(err)
	}
	if err := st.SubmitJob(j2); err != nil {
		t.Fatal(err)
	}
	if bound := s.SchedulePass(); bound != 1 {
		t.Fatalf("bound %d jobs, want 1 (single-job architecture)", bound)
	}
	first, _, _ := st.Jobs.Get("j1")
	second, _, _ := st.Jobs.Get("j2")
	if first.Status.Phase != api.JobScheduled {
		t.Fatalf("j1 phase = %s (FIFO broken)", first.Status.Phase)
	}
	if second.Status.Phase != api.JobPending {
		t.Fatalf("j2 phase = %s, want Pending", second.Status.Phase)
	}
	// Node busy now; next pass binds nothing.
	if bound := s.SchedulePass(); bound != 0 {
		t.Fatalf("second pass bound %d", bound)
	}
}

func TestSchedulerConcurrencyExtension(t *testing.T) {
	st := state.New()
	node(t, st, "n1", 5, 0.1)
	node(t, st, "n2", 5, 0.1)
	fw := NewFramework(MetaScore{Scorer: mapScorer{"n1": 1, "n2": 2}}, DefaultFilters()...)
	s := New(st, fw)
	s.Concurrency = 4
	st.SubmitJob(job("j1", 0, 0))
	st.SubmitJob(job("j2", 0, 0))
	if bound := s.SchedulePass(); bound != 2 {
		t.Fatalf("bound %d, want 2 with concurrency", bound)
	}
}

// TestBatchedDispatchDistinctNodes: one batched pass places N pending jobs
// onto N distinct free nodes, never double-booking a slot, with the
// best-scoring node going to the oldest job (FIFO greedy order).
func TestBatchedDispatchDistinctNodes(t *testing.T) {
	st := state.New()
	scores := mapScorer{}
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("n%d", i)
		node(t, st, name, 5, 0.1)
		scores[name] = float64(i) // n1 best, n4 worst
	}
	fw := NewFramework(MetaScore{Scorer: scores}, DefaultFilters()...)
	s := New(st, fw)
	s.Concurrency = 8
	for i := 1; i <= 4; i++ {
		if err := st.SubmitJob(job(fmt.Sprintf("j%d", i), 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if bound := s.SchedulePass(); bound != 4 {
		t.Fatalf("bound %d jobs, want 4 in one pass", bound)
	}
	seen := map[string]string{}
	for i := 1; i <= 4; i++ {
		j, _, _ := st.Jobs.Get(fmt.Sprintf("j%d", i))
		if j.Status.Phase != api.JobScheduled {
			t.Fatalf("j%d phase = %s", i, j.Status.Phase)
		}
		if prev, dup := seen[j.Status.Node]; dup {
			t.Fatalf("node %s double-booked by %s and j%d", j.Status.Node, prev, i)
		}
		seen[j.Status.Node] = j.Name
	}
	// FIFO greedy: oldest job got the best node, and so on down the ranking.
	for i := 1; i <= 4; i++ {
		j, _, _ := st.Jobs.Get(fmt.Sprintf("j%d", i))
		if want := fmt.Sprintf("n%d", i); j.Status.Node != want {
			t.Fatalf("j%d bound to %s, want %s (deterministic greedy order)", i, j.Status.Node, want)
		}
	}
}

// TestBatchedDispatchMoreJobsThanNodes: surplus jobs stay Pending, nodes
// are never double-bound, and the next pass drains the queue after slots
// free up.
func TestBatchedDispatchMoreJobsThanNodes(t *testing.T) {
	st := state.New()
	node(t, st, "a", 5, 0.1)
	node(t, st, "b", 5, 0.1)
	fw := NewFramework(MetaScore{Scorer: mapScorer{"a": 1, "b": 1}}, DefaultFilters()...)
	s := New(st, fw)
	s.Concurrency = 8
	for i := 1; i <= 5; i++ {
		st.SubmitJob(job(fmt.Sprintf("j%d", i), 0, 0))
	}
	if bound := s.SchedulePass(); bound != 2 {
		t.Fatalf("first pass bound %d, want 2 (one per node)", bound)
	}
	pendingCount := 0
	for _, j := range st.Jobs.List() {
		if j.Status.Phase == api.JobPending {
			pendingCount++
		}
	}
	if pendingCount != 3 {
		t.Fatalf("%d jobs pending after full pass, want 3", pendingCount)
	}
	// Saturated fleet: another pass binds nothing (and doesn't double-bind).
	if bound := s.SchedulePass(); bound != 0 {
		t.Fatalf("saturated pass bound %d", bound)
	}
	for _, name := range []string{"a", "b"} {
		n, _, _ := st.Nodes.Get(name)
		if len(n.Status.RunningJobs) != 1 {
			t.Fatalf("node %s runs %v", name, n.Status.RunningJobs)
		}
	}
	// Free both nodes; the following pass places the next two FIFO jobs.
	for _, name := range []string{"a", "b"} {
		n, _, _ := st.Nodes.Get(name)
		jobName := n.Status.RunningJobs[0]
		st.Jobs.Update(jobName, func(j api.QuantumJob) (api.QuantumJob, error) {
			j.Status.Phase = api.JobSucceeded
			return j, nil
		})
		st.ReleaseNode(name, jobName)
	}
	if bound := s.SchedulePass(); bound != 2 {
		t.Fatalf("post-release pass bound %d, want 2", bound)
	}
}

// TestBatchedDispatchSkipsStarvedHead: unschedulable jobs at the head of
// the FIFO queue must not starve a feasible job queued behind them — the
// pass walks past the full batch width until it binds or exhausts the
// queue (the serial path's guarantee).
func TestBatchedDispatchSkipsStarvedHead(t *testing.T) {
	st := state.New()
	node(t, st, "tiny", 5, 0.1)
	fw := NewFramework(MetaScore{Scorer: mapScorer{"tiny": 1}}, DefaultFilters()...)
	s := New(st, fw)
	s.Concurrency = 4
	// Five impossible jobs (need 100 qubits) fill more than one batch
	// width ahead of the one feasible job.
	for i := 1; i <= 5; i++ {
		if err := st.SubmitJob(job(fmt.Sprintf("stuck%d", i), 100, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.SubmitJob(job("runnable", 0, 0)); err != nil {
		t.Fatal(err)
	}
	if bound := s.SchedulePass(); bound != 1 {
		t.Fatalf("bound %d, want 1 (feasible job behind unschedulable head)", bound)
	}
	j, _, _ := st.Jobs.Get("runnable")
	if j.Status.Phase != api.JobScheduled {
		t.Fatalf("runnable job phase = %s — starved by unschedulable queue head", j.Status.Phase)
	}
}

// TestBatchedDispatchFillsMultiSlotNode: with node concurrency enabled, a
// single node absorbs as many jobs per pass as it has container slots.
func TestBatchedDispatchFillsMultiSlotNode(t *testing.T) {
	st := state.New()
	node(t, st, "wide", 5, 0.1)
	st.Nodes.Update("wide", func(n api.Node) (api.Node, error) {
		n.Spec.MaxContainers = 3
		return n, nil
	})
	fw := NewFramework(MetaScore{Scorer: mapScorer{"wide": 1}}, DefaultFilters()...)
	s := New(st, fw)
	s.Concurrency = 8
	for i := 1; i <= 4; i++ {
		st.SubmitJob(job(fmt.Sprintf("j%d", i), 0, 0))
	}
	if bound := s.SchedulePass(); bound != 3 {
		t.Fatalf("bound %d, want 3 (slot cap)", bound)
	}
	n, _, _ := st.Nodes.Get("wide")
	if len(n.Status.RunningJobs) != 3 {
		t.Fatalf("node runs %v, want 3 containers", n.Status.RunningJobs)
	}
}
