package experiments

import (
	"fmt"
	"strings"
	"time"

	"qrio/internal/sim"
	"qrio/internal/simload"
)

// CapacityRow is one fleet scale of the capacity-planning sweep: the same
// seeded open-loop workload offered to progressively larger fleets, each
// run through the real scheduler/state path inside the virtual-time
// simulator. Latency collapsing as nodes are added (and the undersized
// fleets failing to drain) is the capacity curve operators plan against.
type CapacityRow struct {
	Nodes            int
	OfferedPerSec    float64
	Submitted        int
	BoundPerSec      float64
	P50, P99, Max    time.Duration
	Drained          bool
	TerminalResident int
}

// CapacityScales are the fleet sizes the sweep visits. The workload is
// sized so the smallest fleet saturates and the largest is comfortable.
func CapacityScales() []int { return []int{40, 80, 160} }

// Capacity runs the fleet-size sweep. Offered load is fixed at 150 jobs/s
// across two tenant cohorts for a 60-virtual-second horizon; every run is
// seeded from cfg.Seed, so the whole table is reproducible byte for byte.
func Capacity(cfg Config) ([]CapacityRow, error) {
	cfg = cfg.withDefaults()
	var rows []CapacityRow
	for _, nodes := range CapacityScales() {
		c := sim.Config{
			Fleet: []sim.FleetClass{
				{Name: "small", Count: nodes * 4 / 5, Qubits: 5, Slots: 2, TwoQErr: 0.008},
				{Name: "big", Count: nodes / 5, Qubits: 12, Slots: 2, TwoQErr: 0.015},
			},
			Profile: simload.Profile{
				Seed:     cfg.Seed,
				Duration: simload.Duration(60 * time.Second),
				Cohorts: []simload.Cohort{
					{
						Tenant: "alice", Rate: 100,
						Mix:     []simload.Share{{Family: "ghz", Weight: 3}, {Family: "qft", Weight: 1}},
						Service: simload.ServiceModel{Mean: simload.Duration(500 * time.Millisecond), CV: 1},
					},
					{
						Tenant: "bob", Rate: 50,
						Mix:     []simload.Share{{Family: "bv", Weight: 1}},
						Service: simload.ServiceModel{Mean: simload.Duration(400 * time.Millisecond), CV: 0.8},
					},
				},
			},
			PassEvery:   simload.Duration(20 * time.Millisecond),
			Concurrency: 128,
			DrainGrace:  simload.Duration(30 * time.Second),
		}
		eng, err := sim.New(c, nil)
		if err != nil {
			return nil, fmt.Errorf("capacity @ %d nodes: %w", nodes, err)
		}
		rep, err := eng.Run()
		if err != nil {
			return nil, fmt.Errorf("capacity @ %d nodes: %w", nodes, err)
		}
		rows = append(rows, CapacityRow{
			Nodes:            nodes,
			OfferedPerSec:    150,
			Submitted:        rep.Submitted,
			BoundPerSec:      rep.BoundPerSecond,
			P50:              rep.Latency.P50,
			P99:              rep.Latency.P99,
			Max:              rep.Latency.Max,
			Drained:          rep.Drained,
			TerminalResident: rep.TerminalResident,
		})
	}
	return rows, nil
}

// RenderCapacity formats the sweep as the text table qrio-experiments
// prints.
func RenderCapacity(rows []CapacityRow) string {
	var b strings.Builder
	b.WriteString("Capacity sweep — fixed 150 jobs/s open-loop load vs fleet size (virtual-time sim)\n")
	b.WriteString("  nodes  offered/s  bound/s  p50          p99          max          drained\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %5d  %9.0f  %7.2f  %-11s  %-11s  %-11s  %t\n",
			r.Nodes, r.OfferedPerSec, r.BoundPerSec,
			r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
			r.Max.Round(time.Microsecond), r.Drained)
	}
	return b.String()
}
