package experiments

import (
	"fmt"
	"strings"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/device"
	"qrio/internal/sched"
)

// RenderTable2 renders the Table 2 rows as text.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Controllable Backend Parameters\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-28s %s\n", r.Parameter, r.Values)
	}
	return b.String()
}

// RenderFig6 renders the Fig. 6 rows as text.
func RenderFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Fig. 6: Average decrease in score, QRIO scheduler vs random scheduler\n")
	fmt.Fprintf(&b, "  %-16s %12s %12s %12s %10s\n",
		"topology", "qrio", "random(avg)", "decrease", "feasible")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-16s %12.3f %12.3f %12.3f %10d\n",
			r.Topology, r.QRIOScore, r.RandomScore, r.Decrease, r.Feasible)
	}
	return b.String()
}

// RenderFig7 renders the Fig. 7 rows as text.
func RenderFig7(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString("Fig. 7: Achieved fidelity by device-selection strategy (demand = 1.0)\n")
	fmt.Fprintf(&b, "  %-8s %8s %9s %8s %8s %8s %10s\n",
		"circuit", "oracle", "clifford", "random", "average", "median", "evaluated")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %8.4f %9.4f %8.4f %8.4f %8.4f %10d\n",
			r.Circuit, r.Oracle, r.Clifford, r.Random, r.Average, r.Median, r.Evaluated)
	}
	return b.String()
}

// RenderFig9 renders the Fig. 9 result as text.
func RenderFig9(r Fig9Result) string {
	var b strings.Builder
	b.WriteString("Fig. 8/9: Device choice for a user-drawn (tree) topology\n")
	fmt.Fprintf(&b, "  chosen device: %s (%d/%d trials consistent)\n",
		r.Chosen, r.Consistent, r.Trials)
	for _, name := range []string{"tree", "ring", "line"} {
		if s, ok := r.Scores[name]; ok {
			fmt.Fprintf(&b, "  score[%s] = %.4f\n", name, s)
		} else {
			fmt.Fprintf(&b, "  score[%s] = (cannot host)\n", name)
		}
	}
	return b.String()
}

// RenderFig10 renders the Fig. 10 rows as text.
func RenderFig10(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString("Fig. 10: Number of filtered devices vs max two-qubit error desired\n")
	fmt.Fprintf(&b, "  %-12s %s\n", "max 2q err", "devices")
	for _, r := range rows {
		bar := strings.Repeat("#", r.Devices/2)
		fmt.Fprintf(&b, "  %-12.3f %4d %s\n", r.MaxTwoQubitError, r.Devices, bar)
	}
	return b.String()
}

// Fig10ViaScheduler re-runs the Fig. 10 sweep through the real scheduler
// filter chain (node labels + Characteristics plugin) instead of raw
// backend arithmetic — validating that the deployed filtering path agrees
// with the analytical count.
func Fig10ViaScheduler(cfg Config) ([]Fig10Row, error) {
	cfg = cfg.withDefaults()
	fleet, err := device.GenerateFleet(cfg.Fleet)
	if err != nil {
		return nil, err
	}
	st := state.New()
	for _, b := range fleet {
		if _, err := st.AddNode(b); err != nil {
			return nil, err
		}
	}
	fw := sched.NewFramework(nil, sched.NodeReady{}, sched.Characteristics{})
	nodes := st.Nodes.List()
	var rows []Fig10Row
	for _, th := range Fig10Thresholds() {
		job := api.QuantumJob{
			ObjectMeta: api.ObjectMeta{Name: "sweep"},
			Spec: api.JobSpec{
				QASM:     "OPENQASM 2.0;\nqreg q[1];\nh q[0];",
				Strategy: api.StrategyFidelity, TargetFidelity: 1,
				Requirements: api.DeviceRequirements{MaxAvg2QError: th},
			},
		}
		feasible, _ := fw.FilterNodes(job, nodes)
		rows = append(rows, Fig10Row{MaxTwoQubitError: th, Devices: len(feasible)})
	}
	return rows, nil
}
