// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated 100-device testbed:
//
//	Table 2 — the controllable backend parameters / fleet summary
//	Fig. 6  — QRIO vs random scheduler scores on five default topologies
//	Fig. 7  — achieved fidelity: Oracle / Clifford / Random / Average / Median
//	Fig. 8/9 — user-topology device choice among tree/ring/line devices
//	Fig. 10 — filtered device count vs the user's max two-qubit error bound
//
// Every experiment is deterministic per seed and returns typed rows plus a
// text rendering; cmd/qrio-experiments and the root bench harness call in.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"qrio/internal/device"
	"qrio/internal/fidelity"
	"qrio/internal/graph"
	"qrio/internal/mapomatic"
	"qrio/internal/workload"
)

// Config parameterises the experiment harness. Zero values select the
// paper's settings.
type Config struct {
	Fleet device.FleetSpec
	// Seed drives random-scheduler draws (the fleet has its own seed).
	Seed int64
	// Trials: Fig. 6 uses 25 repetitions, Fig. 9 uses 50 (paper values).
	Trials int
	// Shots per fidelity evaluation (default 512; low shot counts blur
	// the canary ranking among the best devices).
	Shots int
	// MaxDenseQubits bounds oracle simulation per device (default 16).
	MaxDenseQubits int
	// Workers bounds parallel device evaluation (default NumCPU).
	Workers int
	// Mapomatic bounds the topology-scoring search.
	Mapomatic mapomatic.Options
}

func (c Config) withDefaults() Config {
	if c.Fleet.QubitCounts == nil {
		c.Fleet = device.DefaultFleetSpec()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Trials <= 0 {
		c.Trials = 25
	}
	if c.Shots <= 0 {
		// The best fleet devices differ by only a few percent in fidelity;
		// the canary ranking needs this many shots to separate them (see
		// EXPERIMENTS.md — at low shot counts the Clifford pick degrades
		// towards random for the deepest circuit, Grover).
		c.Shots = 4096
	}
	if c.MaxDenseQubits <= 0 {
		c.MaxDenseQubits = 16
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.Mapomatic.MaxLayouts == 0 {
		c.Mapomatic.MaxLayouts = 128
	}
	if c.Mapomatic.VF2MaxVisits == 0 {
		c.Mapomatic.VF2MaxVisits = 300_000
	}
	return c
}

// forEachDevice runs fn over the fleet in parallel, preserving index order
// in the results the caller collects.
func forEachDevice(fleet []*device.Backend, workers int, fn func(i int, b *device.Backend)) {
	if workers <= 1 {
		for i, b := range fleet {
			fn(i, b)
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, b := range fleet {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, b *device.Backend) {
			defer wg.Done()
			fn(i, b)
			<-sem
		}(i, b)
	}
	wg.Wait()
}

// deviceSeed derives a stable per-device RNG seed so parallel execution
// stays deterministic.
func deviceSeed(base int64, name string) int64 {
	h := int64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= int64(name[i])
		h *= 1099511628211
	}
	return base ^ h
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// ---------------------------------------------------------------------------
// Table 2

// Table2Row summarises one fleet axis.
type Table2Row struct {
	Parameter string
	Values    string
}

// Table2 renders the controllable-parameter table plus a generated-fleet
// summary, verifying the fleet builds.
func Table2(cfg Config) ([]Table2Row, []*device.Backend, error) {
	cfg = cfg.withDefaults()
	fleet, err := device.GenerateFleet(cfg.Fleet)
	if err != nil {
		return nil, nil, err
	}
	s := cfg.Fleet
	rows := []Table2Row{
		{"Number of qubits", fmt.Sprint(s.QubitCounts)},
		{"2-qubit gate error rate", fmt.Sprintf("%.2f - %.2f (per-device mean, ±%.0f%% jitter)", s.ErrLow, s.ErrHigh, s.Jitter*100)},
		{"1-qubit gate error rate", fmt.Sprintf("%.3f - %.3f (scaled ×%.2f)", s.ErrLow*s.OneQubitScale, s.ErrHigh*s.OneQubitScale, s.OneQubitScale)},
		{"Readout rate", fmt.Sprint(s.ReadoutChoices)},
		{"T1 / T2 (µs)", fmt.Sprint(s.T1T2Choices)},
		{"Readout length (ns)", fmt.Sprintf("%g", s.ReadoutLenNS)},
		{"Edge connect probabilities", fmt.Sprint(s.EdgeProbs)},
		{"Basis gates", fmt.Sprint(device.DefaultBasis)},
		{"Devices generated", fmt.Sprint(len(fleet))},
	}
	return rows, fleet, nil
}

// ---------------------------------------------------------------------------
// Fig. 6 — default-topology scheduling scores

// DefaultTopologies returns the five §4.2 topology requests in the paper's
// reporting order.
func DefaultTopologies() []struct {
	Name string
	G    *graph.Graph
} {
	hs, err := graph.HeavySquare(6)
	if err != nil {
		panic(err) // static input; cannot fail
	}
	return []struct {
		Name string
		G    *graph.Graph
	}{
		{"grid-4", graph.Grid(2, 2)},
		{"heavy-square-6", hs},
		{"full-6", graph.Full(6)},
		{"line-6", graph.Line(6)},
		{"ring-7", graph.Ring(7)},
	}
}

// Fig6Row is one bar of Fig. 6.
type Fig6Row struct {
	Topology string
	// QRIOScore is the deterministic lowest score across the fleet.
	QRIOScore float64
	// RandomScore is the mean score of a uniformly random feasible device
	// over Trials draws.
	RandomScore float64
	// Decrease = RandomScore − QRIOScore (the paper's reported quantity).
	Decrease float64
	// Feasible counts devices that could host the topology at all.
	Feasible int
}

// Fig6 reproduces the default-topology experiment (§4.2): for each default
// topology, compare the score of QRIO's choice (minimum Mapomatic-style
// cost across the fleet) with a random scheduler's choice, averaged over
// cfg.Trials repetitions.
func Fig6(cfg Config) ([]Fig6Row, error) {
	cfg = cfg.withDefaults()
	fleet, err := device.GenerateFleet(cfg.Fleet)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rows []Fig6Row
	for _, topo := range DefaultTopologies() {
		tc := mapomatic.TopologyCircuit(topo.G)
		scores := make([]float64, len(fleet))
		valid := make([]bool, len(fleet))
		forEachDevice(fleet, cfg.Workers, func(i int, b *device.Backend) {
			s, err := mapomatic.BestLayout(tc, b, cfg.Mapomatic)
			if err != nil || math.IsInf(s.Cost, 1) {
				return
			}
			scores[i] = s.Cost
			valid[i] = true
		})
		var feasible []float64
		for i, ok := range valid {
			if ok {
				feasible = append(feasible, scores[i])
			}
		}
		if len(feasible) == 0 {
			return nil, fmt.Errorf("experiments: no device can host topology %s", topo.Name)
		}
		qrio := feasible[0]
		for _, s := range feasible {
			if s < qrio {
				qrio = s
			}
		}
		randomSum := 0.0
		for t := 0; t < cfg.Trials; t++ {
			randomSum += feasible[rng.Intn(len(feasible))]
		}
		randomAvg := randomSum / float64(cfg.Trials)
		rows = append(rows, Fig6Row{
			Topology:    topo.Name,
			QRIOScore:   qrio,
			RandomScore: randomAvg,
			Decrease:    randomAvg - qrio,
			Feasible:    len(feasible),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 7 — achieved fidelity by scheduling strategy

// Fig7Row is one circuit's bar group in Fig. 7.
type Fig7Row struct {
	Circuit string
	// Achieved fidelity of the actual circuit on the device each strategy
	// picked; Average/Median are over all evaluable devices.
	Oracle   float64
	Clifford float64
	Random   float64
	Average  float64
	Median   float64
	// Evaluated counts devices where the achieved fidelity was computable.
	Evaluated int
}

// Fig7 reproduces the fidelity experiment (§4.3) with a 100% fidelity
// demand: the Oracle strategy scores devices on the real circuit, the
// Clifford strategy on the canary, Random picks blindly; all three are then
// judged by the achieved fidelity of the real circuit on their pick.
func Fig7(cfg Config) ([]Fig7Row, error) {
	cfg = cfg.withDefaults()
	fleet, err := device.GenerateFleet(cfg.Fleet)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rows []Fig7Row
	for _, pc := range workload.PaperCircuits() {
		achieved := make([]float64, len(fleet))
		canary := make([]float64, len(fleet))
		valid := make([]bool, len(fleet))
		forEachDevice(fleet, cfg.Workers, func(i int, b *device.Backend) {
			est := fidelity.Estimator{
				Shots:          cfg.Shots,
				Seed:           deviceSeed(cfg.Seed, b.Name+pc.Name),
				MaxDenseQubits: cfg.MaxDenseQubits,
			}
			ex, err := est.Execute(pc.Circuit, b)
			if err != nil {
				return // device not evaluable for this circuit (e.g. routed too wide)
			}
			cf, err := est.CanaryFidelity(pc.Circuit, b)
			if err != nil {
				return
			}
			achieved[i] = ex.Fidelity
			canary[i] = cf
			valid[i] = true
		})
		var pool []int
		for i, ok := range valid {
			if ok {
				pool = append(pool, i)
			}
		}
		if len(pool) == 0 {
			return nil, fmt.Errorf("experiments: circuit %s evaluable on no device", pc.Name)
		}
		argmax := func(vals []float64) int {
			best := pool[0]
			for _, i := range pool {
				if vals[i] > vals[best] {
					best = i
				}
			}
			return best
		}
		oraclePick := argmax(achieved)
		cliffordPick := argmax(canary)
		randomSum := 0.0
		for t := 0; t < cfg.Trials; t++ {
			randomSum += achieved[pool[rng.Intn(len(pool))]]
		}
		all := make([]float64, 0, len(pool))
		for _, i := range pool {
			all = append(all, achieved[i])
		}
		rows = append(rows, Fig7Row{
			Circuit:   pc.Name,
			Oracle:    achieved[oraclePick],
			Clifford:  achieved[cliffordPick],
			Random:    randomSum / float64(cfg.Trials),
			Average:   mean(all),
			Median:    median(all),
			Evaluated: len(pool),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Fig. 8/9 — user-topology device choice

// Fig9Result records the §4.4 qualitative experiment.
type Fig9Result struct {
	// Chosen is the device the scheduler selected (expected: "tree").
	Chosen string
	// Consistent counts trials (of Trials) that chose the same device.
	Trials, Consistent int
	// Scores holds each candidate's topology score.
	Scores map[string]float64
}

// Fig9 builds the paper's three 10-qubit devices — tree-like, ring and
// line, with identical uniform error rates so only topology matters — and
// asks the topology-ranking strategy to place a user topology drawn to
// match the tree device. The tree device must win, repeatedly.
func Fig9(cfg Config) (Fig9Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Trials == 25 {
		cfg.Trials = 50 // paper repeats this experiment 50 times
	}
	mk := func(name string, g *graph.Graph) (*device.Backend, error) {
		return device.UniformBackend(name, g, 0.05, 0.01, 0.02, 500e3, 500e3)
	}
	tree, err := mk("tree", graph.BalancedBinaryTree(10))
	if err != nil {
		return Fig9Result{}, err
	}
	ring, err := mk("ring", graph.Ring(10))
	if err != nil {
		return Fig9Result{}, err
	}
	line, err := mk("line", graph.Line(10))
	if err != nil {
		return Fig9Result{}, err
	}
	devices := []*device.Backend{tree, ring, line}
	// The user draws a topology matching the tree device (Fig. 8).
	userTopology := graph.BalancedBinaryTree(10)
	tc := mapomatic.TopologyCircuit(userTopology)

	res := Fig9Result{Trials: cfg.Trials, Scores: map[string]float64{}}
	for t := 0; t < cfg.Trials; t++ {
		ranked := mapomatic.RankBackends(tc, devices, cfg.Mapomatic)
		if len(ranked) == 0 {
			return res, fmt.Errorf("experiments: no device hosts the user topology")
		}
		if t == 0 {
			res.Chosen = ranked[0].Backend
			for _, s := range ranked {
				res.Scores[s.Backend] = s.Cost
			}
		}
		if ranked[0].Backend == res.Chosen {
			res.Consistent++
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Fig. 10 — filtering by requested characteristics

// Fig10Row is one point of the filtering sweep.
type Fig10Row struct {
	MaxTwoQubitError float64
	Devices          int
}

// Fig10Thresholds are the paper's ten x-axis values.
func Fig10Thresholds() []float64 {
	return []float64{0.07, 0.147, 0.214, 0.280, 0.347, 0.414, 0.480, 0.547, 0.613, 0.680}
}

// Fig10 reproduces the filtering experiment (§4.5): how many of the 100
// devices survive a user bound on average two-qubit error.
func Fig10(cfg Config) ([]Fig10Row, error) {
	cfg = cfg.withDefaults()
	fleet, err := device.GenerateFleet(cfg.Fleet)
	if err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for _, th := range Fig10Thresholds() {
		count := 0
		for _, b := range fleet {
			if b.AvgTwoQubitErr() <= th {
				count++
			}
		}
		rows = append(rows, Fig10Row{MaxTwoQubitError: th, Devices: count})
	}
	return rows, nil
}
