package experiments_test

import (
	"math"
	"strings"
	"testing"

	"qrio/internal/device"
	"qrio/internal/experiments"
)

// smallConfig shrinks the fleet (30 devices) and shot budget so the shape
// tests run in seconds; the full Table 2 fleet is exercised by the bench
// harness and cmd/qrio-experiments.
func smallConfig() experiments.Config {
	spec := device.DefaultFleetSpec()
	spec.QubitCounts = []int{15, 20, 27}
	return experiments.Config{Fleet: spec, Seed: 1, Shots: 2048}
}

func TestTable2(t *testing.T) {
	rows, fleet, err := experiments.Table2(experiments.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 100 {
		t.Fatalf("fleet = %d devices, want 100 (Table 2)", len(fleet))
	}
	text := experiments.RenderTable2(rows)
	for _, want := range []string{"qubits", "Edge connect", "Basis gates", "u1 u2 u3 cx"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 2 rendering missing %q:\n%s", want, text)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := experiments.Fig6(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Fig 6 rows = %d, want 5 topologies", len(rows))
	}
	byName := map[string]experiments.Fig6Row{}
	for _, r := range rows {
		byName[r.Topology] = r
		// Headline claim: QRIO always beats the random scheduler.
		if r.Decrease <= 0 {
			t.Errorf("%s: decrease = %v, QRIO must beat random", r.Topology, r.Decrease)
		}
		if r.QRIOScore < 0 || math.IsInf(r.QRIOScore, 0) {
			t.Errorf("%s: bad QRIO score %v", r.Topology, r.QRIOScore)
		}
	}
	// Second claim: the fully-connected request shows the largest gap —
	// only a handful of dense devices suit it (paper §4.2).
	full := byName["full-6"]
	for name, r := range byName {
		if name == "full-6" {
			continue
		}
		if full.Decrease <= r.Decrease {
			t.Errorf("full-6 decrease %v not the largest (vs %s %v)",
				full.Decrease, name, r.Decrease)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 takes several seconds")
	}
	rows, err := experiments.Fig7(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Fig 7 rows = %d, want 6 circuits", len(rows))
	}
	for _, r := range rows {
		// Oracle is the upper bound (small slack for seed differences in
		// pick-evaluation RNG streams).
		if r.Clifford > r.Oracle+0.02 {
			t.Errorf("%s: clifford %v exceeds oracle %v", r.Circuit, r.Clifford, r.Oracle)
		}
		// The deployable strategy must beat blind selection decisively on
		// Clifford circuits, and never fall below it meaningfully.
		if r.Clifford < r.Random-0.05 {
			t.Errorf("%s: clifford %v below random %v", r.Circuit, r.Clifford, r.Random)
		}
		if r.Oracle <= r.Average {
			t.Errorf("%s: oracle %v <= fleet average %v", r.Circuit, r.Oracle, r.Average)
		}
		if r.Median > r.Average+0.1 {
			t.Errorf("%s: median %v implausibly above average %v", r.Circuit, r.Median, r.Average)
		}
		for _, v := range []float64{r.Oracle, r.Clifford, r.Random, r.Average, r.Median} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Errorf("%s: fidelity out of range: %v", r.Circuit, v)
			}
		}
	}
	// Clifford-only circuits: canary sees the real circuit, picks must agree.
	for _, r := range rows {
		switch r.Circuit {
		case "bv", "hsp", "rep":
			if math.Abs(r.Clifford-r.Oracle) > 0.05 {
				t.Errorf("%s is Clifford: clifford %v should equal oracle %v",
					r.Circuit, r.Clifford, r.Oracle)
			}
		}
	}
}

func TestFig9TreeWins(t *testing.T) {
	res, err := experiments.Fig9(experiments.Config{Trials: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen != "tree" {
		t.Fatalf("chosen = %s, want tree (paper §4.4)", res.Chosen)
	}
	if res.Consistent != res.Trials {
		t.Fatalf("consistency = %d/%d, paper reports identical results in all runs",
			res.Consistent, res.Trials)
	}
	if res.Scores["tree"] >= res.Scores["ring"] || res.Scores["tree"] >= res.Scores["line"] {
		t.Fatalf("tree score %v not the lowest: %v", res.Scores["tree"], res.Scores)
	}
}

func TestFig10Shape(t *testing.T) {
	cfg := experiments.Config{} // full 100-device fleet: cheap
	rows, err := experiments.Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("Fig 10 rows = %d, want 10 thresholds", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Devices < rows[i-1].Devices {
			t.Fatalf("filter counts not monotone: %v", rows)
		}
	}
	if rows[0].Devices > 15 {
		t.Errorf("at 0.07 max error %d devices pass; expected almost none", rows[0].Devices)
	}
	if rows[len(rows)-1].Devices < 90 {
		t.Errorf("at 0.68 max error only %d devices pass; expected nearly all",
			rows[len(rows)-1].Devices)
	}
}

func TestFig10SchedulerPathAgrees(t *testing.T) {
	cfg := experiments.Config{}
	analytic, err := experiments.Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaSched, err := experiments.Fig10ViaScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range analytic {
		if analytic[i].Devices != viaSched[i].Devices {
			t.Fatalf("threshold %.3f: analytic %d != scheduler path %d",
				analytic[i].MaxTwoQubitError, analytic[i].Devices, viaSched[i].Devices)
		}
	}
}

func TestRenderings(t *testing.T) {
	cfg := smallConfig()
	f6, err := experiments.Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(experiments.RenderFig6(f6), "full-6") {
		t.Error("Fig6 rendering incomplete")
	}
	f9, err := experiments.Fig9(experiments.Config{Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(experiments.RenderFig9(f9), "tree") {
		t.Error("Fig9 rendering incomplete")
	}
	f10, err := experiments.Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(experiments.RenderFig10(f10), "devices") {
		t.Error("Fig10 rendering incomplete")
	}
}

// TestCapacitySweep pins the capacity experiment's physics: with offered
// load fixed, adding nodes must not worsen tail latency, the largest
// fleet must drain comfortably, and the sweep must be deterministic per
// seed.
func TestCapacitySweep(t *testing.T) {
	cfg := experiments.Config{Seed: 9}
	rows, err := experiments.Capacity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(experiments.CapacityScales()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(experiments.CapacityScales()))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].P99 > rows[i-1].P99 {
			t.Fatalf("p99 worsened with more nodes: %v @ %d vs %v @ %d",
				rows[i].P99, rows[i].Nodes, rows[i-1].P99, rows[i-1].Nodes)
		}
	}
	last := rows[len(rows)-1]
	if !last.Drained {
		t.Fatalf("largest fleet (%d nodes) did not drain", last.Nodes)
	}
	again, err := experiments.Capacity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if experiments.RenderCapacity(rows) != experiments.RenderCapacity(again) {
		t.Fatal("capacity sweep not deterministic for the same seed")
	}
}
