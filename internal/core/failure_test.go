package core_test

import (
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/core"
	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/master"
	"qrio/internal/quantum/qasm"
	"qrio/internal/workload"
)

// TestNodeFailureRequeuesJob kills the chosen node right after binding and
// verifies the controller requeues the job onto the surviving device —
// the self-healing property §3.1 claims from Kubernetes.
func TestNodeFailureRequeuesJob(t *testing.T) {
	mk := func(name string, e2 float64) *device.Backend {
		b, err := device.UniformBackend(name, graph.Line(10), e2, 0.005, 0.01, 500e3, 500e3)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// The clean device will win the first scheduling round.
	clean := mk("doomed", 0.02)
	backup := mk("backup", 0.05)
	q, err := core.New(core.Config{Backends: []*device.Backend{clean, backup}})
	if err != nil {
		t.Fatal(err)
	}
	// Shorten controller timings so the test runs fast; do NOT start the
	// orchestrator's loops — drive each control loop by hand for
	// determinism.
	q.Controller.StuckTimeout = 10 * time.Millisecond
	q.Controller.NodeTimeout = time.Hour // heartbeats are manual here

	src, err := qasm.Dump(workload.GHZ(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(master.SubmitRequest{
		JobName: "resilient", QASM: src, Shots: 64,
		Strategy: api.StrategyFidelity, TargetFidelity: 1.0,
	}); err != nil {
		t.Fatal(err)
	}

	// Round 1: scheduler binds to the clean device.
	if bound := q.Scheduler.SchedulePass(); bound != 1 {
		t.Fatalf("bound %d jobs, want 1", bound)
	}
	j, _, _ := q.State.Jobs.Get("resilient")
	if j.Status.Node != "doomed" {
		t.Fatalf("expected the clean device to win, got %s", j.Status.Node)
	}

	// The node dies before its kubelet picks the job up.
	q.State.Nodes.Update("doomed", func(n api.Node) (api.Node, error) {
		n.Status.Phase = api.NodeNotReady
		return n, nil
	})
	time.Sleep(20 * time.Millisecond) // pass the stuck-grace period
	q.Controller.ReconcileOnce()

	j, _, _ = q.State.Jobs.Get("resilient")
	if j.Status.Phase != api.JobPending {
		t.Fatalf("job not requeued: %s", j.Status.Phase)
	}

	// Round 2: only the backup is schedulable now.
	if bound := q.Scheduler.SchedulePass(); bound != 1 {
		t.Fatal("rescheduling failed")
	}
	j, _, _ = q.State.Jobs.Get("resilient")
	if j.Status.Node != "backup" {
		t.Fatalf("rescheduled to %s, want backup", j.Status.Node)
	}

	// The backup kubelet executes it to completion.
	for _, k := range q.Kubelets {
		if k.NodeName == "backup" {
			if ran := k.SyncOnce(); !ran {
				t.Fatal("backup kubelet did not run the job")
			}
		}
	}
	j, _, _ = q.State.Jobs.Get("resilient")
	if j.Status.Phase != api.JobSucceeded {
		t.Fatalf("final phase = %s (%s)", j.Status.Phase, j.Status.Message)
	}
	if j.Status.Attempts != 1 {
		t.Fatalf("attempts = %d", j.Status.Attempts)
	}
}

// TestConcurrentSchedulingExtension exercises the §5 future-work mode: with
// Concurrency > 1, queued jobs fan out across free nodes in one pass and
// all complete.
func TestConcurrentSchedulingExtension(t *testing.T) {
	var fleet []*device.Backend
	for _, name := range []string{"n1", "n2", "n3"} {
		b, err := device.UniformBackend(name, graph.Line(8), 0.05, 0.005, 0.01, 500e3, 500e3)
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, b)
	}
	q, err := core.New(core.Config{Backends: fleet, Concurrency: 3})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Stop()

	src, err := qasm.Dump(workload.GHZ(3))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"c1", "c2", "c3"}
	for _, name := range names {
		if _, err := q.Submit(master.SubmitRequest{
			JobName: name, QASM: src, Shots: 64,
			Strategy: api.StrategyFidelity, TargetFidelity: 1.0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	nodesUsed := map[string]bool{}
	for _, name := range names {
		j, err := q.WaitForJob(name, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status.Phase != api.JobSucceeded {
			t.Fatalf("%s phase = %s", name, j.Status.Phase)
		}
		nodesUsed[j.Status.Node] = true
	}
	// With three free nodes and concurrency 3, the jobs must have spread
	// over more than one node.
	if len(nodesUsed) < 2 {
		t.Fatalf("concurrent jobs all serialised onto %v", nodesUsed)
	}
}

// TestFailedJobRetriesOnAnotherAttempt forces an execution failure (image
// vanishes) and verifies the retry path converges to Failed after the
// budget is spent.
func TestFailedJobRetryBudget(t *testing.T) {
	b, err := device.UniformBackend("solo", graph.Line(6), 0.05, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.New(core.Config{Backends: []*device.Backend{b}, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	src, err := qasm.Dump(workload.GHZ(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(master.SubmitRequest{
		JobName: "flaky", QASM: src,
		Strategy: api.StrategyFidelity, TargetFidelity: 1.0,
	}); err != nil {
		t.Fatal(err)
	}
	// Sabotage: point the job at a nonexistent image.
	q.State.Jobs.Update("flaky", func(j api.QuantumJob) (api.QuantumJob, error) {
		j.Spec.Image = "ghost:latest"
		return j, nil
	})
	// Drive the loops manually: schedule, fail, retry, fail, stay failed.
	for round := 0; round < 3; round++ {
		q.Scheduler.SchedulePass()
		for _, k := range q.Kubelets {
			k.SyncOnce()
		}
		q.Controller.ReconcileOnce()
	}
	j, _, _ := q.State.Jobs.Get("flaky")
	if j.Status.Phase != api.JobFailed {
		t.Fatalf("phase = %s, want Failed after budget", j.Status.Phase)
	}
	if j.Status.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (one retry)", j.Status.Attempts)
	}
}
