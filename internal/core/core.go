// Package core assembles the complete QRIO system — the paper's primary
// contribution (§3): cluster state, Meta Server, Master Server, image
// registry, scheduler (filter + meta-score ranking), one kubelet per node
// and the lifecycle controller — into a single deployable orchestrator.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qrio/internal/clock"
	"qrio/internal/cluster/api"
	"qrio/internal/cluster/controller"
	"qrio/internal/cluster/durability"
	"qrio/internal/cluster/kubelet"
	"qrio/internal/cluster/state"
	"qrio/internal/cluster/store"
	"qrio/internal/device"
	"qrio/internal/faults"
	"qrio/internal/master"
	"qrio/internal/meta"
	"qrio/internal/obs"
	"qrio/internal/registry"
	"qrio/internal/resilience"
	"qrio/internal/sched"
)

// Config describes a QRIO deployment.
type Config struct {
	// Backends are the vendor devices forming the cluster (§3.1).
	Backends []*device.Backend
	// Meta tunes the Meta Server's scoring engines.
	Meta meta.Options
	// Concurrency is the scheduler's jobs-per-pass cap (default 1, the
	// paper's single-job architecture; >1 selects batched dispatch, the
	// §5 extension: the pass ranks that many pending jobs in parallel and
	// binds them greedily to free container slots).
	Concurrency int
	// DisableScheduler wires the deployment without running the in-process
	// scheduling loop: the gateway, controller and kubelets run as usual
	// but binding is left to out-of-process scheduler replicas driving
	// POST /v1/bind (cmd/qrio-sched). The Scheduler field is still built —
	// tests and tooling can drive passes manually — it just never Runs.
	DisableScheduler bool
	// NodeConcurrency caps how many job containers a single node executes
	// at once (default 1 = the paper's serial node). Values > 1 are
	// additionally bounded per node by its classical CPU capacity: a node
	// never gets more slots than max(1, CPUMillis/1000).
	NodeConcurrency int
	// ScoreWorkers bounds concurrent Meta-Server scoring calls fleet-wide
	// during batched dispatch — a single budget shared by every job being
	// ranked, not a per-job pool (0 = GOMAXPROCS).
	ScoreWorkers int
	// KubeletSeed seeds node execution RNGs for reproducible runs.
	KubeletSeed int64
	// MaxRetries bounds automatic retries of failed jobs.
	MaxRetries int
	// TenantWeights skews the scheduler's weighted fair queue: while
	// several tenants are backlogged, binds are shared proportionally to
	// their weights (missing tenants weigh 1). Only batched dispatch
	// (Concurrency > 1) consults it; the serial path stays strict FIFO.
	TenantWeights map[string]int
	// TenantQuotas bounds each tenant's admitted-but-unfinished work; the
	// gateway's admission layer enforces it on every submission. The zero
	// policy admits everything.
	TenantQuotas api.TenantQuotaPolicy
	// TenantRateLimits bounds each tenant's submission arrival rate; the
	// gateway's flow-control layer enforces it (live TenantConfig
	// overrides win). The zero policy rate-limits nobody.
	TenantRateLimits api.TenantRateLimitPolicy
	// Faults is the fault-injection registry threaded through the
	// deployment's dependency edges (meta scoring, kubelet runtimes, WAL
	// appends, archive spill). Nil resolves to faults.Default, which is
	// inert unless armed (the daemon's -faults flag arms it).
	Faults *faults.Registry
	// Clock is the deployment's time source (nil = wall clock). Virtual
	// clocks drive the scheduler, controller, state timestamps, scoring
	// circuit breaker and rate-limit refills — the chaos harness runs
	// outage cool-downs in virtual time.
	Clock clock.Clock
	// Breaker overrides the Meta-scoring circuit breaker configuration
	// (nil = defaults: 5 consecutive failures, 5s cool-down, 1 probe).
	Breaker *resilience.Breaker
	// Retention bounds how long terminal jobs stay resident in the hot
	// store: the controller's sweep moves older/overflowing ones (with
	// their event trails) into the archive tier, keeping scheduler and
	// watch-recovery cost proportional to live work. The zero policy
	// retains everything forever — the pre-archive behaviour. Archived
	// history stays queryable (GET /v1/jobs?archived=true and the by-name
	// fallthrough).
	Retention state.RetentionPolicy
	// Metrics is the deployment's observability registry. Nil disables
	// instrumentation entirely — hot paths pay one nil check and the
	// gateway's GET /v1/metrics answers 404. With a registry set, every
	// layer registers its families on it at wiring time and cmd/qrio, the
	// simulator and tests share one scrapeable view (QRIO.Metrics).
	Metrics *obs.Registry
	// Durability configures crash-recoverable cluster state: a data
	// directory with per-shard write-ahead logs, periodic compacted
	// snapshots and the archive spill file. The zero value keeps the
	// cluster fully in-memory — the pre-durability behaviour, byte for
	// byte. With durability on, New replays the directory before anything
	// else runs: jobs, results, events, tenant overrides and the archive
	// come back; Running jobs are re-queued (their containers died with
	// the old process); replayed nodes are refreshed against Backends.
	Durability durability.Options
}

// containerSlots resolves a backend's container capacity under the
// deployment's NodeConcurrency cap.
func containerSlots(nodeConcurrency int, b *device.Backend) int {
	if nodeConcurrency <= 1 {
		return 1
	}
	capacity := int(b.CPUMillis / 1000)
	if capacity < 1 {
		capacity = 1
	}
	if nodeConcurrency < capacity {
		return nodeConcurrency
	}
	return capacity
}

// applySlots writes a backend's resolved container capacity onto its node
// — shared by initial wiring and runtime vendor registration so the two
// paths can never drift.
func applySlots(st *state.Cluster, nodeConcurrency int, b *device.Backend) {
	if slots := containerSlots(nodeConcurrency, b); slots > 1 {
		st.Nodes.Update(b.Name, func(n api.Node) (api.Node, error) {
			n.Spec.MaxContainers = slots
			return n, nil
		})
	}
}

// QRIO is a running orchestrator instance.
type QRIO struct {
	State      *state.Cluster
	Meta       *meta.Server
	Master     *master.Server
	Registry   *registry.Registry
	Scheduler  *sched.Scheduler
	Controller *controller.Controller
	Kubelets   []*kubelet.Kubelet
	// Quotas is the deployment's tenant quota policy (Config.TenantQuotas);
	// the gateway's admission layer reads it (live TenantConfig overrides
	// win — resolve through State.QuotaFor).
	Quotas api.TenantQuotaPolicy
	// Durability is the durable-state manager, nil when the deployment
	// runs in-memory.
	Durability *durability.Manager
	// Faults is the registry the deployment's fault points resolve to
	// (Config.Faults; nil means faults.Default).
	Faults *faults.Registry
	// ScorerBreaker is the circuit breaker guarding Meta-Server scoring;
	// its state is observable (degraded-mode scheduling, admin surfaces).
	ScorerBreaker *resilience.Breaker
	// Metrics is the deployment's observability registry (Config.Metrics);
	// nil when the deployment runs uninstrumented. The gateway serves it
	// as GET /v1/metrics.
	Metrics *obs.Registry

	mu              sync.Mutex
	ctx             context.Context
	cancel          context.CancelFunc
	wg              sync.WaitGroup
	started         bool
	draining        atomic.Bool
	nextKubeletSeed int64
	nodeConcurrency int
	schedulerOff    bool
}

// New wires a QRIO deployment from the config. Backends are registered
// both as cluster nodes and with the Meta Server (§3.1: a copy of every
// vendor backend file is kept in the Meta Server).
func New(cfg Config) (*QRIO, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("core: a QRIO cluster needs at least one backend")
	}
	st := state.New()
	st.Quotas = cfg.TenantQuotas
	st.RateLimits = cfg.TenantRateLimits
	if cfg.Clock != nil {
		st.Clock = cfg.Clock
	}
	var dur *durability.Manager
	if cfg.Durability.Enabled() {
		if cfg.Durability.Faults == nil {
			cfg.Durability.Faults = cfg.Faults
		}
		var err error
		if dur, err = durability.Open(st, cfg.Durability); err != nil {
			return nil, err
		}
	}
	metaSrv := meta.NewServer(cfg.Meta)
	reg := registry.New()
	for _, b := range cfg.Backends {
		if _, err := st.AddNode(b); err != nil {
			var exists store.ErrExists
			if dur == nil || !errors.As(err, &exists) {
				return nil, fmt.Errorf("core: adding node %s: %w", b.Name, err)
			}
			// The node came back from durable state; refresh it in place so
			// identity and reservations survive while the spec follows the
			// current flags.
			if _, err := st.RefreshNode(b); err != nil {
				return nil, fmt.Errorf("core: refreshing node %s: %w", b.Name, err)
			}
		}
		applySlots(st, cfg.NodeConcurrency, b)
		if err := metaSrv.RegisterBackend(b); err != nil {
			return nil, fmt.Errorf("core: registering backend %s: %w", b.Name, err)
		}
	}
	// The scoring path is circuit-broken: the live scorer (behind the
	// meta.score fault point) feeds ResilientMetaScore, which degrades to
	// stale-cache / heuristic scoring when the Meta Server is down and
	// records one SchedulingDegraded event per outage.
	breaker := cfg.Breaker
	if breaker == nil {
		breaker = &resilience.Breaker{Clock: cfg.Clock}
	}
	scorer := &sched.ResilientMetaScore{
		Scorer:  meta.FaultScorer{Scorer: metaSrv, Faults: cfg.Faults},
		Breaker: breaker,
		Clock:   cfg.Clock,
		OnDegraded: func(detail string) {
			st.RecordEvent("Scheduler", "scheduler", "SchedulingDegraded", detail)
		},
	}
	fw := sched.NewFramework(scorer, sched.DefaultFilters()...)
	fw.ScoreParallelism = cfg.ScoreWorkers
	scheduler := sched.New(st, fw)
	if cfg.Concurrency > 0 {
		scheduler.Concurrency = cfg.Concurrency
	}
	scheduler.TenantWeights = cfg.TenantWeights
	scheduler.TenantQuotas = cfg.TenantQuotas
	if cfg.Clock != nil {
		scheduler.Clock = cfg.Clock
	}
	ctl := controller.New(st)
	if cfg.MaxRetries > 0 {
		ctl.MaxRetries = cfg.MaxRetries
	}
	ctl.Retention = cfg.Retention
	if cfg.Clock != nil {
		ctl.Clock = cfg.Clock
	}
	q := &QRIO{
		State:         st,
		Meta:          metaSrv,
		Master:        master.NewServer(st, reg),
		Registry:      reg,
		Scheduler:     scheduler,
		Controller:    ctl,
		Quotas:        cfg.TenantQuotas,
		Durability:    dur,
		Faults:        cfg.Faults,
		ScorerBreaker: breaker,
	}
	for i, b := range cfg.Backends {
		k := kubelet.New(b.Name, st, reg, cfg.KubeletSeed+int64(i))
		k.Faults = cfg.Faults
		if cfg.Clock != nil {
			k.Clock = cfg.Clock
		}
		q.Kubelets = append(q.Kubelets, k)
	}
	q.nextKubeletSeed = cfg.KubeletSeed + int64(len(cfg.Backends))
	q.nodeConcurrency = cfg.NodeConcurrency
	q.schedulerOff = cfg.DisableScheduler
	if cfg.Metrics != nil {
		q.Metrics = cfg.Metrics
		registerMetrics(q, cfg.Metrics)
	}
	return q, nil
}

// AddBackend registers a new vendor device at runtime (the vendor
// dashboard path): the backend becomes a labelled node, is copied to the
// Meta Server, and gets a kubelet — started immediately when the
// orchestrator is already running.
func (q *QRIO) AddBackend(b *device.Backend) error {
	if _, err := q.State.AddNode(b); err != nil {
		return err
	}
	applySlots(q.State, q.nodeConcurrency, b)
	if err := q.Meta.RegisterBackend(b); err != nil {
		return err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	k := kubelet.New(b.Name, q.State, q.Registry, q.nextKubeletSeed)
	k.Faults = q.Faults
	if q.State.Clock != nil {
		k.Clock = q.State.Clock
	}
	q.nextKubeletSeed++
	q.Kubelets = append(q.Kubelets, k)
	if q.started {
		q.wg.Add(1)
		ctx := q.ctx
		go func() {
			defer q.wg.Done()
			k.Run(ctx)
		}()
	}
	return nil
}

// Start launches the control loops (scheduler, controller, kubelets).
func (q *QRIO) Start() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.started {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	q.ctx = ctx
	q.cancel = cancel
	q.started = true
	if !q.schedulerOff {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			q.Scheduler.Run(ctx)
		}()
	}
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		q.Controller.Run(ctx)
	}()
	for _, k := range q.Kubelets {
		k := k
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			k.Run(ctx)
		}()
	}
	if q.Durability != nil {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			q.Durability.Run(ctx)
		}()
	}
}

// Stop halts all control loops and waits for them to exit.
func (q *QRIO) Stop() {
	q.mu.Lock()
	if !q.started {
		q.mu.Unlock()
		return
	}
	q.cancel()
	q.started = false
	q.mu.Unlock()
	q.wg.Wait()
}

// BeginDrain flips the orchestrator into draining mode: the gateway
// rejects new submissions with 503 draining while reads, watches and
// in-flight work continue. Idempotent; there is no undrain — a draining
// process is on its way out.
func (q *QRIO) BeginDrain() { q.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (q *QRIO) Draining() bool { return q.draining.Load() }

// Drain performs the graceful half of a SIGTERM shutdown: it begins
// draining (no new intake), stops the control loops — which blocks until
// in-flight containers finish, because each kubelet's Run waits for its
// jobs before returning — then requeues any job the scheduler bound but
// no kubelet claimed, so a drained restart re-binds it instead of
// leaving it parked in Scheduled forever. With durability on it ends
// with a compacted snapshot, so the next boot replays nothing. Returns
// how many unclaimed jobs were requeued. Call Close afterwards to
// release durable-state resources.
func (q *QRIO) Drain() (requeued int, err error) {
	q.BeginDrain()
	q.Stop()
	requeued = q.State.RequeueUnclaimedScheduled(
		"requeued: daemon drained before a kubelet claimed the job")
	if q.Durability != nil {
		if _, serr := q.Durability.Snapshot(); serr != nil {
			err = fmt.Errorf("core: final drain snapshot: %w", serr)
		}
	}
	return requeued, err
}

// Close stops the control loops and releases durable-state resources
// (WAL writers, archive spill). The orchestrator cannot be restarted
// after Close; use Stop for a pausable halt.
func (q *QRIO) Close() error {
	q.Stop()
	if q.Durability != nil {
		return q.Durability.Close()
	}
	return nil
}

// Submit routes a full job request through the Master Server, uploading
// the strategy metadata to the Meta Server first (the Visualizer's flow:
// step 2 uploads metadata, step 3 sends the job to the master, §3).
func (q *QRIO) Submit(req master.SubmitRequest) (api.QuantumJob, error) {
	m := meta.JobMeta{
		JobName:        req.JobName,
		Strategy:       req.Strategy,
		TargetFidelity: req.TargetFidelity,
		CircuitQASM:    req.QASM,
		TopologyQASM:   req.TopologyQASM,
	}
	if req.Strategy == api.StrategyTopology {
		m.CircuitQASM = "" // Table 1: topology uploads carry only the topology file
		m.TargetFidelity = 0
	}
	if err := q.Meta.PutJobMeta(m); err != nil {
		return api.QuantumJob{}, err
	}
	return q.Master.Submit(req)
}

// Cancel requests cancellation of a job through the full lifecycle:
// pending jobs leave the queue, scheduled jobs give their slot back, and
// running jobs have their container aborted by the owning kubelet. It
// returns the job as of the request; use WaitForJob to observe the final
// JobCancelled phase of a running job.
func (q *QRIO) Cancel(jobName string) (api.QuantumJob, error) {
	return q.State.CancelJob(jobName)
}

// WaitForJob blocks until the job reaches a terminal phase or the timeout
// elapses, returning the final job object.
func (q *QRIO) WaitForJob(jobName string, timeout time.Duration) (api.QuantumJob, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	j, err := q.WaitForJobCtx(ctx, jobName)
	if errors.Is(err, context.DeadlineExceeded) {
		return j, fmt.Errorf("core: job %s still %s after %v", jobName, j.Status.Phase, timeout)
	}
	return j, err
}

// WaitForJobCtx blocks until the job reaches a terminal phase or the
// context ends. It subscribes to the cluster's broadcast hub instead of
// polling: the hot loop of the old implementation (a 5ms sleep-poll) is
// replaced by event delivery, with a coarse re-check tick only as a guard
// against dropped notifications (the hub's documented slow-consumer
// behaviour). On context expiry the job's last observed state is returned
// alongside the context error.
func (q *QRIO) WaitForJobCtx(ctx context.Context, jobName string) (api.QuantumJob, error) {
	sub, cancel := q.State.Subscribe(256)
	defer cancel()
	// Check after subscribing so a transition between Get and Subscribe
	// cannot be missed.
	last, _, err := q.State.Jobs.Get(jobName)
	if err != nil {
		// An archived job already finished; report its terminal state.
		if entry, ok := q.State.Archived.Get(jobName); ok {
			return entry.Job, nil
		}
		return api.QuantumJob{}, err
	}
	if last.Status.Phase.Terminal() {
		return last, nil
	}
	recheck := time.NewTicker(250 * time.Millisecond)
	defer recheck.Stop()
	for {
		select {
		case <-ctx.Done():
			if j, _, err := q.State.Jobs.Get(jobName); err == nil {
				last = j
			}
			return last, ctx.Err()
		case n, ok := <-sub:
			if !ok {
				return last, fmt.Errorf("core: watch stream closed while waiting for %s", jobName)
			}
			if n.Kind != state.KindJob || n.Job == nil || n.Job.Name != jobName {
				continue
			}
			if n.Type == store.Deleted {
				// The retention sweep deletes terminal jobs from the hot
				// store when it archives them; that is a normal end of the
				// lifecycle, not the job vanishing.
				if n.Job.Status.Phase.Terminal() {
					return *n.Job, nil
				}
				return *n.Job, store.ErrNotFound{Name: jobName}
			}
			last = *n.Job
			if last.Status.Phase.Terminal() {
				return last, nil
			}
		case <-recheck.C:
			j, _, err := q.State.Jobs.Get(jobName)
			if err != nil {
				if entry, ok := q.State.Archived.Get(jobName); ok {
					return entry.Job, nil
				}
				return last, err
			}
			last = j
			if last.Status.Phase.Terminal() {
				return last, nil
			}
		}
	}
}

// SubmitAndWait is the end-to-end convenience: submit, wait, fetch logs.
func (q *QRIO) SubmitAndWait(req master.SubmitRequest, timeout time.Duration) (api.QuantumJob, api.Result, error) {
	if _, err := q.Submit(req); err != nil {
		return api.QuantumJob{}, api.Result{}, err
	}
	job, err := q.WaitForJob(req.JobName, timeout)
	if err != nil {
		return job, api.Result{}, err
	}
	res, ok := q.State.ResultFor(req.JobName)
	if !ok {
		return job, api.Result{}, fmt.Errorf("core: job %s finished without logs", req.JobName)
	}
	return job, res, nil
}
