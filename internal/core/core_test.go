package core_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/core"
	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/mapomatic"
	"qrio/internal/master"
	"qrio/internal/quantum/qasm"
	"qrio/internal/workload"
)

// testCluster builds a small three-device QRIO deployment: one clean line,
// one noisy line, one clean ring.
func testCluster(t *testing.T) *core.QRIO {
	t.Helper()
	clean, err := device.UniformBackend("clean-line", graph.Line(12), 0.02, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := device.UniformBackend("noisy-line", graph.Line(12), 0.5, 0.1, 0.1, 100e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := device.UniformBackend("clean-ring", graph.Ring(12), 0.02, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.New(core.Config{
		Backends:    []*device.Backend{clean, noisy, ring},
		KubeletSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestEndToEndFidelityJob(t *testing.T) {
	q := testCluster(t)
	q.Start()
	defer q.Stop()

	bv := workload.BernsteinVazirani(5, 0b1011)
	src, err := qasm.Dump(bv)
	if err != nil {
		t.Fatal(err)
	}
	job, res, err := q.SubmitAndWait(master.SubmitRequest{
		JobName:        "bv5",
		QASM:           src,
		Shots:          512,
		Strategy:       api.StrategyFidelity,
		TargetFidelity: 1.0,
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if job.Status.Phase != api.JobSucceeded {
		t.Fatalf("job phase = %s (%s)", job.Status.Phase, job.Status.Message)
	}
	// The fidelity ranking must avoid the noisy device.
	if job.Status.Node == "noisy-line" {
		t.Fatalf("fidelity strategy chose the noisy device")
	}
	if res.Fidelity < 0.5 {
		t.Fatalf("achieved fidelity %v too low on a clean device", res.Fidelity)
	}
	// Log lines mirror Fig. 5 content.
	text := strings.Join(res.LogLines, "\n")
	for _, want := range []string{"starting on node", "pulled image", "transpiled", "estimated fidelity"} {
		if !strings.Contains(text, want) {
			t.Errorf("log missing %q:\n%s", want, text)
		}
	}
	// Counts concentrate on the BV secret (01011 with 5 clbits).
	top := ""
	best := 0
	for bits, n := range res.Counts {
		if n > best {
			best, top = n, bits
		}
	}
	if top != "01011" {
		t.Errorf("dominant outcome = %s, want 01011", top)
	}
	// Transpiled QASM is recorded and parses.
	if res.TranspiledQASM == "" {
		t.Error("no transpiled QASM recorded")
	} else if _, err := qasm.Parse(res.TranspiledQASM); err != nil {
		t.Errorf("transpiled QASM invalid: %v", err)
	}
}

func TestEndToEndTopologyJob(t *testing.T) {
	q := testCluster(t)
	q.Start()
	defer q.Stop()

	// Request the full 12-ring topology: it embeds perfectly only in the
	// ring device (a 12-cycle is not a subgraph of a 12-line, and shorter
	// cycles would not embed in the ring either).
	topo, err := qasm.Dump(mapomatic.TopologyCircuit(graph.Ring(12)))
	if err != nil {
		t.Fatal(err)
	}
	ghz := workload.GHZ(6)
	src, err := qasm.Dump(ghz)
	if err != nil {
		t.Fatal(err)
	}
	job, _, err := q.SubmitAndWait(master.SubmitRequest{
		JobName:      "ghz-ring",
		QASM:         src,
		Shots:        256,
		Strategy:     api.StrategyTopology,
		TopologyQASM: topo,
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if job.Status.Phase != api.JobSucceeded {
		t.Fatalf("job phase = %s (%s)", job.Status.Phase, job.Status.Message)
	}
	if job.Status.Node != "clean-ring" {
		t.Fatalf("topology strategy chose %s, want clean-ring", job.Status.Node)
	}
}

func TestCharacteristicsFilteringExcludesNoisyDevice(t *testing.T) {
	q := testCluster(t)
	q.Start()
	defer q.Stop()

	src, _ := qasm.Dump(workload.GHZ(3))
	job, _, err := q.SubmitAndWait(master.SubmitRequest{
		JobName:        "filtered",
		QASM:           src,
		Shots:          128,
		Strategy:       api.StrategyFidelity,
		TargetFidelity: 1.0,
		Requirements:   api.DeviceRequirements{MaxAvg2QError: 0.1},
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if job.Status.Node == "noisy-line" {
		t.Fatal("filter failed: noisy device selected")
	}
}

func TestUnschedulableJobStaysPending(t *testing.T) {
	q := testCluster(t)
	q.Start()
	defer q.Stop()

	src, _ := qasm.Dump(workload.GHZ(3))
	_, err := q.Submit(master.SubmitRequest{
		JobName:        "impossible",
		QASM:           src,
		Strategy:       api.StrategyFidelity,
		TargetFidelity: 1.0,
		Requirements:   api.DeviceRequirements{MinQubits: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	j, _, err := q.State.Jobs.Get("impossible")
	if err != nil {
		t.Fatal(err)
	}
	if j.Status.Phase != api.JobPending {
		t.Fatalf("impossible job phase = %s, want Pending", j.Status.Phase)
	}
	// An Unschedulable event must have been recorded.
	found := false
	for _, e := range q.State.EventsAbout("impossible") {
		if e.Reason == "Unschedulable" {
			found = true
		}
	}
	if !found {
		t.Fatal("no Unschedulable event recorded")
	}
}

func TestSequentialJobsShareTheCluster(t *testing.T) {
	q := testCluster(t)
	q.Start()
	defer q.Stop()

	src, _ := qasm.Dump(workload.GHZ(3))
	for i, name := range []string{"s1", "s2", "s3"} {
		_ = i
		job, _, err := q.SubmitAndWait(master.SubmitRequest{
			JobName:        name,
			QASM:           src,
			Shots:          64,
			Strategy:       api.StrategyFidelity,
			TargetFidelity: 1.0,
		}, 30*time.Second)
		if err != nil {
			t.Fatalf("job %s: %v", name, err)
		}
		if job.Status.Phase != api.JobSucceeded {
			t.Fatalf("job %s phase = %s", name, job.Status.Phase)
		}
	}
	// All nodes released at the end.
	for _, n := range q.State.Nodes.List() {
		if len(n.Status.RunningJobs) != 0 {
			t.Fatalf("node %s still holds %v", n.Name, n.Status.RunningJobs)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := core.New(core.Config{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

// TestConcurrentPipelineEndToEnd drives the whole concurrent path: batched
// dispatch (Concurrency 8), multi-container nodes, parallel ranking and
// the Meta-Server score cache, with a burst of jobs submitted at once.
func TestConcurrentPipelineEndToEnd(t *testing.T) {
	clean, err := device.UniformBackend("clean-line", graph.Line(12), 0.02, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := device.UniformBackend("clean-ring", graph.Ring(12), 0.02, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.New(core.Config{
		Backends:        []*device.Backend{clean, ring},
		Concurrency:     8,
		NodeConcurrency: 4, // capped by the devices' 4000m CPU = 4 slots
		KubeletSeed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Stop()

	src, _ := qasm.Dump(workload.GHZ(3))
	const jobs = 8
	names := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		name := fmt.Sprintf("burst-%d", i)
		names = append(names, name)
		if _, err := q.Submit(master.SubmitRequest{
			JobName:        name,
			QASM:           src,
			Shots:          64,
			Strategy:       api.StrategyFidelity,
			TargetFidelity: 1.0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range names {
		job, err := q.WaitForJob(name, 60*time.Second)
		if err != nil {
			t.Fatalf("job %s: %v", name, err)
		}
		if job.Status.Phase != api.JobSucceeded {
			t.Fatalf("job %s phase = %s (%s)", name, job.Status.Phase, job.Status.Message)
		}
	}
	// All jobs share one circuit: the fleet-wide canary simulations must
	// have been computed at most once per backend, the rest cache hits.
	if st := q.Meta.CacheStats(); st.Misses > 2 || st.Hits == 0 {
		t.Fatalf("cache stats hits=%d misses=%d; want ≤2 misses for 8 same-circuit jobs on 2 backends", st.Hits, st.Misses)
	}
	for _, n := range q.State.Nodes.List() {
		if len(n.Status.RunningJobs) != 0 {
			t.Fatalf("node %s still holds %v", n.Name, n.Status.RunningJobs)
		}
	}
}
