package core_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/cluster/state"
	"qrio/internal/core"
	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/master"
	"qrio/internal/quantum/qasm"
	"qrio/internal/workload"
)

func cancelTestDeployment(t *testing.T) *core.QRIO {
	t.Helper()
	b, err := device.UniformBackend("only", graph.Ring(10), 0.03, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.New(core.Config{Backends: []*device.Backend{b}})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestCancelPendingThroughFacade cancels before the control loops ever
// run: the job must go terminal without a scheduler or kubelet involved.
func TestCancelPendingThroughFacade(t *testing.T) {
	q := cancelTestDeployment(t)
	src, err := qasm.Dump(workload.GHZ(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(master.SubmitRequest{
		JobName: "doomed", QASM: src,
		Strategy: api.StrategyFidelity, TargetFidelity: 1.0,
	}); err != nil {
		t.Fatal(err)
	}
	j, err := q.Cancel("doomed")
	if err != nil || j.Status.Phase != api.JobCancelled {
		t.Fatalf("cancel pending: %+v, %v", j.Status, err)
	}
	// WaitForJob on an already-terminal job returns immediately.
	j, err = q.WaitForJob("doomed", time.Second)
	if err != nil || j.Status.Phase != api.JobCancelled {
		t.Fatalf("wait after cancel: %+v, %v", j.Status, err)
	}
	// A second cancel is a terminal-phase conflict.
	_, err = q.Cancel("doomed")
	var terminal state.TerminalJobError
	if !errors.As(err, &terminal) {
		t.Fatalf("double cancel error = %v", err)
	}
}

// TestWaitForJobEventDriven runs a job to completion under the live
// control loops and checks both context- and timeout-flavoured waits.
func TestWaitForJobEventDriven(t *testing.T) {
	q := cancelTestDeployment(t)
	q.Start()
	defer q.Stop()
	src, err := qasm.Dump(workload.GHZ(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(master.SubmitRequest{
		JobName: "waited", QASM: src, Shots: 128,
		Strategy: api.StrategyFidelity, TargetFidelity: 1.0,
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j, err := q.WaitForJobCtx(ctx, "waited")
	if err != nil || j.Status.Phase != api.JobSucceeded {
		t.Fatalf("WaitForJobCtx: %+v, %v", j.Status, err)
	}
}

// TestWaitForJobTimeoutKeepsSemantics: the pre-hub contract — a timed-out
// wait returns the job's current state plus a descriptive error.
func TestWaitForJobTimeoutKeepsSemantics(t *testing.T) {
	q := cancelTestDeployment(t)
	// Control loops intentionally NOT started: the job can never finish.
	src, err := qasm.Dump(workload.GHZ(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(master.SubmitRequest{
		JobName: "stuck", QASM: src,
		Strategy: api.StrategyFidelity, TargetFidelity: 1.0,
	}); err != nil {
		t.Fatal(err)
	}
	j, err := q.WaitForJob("stuck", 50*time.Millisecond)
	if err == nil {
		t.Fatal("timed-out wait returned no error")
	}
	if !strings.Contains(err.Error(), "still Pending") {
		t.Fatalf("error lost the phase context: %v", err)
	}
	if j.Status.Phase != api.JobPending {
		t.Fatalf("returned job = %+v", j.Status)
	}
}
