package core_test

import (
	"testing"
	"time"

	"qrio/internal/cluster/api"
	"qrio/internal/core"
	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/master"
	"qrio/internal/quantum/qasm"
	"qrio/internal/workload"
)

// TestAddBackendAtRuntime registers a new vendor device on a live
// orchestrator (the vendor-dashboard path) and verifies jobs can land on
// it immediately.
func TestAddBackendAtRuntime(t *testing.T) {
	seedDev, err := device.UniformBackend("seed", graph.Line(4), 0.5, 0.1, 0.1, 100e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.New(core.Config{Backends: []*device.Backend{seedDev}})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Stop()

	// The new device is much cleaner and larger: the next fidelity job
	// must pick it.
	fresh, err := device.UniformBackend("fresh", graph.Ring(10), 0.02, 0.005, 0.01, 500e3, 500e3)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.AddBackend(fresh); err != nil {
		t.Fatal(err)
	}
	if err := q.AddBackend(fresh); err == nil {
		t.Fatal("duplicate AddBackend accepted")
	}

	src, err := qasm.Dump(workload.GHZ(4))
	if err != nil {
		t.Fatal(err)
	}
	job, _, err := q.SubmitAndWait(master.SubmitRequest{
		JobName: "on-fresh", QASM: src, Shots: 64,
		Strategy: api.StrategyFidelity, TargetFidelity: 1.0,
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if job.Status.Phase != api.JobSucceeded {
		t.Fatalf("phase = %s (%s)", job.Status.Phase, job.Status.Message)
	}
	if job.Status.Node != "fresh" {
		t.Fatalf("scheduled on %s, want the runtime-added clean device", job.Status.Node)
	}
}

// TestWaitForJobTimeout returns the in-flight job with an error.
func TestWaitForJobTimeout(t *testing.T) {
	dev, err := device.UniformBackend("only", graph.Line(4), 0.1, 0.01, 0.02, 100e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.New(core.Config{Backends: []*device.Backend{dev}})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the job can never progress.
	src, _ := qasm.Dump(workload.GHZ(3))
	if _, err := q.Submit(master.SubmitRequest{
		JobName: "stuck", QASM: src,
		Strategy: api.StrategyFidelity, TargetFidelity: 1.0,
	}); err != nil {
		t.Fatal(err)
	}
	job, err := q.WaitForJob("stuck", 50*time.Millisecond)
	if err == nil {
		t.Fatal("timeout not reported")
	}
	if job.Status.Phase != api.JobPending {
		t.Fatalf("phase = %s", job.Status.Phase)
	}
	if _, err := q.WaitForJob("ghost", 10*time.Millisecond); err == nil {
		t.Fatal("missing job not reported")
	}
}

// TestStopIsIdempotent double-stops and restarts safely.
func TestStartStopIdempotent(t *testing.T) {
	dev, err := device.UniformBackend("x", graph.Line(3), 0.1, 0.01, 0.02, 100e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.New(core.Config{Backends: []*device.Backend{dev}})
	if err != nil {
		t.Fatal(err)
	}
	q.Stop() // stop before start: no-op
	q.Start()
	q.Start() // double start: no-op
	q.Stop()
	q.Stop() // double stop: no-op
	q.Start()
	q.Stop()
}
