package core

import (
	"time"

	"qrio/internal/cluster/durability"
	"qrio/internal/cluster/state"
	"qrio/internal/faults"
	"qrio/internal/obs"
	"qrio/internal/sched"
)

// registerMetrics threads one registry through every layer that has stats
// to tell. Hot paths (binds, scheduling passes, WAL appends) get direct
// handles installed before any traffic; everything that already keeps its
// own counters (cache stats, breaker opens, archive depth, fault fire
// counts, durability stats) is mirrored into the registry by a scrape-time
// hook instead — the layers stay ignorant of the registry and a scrape
// pays the sampling cost, not the hot path.
func registerMetrics(q *QRIO, r *obs.Registry) {
	q.State.Metrics = state.NewMetrics(r)
	q.Scheduler.Metrics = sched.NewMetrics(r)
	if q.Durability != nil {
		q.Durability.SetMetrics(durability.NewMetrics(r))
	}

	// State depth: how much work sits in each lifecycle tier right now.
	depth := r.Gauge("qrio_state_depth_jobs",
		"Jobs resident per lifecycle tier.", "phase")
	pending := depth.With("pending")
	active := depth.With("active")
	terminal := depth.With("terminal")
	archived := depth.With("archived")

	// Watch hub: live subscriber count and fanout backlog.
	watchStreams := r.Gauge("qrio_watch_active_streams",
		"Live merged watch streams (SSE clients, internal waiters).").With()
	watchLag := r.Gauge("qrio_watch_fanout_lag_events",
		"Notifications buffered across all watch streams (fanout lag).").With()

	// Meta score cache: mirrored monotonic counters plus residency.
	cacheEvents := r.Counter("qrio_meta_cache_events_total",
		"Score cache activity by event.", "event")
	cacheHits := cacheEvents.With("hit")
	cacheMisses := cacheEvents.With("miss")
	cacheEvictions := cacheEvents.With("eviction")
	cacheInvalidations := cacheEvents.With("invalidation")
	cacheEntries := r.Gauge("qrio_meta_cache_entries",
		"Score cache entries resident.").With()

	// Degraded scheduling: the breaker already counts its opens.
	r.CounterFunc("qrio_sched_degraded_episodes_total",
		"Degraded-mode scheduling episodes (meta-scoring breaker opens).",
		func() float64 { return float64(q.ScorerBreaker.Opens()) })

	// Archive tier.
	r.GaugeFunc("qrio_archive_resident_entries",
		"Terminal jobs resident in the archive tier.",
		func() float64 { return float64(q.State.Archived.Len()) })
	r.CounterFunc("qrio_archive_dropped_entries_total",
		"Archive entries evicted past the archive capacity.",
		func() float64 { return float64(q.State.Archived.Dropped()) })
	spillErr := r.Gauge("qrio_archive_spill_errors",
		"1 while the archive spill writer has a latched error, else 0.").With()

	// Fault injection: per-point fire counts (all zero unless -faults arms
	// a point — the visible trace of a chaos run).
	fired := r.Counter("qrio_faults_fired_total",
		"Fault-injection point triggers.", "point")
	faultPoints := []string{
		faults.PointHTTPRoundTrip, faults.PointMetaScore,
		faults.PointKubeletRuntime, faults.PointWALAppend,
		faults.PointArchiveSpill,
	}

	// Durability: gauge-like families mirrored from one Stats() call per
	// scrape. Registered only when the deployment is durable, so a pure
	// in-memory process does not advertise meaningless zeros.
	var walLagRecords, walLagBytes, snapAge, snapGen, walLatched *obs.Gauge
	var walClears *obs.Counter
	if q.Durability != nil {
		walLagRecords = r.Gauge("qrio_durability_wal_lag_records",
			"WAL records appended since the last snapshot (replay debt).").With()
		walLagBytes = r.Gauge("qrio_durability_wal_lag_bytes",
			"WAL bytes appended since the last snapshot (replay debt).").With()
		snapAge = r.Gauge("qrio_durability_snapshot_age_seconds",
			"Seconds since the last successful snapshot (-1 before the first).").With()
		snapGen = r.Gauge("qrio_durability_snapshot_generation",
			"Current WAL generation (bumped by each snapshot).").With()
		walLatched = r.Gauge("qrio_durability_wal_latched_errors",
			"1 while a WAL append error is latched, else 0.").With()
		walClears = r.Counter("qrio_durability_wal_error_clears_total",
			"Latched WAL errors healed by a successful snapshot.").With()
	}

	r.OnGather(func() {
		pending.Set(float64(q.State.PendingCount()))
		active.Set(float64(q.State.ActiveCount()))
		terminal.Set(float64(q.State.TerminalCount()))
		archived.Set(float64(q.State.Archived.Len()))

		streams, backlog := q.State.WatchHubStats()
		watchStreams.Set(float64(streams))
		watchLag.Set(float64(backlog))

		cs := q.Meta.CacheStats()
		cacheHits.Set(cs.Hits)
		cacheMisses.Set(cs.Misses)
		cacheEvictions.Set(cs.Evictions)
		cacheInvalidations.Set(cs.Invalidations)
		cacheEntries.Set(float64(cs.Entries))

		if q.State.Archived.SpillErr() != nil {
			spillErr.Set(1)
		} else {
			spillErr.Set(0)
		}

		for _, p := range faultPoints {
			fired.With(p).Set(uint64(q.Faults.Fired(p)))
		}

		if q.Durability != nil {
			st := q.Durability.Stats()
			walLagRecords.Set(float64(st.WALRecords))
			walLagBytes.Set(float64(st.WALBytes))
			// Snapshot timestamps are wall clock (durability stamps them
			// with time.Now even under a virtual Clock), so age is too.
			if st.LastSnapshotAt.IsZero() {
				snapAge.Set(-1)
			} else {
				snapAge.Set(time.Since(st.LastSnapshotAt).Seconds())
			}
			snapGen.Set(float64(st.Generation))
			if st.WALError != "" {
				walLatched.Set(1)
			} else {
				walLatched.Set(0)
			}
			walClears.Set(uint64(st.WALErrorClears))
		}
	})
}
