package meta

import (
	"context"

	"qrio/internal/faults"
)

// FaultScorer threads the fault-injection registry into the scoring
// dependency: every Score call first evaluates the meta.score fault
// point, so tests and the -faults dev flag can take the scorer down (or
// slow it) without touching the Meta Server itself. A nil registry
// resolves to faults.Default; an inert registry costs one atomic load.
type FaultScorer struct {
	Scorer Scorer
	Faults *faults.Registry
}

// Score implements Scorer.
func (f FaultScorer) Score(jobName, backendName string) (float64, error) {
	if err := f.Faults.Fire(context.Background(), faults.PointMetaScore); err != nil {
		return 0, err
	}
	return f.Scorer.Score(jobName, backendName)
}

var _ Scorer = FaultScorer{}
