// Package meta implements the QRIO Meta Server (§3.4): it stores the
// per-job metadata of Table 1 (fidelity target plus the original circuit,
// or the user's topology circuit), keeps the vendor backend files for every
// node, and answers scoring requests from the scheduler's ranking plugin —
// dispatching to the Fidelity Ranking strategy (Clifford canaries,
// §3.4.1) or the Topology Ranking strategy (Mapomatic, §3.4.2).
package meta

import (
	"fmt"
	"math"
	"sync"

	"qrio/internal/cluster/api"
	"qrio/internal/device"
	"qrio/internal/fidelity"
	"qrio/internal/mapomatic"
	"qrio/internal/quantum/qasm"
)

// JobMeta is the metadata the Visualizer uploads per Table 1.
type JobMeta struct {
	JobName  string       `json:"jobName"`
	Strategy api.Strategy `json:"strategy"`
	// Fidelity strategy: the target in (0,1] and the original circuit.
	TargetFidelity float64 `json:"targetFidelity,omitempty"`
	CircuitQASM    string  `json:"circuitQASM,omitempty"`
	// Topology strategy: the user-drawn topology as a pseudo-circuit.
	TopologyQASM string `json:"topologyQASM,omitempty"`
}

// Validate checks the metadata against Table 1's contract.
func (m JobMeta) Validate() error {
	if m.JobName == "" {
		return fmt.Errorf("meta: job metadata without job name")
	}
	switch m.Strategy {
	case api.StrategyFidelity:
		if m.TargetFidelity <= 0 || m.TargetFidelity > 1 {
			return fmt.Errorf("meta: job %s fidelity %g out of (0,1]", m.JobName, m.TargetFidelity)
		}
		if m.CircuitQASM == "" {
			return fmt.Errorf("meta: job %s fidelity strategy needs the circuit", m.JobName)
		}
	case api.StrategyTopology:
		if m.TopologyQASM == "" {
			return fmt.Errorf("meta: job %s topology strategy needs the topology circuit", m.JobName)
		}
	default:
		return fmt.Errorf("meta: job %s unknown strategy %q", m.JobName, m.Strategy)
	}
	return nil
}

// Options tunes the server's scoring engines.
type Options struct {
	// Estimator drives canary simulation (zero value = 256 shots, seed 1).
	Estimator fidelity.Estimator
	// Mapomatic bounds the topology layout search.
	Mapomatic mapomatic.Options
	// OverTargetPenalty discounts fidelity overshoot: a device whose
	// canary fidelity exceeds the target scores (F−target)·penalty so
	// "loosely matching" devices are preferred over wastefully good ones
	// with penalty < 1 (§3.4.1's "loosely match"). Default 0.25.
	OverTargetPenalty float64
}

// Server is the Meta Server's core. It is safe for concurrent use and is
// exposed over REST by Handler (see http.go).
type Server struct {
	opts Options

	mu       sync.RWMutex
	backends map[string]*device.Backend
	jobs     map[string]JobMeta
}

// NewServer builds a Meta Server.
func NewServer(opts Options) *Server {
	if opts.Estimator.Shots <= 0 {
		// The best devices in a fleet differ by only a few percent in
		// canary fidelity; the ranking needs a healthy shot budget to
		// separate them (stabilizer shots are cheap).
		opts.Estimator = fidelity.Estimator{Shots: 2048, Seed: 1}
	}
	if opts.OverTargetPenalty <= 0 {
		opts.OverTargetPenalty = 0.25
	}
	return &Server{
		opts:     opts,
		backends: make(map[string]*device.Backend),
		jobs:     make(map[string]JobMeta),
	}
}

// RegisterBackend stores (a copy of the pointer to) a vendor backend file.
func (s *Server) RegisterBackend(b *device.Backend) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("meta: rejecting backend: %w", err)
	}
	s.mu.Lock()
	s.backends[b.Name] = b
	s.mu.Unlock()
	return nil
}

// Backend returns a registered backend.
func (s *Server) Backend(name string) (*device.Backend, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.backends[name]
	if !ok {
		return nil, fmt.Errorf("meta: unknown backend %q", name)
	}
	return b, nil
}

// BackendNames lists registered backends.
func (s *Server) BackendNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.backends))
	for n := range s.backends {
		out = append(out, n)
	}
	return out
}

// PutJobMeta stores job metadata (Table 1 upload).
func (s *Server) PutJobMeta(m JobMeta) error {
	if err := m.Validate(); err != nil {
		return err
	}
	// The QASM payloads must parse — reject garbage at the door.
	if m.CircuitQASM != "" {
		if _, err := qasm.Parse(m.CircuitQASM); err != nil {
			return fmt.Errorf("meta: job %s circuit does not parse: %w", m.JobName, err)
		}
	}
	if m.TopologyQASM != "" {
		if _, err := qasm.Parse(m.TopologyQASM); err != nil {
			return fmt.Errorf("meta: job %s topology does not parse: %w", m.JobName, err)
		}
	}
	s.mu.Lock()
	s.jobs[m.JobName] = m
	s.mu.Unlock()
	return nil
}

// JobMeta returns stored metadata.
func (s *Server) JobMeta(jobName string) (JobMeta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.jobs[jobName]
	if !ok {
		return JobMeta{}, fmt.Errorf("meta: no metadata for job %q", jobName)
	}
	return m, nil
}

// Score answers a scoring request: the job's strategy decides the engine
// (§3.4: "checks the database if a fidelity threshold exists for the job").
// Lower scores are better.
func (s *Server) Score(jobName, backendName string) (float64, error) {
	m, err := s.JobMeta(jobName)
	if err != nil {
		return 0, err
	}
	b, err := s.Backend(backendName)
	if err != nil {
		return 0, err
	}
	switch m.Strategy {
	case api.StrategyFidelity:
		return s.fidelityScore(m, b)
	case api.StrategyTopology:
		return s.topologyScore(m, b)
	}
	return 0, fmt.Errorf("meta: job %s has unknown strategy %q", jobName, m.Strategy)
}

// fidelityScore implements the Fidelity Ranking strategy: estimate the
// canary fidelity on the device and measure the miss against the target.
func (s *Server) fidelityScore(m JobMeta, b *device.Backend) (float64, error) {
	c, err := qasm.Parse(m.CircuitQASM)
	if err != nil {
		return 0, err
	}
	c.Name = m.JobName
	f, err := s.opts.Estimator.CanaryFidelity(c, b)
	if err != nil {
		return 0, err
	}
	if f >= m.TargetFidelity {
		return (f - m.TargetFidelity) * s.opts.OverTargetPenalty, nil
	}
	return m.TargetFidelity - f, nil
}

// topologyScore implements the Topology Ranking strategy via Mapomatic.
func (s *Server) topologyScore(m JobMeta, b *device.Backend) (float64, error) {
	tc, err := qasm.Parse(m.TopologyQASM)
	if err != nil {
		return 0, err
	}
	tc.Name = m.JobName + "-topology"
	score, err := mapomatic.BestLayout(tc, b, s.opts.Mapomatic)
	if err != nil {
		return 0, err
	}
	if math.IsInf(score.Cost, 1) {
		return 0, fmt.Errorf("meta: backend %s cannot host job %s topology", b.Name, m.JobName)
	}
	return score.Cost, nil
}

// Scorer is the dependency the scheduler's ranking plugin needs: anything
// that can score a (job, backend) pair. *Server and the HTTP Client both
// satisfy it.
type Scorer interface {
	Score(jobName, backendName string) (float64, error)
}

var _ Scorer = (*Server)(nil)
