// Package meta implements the QRIO Meta Server (§3.4): it stores the
// per-job metadata of Table 1 (fidelity target plus the original circuit,
// or the user's topology circuit), keeps the vendor backend files for every
// node, and answers scoring requests from the scheduler's ranking plugin —
// dispatching to the Fidelity Ranking strategy (Clifford canaries,
// §3.4.1) or the Topology Ranking strategy (Mapomatic, §3.4.2).
package meta

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"qrio/internal/cluster/api"
	"qrio/internal/device"
	"qrio/internal/fidelity"
	"qrio/internal/mapomatic"
	"qrio/internal/par"
	"qrio/internal/quantum/qasm"
)

// JobMeta is the metadata the Visualizer uploads per Table 1.
type JobMeta struct {
	JobName  string       `json:"jobName"`
	Strategy api.Strategy `json:"strategy"`
	// Fidelity strategy: the target in (0,1] and the original circuit.
	TargetFidelity float64 `json:"targetFidelity,omitempty"`
	CircuitQASM    string  `json:"circuitQASM,omitempty"`
	// Topology strategy: the user-drawn topology as a pseudo-circuit.
	TopologyQASM string `json:"topologyQASM,omitempty"`
}

// Validate checks the metadata against Table 1's contract.
func (m JobMeta) Validate() error {
	if m.JobName == "" {
		return fmt.Errorf("meta: job metadata without job name")
	}
	switch m.Strategy {
	case api.StrategyFidelity:
		if m.TargetFidelity <= 0 || m.TargetFidelity > 1 {
			return fmt.Errorf("meta: job %s fidelity %g out of (0,1]", m.JobName, m.TargetFidelity)
		}
		if m.CircuitQASM == "" {
			return fmt.Errorf("meta: job %s fidelity strategy needs the circuit", m.JobName)
		}
	case api.StrategyTopology:
		if m.TopologyQASM == "" {
			return fmt.Errorf("meta: job %s topology strategy needs the topology circuit", m.JobName)
		}
	default:
		return fmt.Errorf("meta: job %s unknown strategy %q", m.JobName, m.Strategy)
	}
	return nil
}

// Options tunes the server's scoring engines.
type Options struct {
	// Estimator drives canary simulation (zero value = 256 shots, seed 1).
	Estimator fidelity.Estimator
	// Mapomatic bounds the topology layout search.
	Mapomatic mapomatic.Options
	// OverTargetPenalty discounts fidelity overshoot: a device whose
	// canary fidelity exceeds the target scores (F−target)·penalty so
	// "loosely matching" devices are preferred over wastefully good ones
	// with penalty < 1 (§3.4.1's "loosely match"). Default 0.25.
	OverTargetPenalty float64
	// DisableScoreCache recomputes every scoring request from scratch —
	// the seed's per-job behaviour, kept as an ablation/benchmark baseline.
	DisableScoreCache bool
	// CacheMaxEntries bounds the score cache with LRU eviction. Before
	// the cap, entries lived until the backend recalibrated — a fleet
	// seeing many distinct circuits grew the cache without bound. 0 means
	// the generous default (DefaultCacheMaxEntries); negative disables
	// the cap entirely. Evictions surface in CacheStats.
	CacheMaxEntries int
}

// DefaultCacheMaxEntries is the score cache's default LRU capacity —
// roomy enough that a fleet-wide sweep of hundreds of distinct circuits
// stays fully cached, while a long-lived deployment no longer grows
// without bound.
const DefaultCacheMaxEntries = 65536

// cacheKey identifies one memoised scoring-engine result: which backend,
// which calibration generation of it, and the engine-input fingerprint
// (circuit source + engine options).
type cacheKey struct {
	backend     string
	gen         uint64
	fingerprint string
}

// cacheEntry is a singleflight slot: the first scorer to claim the key
// computes under the sync.Once; concurrent scorers for the same key block
// on it and share the result instead of re-simulating.
type cacheEntry struct {
	once sync.Once
	val  float64
	err  error
	// elem is the entry's recency-list position (guarded by Server.mu).
	// An evicted entry keeps working for scorers already holding it — it
	// just stops being findable.
	elem *list.Element
}

// Server is the Meta Server's core. It is safe for concurrent use and is
// exposed over REST by Handler (see http.go).
type Server struct {
	opts Options

	mu       sync.RWMutex
	backends map[string]*device.Backend
	jobs     map[string]JobMeta
	// generations counts calibration uploads per backend; re-registering a
	// backend bumps it, invalidating every cached score for that device.
	generations map[string]uint64
	// cache memoises the expensive scoring engines (canary simulation,
	// subgraph layout search) per (backend, generation, fingerprint),
	// bounded by Options.CacheMaxEntries with LRU eviction; lru orders
	// keys most-recently-used first.
	cache map[cacheKey]*cacheEntry
	lru   list.List // of cacheKey

	cacheHits, cacheMisses, cacheEvictions, cacheInvalidations atomic.Uint64
}

// NewServer builds a Meta Server.
func NewServer(opts Options) *Server {
	if opts.Estimator.Shots <= 0 {
		// The best devices in a fleet differ by only a few percent in
		// canary fidelity; the ranking needs a healthy shot budget to
		// separate them (stabilizer shots are cheap).
		opts.Estimator = fidelity.Estimator{Shots: 2048, Seed: 1}
	}
	if opts.OverTargetPenalty <= 0 {
		opts.OverTargetPenalty = 0.25
	}
	return &Server{
		opts:        opts,
		backends:    make(map[string]*device.Backend),
		jobs:        make(map[string]JobMeta),
		generations: make(map[string]uint64),
		cache:       make(map[cacheKey]*cacheEntry),
	}
}

// RegisterBackend stores (a copy of the pointer to) a vendor backend file.
// Re-registering a known backend models a calibration refresh: the
// backend's generation advances and its cached scores are dropped.
func (s *Server) RegisterBackend(b *device.Backend) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("meta: rejecting backend: %w", err)
	}
	s.mu.Lock()
	s.backends[b.Name] = b
	s.generations[b.Name]++
	for k, e := range s.cache {
		if k.backend == b.Name {
			s.removeLocked(k, e)
			s.cacheInvalidations.Add(1)
		}
	}
	s.mu.Unlock()
	return nil
}

// removeLocked drops one cache entry and its recency-list position.
// Calibration invalidations land here too; only LRU-cap evictions bump
// the evictions counter (the caller does that).
func (s *Server) removeLocked(k cacheKey, e *cacheEntry) {
	delete(s.cache, k)
	if e.elem != nil {
		s.lru.Remove(e.elem)
		e.elem = nil
	}
}

// Generation reports how many times a backend has been registered; cached
// scores are only shared within one generation.
func (s *Server) Generation(backendName string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.generations[backendName]
}

// CacheStats is the score cache's lifetime counters plus its current
// size: Hits/Misses from lookups, Evictions from the LRU cap,
// Invalidations from calibration refreshes (a re-registered backend
// dropping its entries — deliberately not counted as evictions: they
// measure calibration churn, not cache pressure), Entries resident
// right now.
type CacheStats struct {
	Hits, Misses, Evictions, Invalidations uint64
	Entries                                int
}

// CacheStats returns the score cache's counters.
func (s *Server) CacheStats() CacheStats {
	s.mu.RLock()
	entries := len(s.cache)
	s.mu.RUnlock()
	return CacheStats{
		Hits:          s.cacheHits.Load(),
		Misses:        s.cacheMisses.Load(),
		Evictions:     s.cacheEvictions.Load(),
		Invalidations: s.cacheInvalidations.Load(),
		Entries:       entries,
	}
}

// cacheCap resolves the configured LRU capacity (0 = default, <0 = off).
func (s *Server) cacheCap() int {
	switch {
	case s.opts.CacheMaxEntries > 0:
		return s.opts.CacheMaxEntries
	case s.opts.CacheMaxEntries < 0:
		return 0
	default:
		return DefaultCacheMaxEntries
	}
}

// cached memoises compute under (backendName, gen, fingerprint), where
// gen is the calibration generation the caller read together with the
// backend. Concurrent callers for the same key compute once. A hit
// refreshes the entry's recency; a miss that pushes the cache past the
// LRU cap evicts the coldest entry.
func (s *Server) cached(backendName string, gen uint64, fingerprint string, compute func() (float64, error)) (float64, error) {
	if s.opts.DisableScoreCache {
		return compute()
	}
	s.mu.Lock()
	key := cacheKey{backend: backendName, gen: gen, fingerprint: fingerprint}
	e, hit := s.cache[key]
	if !hit {
		e = &cacheEntry{}
		s.cache[key] = e
		e.elem = s.lru.PushFront(key)
		if max := s.cacheCap(); max > 0 {
			for len(s.cache) > max {
				oldest := s.lru.Back()
				k := oldest.Value.(cacheKey)
				s.removeLocked(k, s.cache[k])
				s.cacheEvictions.Add(1)
			}
		}
	} else if e.elem != nil {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if hit {
		s.cacheHits.Add(1)
	} else {
		s.cacheMisses.Add(1)
	}
	e.once.Do(func() {
		// Pre-set the error: if compute panics, the Once is spent and
		// later callers would otherwise read the zero value — score 0,
		// the best possible result. This way they get an error instead.
		e.err = fmt.Errorf("meta: scoring %s panicked; entry poisoned until recalibration", backendName)
		e.val, e.err = compute()
	})
	return e.val, e.err
}

// Backend returns a registered backend.
func (s *Server) Backend(name string) (*device.Backend, error) {
	b, _, err := s.backendWithGen(name)
	return b, err
}

// backendWithGen returns a backend together with its current calibration
// generation, read atomically: scorers must key the cache with the
// generation of the exact calibration they computed against, or a
// concurrent re-registration could cache a stale score under the fresh
// generation.
func (s *Server) backendWithGen(name string) (*device.Backend, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.backends[name]
	if !ok {
		return nil, 0, fmt.Errorf("meta: unknown backend %q", name)
	}
	return b, s.generations[name], nil
}

// BackendNames lists registered backends.
func (s *Server) BackendNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.backends))
	for n := range s.backends {
		out = append(out, n)
	}
	return out
}

// PutJobMeta stores job metadata (Table 1 upload).
func (s *Server) PutJobMeta(m JobMeta) error {
	if err := m.Validate(); err != nil {
		return err
	}
	// The QASM payloads must parse — reject garbage at the door.
	if m.CircuitQASM != "" {
		if _, err := qasm.Parse(m.CircuitQASM); err != nil {
			return fmt.Errorf("meta: job %s circuit does not parse: %w", m.JobName, err)
		}
	}
	if m.TopologyQASM != "" {
		if _, err := qasm.Parse(m.TopologyQASM); err != nil {
			return fmt.Errorf("meta: job %s topology does not parse: %w", m.JobName, err)
		}
	}
	s.mu.Lock()
	s.jobs[m.JobName] = m
	s.mu.Unlock()
	return nil
}

// JobMeta returns stored metadata.
func (s *Server) JobMeta(jobName string) (JobMeta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.jobs[jobName]
	if !ok {
		return JobMeta{}, fmt.Errorf("meta: no metadata for job %q", jobName)
	}
	return m, nil
}

// Score answers a scoring request: the job's strategy decides the engine
// (§3.4: "checks the database if a fidelity threshold exists for the job").
// Lower scores are better.
func (s *Server) Score(jobName, backendName string) (float64, error) {
	m, err := s.JobMeta(jobName)
	if err != nil {
		return 0, err
	}
	b, gen, err := s.backendWithGen(backendName)
	if err != nil {
		return 0, err
	}
	switch m.Strategy {
	case api.StrategyFidelity:
		return s.fidelityScore(m, b, gen)
	case api.StrategyTopology:
		return s.topologyScore(m, b, gen)
	}
	return 0, fmt.Errorf("meta: job %s has unknown strategy %q", jobName, m.Strategy)
}

// fidelityScore implements the Fidelity Ranking strategy: estimate the
// canary fidelity on the device and measure the miss against the target.
// The canary simulation — the expensive part — is memoised per (circuit
// fingerprint, backend, calibration generation), so jobs re-submitting the
// same circuit pay it once per fleet calibration; the cheap target
// comparison stays outside the cache so jobs sharing a circuit but not a
// target still share the simulation.
func (s *Server) fidelityScore(m JobMeta, b *device.Backend, gen uint64) (float64, error) {
	f, err := s.cached(b.Name, gen, s.opts.Estimator.CanaryFingerprint(m.CircuitQASM), func() (float64, error) {
		c, err := qasm.Parse(m.CircuitQASM)
		if err != nil {
			return 0, err
		}
		return s.opts.Estimator.CanaryFidelity(c, b)
	})
	if err != nil {
		return 0, err
	}
	if f >= m.TargetFidelity {
		return (f - m.TargetFidelity) * s.opts.OverTargetPenalty, nil
	}
	return m.TargetFidelity - f, nil
}

// topologyScore implements the Topology Ranking strategy via Mapomatic,
// with the subgraph search memoised per (topology fingerprint, backend,
// calibration generation).
func (s *Server) topologyScore(m JobMeta, b *device.Backend, gen uint64) (float64, error) {
	cost, err := s.cached(b.Name, gen, s.opts.Mapomatic.Fingerprint(m.TopologyQASM), func() (float64, error) {
		tc, err := qasm.Parse(m.TopologyQASM)
		if err != nil {
			return 0, err
		}
		score, err := mapomatic.BestLayout(tc, b, s.opts.Mapomatic)
		if err != nil {
			return 0, err
		}
		return score.Cost, nil
	})
	if err != nil {
		return 0, err
	}
	if math.IsInf(cost, 1) {
		return 0, fmt.Errorf("meta: backend %s cannot host job %s topology", b.Name, m.JobName)
	}
	return cost, nil
}

// BatchResult is one backend's outcome in a ScoreBatch call.
type BatchResult struct {
	Backend string  `json:"backend"`
	Score   float64 `json:"score"`
	Error   string  `json:"error,omitempty"`
}

// ScoreBatch scores one job against many candidate backends concurrently
// (bounded by workers; 0 = GOMAXPROCS) and returns results in input order.
// Combined with the score cache this turns fleet-wide ranking from
// |fleet| serial simulations into one parallel sweep whose repeats are
// free until the next calibration upload.
func (s *Server) ScoreBatch(jobName string, backendNames []string, workers int) []BatchResult {
	out := make([]BatchResult, len(backendNames))
	par.ForEach(len(backendNames), workers, func(i int) {
		score, err := s.Score(jobName, backendNames[i])
		out[i] = BatchResult{Backend: backendNames[i], Score: score}
		if err != nil {
			out[i].Error = err.Error()
		}
	})
	return out
}

// Scorer is the dependency the scheduler's ranking plugin needs: anything
// that can score a (job, backend) pair. *Server and the HTTP Client both
// satisfy it.
type Scorer interface {
	Score(jobName, backendName string) (float64, error)
}

var _ Scorer = (*Server)(nil)
