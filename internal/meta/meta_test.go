package meta_test

import (
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"qrio/internal/cluster/api"
	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/mapomatic"
	"qrio/internal/meta"
	"qrio/internal/quantum/qasm"
)

const bellQASM = `OPENQASM 2.0;
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q -> c;
`

func ringTopologyQASM(t *testing.T, n int) string {
	t.Helper()
	src, err := qasm.Dump(mapomatic.TopologyCircuit(graph.Ring(n)))
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func backend(t *testing.T, name string, g *graph.Graph, e2 float64) *device.Backend {
	t.Helper()
	b, err := device.UniformBackend(name, g, e2, 0.01, 0.02, 500e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFidelityScoringPrefersCleanDevice(t *testing.T) {
	s := meta.NewServer(meta.Options{})
	clean := backend(t, "clean", graph.Line(4), 0.02)
	noisy := backend(t, "noisy", graph.Line(4), 0.5)
	if err := s.RegisterBackend(clean); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterBackend(noisy); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJobMeta(meta.JobMeta{
		JobName: "bell", Strategy: api.StrategyFidelity,
		TargetFidelity: 1.0, CircuitQASM: bellQASM,
	}); err != nil {
		t.Fatal(err)
	}
	sc, err := s.Score("bell", "clean")
	if err != nil {
		t.Fatal(err)
	}
	sn, err := s.Score("bell", "noisy")
	if err != nil {
		t.Fatal(err)
	}
	if sc >= sn {
		t.Fatalf("clean score %v >= noisy score %v (lower must be better)", sc, sn)
	}
}

func TestOverTargetPenaltyPrefersLooseMatch(t *testing.T) {
	// Target 0.9: an excellent device (~0.97 canary fidelity) overshoots
	// slightly; a terrible one misses by a lot. The overshoot must (a)
	// still beat the big miss and (b) be discounted relative to an
	// undíscounted |F−target| metric.
	discounted := meta.NewServer(meta.Options{OverTargetPenalty: 0.25})
	flat := meta.NewServer(meta.Options{OverTargetPenalty: 1.0})
	excellent := backend(t, "excellent", graph.Line(4), 0.005)
	terrible := backend(t, "terrible", graph.Line(4), 0.7)
	for _, s := range []*meta.Server{discounted, flat} {
		s.RegisterBackend(excellent)
		s.RegisterBackend(terrible)
		if err := s.PutJobMeta(meta.JobMeta{
			JobName: "loose", Strategy: api.StrategyFidelity,
			TargetFidelity: 0.9, CircuitQASM: bellQASM,
		}); err != nil {
			t.Fatal(err)
		}
	}
	se, err := discounted.Score("loose", "excellent")
	if err != nil {
		t.Fatal(err)
	}
	st, err := discounted.Score("loose", "terrible")
	if err != nil {
		t.Fatal(err)
	}
	if se >= st {
		t.Fatalf("overshoot penalised harder than a big miss: excellent %v vs terrible %v", se, st)
	}
	if se < 0 || st < 0 {
		t.Fatalf("negative scores: %v %v", se, st)
	}
	seFlat, err := flat.Score("loose", "excellent")
	if err != nil {
		t.Fatal(err)
	}
	if se >= seFlat {
		t.Fatalf("penalty 0.25 did not discount overshoot: %v vs flat %v", se, seFlat)
	}
}

func TestTopologyScoring(t *testing.T) {
	s := meta.NewServer(meta.Options{})
	ringDev := backend(t, "ring", graph.Ring(8), 0.1)
	lineDev := backend(t, "line", graph.Line(8), 0.1)
	s.RegisterBackend(ringDev)
	s.RegisterBackend(lineDev)
	s.PutJobMeta(meta.JobMeta{
		JobName: "topo", Strategy: api.StrategyTopology,
		TopologyQASM: ringTopologyQASM(t, 6),
	})
	sr, err := s.Score("topo", "ring")
	if err != nil {
		t.Fatal(err)
	}
	sl, err := s.Score("topo", "line")
	if err != nil {
		t.Fatal(err)
	}
	// Ring topology embeds in the ring device; the line device must route.
	if sr >= sl {
		t.Fatalf("ring device score %v >= line device %v for a ring request", sr, sl)
	}
}

// TestScoreCacheHitAndInvalidation: a second Score for the same (job
// fingerprint, backend, calibration generation) must come from the cache;
// re-registering the backend (a calibration refresh) must invalidate it.
func TestScoreCacheHitAndInvalidation(t *testing.T) {
	s := meta.NewServer(meta.Options{})
	dev := backend(t, "dev", graph.Line(4), 0.05)
	if err := s.RegisterBackend(dev); err != nil {
		t.Fatal(err)
	}
	if got := s.Generation("dev"); got != 1 {
		t.Fatalf("generation after first register = %d", got)
	}
	if err := s.PutJobMeta(meta.JobMeta{
		JobName: "bell", Strategy: api.StrategyFidelity,
		TargetFidelity: 1, CircuitQASM: bellQASM,
	}); err != nil {
		t.Fatal(err)
	}
	first, err := s.Score("bell", "dev")
	if err != nil {
		t.Fatal(err)
	}
	st := s.CacheStats()
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("after first score: hits=%d misses=%d, want 0/1", st.Hits, st.Misses)
	}
	second, err := s.Score("bell", "dev")
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatalf("cached score %v != first score %v", second, first)
	}
	if st = s.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after second score: hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	// A different job submitting the same circuit shares the simulation.
	if err := s.PutJobMeta(meta.JobMeta{
		JobName: "bell-again", Strategy: api.StrategyFidelity,
		TargetFidelity: 0.9, CircuitQASM: bellQASM,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Score("bell-again", "dev"); err != nil {
		t.Fatal(err)
	}
	if st = s.CacheStats(); st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("shared circuit: hits=%d misses=%d, want 2/1", st.Hits, st.Misses)
	}
	// Calibration refresh: same name, new error rates → new generation,
	// cold cache, different score.
	recal := backend(t, "dev", graph.Line(4), 0.4)
	if err := s.RegisterBackend(recal); err != nil {
		t.Fatal(err)
	}
	if got := s.Generation("dev"); got != 2 {
		t.Fatalf("generation after re-register = %d", got)
	}
	refreshed, err := s.Score("bell", "dev")
	if err != nil {
		t.Fatal(err)
	}
	if st = s.CacheStats(); st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("after invalidation: hits=%d misses=%d, want 2/2", st.Hits, st.Misses)
	}
	if st.Evictions != 0 {
		t.Fatalf("calibration invalidation counted as LRU eviction: %d", st.Evictions)
	}
	if refreshed == first {
		t.Fatalf("score unchanged (%v) after calibration degraded — stale cache served", refreshed)
	}
}

// TestTopologyScoreCached: the subgraph search is memoised too.
func TestTopologyScoreCached(t *testing.T) {
	s := meta.NewServer(meta.Options{})
	s.RegisterBackend(backend(t, "ring", graph.Ring(8), 0.1))
	s.PutJobMeta(meta.JobMeta{
		JobName: "topo", Strategy: api.StrategyTopology,
		TopologyQASM: ringTopologyQASM(t, 6),
	})
	a, err := s.Score("topo", "ring")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Score("topo", "ring")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("cached topology score %v != %v", b, a)
	}
	if st := s.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

// TestScoreBatchParallel: batch scoring returns input order and matches
// the serial scores.
func TestScoreBatchParallel(t *testing.T) {
	s := meta.NewServer(meta.Options{})
	names := []string{"d1", "d2", "d3"}
	errs := []float64{0.02, 0.2, 0.5}
	for i, n := range names {
		if err := s.RegisterBackend(backend(t, n, graph.Line(4), errs[i])); err != nil {
			t.Fatal(err)
		}
	}
	s.PutJobMeta(meta.JobMeta{
		JobName: "bell", Strategy: api.StrategyFidelity,
		TargetFidelity: 1, CircuitQASM: bellQASM,
	})
	got := s.ScoreBatch("bell", append(names, "ghost"), 4)
	if len(got) != 4 {
		t.Fatalf("batch size %d", len(got))
	}
	for i, n := range names {
		if got[i].Backend != n || got[i].Error != "" {
			t.Fatalf("entry %d = %+v", i, got[i])
		}
		serial, err := s.Score("bell", n)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Score != serial {
			t.Fatalf("batch score %v != serial %v for %s", got[i].Score, serial, n)
		}
	}
	if got[3].Error == "" {
		t.Fatal("unknown backend silently scored")
	}
}

func TestMetaValidation(t *testing.T) {
	s := meta.NewServer(meta.Options{})
	cases := []meta.JobMeta{
		{}, // no name
		{JobName: "x", Strategy: api.StrategyFidelity, TargetFidelity: 0, CircuitQASM: bellQASM},
		{JobName: "x", Strategy: api.StrategyFidelity, TargetFidelity: 2, CircuitQASM: bellQASM},
		{JobName: "x", Strategy: api.StrategyFidelity, TargetFidelity: 0.5}, // no circuit
		{JobName: "x", Strategy: api.StrategyTopology},                      // no topology
		{JobName: "x", Strategy: "magic"},
		{JobName: "x", Strategy: api.StrategyFidelity, TargetFidelity: 0.5, CircuitQASM: "garbage"},
	}
	for i, m := range cases {
		if err := s.PutJobMeta(m); err == nil {
			t.Errorf("case %d: invalid metadata accepted: %+v", i, m)
		}
	}
}

func TestScoreUnknownJobOrBackend(t *testing.T) {
	s := meta.NewServer(meta.Options{})
	if _, err := s.Score("ghost", "ghost"); err == nil {
		t.Fatal("scored unknown job")
	}
	s.PutJobMeta(meta.JobMeta{
		JobName: "j", Strategy: api.StrategyFidelity,
		TargetFidelity: 1, CircuitQASM: bellQASM,
	})
	if _, err := s.Score("j", "ghost"); err == nil {
		t.Fatal("scored unknown backend")
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	s := meta.NewServer(meta.Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := meta.NewClient(srv.URL)

	b := backend(t, "dev", graph.Line(4), 0.05)
	if err := c.RegisterBackend(t.Context(), b); err != nil {
		t.Fatal(err)
	}
	names, err := c.BackendNames(t.Context())
	if err != nil || len(names) != 1 || names[0] != "dev" {
		t.Fatalf("names = %v, %v", names, err)
	}
	got, err := c.Backend(t.Context(), "dev")
	if err != nil || got.NumQubits != 4 {
		t.Fatalf("backend fetch = %v, %v", got, err)
	}
	m := meta.JobMeta{
		JobName: "bell", Strategy: api.StrategyFidelity,
		TargetFidelity: 1, CircuitQASM: bellQASM,
	}
	if err := c.PutJobMeta(t.Context(), m); err != nil {
		t.Fatal(err)
	}
	back, err := c.JobMeta(t.Context(), "bell")
	if err != nil || back.TargetFidelity != 1 {
		t.Fatalf("meta fetch = %+v, %v", back, err)
	}
	score, err := c.Score("bell", "dev")
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(score) || score < 0 {
		t.Fatalf("score = %v", score)
	}
	batch, err := c.ScoreBatch(t.Context(), "bell", nil) // nil = all registered backends
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 1 || batch[0].Backend != "dev" || batch[0].Score != score {
		t.Fatalf("batch = %+v, want one entry matching score %v", batch, score)
	}
	// Server-side errors surface as client errors.
	if _, err := c.Score("ghost", "dev"); err == nil {
		t.Fatal("remote error swallowed")
	}
	if _, err := c.Backend(t.Context(), "ghost"); err == nil {
		t.Fatal("missing backend fetch succeeded")
	}
}

func TestTable1MetadataRouting(t *testing.T) {
	// Table 1: fidelity uploads carry {fidelity, job name, circuit};
	// topology uploads carry {job name, topology file} only.
	s := meta.NewServer(meta.Options{})
	fid := meta.JobMeta{
		JobName: "f", Strategy: api.StrategyFidelity,
		TargetFidelity: 0.8, CircuitQASM: bellQASM,
	}
	topo := meta.JobMeta{
		JobName: "t", Strategy: api.StrategyTopology,
		TopologyQASM: ringTopologyQASM(t, 4),
	}
	if err := s.PutJobMeta(fid); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJobMeta(topo); err != nil {
		t.Fatal(err)
	}
	gotF, _ := s.JobMeta("f")
	if gotF.CircuitQASM == "" || gotF.TargetFidelity != 0.8 || gotF.TopologyQASM != "" {
		t.Fatalf("fidelity metadata wrong: %+v", gotF)
	}
	gotT, _ := s.JobMeta("t")
	if gotT.TopologyQASM == "" || gotT.CircuitQASM != "" || gotT.TargetFidelity != 0 {
		t.Fatalf("topology metadata wrong: %+v", gotT)
	}
}

// ghzQASM builds a distinct n-qubit circuit source so LRU tests can mint
// unique cache fingerprints cheaply.
func ghzQASM(n int) string {
	src := fmt.Sprintf("OPENQASM 2.0;\nqreg q[%d];\nh q[0];\n", n)
	for i := 0; i < n-1; i++ {
		src += fmt.Sprintf("cx q[%d],q[%d];\n", i, i+1)
	}
	return src
}

// TestScoreCacheLRUCap: the cache holds at most CacheMaxEntries entries,
// evicting least-recently-used fingerprints; evictions surface in
// CacheStats and an evicted circuit recomputes (a fresh miss) while a
// recently-touched one stays a hit.
func TestScoreCacheLRUCap(t *testing.T) {
	s := meta.NewServer(meta.Options{CacheMaxEntries: 2})
	if err := s.RegisterBackend(backend(t, "dev", graph.Line(4), 0.1)); err != nil {
		t.Fatal(err)
	}
	put := func(job string, qubits int) {
		t.Helper()
		if err := s.PutJobMeta(meta.JobMeta{
			JobName: job, Strategy: api.StrategyFidelity,
			TargetFidelity: 1, CircuitQASM: ghzQASM(qubits),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Score(job, "dev"); err != nil {
			t.Fatal(err)
		}
	}
	put("j2", 2) // cache: [j2]
	put("j3", 3) // cache: [j3 j2]
	st := s.CacheStats()
	if st.Entries != 2 || st.Evictions != 0 || st.Misses != 2 {
		t.Fatalf("before cap: %+v", st)
	}
	// Touch j2 so j3 becomes the LRU victim when j4 arrives.
	if _, err := s.Score("j2", "dev"); err != nil {
		t.Fatal(err)
	}
	put("j4", 4) // evicts j3; cache: [j4 j2]
	st = s.CacheStats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("after cap: %+v", st)
	}
	// j2 survived the eviction (hit), j3 did not (fresh miss).
	misses := st.Misses
	if _, err := s.Score("j2", "dev"); err != nil {
		t.Fatal(err)
	}
	if st = s.CacheStats(); st.Misses != misses {
		t.Fatalf("recently-used entry recomputed: %+v", st)
	}
	if _, err := s.Score("j3", "dev"); err != nil {
		t.Fatal(err)
	}
	st = s.CacheStats()
	if st.Misses != misses+1 {
		t.Fatalf("evicted entry served from cache: %+v", st)
	}
	if st.Entries != 2 || st.Evictions != 2 {
		t.Fatalf("after re-score of evicted: %+v", st)
	}
}
