package meta_test

import (
	"math"
	"net/http/httptest"
	"testing"

	"qrio/internal/cluster/api"
	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/mapomatic"
	"qrio/internal/meta"
	"qrio/internal/quantum/qasm"
)

const bellQASM = `OPENQASM 2.0;
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q -> c;
`

func ringTopologyQASM(t *testing.T, n int) string {
	t.Helper()
	src, err := qasm.Dump(mapomatic.TopologyCircuit(graph.Ring(n)))
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func backend(t *testing.T, name string, g *graph.Graph, e2 float64) *device.Backend {
	t.Helper()
	b, err := device.UniformBackend(name, g, e2, 0.01, 0.02, 500e3, 100e3)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFidelityScoringPrefersCleanDevice(t *testing.T) {
	s := meta.NewServer(meta.Options{})
	clean := backend(t, "clean", graph.Line(4), 0.02)
	noisy := backend(t, "noisy", graph.Line(4), 0.5)
	if err := s.RegisterBackend(clean); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterBackend(noisy); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJobMeta(meta.JobMeta{
		JobName: "bell", Strategy: api.StrategyFidelity,
		TargetFidelity: 1.0, CircuitQASM: bellQASM,
	}); err != nil {
		t.Fatal(err)
	}
	sc, err := s.Score("bell", "clean")
	if err != nil {
		t.Fatal(err)
	}
	sn, err := s.Score("bell", "noisy")
	if err != nil {
		t.Fatal(err)
	}
	if sc >= sn {
		t.Fatalf("clean score %v >= noisy score %v (lower must be better)", sc, sn)
	}
}

func TestOverTargetPenaltyPrefersLooseMatch(t *testing.T) {
	// Target 0.9: an excellent device (~0.97 canary fidelity) overshoots
	// slightly; a terrible one misses by a lot. The overshoot must (a)
	// still beat the big miss and (b) be discounted relative to an
	// undíscounted |F−target| metric.
	discounted := meta.NewServer(meta.Options{OverTargetPenalty: 0.25})
	flat := meta.NewServer(meta.Options{OverTargetPenalty: 1.0})
	excellent := backend(t, "excellent", graph.Line(4), 0.005)
	terrible := backend(t, "terrible", graph.Line(4), 0.7)
	for _, s := range []*meta.Server{discounted, flat} {
		s.RegisterBackend(excellent)
		s.RegisterBackend(terrible)
		if err := s.PutJobMeta(meta.JobMeta{
			JobName: "loose", Strategy: api.StrategyFidelity,
			TargetFidelity: 0.9, CircuitQASM: bellQASM,
		}); err != nil {
			t.Fatal(err)
		}
	}
	se, err := discounted.Score("loose", "excellent")
	if err != nil {
		t.Fatal(err)
	}
	st, err := discounted.Score("loose", "terrible")
	if err != nil {
		t.Fatal(err)
	}
	if se >= st {
		t.Fatalf("overshoot penalised harder than a big miss: excellent %v vs terrible %v", se, st)
	}
	if se < 0 || st < 0 {
		t.Fatalf("negative scores: %v %v", se, st)
	}
	seFlat, err := flat.Score("loose", "excellent")
	if err != nil {
		t.Fatal(err)
	}
	if se >= seFlat {
		t.Fatalf("penalty 0.25 did not discount overshoot: %v vs flat %v", se, seFlat)
	}
}

func TestTopologyScoring(t *testing.T) {
	s := meta.NewServer(meta.Options{})
	ringDev := backend(t, "ring", graph.Ring(8), 0.1)
	lineDev := backend(t, "line", graph.Line(8), 0.1)
	s.RegisterBackend(ringDev)
	s.RegisterBackend(lineDev)
	s.PutJobMeta(meta.JobMeta{
		JobName: "topo", Strategy: api.StrategyTopology,
		TopologyQASM: ringTopologyQASM(t, 6),
	})
	sr, err := s.Score("topo", "ring")
	if err != nil {
		t.Fatal(err)
	}
	sl, err := s.Score("topo", "line")
	if err != nil {
		t.Fatal(err)
	}
	// Ring topology embeds in the ring device; the line device must route.
	if sr >= sl {
		t.Fatalf("ring device score %v >= line device %v for a ring request", sr, sl)
	}
}

func TestMetaValidation(t *testing.T) {
	s := meta.NewServer(meta.Options{})
	cases := []meta.JobMeta{
		{}, // no name
		{JobName: "x", Strategy: api.StrategyFidelity, TargetFidelity: 0, CircuitQASM: bellQASM},
		{JobName: "x", Strategy: api.StrategyFidelity, TargetFidelity: 2, CircuitQASM: bellQASM},
		{JobName: "x", Strategy: api.StrategyFidelity, TargetFidelity: 0.5}, // no circuit
		{JobName: "x", Strategy: api.StrategyTopology},                      // no topology
		{JobName: "x", Strategy: "magic"},
		{JobName: "x", Strategy: api.StrategyFidelity, TargetFidelity: 0.5, CircuitQASM: "garbage"},
	}
	for i, m := range cases {
		if err := s.PutJobMeta(m); err == nil {
			t.Errorf("case %d: invalid metadata accepted: %+v", i, m)
		}
	}
}

func TestScoreUnknownJobOrBackend(t *testing.T) {
	s := meta.NewServer(meta.Options{})
	if _, err := s.Score("ghost", "ghost"); err == nil {
		t.Fatal("scored unknown job")
	}
	s.PutJobMeta(meta.JobMeta{
		JobName: "j", Strategy: api.StrategyFidelity,
		TargetFidelity: 1, CircuitQASM: bellQASM,
	})
	if _, err := s.Score("j", "ghost"); err == nil {
		t.Fatal("scored unknown backend")
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	s := meta.NewServer(meta.Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := meta.NewClient(srv.URL)

	b := backend(t, "dev", graph.Line(4), 0.05)
	if err := c.RegisterBackend(b); err != nil {
		t.Fatal(err)
	}
	names, err := c.BackendNames()
	if err != nil || len(names) != 1 || names[0] != "dev" {
		t.Fatalf("names = %v, %v", names, err)
	}
	got, err := c.Backend("dev")
	if err != nil || got.NumQubits != 4 {
		t.Fatalf("backend fetch = %v, %v", got, err)
	}
	m := meta.JobMeta{
		JobName: "bell", Strategy: api.StrategyFidelity,
		TargetFidelity: 1, CircuitQASM: bellQASM,
	}
	if err := c.PutJobMeta(m); err != nil {
		t.Fatal(err)
	}
	back, err := c.JobMeta("bell")
	if err != nil || back.TargetFidelity != 1 {
		t.Fatalf("meta fetch = %+v, %v", back, err)
	}
	score, err := c.Score("bell", "dev")
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(score) || score < 0 {
		t.Fatalf("score = %v", score)
	}
	// Server-side errors surface as client errors.
	if _, err := c.Score("ghost", "dev"); err == nil {
		t.Fatal("remote error swallowed")
	}
	if _, err := c.Backend("ghost"); err == nil {
		t.Fatal("missing backend fetch succeeded")
	}
}

func TestTable1MetadataRouting(t *testing.T) {
	// Table 1: fidelity uploads carry {fidelity, job name, circuit};
	// topology uploads carry {job name, topology file} only.
	s := meta.NewServer(meta.Options{})
	fid := meta.JobMeta{
		JobName: "f", Strategy: api.StrategyFidelity,
		TargetFidelity: 0.8, CircuitQASM: bellQASM,
	}
	topo := meta.JobMeta{
		JobName: "t", Strategy: api.StrategyTopology,
		TopologyQASM: ringTopologyQASM(t, 4),
	}
	if err := s.PutJobMeta(fid); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJobMeta(topo); err != nil {
		t.Fatal(err)
	}
	gotF, _ := s.JobMeta("f")
	if gotF.CircuitQASM == "" || gotF.TargetFidelity != 0.8 || gotF.TopologyQASM != "" {
		t.Fatalf("fidelity metadata wrong: %+v", gotF)
	}
	gotT, _ := s.JobMeta("t")
	if gotT.TopologyQASM == "" || gotT.CircuitQASM != "" || gotT.TargetFidelity != 0 {
		t.Fatalf("topology metadata wrong: %+v", gotT)
	}
}
