package meta

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"qrio/internal/device"
	"qrio/internal/httpx"
)

// Handler exposes the Meta Server over REST. QRIO components interact with
// circuits purely through QASM-over-HTTP (all payloads are JSON strings),
// so the Meta Server can run out-of-process.
//
//	POST /v1/backends                 — register a backend (device JSON)
//	GET  /v1/backends                 — list backend names
//	GET  /v1/backends/{name}          — fetch one backend
//	POST /v1/jobs/{name}/meta         — upload job metadata (Table 1)
//	GET  /v1/jobs/{name}/meta         — fetch job metadata
//	GET  /v1/score?job=J&backend=B    — score a job against a backend
//	GET  /v1/score/batch?job=J[&backend=B...]
//	                                  — score a job against many backends in
//	                                    parallel (default: all registered)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/backends", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var b device.Backend
			if err := httpx.DecodeJSON(r, &b); err != nil {
				httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid, err)
				return
			}
			if err := s.RegisterBackend(&b); err != nil {
				httpx.WriteErr(w, err, http.StatusUnprocessableEntity, httpx.CodeInvalid)
				return
			}
			httpx.WriteJSON(w, http.StatusCreated, map[string]string{"registered": b.Name})
		case http.MethodGet:
			httpx.WriteJSON(w, http.StatusOK, s.BackendNames())
		default:
			httpx.MethodNotAllowed(w, r)
		}
	})
	mux.HandleFunc("/v1/backends/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/v1/backends/")
		if r.Method != http.MethodGet || name == "" {
			httpx.WriteError(w, http.StatusMethodNotAllowed, httpx.CodeMethodNotAllowed, fmt.Errorf("GET /v1/backends/{name} only"))
			return
		}
		b, err := s.Backend(name)
		if err != nil {
			httpx.WriteError(w, http.StatusNotFound, httpx.CodeNotFound, err)
			return
		}
		httpx.WriteJSON(w, http.StatusOK, b)
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		name, ok := strings.CutSuffix(rest, "/meta")
		if !ok || name == "" {
			httpx.WriteError(w, http.StatusNotFound, httpx.CodeNotFound, fmt.Errorf("unknown path %q", r.URL.Path))
			return
		}
		switch r.Method {
		case http.MethodPost:
			var m JobMeta
			if err := httpx.DecodeJSON(r, &m); err != nil {
				httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid, err)
				return
			}
			m.JobName = name
			if err := s.PutJobMeta(m); err != nil {
				httpx.WriteErr(w, err, http.StatusUnprocessableEntity, httpx.CodeInvalid)
				return
			}
			httpx.WriteJSON(w, http.StatusCreated, map[string]string{"stored": name})
		case http.MethodGet:
			m, err := s.JobMeta(name)
			if err != nil {
				httpx.WriteError(w, http.StatusNotFound, httpx.CodeNotFound, err)
				return
			}
			httpx.WriteJSON(w, http.StatusOK, m)
		default:
			httpx.MethodNotAllowed(w, r)
		}
	})
	mux.HandleFunc("/v1/score", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpx.MethodNotAllowed(w, r)
			return
		}
		job := r.URL.Query().Get("job")
		backend := r.URL.Query().Get("backend")
		if job == "" || backend == "" {
			httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid, fmt.Errorf("need job and backend query params"))
			return
		}
		score, err := s.Score(job, backend)
		if err != nil {
			httpx.WriteErr(w, err, http.StatusUnprocessableEntity, httpx.CodeInvalid)
			return
		}
		httpx.WriteJSON(w, http.StatusOK, map[string]float64{"score": score})
	})
	mux.HandleFunc("/v1/score/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpx.MethodNotAllowed(w, r)
			return
		}
		job := r.URL.Query().Get("job")
		if job == "" {
			httpx.WriteError(w, http.StatusBadRequest, httpx.CodeInvalid, fmt.Errorf("need job query param"))
			return
		}
		backends := r.URL.Query()["backend"]
		if len(backends) == 0 {
			backends = s.BackendNames()
			sort.Strings(backends)
		}
		httpx.WriteJSON(w, http.StatusOK, s.ScoreBatch(job, backends, 0))
	})
	return mux
}

// Client talks to a remote Meta Server over REST and satisfies Scorer, so
// the scheduler works identically in- and out-of-process.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Retry paces idempotent calls through transient failures
	// (httpx.DefaultRetry via NewClient; zero value = single attempt).
	Retry httpx.RetryPolicy
}

// NewClient builds a client for the given base URL (e.g. http://host:port).
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP:  httpx.NewClient(0, nil),
		Retry: httpx.DefaultRetry}
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return httpx.DoJSONRetry(ctx, c.HTTP, c.Retry, method, c.BaseURL+path, in, out,
		func(status int, _, msg string, _ time.Duration) error {
			if msg == "" {
				return fmt.Errorf("meta: %s %s: HTTP %d", method, path, status)
			}
			return fmt.Errorf("meta: %s %s: %s", method, path, msg)
		})
}

// RegisterBackend uploads a backend.
func (c *Client) RegisterBackend(ctx context.Context, b *device.Backend) error {
	return c.do(ctx, http.MethodPost, "/v1/backends", b, nil)
}

// BackendNames lists registered backends.
func (c *Client) BackendNames(ctx context.Context) ([]string, error) {
	var names []string
	err := c.do(ctx, http.MethodGet, "/v1/backends", nil, &names)
	return names, err
}

// Backend fetches one backend.
func (c *Client) Backend(ctx context.Context, name string) (*device.Backend, error) {
	var b device.Backend
	if err := c.do(ctx, http.MethodGet, "/v1/backends/"+name, nil, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// PutJobMeta uploads job metadata.
func (c *Client) PutJobMeta(ctx context.Context, m JobMeta) error {
	return c.do(ctx, http.MethodPost, "/v1/jobs/"+m.JobName+"/meta", m, nil)
}

// JobMeta fetches job metadata.
func (c *Client) JobMeta(ctx context.Context, jobName string) (JobMeta, error) {
	var m JobMeta
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobName+"/meta", nil, &m)
	return m, err
}

// Score asks the server to score a job against a backend. The
// context-free signature keeps the client satisfying Scorer, so the
// scheduler works identically in- and out-of-process; use ScoreContext to
// deadline an individual call.
func (c *Client) Score(jobName, backendName string) (float64, error) {
	return c.ScoreContext(context.Background(), jobName, backendName)
}

// ScoreContext is Score with caller-controlled cancellation.
func (c *Client) ScoreContext(ctx context.Context, jobName, backendName string) (float64, error) {
	var out map[string]float64
	q := "/v1/score?job=" + url.QueryEscape(jobName) + "&backend=" + url.QueryEscape(backendName)
	if err := c.do(ctx, http.MethodGet, q, nil, &out); err != nil {
		return 0, err
	}
	score, ok := out["score"]
	if !ok {
		return 0, fmt.Errorf("meta: malformed score response %v", out)
	}
	return score, nil
}

// ScoreBatch asks the server to score a job against many backends in one
// round trip (all registered backends when backendNames is empty).
func (c *Client) ScoreBatch(ctx context.Context, jobName string, backendNames []string) ([]BatchResult, error) {
	q := url.Values{"job": {jobName}}
	for _, b := range backendNames {
		q.Add("backend", b)
	}
	var out []BatchResult
	if err := c.do(ctx, http.MethodGet, "/v1/score/batch?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

var _ Scorer = (*Client)(nil)
