package meta

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"qrio/internal/device"
)

// Handler exposes the Meta Server over REST. QRIO components interact with
// circuits purely through QASM-over-HTTP (all payloads are JSON strings),
// so the Meta Server can run out-of-process.
//
//	POST /v1/backends                 — register a backend (device JSON)
//	GET  /v1/backends                 — list backend names
//	GET  /v1/backends/{name}          — fetch one backend
//	POST /v1/jobs/{name}/meta         — upload job metadata (Table 1)
//	GET  /v1/jobs/{name}/meta         — fetch job metadata
//	GET  /v1/score?job=J&backend=B    — score a job against a backend
//	GET  /v1/score/batch?job=J[&backend=B...]
//	                                  — score a job against many backends in
//	                                    parallel (default: all registered)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/backends", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var b device.Backend
			if err := decodeJSON(r, &b); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			if err := s.RegisterBackend(&b); err != nil {
				httpError(w, http.StatusUnprocessableEntity, err)
				return
			}
			writeJSON(w, http.StatusCreated, map[string]string{"registered": b.Name})
		case http.MethodGet:
			writeJSON(w, http.StatusOK, s.BackendNames())
		default:
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method))
		}
	})
	mux.HandleFunc("/v1/backends/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/v1/backends/")
		if r.Method != http.MethodGet || name == "" {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET /v1/backends/{name} only"))
			return
		}
		b, err := s.Backend(name)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, b)
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		name, ok := strings.CutSuffix(rest, "/meta")
		if !ok || name == "" {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown path %q", r.URL.Path))
			return
		}
		switch r.Method {
		case http.MethodPost:
			var m JobMeta
			if err := decodeJSON(r, &m); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			m.JobName = name
			if err := s.PutJobMeta(m); err != nil {
				httpError(w, http.StatusUnprocessableEntity, err)
				return
			}
			writeJSON(w, http.StatusCreated, map[string]string{"stored": name})
		case http.MethodGet:
			m, err := s.JobMeta(name)
			if err != nil {
				httpError(w, http.StatusNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, m)
		default:
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method))
		}
	})
	mux.HandleFunc("/v1/score", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method))
			return
		}
		job := r.URL.Query().Get("job")
		backend := r.URL.Query().Get("backend")
		if job == "" || backend == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("need job and backend query params"))
			return
		}
		score, err := s.Score(job, backend)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]float64{"score": score})
	})
	mux.HandleFunc("/v1/score/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s", r.Method))
			return
		}
		job := r.URL.Query().Get("job")
		if job == "" {
			httpError(w, http.StatusBadRequest, fmt.Errorf("need job query param"))
			return
		}
		backends := r.URL.Query()["backend"]
		if len(backends) == 0 {
			backends = s.BackendNames()
			sort.Strings(backends)
		}
		writeJSON(w, http.StatusOK, s.ScoreBatch(job, backends, 0))
	})
	return mux
}

func decodeJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Client talks to a remote Meta Server over REST and satisfies Scorer, so
// the scheduler works identically in- and out-of-process.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient builds a client for the given base URL (e.g. http://host:port).
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP: &http.Client{Timeout: 120 * time.Second}}
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("meta: %s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("meta: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// RegisterBackend uploads a backend.
func (c *Client) RegisterBackend(b *device.Backend) error {
	return c.do(http.MethodPost, "/v1/backends", b, nil)
}

// BackendNames lists registered backends.
func (c *Client) BackendNames() ([]string, error) {
	var names []string
	err := c.do(http.MethodGet, "/v1/backends", nil, &names)
	return names, err
}

// Backend fetches one backend.
func (c *Client) Backend(name string) (*device.Backend, error) {
	var b device.Backend
	if err := c.do(http.MethodGet, "/v1/backends/"+name, nil, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// PutJobMeta uploads job metadata.
func (c *Client) PutJobMeta(m JobMeta) error {
	return c.do(http.MethodPost, "/v1/jobs/"+m.JobName+"/meta", m, nil)
}

// JobMeta fetches job metadata.
func (c *Client) JobMeta(jobName string) (JobMeta, error) {
	var m JobMeta
	err := c.do(http.MethodGet, "/v1/jobs/"+jobName+"/meta", nil, &m)
	return m, err
}

// Score asks the server to score a job against a backend.
func (c *Client) Score(jobName, backendName string) (float64, error) {
	var out map[string]float64
	q := "/v1/score?job=" + jobName + "&backend=" + backendName
	if err := c.do(http.MethodGet, q, nil, &out); err != nil {
		return 0, err
	}
	score, ok := out["score"]
	if !ok {
		return 0, fmt.Errorf("meta: malformed score response %v", out)
	}
	return score, nil
}

// ScoreBatch asks the server to score a job against many backends in one
// round trip (all registered backends when backendNames is empty).
func (c *Client) ScoreBatch(jobName string, backendNames []string) ([]BatchResult, error) {
	q := url.Values{"job": {jobName}}
	for _, b := range backendNames {
		q.Add("backend", b)
	}
	var out []BatchResult
	if err := c.do(http.MethodGet, "/v1/score/batch?"+q.Encode(), nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

var _ Scorer = (*Client)(nil)
