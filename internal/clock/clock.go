// Package clock is the time seam between QRIO's control plane and the
// wall clock. Every layer that stamps or compares times — state object
// CreatedAt/heartbeats, scheduler pass timing, controller retry/sweep
// decisions, archive age-based retention — reads time through a Clock
// instead of calling time.Now directly, so the virtual-time fleet
// simulator (internal/sim) can drive the *real* control-plane code
// against a deterministic clock that advances only when simulation
// events fire. Production wiring injects Real, which is time.Now with an
// interface call in front of it: behaviour is byte-identical and the
// indirection is far below the cost of the store operations on every
// path that takes a timestamp.
package clock

import "time"

// Clock is a time source.
type Clock interface {
	// Now returns the current time. Implementations must be safe for
	// concurrent use; Real trivially is, and the simulator's clock is
	// only advanced by the single-threaded event loop.
	Now() time.Time
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Now resolves a possibly-nil Clock: nil means the wall clock, so zero
// values of structs carrying an optional Clock field keep today's
// behaviour without every construction site having to wire Real.
func Now(c Clock) time.Time {
	if c != nil {
		return c.Now()
	}
	return time.Now()
}
