// Package par provides the bounded fan-out primitive the concurrent
// scheduling pipeline uses wherever it processes an indexed batch in
// parallel (Meta-Server batch scoring, batched dispatch ranking).
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (0 means GOMAXPROCS) and returns when all calls have completed. fn must
// write results into caller-owned, index-disjoint slots.
func ForEach(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
