package daemon_test

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qrio/client"
	"qrio/internal/cluster/api"
	"qrio/internal/cluster/apiserver"
	"qrio/internal/core"
	"qrio/internal/daemon"
	"qrio/internal/device"
	"qrio/internal/graph"
	"qrio/internal/master"
	"qrio/internal/meta"
	"qrio/internal/quantum/qasm"
	"qrio/internal/workload"
)

// TestFullDaemonFlowOverHTTP drives the complete qrioctl user journey over
// the wire: metadata upload to the Meta Server, submission through the
// Master Server, scheduling/execution in the cluster, and log retrieval
// through the API server — all via the composed daemon mux.
func TestFullDaemonFlowOverHTTP(t *testing.T) {
	var fleet []*device.Backend
	for _, cfg := range []struct {
		name string
		e2   float64
	}{{"good", 0.03}, {"bad", 0.5}} {
		b, err := device.UniformBackend(cfg.name, graph.Ring(12), cfg.e2, 0.005, 0.01, 500e3, 500e3)
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, b)
	}
	q, err := core.New(core.Config{Backends: fleet})
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Stop()
	srv := httptest.NewServer(daemon.Handler(q))
	defer srv.Close()

	apiClient := apiserver.NewClient(srv.URL + "/apiserver")
	masterClient := master.NewClient(srv.URL + "/master")
	metaClient := meta.NewClient(srv.URL + "/meta")

	// qrioctl nodes
	nodes, err := apiClient.Nodes(t.Context())
	if err != nil || len(nodes) != 2 {
		t.Fatalf("nodes = %v, %v", nodes, err)
	}
	// The daemon's meta server already knows the fleet backends.
	names, err := metaClient.BackendNames(t.Context())
	if err != nil || len(names) != 2 {
		t.Fatalf("meta backends = %v, %v", names, err)
	}

	// qrioctl submit: metadata first (Table 1), then the master request.
	src, err := qasm.Dump(workload.GHZ(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := metaClient.PutJobMeta(t.Context(), meta.JobMeta{
		JobName:        "wire-ghz",
		Strategy:       api.StrategyFidelity,
		TargetFidelity: 1.0,
		CircuitQASM:    src,
	}); err != nil {
		t.Fatal(err)
	}
	job, err := masterClient.Submit(t.Context(), master.SubmitRequest{
		JobName:        "wire-ghz",
		QASM:           src,
		Shots:          128,
		Strategy:       api.StrategyFidelity,
		TargetFidelity: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.Status.Phase != api.JobPending {
		t.Fatalf("submitted phase = %s", job.Status.Phase)
	}

	// Poll over HTTP until terminal.
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := apiClient.Job(t.Context(), "wire-ghz")
		if err != nil {
			t.Fatal(err)
		}
		if j.Status.Phase.Terminal() {
			if j.Status.Phase != api.JobSucceeded {
				t.Fatalf("phase = %s (%s)", j.Status.Phase, j.Status.Message)
			}
			if j.Status.Node != "good" {
				t.Fatalf("scheduled on %s, want the clean device", j.Status.Node)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// qrioctl logs
	res, err := apiClient.Logs(t.Context(), "wire-ghz")
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity <= 0 || len(res.LogLines) == 0 {
		t.Fatalf("logs over HTTP incomplete: %+v", res)
	}
	// Master's log proxy agrees.
	res2, err := masterClient.Logs(t.Context(), "wire-ghz")
	if err != nil || res2.Fidelity != res.Fidelity {
		t.Fatalf("master log proxy mismatch: %v %v", res2.Fidelity, err)
	}
	// qrioctl events
	events, err := apiClient.Events(t.Context(), "wire-ghz")
	if err != nil || len(events) == 0 {
		t.Fatalf("events = %v, %v", events, err)
	}
	// Remote scoring through the meta endpoint.
	score, err := metaClient.Score("wire-ghz", "good")
	if err != nil {
		t.Fatal(err)
	}
	badScore, err := metaClient.Score("wire-ghz", "bad")
	if err != nil {
		t.Fatal(err)
	}
	if score >= badScore {
		t.Fatalf("remote scoring inverted: good %v vs bad %v", score, badScore)
	}

	// The unified /v1 gateway is mounted on the same mux: the Go client
	// sees the job the component-level servers produced.
	gw := client.New(srv.URL)
	if err := gw.Healthy(t.Context()); err != nil {
		t.Fatalf("gateway health under the daemon mux: %v", err)
	}
	gwJob, err := gw.Get(t.Context(), "wire-ghz")
	if err != nil || gwJob.Status.Phase != api.JobSucceeded {
		t.Fatalf("gateway job view: %+v, %v", gwJob.Status, err)
	}
	page, err := gw.List(t.Context(), client.ListOptions{Phase: api.JobSucceeded})
	if err != nil || len(page.Items) != 1 {
		t.Fatalf("gateway list: %d items, %v", len(page.Items), err)
	}

	// The visualizer is mounted at the root of the same mux.
	resp, err := srv.Client().Get(srv.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	if !strings.Contains(string(buf[:n]), "good") {
		t.Fatal("visualizer not serving under the daemon mux")
	}
}
