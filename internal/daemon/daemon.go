// Package daemon wires a running orchestrator's HTTP surfaces onto one
// mux — the composition the qrio binary serves.
package daemon

import (
	"net/http"

	"qrio/internal/cluster/apiserver"
	"qrio/internal/core"
	"qrio/internal/gateway"
	"qrio/internal/visualizer"
)

// Handler mounts the full QRIO HTTP surface:
//
//	/            — Visualizer dashboard
//	/v1/         — unified gateway (jobs, nodes, scores, events, watch) —
//	               the surface qrioctl and the Go client package speak
//	/apiserver/  — cluster REST API (nodes, jobs, logs, events)
//	/meta/       — Meta Server REST (backends, job metadata, scoring)
//	/master/     — Master Server REST (submission, logs)
//
// The /apiserver, /meta and /master prefixes remain for component-level
// access and out-of-process deployments; new clients should prefer /v1.
func Handler(q *core.QRIO) http.Handler {
	return HandlerMaxInFlight(q, 0)
}

// HandlerMaxInFlight is Handler with the gateway's global in-flight cap
// set (0 = uncapped); excess concurrent /v1 requests are shed with 503
// overloaded.
func HandlerMaxInFlight(q *core.QRIO, maxInFlight int) http.Handler {
	gw := gateway.New(q)
	gw.MaxInFlight = maxInFlight
	mux := http.NewServeMux()
	mux.Handle("/v1/", gw.Handler())
	mux.Handle("/apiserver/", http.StripPrefix("/apiserver", apiserver.New(q.State).Handler()))
	mux.Handle("/meta/", http.StripPrefix("/meta", q.Meta.Handler()))
	mux.Handle("/master/", http.StripPrefix("/master", q.Master.Handler()))
	mux.Handle("/", visualizer.New(q).Handler())
	return mux
}
