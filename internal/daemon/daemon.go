// Package daemon wires a running orchestrator's HTTP surfaces onto one
// mux — the composition the qrio binary serves.
package daemon

import (
	"net/http"

	"qrio/internal/cluster/apiserver"
	"qrio/internal/core"
	"qrio/internal/visualizer"
)

// Handler mounts the full QRIO HTTP surface:
//
//	/            — Visualizer dashboard
//	/apiserver/  — cluster REST API (nodes, jobs, logs, events)
//	/meta/       — Meta Server REST (backends, job metadata, scoring)
//	/master/     — Master Server REST (submission, logs)
func Handler(q *core.QRIO) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/apiserver/", http.StripPrefix("/apiserver", apiserver.New(q.State).Handler()))
	mux.Handle("/meta/", http.StripPrefix("/meta", q.Meta.Handler()))
	mux.Handle("/master/", http.StripPrefix("/master", q.Master.Handler()))
	mux.Handle("/", visualizer.New(q).Handler())
	return mux
}
