// Package registry is a content-addressed image registry — the stand-in
// for the Docker Hub the paper's Master Server pushes job containers to
// (§3.3). An image is a named bundle of files (the user circuit, the
// runner manifest, requirements.txt and the Dockerfile text); its digest is
// the SHA-256 of the canonicalised content, so identical bundles dedupe.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// Image is a job bundle.
type Image struct {
	// Name is the human tag, e.g. "qrio/bv10:latest".
	Name string `json:"name"`
	// Digest is assigned on push: "sha256:<hex>".
	Digest string `json:"digest,omitempty"`
	// Files maps path -> content.
	Files map[string][]byte `json:"files"`
}

// DeepCopy returns an independent copy.
func (im Image) DeepCopy() Image {
	out := Image{Name: im.Name, Digest: im.Digest, Files: make(map[string][]byte, len(im.Files))}
	for k, v := range im.Files {
		out.Files[k] = append([]byte(nil), v...)
	}
	return out
}

// computeDigest hashes the canonicalised file set.
func computeDigest(im Image) string {
	h := sha256.New()
	paths := make([]string, 0, len(im.Files))
	for p := range im.Files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(h, "%s\x00%d\x00", p, len(im.Files[p]))
		h.Write(im.Files[p])
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// Registry stores images by tag and digest.
type Registry struct {
	mu       sync.RWMutex
	byDigest map[string]Image
	byName   map[string]string // tag -> digest (latest push wins)
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byDigest: make(map[string]Image), byName: make(map[string]string)}
}

// Push stores an image and returns its digest.
func (r *Registry) Push(im Image) (string, error) {
	if im.Name == "" {
		return "", fmt.Errorf("registry: image needs a name")
	}
	if len(im.Files) == 0 {
		return "", fmt.Errorf("registry: image %q has no files", im.Name)
	}
	im = im.DeepCopy()
	im.Digest = computeDigest(im)
	r.mu.Lock()
	r.byDigest[im.Digest] = im
	r.byName[im.Name] = im.Digest
	r.mu.Unlock()
	return im.Digest, nil
}

// Pull fetches an image by digest ("sha256:...") or tag.
func (r *Registry) Pull(ref string) (Image, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if im, ok := r.byDigest[ref]; ok {
		return im.DeepCopy(), nil
	}
	if digest, ok := r.byName[ref]; ok {
		return r.byDigest[digest].DeepCopy(), nil
	}
	return Image{}, fmt.Errorf("registry: no image %q", ref)
}

// List returns all stored tags with their digests.
func (r *Registry) List() map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]string, len(r.byName))
	for n, d := range r.byName {
		out[n] = d
	}
	return out
}

// Len returns the number of distinct image contents.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byDigest)
}
