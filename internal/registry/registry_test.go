package registry

import "testing"

func img(name, content string) Image {
	return Image{Name: name, Files: map[string][]byte{"a.txt": []byte(content)}}
}

func TestPushPullByDigestAndName(t *testing.T) {
	r := New()
	digest, err := r.Push(img("qrio/x:latest", "hello"))
	if err != nil {
		t.Fatal(err)
	}
	byDigest, err := r.Pull(digest)
	if err != nil || string(byDigest.Files["a.txt"]) != "hello" {
		t.Fatalf("pull by digest: %v %v", byDigest, err)
	}
	byName, err := r.Pull("qrio/x:latest")
	if err != nil || byName.Digest != digest {
		t.Fatalf("pull by name: %v %v", byName, err)
	}
}

func TestDigestIsContentAddressed(t *testing.T) {
	r := New()
	d1, _ := r.Push(img("a", "same"))
	d2, _ := r.Push(img("b", "same"))
	d3, _ := r.Push(img("c", "different"))
	if d1 != d2 {
		t.Fatal("identical content produced different digests")
	}
	if d1 == d3 {
		t.Fatal("different content produced same digest")
	}
}

func TestTagRepointsOnNewPush(t *testing.T) {
	r := New()
	d1, _ := r.Push(img("qrio/x:latest", "v1"))
	d2, _ := r.Push(img("qrio/x:latest", "v2"))
	if d1 == d2 {
		t.Fatal("digests should differ")
	}
	got, _ := r.Pull("qrio/x:latest")
	if got.Digest != d2 {
		t.Fatal("tag did not repoint to the latest push")
	}
	// Old digest still pullable (content-addressed store).
	if _, err := r.Pull(d1); err != nil {
		t.Fatal("old digest garbage-collected unexpectedly")
	}
}

func TestPushValidation(t *testing.T) {
	r := New()
	if _, err := r.Push(Image{Files: map[string][]byte{"a": nil}}); err == nil {
		t.Fatal("unnamed image accepted")
	}
	if _, err := r.Push(Image{Name: "x"}); err == nil {
		t.Fatal("empty image accepted")
	}
}

func TestPullMissing(t *testing.T) {
	r := New()
	if _, err := r.Pull("ghost"); err == nil {
		t.Fatal("pulled a ghost")
	}
}

func TestPullIsolation(t *testing.T) {
	r := New()
	d, _ := r.Push(img("x", "orig"))
	got, _ := r.Pull(d)
	got.Files["a.txt"][0] = 'X'
	again, _ := r.Pull(d)
	if string(again.Files["a.txt"]) != "orig" {
		t.Fatal("registry shares file buffers with callers")
	}
}

func TestListAndLen(t *testing.T) {
	r := New()
	r.Push(img("a", "1"))
	r.Push(img("b", "2"))
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	tags := r.List()
	if len(tags) != 2 || tags["a"] == "" || tags["b"] == "" {
		t.Fatalf("List = %v", tags)
	}
}
