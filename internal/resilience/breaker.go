// Package resilience holds QRIO's dependency-failure primitives. The
// circuit breaker here guards the scheduler's Meta-Server scoring path
// (see sched.ResilientMetaScore): consecutive scorer failures open the
// circuit so scheduling passes stop burning their budget on a dead
// dependency and switch to degraded scoring; after a cool-down the
// breaker lets a bounded number of probes through (half-open) and closes
// again once they succeed.
package resilience

import (
	"sync"
	"time"

	"qrio/internal/clock"
)

// State is a breaker's position.
type State int32

const (
	// Closed passes every call through (healthy dependency).
	Closed State = iota
	// Open short-circuits every call (dependency presumed down).
	Open
	// HalfOpen lets a bounded number of probe calls through to test
	// recovery.
	HalfOpen
)

// String renders the state for events and logs.
func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a consecutive-failure circuit breaker. The zero value is
// usable: defaults are 5 consecutive failures to open, a 5s open
// cool-down, 1 successful probe to close, wall clock. Configure fields
// before first use; all methods are safe for concurrent use.
type Breaker struct {
	// FailureThreshold is how many consecutive failures open the circuit.
	FailureThreshold int
	// OpenTimeout is how long the circuit stays open before allowing
	// half-open probes.
	OpenTimeout time.Duration
	// HalfOpenProbes is both the number of concurrent probes half-open
	// admits and the consecutive successes required to close.
	HalfOpenProbes int
	// Clock is the breaker's time source (nil = wall clock) — the chaos
	// harness drives recovery on virtual time.
	Clock clock.Clock

	mu        sync.Mutex
	state     State
	failures  int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	inflight  int       // probes admitted while half-open
	openedAt  time.Time // when the circuit last opened
	opens     int64     // open episodes, for coalescing degraded events
}

func (b *Breaker) threshold() int {
	if b.FailureThreshold > 0 {
		return b.FailureThreshold
	}
	return 5
}

func (b *Breaker) cooldown() time.Duration {
	if b.OpenTimeout > 0 {
		return b.OpenTimeout
	}
	return 5 * time.Second
}

func (b *Breaker) probes() int {
	if b.HalfOpenProbes > 0 {
		return b.HalfOpenProbes
	}
	return 1
}

// Allow reports whether a call may proceed. Callers that get true MUST
// report the outcome with Record(err) — half-open tracks in-flight
// probes, and an unreported probe would wedge the circuit half-open.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if clock.Now(b.Clock).Sub(b.openedAt) < b.cooldown() {
			return false
		}
		b.state = HalfOpen
		b.successes = 0
		b.inflight = 1
		return true
	default: // HalfOpen
		if b.inflight >= b.probes() {
			return false
		}
		b.inflight++
		return true
	}
}

// Record reports the outcome of a call Allow admitted.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if err == nil {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold() {
			b.open()
		}
	case HalfOpen:
		if b.inflight > 0 {
			b.inflight--
		}
		if err != nil {
			// The dependency is still down: reopen and restart the
			// cool-down.
			b.open()
			return
		}
		b.successes++
		if b.successes >= b.probes() {
			b.state = Closed
			b.failures = 0
			b.successes = 0
			b.inflight = 0
		}
	case Open:
		// A straggler from before the circuit opened; nothing to learn.
	}
}

// open transitions to Open under b.mu.
func (b *Breaker) open() {
	b.state = Open
	b.openedAt = clock.Now(b.Clock)
	b.failures = 0
	b.successes = 0
	b.inflight = 0
	b.opens++
}

// State returns the breaker's current position. An expired open
// cool-down still reads Open until the next Allow converts it to a
// half-open probe.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens counts open episodes over the breaker's lifetime. Degraded-mode
// consumers use it to emit one event per outage instead of one per call.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
