package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-protected virtual clock (the clock.Clock contract
// requires a concurrency-safe Now).
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

var errDown = errors.New("dependency down")

// fail records n failures through admitted calls.
func fail(t *testing.T, b *Breaker, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if !b.Allow() {
			t.Fatalf("Allow refused before threshold (failure %d)", i)
		}
		b.Record(errDown)
	}
}

// TestFullCycle walks closed → open → half-open → closed with the
// zero-value defaults (5 failures, 5s cool-down, 1 probe) on a virtual
// clock.
func TestFullCycle(t *testing.T) {
	fc := newFakeClock()
	b := &Breaker{Clock: fc}

	if b.State() != Closed {
		t.Fatalf("initial state = %v", b.State())
	}
	fail(t, b, 4)
	if b.State() != Closed {
		t.Fatalf("state after 4 failures = %v, want closed", b.State())
	}
	fail(t, b, 1)
	if b.State() != Open {
		t.Fatalf("state after 5th failure = %v, want open", b.State())
	}
	if b.Opens() != 1 {
		t.Fatalf("Opens = %d, want 1", b.Opens())
	}
	if b.Allow() {
		t.Fatal("open circuit admitted a call inside the cool-down")
	}

	fc.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("cool-down expired but probe refused")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open admitted a second call beyond the probe cap")
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	// Recovery also resets the consecutive-failure count.
	fail(t, b, 4)
	if b.State() != Closed {
		t.Fatalf("reclosed circuit opened after only 4 failures: %v", b.State())
	}
}

// TestFailedProbeReopens: a failed half-open probe restarts the full
// cool-down and counts a new open episode.
func TestFailedProbeReopens(t *testing.T) {
	fc := newFakeClock()
	b := &Breaker{FailureThreshold: 2, OpenTimeout: time.Second, Clock: fc}

	fail(t, b, 2)
	fc.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after cool-down")
	}
	b.Record(errDown)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Opens() != 2 {
		t.Fatalf("Opens = %d, want 2", b.Opens())
	}
	// The cool-down restarted at the failed probe: half a period is not
	// enough.
	fc.Advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("reopened circuit admitted a call before the restarted cool-down expired")
	}
	fc.Advance(500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("restarted cool-down expired but probe refused")
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

// TestSuccessResetsFailureStreak: the breaker counts *consecutive*
// failures — an intervening success starts the count over.
func TestSuccessResetsFailureStreak(t *testing.T) {
	b := &Breaker{FailureThreshold: 3, Clock: newFakeClock()}
	for i := 0; i < 10; i++ {
		fail(t, b, 2)
		if !b.Allow() {
			t.Fatal("closed circuit refused")
		}
		b.Record(nil)
	}
	if b.State() != Closed {
		t.Fatalf("interleaved failures opened the circuit: %v", b.State())
	}
}

// TestMultiProbeHalfOpen: HalfOpenProbes bounds concurrent probes and
// sets the consecutive successes required to close.
func TestMultiProbeHalfOpen(t *testing.T) {
	fc := newFakeClock()
	b := &Breaker{FailureThreshold: 1, OpenTimeout: time.Second, HalfOpenProbes: 2, Clock: fc}

	fail(t, b, 1)
	fc.Advance(time.Second)
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open refused its two probes")
	}
	if b.Allow() {
		t.Fatal("half-open admitted a third probe")
	}
	b.Record(nil)
	if b.State() != HalfOpen {
		t.Fatalf("one of two successes closed the circuit early: %v", b.State())
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state after both probes succeeded = %v, want closed", b.State())
	}
}

// TestStateStrings pins the event/log rendering.
func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{Closed: "closed", Open: "open", HalfOpen: "half-open"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
