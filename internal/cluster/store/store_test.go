package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

type obj struct {
	Name  string
	Value int
	Tags  []string
}

func deepCopy(o obj) obj {
	o.Tags = append([]string(nil), o.Tags...)
	return o
}

func newStore() *Store[obj] {
	return New(deepCopy, func(o obj) string { return o.Name })
}

func TestCRUD(t *testing.T) {
	s := newStore()
	if _, err := s.Create(obj{Name: "a", Value: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(obj{Name: "a"}); err == nil {
		t.Fatal("duplicate create accepted")
	}
	got, v, err := s.Get("a")
	if err != nil || got.Value != 1 || v == 0 {
		t.Fatalf("Get = %v, %d, %v", got, v, err)
	}
	if _, _, err := s.Get("zzz"); err == nil {
		t.Fatal("missing get succeeded")
	}
	if _, _, err := s.Update("a", func(o obj) (obj, error) {
		o.Value = 42
		return o, nil
	}); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Get("a")
	if got.Value != 42 {
		t.Fatalf("update lost: %v", got)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err == nil {
		t.Fatal("double delete succeeded")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestDeepCopyIsolation(t *testing.T) {
	s := newStore()
	in := obj{Name: "a", Tags: []string{"x"}}
	s.Create(in)
	in.Tags[0] = "mutated"
	got, _, _ := s.Get("a")
	if got.Tags[0] != "x" {
		t.Fatal("store kept caller's slice")
	}
	got.Tags[0] = "mutated-out"
	again, _, _ := s.Get("a")
	if again.Tags[0] != "x" {
		t.Fatal("store handed out its internal slice")
	}
}

func TestUpdateAbortsOnError(t *testing.T) {
	s := newStore()
	s.Create(obj{Name: "a", Value: 1})
	_, _, err := s.Update("a", func(o obj) (obj, error) {
		o.Value = 99
		return o, fmt.Errorf("nope")
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	got, _, _ := s.Get("a")
	if got.Value != 1 {
		t.Fatal("aborted update persisted")
	}
}

func TestUpdateCannotRename(t *testing.T) {
	s := newStore()
	s.Create(obj{Name: "a"})
	if _, _, err := s.Update("a", func(o obj) (obj, error) {
		o.Name = "b"
		return o, nil
	}); err == nil {
		t.Fatal("rename via update accepted")
	}
}

func TestVersionsIncrease(t *testing.T) {
	s := newStore()
	v1, _ := s.Create(obj{Name: "a"})
	_, v2, _ := s.Update("a", func(o obj) (obj, error) { return o, nil })
	if v2 <= v1 {
		t.Fatalf("versions not monotonic: %d then %d", v1, v2)
	}
	if s.Version() != v2 {
		t.Fatalf("store version %d != last %d", s.Version(), v2)
	}
}

func TestWatchDeliversEvents(t *testing.T) {
	s := newStore()
	ch, cancel := s.Watch(16)
	defer cancel()
	s.Create(obj{Name: "a", Value: 1})
	s.Update("a", func(o obj) (obj, error) { o.Value = 2; return o, nil })
	s.Delete("a")
	want := []EventType{Added, Modified, Deleted}
	for i, w := range want {
		ev := <-ch
		if ev.Type != w {
			t.Fatalf("event %d = %s, want %s", i, ev.Type, w)
		}
		if ev.Object.Name != "a" {
			t.Fatalf("event %d object = %v", i, ev.Object)
		}
	}
}

func TestWatchCancelCloses(t *testing.T) {
	s := newStore()
	ch, cancel := s.Watch(1)
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after cancel")
	}
	cancel()                 // idempotent
	s.Create(obj{Name: "a"}) // must not panic with cancelled watcher
}

func TestSlowWatcherDropsNotBlocks(t *testing.T) {
	s := newStore()
	_, cancel := s.Watch(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			s.Create(obj{Name: fmt.Sprintf("n%d", i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-make(chan struct{}): // unreachable; compile-time placeholder
	}
	if s.Len() != 100 {
		t.Fatalf("writes blocked by slow watcher: %d stored", s.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := newStore()
	s.Create(obj{Name: "counter", Value: 0})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				s.Update("counter", func(o obj) (obj, error) {
					o.Value++
					return o, nil
				})
			}
		}()
	}
	wg.Wait()
	got, _, _ := s.Get("counter")
	if got.Value != 1000 {
		t.Fatalf("lost updates: %d != 1000", got.Value)
	}
}

// --- sharded-store coverage ---------------------------------------------

// countingStore wraps the deep-copy callback with a counter so tests can
// assert how many copies an operation makes.
func countingStore(copies *atomic.Int64) *Store[obj] {
	return New(func(o obj) obj {
		copies.Add(1)
		return deepCopy(o)
	}, func(o obj) string { return o.Name })
}

// TestShardedConcurrentCreateUpdateWatch hammers the store from many
// goroutines across many keys while a watcher consumes the merged stream;
// run under -race this is the shard-lock correctness test. Per-key
// versions observed on the watch channel must be strictly increasing.
func TestShardedConcurrentCreateUpdateWatch(t *testing.T) {
	s := newStore()
	const writers = 8
	const keys = 64
	const updates = 25
	ch, cancel := s.Watch(writers * keys * (updates + 1))
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				name := fmt.Sprintf("w%d-k%d", w, k)
				if _, err := s.Create(obj{Name: name}); err != nil {
					t.Error(err)
					return
				}
				for u := 0; u < updates; u++ {
					if _, _, err := s.Update(name, func(o obj) (obj, error) {
						o.Value++
						return o, nil
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != writers*keys {
		t.Fatalf("Len = %d, want %d", got, writers*keys)
	}
	for w := 0; w < writers; w++ {
		for k := 0; k < keys; k++ {
			o, _, err := s.Get(fmt.Sprintf("w%d-k%d", w, k))
			if err != nil || o.Value != updates {
				t.Fatalf("w%d-k%d = %+v, %v (lost updates)", w, k, o, err)
			}
		}
	}
	// The merged watch stream must be per-key monotone in version.
	lastSeen := map[string]int64{}
	for {
		select {
		case ev := <-ch:
			if prev, ok := lastSeen[ev.Object.Name]; ok && ev.Version <= prev {
				t.Fatalf("key %s versions not monotone: %d then %d", ev.Object.Name, prev, ev.Version)
			}
			lastSeen[ev.Object.Name] = ev.Version
		default:
			if len(lastSeen) != writers*keys {
				t.Fatalf("watch saw %d keys, want %d", len(lastSeen), writers*keys)
			}
			return
		}
	}
}

// TestWatcherDropThenRelistRecovers: a watcher that falls behind loses
// events (never blocks writers) but recovers the full state via re-List —
// the level-triggered contract consumers like the scheduler cache rely on.
func TestWatcherDropThenRelistRecovers(t *testing.T) {
	s := newStore()
	ch, cancel := s.Watch(4)
	defer cancel()
	const total = 100
	for i := 0; i < total; i++ {
		if _, err := s.Create(obj{Name: fmt.Sprintf("n%d", i), Value: i}); err != nil {
			t.Fatal(err)
		}
	}
	delivered := 0
	for {
		select {
		case <-ch:
			delivered++
			continue
		default:
		}
		break
	}
	if delivered >= total {
		t.Fatalf("expected drops with buffer 4, got all %d events", delivered)
	}
	if got := len(s.List()); got != total {
		t.Fatalf("re-List after drops returned %d objects, want %d", got, total)
	}
	// The drained watcher keeps receiving future events.
	s.Create(obj{Name: "late"})
	select {
	case ev := <-ch:
		if ev.Object.Name != "late" {
			t.Fatalf("post-drop event = %+v", ev.Object)
		}
	default:
		t.Fatal("watcher dead after drops")
	}
}

// TestListFuncCopiesOnlyKept: the predicate filters before the deep copy,
// so rejected objects cost nothing — the property the pending-job and
// kubelet scans depend on.
func TestListFuncCopiesOnlyKept(t *testing.T) {
	var copies atomic.Int64
	s := countingStore(&copies)
	const total = 100
	for i := 0; i < total; i++ {
		s.Create(obj{Name: fmt.Sprintf("n%d", i), Value: i})
	}
	copies.Store(0)
	kept := s.ListFunc(func(o obj) bool { return o.Value%2 == 0 })
	if len(kept) != total/2 {
		t.Fatalf("ListFunc kept %d, want %d", len(kept), total/2)
	}
	if got := copies.Load(); got != total/2 {
		t.Fatalf("ListFunc made %d copies, want %d (rejected objects must not be copied)", got, total/2)
	}
}

// TestRangeCopiesNothing: Range visits every object without a single deep
// copy and honours early stop.
func TestRangeCopiesNothing(t *testing.T) {
	var copies atomic.Int64
	s := countingStore(&copies)
	const total = 50
	for i := 0; i < total; i++ {
		s.Create(obj{Name: fmt.Sprintf("n%d", i)})
	}
	copies.Store(0)
	seen := 0
	s.Range(func(o obj, version int64) bool {
		if version <= 0 {
			t.Fatalf("object %s has version %d", o.Name, version)
		}
		seen++
		return true
	})
	if seen != total {
		t.Fatalf("Range visited %d, want %d", seen, total)
	}
	if copies.Load() != 0 {
		t.Fatalf("Range made %d copies, want 0", copies.Load())
	}
	seen = 0
	s.Range(func(obj, int64) bool { seen++; return false })
	if seen != 1 {
		t.Fatalf("early-stop Range visited %d, want 1", seen)
	}
}

// TestOnEventHookSeesEveryMutation: hooks observe create/update/delete in
// per-key order with monotone versions — the contract the state-layer
// indexes are built on.
func TestOnEventHookSeesEveryMutation(t *testing.T) {
	var mu sync.Mutex
	var got []WatchEvent[obj]
	s := newStore()
	s.OnEvent(func(ev WatchEvent[obj]) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	s.Create(obj{Name: "a", Value: 1})
	s.Update("a", func(o obj) (obj, error) { o.Value = 2; return o, nil })
	s.Delete("a")
	want := []EventType{Added, Modified, Deleted}
	if len(got) != len(want) {
		t.Fatalf("hook saw %d events, want %d", len(got), len(want))
	}
	var last int64
	for i, ev := range got {
		if ev.Type != want[i] {
			t.Fatalf("event %d = %s, want %s", i, ev.Type, want[i])
		}
		if ev.Version <= last {
			t.Fatalf("event %d version %d not monotone after %d", i, ev.Version, last)
		}
		last = ev.Version
	}
}

// TestEmptyListIsNotNil: HTTP handlers marshal List results straight to
// JSON; an empty store must encode as [] rather than null.
func TestEmptyListIsNotNil(t *testing.T) {
	s := newStore()
	if s.List() == nil {
		t.Fatal("List() on empty store returned nil")
	}
	if s.ListFunc(func(obj) bool { return true }) == nil {
		t.Fatal("ListFunc on empty store returned nil")
	}
}

func TestUpdateFuncCompareAndSwap(t *testing.T) {
	s := newStore()
	v0, err := s.Create(obj{Name: "a", Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	conflict := fmt.Errorf("version moved")
	cas := func(expect int64) func(obj, int64) error {
		return func(_ obj, v int64) error {
			if v != expect {
				return conflict
			}
			return nil
		}
	}
	// CAS at the current version succeeds and bumps the version.
	next, v1, err := s.UpdateFunc("a", cas(v0), func(o obj) (obj, error) {
		o.Value = 2
		return o, nil
	})
	if err != nil || next.Value != 2 || v1 <= v0 {
		t.Fatalf("UpdateFunc = %v, %d, %v", next, v1, err)
	}
	// A racer holding the stale version loses with exactly the check error,
	// and the object is untouched.
	if _, _, err := s.UpdateFunc("a", cas(v0), func(o obj) (obj, error) {
		o.Value = 99
		return o, nil
	}); err != conflict {
		t.Fatalf("stale CAS error = %v, want the check error", err)
	}
	got, v, _ := s.Get("a")
	if got.Value != 2 || v != v1 {
		t.Fatalf("object after failed CAS = %v at %d, want Value 2 at %d", got, v, v1)
	}
}

func TestUpdateFuncMissingAndMutateError(t *testing.T) {
	s := newStore()
	ok := func(obj, int64) error { return nil }
	if _, _, err := s.UpdateFunc("ghost", ok, func(o obj) (obj, error) { return o, nil }); err == nil {
		t.Fatal("UpdateFunc on a missing object succeeded")
	}
	if _, err := s.Create(obj{Name: "a", Value: 1}); err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("mutate refused")
	if _, _, err := s.UpdateFunc("a", ok, func(obj) (obj, error) { return obj{}, boom }); err != boom {
		t.Fatalf("mutate error = %v, want passthrough", err)
	}
	if got, _, _ := s.Get("a"); got.Value != 1 {
		t.Fatalf("aborted UpdateFunc changed the object: %v", got)
	}
}

func TestUpdateFuncExactlyOneWinner(t *testing.T) {
	s := newStore()
	v0, err := s.Create(obj{Name: "job", Value: 0})
	if err != nil {
		t.Fatal(err)
	}
	conflict := fmt.Errorf("conflict")
	var wins, conflicts atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, _, err := s.UpdateFunc("job",
				func(_ obj, v int64) error {
					if v != v0 {
						return conflict
					}
					return nil
				},
				func(o obj) (obj, error) {
					o.Value = r + 1
					return o, nil
				})
			if err == nil {
				wins.Add(1)
			} else if err == conflict {
				conflicts.Add(1)
			}
		}(r)
	}
	wg.Wait()
	if wins.Load() != 1 || conflicts.Load() != 7 {
		t.Fatalf("wins = %d conflicts = %d, want exactly 1 and 7", wins.Load(), conflicts.Load())
	}
}
