package store

import (
	"fmt"
	"sync"
	"testing"
)

type obj struct {
	Name  string
	Value int
	Tags  []string
}

func deepCopy(o obj) obj {
	o.Tags = append([]string(nil), o.Tags...)
	return o
}

func newStore() *Store[obj] {
	return New(deepCopy, func(o obj) string { return o.Name })
}

func TestCRUD(t *testing.T) {
	s := newStore()
	if _, err := s.Create(obj{Name: "a", Value: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(obj{Name: "a"}); err == nil {
		t.Fatal("duplicate create accepted")
	}
	got, v, err := s.Get("a")
	if err != nil || got.Value != 1 || v == 0 {
		t.Fatalf("Get = %v, %d, %v", got, v, err)
	}
	if _, _, err := s.Get("zzz"); err == nil {
		t.Fatal("missing get succeeded")
	}
	if _, _, err := s.Update("a", func(o obj) (obj, error) {
		o.Value = 42
		return o, nil
	}); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Get("a")
	if got.Value != 42 {
		t.Fatalf("update lost: %v", got)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err == nil {
		t.Fatal("double delete succeeded")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestDeepCopyIsolation(t *testing.T) {
	s := newStore()
	in := obj{Name: "a", Tags: []string{"x"}}
	s.Create(in)
	in.Tags[0] = "mutated"
	got, _, _ := s.Get("a")
	if got.Tags[0] != "x" {
		t.Fatal("store kept caller's slice")
	}
	got.Tags[0] = "mutated-out"
	again, _, _ := s.Get("a")
	if again.Tags[0] != "x" {
		t.Fatal("store handed out its internal slice")
	}
}

func TestUpdateAbortsOnError(t *testing.T) {
	s := newStore()
	s.Create(obj{Name: "a", Value: 1})
	_, _, err := s.Update("a", func(o obj) (obj, error) {
		o.Value = 99
		return o, fmt.Errorf("nope")
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	got, _, _ := s.Get("a")
	if got.Value != 1 {
		t.Fatal("aborted update persisted")
	}
}

func TestUpdateCannotRename(t *testing.T) {
	s := newStore()
	s.Create(obj{Name: "a"})
	if _, _, err := s.Update("a", func(o obj) (obj, error) {
		o.Name = "b"
		return o, nil
	}); err == nil {
		t.Fatal("rename via update accepted")
	}
}

func TestVersionsIncrease(t *testing.T) {
	s := newStore()
	v1, _ := s.Create(obj{Name: "a"})
	_, v2, _ := s.Update("a", func(o obj) (obj, error) { return o, nil })
	if v2 <= v1 {
		t.Fatalf("versions not monotonic: %d then %d", v1, v2)
	}
	if s.Version() != v2 {
		t.Fatalf("store version %d != last %d", s.Version(), v2)
	}
}

func TestWatchDeliversEvents(t *testing.T) {
	s := newStore()
	ch, cancel := s.Watch(16)
	defer cancel()
	s.Create(obj{Name: "a", Value: 1})
	s.Update("a", func(o obj) (obj, error) { o.Value = 2; return o, nil })
	s.Delete("a")
	want := []EventType{Added, Modified, Deleted}
	for i, w := range want {
		ev := <-ch
		if ev.Type != w {
			t.Fatalf("event %d = %s, want %s", i, ev.Type, w)
		}
		if ev.Object.Name != "a" {
			t.Fatalf("event %d object = %v", i, ev.Object)
		}
	}
}

func TestWatchCancelCloses(t *testing.T) {
	s := newStore()
	ch, cancel := s.Watch(1)
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after cancel")
	}
	cancel()                 // idempotent
	s.Create(obj{Name: "a"}) // must not panic with cancelled watcher
}

func TestSlowWatcherDropsNotBlocks(t *testing.T) {
	s := newStore()
	_, cancel := s.Watch(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			s.Create(obj{Name: fmt.Sprintf("n%d", i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-make(chan struct{}): // unreachable; compile-time placeholder
	}
	if s.Len() != 100 {
		t.Fatalf("writes blocked by slow watcher: %d stored", s.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := newStore()
	s.Create(obj{Name: "counter", Value: 0})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				s.Update("counter", func(o obj) (obj, error) {
					o.Value++
					return o, nil
				})
			}
		}()
	}
	wg.Wait()
	got, _, _ := s.Get("counter")
	if got.Value != 1000 {
		t.Fatalf("lost updates: %d != 1000", got.Value)
	}
}
