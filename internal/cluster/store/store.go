// Package store provides the versioned, watchable, in-memory object store
// backing the QRIO API server — the role etcd plays under a Kubernetes API
// server. Every mutation bumps a monotonically increasing resource version
// and is broadcast to watchers, giving controllers, the scheduler and
// kubelets level- and edge-triggered views of cluster state.
package store

import (
	"fmt"
	"sync"
)

// EventType classifies a watch event.
type EventType string

const (
	Added    EventType = "ADDED"
	Modified EventType = "MODIFIED"
	Deleted  EventType = "DELETED"
)

// WatchEvent is one change notification.
type WatchEvent[T any] struct {
	Type    EventType
	Object  T
	Version int64
}

// Store is a thread-safe, versioned map of named objects of one kind.
// DeepCopy isolation: objects are copied on the way in and out, so callers
// can never mutate stored state except through Update.
type Store[T any] struct {
	mu       sync.RWMutex
	items    map[string]T
	versions map[string]int64
	version  int64
	deepCopy func(T) T
	name     func(T) string
	watchers map[int]chan WatchEvent[T]
	nextWID  int
}

// New creates a store for objects of type T. deepCopy must return an
// independent copy; name must return the object key.
func New[T any](deepCopy func(T) T, name func(T) string) *Store[T] {
	return &Store[T]{
		items:    make(map[string]T),
		versions: make(map[string]int64),
		deepCopy: deepCopy,
		name:     name,
		watchers: make(map[int]chan WatchEvent[T]),
	}
}

// ErrNotFound is returned for missing objects.
type ErrNotFound struct{ Name string }

func (e ErrNotFound) Error() string { return fmt.Sprintf("store: %q not found", e.Name) }

// ErrExists is returned when creating a duplicate.
type ErrExists struct{ Name string }

func (e ErrExists) Error() string { return fmt.Sprintf("store: %q already exists", e.Name) }

// Create inserts a new object and returns its resource version.
func (s *Store[T]) Create(obj T) (int64, error) {
	key := s.name(obj)
	if key == "" {
		return 0, fmt.Errorf("store: object has empty name")
	}
	s.mu.Lock()
	if _, ok := s.items[key]; ok {
		s.mu.Unlock()
		return 0, ErrExists{key}
	}
	s.version++
	v := s.version
	s.items[key] = s.deepCopy(obj)
	s.versions[key] = v
	cp := s.deepCopy(obj)
	s.notifyLocked(WatchEvent[T]{Type: Added, Object: cp, Version: v})
	s.mu.Unlock()
	return v, nil
}

// Get returns a copy of the named object.
func (s *Store[T]) Get(name string) (T, int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, ok := s.items[name]
	if !ok {
		var zero T
		return zero, 0, ErrNotFound{name}
	}
	return s.deepCopy(obj), s.versions[name], nil
}

// List returns copies of all objects (order unspecified).
func (s *Store[T]) List() []T {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]T, 0, len(s.items))
	for _, obj := range s.items {
		out = append(out, s.deepCopy(obj))
	}
	return out
}

// Len returns the object count.
func (s *Store[T]) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

// Update applies mutate to the named object atomically. The callback
// receives a private copy; returning an error aborts without change.
func (s *Store[T]) Update(name string, mutate func(T) (T, error)) (T, int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.items[name]
	if !ok {
		var zero T
		return zero, 0, ErrNotFound{name}
	}
	next, err := mutate(s.deepCopy(obj))
	if err != nil {
		var zero T
		return zero, 0, err
	}
	if s.name(next) != name {
		var zero T
		return zero, 0, fmt.Errorf("store: update may not rename %q to %q", name, s.name(next))
	}
	s.version++
	v := s.version
	s.items[name] = s.deepCopy(next)
	s.versions[name] = v
	s.notifyLocked(WatchEvent[T]{Type: Modified, Object: s.deepCopy(next), Version: v})
	return next, v, nil
}

// Delete removes the named object.
func (s *Store[T]) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj, ok := s.items[name]
	if !ok {
		return ErrNotFound{name}
	}
	delete(s.items, name)
	delete(s.versions, name)
	s.version++
	s.notifyLocked(WatchEvent[T]{Type: Deleted, Object: s.deepCopy(obj), Version: s.version})
	return nil
}

// Watch returns a buffered channel of future change events plus a cancel
// function. Watchers that fall more than the buffer behind lose events —
// consumers are expected to re-List on their own cadence (level-triggered
// reconciliation), exactly as Kubernetes clients do.
func (s *Store[T]) Watch(buffer int) (<-chan WatchEvent[T], func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan WatchEvent[T], buffer)
	s.mu.Lock()
	id := s.nextWID
	s.nextWID++
	s.watchers[id] = ch
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		if c, ok := s.watchers[id]; ok {
			delete(s.watchers, id)
			close(c)
		}
		s.mu.Unlock()
	}
	return ch, cancel
}

// notifyLocked broadcasts to watchers, dropping events for slow consumers.
func (s *Store[T]) notifyLocked(ev WatchEvent[T]) {
	for _, ch := range s.watchers {
		select {
		case ch <- ev:
		default: // watcher too slow: drop, it must re-List
		}
	}
}

// Version returns the store's latest resource version.
func (s *Store[T]) Version() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}
